package repro

import (
	"context"

	"repro/internal/core"
)

// Pipeline is the v1 facade: the whole fault-trajectory flow for one CUT
// with positional arguments and no context threading.
//
// Deprecated: use Session, which adds context cancellation, functional
// options, progress streaming, structured errors, and persistent
// artifacts. Pipeline remains a thin shim over Session so existing code
// keeps compiling; each method delegates with context.Background().
type Pipeline struct {
	s *Session
}

// NewPipeline builds the fault dictionary for a CUT. deviations may be
// nil for the paper's ±10%…±40% grid; otherwise it lists the fractional
// deviations of the fault universe.
//
// Deprecated: use NewSession with WithDeviations.
func NewPipeline(cut CUT, deviations []float64) (*Pipeline, error) {
	var opts []Option
	if deviations != nil {
		opts = append(opts, WithDeviations(deviations...))
	}
	s, err := NewSession(cut, opts...)
	if err != nil {
		return nil, err
	}
	return &Pipeline{s: s}, nil
}

// NewPipelineFromNetlist builds a pipeline from netlist text plus the
// measurement metadata a netlist does not carry: the driving source, the
// observed output node, and the fault-target components (nil → every
// Valued element). deviations may be nil for the paper grid.
//
// Deprecated: use NewSessionFromNetlist with WithComponents and
// WithDeviations.
func NewPipelineFromNetlist(text, source, output string, components []string, deviations []float64) (*Pipeline, error) {
	var opts []Option
	if components != nil {
		opts = append(opts, WithComponents(components...))
	}
	if deviations != nil {
		opts = append(opts, WithDeviations(deviations...))
	}
	s, err := NewSessionFromNetlist(text, source, output, opts...)
	if err != nil {
		return nil, err
	}
	return &Pipeline{s: s}, nil
}

// Session returns the underlying v2 session — the migration escape
// hatch for code moving off the shim incrementally.
func (p *Pipeline) Session() *Session { return p.s }

// CUT returns the pipeline's circuit under test.
func (p *Pipeline) CUT() CUT { return p.s.CUT() }

// Dictionary exposes the fault dictionary.
func (p *Pipeline) Dictionary() *Dictionary { return p.s.Dictionary() }

// ATPG exposes the underlying test generator for advanced use.
func (p *Pipeline) ATPG() *core.ATPG { return p.s.ATPG() }

// Optimize searches for a test vector with the GA.
//
// Deprecated: use Session.Optimize, which accepts a context.
func (p *Pipeline) Optimize(cfg OptimizeConfig) (*TestVector, error) {
	return p.s.Optimize(context.Background(), cfg)
}

// Fitness evaluates the paper's fitness for an explicit test vector.
//
// Deprecated: use Session.Fitness.
func (p *Pipeline) Fitness(omegas []float64) (float64, error) {
	return p.s.Fitness(context.Background(), omegas)
}

// Trajectories builds the trajectory map for a test vector.
//
// Deprecated: use Session.Trajectories.
func (p *Pipeline) Trajectories(omegas []float64) (*TrajectoryMap, error) {
	return p.s.Trajectories(context.Background(), omegas)
}

// Diagnoser builds the diagnosis stage for a test vector.
//
// Deprecated: use Session.Diagnoser.
func (p *Pipeline) Diagnoser(omegas []float64) (*Diagnoser, error) {
	return p.s.Diagnoser(context.Background(), omegas)
}

// Evaluate runs the hold-out evaluation: off-grid deviations (nil → the
// default ±15/25/35% set) on every universe component.
//
// Deprecated: use Session.Evaluate.
func (p *Pipeline) Evaluate(omegas []float64, holdOut []float64) (*Evaluation, error) {
	return p.s.Evaluate(context.Background(), omegas, holdOut)
}

// DiagnoseCircuit diagnoses an arbitrary variant of the CUT against the
// trajectory map for the given test vector.
//
// Deprecated: use Session.DiagnoseCircuit.
func (p *Pipeline) DiagnoseCircuit(variant *Circuit, omegas []float64, rejectRatio float64) (*DiagnosisResult, bool, error) {
	return p.s.DiagnoseCircuit(context.Background(), variant, omegas, rejectRatio)
}

// FitTransfer recovers the CUT's transfer function N(s)/D(s) from
// sampled AC analysis.
//
// Deprecated: use Session.FitTransfer.
func (p *Pipeline) FitTransfer(numDeg, denDeg int, omegas []float64) (Rational, error) {
	return p.s.FitTransfer(numDeg, denDeg, omegas)
}
