package repro

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/netlist"
	"repro/internal/numeric"
	"repro/internal/rerr"
)

// Structured errors returned at the package boundary. Every failure mode
// a caller might branch on wraps one of these sentinels; match with
// errors.Is rather than string comparison.
var (
	// ErrBadConfig marks rejected configuration: GA hyperparameters,
	// frequency bands, fault universes, session options.
	ErrBadConfig = rerr.ErrBadConfig

	// ErrSingular marks an unsolvable (singular to working precision)
	// MNA system — typically a degenerate circuit or fault value.
	ErrSingular = numeric.ErrSingular

	// ErrUnknownComponent marks a reference to a circuit element that
	// does not exist (or has no faultable value) in the circuit under
	// test.
	ErrUnknownComponent = rerr.ErrUnknownComponent

	// ErrCanceled marks a stage stopped by context cancellation or
	// deadline. The error chain also contains the context's own error,
	// so errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// holds too.
	ErrCanceled = rerr.ErrCanceled

	// ErrArtifact marks a persisted artifact that cannot be decoded:
	// malformed JSON, wrong kind, or an unsupported schema version.
	ErrArtifact = rerr.ErrArtifact

	// ErrStaleArtifact marks an artifact whose netlist checksum does not
	// match the session's circuit under test.
	ErrStaleArtifact = rerr.ErrStaleArtifact
)

// ParseError is the structured netlist syntax error: it carries the
// 1-based source line number and the offending card text. Recover it
// from a ParseNetlist failure with errors.As.
type ParseError = netlist.ParseError

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) HTTPStatus maps client-side cancellation onto: the request
// died with its caller, not with the server.
const StatusClientClosedRequest = 499

// HTTPStatus maps a library error onto the HTTP status a serving layer
// should answer with — the single place the structured-error vocabulary
// meets the wire:
//
//	ErrBadConfig          → 400 Bad Request (malformed request)
//	ErrUnknownComponent   → 404 Not Found (no such fault target)
//	ErrSingular           → 422 Unprocessable (fault yields an unsolvable circuit)
//	ErrStaleArtifact      → 409 Conflict (artifact from a different board revision)
//	ErrCanceled + timeout → 504 Gateway Timeout
//	ErrCanceled otherwise → 499 (client closed request)
//	ErrArtifact, other    → 500 Internal Server Error
//
// A ParseError counts as a bad request. nil maps to 200.
func HTTPStatus(err error) int {
	var pe *ParseError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrStaleArtifact):
		return http.StatusConflict
	case errors.Is(err, ErrBadConfig), errors.As(err, &pe):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownComponent):
		return http.StatusNotFound
	case errors.Is(err, ErrSingular):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}
