package repro

import (
	"repro/internal/netlist"
	"repro/internal/numeric"
	"repro/internal/rerr"
)

// Structured errors returned at the package boundary. Every failure mode
// a caller might branch on wraps one of these sentinels; match with
// errors.Is rather than string comparison.
var (
	// ErrBadConfig marks rejected configuration: GA hyperparameters,
	// frequency bands, fault universes, session options.
	ErrBadConfig = rerr.ErrBadConfig

	// ErrSingular marks an unsolvable (singular to working precision)
	// MNA system — typically a degenerate circuit or fault value.
	ErrSingular = numeric.ErrSingular

	// ErrUnknownComponent marks a reference to a circuit element that
	// does not exist (or has no faultable value) in the circuit under
	// test.
	ErrUnknownComponent = rerr.ErrUnknownComponent

	// ErrCanceled marks a stage stopped by context cancellation or
	// deadline. The error chain also contains the context's own error,
	// so errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// holds too.
	ErrCanceled = rerr.ErrCanceled

	// ErrArtifact marks a persisted artifact that cannot be decoded:
	// malformed JSON, wrong kind, or an unsupported schema version.
	ErrArtifact = rerr.ErrArtifact

	// ErrStaleArtifact marks an artifact whose netlist checksum does not
	// match the session's circuit under test.
	ErrStaleArtifact = rerr.ErrStaleArtifact
)

// ParseError is the structured netlist syntax error: it carries the
// 1-based source line number and the offending card text. Recover it
// from a ParseNetlist failure with errors.As.
type ParseError = netlist.ParseError
