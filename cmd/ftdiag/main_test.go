package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestJoinFloats(t *testing.T) {
	if got := joinFloats([]float64{0.5, 2}); got != "0.5, 2" {
		t.Fatalf("joinFloats = %q", got)
	}
}

func TestBuildPipelineFromBenchmark(t *testing.T) {
	p, err := buildPipeline("nf-lowpass-7", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.CUT().Circuit.Name() != "nf-lowpass-7" {
		t.Fatal("wrong benchmark")
	}
	if _, err := buildPipeline("nope", "", "", ""); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
	if _, err := buildPipeline("", "/does/not/exist.cir", "V1", "out"); err == nil {
		t.Fatal("missing netlist file accepted")
	}
}

func TestBuildPipelineFromNetlistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc.cir")
	nl := "rc\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n"
	if err := os.WriteFile(path, []byte(nl), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := buildPipeline("", path, "V1", "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CUT().Passives) != 2 {
		t.Fatalf("passives = %v", p.CUT().Passives)
	}
}

func TestChooseFrequenciesExplicit(t *testing.T) {
	p, err := buildPipeline("nf-lowpass-7", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := chooseFrequencies(p, "0.5, 2.0", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0.5 || got[1] != 2 {
		t.Fatalf("freqs = %v", got)
	}
	if _, err := chooseFrequencies(p, "abc", 1, false); err == nil {
		t.Fatal("bad freq accepted")
	}
}

func TestExportDictionaryWritesJSON(t *testing.T) {
	cut, err := repro.BenchmarkByName("sallen-key-lp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.NewPipeline(cut, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dict.json")
	if err := exportDictionary(p, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sallen-key-lp"`) {
		t.Fatal("export missing circuit name")
	}
	if !strings.Contains(string(data), `"golden"`) {
		t.Fatal("export missing golden row")
	}
}
