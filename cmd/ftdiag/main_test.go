package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/serve"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestJoinFloats(t *testing.T) {
	if got := joinFloats([]float64{0.5, 2}); got != "0.5, 2" {
		t.Fatalf("joinFloats = %q", got)
	}
}

func TestBuildSessionFromBenchmark(t *testing.T) {
	s, err := buildSession("nf-lowpass-7", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if s.CUT().Circuit.Name() != "nf-lowpass-7" {
		t.Fatal("wrong benchmark")
	}
	if _, err := buildSession("nope", "", "", ""); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
	if _, err := buildSession("", "/does/not/exist.cir", "V1", "out"); err == nil {
		t.Fatal("missing netlist file accepted")
	}
}

func TestBuildSessionFromNetlistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc.cir")
	nl := "rc\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n"
	if err := os.WriteFile(path, []byte(nl), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := buildSession("", path, "V1", "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CUT().Passives) != 2 {
		t.Fatalf("passives = %v", s.CUT().Passives)
	}
}

func TestChooseFrequenciesExplicit(t *testing.T) {
	s, err := buildSession("nf-lowpass-7", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got, err := chooseFrequencies(ctx, s, "0.5, 2.0", 1, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0.5 || got[1] != 2 {
		t.Fatalf("freqs = %v", got)
	}
	if _, err := chooseFrequencies(ctx, s, "abc", 1, false, true); err == nil {
		t.Fatal("bad freq accepted")
	}
}

func TestExportDictionaryWritesArtifact(t *testing.T) {
	cut, err := repro.BenchmarkByName("sallen-key-lp")
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.NewSession(cut)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dict.json")
	if err := exportDictionary(context.Background(), s, path, []float64{0.56, 4.55}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sallen-key-lp"`) {
		t.Fatal("export missing circuit name")
	}
	if !strings.Contains(string(data), `"golden"`) {
		t.Fatal("export missing golden row")
	}
	if !strings.Contains(string(data), `"checksum"`) || !strings.Contains(string(data), `"version"`) {
		t.Fatal("export missing artifact envelope")
	}
	// The artifact round-trips through the session loader, with the
	// explicit test frequencies merged into the grid exactly.
	ex, err := s.LoadDictionary(path)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Circuit != "sallen-key-lp" {
		t.Fatalf("loaded circuit = %q", ex.Circuit)
	}
	if off := serve.OffGridFrequencies(ex, []float64{0.56, 4.55}); off != nil {
		t.Fatalf("merged test frequencies missing from grid: %v", off)
	}
}

// TestDiagnoseJSONGolden pins the -json output for a fixed test vector
// and injected fault against a golden file (regenerate with -update).
func TestDiagnoseJSONGolden(t *testing.T) {
	s, err := buildSession("nf-lowpass-7", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	omegas := []float64{0.56, 4.55} // known zero-intersection vector
	fit, err := s.Fitness(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	data, err := diagnoseJSON(ctx, s, nil, omegas, fit, repro.Fault{Component: "R3", Deviation: 0.25}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "diagnose_r3p25.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	// Structure and strings must match exactly; numbers within 1e-9
	// relative tolerance (FMA contraction on some architectures shifts
	// LU-solve results by an ulp, which would break a byte comparison).
	var gotV, wantV any
	if err := json.Unmarshal(data, &gotV); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatal(err)
	}
	if diff := jsonDiff("$", gotV, wantV); diff != "" {
		t.Fatalf("-json output drifted from golden file at %s\n got: %s\nwant: %s", diff, data, want)
	}

	// The envelope is a valid artifact of the report kind.
	var env struct {
		Kind     string          `json:"kind"`
		Version  int             `json:"version"`
		Checksum string          `json:"checksum"`
		Payload  json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Kind != repro.KindDiagnosisReport || env.Version != 1 || env.Checksum != s.Checksum() {
		t.Fatalf("bad envelope: %+v", env)
	}
	var rep diagReport
	if err := json.Unmarshal(env.Payload, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Result.Best().Component != "R3" {
		t.Fatalf("diagnosis = %q, want R3", rep.Result.Best().Component)
	}
	if rep.Rejected == nil || *rep.Rejected {
		t.Fatal("genuine single fault must not be rejected")
	}
}

// jsonDiff compares decoded JSON values: structure, keys, strings and
// bools exactly, numbers to 1e-9 relative tolerance. It returns the
// path of the first mismatch, or "".
func jsonDiff(path string, got, want any) string {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok || len(g) != len(w) {
			return path
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return path + "." + k
			}
			if d := jsonDiff(path+"."+k, gv, wv); d != "" {
				return d
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(g) != len(w) {
			return path
		}
		for i := range w {
			if d := jsonDiff(fmt.Sprintf("%s[%d]", path, i), g[i], w[i]); d != "" {
				return d
			}
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			return path
		}
		scale := math.Max(math.Abs(g), math.Abs(w))
		if scale > 0 && math.Abs(g-w)/scale > 1e-9 {
			return path
		}
	default:
		if got != want {
			return path
		}
	}
	return ""
}

// TestLoadDictionaryFlow pins the -load-dictionary path: a diagnoser
// rebuilt from a saved grid artifact (no re-simulation) diagnoses an
// injected fault identically to the live pipeline.
func TestLoadDictionaryFlow(t *testing.T) {
	s, err := buildSession("nf-lowpass-7", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	omegas := []float64{0.56, 4.55}
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := s.SaveDictionary(ctx, path, omegas); err != nil {
		t.Fatal(err)
	}

	dg, tm, ex, err := serve.DiagnoserFromGrid(s, path, omegas)
	if err != nil {
		t.Fatal(err)
	}
	if off := serve.OffGridFrequencies(ex, omegas); off != nil {
		t.Fatalf("off-grid frequencies %v on an exact-grid artifact", off)
	}
	if tm.Intersections() != 0 {
		t.Fatalf("loaded map intersections = %d, want 0 on the known-good vector", tm.Intersections())
	}
	f := repro.Fault{Component: "R3", Deviation: 0.25}
	got, err := dg.DiagnoseFault(s.Dictionary(), f)
	if err != nil {
		t.Fatal(err)
	}
	liveDG, err := s.Diagnoser(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	want, err := liveDG.DiagnoseFault(s.Dictionary(), f)
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if string(gj) != string(wj) {
		t.Fatalf("artifact-loaded diagnosis drifted from live:\n got: %s\nwant: %s", gj, wj)
	}

	// The full flow helper renders the same verdict without error, and a
	// stale artifact (different CUT) is rejected. Its stdout chatter goes
	// to /dev/null, not the test log.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	realStdout := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = realStdout }()
	if err := runFromArtifact(ctx, s, path, omegas, "R3@+25%", 0.02, true, false, devnull); err != nil {
		t.Fatal(err)
	}
	other, err := buildSession("sallen-key-lp", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := runFromArtifact(ctx, other, path, omegas, "", 0, true, false, devnull); !errors.Is(err, repro.ErrStaleArtifact) {
		t.Fatalf("stale artifact err = %v, want ErrStaleArtifact", err)
	}
}

// TestEvaluateJSONShape sanity-checks the evaluation report payload.
func TestEvaluateJSONShape(t *testing.T) {
	s, err := buildSession("nf-lowpass-7", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data, err := evaluateJSON(ctx, s, nil, []float64{0.56, 4.55}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var rep diagReport
	if err := json.Unmarshal(env.Payload, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Eval == nil || rep.Eval.Total == 0 {
		t.Fatalf("evaluation payload empty: %+v", rep)
	}
	if rep.Eval.Accuracy() < 0.9 {
		t.Fatalf("accuracy = %g, want >= 0.9 on the known-good vector", rep.Eval.Accuracy())
	}
}

// TestDiagnoseProbJSONGolden pins the -json envelope of a
// tolerance-aware run: the probabilistic fields (confidence,
// likelihoods, ambiguity_group) ride inside the same artifact payload
// as the classic diagnosis. Regenerate with -update.
func TestDiagnoseProbJSONGolden(t *testing.T) {
	s, err := repro.NewSession(repro.PaperCUT(),
		repro.WithTolerance(repro.Tolerance{Sigma: 0.05}, 64),
		repro.WithToleranceSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	omegas := []float64{0.56, 4.55}
	fit, err := s.Fitness(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	data, err := diagnoseJSON(ctx, s, nil, omegas, fit, repro.Fault{Component: "R3", Deviation: 0.25}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "diagnose_r3p25_prob.golden.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	var gotV, wantV any
	if err := json.Unmarshal(data, &gotV); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatal(err)
	}
	if diff := jsonDiff("$", gotV, wantV); diff != "" {
		t.Fatalf("probabilistic -json output drifted from golden file at %s\n got: %s\nwant: %s", diff, data, want)
	}

	var env struct {
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var rep diagReport
	if err := json.Unmarshal(env.Payload, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Confidence == nil || *rep.Confidence <= 0 || *rep.Confidence > 1 {
		t.Fatalf("confidence = %v", rep.Confidence)
	}
	if len(rep.Likelihoods) == 0 || rep.Likelihoods[0].Key != "R3" {
		t.Fatalf("likelihoods = %+v, want R3 on top", rep.Likelihoods)
	}
}

// TestWriteTrace pins the -trace dump: a traced session run writes a
// JSON file whose spans include the session stages.
func TestWriteTrace(t *testing.T) {
	tr := repro.NewTracer()
	s, err := repro.NewSession(repro.PaperCUT(), repro.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fitness(context.Background(), []float64{0.56, 4.55}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Spans []repro.TraceSpan `json:"spans"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	found := false
	for _, sp := range dump.Spans {
		if sp.Name == "session.dictionary" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no session.dictionary span in %s", data)
	}
}
