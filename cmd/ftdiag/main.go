// Command ftdiag runs the fault-trajectory ATPG and diagnosis flow on a
// built-in benchmark circuit or an external netlist.
//
// Examples:
//
//	ftdiag -list
//	ftdiag -cut nf-lowpass-7
//	ftdiag -cut nf-lowpass-7 -inject R3@+25%
//	ftdiag -netlist rc.cir -source V1 -output out -inject R1@-30%
//	ftdiag -cut sallen-key-lp -freqs 0.5,2.0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/fault"
	"repro/internal/numeric"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list built-in benchmark circuits and exit")
		cutName  = flag.String("cut", "nf-lowpass-7", "built-in benchmark circuit name")
		nlPath   = flag.String("netlist", "", "netlist file (overrides -cut)")
		source   = flag.String("source", "V1", "driving source name (netlist mode)")
		output   = flag.String("output", "out", "observed output node (netlist mode)")
		inject   = flag.String("inject", "", "fault to inject and diagnose, e.g. R3@+25% (default: evaluate all hold-out faults)")
		freqsArg = flag.String("freqs", "", "comma-separated test frequencies in rad/s (default: GA-optimized)")
		seed     = flag.Int64("seed", 1, "GA random seed")
		full     = flag.Bool("full", false, "use the paper's full 128x15 GA")
		reject   = flag.Float64("reject", 0, "rejection ratio for out-of-model faults (0 disables; try 0.02)")
		export   = flag.String("export", "", "write the fault dictionary grid as JSON to this file and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range repro.Benchmarks() {
			fmt.Printf("%-18s %s\n", c.Circuit.Name(), c.Description)
		}
		return
	}

	p, err := buildPipeline(*cutName, *nlPath, *source, *output)
	if err != nil {
		fail(err)
	}
	cut := p.CUT()
	fmt.Printf("circuit: %s (%d fault targets: %s)\n",
		cut.Circuit.Name(), len(cut.Passives), strings.Join(cut.Passives, ", "))

	if *export != "" {
		if err := exportDictionary(p, *export); err != nil {
			fail(err)
		}
		fmt.Printf("dictionary grid written to %s\n", *export)
		return
	}

	omegas, err := chooseFrequencies(p, *freqsArg, *seed, *full)
	if err != nil {
		fail(err)
	}
	fit, err := p.Fitness(omegas)
	if err != nil {
		fail(err)
	}
	fmt.Printf("test vector: ω = %s rad/s (fitness %.4f)\n", joinFloats(omegas), fit)

	if *inject != "" {
		f, err := fault.ParseID(*inject)
		if err != nil {
			fail(err)
		}
		dg, err := p.Diagnoser(omegas)
		if err != nil {
			fail(err)
		}
		res, err := dg.DiagnoseFault(p.Dictionary(), f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("injected: %s\n%s", f.ID(), res)
		if *reject > 0 && res.Rejected(dg.Extent(), *reject) {
			fmt.Printf("=> REJECTED as out-of-model at ratio %.3g (no single known fault explains the point)\n", *reject)
			return
		}
		best := res.Best()
		status := "MISDIAGNOSED"
		if best.Component == f.Component {
			status = "correctly diagnosed"
		}
		fmt.Printf("=> %s as %s (estimated deviation %+.0f%%)\n", status, best.Component, best.Deviation*100)
		return
	}

	ev, err := p.Evaluate(omegas, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("hold-out evaluation (±15/25/35%% on every target):\n")
	fmt.Printf("  top-1 accuracy: %.1f%%   top-2: %.1f%%   mean deviation error: %.1f%%\n",
		100*ev.Accuracy(), 100*ev.TopTwoAccuracy(), 100*ev.MeanDevError)
	fmt.Printf("confusion matrix:\n%s", ev.ConfusionTable())
}

func buildPipeline(cutName, nlPath, source, output string) (*repro.Pipeline, error) {
	if nlPath != "" {
		text, err := os.ReadFile(nlPath)
		if err != nil {
			return nil, err
		}
		return repro.NewPipelineFromNetlist(string(text), source, output, nil, nil)
	}
	cut, err := repro.BenchmarkByName(cutName)
	if err != nil {
		return nil, err
	}
	return repro.NewPipeline(cut, nil)
}

func chooseFrequencies(p *repro.Pipeline, freqsArg string, seed int64, full bool) ([]float64, error) {
	if freqsArg != "" {
		parts := strings.Split(freqsArg, ",")
		out := make([]float64, 0, len(parts))
		for _, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("bad frequency %q: %v", s, err)
			}
			out = append(out, v)
		}
		return out, nil
	}
	cfg := repro.PaperOptimizeConfig(p.CUT().Omega0)
	cfg.Seed = seed
	if !full {
		cfg.GA.PopSize = 32
		cfg.GA.Generations = 10
	}
	tv, err := p.Optimize(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("GA: %d evaluations, best fitness %.4f, I = %d\n", tv.Evaluations, tv.Fitness, tv.Intersections)
	return tv.Omegas, nil
}

func joinFloats(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = strconv.FormatFloat(v, 'g', 5, 64)
	}
	return strings.Join(parts, ", ")
}

// exportDictionary snapshots the fault dictionary over a two-decade grid
// around the CUT's characteristic frequency and writes it as JSON.
func exportDictionary(p *repro.Pipeline, path string) error {
	omega0 := p.CUT().Omega0
	grid := numeric.Logspace(omega0/100, omega0*100, 25)
	snap, err := p.Dictionary().Snapshot(grid)
	if err != nil {
		return err
	}
	data, err := snap.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ftdiag:", err)
	os.Exit(1)
}
