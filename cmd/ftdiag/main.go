// Command ftdiag runs the fault-trajectory ATPG and diagnosis flow on a
// built-in benchmark circuit or an external netlist.
//
// Examples:
//
//	ftdiag -list
//	ftdiag -cut nf-lowpass-7
//	ftdiag -cut nf-lowpass-7 -inject R3@+25%
//	ftdiag -cut nf-lowpass-7 -inject R3@+25% -json
//	ftdiag -cut nf-lowpass-7 -inject R3@+25% -tolerance 0.05 -mc-samples 200
//	ftdiag -cut nf-lowpass-7 -double-faults -inject R1@+30%+C2@-20%
//	ftdiag -netlist rc.cir -source V1 -output out -inject R1@-30%
//	ftdiag -cut sallen-key-lp -freqs 0.5,2.0
//	ftdiag -cut nf-lowpass-7 -save-trajectories map.json -freqs 0.56,4.55
//
// Ctrl-C cancels the run; the GA and grid builds abort within one
// generation / frequency batch.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/diagnosis"
	"repro/internal/fault"
	"repro/internal/numeric"
	"repro/internal/serve"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list built-in benchmark circuits and exit")
		cutName  = flag.String("cut", "nf-lowpass-7", "built-in benchmark circuit name")
		nlPath   = flag.String("netlist", "", "netlist file (overrides -cut)")
		source   = flag.String("source", "V1", "driving source name (netlist mode)")
		output   = flag.String("output", "out", "observed output node (netlist mode)")
		inject   = flag.String("inject", "", "fault to inject and diagnose, e.g. R3@+25% or R1@+30%+C2@-20% (default: evaluate all hold-out faults)")
		freqsArg = flag.String("freqs", "", "comma-separated test frequencies in rad/s (default: GA-optimized)")
		seed     = flag.Int64("seed", 1, "GA random seed")
		full     = flag.Bool("full", false, "use the paper's full 128x15 GA")
		doubles  = flag.Bool("double-faults", false, "model double faults: the trajectory map gains pair families and multi-fault injections are named, not rejected")
		maxDbl   = flag.Int("max-double-faults", 0, "cap the modeled double-fault universe (0 = no cap)")
		reject   = flag.Float64("reject", 0, "rejection ratio for out-of-model faults (0 disables; try 0.02)")
		tolSigma = flag.Float64("tolerance", 0, "component tolerance sigma for probabilistic diagnosis (requires -mc-samples)")
		mcSamp   = flag.Int("mc-samples", 0, "Monte-Carlo samples per fault cloud; > 0 adds a likelihood-ranked probabilistic diagnosis with confidence and ambiguity groups")
		export   = flag.String("export", "", "write the fault dictionary grid as a versioned artifact to this file and exit")
		saveTraj = flag.String("save-trajectories", "", "write the trajectory map as a versioned artifact to this file and exit")
		loadDict = flag.String("load-dictionary", "", "diagnose against a saved dictionary-grid artifact (requires -freqs; skips grid re-simulation)")
		jsonOut  = flag.Bool("json", false, "emit the diagnosis/evaluation as machine-readable JSON")
		progress = flag.Bool("progress", false, "stream per-generation GA progress to stderr")
		trace    = flag.String("trace", "", "write a JSON timing trace (session stages + per-frequency engine columns) to this file on exit")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(repro.VersionString("ftdiag"))
		return
	}

	if *list {
		for _, c := range repro.Benchmarks() {
			fmt.Printf("%-18s %s\n", c.Circuit.Name(), c.Description)
		}
		fmt.Println("\nparameterized families (any size n, e.g. -cut rc-ladder-128):")
		for _, f := range repro.BenchmarkFamilies() {
			fmt.Printf("  %s\n", f)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []repro.Option
	if *progress {
		opts = append(opts, repro.WithProgress(func(p repro.Progress) {
			if p.Stage == repro.StageOptimize {
				fmt.Fprintf(os.Stderr, "ftdiag: GA generation %d/%d best fitness %.4f\n",
					p.Completed, p.Total, p.BestFitness)
			}
		}))
	}
	if *doubles {
		opts = append(opts, repro.WithDoubleFaults(*maxDbl))
	}
	if *mcSamp > 0 {
		opts = append(opts,
			repro.WithTolerance(repro.Tolerance{Sigma: *tolSigma}, *mcSamp),
			repro.WithToleranceSeed(*seed))
	}
	if *trace != "" {
		tracer := repro.NewTracer()
		opts = append(opts, repro.WithTracer(tracer))
		// Deferred so every successful exit path dumps the trace (fail()
		// exits hard, so aborted runs leave no partial file).
		defer func() {
			if err := writeTrace(*trace, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "ftdiag: trace:", err)
			}
		}()
	}
	s, err := buildSession(*cutName, *nlPath, *source, *output, opts...)
	if err != nil {
		fail(err)
	}
	cut := s.CUT()
	if !*jsonOut {
		fmt.Printf("circuit: %s (%d fault targets: %s)\n",
			cut.Circuit.Name(), len(cut.Passives), strings.Join(cut.Passives, ", "))
	}

	// Status lines go to stderr under -json so stdout stays pure JSON.
	status := os.Stdout
	if *jsonOut {
		status = os.Stderr
	}

	if *export != "" {
		// Explicit -freqs are merged into the exported grid so a later
		// -load-dictionary (or ftserve warm start) at those frequencies
		// reads stored responses bit-for-bit instead of interpolating.
		var extra []float64
		if *freqsArg != "" {
			if extra, err = repro.ParseFrequencies(*freqsArg); err != nil {
				fail(err)
			}
		}
		if err := exportDictionary(ctx, s, *export, extra); err != nil {
			fail(err)
		}
		fmt.Fprintf(status, "dictionary artifact written to %s\n", *export)
		return
	}

	if *loadDict != "" && *freqsArg == "" {
		fail(fmt.Errorf("-load-dictionary requires -freqs: the saved grid replaces simulation, so the GA cannot search for a test vector"))
	}

	omegas, err := chooseFrequencies(ctx, s, *freqsArg, *seed, *full, *jsonOut)
	if err != nil {
		fail(err)
	}

	if *loadDict != "" {
		if err := runFromArtifact(ctx, s, *loadDict, omegas, *inject, *reject, *jsonOut, *doubles, status); err != nil {
			fail(err)
		}
		return
	}

	if *saveTraj != "" {
		m, err := s.Trajectories(ctx, omegas)
		if err != nil {
			fail(err)
		}
		if err := s.SaveTrajectories(*saveTraj, m); err != nil {
			fail(err)
		}
		fmt.Fprintf(status, "trajectory-map artifact written to %s\n", *saveTraj)
		return
	}

	fit, err := s.Fitness(ctx, omegas)
	if err != nil {
		fail(err)
	}
	if !*jsonOut {
		fmt.Printf("test vector: ω = %s rad/s (fitness %.4f)\n", joinFloats(omegas), fit)
	}

	if *inject != "" {
		set, err := fault.ParseSetID(*inject)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			data, err := diagnoseJSON(ctx, s, nil, omegas, fit, set, *reject)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		dg, err := s.Diagnoser(ctx, omegas)
		if err != nil {
			fail(err)
		}
		if err := printInjected(ctx, s, dg, omegas, set, *reject); err != nil {
			fail(err)
		}
		return
	}

	if *jsonOut {
		data, err := evaluateJSON(ctx, s, nil, omegas, fit, *doubles)
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	if !*doubles {
		ev, err := s.Evaluate(ctx, omegas, nil)
		if err != nil {
			fail(err)
		}
		printEvaluation(ev)
		return
	}
	// Double-fault flow: build the (expensive) pair map once and run
	// both evaluations against it.
	dg, err := s.Diagnoser(ctx, omegas)
	if err != nil {
		fail(err)
	}
	ev, err := dg.Evaluate(ctx, s.Dictionary(), diagnosis.HoldOutTrials(s.Universe(), diagnosis.DefaultHoldOutDeviations()))
	if err != nil {
		fail(err)
	}
	printEvaluation(ev)
	dev, err := evaluateDoubles(ctx, s, dg)
	if err != nil {
		fail(err)
	}
	printDoubleEvaluation(dev)
}

// doubleHoldOutCap bounds the double-fault hold-out trial count: the
// full off-grid pair sweep grows quadratically and a capped prefix
// already measures naming accuracy.
const doubleHoldOutCap = 210

// evaluateDoubles runs the double-fault hold-out evaluation — off-grid
// pair injections diagnosed against dg's map (built once by the caller
// and shared with the single-fault evaluation).
func evaluateDoubles(ctx context.Context, s *repro.Session, dg *repro.Diagnoser) (*repro.Evaluation, error) {
	trials, err := s.HoldOutDoubleFaults([]float64{-0.25, 0.25}, doubleHoldOutCap)
	if err != nil {
		return nil, err
	}
	return s.EvaluateSets(ctx, dg, trials)
}

// printInjected diagnoses one injected fault set against dg and prints
// the human-readable verdict, followed by the probabilistic ranking
// when the session carries a tolerance model.
func printInjected(ctx context.Context, s *repro.Session, dg *repro.Diagnoser, omegas []float64, set repro.FaultSet, reject float64) error {
	res, err := dg.DiagnoseSet(s.Dictionary(), set)
	if err != nil {
		return err
	}
	fmt.Printf("injected: %s\n%s", set.ID(), res)
	if reject > 0 && res.Rejected(dg.Extent(), reject) {
		fmt.Printf("=> REJECTED as out-of-model at ratio %.3g (no modeled fault explains the point)\n", reject)
		return nil
	}
	best := res.Best()
	status := "MISDIAGNOSED"
	if best.Key() == repro.FaultSetKey(set) {
		status = "correctly diagnosed"
	}
	if best.IsMulti() {
		parts := make([]string, len(best.Components))
		for i, c := range best.Components {
			parts[i] = fmt.Sprintf("%s%+.0f%%", c, best.Deviations[i]*100)
		}
		fmt.Printf("=> %s as double fault %s\n", status, strings.Join(parts, " + "))
		return nil
	}
	fmt.Printf("=> %s as %s (estimated deviation %+.0f%%)\n", status, best.Component, best.Deviation*100)
	return printProb(ctx, s, dg, omegas, res)
}

// printProb renders the probabilistic ranking of an already-diagnosed
// point — a no-op for sessions without a tolerance model.
func printProb(ctx context.Context, s *repro.Session, dg *repro.Diagnoser, omegas []float64, res *repro.DiagnosisResult) error {
	prob, err := probScore(ctx, s, dg, omegas, res)
	if err != nil || prob == nil {
		return err
	}
	tol, samples := s.Tolerance()
	fmt.Printf("probabilistic diagnosis (sigma %.3g, %d samples): confidence %.1f%%\n",
		tol.Sigma, samples, 100*prob.Confidence)
	top := prob.Candidates
	if len(top) > 3 {
		top = top[:3]
	}
	for i, c := range top {
		fmt.Printf("  %d. %-12s p = %.3f  (log-likelihood %.2f)\n", i+1, c.Key, c.Probability, c.LogLikelihood)
	}
	if len(prob.AmbiguityGroup) > 0 {
		fmt.Printf("  ambiguity group: %s\n", strings.Join(prob.AmbiguityGroup, ", "))
	}
	return nil
}

// probScore builds the session's signature-cloud model and scores the
// diagnosed point against it. Sessions without WithTolerance (no
// -mc-samples) return nil without work.
func probScore(ctx context.Context, s *repro.Session, dg *repro.Diagnoser, omegas []float64, res *repro.DiagnosisResult) (*repro.ProbabilisticResult, error) {
	if _, samples := s.Tolerance(); samples == 0 {
		return nil, nil
	}
	cs, err := s.Clouds(ctx, omegas)
	if err != nil {
		return nil, err
	}
	return s.DiagnoseProbabilistic(dg, cs, []float64(res.Point))
}

func printEvaluation(ev *repro.Evaluation) {
	fmt.Printf("hold-out evaluation (±15/25/35%% on every target):\n")
	fmt.Printf("  top-1 accuracy: %.1f%%   top-2: %.1f%%   mean deviation error: %.1f%%\n",
		100*ev.Accuracy(), 100*ev.TopTwoAccuracy(), 100*ev.MeanDevError)
	fmt.Printf("confusion matrix:\n%s", ev.ConfusionTable())
}

func printDoubleEvaluation(ev *repro.Evaluation) {
	fmt.Printf("double-fault hold-out evaluation (±25%% pair injections, %d trials):\n", ev.Total)
	fmt.Printf("  top-1 accuracy: %.1f%%   top-2: %.1f%%   mean deviation error: %.1f%%\n",
		100*ev.Accuracy(), 100*ev.TopTwoAccuracy(), 100*ev.MeanDevError)
}

// runFromArtifact is the -load-dictionary flow: rebuild the diagnosis
// stage from a saved dictionary-grid artifact (checksum-validated against
// this session's CUT) through the same load path the ftserve registry
// warm-starts from, skipping grid re-simulation entirely. With doubles
// set (the artifact then stores pair rows — checksums only match
// between double-fault sessions and double-fault artifacts), the
// rebuilt map carries the pair families and the evaluation flow appends
// the double-fault hold-out pass.
func runFromArtifact(ctx context.Context, s *repro.Session, path string, omegas []float64, inject string, reject float64, jsonOut, doubles bool, status *os.File) error {
	dg, tm, ex, err := serve.DiagnoserFromGrid(s, path, omegas)
	if err != nil {
		return err
	}
	// The paper fitness 1/(1+I) is recoverable from the loaded map.
	fit := 1 / (1 + float64(tm.Intersections()))
	fmt.Fprintf(status, "dictionary artifact %s loaded (grid re-simulation skipped)\n", path)
	if off := serve.OffGridFrequencies(ex, omegas); len(off) > 0 {
		fmt.Fprintf(status, "warning: ω = %s not stored in the grid; trajectories are log-ω interpolated and may misrank close faults (re-export with -export -freqs to pin them)\n", joinFloats(off))
	}
	if inject != "" {
		set, err := fault.ParseSetID(inject)
		if err != nil {
			return err
		}
		if jsonOut {
			data, err := diagnoseJSON(ctx, s, dg, omegas, fit, set, reject)
			if err != nil {
				return err
			}
			os.Stdout.Write(data)
			fmt.Println()
			return nil
		}
		return printInjected(ctx, s, dg, omegas, set, reject)
	}
	if jsonOut {
		data, err := evaluateJSON(ctx, s, dg, omegas, fit, doubles)
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
		fmt.Println()
		return nil
	}
	ev, err := dg.Evaluate(ctx, s.Dictionary(), diagnosis.HoldOutTrials(s.Dictionary().Universe(), diagnosis.DefaultHoldOutDeviations()))
	if err != nil {
		return err
	}
	printEvaluation(ev)
	if doubles {
		dev, err := evaluateDoubles(ctx, s, dg)
		if err != nil {
			return err
		}
		printDoubleEvaluation(dev)
	}
	return nil
}

func buildSession(cutName, nlPath, source, output string, opts ...repro.Option) (*repro.Session, error) {
	if nlPath != "" {
		text, err := os.ReadFile(nlPath)
		if err != nil {
			return nil, err
		}
		return repro.NewSessionFromNetlist(string(text), source, output, opts...)
	}
	cut, err := repro.BenchmarkByName(cutName)
	if err != nil {
		return nil, err
	}
	return repro.NewSession(cut, opts...)
}

func chooseFrequencies(ctx context.Context, s *repro.Session, freqsArg string, seed int64, full, quiet bool) ([]float64, error) {
	if freqsArg != "" {
		return repro.ParseFrequencies(freqsArg)
	}
	cfg := repro.PaperOptimizeConfig(s.CUT().Omega0)
	cfg.Seed = seed
	if !full {
		cfg.GA.PopSize = 32
		cfg.GA.Generations = 10
	}
	tv, err := s.Optimize(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Printf("GA: %d evaluations, best fitness %.4f, I = %d\n", tv.Evaluations, tv.Fitness, tv.Intersections)
	}
	return tv.Omegas, nil
}

// diagReport is the machine-readable payload ftdiag -json wraps in the
// versioned artifact envelope.
type diagReport struct {
	Circuit  string                 `json:"circuit"`
	Omegas   []float64              `json:"omegas"`
	Fitness  float64                `json:"fitness"`
	Injected string                 `json:"injected,omitempty"`
	Rejected *bool                  `json:"rejected,omitempty"`
	Result   *repro.DiagnosisResult `json:"result,omitempty"`
	// Probabilistic fields, present when the session carries a
	// tolerance model (-tolerance/-mc-samples).
	Confidence     *float64                       `json:"confidence,omitempty"`
	Likelihoods    []repro.ProbabilisticCandidate `json:"likelihoods,omitempty"`
	AmbiguityGroup []string                       `json:"ambiguity_group,omitempty"`
	Eval           *repro.Evaluation              `json:"evaluation,omitempty"`
	DoubleEval     *repro.Evaluation              `json:"double_evaluation,omitempty"`
}

// diagnoseJSON runs the injected-fault diagnosis (single or multiple)
// and renders the envelope. A nil dg is built live from the session; a
// non-nil one (the -load-dictionary path) is used as-is.
func diagnoseJSON(ctx context.Context, s *repro.Session, dg *repro.Diagnoser, omegas []float64, fit float64, set repro.FaultSet, rejectRatio float64) ([]byte, error) {
	if dg == nil {
		var err error
		dg, err = s.Diagnoser(ctx, omegas)
		if err != nil {
			return nil, err
		}
	}
	res, err := dg.DiagnoseSet(s.Dictionary(), set)
	if err != nil {
		return nil, err
	}
	rep := diagReport{
		Circuit:  s.CUT().Circuit.Name(),
		Omegas:   omegas,
		Fitness:  fit,
		Injected: set.ID(),
		Result:   res,
	}
	if rejectRatio > 0 {
		rejected := res.Rejected(dg.Extent(), rejectRatio)
		rep.Rejected = &rejected
	}
	prob, err := probScore(ctx, s, dg, omegas, res)
	if err != nil {
		return nil, err
	}
	if prob != nil {
		conf := prob.Confidence
		rep.Confidence = &conf
		rep.Likelihoods = prob.Candidates
		rep.AmbiguityGroup = prob.AmbiguityGroup
	}
	return s.EncodeArtifact(repro.KindDiagnosisReport, rep)
}

// evaluateJSON runs the hold-out evaluation (plus the double-fault one
// when requested) and renders the envelope. A nil dg is built live from
// the session; a non-nil one (the -load-dictionary path) evaluates
// against the loaded map. Either way one map serves both evaluations.
func evaluateJSON(ctx context.Context, s *repro.Session, dg *repro.Diagnoser, omegas []float64, fit float64, doubles bool) ([]byte, error) {
	if dg == nil {
		var err error
		dg, err = s.Diagnoser(ctx, omegas)
		if err != nil {
			return nil, err
		}
	}
	ev, err := dg.Evaluate(ctx, s.Dictionary(), diagnosis.HoldOutTrials(s.Dictionary().Universe(), diagnosis.DefaultHoldOutDeviations()))
	if err != nil {
		return nil, err
	}
	rep := diagReport{
		Circuit: s.CUT().Circuit.Name(),
		Omegas:  omegas,
		Fitness: fit,
		Eval:    ev,
	}
	if doubles {
		rep.DoubleEval, err = evaluateDoubles(ctx, s, dg)
		if err != nil {
			return nil, err
		}
	}
	return s.EncodeArtifact(repro.KindDiagnosisReport, rep)
}

func joinFloats(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = strconv.FormatFloat(v, 'g', 5, 64)
	}
	return strings.Join(parts, ", ")
}

// exportDictionary persists the fault dictionary over a two-decade grid
// around the CUT's characteristic frequency as a versioned artifact.
// Extra frequencies (an intended test vector) are merged into the grid
// so later loads at those frequencies are exact, not interpolated.
func exportDictionary(ctx context.Context, s *repro.Session, path string, extra []float64) error {
	omega0 := s.CUT().Omega0
	grid := numeric.Logspace(omega0/100, omega0*100, 25)
	grid = append(grid, extra...)
	sort.Float64s(grid)
	uniq := grid[:0]
	for i, w := range grid {
		if i == 0 || w != uniq[len(uniq)-1] {
			uniq = append(uniq, w)
		}
	}
	return s.SaveDictionary(ctx, path, uniq)
}

// writeTrace dumps the collected spans as the -trace JSON file.
func writeTrace(path string, tr *repro.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ftdiag:", err)
	os.Exit(1)
}
