package main

import (
	"math"

	"repro"
	"repro/internal/circuits"
	"repro/internal/diagnosis"
	"repro/internal/geometry"
	"repro/internal/numeric"
	"repro/internal/opamp"
	"repro/internal/trajectory"
)

// e12Active reproduces the paper's active-device fault model: "faults on
// active devices will be represented as % deviation on the values of
// their macro model". The CUT's ideal opamp is replaced by the FFM-style
// macromodel and the fault universe is extended with the macromodel's
// elements (gain stage, pole capacitor, input and output resistances)
// alongside the seven passives.
func (r *runner) e12Active() error {
	r.header("E12", "extension: active-device (opamp macromodel) faults per the FFM")
	// Moderate macromodel parameters keep the amp's pole near enough to
	// the normalized band that GBW/A0 faults are observable: A0 = 10⁴,
	// pole at 10 rad/s.
	params := opamp.Params{A0: 1e4, GBW: 1e5, Rin: 1e6, Rout: 1}
	cut, err := circuits.NFLowpass7Macro(params)
	if err != nil {
		return err
	}
	// Extend the fault targets with the macromodel elements. U1.E is the
	// gain stage (A0 fault), U1.Cp the dominant pole (GBW fault).
	cut.Passives = append(append([]string(nil), cut.Passives...),
		"U1.E", "U1.Cp", "U1.Rin", "U1.Rout")
	p, err := repro.NewSession(cut)
	if err != nil {
		return err
	}
	cfg := r.gaConfig(cut.Omega0)
	tv, err := p.Optimize(r.ctx, cfg)
	if err != nil {
		return err
	}
	r.printf("test vector: ω = %s rad/s (I = %d over %d targets)\n",
		fmtOmegas(tv.Omegas), tv.Intersections, len(cut.Passives))

	ev, err := p.Evaluate(r.ctx, tv.Omegas, nil)
	if err != nil {
		return err
	}
	r.printf("hold-out accuracy over passives + macromodel: top-1 %.1f%%, top-2 %.1f%%\n",
		100*ev.Accuracy(), 100*ev.TopTwoAccuracy())
	r.printf("per-target accuracy:\n")
	for _, comp := range cut.Passives {
		cs := ev.PerComponent[comp]
		if cs == nil {
			continue
		}
		r.printf("  %-8s %3d/%d\n", comp, cs.Correct, cs.Total)
	}
	r.printf("expected shape: with noiseless signatures every distinct-direction target\n")
	r.printf("diagnoses, macromodel parameters included; weakly observable parameters\n")
	r.printf("(e.g. Rin at 1 MΩ behind a virtual ground) are the first to fall under the\n")
	r.printf("noise floor of experiment E8's measurement path\n")
	return nil
}

// e13Grid ablates the fault-dictionary deviation grid: the paper uses
// 10% steps over ±40%; how much resolution does diagnosis actually need?
func (r *runner) e13Grid() error {
	r.header("E13", "ablation: dictionary deviation-grid resolution")
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	grids := []struct {
		name string
		devs []float64
	}{
		{"5% steps", stepsGrid(0.05, 0.4)},
		{"10% steps (paper)", stepsGrid(0.10, 0.4)},
		{"20% steps", stepsGrid(0.20, 0.4)},
		{"endpoints only", []float64{-0.4, 0.4}},
	}
	r.printf("%-18s %6s %9s %9s %10s\n", "grid", "dict", "top1-acc", "top2-acc", "mean |Δdev|")
	for _, g := range grids {
		p, err := repro.NewSession(repro.PaperCUT(), repro.WithDeviations(g.devs...))
		if err != nil {
			return err
		}
		ev, err := p.Evaluate(r.ctx, tv.Omegas, nil)
		if err != nil {
			return err
		}
		r.printf("%-18s %6d %8.1f%% %8.1f%% %9.1f%%\n", g.name,
			p.Dictionary().Universe().Size(), 100*ev.Accuracy(), 100*ev.TopTwoAccuracy(), 100*ev.MeanDevError)
	}
	r.printf("expected shape: accuracy is insensitive to grid density (trajectories are\n")
	r.printf("near-straight between points); deviation estimation degrades on coarse grids\n")
	return nil
}

func stepsGrid(step, span float64) []float64 {
	var out []float64
	for d := -span; d <= span+1e-9; d += step {
		if math.Abs(d) > 1e-9 {
			out = append(out, math.Round(d*100)/100)
		}
	}
	return out
}

// e14Deployed measures the deployment path: the trajectory map is
// rebuilt purely from the exported JSON grid (log-ω interpolation, no
// simulator) and must diagnose as well as the live map.
func (r *runner) e14Deployed() error {
	r.header("E14", "extension: diagnosis from a shipped dictionary export (no simulator)")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	d := p.Dictionary()

	for _, gridSize := range []int{21, 41, 81} {
		grid := numeric.Logspace(0.01, 100, gridSize)
		snap, err := d.Snapshot(grid)
		if err != nil {
			return err
		}
		m, err := trajectory.BuildFromExport(snap, tv.Omegas)
		if err != nil {
			return err
		}
		dg, err := diagnosis.New(m)
		if err != nil {
			return err
		}
		trials := diagnosis.HoldOutTrials(d.Universe(), diagnosis.DefaultHoldOutDeviations())
		correct := 0
		for _, f := range trials {
			sig, err := d.Signature(f, tv.Omegas)
			if err != nil {
				return err
			}
			res, err := dg.Diagnose(geometry.VecN(sig))
			if err != nil {
				return err
			}
			if res.Best().Component == f.Component {
				correct++
			}
		}
		r.printf("export grid %3d points: top-1 accuracy %5.1f%% (%d/%d)\n",
			gridSize, 100*float64(correct)/float64(len(trials)), correct, len(trials))
	}
	r.printf("expected shape: a modest export grid (tens of points over 4 decades)\n")
	r.printf("preserves live accuracy — the dictionary JSON is a deployable artifact\n")
	return nil
}
