// Command ftbench regenerates every figure and experiment of the
// reproduced paper (see DESIGN.md for the experiment index) and prints
// the results as text tables. Typical use:
//
//	ftbench                  # run everything (quick GA settings)
//	ftbench -e E4 -full      # one experiment with the paper's full GA
//	ftbench -seed 7          # different random seed
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro"
)

func main() {
	var (
		exp           = flag.String("e", "all", "experiment to run: E1..E15, HOTPATH, MULTIFAULT, TOLERANCE, SPARSE, or 'all'")
		seed          = flag.Int64("seed", 1, "random seed for GA and noise draws")
		full          = flag.Bool("full", false, "use the paper's full GA (128x15) everywhere (slower)")
		hotpathOut    = flag.String("hotpath-out", "BENCH_hotpath.json", "output path for the HOTPATH benchmark report")
		multifaultOut = flag.String("multifault-out", "BENCH_multifault.json", "output path for the MULTIFAULT benchmark report")
		toleranceOut  = flag.String("tolerance-out", "BENCH_tolerance.json", "output path for the TOLERANCE experiment report")
		sparseOut     = flag.String("sparse-out", "BENCH_sparse.json", "output path for the SPARSE benchmark report")
		date          = flag.String("date", "", "date stamp for benchmark reports (YYYY-MM-DD; empty = today UTC)")
		gate          = flag.String("gate", "", "baseline BENCH_hotpath.json to gate the HOTPATH run against (empty = no gate)")
		sparseGate    = flag.String("sparse-gate", "", "baseline BENCH_sparse.json to gate the SPARSE run against (empty = no gate)")
		gateTol       = flag.Float64("gate-tol", 0.10, "fractional ns/op regression the HOTPATH and SPARSE gates tolerate")
		trace         = flag.String("trace", "", "write a JSON timing trace with one span per experiment to this file on exit")
		version       = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(repro.VersionString("ftbench"))
		return
	}

	// Ctrl-C cancels the context; every v2 stage aborts within one GA
	// generation / frequency batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := &runner{ctx: ctx, seed: *seed, full: *full, out: os.Stdout, hotpathOut: *hotpathOut, multifaultOut: *multifaultOut,
		toleranceOut: *toleranceOut, sparseOut: *sparseOut, date: *date, gate: *gate, sparseGate: *sparseGate, gateTol: *gateTol}
	experiments := map[string]func() error{
		// HOTPATH, MULTIFAULT, TOLERANCE, and SPARSE are opt-in (not part
		// of 'all'): they write BENCH_hotpath.json / BENCH_multifault.json
		// / BENCH_tolerance.json / BENCH_sparse.json respectively.
		"HOTPATH":    runner.hotpath,
		"MULTIFAULT": runner.multifault,
		"TOLERANCE":  runner.tolerance,
		"SPARSE":     runner.sparse,
		"E1":         runner.e1Dictionary,
		"E2":         runner.e2Transform,
		"E3":         runner.e3Trajectory,
		"E4":         runner.e4GA,
		"E5":         runner.e5Baselines,
		"E6":         runner.e6Frequencies,
		"E7":         runner.e7GAAblation,
		"E8":         runner.e8Noise,
		"E9":         runner.e9Circuits,
		"E10":        runner.e10Reject,
		"E11":        runner.e11Tolerance,
		"E12":        runner.e12Active,
		"E13":        runner.e13Grid,
		"E14":        runner.e14Deployed,
		"E15":        runner.e15Catastrophic,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}

	// -trace wraps every experiment in a span; the dump is written on
	// successful exit (os.Exit on a failed experiment skips it).
	var tracer *repro.Tracer
	if *trace != "" {
		tracer = repro.NewTracer()
		defer func() {
			f, err := os.Create(*trace)
			if err == nil {
				err = tracer.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "ftbench: trace:", err)
			}
		}()
	}
	runExperiment := func(name string, f func() error) error {
		if tracer != nil {
			defer tracer.StartSpan("experiment." + name).End()
		}
		return f()
	}

	which := strings.ToUpper(*exp)
	if which == "ALL" {
		for _, name := range order {
			if err := runExperiment(name, experiments[name]); err != nil {
				fmt.Fprintf(os.Stderr, "ftbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	f, ok := experiments[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "ftbench: unknown experiment %q (want E1..E15, HOTPATH, MULTIFAULT, TOLERANCE, SPARSE, or all)\n", *exp)
		os.Exit(2)
	}
	if err := runExperiment(which, f); err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %s: %v\n", which, err)
		os.Exit(1)
	}
}
