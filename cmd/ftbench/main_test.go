package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestRunner() (*runner, *bytes.Buffer) {
	var buf bytes.Buffer
	return &runner{ctx: context.Background(), seed: 1, full: false, out: &buf}, &buf
}

func TestE1OutputShape(t *testing.T) {
	r, buf := newTestRunner()
	if err := r.e1Dictionary(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"golden", "-40%", "+40%", "Fig.1", "R3@-40%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("E1 output missing %q", frag)
		}
	}
}

func TestE2OutputShape(t *testing.T) {
	r, buf := newTestRunner()
	if err := r.e2Transform(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"A1", "B2", "origin"} {
		if !strings.Contains(out, frag) {
			t.Errorf("E2 output missing %q", frag)
		}
	}
}

func TestE3DiagnosesCorrectly(t *testing.T) {
	r, buf := newTestRunner()
	if err := r.e3Trajectory(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CORRECT") {
		t.Fatalf("E3 did not diagnose correctly:\n%s", out)
	}
	if !strings.Contains(out, "Fig.3") {
		t.Error("E3 chart missing")
	}
}

func TestE4ReachesHighFitness(t *testing.T) {
	r, buf := newTestRunner()
	if err := r.e4GA(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fitness = 1.0000") {
		t.Fatalf("E4 did not reach fitness 1:\n%s", out)
	}
}

func TestE13GridAblation(t *testing.T) {
	r, buf := newTestRunner()
	if err := r.e13Grid(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"5% steps", "10% steps (paper)", "endpoints only"} {
		if !strings.Contains(out, frag) {
			t.Errorf("E13 output missing %q", frag)
		}
	}
}

func TestE14Deployed(t *testing.T) {
	r, buf := newTestRunner()
	if err := r.e14Deployed(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "export grid") {
		t.Error("E14 output malformed")
	}
}

func TestStepsGrid(t *testing.T) {
	g := stepsGrid(0.1, 0.4)
	if len(g) != 8 {
		t.Fatalf("paper grid = %v", g)
	}
	for _, d := range g {
		if d == 0 {
			t.Fatal("zero deviation in grid")
		}
	}
}

func TestFmtOmegas(t *testing.T) {
	if got := fmtOmegas([]float64{0.5, 2}); got != "0.5, 2" {
		t.Fatalf("fmtOmegas = %q", got)
	}
}

func TestHotpathWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks; skipped in -short mode")
	}
	r, buf := newTestRunner()
	r.hotpathOut = filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := r.hotpath(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(r.hotpathOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep hotpathReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	want := map[string]bool{"fitness_eval": false, "trajectory_build": false, "ga_paper_params": false}
	for _, e := range rep.Entries {
		want[e.Name] = true
		if e.NsPerOp <= 0 || e.N <= 0 {
			t.Errorf("entry %s has non-positive measurements: %+v", e.Name, e)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report is missing entry %q", name)
		}
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Error("hotpath did not report its output path")
	}
}
