package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// multifault measures the rank-k batch path against the classic
// per-fault full-LU clone path on the paper CUT's complete double-fault
// universe (every component pair × paper deviations), and writes
// BENCH_multifault.json:
//
//   - multifault_batched: one engine.BatchResponsesSets pass over the
//     whole (pair × frequency) grid — per frequency one golden LU, one
//     z-solve per distinct slot, and a k×k Woodbury solve per pair;
//   - multifault_clones: the same grid the pre-rank-k way — clone the
//     circuit per pair, reassemble, and fully factor per (pair,
//     frequency).
//
// Before timing, the two paths are cross-checked to 1e-9 relative
// agreement, so the recorded speedup is between verified-equal answers.
func (r *runner) multifault() error {
	r.header("MULTIFAULT", "batched rank-k vs full-LU clones on the double-fault universe → "+r.multifaultOut)
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		return err
	}
	pairs, err := u.Pairs(nil, 0)
	if err != nil {
		return err
	}
	sets := make([]fault.Set, len(pairs))
	for i, p := range pairs {
		sets[i] = p
	}
	eng, err := engine.New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		return err
	}
	omegas := numeric.Logspace(cut.Omega0/100, cut.Omega0*100, 9)
	r.printf("  universe: %d double faults × %d frequencies\n", len(pairs), len(omegas))

	// cloneGrid is the baseline: per pair, apply to a clone, assemble,
	// and solve the full system per frequency.
	cloneGrid := func() ([][]float64, error) {
		out := make([][]float64, len(pairs))
		for i, p := range pairs {
			faulty, err := p.Apply(cut.Circuit)
			if err != nil {
				return nil, err
			}
			ac, err := analysis.NewAC(faulty)
			if err != nil {
				return nil, err
			}
			row := make([]float64, len(omegas))
			for j, w := range omegas {
				h, err := ac.Transfer(cut.Source, cut.Output, w)
				if err != nil {
					return nil, err
				}
				row[j] = cmplx.Abs(h)
			}
			out[i] = row
		}
		return out, nil
	}

	// Cross-check once before timing anything.
	batch, err := eng.BatchResponsesSets(r.ctx, sets, omegas, 0)
	if err != nil {
		return err
	}
	ref, err := cloneGrid()
	if err != nil {
		return err
	}
	var peak float64
	for _, g := range batch.Golden {
		peak = math.Max(peak, g)
	}
	for i := range pairs {
		for j := range omegas {
			a, b := batch.Mags[i][j], ref[i][j]
			scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-3*peak)
			if math.Abs(a-b)/scale > 1e-9 {
				return fmt.Errorf("multifault: %s at ω=%g: batched %.15g vs clone %.15g",
					pairs[i].ID(), omegas[j], a, b)
			}
		}
	}
	r.printf("  cross-check: batched == clones to 1e-9 on all %d×%d responses\n", len(pairs), len(omegas))

	rep := newBenchReport(r.date)
	record := func(name string, res testing.BenchmarkResult) error {
		if err := r.ctx.Err(); err != nil {
			return fmt.Errorf("multifault: %s: %w", name, err)
		}
		if res.N == 0 {
			return fmt.Errorf("multifault: %s: benchmark failed (see log above)", name)
		}
		e := hotpathEntry{
			Name:        name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		rep.Entries = append(rep.Entries, e)
		r.printf("  %-20s %14.0f ns/op %8d allocs/op %12d B/op  (n=%d)\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.N)
		return nil
	}

	err = record("multifault_batched", testing.Benchmark(func(b *testing.B) {
		var out engine.Batch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.BatchResponsesSetsInto(r.ctx, sets, omegas, 1, &out); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if err != nil {
		return err
	}
	err = record("multifault_clones", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cloneGrid(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if err != nil {
		return err
	}
	if len(rep.Entries) == 2 && rep.Entries[0].NsPerOp > 0 {
		r.printf("  speedup: %.1f× (batched rank-k over per-pair clones)\n",
			rep.Entries[1].NsPerOp/rep.Entries[0].NsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(r.multifaultOut, data, 0o644); err != nil {
		return fmt.Errorf("multifault: %w", err)
	}
	r.printf("  wrote %s\n", r.multifaultOut)
	return nil
}
