package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro"
	"repro/internal/fault"
	"repro/internal/numeric"
	"repro/internal/plot"
)

// runner holds shared experiment state. The context bounds every
// long-running stage, so Ctrl-C during a slow experiment aborts within
// one GA generation / frequency batch.
type runner struct {
	ctx           context.Context
	seed          int64
	full          bool
	out           io.Writer
	hotpathOut    string  // destination of the HOTPATH report
	multifaultOut string  // destination of the MULTIFAULT report
	toleranceOut  string  // destination of the TOLERANCE report
	sparseOut     string  // destination of the SPARSE report
	date          string  // report date stamp; empty = today (UTC)
	gate          string  // baseline report to gate HOTPATH against ("" = off)
	sparseGate    string  // baseline report to gate SPARSE against ("" = off)
	gateTol       float64 // allowed fractional ns/op regression before the gate fails

	session  *repro.Session // lazily built paper-CUT session
	gaVector *repro.TestVector
}

func (r *runner) printf(format string, args ...any) {
	fmt.Fprintf(r.out, format, args...)
}

func (r *runner) header(id, title string) {
	r.printf("\n==== %s — %s ====\n", id, title)
}

// paperSession lazily builds (and caches) the paper-CUT session.
func (r *runner) paperSession() (*repro.Session, error) {
	if r.session != nil {
		return r.session, nil
	}
	s, err := repro.NewSession(repro.PaperCUT())
	if err != nil {
		return nil, err
	}
	r.session = s
	return s, nil
}

// gaConfig returns the GA setup: the paper's full parameters with -full,
// otherwise a reduced configuration that preserves the operator choices.
func (r *runner) gaConfig(omega0 float64) repro.OptimizeConfig {
	cfg := repro.PaperOptimizeConfig(omega0)
	cfg.Seed = r.seed
	if !r.full {
		cfg.GA.PopSize = 32
		cfg.GA.Generations = 10
	}
	return cfg
}

// optimizedVector lazily runs the GA once for the paper CUT and caches
// the result for the experiments that need "the" test vector.
func (r *runner) optimizedVector() (*repro.TestVector, error) {
	if r.gaVector != nil {
		return r.gaVector, nil
	}
	p, err := r.paperSession()
	if err != nil {
		return nil, err
	}
	tv, err := p.Optimize(r.ctx, r.gaConfig(p.CUT().Omega0))
	if err != nil {
		return nil, err
	}
	r.gaVector = tv
	return tv, nil
}

// e1Dictionary reproduces Figure 1: the golden magnitude response plus
// the fault-dictionary items (here for component R3, the component the
// paper's Figure 3 features), across the response band.
func (r *runner) e1Dictionary() error {
	r.header("E1 / Fig.1", "golden behaviour & fault dictionary items (R3 deviations)")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	d := p.Dictionary()
	grid := numeric.Logspace(0.01, 100, 13)
	devs := fault.PaperDeviations()

	r.printf("%-10s %10s", "ω (rad/s)", "golden")
	for _, dev := range devs {
		r.printf(" %9.0f%%", dev*100)
	}
	r.printf("\n")
	for _, w := range grid {
		g, err := d.GoldenResponse(w)
		if err != nil {
			return err
		}
		r.printf("%-10.4g %10.5f", w, g)
		for _, dev := range devs {
			m, err := d.Response(repro.Fault{Component: "R3", Deviation: dev}, w)
			if err != nil {
				return err
			}
			r.printf(" %10.5f", m)
		}
		r.printf("\n")
	}
	// Render the figure itself: golden and extreme deviations in dB.
	dense := numeric.Logspace(0.05, 20, 60)
	chart := plot.New("Fig.1 — |H| (dB) vs ω: golden (*) with R3 at -40% (o) and +40% (+)", 72, 16).
		LogX().Labels("ω rad/s", "dB")
	mkSeries := func(name string, f repro.Fault, marker rune) error {
		ys := make([]float64, len(dense))
		for i, w := range dense {
			m, err := d.Response(f, w)
			if err != nil {
				return err
			}
			ys[i] = numeric.Db(m)
		}
		return chart.Add(plot.Series{Name: name, X: dense, Y: ys, Marker: marker})
	}
	if err := mkSeries("golden", repro.Fault{}, '*'); err != nil {
		return err
	}
	if err := mkSeries("R3@-40%", repro.Fault{Component: "R3", Deviation: -0.4}, 'o'); err != nil {
		return err
	}
	if err := mkSeries("R3@+40%", repro.Fault{Component: "R3", Deviation: 0.4}, '+'); err != nil {
		return err
	}
	r.printf("%s", chart.Render())
	r.printf("shape check: low-pass family, deviations fan out around the golden curve\n")
	return nil
}

// e2Transform reproduces Figure 2: sampling the golden (H) and one
// faulty (K) curve at two frequencies maps each to one XY point.
func (r *runner) e2Transform() error {
	r.header("E2 / Fig.2", "transformation of curves into coordinate data")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	d := p.Dictionary()
	f1, f2 := 0.5, 2.0
	k := repro.Fault{Component: "R3", Deviation: 0.4}

	a1, err := d.GoldenResponse(f1)
	if err != nil {
		return err
	}
	a2, err := d.GoldenResponse(f2)
	if err != nil {
		return err
	}
	b1, err := d.Response(k, f1)
	if err != nil {
		return err
	}
	b2, err := d.Response(k, f2)
	if err != nil {
		return err
	}
	r.printf("test vector: f1=%.3g f2=%.3g rad/s\n", f1, f2)
	r.printf("H (golden): H(f1)=A1=%.5f  H(f2)=A2=%.5f  ->  point (A1,A2)=(%.5f, %.5f)\n", a1, a2, a1, a2)
	r.printf("K (%s):     K(f1)=B1=%.5f  K(f2)=B2=%.5f  ->  point (B1,B2)=(%.5f, %.5f)\n", k.ID(), b1, b2, b1, b2)
	sig, err := d.Signature(k, []float64{f1, f2})
	if err != nil {
		return err
	}
	r.printf("after moving the golden point to the origin: K -> (%.5f, %.5f)\n", sig[0], sig[1])
	return nil
}

// e3Trajectory reproduces Figure 3: the R3 fault trajectory and the
// diagnosis of an unknown fault by perpendicular projection.
func (r *runner) e3Trajectory() error {
	r.header("E3 / Fig.3", "R3 fault trajectory (left) and fault diagnosis (right)")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	m, err := p.Trajectories(r.ctx, tv.Omegas)
	if err != nil {
		return err
	}
	r.printf("test vector (GA): ω = %.4g, %.4g rad/s (I = %d)\n", tv.Omegas[0], tv.Omegas[1], m.Intersections())

	tr, err := m.ByComponent("R3")
	if err != nil {
		return err
	}
	r.printf("R3 trajectory points (deviation -> (x, y)):\n")
	for i, pt := range tr.Points {
		r.printf("  %+4.0f%% -> (%+.5f, %+.5f)\n", tr.Deviations[i]*100, pt[0], pt[1])
	}

	// The unknown fault (*) of the figure: an off-grid R3 deviation.
	unknown := repro.Fault{Component: "R3", Deviation: 0.25}
	dg, err := p.Diagnoser(r.ctx, tv.Omegas)
	if err != nil {
		return err
	}
	res, err := dg.DiagnoseFault(p.Dictionary(), unknown)
	if err != nil {
		return err
	}
	// Render the trajectory plane: every component's polyline plus the
	// unknown-fault point.
	chart := plot.New("Fig.3 — fault trajectories in the (Δ|H(f1)|, Δ|H(f2)|) plane", 72, 20).
		Labels("Δ|H(f1)|", "Δ|H(f2)|")
	for _, tr := range m.Trajectories {
		xs := make([]float64, len(tr.Points))
		ys := make([]float64, len(tr.Points))
		for i, pt := range tr.Points {
			xs[i], ys[i] = pt[0], pt[1]
		}
		if err := chart.Add(plot.Series{Name: tr.Component, X: xs, Y: ys}); err != nil {
			return err
		}
	}
	sig, err := p.Dictionary().Signature(unknown, tv.Omegas)
	if err != nil {
		return err
	}
	if err := chart.Add(plot.Series{Name: "unknown (*)", X: sig[:1], Y: sig[1:], Marker: '?'}); err != nil {
		return err
	}
	r.printf("%s", chart.Render())

	r.printf("unknown fault (*): %s\n", unknown.ID())
	r.printf("perpendicular distances to each trajectory (best first):\n%s", res)
	best := res.Best()
	r.printf("verdict: %s (estimated deviation %+.0f%%) — %s\n",
		best.Component, best.Deviation*100, verdict(best.Component == unknown.Component))
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "CORRECT"
	}
	return "WRONG"
}

// e4GA reproduces §2.4: the GA run with the paper's parameters and the
// fitness 1/(1+I).
func (r *runner) e4GA() error {
	r.header("E4 / §2.4", "GA with paper parameters (128 ind., 15 gen., 50% repro., 40% mut., roulette)")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	cfg := repro.PaperOptimizeConfig(p.CUT().Omega0)
	cfg.Seed = r.seed
	if !r.full {
		r.printf("(reduced GA: 32x10 — run with -full for the paper's 128x15)\n")
		cfg.GA.PopSize = 32
		cfg.GA.Generations = 10
	}
	tv, err := p.Optimize(r.ctx, cfg)
	if err != nil {
		return err
	}
	r.printf("%-5s %10s %10s %10s\n", "gen", "best", "mean", "worst")
	for _, g := range tv.History {
		r.printf("%-5d %10.5f %10.5f %10.5f\n", g.Generation, g.Best, g.Mean, g.Worst)
	}
	r.printf("best test vector: ω = %.5g, %.5g rad/s | fitness = %.4f | I = %d | evaluations = %d\n",
		tv.Omegas[0], tv.Omegas[1], tv.Fitness, tv.Intersections, tv.Evaluations)
	r.gaVector = tv
	return nil
}

// e5Baselines compares the GA-optimized vector against random, grid and
// sensitivity baselines on hold-out diagnosis accuracy.
func (r *runner) e5Baselines() error {
	r.header("E5", "diagnosis accuracy: GA vs baselines (hold-out faults ±15/25/35%)")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	atpg := p.ATPG()
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(r.seed + 7919)) // decouple from the GA's seed
	budget := tv.Evaluations
	if budget < 10 {
		budget = 10
	}
	random, err := atpg.RandomVector(r.ctx, 2, 0.01, 100, budget, rng)
	if err != nil {
		return err
	}
	randomSmall, err := atpg.RandomVector(r.ctx, 2, 0.01, 100, 3, rng)
	if err != nil {
		return err
	}
	grid, err := atpg.GridVector(r.ctx, 2, 0.01, 100, 12)
	if err != nil {
		return err
	}
	sens, err := atpg.SensitivityVector(r.ctx, 2, 0.01, 100, 12, 0.3)
	if err != nil {
		return err
	}

	r.printf("%-17s %22s %4s %9s %9s %9s\n", "strategy", "ω (rad/s)", "I", "fitness", "top1-acc", "top2-acc")
	for _, row := range []struct {
		name string
		tv   *repro.TestVector
	}{
		{"GA (paper)", tv},
		{"random (=budget)", random},
		{"random (3 draws)", randomSmall},
		{"grid", grid},
		{"sensitivity", sens},
	} {
		ev, err := p.Evaluate(r.ctx, row.tv.Omegas, nil)
		if err != nil {
			return err
		}
		r.printf("%-17s %10.4g %10.4g %4d %9.4f %8.1f%% %8.1f%%\n",
			row.name, row.tv.Omegas[0], row.tv.Omegas[1], row.tv.Intersections,
			row.tv.Fitness, 100*ev.Accuracy(), 100*ev.TopTwoAccuracy())
	}
	r.printf("expected shape: GA >= baselines on fitness; accuracy ordering GA ~ grid > random\n")
	return nil
}
