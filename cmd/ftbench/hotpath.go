package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro"
	"repro/internal/trajectory"
)

// hotpathEntry is one measured hot-path quantity in the emitted report.
type hotpathEntry struct {
	// Name identifies the measurement (fitness_eval, trajectory_build,
	// ga_paper_params).
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// N is the iteration count the benchmark framework settled on.
	N int `json:"n"`
}

// hotpathReport is the BENCH_hotpath.json schema: the performance record
// of the GA fitness hot path, regenerated per change so the perf
// trajectory of the repository is tracked in-tree alongside the code.
// The envelope fields identify the machine and configuration the numbers
// were measured on — see newBenchReport.
type hotpathReport struct {
	benchEnvelope
	Entries []hotpathEntry `json:"entries"`
}

// hotpath measures the GA fitness hot path with the testing.Benchmark
// machinery — the same numbers `go test -bench` reports — and writes
// them to BENCH_hotpath.json:
//
//   - fitness_eval: one steady-state fitness evaluation (reused
//     trajectory.Builder rebuild + cached intersection count);
//   - trajectory_build: one cold trajectory.Build (fresh storage, the
//     one-shot path diagnosis uses);
//   - ga_paper_params: the paper's full GA (128 individuals × 15
//     generations) through Session.Optimize.
func (r *runner) hotpath() error {
	r.header("HOTPATH", "GA fitness hot-path benchmarks → BENCH_hotpath.json")
	s, err := repro.NewSession(repro.PaperCUT())
	if err != nil {
		return err
	}
	d := s.Dictionary()

	rep := newBenchReport(r.date)
	record := func(name string, res testing.BenchmarkResult) error {
		// testing.Benchmark reports a zero result when the body aborts
		// (b.Fatal, or a Ctrl-C canceling r.ctx mid-run); 0/0 ns/op is
		// NaN, which would only surface later as a JSON marshal failure.
		if err := r.ctx.Err(); err != nil {
			return fmt.Errorf("hotpath: %s: %w", name, err)
		}
		if res.N == 0 {
			return fmt.Errorf("hotpath: %s: benchmark failed (see log above)", name)
		}
		e := hotpathEntry{
			Name:        name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			N:           res.N,
		}
		rep.Entries = append(rep.Entries, e)
		r.printf("  %-18s %14.0f ns/op %8d allocs/op %10d B/op  (n=%d)\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.N)
		return nil
	}

	err = record("fitness_eval", testing.Benchmark(func(b *testing.B) {
		bu := trajectory.NewBuilder(d)
		omegas := []float64{0.5, 2}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			omegas[0] = 0.5 + float64(i%100)*1e-5
			omegas[1] = 2 + float64(i%100)*1e-5
			m, err := bu.Build(r.ctx, omegas)
			if err != nil {
				b.Fatal(err)
			}
			if m.Intersections() < 0 {
				b.Fatal("negative intersection count")
			}
		}
	}))
	if err != nil {
		return err
	}

	err = record("trajectory_build", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w1 := 0.5 + float64(i%100)*1e-5
			w2 := 2.0 + float64(i%100)*1e-5
			if _, err := trajectory.Build(r.ctx, d, []float64{w1, w2}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if err != nil {
		return err
	}

	err = record("ga_paper_params", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := repro.PaperOptimizeConfig(s.CUT().Omega0)
			cfg.Seed = int64(i + 1)
			tv, err := s.Optimize(r.ctx, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if tv.Fitness <= 0 {
				b.Fatal("GA found nothing")
			}
		}
	}))
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(r.hotpathOut, data, 0o644); err != nil {
		return fmt.Errorf("hotpath: %w", err)
	}
	r.printf("  wrote %s\n", r.hotpathOut)

	if r.gate != "" {
		if err := r.gateHotpath(rep); err != nil {
			return err
		}
	}
	return nil
}

// gateHotpath compares the freshly measured report against the baseline
// named by -gate and fails on regressions: fitness_eval or
// trajectory_build slower than baseline by more than -gate-tol
// (fractional, default 0.10), or the fitness path allocating at all.
// ga_paper_params is informational only — the full GA's variance across
// machines is too high to gate on.
func (r *runner) gateHotpath(rep *hotpathReport) error {
	data, err := os.ReadFile(r.gate)
	if err != nil {
		return fmt.Errorf("hotpath gate: %w", err)
	}
	var base hotpathReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("hotpath gate: %s: %w", r.gate, err)
	}
	find := func(rep *hotpathReport, name string) *hotpathEntry {
		for i := range rep.Entries {
			if rep.Entries[i].Name == name {
				return &rep.Entries[i]
			}
		}
		return nil
	}
	tol := r.gateTol
	var failures []string
	for _, name := range []string{"fitness_eval", "trajectory_build"} {
		b, n := find(&base, name), find(rep, name)
		if b == nil || n == nil {
			return fmt.Errorf("hotpath gate: entry %q missing (baseline %v, new %v)", name, b != nil, n != nil)
		}
		ratio := n.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > 1+tol {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.0f → %.0f ns/op, tol %.0f%%)",
				name, (ratio-1)*100, b.NsPerOp, n.NsPerOp, tol*100))
		}
		r.printf("  gate %-18s %8.0f → %8.0f ns/op  (%+.1f%%, tol %.0f%%)  %s\n",
			name, b.NsPerOp, n.NsPerOp, (ratio-1)*100, tol*100, status)
	}
	if fe := find(rep, "fitness_eval"); fe != nil && fe.AllocsPerOp > 0 {
		failures = append(failures, fmt.Sprintf("fitness_eval allocates (%d allocs/op, want 0)", fe.AllocsPerOp))
	}
	if len(failures) > 0 {
		return fmt.Errorf("hotpath gate: %s", strings.Join(failures, "; "))
	}
	r.printf("  gate passed against %s\n", r.gate)
	return nil
}
