package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// sparseSizes is the measured scaling ladder: RC ladders across the
// dense→sparse crossover, two op-amp-macro cascades for a CUT whose
// pattern is not banded, and 2-D RC grids into the thousand-unknown
// tier where the supernodal numeric phase is the story (the dense path
// is only timed below denseTimeableNodes — an n=4097 dense factor per
// frequency is not benchmarkable).
var sparseSizes = []string{
	"rc-ladder-16", "rc-ladder-32", "rc-ladder-64", "rc-ladder-128",
	"rc-ladder-256", "rc-ladder-512",
	"opamp-cascade-8", "opamp-cascade-32",
	"rc-grid-16", "rc-grid-32", "rc-grid-45", "rc-grid-64",
}

// denseTimeableNodes bounds the engine-level dense-vs-sparse comparison:
// above it the dense O(n³)-per-frequency grid build would dominate the
// whole benchmark run, so those entries carry numeric-phase measurements
// only (DenseNsPerOp = 0, Speedup = 0).
const denseTimeableNodes = 600

// sparseEntry is one CUT's sparse-engine measurement: the dense-vs-
// sparse grid build (small CUTs), plus the supernodal numeric-phase
// split — refactor cost vs solve cost per frequency, scalar vs
// frequency-blocked, and the level-set parallel refactor speedup.
type sparseEntry struct {
	// CUT names the circuit under test ("rc-grid-45").
	CUT string `json:"cut"`
	// Nodes is the MNA system size (unknowns).
	Nodes int `json:"nodes"`
	// NNZ is the structural nonzero count of the golden pattern.
	NNZ int `json:"nnz"`
	// FactorPath is what the engine's auto heuristic picks for this CUT
	// ("dense" or "sparse") — the crossover is where this flips.
	FactorPath string `json:"factor_path"`
	// Faults and Omegas describe the timed grid.
	Faults int `json:"faults"`
	Omegas int `json:"omegas"`
	// DenseNsPerOp / SparseNsPerOp time one full grid build
	// (BatchResponsesSetsInto over the fault × frequency grid) with the
	// factor path forced each way. Dense is 0 above denseTimeableNodes.
	DenseNsPerOp  float64 `json:"dense_ns_per_op"`
	SparseNsPerOp float64 `json:"sparse_ns_per_op"`
	// DenseAllocsPerOp / SparseAllocsPerOp are heap allocations per grid
	// build in steady state.
	DenseAllocsPerOp  int64 `json:"dense_allocs_per_op"`
	SparseAllocsPerOp int64 `json:"sparse_allocs_per_op"`
	// Speedup is dense/sparse wall time (>1 = sparse wins; 0 when dense
	// was not timed).
	Speedup float64 `json:"speedup"`

	// Supernode structure of the compiled elimination schedule.
	Supernodes int `json:"supernodes"`
	MaxPanel   int `json:"max_panel"`
	Levels     int `json:"levels"`
	// ScalarRefactorNsPerFreq / BlockedRefactorNsPerFreq split the
	// numeric phase out of the grid build: one golden refactorization per
	// frequency on the scalar up-looking walk vs the frequency-blocked
	// walk (one RefactorBlock / FreqBlock). NumericSpeedup is their
	// ratio — the tentpole quantity the ≥3× gate floors at 2000+
	// unknowns.
	ScalarRefactorNsPerFreq  float64 `json:"scalar_refactor_ns_per_freq"`
	BlockedRefactorNsPerFreq float64 `json:"blocked_refactor_ns_per_freq"`
	NumericSpeedup           float64 `json:"numeric_speedup"`
	// SolveNsPerFreq times the triangular solve pair on the factored
	// system — the non-refactor half of a frequency column.
	SolveNsPerFreq float64 `json:"solve_ns_per_freq"`
	// ParallelWorkers / ParallelSpeedup time the level-set parallel
	// refactorization against its own single-worker run. Zero when
	// GOMAXPROCS is 1 (single-core runner — nothing to measure).
	ParallelWorkers int     `json:"parallel_workers"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// sparseReport is the BENCH_sparse.json schema.
type sparseReport struct {
	benchEnvelope
	// CrossoverNodes is the system size of the smallest measured CUT
	// where the sparse path beat the dense path (0 if none did).
	CrossoverNodes int           `json:"crossover_nodes"`
	Entries        []sparseEntry `json:"entries"`
}

// sparse measures golden grid builds dense vs sparse over the scaling
// CUT tier, splits the numeric phase (scalar vs frequency-blocked
// refactorization, solve cost, parallel speedup), and writes
// BENCH_sparse.json. Every timed comparison is cross-checked to 1e-9
// relative agreement before anything is timed, so the recorded speedups
// are between verified-equal answers.
func (r *runner) sparse() error {
	r.header("SPARSE", "dense vs supernodal sparse golden grid builds → "+r.sparseOut)
	rep := &sparseReport{benchEnvelope: newBenchEnvelope(r.date)}
	r.printf("  %-16s %6s %8s %5s %12s %12s %7s %12s %12s %8s %7s\n",
		"cut", "nodes", "nnz", "sn", "dense ns/op", "sparse ns/op", "spdup",
		"scalar ns/f", "blocked ns/f", "numeric", "par")

	for _, name := range sparseSizes {
		e, err := r.sparseOne(name)
		if err != nil {
			return fmt.Errorf("sparse: %s: %w", name, err)
		}
		rep.Entries = append(rep.Entries, *e)
		r.printf("  %-16s %6d %8d %5d %12.0f %12.0f %6.1f× %12.0f %12.0f %7.2f× %6.2f×\n",
			e.CUT, e.Nodes, e.NNZ, e.Supernodes, e.DenseNsPerOp, e.SparseNsPerOp, e.Speedup,
			e.ScalarRefactorNsPerFreq, e.BlockedRefactorNsPerFreq, e.NumericSpeedup, e.ParallelSpeedup)
	}

	for _, e := range rep.Entries {
		if e.Speedup > 1 && (rep.CrossoverNodes == 0 || e.Nodes < rep.CrossoverNodes) {
			rep.CrossoverNodes = e.Nodes
		}
	}
	if rep.CrossoverNodes > 0 {
		r.printf("  crossover: sparse wins from %d unknowns\n", rep.CrossoverNodes)
	} else {
		r.printf("  crossover: sparse never won on this machine\n")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(r.sparseOut, data, 0o644); err != nil {
		return fmt.Errorf("sparse: %w", err)
	}
	r.printf("  wrote %s\n", r.sparseOut)

	if r.sparseGate != "" {
		return r.gateSparse(rep)
	}
	return nil
}

// benchMinNs runs fn under testing.Benchmark for three rounds and
// returns the minimum ns/op — the standard noise-floor estimator for a
// loaded runner.
func (r *runner) benchMinNs(fn func(b *testing.B)) (float64, int64, error) {
	var ns float64
	var allocs int64
	for round := 0; round < 3; round++ {
		res := testing.Benchmark(fn)
		if err := r.ctx.Err(); err != nil {
			return 0, 0, err
		}
		if res.N == 0 {
			return 0, 0, fmt.Errorf("benchmark failed (see log above)")
		}
		n := float64(res.T.Nanoseconds()) / float64(res.N)
		if round == 0 || n < ns {
			ns, allocs = n, res.AllocsPerOp()
		}
	}
	return ns, allocs, nil
}

// benchMinNsPaired times two benchmark bodies in interleaved rounds
// (a, b, a, b, ...) and returns each one's minimum ns/op. Use it
// whenever the quantity that matters is the *ratio* of the two: on a
// shared runner the machine's effective throughput drifts on a
// seconds-to-minutes scale, and timing the two sides back-to-back
// within each round makes that drift hit both numerator and
// denominator instead of landing between two separately-timed phases.
func (r *runner) benchMinNsPaired(fa, fb func(b *testing.B)) (nsA, nsB float64, err error) {
	for round := 0; round < 3; round++ {
		for side, fn := range []func(b *testing.B){fa, fb} {
			res := testing.Benchmark(fn)
			if err := r.ctx.Err(); err != nil {
				return 0, 0, err
			}
			if res.N == 0 {
				return 0, 0, fmt.Errorf("benchmark failed (see log above)")
			}
			n := float64(res.T.Nanoseconds()) / float64(res.N)
			if side == 0 && (round == 0 || n < nsA) {
				nsA = n
			}
			if side == 1 && (round == 0 || n < nsB) {
				nsB = n
			}
		}
	}
	return nsA, nsB, nil
}

// sparseOne cross-checks and times one CUT: the engine-level grid build
// (dense timed only below denseTimeableNodes) and the isolated
// numeric-phase measurements.
func (r *runner) sparseOne(name string) (*sparseEntry, error) {
	cut, err := circuits.ByName(name)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		return nil, err
	}
	sym := eng.Template().SparsePattern()
	if sym == nil {
		return nil, fmt.Errorf("no sparse pattern compiled")
	}

	// The timed grid: a bounded single-fault slice (every k-th passive at
	// ±30%) over three frequencies around ω₀ — large enough that the
	// block solve matters, small enough that the n=512 dense build stays
	// benchmarkable.
	stride := 1
	if len(cut.Passives) > 32 {
		stride = len(cut.Passives) / 32
	}
	var sets []fault.Set
	for i := 0; i < len(cut.Passives); i += stride {
		for _, dev := range []float64{-0.3, 0.3} {
			sets = append(sets, fault.Fault{Component: cut.Passives[i], Deviation: dev})
		}
	}
	// Enough frequencies that the per-frequency factor+solve dominates
	// the batch's fixed scheduling overhead — the quantity the sparse
	// path actually changes.
	omegas := numeric.Logspace(cut.Omega0/10, cut.Omega0*10, 9)

	check := func(got, ref *engine.Batch, peak float64, tag string) error {
		for i := range sets {
			for j := range omegas {
				a, b := got.Mags[i][j], ref.Mags[i][j]
				scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-3*peak)
				if math.Abs(a-b)/scale > 1e-9 {
					return fmt.Errorf("%s: %s at ω=%g: %.15g vs %.15g",
						tag, sets[i].ID(), omegas[j], a, b)
				}
			}
		}
		return nil
	}

	// Cross-check before timing: supernodal sparse vs the scalar sparse
	// walk always; vs the dense path when dense is tractable.
	eng.SetFactorPath(engine.FactorSparse)
	got, err := eng.BatchResponsesSets(r.ctx, sets, omegas, 1)
	if err != nil {
		return nil, err
	}
	var peak float64
	for _, g := range got.Golden {
		peak = math.Max(peak, g)
	}
	eng.UseScalarSparse(true)
	refScalar, err := eng.BatchResponsesSets(r.ctx, sets, omegas, 1)
	if err != nil {
		return nil, err
	}
	eng.UseScalarSparse(false)
	if err := check(got, refScalar, peak, "supernodal vs scalar-sparse"); err != nil {
		return nil, err
	}
	e := &sparseEntry{
		CUT:        name,
		Nodes:      eng.Nodes(),
		NNZ:        eng.NNZ(),
		Faults:     len(sets),
		Omegas:     len(omegas),
		Supernodes: sym.Supernodes(),
		MaxPanel:   sym.MaxPanel(),
		Levels:     sym.Levels(),
	}
	if e.Nodes <= denseTimeableNodes {
		eng.SetFactorPath(engine.FactorDense)
		refDense, err := eng.BatchResponsesSets(r.ctx, sets, omegas, 1)
		if err != nil {
			return nil, err
		}
		if err := check(got, refDense, peak, "sparse vs dense"); err != nil {
			return nil, err
		}
	}

	var out engine.Batch
	gridBuild := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.BatchResponsesSetsInto(r.ctx, sets, omegas, 1, &out); err != nil {
				b.Fatal(err)
			}
		}
	}
	if e.Nodes <= denseTimeableNodes {
		eng.SetFactorPath(engine.FactorDense)
		if e.DenseNsPerOp, e.DenseAllocsPerOp, err = r.benchMinNs(gridBuild); err != nil {
			return nil, err
		}
	}
	eng.SetFactorPath(engine.FactorSparse)
	if e.SparseNsPerOp, e.SparseAllocsPerOp, err = r.benchMinNs(gridBuild); err != nil {
		return nil, err
	}
	if e.DenseNsPerOp > 0 && e.SparseNsPerOp > 0 {
		e.Speedup = e.DenseNsPerOp / e.SparseNsPerOp
	}

	if err := r.sparseNumericPhase(eng, e, cut.Omega0); err != nil {
		return nil, err
	}

	eng.SetFactorPath(engine.FactorAuto)
	e.FactorPath = eng.FactorPathName()
	return e, nil
}

// sparseNumericPhase isolates the golden refactorization from the
// solves: it stamps FreqBlock frequency value planes once, cross-checks
// the frequency-blocked and parallel supernodal factorizations against
// the scalar walk through their triangular solves, then times each
// numeric-phase variant and the solve separately.
func (r *runner) sparseNumericPhase(eng *engine.Engine, e *sparseEntry, omega0 float64) error {
	tm := eng.Template()
	sym := tm.SparsePattern()
	lnnz := sym.LUNNZ()
	n := sym.N()

	var res, ims [numeric.FreqBlock][]float64
	freqs := numeric.Logspace(omega0/4, omega0*4, numeric.FreqBlock)
	for f := 0; f < numeric.FreqBlock; f++ {
		res[f] = make([]float64, lnnz)
		ims[f] = make([]float64, lnnz)
		if err := tm.StampSparse(res[f], ims[f], freqs[f]); err != nil {
			return err
		}
	}
	rhs := tm.RHS()
	xa := make([]complex128, n)
	xb := make([]complex128, n)
	compareSolves := func(a, b *numeric.SparseLU, tag string) error {
		if err := a.SolveInto(xa, rhs); err != nil {
			return err
		}
		if err := b.SolveInto(xb, rhs); err != nil {
			return err
		}
		var peak float64
		for i := range xa {
			peak = math.Max(peak, math.Max(math.Abs(real(xa[i])), math.Abs(imag(xa[i]))))
		}
		for i := range xa {
			d := xa[i] - xb[i]
			if math.Max(math.Abs(real(d)), math.Abs(imag(d))) > 1e-9*peak {
				return fmt.Errorf("%s: solutions diverge at unknown %d: %v vs %v", tag, i, xa[i], xb[i])
			}
		}
		return nil
	}

	// Cross-check: blocked planes and the parallel supernodal refactor
	// against the scalar walk, each through a full triangular solve.
	var scalar, par numeric.SparseLU
	var blk [numeric.FreqBlock]numeric.SparseLU
	var bref numeric.BlockRefactorer
	errs := bref.RefactorBlock(sym, &blk, &res, &ims)
	for f := 0; f < numeric.FreqBlock; f++ {
		if errs[f] != nil {
			return fmt.Errorf("blocked refactor plane %d: %w", f, errs[f])
		}
		if err := scalar.RefactorReuse(sym, res[f], ims[f]); err != nil {
			return fmt.Errorf("scalar refactor plane %d: %w", f, err)
		}
		if err := compareSolves(&scalar, &blk[f], fmt.Sprintf("blocked plane %d vs scalar", f)); err != nil {
			return err
		}
	}
	nw := runtime.GOMAXPROCS(0)
	if err := par.RefactorParallel(sym, res[0], ims[0], nw); err != nil {
		return fmt.Errorf("parallel refactor: %w", err)
	}
	if err := scalar.RefactorReuse(sym, res[0], ims[0]); err != nil {
		return err
	}
	if err := compareSolves(&scalar, &par, "parallel supernodal vs scalar"); err != nil {
		return err
	}

	// Timings: scalar walk per frequency, blocked walk per frequency
	// (one RefactorBlock covers FreqBlock frequencies), the solve pair,
	// and — on multi-core runners — the parallel refactor speedup over
	// its own single-worker schedule. The scalar/blocked and
	// sequential/parallel pairs are timed in interleaved rounds
	// (benchMinNsPaired): both sides of each ratio must see the same
	// runner-contention regime, or NumericSpeedup/ParallelSpeedup swing
	// with whatever the host was doing between two separately-timed
	// phases.
	scalarNs, blockNs, err := r.benchMinNsPaired(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := scalar.RefactorReuse(sym, res[i%numeric.FreqBlock], ims[i%numeric.FreqBlock]); err != nil {
				b.Fatal(err)
			}
		}
	}, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			errs := bref.RefactorBlock(sym, &blk, &res, &ims)
			for f := range errs {
				if errs[f] != nil {
					b.Fatal(errs[f])
				}
			}
		}
	})
	if err != nil {
		return err
	}
	e.ScalarRefactorNsPerFreq = scalarNs
	e.BlockedRefactorNsPerFreq = blockNs / numeric.FreqBlock
	if e.BlockedRefactorNsPerFreq > 0 {
		e.NumericSpeedup = e.ScalarRefactorNsPerFreq / e.BlockedRefactorNsPerFreq
	}
	if e.SolveNsPerFreq, _, err = r.benchMinNs(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := scalar.SolveInto(xa, rhs); err != nil {
				b.Fatal(err)
			}
		}
	}); err != nil {
		return err
	}
	if nw > 1 {
		seqNs, parNs, err := r.benchMinNsPaired(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := par.RefactorParallel(sym, res[0], ims[0], 1); err != nil {
					b.Fatal(err)
				}
			}
		}, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := par.RefactorParallel(sym, res[0], ims[0], nw); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err != nil {
			return err
		}
		e.ParallelWorkers = nw
		if parNs > 0 {
			e.ParallelSpeedup = seqNs / parNs
		}
	}
	return nil
}

// gateSparse compares the fresh sparse report against the baseline named
// by -sparse-gate and fails when:
//
//   - the baseline is malformed or a measured CUT disappeared (schema
//     drift);
//   - a 256+-unknown CUT's dense/sparse speedup fell more than
//     -gate-tol below its baseline speedup — the ratio is what the
//     sparse engine buys, and unlike absolute ns/op it carries across
//     runner classes, so the checked-in report works as a cross-machine
//     baseline. Smaller CUTs are informational only: their sub-ms grid
//     builds are dominated by fixed batch overhead and runner noise,
//     and the engine's auto heuristic is what protects them;
//   - sparse stopped winning ≥5× at 256+ unknowns where dense was
//     timed — the acceptance floor of the sparse engine;
//   - the frequency-blocked numeric phase fell more than -gate-tol
//     below its baseline blocked-vs-scalar ratio at 2000+ unknowns, or
//     below the hard 2× collapse floor. The ≥3× supernodal acceptance
//     floor is asserted on the checked-in report (CI's
//     machine-independent invariant step): the committed record must
//     demonstrate ≥3× at scale on the bench machine, while
//     regenerations on arbitrary runner classes are held to
//     tolerance-relative ratios — the honest blocked-vs-scalar ratio
//     hugs 3× at this tier, so an absolute 3× floor on a fresh noisy
//     run would be flaky in a way the baseline-relative check is not;
//   - on a multi-core runner, the parallel refactor fell more than
//     -gate-tol below break-even against its own sequential schedule at
//     2000+ unknowns (skipped when GOMAXPROCS is 1 — a single-core
//     runner has nothing to assert; the tolerance absorbs contended
//     shared-runner scheduling noise in this raw same-run ratio).
func (r *runner) gateSparse(rep *sparseReport) error {
	data, err := os.ReadFile(r.sparseGate)
	if err != nil {
		return fmt.Errorf("sparse gate: %w", err)
	}
	var base sparseReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("sparse gate: %s: %w", r.sparseGate, err)
	}
	find := func(rep *sparseReport, cut string) *sparseEntry {
		for i := range rep.Entries {
			if rep.Entries[i].CUT == cut {
				return &rep.Entries[i]
			}
		}
		return nil
	}
	var failures []string
	for i := range base.Entries {
		b := &base.Entries[i]
		n := find(rep, b.CUT)
		if n == nil {
			failures = append(failures, fmt.Sprintf("%s missing from new report", b.CUT))
			continue
		}
		status := "info"
		if b.Nodes >= 256 && b.DenseNsPerOp > 0 {
			status = "ok"
			if n.Speedup < (1-r.gateTol)*b.Speedup {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s speedup collapsed %.1f× → %.1f× (tol %.0f%%)",
					b.CUT, b.Speedup, n.Speedup, r.gateTol*100))
			}
		}
		if b.Nodes >= 2000 && b.NumericSpeedup > 0 {
			if status == "info" {
				status = "ok"
			}
			if n.NumericSpeedup < (1-r.gateTol)*b.NumericSpeedup {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s numeric speedup collapsed %.2f× → %.2f× (tol %.0f%%)",
					b.CUT, b.NumericSpeedup, n.NumericSpeedup, r.gateTol*100))
			}
		}
		r.printf("  gate %-16s speedup %5.1f× → %5.1f×  numeric %5.2f× → %5.2f×  (tol %.0f%%)  %s\n",
			b.CUT, b.Speedup, n.Speedup, b.NumericSpeedup, n.NumericSpeedup, r.gateTol*100, status)
	}
	for _, e := range rep.Entries {
		if e.Nodes >= 256 && e.DenseNsPerOp > 0 && e.Speedup < 5 {
			failures = append(failures, fmt.Sprintf("%s (%d unknowns): sparse speedup %.1f×, want ≥5×",
				e.CUT, e.Nodes, e.Speedup))
		}
		if e.Nodes >= 2000 {
			if e.NumericSpeedup < 2 {
				failures = append(failures, fmt.Sprintf("%s (%d unknowns): blocked numeric phase %.2f× over scalar, below the 2× collapse floor",
					e.CUT, e.Nodes, e.NumericSpeedup))
			}
			if e.ParallelWorkers > 1 && e.ParallelSpeedup < 1-r.gateTol {
				failures = append(failures, fmt.Sprintf("%s (%d unknowns): parallel refactor %.2f× on %d workers, want ≥%.2f× (1 − tol)",
					e.CUT, e.Nodes, e.ParallelSpeedup, e.ParallelWorkers, 1-r.gateTol))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("sparse gate: %s", strings.Join(failures, "; "))
	}
	r.printf("  gate passed against %s\n", r.sparseGate)
	return nil
}
