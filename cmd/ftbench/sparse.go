package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// sparseSizes is the measured scaling ladder: RC ladders across the
// dense→sparse crossover plus two op-amp-macro cascades for a CUT whose
// pattern is not banded.
var sparseSizes = []string{
	"rc-ladder-16", "rc-ladder-32", "rc-ladder-64", "rc-ladder-128",
	"rc-ladder-256", "rc-ladder-512",
	"opamp-cascade-8", "opamp-cascade-32",
}

// sparseEntry is one CUT's dense-vs-sparse grid-build measurement.
type sparseEntry struct {
	// CUT names the circuit under test ("rc-ladder-256").
	CUT string `json:"cut"`
	// Nodes is the MNA system size (unknowns).
	Nodes int `json:"nodes"`
	// NNZ is the structural nonzero count of the golden pattern.
	NNZ int `json:"nnz"`
	// FactorPath is what the engine's auto heuristic picks for this CUT
	// ("dense" or "sparse") — the crossover is where this flips.
	FactorPath string `json:"factor_path"`
	// Faults and Omegas describe the timed grid.
	Faults int `json:"faults"`
	Omegas int `json:"omegas"`
	// DenseNsPerOp / SparseNsPerOp time one full grid build
	// (BatchResponsesSetsInto over the fault × frequency grid) with the
	// factor path forced each way.
	DenseNsPerOp  float64 `json:"dense_ns_per_op"`
	SparseNsPerOp float64 `json:"sparse_ns_per_op"`
	// DenseAllocsPerOp / SparseAllocsPerOp are heap allocations per grid
	// build in steady state.
	DenseAllocsPerOp  int64 `json:"dense_allocs_per_op"`
	SparseAllocsPerOp int64 `json:"sparse_allocs_per_op"`
	// Speedup is dense/sparse wall time (>1 = sparse wins).
	Speedup float64 `json:"speedup"`
}

// sparseReport is the BENCH_sparse.json schema.
type sparseReport struct {
	benchEnvelope
	// CrossoverNodes is the system size of the smallest measured CUT
	// where the sparse path beat the dense path (0 if none did).
	CrossoverNodes int           `json:"crossover_nodes"`
	Entries        []sparseEntry `json:"entries"`
}

// sparse measures golden grid builds dense vs sparse over the scaling
// CUT tier and writes BENCH_sparse.json. For each CUT the two paths are
// cross-checked to 1e-9 relative agreement before anything is timed, so
// the recorded speedups are between verified-equal answers.
func (r *runner) sparse() error {
	r.header("SPARSE", "dense vs sparse-pattern-reuse golden grid builds → "+r.sparseOut)
	rep := &sparseReport{benchEnvelope: newBenchEnvelope(r.date)}
	r.printf("  %-16s %6s %7s %7s %14s %14s %9s\n",
		"cut", "nodes", "nnz", "path", "dense ns/op", "sparse ns/op", "speedup")

	for _, name := range sparseSizes {
		e, err := r.sparseOne(name)
		if err != nil {
			return fmt.Errorf("sparse: %s: %w", name, err)
		}
		rep.Entries = append(rep.Entries, *e)
		r.printf("  %-16s %6d %7d %7s %14.0f %14.0f %8.1f×\n",
			e.CUT, e.Nodes, e.NNZ, e.FactorPath, e.DenseNsPerOp, e.SparseNsPerOp, e.Speedup)
	}

	for _, e := range rep.Entries {
		if e.Speedup > 1 && (rep.CrossoverNodes == 0 || e.Nodes < rep.CrossoverNodes) {
			rep.CrossoverNodes = e.Nodes
		}
	}
	if rep.CrossoverNodes > 0 {
		r.printf("  crossover: sparse wins from %d unknowns\n", rep.CrossoverNodes)
	} else {
		r.printf("  crossover: sparse never won on this machine\n")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(r.sparseOut, data, 0o644); err != nil {
		return fmt.Errorf("sparse: %w", err)
	}
	r.printf("  wrote %s\n", r.sparseOut)

	if r.sparseGate != "" {
		return r.gateSparse(rep)
	}
	return nil
}

// sparseOne cross-checks and times one CUT's grid build both ways.
func (r *runner) sparseOne(name string) (*sparseEntry, error) {
	cut, err := circuits.ByName(name)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		return nil, err
	}
	if eng.Template().SparsePattern() == nil {
		return nil, fmt.Errorf("no sparse pattern compiled")
	}

	// The timed grid: a bounded single-fault slice (every k-th passive at
	// ±30%) over three frequencies around ω₀ — large enough that the
	// block solve matters, small enough that the n=512 dense build stays
	// benchmarkable.
	stride := 1
	if len(cut.Passives) > 32 {
		stride = len(cut.Passives) / 32
	}
	var sets []fault.Set
	for i := 0; i < len(cut.Passives); i += stride {
		for _, dev := range []float64{-0.3, 0.3} {
			sets = append(sets, fault.Fault{Component: cut.Passives[i], Deviation: dev})
		}
	}
	// Enough frequencies that the per-frequency factor+solve dominates
	// the batch's fixed scheduling overhead — the quantity the sparse
	// path actually changes.
	omegas := numeric.Logspace(cut.Omega0/10, cut.Omega0*10, 9)

	// Cross-check before timing.
	eng.SetFactorPath(engine.FactorDense)
	ref, err := eng.BatchResponsesSets(r.ctx, sets, omegas, 1)
	if err != nil {
		return nil, err
	}
	eng.SetFactorPath(engine.FactorSparse)
	got, err := eng.BatchResponsesSets(r.ctx, sets, omegas, 1)
	if err != nil {
		return nil, err
	}
	var peak float64
	for _, g := range ref.Golden {
		peak = math.Max(peak, g)
	}
	for i := range sets {
		for j := range omegas {
			a, b := got.Mags[i][j], ref.Mags[i][j]
			scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-3*peak)
			if math.Abs(a-b)/scale > 1e-9 {
				return nil, fmt.Errorf("%s at ω=%g: sparse %.15g vs dense %.15g",
					sets[i].ID(), omegas[j], a, b)
			}
		}
	}

	// Best of three rounds per path: min ns/op is the standard estimator
	// for the noise floor of a loaded runner, and these grid builds are
	// too short-lived for one testing.Benchmark round to settle.
	time := func(p engine.FactorPath) (ns float64, allocs int64, err error) {
		eng.SetFactorPath(p)
		var out engine.Batch
		for round := 0; round < 3; round++ {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := eng.BatchResponsesSetsInto(r.ctx, sets, omegas, 1, &out); err != nil {
						b.Fatal(err)
					}
				}
			})
			if err := r.ctx.Err(); err != nil {
				return 0, 0, err
			}
			if res.N == 0 {
				return 0, 0, fmt.Errorf("benchmark failed (see log above)")
			}
			n := float64(res.T.Nanoseconds()) / float64(res.N)
			if round == 0 || n < ns {
				ns, allocs = n, res.AllocsPerOp()
			}
		}
		return ns, allocs, nil
	}
	denseNs, denseAllocs, err := time(engine.FactorDense)
	if err != nil {
		return nil, err
	}
	sparseNs, sparseAllocs, err := time(engine.FactorSparse)
	if err != nil {
		return nil, err
	}

	eng.SetFactorPath(engine.FactorAuto)
	e := &sparseEntry{
		CUT:               name,
		Nodes:             eng.Nodes(),
		NNZ:               eng.NNZ(),
		FactorPath:        eng.FactorPathName(),
		Faults:            len(sets),
		Omegas:            len(omegas),
		DenseNsPerOp:      denseNs,
		SparseNsPerOp:     sparseNs,
		DenseAllocsPerOp:  denseAllocs,
		SparseAllocsPerOp: sparseAllocs,
	}
	if e.SparseNsPerOp > 0 {
		e.Speedup = e.DenseNsPerOp / e.SparseNsPerOp
	}
	return e, nil
}

// gateSparse compares the fresh sparse report against the baseline named
// by -sparse-gate and fails when:
//
//   - the baseline is malformed or a measured CUT disappeared (schema
//     drift);
//   - a 256+-unknown CUT's dense/sparse speedup fell more than
//     -gate-tol below its baseline speedup — the ratio is what the
//     sparse engine buys, and unlike absolute ns/op it carries across
//     runner classes, so the checked-in report works as a cross-machine
//     baseline. Smaller CUTs are informational only: their sub-ms grid
//     builds are dominated by fixed batch overhead and runner noise,
//     and the engine's auto heuristic is what protects them;
//   - sparse stopped winning ≥5× at 256+ unknowns, the acceptance floor
//     of the sparse engine.
func (r *runner) gateSparse(rep *sparseReport) error {
	data, err := os.ReadFile(r.sparseGate)
	if err != nil {
		return fmt.Errorf("sparse gate: %w", err)
	}
	var base sparseReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("sparse gate: %s: %w", r.sparseGate, err)
	}
	find := func(rep *sparseReport, cut string) *sparseEntry {
		for i := range rep.Entries {
			if rep.Entries[i].CUT == cut {
				return &rep.Entries[i]
			}
		}
		return nil
	}
	var failures []string
	for i := range base.Entries {
		b := &base.Entries[i]
		n := find(rep, b.CUT)
		if n == nil {
			failures = append(failures, fmt.Sprintf("%s missing from new report", b.CUT))
			continue
		}
		status := "info"
		if b.Nodes >= 256 {
			status = "ok"
			if n.Speedup < (1-r.gateTol)*b.Speedup {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s speedup collapsed %.1f× → %.1f× (tol %.0f%%)",
					b.CUT, b.Speedup, n.Speedup, r.gateTol*100))
			}
		}
		r.printf("  gate %-16s speedup %5.1f× → %5.1f×  (tol %.0f%%)  %s\n",
			b.CUT, b.Speedup, n.Speedup, r.gateTol*100, status)
	}
	for _, e := range rep.Entries {
		if e.Nodes >= 256 && e.Speedup < 5 {
			failures = append(failures, fmt.Sprintf("%s (%d unknowns): sparse speedup %.1f×, want ≥5×",
				e.CUT, e.Nodes, e.Speedup))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("sparse gate: %s", strings.Join(failures, "; "))
	}
	r.printf("  gate passed against %s\n", r.sparseGate)
	return nil
}
