package main

import (
	"repro/internal/diagnosis"
	"repro/internal/geometry"
)

// e15Catastrophic extends the dictionary with hard open/short faults and
// measures whether (a) hard faults are named correctly and (b) the
// extended catalogue does not disturb parametric diagnosis.
func (r *runner) e15Catastrophic() error {
	r.header("E15", "extension: catastrophic (open/short) fault catalogue")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	dg, err := p.Diagnoser(r.ctx, tv.Omegas)
	if err != nil {
		return err
	}
	d := p.Dictionary()
	cats, skipped, err := diagnosis.CatastrophicPoints(d, diagnosis.AllCatastrophic(d.Universe()), tv.Omegas)
	if err != nil {
		return err
	}
	r.printf("catalogue: %d hard-fault points (%d unsolvable skipped: %v)\n", len(cats), len(skipped), skipped)

	// (a) Hard-fault identification.
	correct, total := 0, 0
	for _, hard := range diagnosis.AllCatastrophic(d.Universe()) {
		circ, err := hard.Apply(d.Golden())
		if err != nil {
			return err
		}
		sig, err := d.CircuitSignature(circ, tv.Omegas)
		if err != nil {
			continue // unsolvable; was skipped from the catalogue too
		}
		res, err := dg.DiagnoseWithCatastrophic(geometry.VecN(sig), cats)
		if err != nil {
			return err
		}
		total++
		if res.Best().Component == hard.ID() {
			correct++
		}
	}
	r.printf("hard faults identified: %d/%d\n", correct, total)

	// (b) Parametric faults with the extended catalogue active.
	trials := diagnosis.HoldOutTrials(d.Universe(), diagnosis.DefaultHoldOutDeviations())
	pCorrect := 0
	for _, f := range trials {
		sig, err := d.Signature(f, tv.Omegas)
		if err != nil {
			return err
		}
		res, err := dg.DiagnoseWithCatastrophic(geometry.VecN(sig), cats)
		if err != nil {
			return err
		}
		if res.Best().Component == f.Component {
			pCorrect++
		}
	}
	r.printf("parametric faults still correct with catalogue active: %d/%d (%.1f%%)\n",
		pCorrect, len(trials), 100*float64(pCorrect)/float64(len(trials)))
	r.printf("expected shape: hard faults land far outside the ±40%% trajectories and are\n")
	r.printf("named by nearest-point matching without perturbing parametric diagnosis\n")
	return nil
}
