package main

import (
	"os"
	"runtime"
	"strings"
	"time"
)

// benchEnvelope is the shared metadata envelope of every benchmark
// report (BENCH_hotpath.json, BENCH_multifault.json, BENCH_sparse.json):
// toolchain and platform identity plus the knobs that change what a
// ns/op number means — GOMAXPROCS, the CPU model, and the measurement
// date. Embedded in each report type so the fields stay flattened in
// the JSON.
type benchEnvelope struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Date       string `json:"date"`
}

// newBenchEnvelope fills the envelope. The date comes from the -date
// flag so regenerated reports can be reproduced byte-for-byte in CI; an
// empty flag stamps the current UTC day.
func newBenchEnvelope(date string) benchEnvelope {
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	return benchEnvelope{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Date:       date,
	}
}

// newBenchReport builds an empty hot-path-shaped report with the
// envelope filled in.
func newBenchReport(date string) *hotpathReport {
	return &hotpathReport{benchEnvelope: newBenchEnvelope(date)}
}

// cpuModel names the CPU the benchmarks ran on, best-effort: on Linux
// the first "model name" line of /proc/cpuinfo, empty elsewhere (the
// field is omitted from the JSON when unknown).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(value)
		}
	}
	return ""
}
