package main

import (
	"os"
	"runtime"
	"strings"
	"time"
)

// newBenchReport builds the shared metadata envelope of every benchmark
// report (BENCH_hotpath.json, BENCH_multifault.json): toolchain and
// platform identity plus the knobs that change what a ns/op number
// means — GOMAXPROCS, the CPU model, and the measurement date. The date
// comes from the -date flag so regenerated reports can be reproduced
// byte-for-byte in CI; an empty flag stamps the current UTC day.
func newBenchReport(date string) *hotpathReport {
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	return &hotpathReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Date:       date,
	}
}

// cpuModel names the CPU the benchmarks ran on, best-effort: on Linux
// the first "model name" line of /proc/cpuinfo, empty elsewhere (the
// field is omitted from the JSON when unknown).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(value)
		}
	}
	return ""
}
