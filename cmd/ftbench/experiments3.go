package main

import (
	"math/rand"

	"repro"
	"repro/internal/fault"
	"repro/internal/geometry"
)

// e10Reject evaluates the unknown-fault rejection extension: points from
// double faults should be rejected (they lie off every single-fault
// trajectory), while genuine single faults should pass.
func (r *runner) e10Reject() error {
	r.header("E10", "extension: rejection of out-of-model (double) faults")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	dg, err := p.Diagnoser(r.ctx, tv.Omegas)
	if err != nil {
		return err
	}
	d := p.Dictionary()
	ext := dg.Extent()

	ratios := []float64{0.01, 0.02, 0.05, 0.1}
	rng := rand.New(rand.NewSource(r.seed + 31))

	// Single-fault set: the standard hold-out.
	singles := make([]geometry.VecN, 0, 42)
	for _, comp := range d.Universe().Components {
		for _, dev := range []float64{-0.35, -0.25, -0.15, 0.15, 0.25, 0.35} {
			sig, err := d.Signature(repro.Fault{Component: comp, Deviation: dev}, tv.Omegas)
			if err != nil {
				return err
			}
			singles = append(singles, geometry.VecN(sig))
		}
	}
	// Double-fault set: random large pairs.
	var doubles []geometry.VecN
	for len(doubles) < 40 {
		m, err := fault.RandomMulti(d.Universe(), 2, rng)
		if err != nil {
			return err
		}
		big := true
		for _, f := range m {
			if f.Deviation < 0.3 && f.Deviation > -0.3 {
				big = false
			}
		}
		if !big {
			continue
		}
		faulty, err := m.Apply(d.Golden())
		if err != nil {
			return err
		}
		sig, err := d.CircuitSignature(faulty, tv.Omegas)
		if err != nil {
			return err
		}
		doubles = append(doubles, geometry.VecN(sig))
	}

	rejectRate := func(points []geometry.VecN, ratio float64) (float64, error) {
		rej := 0
		for _, pt := range points {
			res, err := dg.Diagnose(pt)
			if err != nil {
				return 0, err
			}
			if res.Rejected(ext, ratio) {
				rej++
			}
		}
		return float64(rej) / float64(len(points)), nil
	}

	r.printf("%-8s %22s %22s\n", "ratio", "single-fault rejected", "double-fault rejected")
	for _, ratio := range ratios {
		sr, err := rejectRate(singles, ratio)
		if err != nil {
			return err
		}
		dr, err := rejectRate(doubles, ratio)
		if err != nil {
			return err
		}
		r.printf("%-8.2f %21.1f%% %21.1f%%\n", ratio, 100*sr, 100*dr)
	}
	r.printf("expected shape: a ratio window exists where singles pass and doubles are caught\n")
	return nil
}

// e11Tolerance measures diagnosis accuracy when every component carries
// manufacturing tolerance on top of the single hard fault.
func (r *runner) e11Tolerance() error {
	r.header("E11", "extension: diagnosis under component manufacturing tolerance")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	dg, err := p.Diagnoser(r.ctx, tv.Omegas)
	if err != nil {
		return err
	}
	d := p.Dictionary()

	sigmas := []float64{0, 0.005, 0.01, 0.02, 0.05}
	const trialsPerComp = 4
	r.printf("%-12s %9s %9s\n", "tolerance σ", "top1-acc", "top2-acc")
	for _, sigma := range sigmas {
		rng := rand.New(rand.NewSource(r.seed + int64(sigma*1e4)))
		tol := fault.Tolerance{Sigma: sigma}
		correct, topTwo, total := 0, 0, 0
		for _, comp := range d.Universe().Components {
			for trial := 0; trial < trialsPerComp; trial++ {
				board, err := tol.Perturb(d.Golden(), rng, comp)
				if err != nil {
					return err
				}
				dev := 0.25
				if trial%2 == 1 {
					dev = -0.25
				}
				if err := board.ScaleValue(comp, 1+dev); err != nil {
					return err
				}
				sig, err := d.CircuitSignature(board, tv.Omegas)
				if err != nil {
					return err
				}
				res, err := dg.Diagnose(geometry.VecN(sig))
				if err != nil {
					return err
				}
				total++
				if res.Best().Component == comp {
					correct++
				}
				for i, cand := range res.Candidates {
					if i > 1 {
						break
					}
					if cand.Component == comp {
						topTwo++
						break
					}
				}
			}
		}
		r.printf("%-12.3f %8.1f%% %8.1f%%\n", sigma,
			100*float64(correct)/float64(total), 100*float64(topTwo)/float64(total))
	}
	r.printf("expected shape: robust through ~1-2%% tolerance, degrading by 5%%\n")
	return nil
}
