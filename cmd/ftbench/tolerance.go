package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/circuits"
	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/probdiag"
	"repro/internal/trajectory"
)

// Tolerance-experiment parameters. Everything is pinned so the emitted
// report is machine-independent: accuracy counts come from seeded
// Monte-Carlo draws and deterministic LU solves, never from timing.
const (
	// tolSigma is the component tolerance of both the cloud model and
	// the simulated boards.
	tolSigma = 0.05
	// tolNoiseFrac scales the measurement noise: σ_j is this fraction
	// of the golden magnitude at test frequency j, applied to every
	// hold-out measurement and declared to the cloud model.
	tolNoiseFrac = 0.01
)

// tolSampleCounts is the Monte-Carlo budget sweep: one cloud model per
// count, scored against the same hold-out.
var tolSampleCounts = []int{25, 50, 100, 200}

// tolHoldOutDevs are the injected off-grid deviations per component.
var tolHoldOutDevs = []float64{-0.3, -0.15, 0.15, 0.3}

// toleranceSample is one (CUT, sample count) measurement.
type toleranceSample struct {
	// Samples is the Monte-Carlo budget of the cloud model.
	Samples int `json:"samples"`
	// LikelihoodTop1 counts trials whose likelihood-ranked best
	// hypothesis named the injected component.
	LikelihoodTop1 int `json:"likelihood_top1"`
	// GroupResolved counts trials where the injected component is the
	// best hypothesis or a member of its reported ambiguity group —
	// the "diagnosis up to tolerance-induced ambiguity" yield.
	GroupResolved int `json:"group_resolved"`
	// AmbiguityGroups is the number of precomputed overlap groups.
	AmbiguityGroups int `json:"ambiguity_groups"`
	// MeanConfidence averages the posterior confidence over trials.
	MeanConfidence float64 `json:"mean_confidence"`
}

// toleranceCut is one CUT's row of the report.
type toleranceCut struct {
	Name   string    `json:"name"`
	Omegas []float64 `json:"omegas"`
	// Trials is the hold-out size (components × deviations).
	Trials int `json:"trials"`
	// NearestTop1 is the classic nearest-signature baseline on the
	// same noisy hold-out.
	NearestTop1 int               `json:"nearest_top1"`
	Samples     []toleranceSample `json:"samples"`
}

// toleranceReport is the BENCH_tolerance.json schema. Unlike the
// hotpath report it carries no timings — every field is deterministic
// given (seed, sigma, noise_frac, sample_counts), which is what the CI
// gate re-derives and compares.
type toleranceReport struct {
	Date         string         `json:"date"`
	Seed         int64          `json:"seed"`
	Sigma        float64        `json:"sigma"`
	NoiseFrac    float64        `json:"noise_frac"`
	HoldOutDevs  []float64      `json:"hold_out_devs"`
	SampleCounts []int          `json:"sample_counts"`
	Cuts         []toleranceCut `json:"cuts"`
}

// tolerance sweeps the Monte-Carlo budget of the probabilistic
// diagnosis model over every built-in CUT: simulate a noisy hold-out
// (component tolerances + measurement noise), diagnose it with the
// classic nearest-signature rule and with likelihood ranking at each
// sample count, and write BENCH_tolerance.json. The run fails if, at
// the largest budget, likelihood top-1 falls below the nearest
// baseline on any CUT — the tentpole's acceptance bar.
func (r *runner) tolerance() error {
	r.header("TOLERANCE", "likelihood vs nearest-signature diagnosis under tolerances → "+r.toleranceOut)
	rep := toleranceReport{
		Date:         newBenchReport(r.date).Date,
		Seed:         r.seed,
		Sigma:        tolSigma,
		NoiseFrac:    tolNoiseFrac,
		HoldOutDevs:  tolHoldOutDevs,
		SampleCounts: tolSampleCounts,
	}
	for ci, cut := range circuits.All() {
		row, err := r.toleranceCut(ci, cut)
		if err != nil {
			return fmt.Errorf("tolerance: %s: %w", cut.Circuit.Name(), err)
		}
		rep.Cuts = append(rep.Cuts, *row)
		last := row.Samples[len(row.Samples)-1]
		r.printf("  %-18s trials %3d  nearest %3d  likelihood",
			row.Name, row.Trials, row.NearestTop1)
		for _, sr := range row.Samples {
			r.printf(" %3d", sr.LikelihoodTop1)
		}
		r.printf("  (groups %d, mean confidence %.2f)\n", last.AmbiguityGroups, last.MeanConfidence)
		if last.LikelihoodTop1 < row.NearestTop1 {
			return fmt.Errorf("tolerance: %s: likelihood top-1 %d/%d below nearest baseline %d/%d at %d samples",
				row.Name, last.LikelihoodTop1, row.Trials, row.NearestTop1, row.Trials, last.Samples)
		}
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(r.toleranceOut, data, 0o644); err != nil {
		return fmt.Errorf("tolerance: %w", err)
	}
	r.printf("  wrote %s\n", r.toleranceOut)
	return nil
}

// toleranceCut runs the sweep for one CUT.
func (r *runner) toleranceCut(ci int, cut circuits.CUT) (*toleranceCut, error) {
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		return nil, err
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		return nil, err
	}
	omegas := []float64{cut.Omega0 / 2, cut.Omega0, cut.Omega0 * 2}

	// Measurement noise, declared identically to the hold-out and the
	// cloud model: σ_j = noiseFrac × golden magnitude.
	noiseSigma := make([]float64, len(omegas))
	for j, w := range omegas {
		g, err := d.GoldenResponse(w)
		if err != nil {
			return nil, err
		}
		noiseSigma[j] = tolNoiseFrac * g
	}

	// The noisy hold-out: every component at every off-grid deviation,
	// on a board whose other components drift at tolSigma, measured
	// with additive Gaussian noise.
	rng := rand.New(rand.NewSource(r.seed*1000 + int64(ci)))
	type trial struct {
		comp string
		sig  []float64
	}
	var trials []trial
	for _, comp := range u.Components {
		for _, dev := range tolHoldOutDevs {
			board, err := fault.Tolerance{Sigma: tolSigma}.Perturb(d.Golden(), rng)
			if err != nil {
				return nil, err
			}
			if err := board.ScaleValue(comp, 1+dev); err != nil {
				return nil, err
			}
			sig, err := d.CircuitSignature(board, omegas)
			if err != nil {
				return nil, err
			}
			for j := range sig {
				sig[j] += noiseSigma[j] * rng.NormFloat64()
			}
			trials = append(trials, trial{comp: comp, sig: sig})
		}
	}

	// Nearest-signature baseline on the same hold-out.
	tm, err := trajectory.Build(nil, d, omegas)
	if err != nil {
		return nil, err
	}
	dg, err := diagnosis.New(tm)
	if err != nil {
		return nil, err
	}
	row := &toleranceCut{Name: cut.Circuit.Name(), Omegas: omegas, Trials: len(trials)}
	for _, tr := range trials {
		res, err := dg.Diagnose(tr.sig)
		if err != nil {
			return nil, err
		}
		if res.Best().Component == tr.comp {
			row.NearestTop1++
		}
	}

	for _, samples := range tolSampleCounts {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		cs, err := probdiag.Build(r.ctx, d, omegas, nil, probdiag.Config{
			Sigma:      tolSigma,
			Samples:    samples,
			Seed:       r.seed*100 + int64(ci),
			NoiseSigma: noiseSigma,
		})
		if err != nil {
			return nil, err
		}
		sr := toleranceSample{Samples: samples, AmbiguityGroups: len(cs.Groups)}
		var confSum float64
		for _, tr := range trials {
			res, err := cs.Score(tr.sig)
			if err != nil {
				return nil, err
			}
			confSum += res.Confidence
			hit := res.Best().Key == tr.comp
			if hit {
				sr.LikelihoodTop1++
			}
			if !hit {
				// Group-resolved: the injected component hides inside
				// the winner's ambiguity group.
				for _, id := range res.AmbiguityGroup {
					set, err := fault.ParseSetID(id)
					if err != nil {
						return nil, err
					}
					if diagnosis.SetKey(set) == tr.comp {
						hit = true
						break
					}
				}
			}
			if hit {
				sr.GroupResolved++
			}
		}
		sr.MeanConfidence = confSum / float64(len(trials))
		row.Samples = append(row.Samples, sr)
	}
	return row, nil
}
