package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro"
	"repro/internal/analysis"
	"repro/internal/diagnosis"
	"repro/internal/ga"
	"repro/internal/geometry"
	"repro/internal/signal"
)

// e6Frequencies ablates the test-vector size k (the paper fixes k = 2).
func (r *runner) e6Frequencies() error {
	r.header("E6", "ablation: number of test frequencies k")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	r.printf("%-3s %30s %4s %9s %9s\n", "k", "ω (rad/s)", "I", "fitness", "top1-acc")
	for k := 1; k <= 4; k++ {
		cfg := r.gaConfig(p.CUT().Omega0)
		cfg.NumFrequencies = k
		tv, err := p.Optimize(r.ctx, cfg)
		if err != nil {
			return err
		}
		ev, err := p.Evaluate(r.ctx, tv.Omegas, nil)
		if err != nil {
			return err
		}
		r.printf("%-3d %30s %4d %9.4f %8.1f%%\n", k, fmtOmegas(tv.Omegas), tv.Intersections, tv.Fitness, 100*ev.Accuracy())
	}
	r.printf("expected shape: k=1 is ambiguous; k=2 is the paper's sweet spot; k>2 adds little\n")
	return nil
}

func fmtOmegas(omegas []float64) string {
	s := ""
	for i, w := range omegas {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.4g", w)
	}
	return s
}

// e7GAAblation sweeps GA operators and rates.
func (r *runner) e7GAAblation() error {
	r.header("E7", "ablation: GA selection method and mutation rate")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	type variant struct {
		name      string
		selection ga.SelectionMethod
		mutation  float64
		pop       int
	}
	variants := []variant{
		{"roulette m=0.4 (paper)", ga.Roulette, 0.4, 0},
		{"roulette m=0.1", ga.Roulette, 0.1, 0},
		{"roulette m=0.7", ga.Roulette, 0.7, 0},
		{"tournament m=0.4", ga.Tournament, 0.4, 0},
		{"rank m=0.4", ga.Rank, 0.4, 0},
		{"roulette pop=16", ga.Roulette, 0.4, 16},
	}
	r.printf("%-24s %9s %4s %9s\n", "variant", "fitness", "I", "evals")
	for _, v := range variants {
		cfg := r.gaConfig(p.CUT().Omega0)
		cfg.GA.Selection = v.selection
		cfg.GA.MutationRate = v.mutation
		if v.pop > 0 {
			cfg.GA.PopSize = v.pop
		}
		tv, err := p.Optimize(r.ctx, cfg)
		if err != nil {
			return err
		}
		r.printf("%-24s %9.4f %4d %9d\n", v.name, tv.Fitness, tv.Intersections, tv.Evaluations)
	}
	r.printf("expected shape: all variants reach near-max fitness; small pops are noisier\n")
	return nil
}

// e8Noise measures diagnosis robustness when the observed point comes
// from a simulated bench measurement (multitone + Goertzel) instead of
// the analytic response.
func (r *runner) e8Noise() error {
	r.header("E8", "robustness: measurement noise and quantization")
	p, err := r.paperSession()
	if err != nil {
		return err
	}
	tv, err := r.optimizedVector()
	if err != nil {
		return err
	}
	// Coherent sampling: snap the GA's frequencies onto integer-cycle
	// bins of the capture window, as a real multitone tester would, so
	// rectangular-window leakage between tones vanishes.
	base := signal.DefaultMeasureConfig()
	omegas, err := signal.CoherentOmegas(tv.Omegas, base.SampleRate, base.Samples)
	if err != nil {
		return err
	}
	r.printf("test vector snapped to coherent bins: %s -> %s rad/s\n", fmtOmegas(tv.Omegas), fmtOmegas(omegas))
	dg, err := p.Diagnoser(r.ctx, omegas)
	if err != nil {
		return err
	}
	d := p.Dictionary()

	// Golden per-tone amplitudes measured through the same clean path.
	goldenGains, err := toneGains(p, repro.Fault{}, omegas)
	if err != nil {
		return err
	}
	cleanCfg := signal.DefaultMeasureConfig()
	goldenAmps, err := signal.MeasureTones(goldenGains, omegas, cleanCfg, nil)
	if err != nil {
		return err
	}

	trials := diagnosis.HoldOutTrials(d.Universe(), []float64{-0.35, -0.25, 0.25, 0.35})
	snrs := []float64{math.Inf(1), 80, 60, 40, 30, 20}
	r.printf("%-10s %9s %9s\n", "SNR (dB)", "top1-acc", "top2-acc")
	for _, snr := range snrs {
		rng := rand.New(rand.NewSource(r.seed + int64(snr*10)))
		correct, topTwo := 0, 0
		for _, f := range trials {
			gains, err := toneGains(p, f, omegas)
			if err != nil {
				return err
			}
			cfg := signal.DefaultMeasureConfig()
			cfg.SNRdB = snr
			cfg.ADCBits = 12
			amps, err := signal.MeasureTones(gains, omegas, cfg, rng)
			if err != nil {
				return err
			}
			point := make(geometry.VecN, len(amps))
			for i := range amps {
				point[i] = amps[i] - goldenAmps[i]
			}
			res, err := dg.Diagnose(point)
			if err != nil {
				return err
			}
			if res.Best().Component == f.Component {
				correct++
			}
			for i, c := range res.Candidates {
				if i > 1 {
					break
				}
				if c.Component == f.Component {
					topTwo++
					break
				}
			}
		}
		label := "clean"
		if !math.IsInf(snr, 1) {
			label = fmt.Sprintf("%.0f", snr)
		}
		r.printf("%-10s %8.1f%% %8.1f%%\n", label,
			100*float64(correct)/float64(len(trials)), 100*float64(topTwo)/float64(len(trials)))
	}
	r.printf("expected shape: graceful degradation; near-clean accuracy above ~40 dB\n")
	return nil
}

// toneGains returns the faulty circuit's complex gain at each tone,
// solved directly (the dictionary stores only magnitudes; the
// measurement simulation needs phases too).
func toneGains(p *repro.Session, f repro.Fault, omegas []float64) ([]complex128, error) {
	faulty, err := f.Apply(p.Dictionary().Golden())
	if err != nil {
		return nil, err
	}
	ac, err := analysis.NewAC(faulty)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(omegas))
	for i, w := range omegas {
		h, err := ac.Transfer(p.CUT().Source, p.CUT().Output, w)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

// e9Circuits runs the whole pipeline on every benchmark CUT.
func (r *runner) e9Circuits() error {
	r.header("E9", "generality: fault-trajectory ATPG across benchmark circuits")
	r.printf("%-18s %4s %22s %4s %9s %9s\n", "circuit", "n", "ω (rad/s)", "I", "fitness", "top1-acc")
	for _, cut := range repro.Benchmarks() {
		p, err := repro.NewSession(cut)
		if err != nil {
			return err
		}
		cfg := r.gaConfig(cut.Omega0)
		tv, err := p.Optimize(r.ctx, cfg)
		if err != nil {
			return err
		}
		ev, err := p.Evaluate(r.ctx, tv.Omegas, nil)
		if err != nil {
			return err
		}
		r.printf("%-18s %4d %22s %4d %9.4f %8.1f%%\n",
			cut.Circuit.Name(), len(cut.Passives), fmtOmegas(tv.Omegas), tv.Intersections, tv.Fitness, 100*ev.Accuracy())
	}
	r.printf("expected shape: high accuracy everywhere except known-ambiguous CUTs\n")
	r.printf("(tow-thomas has a gain-ratio pair R5/R6; the RC ladder has strongly overlapping influences)\n")
	return nil
}
