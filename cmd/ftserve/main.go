// Command ftserve is the long-lived fault-diagnosis service: it holds
// per-CUT fault dictionaries, test vectors, and trajectory maps in a
// registry (built lazily with single-flight deduplication, or
// warm-started from saved artifacts) and serves diagnoses over HTTP,
// coalescing concurrent requests into micro-batched engine passes.
//
// Quickstart:
//
//	ftserve -addr :8080 -cuts nf-lowpass-7 -freqs 0.56,4.55
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/diagnose \
//	  -d '{"cut":"nf-lowpass-7","fault":{"component":"R3","deviation":0.25}}'
//
// Endpoints: POST /v1/diagnose, POST /v1/diagnose/batch, GET /v1/cuts,
// GET /v1/stats (observability JSON), GET /healthz, GET /metrics
// (Prometheus text: counters, gauges, latency histograms, engine path
// counters).
//
// Observability: -log-level/-log-format select structured slog output
// (request, build, and eviction logs on stderr); -pprof-addr serves
// net/http/pprof on a separate listener, opt-in and isolated from the
// service port.
//
// SIGINT/SIGTERM begin a graceful shutdown: the listener closes,
// in-flight requests drain through their batchers, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

// options collects the serving configuration the flags map onto.
type options struct {
	addr       string
	cuts       string
	arts       string
	freqsArg   string
	seed       int64
	full       bool
	doubles    bool
	maxDoubles int
	tolSigma   float64
	mcSamples  int
	workers    int
	lru        int
	flush      time.Duration
	maxBatch   int
	queue      int
	drain      time.Duration
	pprofAddr  string
	logLevel   string
	logFormat  string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.cuts, "cuts", "", "comma-separated CUT names to preload at startup ('all' for every benchmark; others load lazily)")
	flag.StringVar(&o.arts, "artifacts", "", "directory of saved artifacts to warm-start CUTs from")
	flag.StringVar(&o.freqsArg, "freqs", "", "fixed test frequencies in rad/s for every CUT (default: GA-optimized per CUT)")
	flag.Int64Var(&o.seed, "seed", 1, "GA random seed for optimized test vectors")
	flag.BoolVar(&o.full, "full", false, "use the paper's full 128x15 GA for optimized test vectors")
	flag.BoolVar(&o.doubles, "double-faults", false, "model double faults: maps gain pair trajectories and {\"faults\":[...]} injections are named")
	flag.IntVar(&o.maxDoubles, "max-double-faults", 0, "cap the modeled double-fault universe per CUT (0 = no cap)")
	flag.Float64Var(&o.tolSigma, "tolerance", 0, "component tolerance sigma for probabilistic diagnosis (requires -mc-samples)")
	flag.IntVar(&o.mcSamples, "mc-samples", 0, "Monte-Carlo samples per fault cloud; > 0 enables probabilistic diagnosis (confidence, likelihoods, ambiguity groups)")
	flag.IntVar(&o.workers, "workers", 0, "worker bound per session (0 = one per CPU)")
	flag.IntVar(&o.lru, "lru", serve.DefaultCapacity, "max CUTs resident in the registry")
	flag.DurationVar(&o.flush, "flush", 2*time.Millisecond, "micro-batch flush window")
	flag.IntVar(&o.maxBatch, "max-batch", 64, "max requests per micro-batch")
	flag.IntVar(&o.queue, "queue", 256, "bounded diagnose queue size per CUT")
	flag.DurationVar(&o.drain, "drain", 15*time.Second, "graceful shutdown drain timeout")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log level: debug, info, warn, error")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log format: text or json")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(repro.VersionString("ftserve"))
		return
	}
	if err := run(o, nil); err != nil {
		log.Fatalf("ftserve: %v", err)
	}
}

// run builds and serves until SIGINT/SIGTERM, then drains. ready, when
// non-nil, receives the bound address once the listener is up (tests).
func run(o options, ready chan<- string) error {
	freqs, err := parseFreqs(o.freqsArg)
	if err != nil {
		return err
	}
	logger, err := buildLogger(o.logLevel, o.logFormat)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Capacity: o.lru,
		Version:  repro.VersionString("ftserve"),
		Logger:   logger,
		Build: serve.BuildConfig{
			Workers:         o.workers,
			Freqs:           freqs,
			Seed:            o.seed,
			FullGA:          o.full,
			DoubleFaults:    o.doubles,
			MaxDoubleFaults: o.maxDoubles,
			ToleranceSigma:  o.tolSigma,
			MCSamples:       o.mcSamples,
			ArtifactDir:     o.arts,
			Scheduler: serve.SchedulerConfig{
				FlushWindow: o.flush,
				MaxBatch:    o.maxBatch,
				QueueSize:   o.queue,
			},
		},
	}
	srv := serve.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if o.pprofAddr != "" {
		pln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		logger.Info("pprof enabled", "addr", pln.Addr().String())
		go http.Serve(pln, pprofMux()) //nolint:errcheck // dies with the listener
	}

	if names := preloadNames(o.cuts); len(names) > 0 {
		log.Printf("preloading %s", strings.Join(names, ", "))
		if err := srv.Preload(ctx, names); err != nil {
			srv.Close()
			return err
		}
	}

	httpSrv := &http.Server{Addr: o.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		srv.Close()
		return err
	}
	log.Printf("%s", cfg.Version)
	log.Printf("serving on %s (flush %s, max batch %d, queue %d, lru %d, double faults %v, mc samples %d)",
		ln.Addr(), o.flush, o.maxBatch, o.queue, o.lru, o.doubles, o.mcSamples)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight handlers finish
	// (their queued requests flush through the batchers), then stop the
	// registry.
	log.Printf("shutdown: draining in-flight requests (timeout %s)", o.drain)
	dctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(dctx)
	srv.Close()
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		return fmt.Errorf("drain: %w", shutdownErr)
	}
	<-errc // Serve has returned http.ErrServerClosed
	log.Printf("shutdown complete")
	return nil
}

// buildLogger maps -log-level/-log-format onto a stderr slog.Logger.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// pprofMux registers the net/http/pprof handlers on a dedicated mux, so
// the profiler never rides on the service listener (and the import does
// not expose http.DefaultServeMux).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// preloadNames expands the -cuts flag.
func preloadNames(cuts string) []string {
	cuts = strings.TrimSpace(cuts)
	if cuts == "" {
		return nil
	}
	if cuts == "all" {
		var names []string
		for _, c := range repro.Benchmarks() {
			names = append(names, c.Circuit.Name())
		}
		return names
	}
	var names []string
	for _, n := range strings.Split(cuts, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// parseFreqs parses the -freqs flag (empty means "GA-optimize per CUT").
func parseFreqs(arg string) ([]float64, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil
	}
	return repro.ParseFrequencies(arg)
}
