package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestPreloadNames(t *testing.T) {
	if got := preloadNames(""); got != nil {
		t.Fatalf("empty = %v", got)
	}
	if got := preloadNames(" a, b ,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("list = %v", got)
	}
	all := preloadNames("all")
	if len(all) < 2 {
		t.Fatalf("all = %v", all)
	}
}

func TestParseFreqs(t *testing.T) {
	got, err := parseFreqs("0.56, 4.55")
	if err != nil || !reflect.DeepEqual(got, []float64{0.56, 4.55}) {
		t.Fatalf("parseFreqs = %v, %v", got, err)
	}
	if _, err := parseFreqs("abc"); err == nil {
		t.Fatal("bad freq accepted")
	}
	if got, err := parseFreqs(" "); got != nil || err != nil {
		t.Fatalf("blank = %v, %v", got, err)
	}
}

func TestBuildLogger(t *testing.T) {
	for _, ok := range []struct{ level, format string }{
		{"debug", "text"}, {"info", "json"}, {"warn", "text"}, {"error", "json"}, {"", ""},
	} {
		if _, err := buildLogger(ok.level, ok.format); err != nil {
			t.Errorf("buildLogger(%q, %q) = %v", ok.level, ok.format, err)
		}
	}
	if _, err := buildLogger("loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := buildLogger("info", "yaml"); err == nil {
		t.Error("bad format accepted")
	}
}

// TestPprofMux verifies the dedicated profiler mux serves the pprof
// index, and that the service mux never routes profiler paths — the
// profiler is only reachable on its own -pprof-addr listener.
func TestPprofMux(t *testing.T) {
	ts := httptest.NewServer(pprofMux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: %d %.120s", resp.StatusCode, body)
	}

	srv := serve.New(serve.Config{Build: serve.BuildConfig{Freqs: []float64{0.56, 4.55}}})
	defer srv.Close()
	svc := httptest.NewServer(srv.Handler())
	defer svc.Close()
	resp, err = http.Get(svc.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("service port serves /debug/pprof/ with %d, want 404", resp.StatusCode)
	}
}

// TestRunServesAndDrainsOnSIGTERM is the end-to-end smoke: start the
// server on an ephemeral port, serve /healthz and a diagnosis, then send
// the process a real SIGTERM while requests are in flight and assert
// they complete and run returns cleanly.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr: "127.0.0.1:0", cuts: "nf-lowpass-7", freqsArg: "0.56,4.55",
			seed: 1, workers: 1, lru: 4, flush: 20 * time.Millisecond,
			maxBatch: 64, queue: 256, drain: 10 * time.Second,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	diagnose := func() (int, []byte, error) {
		resp, err := http.Post(base+"/v1/diagnose", "application/json",
			bytes.NewReader([]byte(`{"cut":"nf-lowpass-7","fault":{"component":"R3","deviation":0.25}}`)))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, nil
	}
	status, body, err := diagnose()
	if err != nil || status != 200 {
		t.Fatalf("diagnose: %d %s (%v)", status, body, err)
	}
	var rep struct {
		Result struct {
			Candidates []struct {
				Component string `json:"component"`
			} `json:"candidates"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &rep); err != nil || len(rep.Result.Candidates) == 0 || rep.Result.Candidates[0].Component != "R3" {
		t.Fatalf("diagnosis: %s (%v)", body, err)
	}

	// Observability endpoints ride the same listener: /metrics carries
	// the latency histograms and engine counters, /v1/stats the JSON view.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"ftserve_requests_total", "ftserve_request_seconds_bucket",
		"ftserve_queue_wait_seconds_count", "ftserve_engine_rank1_solves_total",
	} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Metrics struct {
			Requests       int64 `json:"requests_total"`
			RequestSeconds struct {
				Count int64 `json:"count"`
			} `json:"request_seconds"`
		} `json:"metrics"`
		Engine struct {
			Rank1Solves int64 `json:"rank1_solves"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		t.Fatalf("/v1/stats does not parse: %v (%s)", err, statsBody)
	}
	if stats.Metrics.Requests < 1 || stats.Metrics.RequestSeconds.Count < 1 || stats.Engine.Rank1Solves < 1 {
		t.Fatalf("/v1/stats counters empty: %s", statsBody)
	}

	// In-flight requests ride out the SIGTERM: fire a burst sitting in
	// the 20ms flush window, signal mid-flight, and require every
	// response.
	const inflight = 8
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	codes := make([]int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, errs[i] = diagnose()
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < inflight; i++ {
		// A request that lost the race to the closing listener sees a
		// connection error; one that got in must be fully served.
		if errs[i] == nil && codes[i] != 200 {
			t.Fatalf("in-flight request %d: status %d, want 200 (drained) or connection refused", i, codes[i])
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (clean drain)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}
