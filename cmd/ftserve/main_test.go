package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestPreloadNames(t *testing.T) {
	if got := preloadNames(""); got != nil {
		t.Fatalf("empty = %v", got)
	}
	if got := preloadNames(" a, b ,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("list = %v", got)
	}
	all := preloadNames("all")
	if len(all) < 2 {
		t.Fatalf("all = %v", all)
	}
}

func TestParseFreqs(t *testing.T) {
	got, err := parseFreqs("0.56, 4.55")
	if err != nil || !reflect.DeepEqual(got, []float64{0.56, 4.55}) {
		t.Fatalf("parseFreqs = %v, %v", got, err)
	}
	if _, err := parseFreqs("abc"); err == nil {
		t.Fatal("bad freq accepted")
	}
	if got, err := parseFreqs(" "); got != nil || err != nil {
		t.Fatalf("blank = %v, %v", got, err)
	}
}

// TestRunServesAndDrainsOnSIGTERM is the end-to-end smoke: start the
// server on an ephemeral port, serve /healthz and a diagnosis, then send
// the process a real SIGTERM while requests are in flight and assert
// they complete and run returns cleanly.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr: "127.0.0.1:0", cuts: "nf-lowpass-7", freqsArg: "0.56,4.55",
			seed: 1, workers: 1, lru: 4, flush: 20 * time.Millisecond,
			maxBatch: 64, queue: 256, drain: 10 * time.Second,
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	diagnose := func() (int, []byte, error) {
		resp, err := http.Post(base+"/v1/diagnose", "application/json",
			bytes.NewReader([]byte(`{"cut":"nf-lowpass-7","fault":{"component":"R3","deviation":0.25}}`)))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, nil
	}
	status, body, err := diagnose()
	if err != nil || status != 200 {
		t.Fatalf("diagnose: %d %s (%v)", status, body, err)
	}
	var rep struct {
		Result struct {
			Candidates []struct {
				Component string `json:"component"`
			} `json:"candidates"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &rep); err != nil || len(rep.Result.Candidates) == 0 || rep.Result.Candidates[0].Component != "R3" {
		t.Fatalf("diagnosis: %s (%v)", body, err)
	}

	// In-flight requests ride out the SIGTERM: fire a burst sitting in
	// the 20ms flush window, signal mid-flight, and require every
	// response.
	const inflight = 8
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	codes := make([]int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, errs[i] = diagnose()
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < inflight; i++ {
		// A request that lost the race to the closing listener sees a
		// connection error; one that got in must be fully served.
		if errs[i] == nil && codes[i] != 200 {
			t.Fatalf("in-flight request %d: status %d, want 200 (drained) or connection refused", i, codes[i])
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (clean drain)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}
