package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadInputFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.cir")
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readInput(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("readInput = %q", got)
	}
	if _, err := readInput(filepath.Join(t.TempDir(), "missing.cir")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadInputStdin(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	if _, err := w.WriteString("from stdin"); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := readInput("-")
	if err != nil {
		t.Fatal(err)
	}
	if got != "from stdin" {
		t.Fatalf("readInput = %q", got)
	}
}
