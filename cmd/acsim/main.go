// Command acsim is a small AC circuit simulator: it reads a netlist,
// sweeps a frequency band, and prints the Bode table of a chosen
// transfer function — the standalone face of the repository's MNA engine.
//
// Example:
//
//	acsim -source V1 -output out -lo 1 -hi 1e6 -points 31 filter.cir
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/analysis"
)

func main() {
	var (
		source = flag.String("source", "V1", "driving voltage source")
		output = flag.String("output", "out", "observed node")
		lo     = flag.Float64("lo", 0.01, "sweep start (rad/s)")
		hi     = flag.Float64("hi", 100, "sweep end (rad/s)")
		points = flag.Int("points", 25, "number of log-spaced points")
	)
	flag.Parse()

	text, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	c, err := repro.ParseNetlist(text)
	if err != nil {
		fail(err)
	}
	ac, err := analysis.NewAC(c)
	if err != nil {
		fail(err)
	}
	resp, err := ac.LogSweep(*source, *output, *lo, *hi, *points)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: V(%s)/V(%s)\n", c.Name(), *output, *source)
	fmt.Printf("%-12s %12s %12s %12s\n", "ω (rad/s)", "|H|", "|H| (dB)", "phase (deg)")
	for _, p := range resp.Points {
		fmt.Printf("%-12.5g %12.6f %12.2f %12.2f\n", p.Omega, p.Mag(), p.MagDb(), p.PhaseDeg())
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "acsim:", err)
	os.Exit(1)
}
