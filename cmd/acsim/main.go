// Command acsim is a small AC circuit simulator: it reads a netlist,
// sweeps a frequency band, and prints the Bode table of a chosen
// transfer function — the standalone face of the repository's MNA engine.
//
// Example:
//
//	acsim -source V1 -output out -lo 1 -hi 1e6 -points 31 filter.cir
//	acsim -cut rc-ladder-128 -points 31
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/analysis"
)

func main() {
	var (
		source  = flag.String("source", "V1", "driving voltage source")
		output  = flag.String("output", "out", "observed node")
		cutName = flag.String("cut", "", "simulate a built-in CUT by name instead of a netlist (fixed names or parameterized, e.g. rc-ladder-128)")
		lo      = flag.Float64("lo", 0.01, "sweep start (rad/s)")
		hi      = flag.Float64("hi", 100, "sweep end (rad/s)")
		points  = flag.Int("points", 25, "number of log-spaced points")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(repro.VersionString("acsim"))
		return
	}

	var c *repro.Circuit
	if *cutName != "" {
		cut, err := repro.BenchmarkByName(*cutName)
		if err != nil {
			fail(err)
		}
		c = cut.Circuit
		// The CUT carries its own measurement; explicit flags still win.
		if *source == "V1" {
			*source = cut.Source
		}
		if *output == "out" {
			*output = cut.Output
		}
	} else {
		text, err := readInput(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		c, err = repro.ParseNetlist(text)
		if err != nil {
			fail(err)
		}
	}
	ac, err := analysis.NewAC(c)
	if err != nil {
		fail(err)
	}
	resp, err := ac.LogSweep(*source, *output, *lo, *hi, *points)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: V(%s)/V(%s)\n", c.Name(), *output, *source)
	fmt.Printf("%-12s %12s %12s %12s\n", "ω (rad/s)", "|H|", "|H| (dB)", "phase (deg)")
	for _, p := range resp.Points {
		fmt.Printf("%-12.5g %12.6f %12.2f %12.2f\n", p.Omega, p.Mag(), p.MagDb(), p.PhaseDeg())
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

// fail reports structured errors with actionable detail: netlist syntax
// errors point at their source line, singular systems explain themselves.
func fail(err error) {
	var pe *repro.ParseError
	switch {
	case errors.As(err, &pe):
		fmt.Fprintf(os.Stderr, "acsim: netlist syntax error on line %d: %s\n", pe.Line, pe.Msg)
		if pe.Card != "" {
			fmt.Fprintf(os.Stderr, "  | %s\n", pe.Card)
		}
	case errors.Is(err, repro.ErrSingular):
		fmt.Fprintf(os.Stderr, "acsim: circuit is unsolvable (singular MNA system): %v\n", err)
		fmt.Fprintln(os.Stderr, "  check for floating nodes, shorted sources, or missing ground")
	default:
		fmt.Fprintln(os.Stderr, "acsim:", err)
	}
	os.Exit(1)
}
