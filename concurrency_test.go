package repro_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro"
)

// TestDiagnoserConcurrentReadOnlyUse hammers one Session + Diagnoser from
// many goroutines, mixing every shared-read entry point the serving layer
// uses: memoized scalar responses, memo-bypassing bulk signatures
// (DiagnoseFaults), per-fault diagnosis, and map reads. Run under -race
// (the CI race job does) it pins the documented contract that
// Session.Dictionary() and a built Diagnoser are safe for concurrent
// read-only use; without -race it still verifies that concurrent results
// are bit-identical to sequential ones.
func TestDiagnoserConcurrentReadOnlyUse(t *testing.T) {
	ctx := context.Background()
	s, err := repro.NewSession(repro.PaperCUT(), repro.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	omegas := []float64{0.56, 4.55}
	dg, err := s.Diagnoser(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}

	comps := s.CUT().Passives
	faults := make([]repro.Fault, 0, len(comps))
	for i, c := range comps {
		dev := 0.17
		if i%2 == 1 {
			dev = -0.23
		}
		faults = append(faults, repro.Fault{Component: c, Deviation: dev})
	}

	// Sequential reference, computed before the hammer starts.
	wantBulk, err := s.DiagnoseFaults(ctx, dg, faults)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := make([]string, len(wantBulk))
	for i, r := range wantBulk {
		data, _ := json.Marshal(r)
		wantJSON[i] = string(data)
	}
	wantResp, err := s.Dictionary().Response(faults[0], omegas[0])
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				switch g % 4 {
				case 0: // bulk batched diagnosis (the micro-batcher path)
					got, err := s.DiagnoseFaults(ctx, dg, faults)
					if err != nil {
						errs[g] = err
						return
					}
					for i, r := range got {
						data, _ := json.Marshal(r)
						if string(data) != wantJSON[i] {
							t.Errorf("goroutine %d: bulk result %d drifted under concurrency", g, i)
							return
						}
					}
				case 1: // per-fault diagnosis through the memoized path
					f := faults[(g+round)%len(faults)]
					res, err := dg.DiagnoseFault(s.Dictionary(), f)
					if err != nil {
						errs[g] = err
						return
					}
					if res.Best().Component != f.Component {
						t.Errorf("goroutine %d: %s misdiagnosed as %s", g, f.Component, res.Best().Component)
						return
					}
				case 2: // memoized scalar responses (lazy memo writes race here if unlocked)
					got, err := s.Dictionary().Response(faults[0], omegas[0])
					if err != nil {
						errs[g] = err
						return
					}
					if got != wantResp {
						t.Errorf("goroutine %d: memoized response drifted: %g != %g", g, got, wantResp)
						return
					}
				case 3: // map reads the HTTP layer performs per request
					if dg.Extent() <= 0 || dg.Map().Dim() != len(omegas) {
						t.Errorf("goroutine %d: map reads inconsistent", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
