package repro

import (
	"context"
	"errors"
	"testing"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(PaperCUT())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallCfg(seed int64) OptimizeConfig {
	cfg := PaperOptimizeConfig(1)
	cfg.GA.PopSize = 24
	cfg.GA.Generations = 6
	cfg.Seed = seed
	return cfg
}

func TestSessionOptionValidation(t *testing.T) {
	if _, err := NewSession(PaperCUT(), WithWorkers(-1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative workers: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewSession(PaperCUT(), WithDeviations()); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty deviations: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewSession(PaperCUT(), WithComponents()); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty components: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewSession(PaperCUT(), WithComponents("R99")); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("unknown component: err = %v, want ErrUnknownComponent", err)
	}
}

func TestSessionMatchesPipeline(t *testing.T) {
	// The deprecated shim and the v2 session must produce identical
	// results for the same inputs.
	p, err := NewPipeline(PaperCUT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := testSession(t)
	ctx := context.Background()
	tvP, err := p.Optimize(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	tvS, err := s.Optimize(ctx, smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if tvP.Fitness != tvS.Fitness || tvP.Omegas[0] != tvS.Omegas[0] || tvP.Omegas[1] != tvS.Omegas[1] {
		t.Fatalf("pipeline %v vs session %v", tvP.Omegas, tvS.Omegas)
	}
}

// TestOptimizeCanceledReturnsErrCanceled is the acceptance criterion:
// a canceled context returns ErrCanceled (and errors.Is(err,
// context.Canceled)) from Session.Optimize within one GA generation.
func TestOptimizeCanceledReturnsErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel from the progress stream after the first generation: the
	// run must stop within one more generation.
	gens := 0
	s, err := NewSession(PaperCUT(), WithProgress(func(p Progress) {
		if p.Stage == StageOptimize {
			gens++
			if gens == 1 {
				cancel()
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(1)
	cfg.GA.Generations = 50
	_, err = s.Optimize(ctx, cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if gens > 2 {
		t.Fatalf("ran %d generations after cancellation, want <= 2", gens)
	}
}

// TestEvaluateCanceledReturnsErrCanceled: same criterion for Evaluate
// (cancellation within one frequency batch).
func TestEvaluateCanceledReturnsErrCanceled(t *testing.T) {
	s := testSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Evaluate(ctx, []float64{0.56, 4.55}, nil)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if _, err := s.Trajectories(ctx, []float64{0.56, 4.55}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Trajectories err = %v, want ErrCanceled", err)
	}
	if err := s.Precompute(ctx, []float64{0.5, 1, 2}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Precompute err = %v, want ErrCanceled", err)
	}
}

func TestProgressStreamShape(t *testing.T) {
	var events []Progress
	s, err := NewSession(PaperCUT(), WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := smallCfg(1)
	tv, err := s.Optimize(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(ctx, tv.Omegas, nil); err != nil {
		t.Fatal(err)
	}

	var optimize, evaluate, dict int
	lastBest := -1.0
	for _, ev := range events {
		switch ev.Stage {
		case StageOptimize:
			optimize++
			if ev.Total != cfg.GA.Generations {
				t.Fatalf("optimize total = %d, want %d", ev.Total, cfg.GA.Generations)
			}
			// With elitism the per-generation best never regresses.
			if ev.BestFitness < lastBest {
				t.Fatalf("best fitness regressed: %g -> %g", lastBest, ev.BestFitness)
			}
			lastBest = ev.BestFitness
		case StageEvaluate:
			evaluate++
		case StageDictionary:
			dict++
		}
	}
	if optimize != cfg.GA.Generations {
		t.Fatalf("optimize events = %d, want %d", optimize, cfg.GA.Generations)
	}
	if evaluate != 2 {
		t.Fatalf("evaluate events = %d, want begin+end", evaluate)
	}
	if dict != 2 {
		t.Fatalf("dictionary events = %d, want begin+end from NewSession", dict)
	}
}

func TestProgressChannelNeverBlocks(t *testing.T) {
	ch := make(chan Progress, 1) // deliberately undersized
	s, err := NewSession(PaperCUT(), WithProgressChannel(ch))
	if err != nil {
		t.Fatal(err)
	}
	// No consumer: Optimize must still complete (events are dropped).
	if _, err := s.Optimize(context.Background(), smallCfg(1)); err != nil {
		t.Fatal(err)
	}
	if len(ch) == 0 {
		t.Fatal("channel received no events at all")
	}
}

func TestPrecomputeStreamsPerFrequencyProgress(t *testing.T) {
	var events []Progress
	s, err := NewSession(PaperCUT(), WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	events = events[:0] // drop the NewSession begin/end markers
	grid := []float64{0.1, 0.5, 1, 5, 10}
	if err := s.Precompute(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(grid) {
		t.Fatalf("events = %d, want one per frequency (%d)", len(events), len(grid))
	}
	for _, ev := range events {
		if ev.Stage != StageDictionary || ev.Total != len(grid) {
			t.Fatalf("bad event %+v", ev)
		}
	}
}

func TestSessionWorkersApplyToGA(t *testing.T) {
	// WithWorkers must not change results, only parallelism.
	ctx := context.Background()
	s1, err := NewSession(PaperCUT(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NewSession(PaperCUT(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	tv1, err := s1.Optimize(ctx, smallCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	tv4, err := s4.Optimize(ctx, smallCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	if tv1.Fitness != tv4.Fitness || tv1.Omegas[0] != tv4.Omegas[0] {
		t.Fatalf("worker count changed results: %v vs %v", tv1, tv4)
	}
}

func TestStructuredErrorsSurface(t *testing.T) {
	s := testSession(t)
	ctx := context.Background()
	bad := smallCfg(1)
	bad.NumFrequencies = 0
	if _, err := s.Optimize(ctx, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad config: err = %v, want ErrBadConfig", err)
	}
	dg, err := s.Diagnoser(ctx, []float64{0.56, 4.55})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dg.DiagnoseFault(s.Dictionary(), Fault{Component: "R99", Deviation: 0.2}); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("unknown component: err = %v, want ErrUnknownComponent", err)
	}
}

func TestWithComponentsReflectedInCUT(t *testing.T) {
	s, err := NewSession(PaperCUT(), WithComponents("R3", "C2"))
	if err != nil {
		t.Fatal(err)
	}
	got := s.CUT().Passives
	if len(got) != 2 || got[0] != "R3" || got[1] != "C2" {
		t.Fatalf("CUT().Passives = %v, want the restricted targets", got)
	}
	// The deprecated shim keeps the v1 contract too.
	nl := "t\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n"
	p, err := NewPipelineFromNetlist(nl, "V1", "out", []string{"R1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CUT().Passives; len(got) != 1 || got[0] != "R1" {
		t.Fatalf("pipeline CUT().Passives = %v, want [R1]", got)
	}
}

func TestChecksumCoversMeasurementSetup(t *testing.T) {
	base := testSession(t)
	sameAgain := testSession(t)
	if base.Checksum() != sameAgain.Checksum() {
		t.Fatal("identical sessions disagree on checksum")
	}
	devs, err := NewSession(PaperCUT(), WithDeviations(-0.2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if devs.Checksum() == base.Checksum() {
		t.Fatal("different deviation grids share a checksum")
	}
	comps, err := NewSession(PaperCUT(), WithComponents("R3"))
	if err != nil {
		t.Fatal(err)
	}
	if comps.Checksum() == base.Checksum() {
		t.Fatal("different fault universes share a checksum")
	}
	// Same netlist, different observed node → different artifacts.
	nl := "t\nV1 in 0 1\nR1 in mid 1k\nR2 mid out 1k\nC1 out 0 1u\n"
	atOut, err := NewSessionFromNetlist(nl, "V1", "out")
	if err != nil {
		t.Fatal(err)
	}
	atMid, err := NewSessionFromNetlist(nl, "V1", "mid")
	if err != nil {
		t.Fatal(err)
	}
	if atOut.Checksum() == atMid.Checksum() {
		t.Fatal("different output nodes share a checksum")
	}
}
