// Package repro is the public API of the fault-trajectory analog fault
// diagnosis library, a reproduction of "Fault-Trajectory Approach for
// Fault Diagnosis on Analog Circuits" (Savioli, Szendrodi, Calvano,
// Mesquita; DATE 2005).
//
// The workflow mirrors the paper:
//
//  1. Pick (or parse) a circuit under test — see Benchmarks and
//     ParseNetlist.
//  2. Open a Session: it runs the fault simulation and produces the
//     fault dictionary over a parametric fault universe
//     (±10%…±40% deviations by default, per the paper).
//  3. Optimize a test vector — a small set of stimulus frequencies —
//     with the paper's GA (fitness 1/(1+I), I = fault-trajectory
//     intersections).
//  4. Diagnose observed responses: an unknown fault maps to a point in
//     the trajectory plane and is assigned to the nearest trajectory by
//     perpendicular projection.
//
// Minimal use (v2 API):
//
//	cut := repro.PaperCUT()
//	s, err := repro.NewSession(cut)
//	tv, err := s.Optimize(ctx, repro.PaperOptimizeConfig(cut.Omega0))
//	diag, err := s.Diagnoser(ctx, tv.Omegas)
//	res, err := diag.DiagnoseFault(s.Dictionary(), repro.Fault{Component: "R3", Deviation: 0.25})
//
// Every long-running stage takes a context.Context and stops within one
// GA generation / frequency batch of cancellation, returning an error
// that wraps ErrCanceled. Sessions accept functional options
// (WithDeviations, WithWorkers, WithProgress, …), stream Progress
// events, return structured errors (ErrBadConfig, ErrSingular,
// ErrUnknownComponent, …), and persist their expensive artifacts —
// dictionary grids, test vectors, trajectory maps — as versioned,
// checksummed JSON (SaveDictionary / SaveTestVector / SaveTrajectories
// and the matching Load functions).
//
// The v1 Pipeline type remains as a deprecated shim over Session.
package repro

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/ga"
	"repro/internal/netlist"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/opamp"
	"repro/internal/probdiag"
	"repro/internal/trajectory"
)

// Re-exported types: the library's user-facing vocabulary.
type (
	// CUT is a circuit under test with measurement metadata.
	CUT = circuits.CUT
	// Circuit is a lumped linear analog network.
	Circuit = circuit.Circuit
	// Fault is a single parametric deviation of one component.
	Fault = fault.Fault
	// Universe is the set of faults the dictionary covers.
	Universe = fault.Universe
	// TestVector is an optimized set of test frequencies.
	TestVector = core.TestVector
	// OptimizeConfig drives GA test-vector optimization.
	OptimizeConfig = core.Config
	// GAConfig holds the genetic-algorithm hyperparameters.
	GAConfig = ga.Config
	// Diagnoser classifies observed response points.
	Diagnoser = diagnosis.Diagnoser
	// DiagnosisResult is a ranked component diagnosis.
	DiagnosisResult = diagnosis.Result
	// Evaluation aggregates diagnosis accuracy over trials.
	Evaluation = diagnosis.Evaluation
	// TrajectoryMap is the set of component fault trajectories for one
	// test vector.
	TrajectoryMap = trajectory.Map
	// Dictionary serves golden and faulty AC responses.
	Dictionary = dictionary.Dictionary
	// MultiFault is a simultaneous multiple parametric fault. Sessions
	// opened WithDoubleFaults diagnose these by name; other sessions can
	// only reject them as out-of-model.
	MultiFault = fault.Multi
	// FaultSet is the abstraction over fault hypotheses — golden, Fault,
	// or MultiFault — with stable IDs (ParseFaultSetID inverts them).
	FaultSet = fault.Set
	// DiagnosisCandidate is one ranked fault hypothesis of a diagnosis
	// (single component, or a named multi-fault component set).
	DiagnosisCandidate = diagnosis.Candidate
	// Tolerance models manufacturing spread on every component.
	Tolerance = fault.Tolerance
	// SignatureClouds is the Monte-Carlo probabilistic diagnosis model:
	// one signature distribution (mean + variance per frequency) per
	// fault hypothesis, with precomputed ambiguity groups. Built by
	// Session.Clouds, persisted by SaveClouds/LoadClouds, scored by
	// DiagnoseProbabilistic.
	SignatureClouds = probdiag.CloudSet
	// SignatureCloud is one fault set's signature distribution.
	SignatureCloud = probdiag.Cloud
	// ProbabilisticResult is a likelihood-ranked diagnosis with
	// posterior probabilities, confidence, and ambiguity group.
	ProbabilisticResult = diagnosis.ProbResult
	// ProbabilisticCandidate is one ranked hypothesis of a
	// ProbabilisticResult.
	ProbabilisticCandidate = diagnosis.ProbCandidate
	// Rational is a fitted transfer function N(s)/D(s).
	Rational = numeric.Rational
	// Tracer collects timing spans from a session's stages and the
	// engine's per-frequency fault-set work. Install one with WithTracer;
	// a nil Tracer is the no-op default and costs the hot paths nothing.
	Tracer = obs.Tracer
	// TraceSpan is one finished span of a Tracer (name, start offset and
	// duration in milliseconds).
	TraceSpan = obs.Span
)

// PaperCUT returns the stand-in for the paper's circuit under test: a
// normalized negative-feedback low-pass filter with exactly seven
// passive components (see DESIGN.md for the substitution rationale).
func PaperCUT() CUT { return circuits.NFLowpass7() }

// PaperCUTMacro returns the paper CUT with the opamp replaced by the
// FFM-style macromodel (moderate parameters: A0 = 10⁴, pole at
// 10 rad/s) and the macromodel's four elements appended to the fault
// targets — the active-device fault setup of experiment E12.
func PaperCUTMacro() (CUT, error) {
	cut, err := circuits.NFLowpass7Macro(opamp.Params{A0: 1e4, GBW: 1e5, Rin: 1e6, Rout: 1})
	if err != nil {
		return CUT{}, err
	}
	cut.Passives = append(append([]string(nil), cut.Passives...),
		"U1.E", "U1.Cp", "U1.Rin", "U1.Rout")
	return cut, nil
}

// Benchmarks returns every built-in circuit under test.
func Benchmarks() []CUT { return circuits.All() }

// ScalingBenchmarks returns the parameterized scaling CUT tier at
// representative sizes (RC ladders and op-amp-macro filter cascades up
// to hundreds of MNA unknowns) — the workload of the sparse golden
// engine. Arbitrary sizes are reachable through BenchmarkByName.
func ScalingBenchmarks() []CUT { return circuits.Scaling() }

// BenchmarkFamilies lists the parameterized CUT name patterns
// BenchmarkByName accepts beyond the fixed set, e.g. "rc-ladder-<n>".
func BenchmarkFamilies() []string { return circuits.Families() }

// BenchmarkByName returns a built-in CUT by its circuit name — fixed
// names from Benchmarks, or parameterized family names like
// "rc-ladder-128" and "opamp-cascade-16".
func BenchmarkByName(name string) (CUT, error) { return circuits.ByName(name) }

// PaperDeviations returns the paper's fault grid: ±10%…±40% in 10%
// steps.
func PaperDeviations() []float64 { return fault.PaperDeviations() }

// PaperGAConfig returns the paper's §2.4 GA parameters (128 individuals,
// 15 generations, 50% reproduction, 40% mutation, roulette wheel).
func PaperGAConfig() GAConfig { return ga.PaperConfig() }

// PaperOptimizeConfig returns the paper's full optimization setup
// centered on a CUT's characteristic frequency.
func PaperOptimizeConfig(omega0 float64) OptimizeConfig {
	return core.PaperOptimizeConfig(omega0)
}

// ParseNetlist parses SPICE-like netlist text into a Circuit (see the
// netlist card reference in the internal/netlist package docs). Syntax
// failures are ParseErrors carrying the source line and card text.
func ParseNetlist(text string) (*Circuit, error) { return netlist.Parse(text) }

// NewMultiFault builds a simultaneous multiple fault from its parts,
// validating that components are distinct and every deviation is a
// genuine, injectable one.
func NewMultiFault(parts ...Fault) (MultiFault, error) { return fault.NewMulti(parts...) }

// ParseFaultSetID parses a stable fault-set identifier — "golden",
// "R3@+25%", or "C1@-20%+R3@+30%" — back into the fault set, the format
// fault IDs render to and the CLI -inject flag accepts.
func ParseFaultSetID(id string) (FaultSet, error) { return fault.ParseSetID(id) }

// FaultSetKey returns the component-set identity of a fault set
// ("R3", "C1+R3", "golden"), the key DiagnosisCandidate.Key matches
// against when deciding whether a diagnosis named the injected fault.
func FaultSetKey(set FaultSet) string { return diagnosis.SetKey(set) }

// ParseFrequencies parses a comma-separated list of angular frequencies
// in rad/s ("0.56, 4.55") — the format the CLI -freqs flags accept.
// Failures wrap ErrBadConfig.
func ParseFrequencies(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, f := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("repro: %w: bad frequency %q", ErrBadConfig, f)
		}
		out = append(out, v)
	}
	return out, nil
}

// NewTracer starts an empty trace for WithTracer. Collected spans are
// read back with Tracer.Spans or dumped with Tracer.WriteJSON (the
// format behind the CLI -trace flag).
func NewTracer() *Tracer { return obs.NewTracer() }

// SerializeNetlist renders a Circuit back to netlist text.
func SerializeNetlist(c *Circuit) (string, error) { return netlist.Serialize(c) }
