// Package repro is the public API of the fault-trajectory analog fault
// diagnosis library, a reproduction of "Fault-Trajectory Approach for
// Fault Diagnosis on Analog Circuits" (Savioli, Szendrodi, Calvano,
// Mesquita; DATE 2005).
//
// The workflow mirrors the paper:
//
//  1. Pick (or parse) a circuit under test — see Benchmarks and
//     ParseNetlist.
//  2. Build a Pipeline: it runs the fault simulation and produces the
//     fault dictionary over a parametric fault universe
//     (±10%…±40% deviations by default, per the paper).
//  3. Optimize a test vector — a small set of stimulus frequencies —
//     with the paper's GA (fitness 1/(1+I), I = fault-trajectory
//     intersections).
//  4. Diagnose observed responses: an unknown fault maps to a point in
//     the trajectory plane and is assigned to the nearest trajectory by
//     perpendicular projection.
//
// Minimal use:
//
//	cut := repro.PaperCUT()
//	p, err := repro.NewPipeline(cut, nil)
//	tv, err := p.Optimize(repro.PaperOptimizeConfig(cut.Omega0))
//	diag, err := p.Diagnoser(tv.Omegas)
//	res, err := diag.DiagnoseFault(p.Dictionary(), repro.Fault{Component: "R3", Deviation: 0.25})
package repro

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/ga"
	"repro/internal/geometry"
	"repro/internal/netlist"
	"repro/internal/numeric"
	"repro/internal/opamp"
	"repro/internal/trajectory"
)

// Re-exported types: the library's user-facing vocabulary.
type (
	// CUT is a circuit under test with measurement metadata.
	CUT = circuits.CUT
	// Circuit is a lumped linear analog network.
	Circuit = circuit.Circuit
	// Fault is a single parametric deviation of one component.
	Fault = fault.Fault
	// Universe is the set of faults the dictionary covers.
	Universe = fault.Universe
	// TestVector is an optimized set of test frequencies.
	TestVector = core.TestVector
	// OptimizeConfig drives GA test-vector optimization.
	OptimizeConfig = core.Config
	// GAConfig holds the genetic-algorithm hyperparameters.
	GAConfig = ga.Config
	// Diagnoser classifies observed response points.
	Diagnoser = diagnosis.Diagnoser
	// DiagnosisResult is a ranked component diagnosis.
	DiagnosisResult = diagnosis.Result
	// Evaluation aggregates diagnosis accuracy over trials.
	Evaluation = diagnosis.Evaluation
	// TrajectoryMap is the set of component fault trajectories for one
	// test vector.
	TrajectoryMap = trajectory.Map
	// Dictionary serves golden and faulty AC responses.
	Dictionary = dictionary.Dictionary
	// MultiFault is a simultaneous multiple parametric fault (out of the
	// paper's single-fault model; diagnosable only as a rejection).
	MultiFault = fault.Multi
	// Tolerance models manufacturing spread on every component.
	Tolerance = fault.Tolerance
	// Rational is a fitted transfer function N(s)/D(s).
	Rational = numeric.Rational
)

// PaperCUT returns the stand-in for the paper's circuit under test: a
// normalized negative-feedback low-pass filter with exactly seven
// passive components (see DESIGN.md for the substitution rationale).
func PaperCUT() CUT { return circuits.NFLowpass7() }

// PaperCUTMacro returns the paper CUT with the opamp replaced by the
// FFM-style macromodel (moderate parameters: A0 = 10⁴, pole at
// 10 rad/s) and the macromodel's four elements appended to the fault
// targets — the active-device fault setup of experiment E12.
func PaperCUTMacro() (CUT, error) {
	cut, err := circuits.NFLowpass7Macro(opamp.Params{A0: 1e4, GBW: 1e5, Rin: 1e6, Rout: 1})
	if err != nil {
		return CUT{}, err
	}
	cut.Passives = append(append([]string(nil), cut.Passives...),
		"U1.E", "U1.Cp", "U1.Rin", "U1.Rout")
	return cut, nil
}

// Benchmarks returns every built-in circuit under test.
func Benchmarks() []CUT { return circuits.All() }

// BenchmarkByName returns a built-in CUT by its circuit name.
func BenchmarkByName(name string) (CUT, error) { return circuits.ByName(name) }

// PaperDeviations returns the paper's fault grid: ±10%…±40% in 10%
// steps.
func PaperDeviations() []float64 { return fault.PaperDeviations() }

// PaperGAConfig returns the paper's §2.4 GA parameters (128 individuals,
// 15 generations, 50% reproduction, 40% mutation, roulette wheel).
func PaperGAConfig() GAConfig { return ga.PaperConfig() }

// PaperOptimizeConfig returns the paper's full optimization setup
// centered on a CUT's characteristic frequency.
func PaperOptimizeConfig(omega0 float64) OptimizeConfig {
	return core.PaperOptimizeConfig(omega0)
}

// ParseNetlist parses SPICE-like netlist text into a Circuit (see the
// netlist card reference in the internal/netlist package docs).
func ParseNetlist(text string) (*Circuit, error) { return netlist.Parse(text) }

// SerializeNetlist renders a Circuit back to netlist text.
func SerializeNetlist(c *Circuit) (string, error) { return netlist.Serialize(c) }

// Pipeline bundles the whole fault-trajectory flow for one CUT.
type Pipeline struct {
	cut  CUT
	atpg *core.ATPG
}

// NewPipeline builds the fault dictionary for a CUT. deviations may be
// nil for the paper's ±10%…±40% grid; otherwise it lists the fractional
// deviations of the fault universe.
func NewPipeline(cut CUT, deviations []float64) (*Pipeline, error) {
	if err := cut.Validate(); err != nil {
		return nil, err
	}
	if deviations == nil {
		deviations = fault.PaperDeviations()
	}
	u, err := fault.NewUniverse(cut.Passives, deviations)
	if err != nil {
		return nil, err
	}
	atpg, err := core.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		return nil, err
	}
	return &Pipeline{cut: cut, atpg: atpg}, nil
}

// NewPipelineFromNetlist builds a pipeline from netlist text plus the
// measurement metadata a netlist does not carry: the driving source, the
// observed output node, and the fault-target components (nil → every
// Valued element). deviations may be nil for the paper grid.
func NewPipelineFromNetlist(text, source, output string, components []string, deviations []float64) (*Pipeline, error) {
	c, err := netlist.Parse(text)
	if err != nil {
		return nil, err
	}
	if components == nil {
		components = c.ValuedNames()
	}
	if len(components) == 0 {
		return nil, fmt.Errorf("repro: netlist has no faultable components")
	}
	cut := CUT{
		Circuit:     c,
		Source:      source,
		Output:      output,
		Passives:    components,
		Omega0:      1,
		Description: "netlist-defined circuit under test",
	}
	return NewPipeline(cut, deviations)
}

// CUT returns the pipeline's circuit under test.
func (p *Pipeline) CUT() CUT { return p.cut }

// Dictionary exposes the fault dictionary.
func (p *Pipeline) Dictionary() *Dictionary { return p.atpg.Dictionary() }

// Optimize searches for a test vector with the GA.
func (p *Pipeline) Optimize(cfg OptimizeConfig) (*TestVector, error) {
	return p.atpg.Optimize(cfg)
}

// Fitness evaluates the paper's fitness for an explicit test vector.
func (p *Pipeline) Fitness(omegas []float64) (float64, error) {
	return p.atpg.Fitness(omegas, core.PaperFitness)
}

// Trajectories builds the trajectory map for a test vector.
func (p *Pipeline) Trajectories(omegas []float64) (*TrajectoryMap, error) {
	return trajectory.Build(p.atpg.Dictionary(), omegas)
}

// Diagnoser builds the diagnosis stage for a test vector.
func (p *Pipeline) Diagnoser(omegas []float64) (*Diagnoser, error) {
	return p.atpg.BuildDiagnoser(omegas)
}

// Evaluate runs the hold-out evaluation: off-grid deviations (nil → the
// default ±15/25/35% set) on every universe component.
func (p *Pipeline) Evaluate(omegas []float64, holdOut []float64) (*Evaluation, error) {
	if holdOut == nil {
		holdOut = diagnosis.DefaultHoldOutDeviations()
	}
	return p.atpg.EvaluateVector(omegas, holdOut)
}

// ATPG exposes the underlying test generator for advanced use (baseline
// strategies, custom fitness modes).
func (p *Pipeline) ATPG() *core.ATPG { return p.atpg }

// DiagnoseCircuit diagnoses an arbitrary variant of the CUT (a multiple
// fault, a tolerance-perturbed board — anything with the same source and
// output) against the trajectory map for the given test vector. The
// boolean reports whether the result should be rejected as
// out-of-model at the given rejection ratio (0 disables rejection).
func (p *Pipeline) DiagnoseCircuit(variant *Circuit, omegas []float64, rejectRatio float64) (*DiagnosisResult, bool, error) {
	dg, err := p.Diagnoser(omegas)
	if err != nil {
		return nil, false, err
	}
	sig, err := p.Dictionary().CircuitSignature(variant, omegas)
	if err != nil {
		return nil, false, err
	}
	res, err := dg.Diagnose(geometry.VecN(sig))
	if err != nil {
		return nil, false, err
	}
	rejected := false
	if rejectRatio > 0 {
		rejected = res.Rejected(dg.Extent(), rejectRatio)
	}
	return res, rejected, nil
}

// FitTransfer recovers the CUT's transfer function N(s)/D(s) from
// sampled AC analysis (degrees chosen by the caller; see
// analysis.FitRational). It hands downstream users poles, zeros and
// filter parameters without symbolic analysis.
func (p *Pipeline) FitTransfer(numDeg, denDeg int, omegas []float64) (Rational, error) {
	ac, err := analysis.NewAC(p.Dictionary().Golden())
	if err != nil {
		return Rational{}, err
	}
	return ac.FitRational(p.cut.Source, p.cut.Output, numDeg, denDeg, omegas)
}
