package repro

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestArtifactRoundTripsAllCUTs is the satellite coverage: for every
// built-in CUT, Dictionary / TestVector / TrajectoryMap survive a
// Save→Load round-trip deep-equal.
func TestArtifactRoundTripsAllCUTs(t *testing.T) {
	ctx := context.Background()
	for _, cut := range Benchmarks() {
		cut := cut
		t.Run(cut.Circuit.Name(), func(t *testing.T) {
			s, err := NewSession(cut)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			omegas := []float64{cut.Omega0 / 2, cut.Omega0 * 2}

			// Trajectory map round-trip.
			m, err := s.Trajectories(ctx, omegas)
			if err != nil {
				t.Fatal(err)
			}
			mapPath := filepath.Join(dir, "map.json")
			if err := s.SaveTrajectories(mapPath, m); err != nil {
				t.Fatal(err)
			}
			m2, err := s.LoadTrajectories(mapPath)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m, m2) {
				t.Fatal("trajectory map did not round-trip deep-equal")
			}

			// Dictionary grid round-trip.
			dictPath := filepath.Join(dir, "dict.json")
			if err := s.SaveDictionary(ctx, dictPath, omegas); err != nil {
				t.Fatal(err)
			}
			ex, err := s.LoadDictionary(dictPath)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := s.Dictionary().Snapshot(omegas)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(snap, ex) {
				t.Fatal("dictionary export did not round-trip deep-equal")
			}

			// Test-vector round-trip (hand-built: no GA run needed).
			tv := &TestVector{Omegas: omegas, Fitness: 0.5, Intersections: 1, Evaluations: 7}
			tvPath := filepath.Join(dir, "tv.json")
			if err := s.SaveTestVector(tvPath, tv); err != nil {
				t.Fatal(err)
			}
			tv2, err := s.LoadTestVector(tvPath)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tv, tv2) {
				t.Fatalf("test vector did not round-trip: %+v vs %+v", tv, tv2)
			}
		})
	}
}

// TestLoadedDictionaryDiagnosesIdentically is the acceptance criterion:
// a Diagnoser built from a loaded dictionary artifact produces identical
// DiagnosisResults to one built in-process.
func TestLoadedDictionaryDiagnosesIdentically(t *testing.T) {
	ctx := context.Background()
	s := testSession(t)
	omegas := []float64{0.56, 4.55}

	// In-process: live trajectory map.
	live, err := s.Trajectories(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	dgLive, err := NewDiagnoser(live)
	if err != nil {
		t.Fatal(err)
	}

	// Artifact path: save the dictionary evaluated at the test vector,
	// load it back, rebuild the map from the export alone.
	path := filepath.Join(t.TempDir(), "dict.json")
	if err := s.SaveDictionary(ctx, path, omegas); err != nil {
		t.Fatal(err)
	}
	ex, err := s.LoadDictionary(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := TrajectoriesFromExport(ex, omegas)
	if err != nil {
		t.Fatal(err)
	}
	dgLoaded, err := NewDiagnoser(loaded)
	if err != nil {
		t.Fatal(err)
	}

	// The maps themselves must agree bit-for-bit at grid frequencies.
	if !reflect.DeepEqual(live.Omegas, loaded.Omegas) {
		t.Fatal("omegas differ")
	}
	for i, tr := range live.Trajectories {
		lt := loaded.Trajectories[i]
		if !reflect.DeepEqual(tr.Points, lt.Points) || !reflect.DeepEqual(tr.Deviations, lt.Deviations) {
			t.Fatalf("trajectory %s differs between live and loaded map", tr.Component)
		}
	}

	// Every hold-out fault must produce an identical ranked result.
	for _, comp := range s.Dictionary().Universe().Components {
		for _, dev := range []float64{-0.35, -0.15, 0.15, 0.35} {
			f := Fault{Component: comp, Deviation: dev}
			a, err := dgLive.DiagnoseFault(s.Dictionary(), f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dgLoaded.DiagnoseFault(s.Dictionary(), f)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: live and loaded diagnoses differ:\n%v\nvs\n%v", f.ID(), a, b)
			}
		}
	}

	// And the trajectory-map artifact behaves the same way.
	mapPath := filepath.Join(t.TempDir(), "map.json")
	if err := s.SaveTrajectories(mapPath, live); err != nil {
		t.Fatal(err)
	}
	fromMap, err := LoadTrajectoryMap(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, fromMap) {
		t.Fatal("standalone map load differs from the live map")
	}
}

// TestArtifactRejectsMismatchedChecksum: an artifact saved for one CUT
// must not load into a session for another.
func TestArtifactRejectsMismatchedChecksum(t *testing.T) {
	ctx := context.Background()
	s1 := testSession(t)
	cut2, err := BenchmarkByName("sallen-key-lp")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(cut2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	omegas := []float64{0.5, 2}

	dictPath := filepath.Join(dir, "dict.json")
	if err := s1.SaveDictionary(ctx, dictPath, omegas); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadDictionary(dictPath); !errors.Is(err, ErrStaleArtifact) {
		t.Fatalf("stale dictionary: err = %v, want ErrStaleArtifact", err)
	}

	m, err := s1.Trajectories(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	mapPath := filepath.Join(dir, "map.json")
	if err := s1.SaveTrajectories(mapPath, m); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadTrajectories(mapPath); !errors.Is(err, ErrStaleArtifact) {
		t.Fatalf("stale map: err = %v, want ErrStaleArtifact", err)
	}
	tvPath := filepath.Join(dir, "tv.json")
	if err := s1.SaveTestVector(tvPath, &TestVector{Omegas: omegas}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadTestVector(tvPath); !errors.Is(err, ErrStaleArtifact) {
		t.Fatalf("stale test vector: err = %v, want ErrStaleArtifact", err)
	}
}

// TestArtifactRejectsUnknownVersionAndKind tampers with the envelope.
func TestArtifactRejectsUnknownVersionAndKind(t *testing.T) {
	s := testSession(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "tv.json")
	if err := s.SaveTestVector(path, &TestVector{Omegas: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}

	// Future schema version.
	env["version"] = 99
	tampered, _ := json.Marshal(env)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadTestVector(path); !errors.Is(err, ErrArtifact) {
		t.Fatalf("future version: err = %v, want ErrArtifact", err)
	}

	// Wrong kind: a test-vector artifact is not a trajectory map.
	env["version"] = 1
	tampered, _ = json.Marshal(env)
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadTrajectories(path); !errors.Is(err, ErrArtifact) {
		t.Fatalf("wrong kind: err = %v, want ErrArtifact", err)
	}

	// Garbage bytes.
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadTestVector(path); !errors.Is(err, ErrArtifact) {
		t.Fatalf("garbage: err = %v, want ErrArtifact", err)
	}
}

// TestLoadTestVectorRejectsNullPayload: a corrupted artifact whose
// payload decodes to the zero value must error, not return an unusable
// empty vector.
func TestLoadTestVectorRejectsNullPayload(t *testing.T) {
	s := testSession(t)
	path := filepath.Join(t.TempDir(), "tv.json")
	corrupt := `{"kind":"repro.test-vector","version":1,"checksum":"` + s.Checksum() + `","payload":null}`
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadTestVector(path); !errors.Is(err, ErrArtifact) {
		t.Fatalf("null payload: err = %v, want ErrArtifact", err)
	}
}
