package repro_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
)

// doubleSession opens a paper-CUT session modeling double faults over a
// reduced deviation grid (keeps pair counts small enough for quick
// tests: 21 pairs × 4 deviations² = 336 sets).
func doubleSession(t *testing.T) *repro.Session {
	t.Helper()
	s, err := repro.NewSession(repro.PaperCUT(),
		repro.WithDeviations(-0.3, -0.1, 0.1, 0.3),
		repro.WithDoubleFaults(0),
		repro.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// doubleOmegas is a 4-frequency test vector; pair families separate far
// better in R⁴ than in the paper's R².
var doubleOmegas = []float64{0.2, 0.56, 4.55, 12}

// TestSessionDoubleFaultDiagnosis: a WithDoubleFaults session names
// injected double faults end to end, with top-1 accuracy reported by the
// evaluation — the session-level acceptance pin.
func TestSessionDoubleFaultDiagnosis(t *testing.T) {
	ctx := context.Background()
	s := doubleSession(t)
	pairs := s.DoubleFaults()
	if len(pairs) != 336 {
		t.Fatalf("modeled pairs = %d, want 336", len(pairs))
	}
	var trials []repro.FaultSet
	for i := 0; i < len(pairs); i += 5 {
		trials = append(trials, pairs[i])
	}
	dg, err := s.Diagnoser(ctx, doubleOmegas)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := s.EvaluateSets(ctx, dg, trials)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() < 0.9 {
		t.Fatalf("double-fault top-1 accuracy %.3f, want >= 0.9 (n=%d)", ev.Accuracy(), ev.Total)
	}

	// A single injected double fault resolves to a named multi candidate.
	inj, err := repro.NewMultiFault(
		repro.Fault{Component: "R1", Deviation: 0.3},
		repro.Fault{Component: "C2", Deviation: -0.3},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.DiagnoseFaultSets(ctx, dg, []repro.FaultSet{inj})
	if err != nil {
		t.Fatal(err)
	}
	best := res[0].Best()
	if best.Key() != repro.FaultSetKey(inj) {
		t.Fatalf("best key %q, want %q:\n%s", best.Key(), repro.FaultSetKey(inj), res[0])
	}
	if !best.IsMulti() || len(best.Deviations) != 2 {
		t.Fatalf("best candidate not a named double: %+v", best)
	}
}

// TestSessionDoubleFaultChecksumsDiffer: single- and double-fault
// sessions over the same CUT model different universes, so their
// artifacts must not warm-start each other.
func TestSessionDoubleFaultChecksumsDiffer(t *testing.T) {
	single, err := repro.NewSession(repro.PaperCUT(), repro.WithDeviations(-0.3, -0.1, 0.1, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	double := doubleSession(t)
	if single.Checksum() == double.Checksum() {
		t.Fatal("single- and double-fault sessions share a checksum")
	}
	// A capped pair universe is yet another model.
	capped, err := repro.NewSession(repro.PaperCUT(),
		repro.WithDeviations(-0.3, -0.1, 0.1, 0.3), repro.WithDoubleFaults(50))
	if err != nil {
		t.Fatal(err)
	}
	if capped.Checksum() == double.Checksum() {
		t.Fatal("capped and uncapped double-fault sessions share a checksum")
	}
	if len(capped.DoubleFaults()) != 50 {
		t.Fatalf("cap ignored: %d", len(capped.DoubleFaults()))
	}
}

// TestDoubleFaultArtifactRoundTrips: a trajectory map with pair families
// and a dictionary grid with pair rows both survive the artifact
// round-trip, and the reloaded diagnosis stage names the same double
// faults.
func TestDoubleFaultArtifactRoundTrips(t *testing.T) {
	ctx := context.Background()
	s := doubleSession(t)
	dir := t.TempDir()

	m, err := s.Trajectories(ctx, doubleOmegas)
	if err != nil {
		t.Fatal(err)
	}
	mapPath := filepath.Join(dir, "map.json")
	if err := s.SaveTrajectories(mapPath, m); err != nil {
		t.Fatal(err)
	}
	loadedMap, err := s.LoadTrajectories(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, tr := range loadedMap.Trajectories {
		if len(tr.Components) > 0 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("loaded map lost its pair families")
	}

	inj := s.DoubleFaults()[17]
	liveDg, err := s.Diagnoser(ctx, doubleOmegas)
	if err != nil {
		t.Fatal(err)
	}
	loadedDg, err := repro.NewDiagnoser(loadedMap)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.DiagnoseFaultSets(ctx, liveDg, []repro.FaultSet{inj})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.DiagnoseFaultSets(ctx, loadedDg, []repro.FaultSet{inj})
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want[0])
	gj, _ := json.Marshal(got[0])
	if string(wj) != string(gj) {
		t.Fatalf("loaded map diagnoses differently:\nlive   %s\nloaded %s", wj, gj)
	}

	// Dictionary grid with pair rows: save, reload, rebuild the map from
	// the export alone, and check the pair families reappear.
	dictPath := filepath.Join(dir, "dict.json")
	if err := s.SaveDictionary(ctx, dictPath, doubleOmegas); err != nil {
		t.Fatal(err)
	}
	ex, err := s.LoadDictionary(dictPath)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + len(s.Universe().Faults()) + len(s.DoubleFaults())
	if len(ex.Entries) != wantRows {
		t.Fatalf("export rows = %d, want %d (golden + singles + pairs)", len(ex.Entries), wantRows)
	}
	fromGrid, err := repro.TrajectoriesFromExport(ex, doubleOmegas)
	if err != nil {
		t.Fatal(err)
	}
	gridMulti := 0
	for _, tr := range fromGrid.Trajectories {
		if len(tr.Components) > 0 {
			gridMulti++
		}
	}
	if gridMulti != multi {
		t.Fatalf("grid-rebuilt map has %d pair families, live map %d", gridMulti, multi)
	}
	gridDg, err := repro.NewDiagnoser(fromGrid)
	if err != nil {
		t.Fatal(err)
	}
	fromGridRes, err := s.DiagnoseFaultSets(ctx, gridDg, []repro.FaultSet{inj})
	if err != nil {
		t.Fatal(err)
	}
	if fromGridRes[0].Best().Key() != want[0].Best().Key() {
		t.Fatalf("grid-rebuilt diagnosis names %q, live names %q",
			fromGridRes[0].Best().Key(), want[0].Best().Key())
	}

	if _, err := os.Stat(dictPath); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMultiFaultDiagnoses is the -race hammer over the
// multi-fault path: many goroutines sharing one double-fault Session and
// Diagnoser issue mixed single/double DiagnoseFaultSets batches; every
// result must be bit-identical to the sequential reference.
func TestConcurrentMultiFaultDiagnoses(t *testing.T) {
	ctx := context.Background()
	s := doubleSession(t)
	dg, err := s.Diagnoser(ctx, doubleOmegas)
	if err != nil {
		t.Fatal(err)
	}
	pairs := s.DoubleFaults()
	sets := []repro.FaultSet{
		repro.Fault{Component: "R1", Deviation: 0.22},
		pairs[3], pairs[100], pairs[335],
		repro.Fault{Component: "C1", Deviation: -0.17},
	}
	want, err := s.DiagnoseFaultSets(ctx, dg, sets)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := make([]string, len(want))
	for i, r := range want {
		data, _ := json.Marshal(r)
		wantJSON[i] = string(data)
	}

	const goroutines = 16
	const rounds = 3
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Rotate the batch so goroutines disagree on composition;
				// per-set results must not depend on batch neighbors.
				rot := append(append([]repro.FaultSet(nil), sets[g%len(sets):]...), sets[:g%len(sets)]...)
				res, err := s.DiagnoseFaultSets(ctx, dg, rot)
				if err != nil {
					errs[g] = err
					return
				}
				for i := range rot {
					data, _ := json.Marshal(res[i])
					if string(data) != wantJSON[(g%len(sets)+i)%len(sets)] {
						t.Errorf("goroutine %d round %d: result %d diverged", g, round, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
