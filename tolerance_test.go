package repro_test

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro"
)

// TestSessionCloudsDeterministicAcrossWorkers pins the acceptance
// criterion at the public-API layer: a fixed WithToleranceSeed yields a
// bit-identical cloud model at worker counts 1, 4, and the default
// (NumCPU).
func TestSessionCloudsDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	omegas := []float64{0.56, 4.55}
	tol := repro.Tolerance{Sigma: 0.05}
	var ref *repro.SignatureClouds
	for _, workers := range []int{1, 4, 0} {
		opts := []repro.Option{
			repro.WithTolerance(tol, 32),
			repro.WithToleranceSeed(42),
		}
		if workers > 0 {
			opts = append(opts, repro.WithWorkers(workers))
		}
		s, err := repro.NewSession(repro.PaperCUT(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := s.Clouds(ctx, omegas)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = cs
			continue
		}
		if !reflect.DeepEqual(ref, cs) {
			t.Fatalf("workers=%d: cloud model differs from workers=1 build", workers)
		}
	}
}

// TestWithToleranceKeepsPointPathAndChecksum guards the compatibility
// contract: opting a session into tolerance modeling must not change the
// artifact checksum (existing artifacts keep loading) and must leave the
// point-signature diagnosis path bit-identical.
func TestWithToleranceKeepsPointPathAndChecksum(t *testing.T) {
	ctx := context.Background()
	omegas := []float64{0.56, 4.55}
	plain, err := repro.NewSession(repro.PaperCUT())
	if err != nil {
		t.Fatal(err)
	}
	tolerant, err := repro.NewSession(repro.PaperCUT(),
		repro.WithTolerance(repro.Tolerance{Sigma: 0.05}, 16))
	if err != nil {
		t.Fatal(err)
	}

	// Checksum unchanged: an artifact saved by the plain session loads
	// in the tolerance-aware one without ErrStaleArtifact.
	m, err := plain.Trajectories(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "map.json")
	if err := plain.SaveTrajectories(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := tolerant.LoadTrajectories(path); err != nil {
		t.Fatalf("plain-session artifact rejected by tolerance session: %v", err)
	}

	// Point path bit-identical.
	dgPlain, err := plain.Diagnoser(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	dgTol, err := tolerant.Diagnoser(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []repro.Fault{
		{Component: "R3", Deviation: 0.25},
		{Component: "C2", Deviation: -0.3},
	} {
		a, err := dgPlain.DiagnoseFault(plain.Dictionary(), f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dgTol.DiagnoseFault(tolerant.Dictionary(), f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s@%+.0f%%: point diagnosis differs under WithTolerance", f.Component, f.Deviation*100)
		}
	}

	// A session without WithTolerance must refuse to build clouds.
	if _, err := plain.Clouds(ctx, omegas); !errors.Is(err, repro.ErrBadConfig) {
		t.Fatalf("Clouds without WithTolerance: err = %v, want ErrBadConfig", err)
	}
}

// TestCloudsArtifactRoundTrip covers the new artifact kind: deep-equal
// Save→Load round-trip (with measurement noise folded in), the
// tester-side load without a session, and rejection of both stale
// checksums and wrong kinds.
func TestCloudsArtifactRoundTrip(t *testing.T) {
	ctx := context.Background()
	omegas := []float64{0.56, 4.55}
	s, err := repro.NewSession(repro.PaperCUT(),
		repro.WithTolerance(repro.Tolerance{Sigma: 0.05}, 24),
		repro.WithToleranceSeed(7),
		repro.WithMeasurementNoise(300, 1e4))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Clouds(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.NoiseVar) != len(omegas) {
		t.Fatalf("WithMeasurementNoise produced %d noise variances, want %d", len(cs.NoiseVar), len(omegas))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "clouds.json")
	if err := s.SaveClouds(path, cs); err != nil {
		t.Fatal(err)
	}
	back, err := s.LoadClouds(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cs, back) {
		t.Fatal("cloud model did not round-trip deep-equal")
	}
	if _, err := repro.LoadSignatureClouds(path); err != nil {
		t.Fatalf("sessionless load: %v", err)
	}

	// Built for another board revision → stale.
	other, err := repro.NewSession(repro.Benchmarks()[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadClouds(path); !errors.Is(err, repro.ErrStaleArtifact) {
		t.Fatalf("stale clouds: err = %v, want ErrStaleArtifact", err)
	}

	// A trajectory-map file is not a cloud model.
	m, err := s.Trajectories(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	mapPath := filepath.Join(dir, "map.json")
	if err := s.SaveTrajectories(mapPath, m); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadClouds(mapPath); !errors.Is(err, repro.ErrArtifact) {
		t.Fatalf("wrong kind: err = %v, want ErrArtifact", err)
	}
}

// TestConcurrentProbabilisticDiagnoses hammers one shared cloud model
// and diagnoser from many goroutines, mixing probabilistic scoring with
// classic point diagnoses — the serving layer's exact access pattern.
// The CI race job pins this test; without -race it still verifies
// concurrent results are bit-identical to sequential ones.
func TestConcurrentProbabilisticDiagnoses(t *testing.T) {
	ctx := context.Background()
	omegas := []float64{0.56, 4.55}
	s, err := repro.NewSession(repro.PaperCUT(),
		repro.WithTolerance(repro.Tolerance{Sigma: 0.05}, 24),
		repro.WithToleranceSeed(3),
		repro.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	dg, err := s.Diagnoser(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Clouds(ctx, omegas)
	if err != nil {
		t.Fatal(err)
	}

	// One probe point per cloud, plus sequential references.
	points := make([][]float64, len(cs.Clouds))
	wantProb := make([]string, len(cs.Clouds))
	for i := range cs.Clouds {
		points[i] = cs.Clouds[i].Mean
		res, err := s.DiagnoseProbabilistic(dg, cs, points[i])
		if err != nil {
			t.Fatal(err)
		}
		data, _ := json.Marshal(res)
		wantProb[i] = string(data)
	}
	fault := repro.Fault{Component: "R3", Deviation: 0.25}
	wantPoint, err := dg.DiagnoseFault(s.Dictionary(), fault)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const rounds = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, p := range points {
					res, err := s.DiagnoseProbabilistic(dg, cs, p)
					if err != nil {
						errs[g] = err
						return
					}
					data, _ := json.Marshal(res)
					if string(data) != wantProb[i] {
						errs[g] = errors.New("concurrent probabilistic diagnosis diverged from sequential reference")
						return
					}
				}
				got, err := dg.DiagnoseFault(s.Dictionary(), fault)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(got, wantPoint) {
					errs[g] = errors.New("concurrent point diagnosis diverged from sequential reference")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
