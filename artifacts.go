package repro

import (
	"context"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/dictionary"
)

// DictionaryExport is the serializable snapshot of a dictionary grid:
// golden and per-fault magnitudes over a frequency axis.
type DictionaryExport = dictionary.Export

// Artifact kinds: the envelope tags distinguishing the three persisted
// products so a test-vector file is never misread as a dictionary. The
// canonical strings live in internal/artifact, shared with the serving
// registry's manifest scanner.
const (
	kindDictionary   = artifact.KindDictionary
	kindTestVector   = artifact.KindTestVector
	kindTrajectories = artifact.KindTrajectories
	kindClouds       = artifact.KindClouds

	// KindDiagnosisReport tags the machine-readable report ftdiag -json
	// emits. Exported so downstream consumers can dispatch on it.
	KindDiagnosisReport = "repro.diagnosis-report"
)

// EncodeArtifact wraps a payload in the versioned envelope used by every
// Save method, stamped with the session's netlist checksum. It exists
// for tools (e.g. ftdiag -json) that persist their own payload kinds.
func (s *Session) EncodeArtifact(kind string, payload any) ([]byte, error) {
	return artifact.Encode(kind, s.checksum, payload)
}

// SaveDictionary persists the fault dictionary evaluated on the given
// frequency grid: it precomputes the grid (streaming StageDictionary
// progress, honoring the context per frequency), snapshots it, and
// writes a versioned, checksummed artifact to path. A double-fault
// session (WithDoubleFaults) additionally precomputes and stores one row
// per modeled pair, keyed by the pair's stable ID, so the artifact
// round-trips into the same pair map the session serves live.
//
// The stored responses are produced by the same batched solver that
// builds in-process trajectory maps, so a map rebuilt from the artifact
// at grid frequencies (TrajectoriesFromExport) matches the in-process
// map bit-for-bit.
func (s *Session) SaveDictionary(ctx context.Context, path string, omegas []float64) error {
	if len(omegas) < 2 {
		return fmt.Errorf("repro: %w: dictionary artifact needs at least 2 grid frequencies, got %d", ErrBadConfig, len(omegas))
	}
	if err := s.Precompute(ctx, omegas); err != nil {
		return err
	}
	var sets []FaultSet
	if len(s.pairs) > 0 {
		sets = make([]FaultSet, len(s.pairs))
		for i, p := range s.pairs {
			sets[i] = p
		}
		if err := s.Dictionary().BuildGridSets(ctx, sets, omegas, s.workers); err != nil {
			return err
		}
	}
	snap, err := s.Dictionary().SnapshotSets(omegas, sets)
	if err != nil {
		return err
	}
	data, err := artifact.Encode(kindDictionary, s.checksum, snap)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadDictionary reads a dictionary artifact saved by SaveDictionary,
// rejecting wrong kinds and schema versions (ErrArtifact) and grids
// built from a different netlist than this session's CUT
// (ErrStaleArtifact).
func (s *Session) LoadDictionary(path string) (*DictionaryExport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := artifact.Decode(data, kindDictionary, s.checksum)
	if err != nil {
		return nil, err
	}
	ex, err := dictionary.ParseExport(payload)
	if err != nil {
		return nil, fmt.Errorf("repro: %w: %v", ErrArtifact, err)
	}
	return ex, nil
}

// SaveTestVector persists an optimized test vector (frequencies,
// fitness, GA history) as a versioned, checksummed artifact.
func (s *Session) SaveTestVector(path string, tv *TestVector) error {
	if tv == nil {
		return fmt.Errorf("repro: %w: nil test vector", ErrBadConfig)
	}
	data, err := artifact.Encode(kindTestVector, s.checksum, tv)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadTestVector reads a test-vector artifact saved by SaveTestVector,
// with the same kind/version/checksum verification as LoadDictionary.
func (s *Session) LoadTestVector(path string) (*TestVector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tv TestVector
	if err := artifact.DecodeInto(data, kindTestVector, s.checksum, &tv); err != nil {
		return nil, err
	}
	if len(tv.Omegas) == 0 {
		// Catches payload "null"/"{}" (json.Unmarshal no-ops on null), so
		// corruption surfaces here rather than as a confusing downstream
		// "empty test vector" failure.
		return nil, fmt.Errorf("repro: %w: test vector has no frequencies", ErrArtifact)
	}
	return &tv, nil
}

// SaveTrajectories persists a trajectory map as a versioned, checksummed
// artifact — the deployment product a tester loads to diagnose without a
// simulator.
func (s *Session) SaveTrajectories(path string, m *TrajectoryMap) error {
	if m == nil {
		return fmt.Errorf("repro: %w: nil trajectory map", ErrBadConfig)
	}
	data, err := artifact.Encode(kindTrajectories, s.checksum, m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadTrajectories reads a trajectory-map artifact saved by
// SaveTrajectories, with the same verification as LoadDictionary. The
// loaded map reproduces the saved one exactly: JSON float64 encoding is
// round-trip lossless, so a Diagnoser built on it yields identical
// results.
func (s *Session) LoadTrajectories(path string) (*TrajectoryMap, error) {
	return loadTrajectoryMap(path, s.checksum)
}

// SaveClouds persists a Monte-Carlo signature-cloud set as a versioned,
// checksummed artifact, so the expensive tolerance sweep behind a
// probabilistic diagnosis model is paid once per board revision.
func (s *Session) SaveClouds(path string, cs *SignatureClouds) error {
	if cs == nil {
		return fmt.Errorf("repro: %w: nil signature clouds", ErrBadConfig)
	}
	if err := cs.Validate(); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	data, err := artifact.Encode(kindClouds, s.checksum, cs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadClouds reads a signature-cloud artifact saved by SaveClouds, with
// the same kind/version/checksum verification as LoadDictionary plus a
// structural validation of the cloud set itself. The loaded set scores
// identically to the saved one: JSON float64 encoding is round-trip
// lossless.
func (s *Session) LoadClouds(path string) (*SignatureClouds, error) {
	return loadClouds(path, s.checksum)
}

// LoadSignatureClouds reads a signature-cloud artifact without a session
// — the tester-side path, where no circuit model exists to verify the
// checksum against. The envelope's kind and schema version are still
// enforced.
func LoadSignatureClouds(path string) (*SignatureClouds, error) {
	return loadClouds(path, "")
}

func loadClouds(path, wantChecksum string) (*SignatureClouds, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cs SignatureClouds
	if err := artifact.DecodeInto(data, kindClouds, wantChecksum, &cs); err != nil {
		return nil, err
	}
	if err := cs.Validate(); err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &cs, nil
}

// LoadTrajectoryMap reads a trajectory-map artifact without a session —
// the tester-side path, where no circuit model exists to verify the
// checksum against. The envelope's kind and schema version are still
// enforced.
func LoadTrajectoryMap(path string) (*TrajectoryMap, error) {
	return loadTrajectoryMap(path, "")
}

func loadTrajectoryMap(path, wantChecksum string) (*TrajectoryMap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m TrajectoryMap
	if err := artifact.DecodeInto(data, kindTrajectories, wantChecksum, &m); err != nil {
		return nil, err
	}
	if len(m.Trajectories) == 0 {
		return nil, fmt.Errorf("repro: %w: trajectory map has no trajectories", ErrArtifact)
	}
	return &m, nil
}
