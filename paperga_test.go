package repro

import "testing"

// TestPaperGADeterministicOptimum runs the paper's full GA configuration
// (128 individuals, 15 generations) on the paper CUT twice with the
// fixed default seed: the run must be reproducible bit-for-bit and reach
// the zero-intersection optimum (fitness 1), matching the seed
// implementation's result on this workload.
func TestPaperGADeterministicOptimum(t *testing.T) {
	p, err := NewPipeline(PaperCUT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperOptimizeConfig(p.CUT().Omega0)
	tv1, err := p.Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tv1.Fitness < 1 || tv1.Intersections != 0 {
		t.Fatalf("fitness = %g (I = %d), want the zero-intersection optimum", tv1.Fitness, tv1.Intersections)
	}
	tv2, err := p.Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv1.Omegas) != len(tv2.Omegas) {
		t.Fatalf("vector sizes differ: %v vs %v", tv1.Omegas, tv2.Omegas)
	}
	for i := range tv1.Omegas {
		if tv1.Omegas[i] != tv2.Omegas[i] {
			t.Fatalf("same seed, different vectors: %v vs %v", tv1.Omegas, tv2.Omegas)
		}
	}
}
