// Time domain: the most physical verification loop in the repository.
// Instead of reading |H(jω)| off the phasor solution, this example
// *integrates the circuit in time* with the trapezoidal transient engine
// under a two-tone stimulus, extracts the tone amplitudes from the
// simulated output waveform with Goertzel, and feeds that measured point
// to the trajectory diagnoser — the full path a bench instrument would
// exercise, with no frequency-domain shortcuts.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/geometry"
	"repro/internal/signal"
	"repro/internal/transient"
)

func main() {
	ctx := context.Background()
	session, err := repro.NewSession(repro.PaperCUT())
	if err != nil {
		log.Fatal(err)
	}

	// A known-good hand-picked test vector (band edge + roll-off). Using
	// fixed frequencies keeps the example fast and deterministic.
	omegas := []float64{0.6, 4.5}
	fit, err := session.Fitness(ctx, omegas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test vector: ω = %v rad/s (fitness %.3f)\n", omegas, fit)

	diagnoser, err := session.Diagnoser(ctx, omegas)
	if err != nil {
		log.Fatal(err)
	}

	// Measurement parameters: simulate 8 full periods of the slowest
	// tone after a settling prefix, sampled well above Nyquist.
	const (
		fs       = 64.0 // samples per second
		settle   = 40.0 // seconds discarded while transients die out
		capture  = 84.0 // captured seconds (≈ 8 periods of ω=0.6)
		timestep = 1.0 / fs
	)

	measure := func(circ *repro.Circuit) ([]float64, error) {
		wave, err := transient.Multitone(
			[]float64{1, 1}, omegas, []float64{0, 0})
		if err != nil {
			return nil, err
		}
		res, err := transient.Run(circ, transient.Config{
			Step:     timestep,
			Duration: settle + capture,
			Sources:  map[string]transient.Waveform{"Vin": wave},
		})
		if err != nil {
			return nil, err
		}
		vout, err := res.Voltage("out")
		if err != nil {
			return nil, err
		}
		// Discard the settling prefix, keep the steady-state window.
		start := int(settle * fs)
		window := vout[start:]
		amps := make([]float64, len(omegas))
		for i, w := range omegas {
			amp, _, err := signal.Goertzel(window, fs, w)
			if err != nil {
				return nil, err
			}
			amps[i] = amp
		}
		return amps, nil
	}

	fmt.Println("integrating the golden circuit in time…")
	goldenAmps, err := measure(session.Dictionary().Golden())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden tone amplitudes: %.5f, %.5f\n", goldenAmps[0], goldenAmps[1])

	for _, hidden := range []repro.Fault{
		{Component: "R3", Deviation: 0.25},
		{Component: "C2", Deviation: -0.3},
		{Component: "R1", Deviation: 0.35},
	} {
		board, err := hidden.Apply(session.Dictionary().Golden())
		if err != nil {
			log.Fatal(err)
		}
		amps, err := measure(board)
		if err != nil {
			log.Fatal(err)
		}
		point := make(geometry.VecN, len(amps))
		for i := range amps {
			point[i] = amps[i] - goldenAmps[i]
		}
		res, err := diagnoser.Diagnose(point)
		if err != nil {
			log.Fatal(err)
		}
		best := res.Best()
		status := "OK  "
		if best.Component != hidden.Component {
			status = "MISS"
		}
		fmt.Printf("%s hidden %-9s -> time-domain diagnosis %-4s (est %+5.0f%%, err %.1f%%)\n",
			status, hidden.ID(), best.Component, best.Deviation*100,
			100*math.Abs(best.Deviation-hidden.Deviation))
	}
}
