// Double faults: the classic extension of dictionary-based analog fault
// diagnosis beyond the paper's single-fault assumption. A session opened
// WithDoubleFaults models every component pair of the universe as
// trajectory sweep families, so two simultaneous deviations are
// diagnosed *by name* — component pair plus per-part deviation
// estimates — instead of being rejected as out-of-model. Rejection is
// still there, but it now means "not in the modeled universe" (e.g. a
// triple fault).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	cut := repro.PaperCUT()

	// Model double faults over the paper's ±10–40% grid. The pair
	// universe is 21 component pairs × 8² deviation combos = 1344 sets;
	// WithDoubleFaults(0) models all of them (pass a cap for larger
	// CUTs). Four test frequencies instead of the paper's two: pair
	// families overlap heavily in the plane but separate well in R⁴.
	session, err := repro.NewSession(cut, repro.WithDoubleFaults(0))
	if err != nil {
		log.Fatal(err)
	}
	omegas := []float64{0.2, 0.56, 4.55, 12}
	fmt.Printf("CUT: %s\n", cut.Description)
	fmt.Printf("modeled double faults: %d, test vector: %v rad/s\n\n", len(session.DoubleFaults()), omegas)

	diagnoser, err := session.Diagnoser(ctx, omegas)
	if err != nil {
		log.Fatal(err)
	}

	// Inject hidden faults — two doubles and a single — and diagnose
	// each from its simulated response alone.
	r1c2, err := repro.NewMultiFault(
		repro.Fault{Component: "R1", Deviation: 0.3},
		repro.Fault{Component: "C2", Deviation: -0.2},
	)
	if err != nil {
		log.Fatal(err)
	}
	r3c1, err := repro.NewMultiFault(
		repro.Fault{Component: "R3", Deviation: -0.4},
		repro.Fault{Component: "C1", Deviation: 0.2},
	)
	if err != nil {
		log.Fatal(err)
	}
	hidden := []repro.FaultSet{r1c2, r3c1, repro.Fault{Component: "R2", Deviation: 0.25}}

	// One batched rank-k engine pass diagnoses all injections.
	results, err := session.DiagnoseFaultSets(ctx, diagnoser, hidden)
	if err != nil {
		log.Fatal(err)
	}
	for i, set := range hidden {
		best := results[i].Best()
		status := "OK  "
		if best.Key() != repro.FaultSetKey(set) {
			status = "MISS"
		}
		if best.IsMulti() {
			fmt.Printf("%s hidden %-18s -> double %s, per-part estimates", status, set.ID(), best.Key())
			for j, comp := range best.Components {
				fmt.Printf(" %s%+.0f%%", comp, best.Deviations[j]*100)
			}
			fmt.Println()
		} else {
			fmt.Printf("%s hidden %-18s -> single %s est %+.0f%%\n", status, set.ID(), best.Component, best.Deviation*100)
		}
		// The ambiguity set shows which hypotheses are genuinely close.
		amb := results[i].AmbiguitySet(1.5)
		if len(amb) > 1 {
			fmt.Printf("     ambiguous with:")
			for _, c := range amb[1:] {
				fmt.Printf(" %s", c.Key())
			}
			fmt.Println()
		}
	}

	// Top-1 accuracy over a systematic sample of the modeled universe —
	// the aggregate the acceptance tests pin.
	pairs := session.DoubleFaults()
	var trials []repro.FaultSet
	for i := 0; i < len(pairs); i += 7 {
		trials = append(trials, pairs[i])
	}
	ev, err := session.EvaluateSets(ctx, diagnoser, trials)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\non-grid double-fault evaluation: top-1 %.1f%%, top-2 %.1f%% (%d trials)\n",
		100*ev.Accuracy(), 100*ev.TopTwoAccuracy(), ev.Total)
}
