// Custom netlist: apply the fault-trajectory method to a user-supplied
// circuit instead of a built-in benchmark. The circuit here is a
// two-stage RC-coupled band-pass network described in the SPICE-subset
// dialect; the example diagnoses faults on all five passives.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro"
)

const bandpass = `two-stage rc bandpass
* high-pass section (C1, R1) into a low-pass section (R2, C2) with load
V1 in 0 1
C1 in a 1
R1 a 0 1
R2 a b 0.5
C2 b 0 2
RL b 0 10
.end
`

func main() {
	ctx := context.Background()

	// Parse and inspect the netlist first. A syntax error would be a
	// ParseError carrying the offending line number and card text.
	circ, err := repro.ParseNetlist(bandpass)
	if err != nil {
		var pe *repro.ParseError
		if errors.As(err, &pe) {
			log.Fatalf("netlist line %d: %s (%q)", pe.Line, pe.Msg, pe.Card)
		}
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d elements, %d nodes\n",
		circ.Name(), len(circ.Elements()), circ.NumNodes())

	// Open a session straight from the netlist text. Without
	// WithComponents, every R/C/L element becomes a fault target.
	session, err := repro.NewSessionFromNetlist(bandpass, "V1", "b")
	if err != nil {
		log.Fatal(err)
	}
	targets := session.CUT().Passives
	fmt.Printf("fault targets: %v\n", targets)

	// Optimize a 2-frequency test vector around the passband.
	cfg := repro.PaperOptimizeConfig(1.0)
	cfg.GA.PopSize = 64 // netlist CUTs are small; a reduced GA suffices
	cfg.GA.Generations = 12
	tv, err := session.Optimize(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test vector: ω = %.4g, %.4g rad/s (I = %d)\n",
		tv.Omegas[0], tv.Omegas[1], tv.Intersections)

	// Walk every component through an off-grid fault and report.
	diagnoser, err := session.Diagnoser(ctx, tv.Omegas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %-12s %-10s\n", "injected", "diagnosed", "est. dev")
	for _, comp := range targets {
		for _, dev := range []float64{-0.25, 0.25} {
			f := repro.Fault{Component: comp, Deviation: dev}
			res, err := diagnoser.DiagnoseFault(session.Dictionary(), f)
			if err != nil {
				log.Fatal(err)
			}
			best := res.Best()
			mark := ""
			if best.Component != comp {
				mark = "  <- MISS (ambiguity set: " + ambiguity(res) + ")"
			}
			fmt.Printf("%-10s %-12s %+8.0f%%%s\n", f.ID(), best.Component, best.Deviation*100, mark)
		}
	}
}

func ambiguity(res *repro.DiagnosisResult) string {
	s := ""
	for i, c := range res.AmbiguitySet(1.5) {
		if i > 0 {
			s += ","
		}
		s += c.Component
	}
	return s
}
