// Active faults: the paper's functional fault model (its ref. [7], the
// FFM) covers active devices by treating their macromodel parameters as
// fault targets. This example replaces the CUT's ideal opamp with the
// single-pole macromodel, extends the fault universe with the
// macromodel's elements, and diagnoses both a passive and an active
// fault from the same trajectory map.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	cut, err := repro.PaperCUTMacro()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CUT: %s\n", cut.Description)
	fmt.Printf("fault targets (%d): %v\n", len(cut.Passives), cut.Passives)

	session, err := repro.NewSession(cut)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.PaperOptimizeConfig(cut.Omega0)
	cfg.GA.PopSize = 48
	cfg.GA.Generations = 12
	tv, err := session.Optimize(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GA test vector: ω = %.4g, %.4g rad/s (I = %d over %d trajectories)\n\n",
		tv.Omegas[0], tv.Omegas[1], tv.Intersections, len(cut.Passives))

	diagnoser, err := session.Diagnoser(ctx, tv.Omegas)
	if err != nil {
		log.Fatal(err)
	}
	// Hidden faults: one passive, one on the opamp's dominant pole
	// (GBW fault appears as a pole-capacitor deviation), one on the
	// opamp's gain stage.
	for _, hidden := range []repro.Fault{
		{Component: "C2", Deviation: -0.3},
		{Component: "U1.Cp", Deviation: 0.35}, // GBW down 26% → pole cap up 35%
		{Component: "U1.E", Deviation: -0.25}, // open-loop gain down 25%
	} {
		res, err := diagnoser.DiagnoseFault(session.Dictionary(), hidden)
		if err != nil {
			log.Fatal(err)
		}
		best := res.Best()
		status := "OK  "
		if best.Component != hidden.Component {
			status = "MISS"
		}
		kind := "passive"
		if len(hidden.Component) > 2 && hidden.Component[:2] == "U1" {
			kind = "opamp macromodel"
		}
		fmt.Printf("%s hidden %-12s (%-16s) -> %-7s est %+5.0f%%\n",
			status, hidden.ID(), kind, best.Component, best.Deviation*100)
	}

	// Summary: full hold-out accuracy over all 11 targets.
	ev, err := session.Evaluate(ctx, tv.Omegas, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhold-out accuracy over all %d targets: %.1f%%\n",
		len(cut.Passives), 100*ev.Accuracy())
}
