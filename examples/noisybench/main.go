// Noisy bench: diagnose faults from simulated *measurements* instead of
// analytic responses. The CUT's output is synthesized as a two-tone
// waveform, corrupted with noise and ADC quantization, and the per-tone
// amplitudes recovered with the Goertzel algorithm — the path a real
// production tester would take (experiment E8's machinery).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/analysis"
	"repro/internal/geometry"
	"repro/internal/signal"
)

func main() {
	ctx := context.Background()
	session, err := repro.NewSession(repro.PaperCUT())
	if err != nil {
		log.Fatal(err)
	}

	// Optimize, then snap the frequencies onto coherent-sampling bins of
	// the capture window so multitone leakage vanishes.
	cfg := repro.PaperOptimizeConfig(1.0)
	cfg.GA.PopSize = 48
	cfg.GA.Generations = 10
	tv, err := session.Optimize(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	meas := signal.DefaultMeasureConfig()
	omegas, err := signal.CoherentOmegas(tv.Omegas, meas.SampleRate, meas.Samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test tones (coherent): ω = %.4g, %.4g rad/s\n", omegas[0], omegas[1])

	diagnoser, err := session.Diagnoser(ctx, omegas)
	if err != nil {
		log.Fatal(err)
	}

	// Reference measurement of the golden board.
	goldenAmps, err := measure(session, repro.Fault{}, omegas, meas, nil)
	if err != nil {
		log.Fatal(err)
	}

	// A "bench session": boards with different hidden faults at three
	// noise levels.
	hidden := []repro.Fault{
		{Component: "R2", Deviation: 0.25},
		{Component: "C1", Deviation: -0.35},
		{Component: "C3", Deviation: 0.15},
	}
	for _, snr := range []float64{math.Inf(1), 40, 25} {
		label := "noise-free"
		if !math.IsInf(snr, 1) {
			label = fmt.Sprintf("SNR %.0f dB + 12-bit ADC", snr)
		}
		fmt.Printf("\n--- %s ---\n", label)
		rng := rand.New(rand.NewSource(7))
		for _, f := range hidden {
			cfg := meas
			cfg.SNRdB = snr
			if !math.IsInf(snr, 1) {
				cfg.ADCBits = 12
			}
			amps, err := measure(session, f, omegas, cfg, rng)
			if err != nil {
				log.Fatal(err)
			}
			point := make(geometry.VecN, len(amps))
			for i := range amps {
				point[i] = amps[i] - goldenAmps[i]
			}
			res, err := diagnoser.Diagnose(point)
			if err != nil {
				log.Fatal(err)
			}
			best := res.Best()
			ok := "OK "
			if best.Component != f.Component {
				ok = "MISS"
			}
			fmt.Printf("%s hidden %-9s -> diagnosed %-4s (est %+5.0f%%)\n",
				ok, f.ID(), best.Component, best.Deviation*100)
		}
	}
}

// measure runs the simulated bench path: solve the faulty circuit for
// complex tone gains, synthesize the output waveform, corrupt it, and
// recover per-tone amplitudes.
func measure(p *repro.Session, f repro.Fault, omegas []float64, cfg signal.MeasureConfig, rng *rand.Rand) ([]float64, error) {
	faulty, err := f.Apply(p.Dictionary().Golden())
	if err != nil {
		return nil, err
	}
	ac, err := analysis.NewAC(faulty)
	if err != nil {
		return nil, err
	}
	gains := make([]complex128, len(omegas))
	for i, w := range omegas {
		h, err := ac.Transfer(p.CUT().Source, p.CUT().Output, w)
		if err != nil {
			return nil, err
		}
		gains[i] = h
	}
	return signal.MeasureTones(gains, omegas, cfg, rng)
}
