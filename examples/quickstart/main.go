// Quickstart: the full fault-trajectory workflow on the paper's circuit
// under test in ~40 lines of the v2 Session API — build the fault
// dictionary, optimize a two-frequency test vector with the paper's GA
// (streaming per-generation progress), and diagnose an injected
// off-grid fault. Ctrl-C cancels mid-run via the context.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// 1. The CUT: a normalized 7-passive negative-feedback low-pass
	//    filter (the paper's application example).
	cut := repro.PaperCUT()
	fmt.Printf("CUT: %s\n     %s\n", cut.Circuit.Name(), cut.Description)

	// 2. Fault simulation: open a session over the paper's ±10%…±40%
	//    parametric fault universe (the default), with GA progress
	//    streamed to the terminal.
	session, err := repro.NewSession(cut,
		repro.WithProgress(func(p repro.Progress) {
			if p.Stage == repro.StageOptimize {
				fmt.Printf("  gen %2d/%d  best fitness %.3f\n", p.Completed, p.Total, p.BestFitness)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault universe: %d single faults\n", session.Dictionary().Universe().Size())

	// 3. Test-vector optimization: the paper's GA (roulette wheel,
	//    fitness 1/(1+I)) picks two stimulus frequencies whose fault
	//    trajectories do not intersect.
	cfg := repro.PaperOptimizeConfig(cut.Omega0)
	tv, err := session.Optimize(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GA test vector: ω = %.4g, %.4g rad/s (fitness %.3f, I = %d, %d evaluations)\n",
		tv.Omegas[0], tv.Omegas[1], tv.Fitness, tv.Intersections, tv.Evaluations)

	// 4. Diagnosis: inject an unknown fault that is NOT in the
	//    dictionary (+25% sits between the ±20% and ±30% grid points)
	//    and locate it by perpendicular projection onto the trajectories.
	diagnoser, err := session.Diagnoser(ctx, tv.Omegas)
	if err != nil {
		log.Fatal(err)
	}
	unknown := repro.Fault{Component: "C2", Deviation: 0.25}
	res, err := diagnoser.DiagnoseFault(session.Dictionary(), unknown)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected unknown fault: %s\n%s", unknown.ID(), res)
	best := res.Best()
	fmt.Printf("=> diagnosed %s with estimated deviation %+.0f%%\n", best.Component, best.Deviation*100)

	// 5. Quantify: accuracy over hold-out faults on every component.
	ev, err := session.Evaluate(ctx, tv.Omegas, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhold-out accuracy over %d trials: %.1f%% (top-2: %.1f%%)\n",
		ev.Total, 100*ev.Accuracy(), 100*ev.TopTwoAccuracy())
}
