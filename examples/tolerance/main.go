// Tolerance-aware probabilistic diagnosis: instead of one signature
// point per fault, a session opened WithTolerance builds a Monte-Carlo
// *signature cloud* per fault set — the distribution of signatures when
// every fault-free component drifts within its manufacturing tolerance.
// Diagnosis then ranks hypotheses by Gaussian likelihood against the
// clouds, reports a posterior confidence in the winner, and names the
// precomputed ambiguity group: the fault sets whose clouds overlap so
// much under tolerance that no measurement can reliably tell them
// apart. The classic point diagnosis stays available side by side.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	ctx := context.Background()
	cut := repro.PaperCUT()

	// 3% component tolerance, 200 Monte-Carlo samples per fault set.
	// The seed pins the draws, so this run is fully reproducible at any
	// worker count.
	session, err := repro.NewSession(cut,
		repro.WithTolerance(repro.Tolerance{Sigma: 0.03}, 200),
		repro.WithToleranceSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	omegas := []float64{0.2, 0.56, 4.55, 12}
	fmt.Printf("CUT: %s\n", cut.Description)
	fmt.Printf("tolerance: %.0f%%, %d MC samples, test vector %v rad/s\n\n",
		3.0, 200, omegas)

	diagnoser, err := session.Diagnoser(ctx, omegas)
	if err != nil {
		log.Fatal(err)
	}

	// Build the cloud model: one batched rank-k engine pass per MC
	// sample, every fault set's mean and variance per test frequency,
	// plus the ambiguity groups from pairwise Bhattacharyya overlap.
	clouds, err := session.Clouds(ctx, omegas)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud model: %d signature clouds, %d ambiguity groups\n",
		len(clouds.Clouds), len(clouds.Groups))
	for i, g := range clouds.Groups {
		if i >= 3 {
			fmt.Printf("  ... and %d more groups\n", len(clouds.Groups)-3)
			break
		}
		fmt.Printf("  group %d: %s\n", i, strings.Join(g, ", "))
	}
	fmt.Println()

	// Diagnose off-grid injections. The classic rule answers with the
	// nearest trajectory; the probabilistic rule answers with a ranked
	// posterior over hypotheses and says how sure it is.
	injected := []repro.Fault{
		{Component: "R3", Deviation: 0.25},
		{Component: "C2", Deviation: -0.18},
		{Component: "R1", Deviation: 0.33},
	}
	results, err := session.DiagnoseFaults(ctx, diagnoser, injected)
	if err != nil {
		log.Fatal(err)
	}
	for i, inj := range injected {
		prob, err := session.DiagnoseProbabilistic(diagnoser, clouds, results[i].Point)
		if err != nil {
			log.Fatal(err)
		}
		best := prob.Best()
		status := "OK  "
		if best.Key != inj.Component {
			// The fault may still be resolved "up to ambiguity": the
			// true component hides inside the winner's group of
			// tolerance-indistinguishable hypotheses.
			status = "MISS"
			for _, id := range prob.AmbiguityGroup {
				if strings.HasPrefix(id, inj.Component+"@") {
					status = "AMB "
					break
				}
			}
		}
		fmt.Printf("%s hidden %s@%+.0f%%  -> classic %s, probabilistic %s (confidence %.1f%%)\n",
			status, inj.Component, inj.Deviation*100,
			results[i].Best().Component, best.Key, 100*prob.Confidence)
		for j, c := range prob.Candidates {
			if j >= 3 {
				break
			}
			fmt.Printf("       #%d %-8s p=%.3f  most likely %s\n", j+1, c.Key, c.Probability, c.ID)
		}
		if g := prob.AmbiguityGroup; len(g) > 0 {
			shown := g
			if len(shown) > 6 {
				shown = shown[:6]
			}
			fmt.Printf("       ambiguity group (%d members): %s, ...\n",
				len(g), strings.Join(shown, ", "))
		}
	}
}
