// Command serving is a minimal ftserve client: it checks the server's
// health, lists the available circuits, runs one diagnosis, and then a
// coalesced batch — the request shapes a board-test station would send.
//
// Start a server first:
//
//	go run ./cmd/ftserve -addr :8080 -cuts nf-lowpass-7 -freqs 0.56,4.55
//
// then:
//
//	go run ./examples/serving -url http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "ftserve base URL")
	cut := flag.String("cut", "nf-lowpass-7", "circuit under test")
	flag.Parse()

	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	getJSON(*url+"/healthz", &health)
	fmt.Printf("server %s: %s\n", health.Version, health.Status)

	var cuts struct {
		Cuts []struct {
			Name   string `json:"name"`
			Loaded bool   `json:"loaded"`
		} `json:"cuts"`
	}
	getJSON(*url+"/v1/cuts", &cuts)
	fmt.Printf("%d circuits served\n", len(cuts.Cuts))

	// One parametric fault: "R3 drifted +25% — which component is bad?"
	var single struct {
		BatchSize int `json:"batch_size"`
		Result    struct {
			Candidates []struct {
				Component string  `json:"component"`
				Deviation float64 `json:"deviation"`
				Distance  float64 `json:"distance"`
			} `json:"candidates"`
		} `json:"result"`
	}
	postJSON(*url+"/v1/diagnose", map[string]any{
		"cut":   *cut,
		"fault": map[string]any{"component": "R3", "deviation": 0.25},
	}, &single)
	best := single.Result.Candidates[0]
	fmt.Printf("R3@+25%% diagnosed as %s (est. %+.0f%%), served in a batch of %d\n",
		best.Component, best.Deviation*100, single.BatchSize)

	// A batch: several suspect boards diagnosed in one call. The server
	// coalesces these into shared engine passes.
	var batch struct {
		Results []struct {
			BatchSize int `json:"batch_size"`
			Result    struct {
				Candidates []struct {
					Component string `json:"component"`
				} `json:"candidates"`
			} `json:"result"`
		} `json:"results"`
	}
	postJSON(*url+"/v1/diagnose/batch", map[string]any{
		"cut": *cut,
		"requests": []map[string]any{
			{"fault": map[string]any{"component": "R1", "deviation": -0.3}},
			{"fault": map[string]any{"component": "C2", "deviation": 0.2}},
			{"fault": map[string]any{"component": "R4", "deviation": 0.35}},
		},
	}, &batch)
	for i, r := range batch.Results {
		fmt.Printf("batch[%d]: %s (coalesced into a batch of %d)\n",
			i, r.Result.Candidates[0].Component, r.BatchSize)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	decode(url, resp, out)
}

func postJSON(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	decode(url, resp, out)
}

func decode(url string, resp *http.Response, out any) {
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("%s: decode: %v", url, err)
	}
}
