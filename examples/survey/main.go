// Survey: run the fault-trajectory method across the whole benchmark
// circuit library and report which topologies diagnose cleanly and which
// carry structural ambiguities (gain-ratio pairs, symmetric ladders) —
// the question a test engineer asks before adopting the method.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	type row struct {
		name     string
		passives int
		i        int
		acc      float64
		worst    string
	}
	ctx := context.Background()
	var rows []row
	for _, cut := range repro.Benchmarks() {
		session, err := repro.NewSession(cut)
		if err != nil {
			log.Fatal(err)
		}
		cfg := repro.PaperOptimizeConfig(cut.Omega0)
		cfg.GA.PopSize = 48
		cfg.GA.Generations = 12
		tv, err := session.Optimize(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := session.Evaluate(ctx, tv.Omegas, nil)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			name:     cut.Circuit.Name(),
			passives: len(cut.Passives),
			i:        tv.Intersections,
			acc:      ev.Accuracy(),
			worst:    worstComponent(ev),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].acc > rows[j].acc })

	fmt.Printf("%-18s %9s %4s %9s %s\n", "circuit", "passives", "I", "accuracy", "hardest component")
	for _, r := range rows {
		fmt.Printf("%-18s %9d %4d %8.1f%% %s\n", r.name, r.passives, r.i, 100*r.acc, r.worst)
	}
	fmt.Println("\nreading: circuits whose components all shape H(s) independently diagnose")
	fmt.Println("cleanly; gain-ratio pairs (tow-thomas R5/R6) and repeated ladder sections")
	fmt.Println("are structurally confusable for ANY test vector — the paper's premise only")
	fmt.Println("holds when each component has an independent signature.")
}

// worstComponent names the component with the lowest per-component
// accuracy in the evaluation.
func worstComponent(ev *repro.Evaluation) string {
	worstName, worstAcc := "-", 2.0
	names := make([]string, 0, len(ev.PerComponent))
	for name := range ev.PerComponent {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic tie-breaking
	for _, name := range names {
		cs := ev.PerComponent[name]
		acc := float64(cs.Correct) / float64(cs.Total)
		if acc < worstAcc {
			worstName, worstAcc = name, acc
		}
	}
	if worstAcc >= 1 {
		return "(none — all diagnosed)"
	}
	return fmt.Sprintf("%s (%.0f%%)", worstName, 100*worstAcc)
}
