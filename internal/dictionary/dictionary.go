// Package dictionary implements the paper's fault-simulation (FS) step:
// from the golden circuit it derives the faulty AC magnitude responses of
// every fault in the universe and serves them on demand, memoized by
// (fault, frequency).
//
// Responses are computed by the batched solver in internal/engine: the
// golden circuit is compiled once into a stamp template, a fault is a
// rank-1 coefficient patch (a k-component multiple fault a rank-k one),
// and whole (fault × frequency) grids are filled with one golden
// factorization per frequency. The GA probes
// responses at arbitrary candidate frequencies, so the dictionary
// evaluates lazily instead of precomputing a fixed grid; a fixed grid can
// still be precomputed with BuildGrid for reporting (Figure 1) or export.
package dictionary

import (
	"context"
	"encoding/json"
	"fmt"
	"math/cmplx"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sliceutil"
)

// MemoLimit bounds the response memo: once this many (fault, ω) pairs
// are cached, further responses are computed but not stored. Grid builds
// (tens of faults × hundreds of frequencies) fit comfortably; what the
// bound prevents is a long-running probe workload growing the memo
// without limit. The GA fitness path bypasses the memo entirely (see
// SignaturesInto), so it neither grows it nor contends on its mutex.
const MemoLimit = 1 << 16

// Dictionary serves golden and faulty magnitude responses.
type Dictionary struct {
	golden   *circuit.Circuit
	source   string
	output   string
	universe *fault.Universe
	faults   []fault.Fault // universe.Faults(), computed once; treated immutable
	eng      *engine.Engine

	mu        sync.Mutex
	analyzers map[string]*analysis.AC        // fault ID → analyzer, scalar reference path only
	memo      map[string]map[float64]float64 // fault ID → ω → |H|
	memoSize  int                            // total (fault, ω) pairs stored
}

// New builds a dictionary for the golden circuit observed at output and
// driven by the named source, over the given fault universe.
func New(golden *circuit.Circuit, source, output string, u *fault.Universe) (*Dictionary, error) {
	if u == nil {
		return nil, fmt.Errorf("dictionary: nil universe")
	}
	if err := u.Validate(golden); err != nil {
		return nil, err
	}
	d := &Dictionary{
		golden:    golden.Clone(),
		source:    source,
		output:    output,
		universe:  u,
		faults:    u.Faults(),
		analyzers: make(map[string]*analysis.AC),
		memo:      make(map[string]map[float64]float64),
	}
	// Compiling the template fails fast on unbuildable golden circuits and
	// unusable measurements (missing source, zero amplitude).
	eng, err := engine.New(d.golden, source, output)
	if err != nil {
		return nil, fmt.Errorf("dictionary: %w", err)
	}
	d.eng = eng
	return d, nil
}

// Engine exposes the batched solver the dictionary computes with.
func (d *Dictionary) Engine() *engine.Engine { return d.eng }

// Universe returns the dictionary's fault universe.
func (d *Dictionary) Universe() *fault.Universe { return d.universe }

// Source returns the driving source name.
func (d *Dictionary) Source() string { return d.source }

// Output returns the observed node name.
func (d *Dictionary) Output() string { return d.output }

// Golden returns a clone of the golden circuit.
func (d *Dictionary) Golden() *circuit.Circuit { return d.golden.Clone() }

// analyzer returns (building if needed) the AC analyzer for a fault —
// the classic clone+assemble path kept as the scalar reference.
func (d *Dictionary) analyzer(f fault.Fault) (*analysis.AC, error) {
	id := f.ID()
	d.mu.Lock()
	ac, ok := d.analyzers[id]
	d.mu.Unlock()
	if ok {
		return ac, nil
	}
	// Build outside the lock: cloning and assembling may be slow.
	faulty, err := f.Apply(d.golden)
	if err != nil {
		return nil, err
	}
	ac, err = analysis.NewAC(faulty)
	if err != nil {
		return nil, fmt.Errorf("dictionary: fault %s: %w", id, err)
	}
	d.mu.Lock()
	// Another goroutine may have raced us; keep the first.
	if prev, ok := d.analyzers[id]; ok {
		ac = prev
	} else {
		d.analyzers[id] = ac
	}
	d.mu.Unlock()
	return ac, nil
}

// ScalarResponse computes |H(jω)| the pre-engine way: clone the golden
// circuit, inject the fault, assemble and factor a fresh MNA system.
// It is unmemoized (only the assembled analyzer is cached per fault) and
// exists as the reference implementation the engine is verified against
// and benchmarked in BenchmarkBatchVsScalar.
func (d *Dictionary) ScalarResponse(f fault.Fault, omega float64) (float64, error) {
	ac, err := d.analyzer(f)
	if err != nil {
		return 0, err
	}
	h, err := ac.Transfer(d.source, d.output, omega)
	if err != nil {
		return 0, fmt.Errorf("dictionary: fault %s at ω=%g: %w", f.ID(), omega, err)
	}
	return cmplx.Abs(h), nil
}

// Response returns |H(jω)| for the given fault (use the zero Fault for
// the golden circuit). Results are memoized up to MemoLimit pairs.
//
// Lazy queries solve the faulted system exactly (full factorization of
// the patched template); BuildGrid fills the same memo through the
// batched Sherman–Morrison path. The two agree to within 1e-9 relative
// error (enforced by the engine's fallback guards and tests), so a memo
// entry may differ in its last few ulps depending on which path computed
// it first — callers comparing exports bit-for-bit should produce them
// through the same call sequence.
func (d *Dictionary) Response(f fault.Fault, omega float64) (float64, error) {
	return d.ResponseSet(f, omega)
}

// ResponseSet is Response over an arbitrary fault set — golden, single,
// or multiple fault. Memo keys are the set's stable ID, so single-fault
// entries are shared with Response and a multi-fault grid coexists with
// the single-fault one in the same memo.
func (d *Dictionary) ResponseSet(set fault.Set, omega float64) (float64, error) {
	id := set.ID()
	d.mu.Lock()
	if byW, ok := d.memo[id]; ok {
		if v, ok := byW[omega]; ok {
			d.mu.Unlock()
			return v, nil
		}
	}
	d.mu.Unlock()

	mag, err := d.eng.ResponseSet(set, omega)
	if err != nil {
		return 0, fmt.Errorf("dictionary: %w", err)
	}

	d.mu.Lock()
	d.memoize(id, omega, mag)
	d.mu.Unlock()
	return mag, nil
}

// memoize stores one response; the caller holds d.mu. Once the memo
// holds MemoLimit pairs, new entries are dropped (existing entries keep
// serving lookups), so an unbounded stream of distinct probe frequencies
// cannot grow the memo without limit.
func (d *Dictionary) memoize(id string, omega, mag float64) {
	byW, ok := d.memo[id]
	if !ok {
		if d.memoSize >= MemoLimit {
			return
		}
		byW = make(map[float64]float64)
		d.memo[id] = byW
	}
	if _, ok := byW[omega]; !ok {
		if d.memoSize >= MemoLimit {
			return
		}
		d.memoSize++
	}
	byW[omega] = mag
}

// GoldenResponse returns the nominal |H(jω)|.
func (d *Dictionary) GoldenResponse(omega float64) (float64, error) {
	return d.Response(fault.Fault{}, omega)
}

// Signature maps a fault to its point in the test-vector space: the
// vector of |H_fault(ωi)| − |H_golden(ωi)| over the test frequencies.
// Per the paper's simplification, the golden response sits at the origin.
func (d *Dictionary) Signature(f fault.Fault, omegas []float64) ([]float64, error) {
	return d.SignatureSet(f, omegas)
}

// SignatureSet is Signature over an arbitrary fault set (memoized, like
// ResponseSet).
func (d *Dictionary) SignatureSet(set fault.Set, omegas []float64) ([]float64, error) {
	if len(omegas) == 0 {
		return nil, fmt.Errorf("dictionary: empty test vector")
	}
	out := make([]float64, len(omegas))
	for i, w := range omegas {
		fm, err := d.ResponseSet(set, w)
		if err != nil {
			return nil, err
		}
		gm, err := d.GoldenResponse(w)
		if err != nil {
			return nil, err
		}
		out[i] = fm - gm
	}
	return out, nil
}

// CircuitSignature computes the signature point of an arbitrary circuit
// variant — a multiple fault, a tolerance-perturbed board, anything with
// the same source and output — against this dictionary's golden
// response. Unlike Signature it is not memoized (variants are one-off).
func (d *Dictionary) CircuitSignature(c *circuit.Circuit, omegas []float64) ([]float64, error) {
	if len(omegas) == 0 {
		return nil, fmt.Errorf("dictionary: empty test vector")
	}
	ac, err := analysis.NewAC(c)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(omegas))
	for i, w := range omegas {
		h, err := ac.Transfer(d.source, d.output, w)
		if err != nil {
			return nil, err
		}
		gm, err := d.GoldenResponse(w)
		if err != nil {
			return nil, err
		}
		out[i] = cmplx.Abs(h) - gm
	}
	return out, nil
}

// BuildGrid precomputes every fault's response (plus the golden one) on a
// frequency grid via the batched engine, fanning the frequencies out
// across workers goroutines (0 → one per CPU). Results land in the memo,
// so subsequent Response/Signature/Snapshot calls on grid points are pure
// lookups. It returns the first error encountered; a canceled context
// stops within one in-flight frequency per worker (the error wraps
// rerr.ErrCanceled) and leaves the memo untouched.
func (d *Dictionary) BuildGrid(ctx context.Context, omegas []float64, workers int) error {
	return d.BuildGridProgress(ctx, omegas, workers, nil)
}

// BuildGridProgress is BuildGrid with a per-frequency progress hook (see
// engine.BatchResponsesProgress for the hook's concurrency contract).
func (d *Dictionary) BuildGridProgress(ctx context.Context, omegas []float64, workers int, progress func(done, total int)) error {
	faults := d.faults
	batch, err := d.eng.BatchResponsesProgress(ctx, faults, omegas, workers, progress)
	if err != nil {
		return fmt.Errorf("dictionary: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for j, w := range omegas {
		d.memoize("golden", w, batch.Golden[j])
	}
	for i, f := range faults {
		id := f.ID()
		for j, w := range omegas {
			d.memoize(id, w, batch.Mags[i][j])
		}
	}
	return nil
}

// BuildGridSets precomputes the responses of arbitrary fault sets (plus
// the golden row) on a frequency grid via the batched rank-k engine and
// lands them in the memo under each set's ID — the multi-fault analogue
// of BuildGrid, used to extend a dictionary grid with a double-fault
// universe before Snapshot. Cancellation semantics match BuildGrid.
func (d *Dictionary) BuildGridSets(ctx context.Context, sets []fault.Set, omegas []float64, workers int) error {
	batch, err := d.eng.BatchResponsesSets(ctx, sets, omegas, workers)
	if err != nil {
		return fmt.Errorf("dictionary: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for j, w := range omegas {
		d.memoize("golden", w, batch.Golden[j])
	}
	for i, set := range sets {
		id := set.ID()
		for j, w := range omegas {
			d.memoize(id, w, batch.Mags[i][j])
		}
	}
	return nil
}

// SignatureScratch owns the reusable storage behind the memo-bypassing
// SignaturesInto/UniverseSignaturesInto paths: the engine batch and the
// signature rows (headers resliced over one flat backing array). The zero
// value is ready to use. A scratch is single-use at a time — callers that
// evaluate concurrently hold one scratch per goroutine.
type SignatureScratch struct {
	batch engine.Batch
	rows  [][]float64
	flat  []float64
}

// Signatures computes the signature points of an arbitrary fault list at
// the given test frequencies in one batched solve — the bulk analogue of
// Signature. Row i is |H_fault[i](ω)| − |H_golden(ω)| over omegas.
// Unlike Signature it does not touch the memo: bulk probe grids (GA
// candidates, hold-out trials) are one-off and would only bloat it.
func (d *Dictionary) Signatures(ctx context.Context, faults []fault.Fault, omegas []float64) ([][]float64, error) {
	var s SignatureScratch
	rows, err := d.SignaturesInto(ctx, faults, omegas, &s)
	if err != nil {
		return nil, err
	}
	return rows, nil // the scratch is fresh, so the rows are not shared
}

// SignaturesInto is Signatures writing into caller-owned scratch: the
// returned rows alias the scratch and stay valid until its next use, so a
// scratch held across calls makes the steady state allocation-free. This
// is the GA fitness path, which probes one-shot frequency vectors per
// candidate and must neither grow the response memo nor contend on its
// mutex — the memo is bypassed entirely.
//
// The solve runs inline on the calling goroutine: test vectors are a
// handful of frequencies, and the heavy caller — the GA's fitness
// evaluation — is already parallel at the population level, so a nested
// per-call worker pool would only oversubscribe the CPUs. The context is
// checked before each frequency; cancellation errors wrap
// rerr.ErrCanceled.
func (d *Dictionary) SignaturesInto(ctx context.Context, faults []fault.Fault, omegas []float64, s *SignatureScratch) ([][]float64, error) {
	if len(omegas) == 0 {
		return nil, fmt.Errorf("dictionary: empty test vector")
	}
	if err := d.eng.BatchResponsesInto(ctx, faults, omegas, 1, &s.batch); err != nil {
		return nil, fmt.Errorf("dictionary: %w", err)
	}
	return s.finishRows(len(faults), omegas), nil
}

// finishRows turns the scratch's filled batch into signature rows
// (mag − golden), reusing the scratch's flat backing.
func (s *SignatureScratch) finishRows(n int, omegas []float64) [][]float64 {
	nw := len(omegas)
	s.flat = sliceutil.Grow(s.flat, n*nw)
	s.rows = sliceutil.Grow(s.rows, n)
	golden := s.batch.Golden
	for i := range s.rows {
		row := s.flat[i*nw : (i+1)*nw : (i+1)*nw]
		mags := s.batch.Mags[i]
		for j := range row {
			row[j] = mags[j] - golden[j]
		}
		s.rows[i] = row
	}
	return s.rows
}

// UniverseSignatures computes the signature of every fault in the
// universe at the given test frequencies, row-aligned with
// Universe().Faults() — the one-call path trajectory building rides on.
func (d *Dictionary) UniverseSignatures(ctx context.Context, omegas []float64) ([][]float64, error) {
	return d.Signatures(ctx, d.faults, omegas)
}

// UniverseSignaturesInto is UniverseSignatures writing into caller-owned
// scratch (see SignaturesInto for the aliasing and memo contract) — the
// reuse path trajectory.Builder rides on.
func (d *Dictionary) UniverseSignaturesInto(ctx context.Context, omegas []float64, s *SignatureScratch) ([][]float64, error) {
	return d.SignaturesInto(ctx, d.faults, omegas, s)
}

// SignaturesSets computes the signature points of arbitrary fault sets —
// golden, single, or multiple faults, freely mixed — in one batched
// rank-k solve. Row i is |H_sets[i](ω)| − |H_golden(ω)| over omegas.
// Like Signatures it bypasses the memo.
func (d *Dictionary) SignaturesSets(ctx context.Context, sets []fault.Set, omegas []float64) ([][]float64, error) {
	var s SignatureScratch
	rows, err := d.SignaturesSetsInto(ctx, sets, omegas, &s)
	if err != nil {
		return nil, err
	}
	return rows, nil // the scratch is fresh, so the rows are not shared
}

// SignaturesSetsInto is SignaturesSets writing into caller-owned scratch
// (see SignaturesInto for the aliasing, memo, and inline-solve
// contract).
func (d *Dictionary) SignaturesSetsInto(ctx context.Context, sets []fault.Set, omegas []float64, s *SignatureScratch) ([][]float64, error) {
	if len(omegas) == 0 {
		return nil, fmt.Errorf("dictionary: empty test vector")
	}
	if err := d.eng.BatchResponsesSetsInto(ctx, sets, omegas, 1, &s.batch); err != nil {
		return nil, fmt.Errorf("dictionary: %w", err)
	}
	return s.finishRows(len(sets), omegas), nil
}

// Entry is one exported dictionary row.
type Entry struct {
	// ID is the fault identifier ("golden" for the nominal row).
	ID string `json:"id"`
	// Mags holds |H| per grid frequency, index-aligned with the export's
	// Omegas.
	Mags []float64 `json:"mags"`
}

// Export is the JSON-serializable snapshot of a dictionary grid.
type Export struct {
	Circuit string    `json:"circuit"`
	Source  string    `json:"source"`
	Output  string    `json:"output"`
	Omegas  []float64 `json:"omegas"`
	Entries []Entry   `json:"entries"`
}

// Snapshot evaluates (memoized) the grid and returns an Export with the
// golden row first and fault rows in universe order.
func (d *Dictionary) Snapshot(omegas []float64) (*Export, error) {
	return d.SnapshotSets(omegas, nil)
}

// SnapshotSets is Snapshot with extra fault sets appended after the
// single-fault universe rows — the export path for multi-fault grids.
// Set rows are keyed by their stable IDs (e.g. "C1@-20%+R3@+30%"),
// which ParseSetID inverts, so an exported multi-fault grid round-trips
// through ParseExport and trajectory.BuildFromExport.
func (d *Dictionary) SnapshotSets(omegas []float64, sets []fault.Set) (*Export, error) {
	ex := &Export{
		Circuit: d.golden.Name(),
		Source:  d.source,
		Output:  d.output,
		Omegas:  append([]float64(nil), omegas...),
	}
	row := func(set fault.Set) (Entry, error) {
		mags := make([]float64, len(omegas))
		for i, w := range omegas {
			m, err := d.ResponseSet(set, w)
			if err != nil {
				return Entry{}, err
			}
			mags[i] = m
		}
		return Entry{ID: set.ID(), Mags: mags}, nil
	}
	g, err := row(fault.Fault{})
	if err != nil {
		return nil, err
	}
	ex.Entries = append(ex.Entries, g)
	for _, f := range d.universe.Faults() {
		e, err := row(f)
		if err != nil {
			return nil, err
		}
		ex.Entries = append(ex.Entries, e)
	}
	for _, set := range sets {
		e, err := row(set)
		if err != nil {
			return nil, err
		}
		ex.Entries = append(ex.Entries, e)
	}
	return ex, nil
}

// MarshalIndent renders the export as indented JSON.
func (e *Export) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// ParseExport loads a snapshot produced by MarshalIndent.
func ParseExport(data []byte) (*Export, error) {
	var e Export
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("dictionary: bad export: %w", err)
	}
	if len(e.Entries) == 0 {
		return nil, fmt.Errorf("dictionary: export has no entries")
	}
	for _, ent := range e.Entries {
		if len(ent.Mags) != len(e.Omegas) {
			return nil, fmt.Errorf("dictionary: entry %s has %d mags for %d omegas", ent.ID, len(ent.Mags), len(e.Omegas))
		}
	}
	return &e, nil
}

// CachedCount reports how many (fault, ω) pairs are memoized — useful in
// tests and benchmarks to verify laziness.
func (d *Dictionary) CachedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memoSize
}

// CachedFaultIDs lists the fault IDs with at least one memoized response,
// sorted.
func (d *Dictionary) CachedFaultIDs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.memo))
	for id := range d.memo {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
