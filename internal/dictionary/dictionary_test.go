package dictionary

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// circuitNewDanglingResistor returns a resistor touching a node nothing
// else references, which fails circuit validation on assembly.
func circuitNewDanglingResistor() circuit.Element {
	return circuit.NewResistor("Rdangle", "nowhere", "0", 1)
}

func paperDict(t *testing.T) *Dictionary {
	t.Helper()
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidates(t *testing.T) {
	cut := circuits.NFLowpass7()
	if _, err := New(cut.Circuit, cut.Source, cut.Output, nil); err == nil {
		t.Fatal("nil universe accepted")
	}
	u, _ := fault.PaperUniverse([]string{"R99"})
	if _, err := New(cut.Circuit, cut.Source, cut.Output, u); err == nil {
		t.Fatal("bad universe accepted")
	}
}

func TestGoldenResponseMatchesDirectAnalysis(t *testing.T) {
	d := paperDict(t)
	// DC gain of the CUT is 0.5 (|−R4/(R1+R2)|).
	m, err := d.GoldenResponse(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.5) > 1e-3 {
		t.Fatalf("golden |H(0)| = %g, want 0.5", m)
	}
}

func TestResponseMovesWithFault(t *testing.T) {
	d := paperDict(t)
	f := fault.Fault{Component: "C2", Deviation: 0.4}
	g, err := d.GoldenResponse(1)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := d.Response(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fm-g) < 1e-4 {
		t.Fatalf("C2+40%% did not move |H(1)|: %g vs %g", fm, g)
	}
}

func TestMemoization(t *testing.T) {
	d := paperDict(t)
	if d.CachedCount() != 0 {
		t.Fatalf("fresh dictionary has %d cached", d.CachedCount())
	}
	if _, err := d.GoldenResponse(1); err != nil {
		t.Fatal(err)
	}
	if d.CachedCount() != 1 {
		t.Fatalf("cached = %d, want 1", d.CachedCount())
	}
	// Re-query: no growth.
	if _, err := d.GoldenResponse(1); err != nil {
		t.Fatal(err)
	}
	if d.CachedCount() != 1 {
		t.Fatalf("cache grew on repeat query: %d", d.CachedCount())
	}
	ids := d.CachedFaultIDs()
	if len(ids) != 1 || ids[0] != "golden" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestResponseMatchesScalarReference(t *testing.T) {
	// The engine-backed Response must agree with the pre-engine
	// clone+assemble+solve path on the whole universe.
	d := paperDict(t)
	omegas := numeric.Logspace(0.05, 20, 5)
	faults := append([]fault.Fault{{}}, d.Universe().Faults()...)
	for _, f := range faults {
		for _, w := range omegas {
			fast, err := d.Response(f, w)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := d.ScalarResponse(f, w)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(fast - ref); diff > 1e-9*math.Max(1, ref) {
				t.Fatalf("fault %s ω=%g: engine %.15g vs scalar %.15g", f.ID(), w, fast, ref)
			}
		}
	}
}

func TestUniverseSignaturesAlignment(t *testing.T) {
	// Batched signatures are row-aligned with Universe().Faults() and
	// agree with the per-point Signature path.
	d := paperDict(t)
	omegas := []float64{0.5, 2}
	sigs, err := d.UniverseSignatures(nil, omegas)
	if err != nil {
		t.Fatal(err)
	}
	faults := d.Universe().Faults()
	if len(sigs) != len(faults) {
		t.Fatalf("rows = %d, want %d", len(sigs), len(faults))
	}
	for i, f := range faults {
		want, err := d.Signature(f, omegas)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if diff := math.Abs(sigs[i][j] - want[j]); diff > 1e-9 {
				t.Fatalf("fault %s: batch %v vs scalar %v", f.ID(), sigs[i], want)
			}
		}
	}
	if _, err := d.Signatures(nil, faults, nil); err == nil {
		t.Fatal("empty test vector accepted")
	}
}

func TestSignatureGoldenAtOrigin(t *testing.T) {
	d := paperDict(t)
	sig, err := d.Signature(fault.Fault{}, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sig {
		if v != 0 {
			t.Fatalf("golden signature = %v, want zeros", sig)
		}
	}
	if _, err := d.Signature(fault.Fault{}, nil); err == nil {
		t.Fatal("empty test vector accepted")
	}
}

func TestSignatureAntisymmetricDirections(t *testing.T) {
	// Opposite deviations of the same component must push the signature
	// to opposite sides of the origin (the paper's monotonicity premise).
	// R4 sets the DC gain (|H(0)| = R4/(R1+R2)), so at a deep in-band
	// frequency its ± deviations move |H| in opposite directions.
	d := paperDict(t)
	up, err := d.Signature(fault.Fault{Component: "R4", Deviation: 0.4}, []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	dn, err := d.Signature(fault.Fault{Component: "R4", Deviation: -0.4}, []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if up[0] <= 0 || dn[0] >= 0 {
		t.Fatalf("R4 ±40%% signatures not antisymmetric: %g and %g", up[0], dn[0])
	}
}

func TestBuildGridAndSnapshot(t *testing.T) {
	d := paperDict(t)
	grid := numeric.Logspace(0.1, 10, 5)
	if err := d.BuildGrid(nil, grid, 3); err != nil {
		t.Fatal(err)
	}
	// Universe 7 components × 8 deviations + golden = 57 rows × 5 freqs.
	want := (7*8 + 1) * 5
	if got := d.CachedCount(); got != want {
		t.Fatalf("cached = %d, want %d", got, want)
	}
	snap, err := d.Snapshot(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 57 {
		t.Fatalf("entries = %d, want 57", len(snap.Entries))
	}
	if snap.Entries[0].ID != "golden" {
		t.Fatalf("first entry = %q", snap.Entries[0].ID)
	}
	data, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseExport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(snap.Entries) || back.Circuit != snap.Circuit {
		t.Fatal("export round trip mismatch")
	}
}

func TestParseExportRejectsBad(t *testing.T) {
	if _, err := ParseExport([]byte("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := ParseExport([]byte(`{"omegas":[1],"entries":[]}`)); err == nil {
		t.Fatal("empty entries accepted")
	}
	if _, err := ParseExport([]byte(`{"omegas":[1,2],"entries":[{"id":"golden","mags":[1]}]}`)); err == nil {
		t.Fatal("misaligned mags accepted")
	}
}

func TestAccessors(t *testing.T) {
	d := paperDict(t)
	if d.Source() != "Vin" || d.Output() != "out" {
		t.Fatalf("source/output = %q/%q", d.Source(), d.Output())
	}
	if d.Universe().Size() != 56 {
		t.Fatalf("universe size = %d", d.Universe().Size())
	}
	g := d.Golden()
	if err := g.SetValue("R1", 999); err != nil {
		t.Fatal(err)
	}
	// The dictionary's own golden must be unaffected.
	m1, _ := d.GoldenResponse(0.5)
	d2 := paperDict(t)
	m2, _ := d2.GoldenResponse(0.5)
	if math.Abs(m1-m2) > 1e-12 {
		t.Fatal("Golden() leaked internal state")
	}
}

func TestCircuitSignatureVariants(t *testing.T) {
	d := paperDict(t)
	// A clone of the golden circuit has a zero signature.
	sig, err := d.CircuitSignature(d.Golden(), []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sig {
		if v != 0 {
			t.Fatalf("golden variant signature = %v", sig)
		}
	}
	// Validation.
	if _, err := d.CircuitSignature(d.Golden(), nil); err == nil {
		t.Fatal("empty test vector accepted")
	}
	// A structurally broken variant errors instead of returning junk.
	broken := d.Golden()
	broken.MustAdd(circuitNewDanglingResistor())
	if _, err := d.CircuitSignature(broken, []float64{1}); err == nil {
		t.Fatal("broken variant accepted")
	}
}

func TestResponseErrorPaths(t *testing.T) {
	d := paperDict(t)
	// Unknown component in the fault: surfaces from the clone/scale.
	if _, err := d.Response(fault.Fault{Component: "R99", Deviation: 0.1}, 1); err == nil {
		t.Fatal("unknown component accepted")
	}
	// Negative frequency propagates the analysis error.
	if _, err := d.GoldenResponse(-1); err == nil {
		t.Fatal("negative frequency accepted")
	}
	// Deviation at -100% is rejected by Apply.
	if _, err := d.Response(fault.Fault{Component: "R1", Deviation: -1}, 1); err == nil {
		t.Fatal("-100% deviation accepted")
	}
}

func TestBuildGridPropagatesErrors(t *testing.T) {
	d := paperDict(t)
	if err := d.BuildGrid(nil, []float64{1, -5}, 2); err == nil {
		t.Fatal("grid with negative frequency accepted")
	}
	// Default worker count path.
	if err := d.BuildGrid(nil, []float64{0.7}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotPropagatesErrors(t *testing.T) {
	d := paperDict(t)
	if _, err := d.Snapshot([]float64{-2}); err == nil {
		t.Fatal("snapshot with bad frequency accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := paperDict(t)
	grid := []float64{0.3, 1, 3}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			var err error
			for _, f := range d.Universe().Faults()[:10] {
				if _, e := d.Signature(f, grid); e != nil {
					err = e
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
