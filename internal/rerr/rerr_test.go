package rerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCanceledMatchesBothSentinels(t *testing.T) {
	err := Canceled(context.Canceled)
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("not ErrCanceled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("not context.Canceled")
	}
}

func TestCanceledDeadline(t *testing.T) {
	err := Canceled(context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline wrap broken: %v", err)
	}
}

func TestCanceledNilCause(t *testing.T) {
	if err := Canceled(nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("nil cause should default to context.Canceled, got %v", err)
	}
}

func TestSentinelsSurviveWrapping(t *testing.T) {
	err := fmt.Errorf("core: %w: band empty", ErrBadConfig)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatal("wrapped ErrBadConfig not matched")
	}
}
