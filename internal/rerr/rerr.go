// Package rerr defines the structured sentinel errors shared across the
// library's package boundaries. Every long-running or configurable stage
// wraps its failures in one of these sentinels so callers can branch with
// errors.Is instead of matching message strings — the contract a serving
// layer needs to map failures onto retry/reject/4xx/5xx decisions.
//
// The sentinels live in their own leaf package (no internal imports) so
// that every layer — ga, engine, dictionary, core, the public repro
// facade — can wrap with them without import cycles. The public package
// re-exports them as repro.ErrBadConfig et al.
package rerr

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrBadConfig marks rejected configuration: GA hyperparameters,
	// frequency bands, fault universes, session options.
	ErrBadConfig = errors.New("invalid configuration")

	// ErrUnknownComponent marks a reference to a circuit element that does
	// not exist (or has no faultable value) in the circuit under test.
	ErrUnknownComponent = errors.New("unknown component")

	// ErrCanceled marks a stage stopped by context cancellation or
	// deadline. Errors wrapping it also wrap the context's own error, so
	// errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// holds as well.
	ErrCanceled = errors.New("operation canceled")

	// ErrArtifact marks a persisted artifact that cannot be decoded:
	// malformed JSON, wrong kind, or an unsupported schema version.
	ErrArtifact = errors.New("malformed artifact")

	// ErrStaleArtifact marks an artifact whose netlist checksum does not
	// match the circuit under test it is being loaded for.
	ErrStaleArtifact = errors.New("stale artifact")
)

// Canceled wraps a context error so the result matches both ErrCanceled
// and the underlying cause. A nil cause defaults to context.Canceled.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}
