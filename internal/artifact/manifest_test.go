package artifact

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeArtifact(t *testing.T, dir, name, kind, checksum string) {
	t.Helper()
	data, err := Encode(kind, checksum, map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanDirIndexesEnvelopes(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "dict.json", "repro.dictionary-grid", "aaa")
	writeArtifact(t, dir, "tv.json", "repro.test-vector", "aaa")
	writeArtifact(t, dir, "other.json", "repro.dictionary-grid", "bbb")
	// Non-artifact files are skipped, not errors.
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 3 {
		t.Fatalf("entries = %+v, want 3", m.Entries)
	}
	if got := m.Checksums(); !reflect.DeepEqual(got, []string{"aaa", "bbb"}) {
		t.Fatalf("checksums = %v", got)
	}
	path, ok := m.Find("repro.test-vector", "aaa")
	if !ok || path != filepath.Join(dir, "tv.json") {
		t.Fatalf("Find = %q, %v", path, ok)
	}
	if _, ok := m.Find("repro.test-vector", "bbb"); ok {
		t.Fatal("found a test vector that was never saved for bbb")
	}
}

func TestScanDirMissingDir(t *testing.T) {
	if _, err := ScanDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestManifestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "dict.json", "repro.dictionary-grid", "ccc")
	m, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save("manifest.json"); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dir != dir || !reflect.DeepEqual(got.Entries, m.Entries) {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}
	// A rescan now also sees the manifest itself.
	m2, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Entries) != 2 {
		t.Fatalf("rescan entries = %+v, want dict + manifest", m2.Entries)
	}
}
