// Package artifact implements the versioned JSON envelope the library
// persists its expensive products in: dictionary grids, test vectors, and
// trajectory maps. An envelope carries a kind tag (so a test-vector file
// is never mistaken for a dictionary), a schema version (so future layout
// changes can be detected instead of silently misread), and a checksum of
// the circuit-under-test netlist (so an artifact built for one board
// revision is rejected when loaded against another).
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/rerr"
)

// Version is the current schema version written into every envelope.
// Decode rejects any other version.
const Version = 1

// The canonical envelope kinds of the library's persisted products.
const (
	// KindDictionary tags a dictionary-grid snapshot.
	KindDictionary = "repro.dictionary-grid"
	// KindTestVector tags an optimized test vector.
	KindTestVector = "repro.test-vector"
	// KindTrajectories tags a trajectory map.
	KindTrajectories = "repro.trajectory-map"
	// KindClouds tags a Monte-Carlo signature-cloud set (probabilistic
	// diagnosis model).
	KindClouds = "repro.signature-clouds"
)

// Envelope is the on-disk frame around every persisted artifact.
type Envelope struct {
	// Kind names the payload type, e.g. "repro.dictionary-grid".
	Kind string `json:"kind"`
	// Version is the schema version the payload was written with.
	Version int `json:"version"`
	// Checksum is the SHA-256 (hex) of the serialized CUT netlist the
	// artifact was built from; empty when the artifact is CUT-independent.
	Checksum string `json:"checksum,omitempty"`
	// Payload is the artifact body.
	Payload json.RawMessage `json:"payload"`
}

// Checksum hashes a serialized netlist into the hex digest stored in and
// verified against envelopes.
func Checksum(netlistText string) string {
	sum := sha256.Sum256([]byte(netlistText))
	return hex.EncodeToString(sum[:])
}

// Encode wraps a payload in an envelope of the given kind and renders it
// as indented JSON.
func Encode(kind, checksum string, payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("artifact: encode %s: %w", kind, err)
	}
	env := Envelope{Kind: kind, Version: Version, Checksum: checksum, Payload: raw}
	return json.MarshalIndent(&env, "", "  ")
}

// Decode opens an envelope, verifying kind, schema version, and — when
// wantChecksum is non-empty — the netlist checksum. It returns the raw
// payload for the caller to unmarshal.
//
// Failures wrap rerr.ErrArtifact (undecodable, wrong kind, unsupported
// version) or rerr.ErrStaleArtifact (checksum mismatch).
func Decode(data []byte, kind, wantChecksum string) (json.RawMessage, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("artifact: %w: %v", rerr.ErrArtifact, err)
	}
	if env.Kind != kind {
		return nil, fmt.Errorf("artifact: %w: kind %q, want %q", rerr.ErrArtifact, env.Kind, kind)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("artifact: %w: schema version %d unsupported (this build reads version %d)", rerr.ErrArtifact, env.Version, Version)
	}
	if wantChecksum != "" && env.Checksum != wantChecksum {
		return nil, fmt.Errorf("artifact: %w: netlist checksum %.12s… does not match the circuit under test (%.12s…)", rerr.ErrStaleArtifact, env.Checksum, wantChecksum)
	}
	if len(env.Payload) == 0 {
		return nil, fmt.Errorf("artifact: %w: empty payload", rerr.ErrArtifact)
	}
	return env.Payload, nil
}

// DecodeInto is Decode plus unmarshaling the payload into out.
func DecodeInto(data []byte, kind, wantChecksum string, out any) error {
	payload, err := Decode(data, kind, wantChecksum)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("artifact: %w: %s payload: %v", rerr.ErrArtifact, kind, err)
	}
	return nil
}
