package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ManifestKind tags a persisted registry manifest.
const ManifestKind = "repro.artifact-manifest"

// ManifestEntry records one saved artifact: where it lives and the
// envelope header that identifies it without decoding the payload.
type ManifestEntry struct {
	// Path is the artifact file, relative to the manifest's directory.
	Path string `json:"path"`
	// Kind is the envelope's payload kind.
	Kind string `json:"kind"`
	// Checksum is the envelope's netlist checksum — the key that groups
	// artifacts belonging to one circuit under test.
	Checksum string `json:"checksum,omitempty"`
}

// Manifest lists the saved artifacts under one directory, the registry's
// index for warm-starting a CUT from persisted products instead of
// re-simulating them. Entries are sorted by (checksum, kind, path) so a
// rescan of an unchanged directory is deep-equal.
type Manifest struct {
	// Dir is the directory the entry paths are relative to.
	Dir string `json:"-"`
	// Entries holds one record per readable artifact.
	Entries []ManifestEntry `json:"entries"`
}

// ScanDir indexes every artifact envelope in dir (non-recursive): each
// regular *.json file that decodes as an envelope contributes one entry;
// other files are skipped silently, so a mixed directory is fine. A
// missing directory is an error; an empty one yields an empty manifest.
func ScanDir(dir string) (*Manifest, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: scan %s: %w", dir, err)
	}
	m := &Manifest{Dir: dir}
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			continue
		}
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil || env.Kind == "" || env.Version != Version {
			continue
		}
		m.Entries = append(m.Entries, ManifestEntry{Path: f.Name(), Kind: env.Kind, Checksum: env.Checksum})
	}
	sort.Slice(m.Entries, func(i, j int) bool {
		a, b := m.Entries[i], m.Entries[j]
		if a.Checksum != b.Checksum {
			return a.Checksum < b.Checksum
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Path < b.Path
	})
	return m, nil
}

// Find returns the absolute path of the first artifact of the given kind
// saved for the CUT identified by checksum, and whether one exists.
func (m *Manifest) Find(kind, checksum string) (string, bool) {
	for _, e := range m.Entries {
		if e.Kind == kind && e.Checksum == checksum {
			return filepath.Join(m.Dir, e.Path), true
		}
	}
	return "", false
}

// Checksums lists the distinct CUT checksums present, sorted.
func (m *Manifest) Checksums() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range m.Entries {
		if e.Checksum != "" && !seen[e.Checksum] {
			seen[e.Checksum] = true
			out = append(out, e.Checksum)
		}
	}
	sort.Strings(out)
	return out
}

// Save persists the manifest itself as a (CUT-independent) artifact in
// its directory, so deployments can ship a pinned index instead of
// rescanning.
func (m *Manifest) Save(name string) error {
	data, err := Encode(ManifestKind, "", m)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(m.Dir, name), data, 0o644)
}

// LoadManifest reads a manifest artifact written by Save. The returned
// manifest resolves entry paths relative to the manifest file's own
// directory.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := DecodeInto(data, ManifestKind, "", &m); err != nil {
		return nil, err
	}
	m.Dir = filepath.Dir(path)
	return &m, nil
}
