package artifact

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/rerr"
)

type payload struct {
	Name string    `json:"name"`
	Vals []float64 `json:"vals"`
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := payload{Name: "x", Vals: []float64{1, 2.5, -3e-9}}
	sum := Checksum("V1 in 0 1\n")
	data, err := Encode("repro.test", sum, in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := DecodeInto(data, "repro.test", sum, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[2] != in.Vals[2] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestDecodeRejectsWrongKind(t *testing.T) {
	data, err := Encode("repro.test", "", payload{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, "repro.other", ""); !errors.Is(err, rerr.ErrArtifact) {
		t.Fatalf("err = %v, want ErrArtifact", err)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	data, err := Encode("repro.test", "", payload{})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Version = Version + 41
	tampered, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(tampered, "repro.test", "")
	if !errors.Is(err, rerr.ErrArtifact) {
		t.Fatalf("err = %v, want ErrArtifact", err)
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("err %q does not mention the version", err)
	}
}

func TestDecodeRejectsChecksumMismatch(t *testing.T) {
	data, err := Encode("repro.test", Checksum("netlist A"), payload{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(data, "repro.test", Checksum("netlist B"))
	if !errors.Is(err, rerr.ErrStaleArtifact) {
		t.Fatalf("err = %v, want ErrStaleArtifact", err)
	}
	// Empty want skips the check (CUT-independent loads).
	if _, err := Decode(data, "repro.test", ""); err != nil {
		t.Fatalf("checksum-agnostic decode failed: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json"), "repro.test", ""); !errors.Is(err, rerr.ErrArtifact) {
		t.Fatalf("err = %v, want ErrArtifact", err)
	}
}

func TestChecksumStable(t *testing.T) {
	a, b := Checksum("same"), Checksum("same")
	if a != b || len(a) != 64 {
		t.Fatalf("checksum not a stable sha256 hex: %q vs %q", a, b)
	}
	if Checksum("other") == a {
		t.Fatal("distinct inputs collide")
	}
}
