package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro"
	"repro/internal/engine"
)

// Config parameterizes a serving instance.
type Config struct {
	// Build configures entry construction (workers, fixed frequencies,
	// GA settings, artifact warm start, scheduler).
	Build BuildConfig
	// Capacity bounds the registry LRU (≤ 0 → DefaultCapacity).
	Capacity int
	// Version is reported by /healthz (e.g. repro.VersionString output).
	Version string
	// BuildFunc overrides the production entry builder (tests).
	BuildFunc BuildFunc
	// Logger, when set, receives structured request, build, and eviction
	// logs (ftserve wires it from -log-level/-log-format). nil disables
	// logging; it is also the default for Build.Logger.
	Logger *slog.Logger
}

// Server is the HTTP serving layer over the registry and scheduler.
//
// Shutdown order matters for draining: first stop accepting connections
// and wait for handlers (http.Server.Shutdown), then Close the Server —
// queued requests are flushed through their batchers before workers
// stop, so no accepted request goes unanswered.
type Server struct {
	cfg     Config
	metrics Metrics
	reg     *Registry
	mux     *http.ServeMux
	logger  *slog.Logger // nil = silent
	start   time.Time
	cancel  context.CancelFunc
}

// New builds a serving instance. The server owns its lifetime context;
// Close releases it.
func New(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{cfg: cfg, logger: cfg.Logger, start: time.Now(), cancel: cancel}
	build := cfg.BuildFunc
	if build == nil {
		if cfg.Build.Logger == nil {
			cfg.Build.Logger = cfg.Logger
		}
		build = NewEntryBuilder(cfg.Build, &s.metrics)
	}
	s.reg = NewRegistry(ctx, cfg.Capacity, build, &s.metrics)
	s.reg.logger = cfg.Logger
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("/v1/diagnose/batch", s.handleDiagnoseBatch)
	s.mux.HandleFunc("/v1/cuts", s.handleCuts)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler tree. With a Logger configured, every
// request is logged structurally (method, path, status, duration).
func (s *Server) Handler() http.Handler {
	if s.logger == nil {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(sw, r)
		s.logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(t0))/float64(time.Millisecond))
	})
}

// statusWriter captures the response status for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Metrics exposes the server's counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Registry exposes the dictionary registry.
func (s *Server) Registry() *Registry { return s.reg }

// Preload warms the registry for the named CUTs, building (or
// artifact-loading) their serving state before traffic arrives.
func (s *Server) Preload(ctx context.Context, names []string) error {
	for _, name := range names {
		if _, err := s.reg.Get(ctx, name); err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
	}
	return nil
}

// Close drains and stops the registry's batchers and releases the
// server's lifetime context. Call after http.Server.Shutdown has
// returned.
func (s *Server) Close() {
	s.reg.Close()
	s.cancel()
}

// wireFault is one injected fault part on the wire.
type wireFault struct {
	Component string  `json:"component"`
	Deviation float64 `json:"deviation"`
}

// diagnoseRequest is the wire form of one diagnose request.
type diagnoseRequest struct {
	// CUT names the circuit under test (top-level requests only).
	CUT string `json:"cut"`
	// Fault is the single parametric fault to simulate and diagnose.
	Fault *wireFault `json:"fault,omitempty"`
	// Faults is a simultaneous multi-fault injection: every listed part
	// is applied at once and the combined response diagnosed (requires a
	// CUT served with double faults for the diagnosis to name pairs;
	// otherwise the nearest single-fault hypothesis — or a rejection —
	// answers). Mutually exclusive with Fault and Point.
	Faults []wireFault `json:"faults,omitempty"`
	// Point is an observed signature point (alternative to Fault).
	Point []float64 `json:"point,omitempty"`
	// RejectRatio enables out-of-model rejection when > 0.
	RejectRatio float64 `json:"reject_ratio,omitempty"`
}

// diagnoseReply is the wire form of one diagnosis.
type diagnoseReply struct {
	CUT       string                 `json:"cut"`
	Omegas    []float64              `json:"omegas"`
	BatchSize int                    `json:"batch_size"`
	Rejected  *bool                  `json:"rejected,omitempty"`
	Result    *repro.DiagnosisResult `json:"result,omitempty"`
	// Probabilistic fields, present when the server runs with a
	// tolerance model (-tolerance/-mc-samples): posterior confidence in
	// the top hypothesis, the likelihood-ranked hypothesis list, and the
	// winner's precomputed ambiguity group.
	Confidence     *float64                       `json:"confidence,omitempty"`
	Likelihoods    []repro.ProbabilisticCandidate `json:"likelihoods,omitempty"`
	AmbiguityGroup []string                       `json:"ambiguity_group,omitempty"`
	Error          string                         `json:"error,omitempty"`
	Status         int                            `json:"status,omitempty"`
}

// withProb folds a probabilistic diagnosis into the wire reply.
func (d *diagnoseReply) withProb(prob *repro.ProbabilisticResult) {
	if prob == nil {
		return
	}
	conf := prob.Confidence
	d.Confidence = &conf
	d.Likelihoods = prob.Candidates
	d.AmbiguityGroup = prob.AmbiguityGroup
}

// toRequest converts the wire form to a scheduler request.
func (d *diagnoseRequest) toRequest() *Request {
	req := &Request{Point: d.Point, RejectRatio: d.RejectRatio}
	if d.Fault != nil {
		req.Fault = repro.Fault{Component: d.Fault.Component, Deviation: d.Fault.Deviation}
	}
	for _, f := range d.Faults {
		req.Faults = append(req.Faults, repro.Fault{Component: f.Component, Deviation: f.Deviation})
	}
	return req
}

// maxBodyBytes bounds every request body; maxBatchItems bounds the
// sub-requests of one batch call (each costs a waiting goroutine).
const (
	maxBodyBytes  = 1 << 20
	maxBatchItems = 1024
)

// diagnose resolves the CUT and submits one request through its batcher.
// When an LRU eviction closes the batcher between the registry lookup
// and the submit, the request retries once against the rebuilt entry —
// only a genuine shutdown surfaces ErrClosed to the client.
func (s *Server) diagnose(ctx context.Context, cut string, dr *diagnoseRequest) (*Entry, Response) {
	for attempt := 0; ; attempt++ {
		entry, err := s.reg.Get(ctx, cut)
		if err != nil {
			return nil, Response{Err: err}
		}
		resp := entry.batcher.Diagnose(ctx, dr.toRequest())
		if errors.Is(resp.Err, ErrClosed) && attempt == 0 {
			continue
		}
		return entry, resp
	}
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var dr diagnoseRequest
	if err := json.NewDecoder(r.Body).Decode(&dr); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	entry, resp := s.diagnose(r.Context(), dr.CUT, &dr)
	if resp.Err != nil {
		s.writeError(w, statusOf(resp.Err), resp.Err)
		return
	}
	rep := diagnoseReply{
		CUT:       entry.Name,
		Omegas:    entry.Omegas,
		BatchSize: resp.BatchSize,
		Rejected:  resp.Rejected,
		Result:    resp.Result,
	}
	rep.withProb(resp.Prob)
	writeJSON(w, http.StatusOK, rep)
}

// batchRequest is the wire form of a multi-diagnose call: one CUT, many
// requests, answered positionally.
type batchRequest struct {
	CUT      string            `json:"cut"`
	Requests []diagnoseRequest `json:"requests"`
}

type batchReply struct {
	CUT     string          `json:"cut"`
	Omegas  []float64       `json:"omegas"`
	Results []diagnoseReply `json:"results"`
}

func (s *Server) handleDiagnoseBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var br batchRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if len(br.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty request list"))
		return
	}
	if len(br.Requests) > maxBatchItems {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the %d-request limit", len(br.Requests), maxBatchItems))
		return
	}
	entry, err := s.reg.Get(r.Context(), br.CUT)
	if err != nil {
		s.writeError(w, statusOf(err), err)
		return
	}
	// Submit every sub-request concurrently so the scheduler coalesces
	// them — a batch HTTP call is micro-batching's best case.
	replies := make([]diagnoseReply, len(br.Requests))
	var wg sync.WaitGroup
	for i := range br.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, resp := s.diagnose(r.Context(), br.CUT, &br.Requests[i])
			rep := diagnoseReply{CUT: entry.Name, BatchSize: resp.BatchSize, Rejected: resp.Rejected, Result: resp.Result}
			rep.withProb(resp.Prob)
			if resp.Err != nil {
				rep.Error = resp.Err.Error()
				rep.Status = statusOf(resp.Err)
			}
			replies[i] = rep
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchReply{CUT: entry.Name, Omegas: entry.Omegas, Results: replies})
}

func (s *Server) handleCuts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cuts": Catalog(s.reg)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        s.cfg.Version,
		"cuts_loaded":    len(s.reg.Resident()),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
	WriteEnginePrometheus(w, s.reg.EngineStats())
}

// statsReply is the /v1/stats payload: the same data /metrics exposes,
// as JSON — serving metrics with latency snapshots (buckets, sum, count,
// p50/p90/p99) plus the aggregated engine path counters.
type statsReply struct {
	UptimeSeconds int64                    `json:"uptime_seconds"`
	Metrics       MetricsSnapshot          `json:"metrics"`
	Engine        engine.PathStatsSnapshot `json:"engine"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, statsReply{
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Metrics:       s.metrics.Snapshot(),
		Engine:        s.reg.EngineStats(),
	})
}

// statusOf maps an error onto its HTTP status: serving-layer sentinels
// first, then the library's structured-error mapping.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownCUT):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return repro.HTTPStatus(err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.metrics.Errors.Add(1)
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}
