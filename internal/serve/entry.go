package serve

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"sort"
	"sync"

	"repro"
	"repro/internal/artifact"
	"repro/internal/engine"
)

// Entry is one CUT's serving state: the session (dictionary + engine),
// the test vector it serves diagnoses at, the trajectory map, the shared
// read-only diagnoser, and the micro-batcher requests flow through.
type Entry struct {
	// Name is the benchmark CUT name the entry serves.
	Name string
	// Session owns the fault dictionary (safe for concurrent reads).
	Session *repro.Session
	// Omegas is the test vector every diagnosis runs at.
	Omegas []float64
	// Diagnoser is the shared read-only diagnosis stage (its Map method
	// exposes the trajectory map diagnoses project onto).
	Diagnoser *repro.Diagnoser
	// Clouds is the probabilistic diagnosis model, present when the
	// server runs with a tolerance model (BuildConfig.MCSamples > 0).
	// Safe for concurrent reads; every diagnosis through the batcher is
	// additionally scored against it.
	Clouds *repro.SignatureClouds
	// Origin records how the entry was produced: "optimized" (GA),
	// "configured" (fixed frequencies), or "artifact" (warm start).
	Origin string
	// Warning flags a degraded serving state (e.g. a warm start whose
	// test frequencies are not stored in the grid artifact, so
	// trajectories are interpolated). Surfaced in /v1/cuts and the log.
	Warning string

	batcher *batcher
}

// close drains and stops the entry's batcher, if any.
func (e *Entry) close() {
	if e.batcher != nil {
		e.batcher.stop()
	}
}

// engineStats reads the entry engine's path counters. Entries without a
// session (test stubs) report nothing.
func (e *Entry) engineStats() (engine.PathStatsSnapshot, bool) {
	if e.Session == nil {
		return engine.PathStatsSnapshot{}, false
	}
	return e.Session.Dictionary().Engine().Stats(), true
}

// BuildConfig parameterizes the production entry builder.
type BuildConfig struct {
	// Workers bounds each session's worker pools (0 = one per CPU).
	Workers int
	// Freqs, when non-empty, is the fixed test vector for every CUT —
	// no GA run, no test-vector artifact needed.
	Freqs []float64
	// Seed seeds the GA when a test vector must be optimized.
	Seed int64
	// FullGA selects the paper's full 128×15 GA instead of the quick
	// 32×10 settings.
	FullGA bool
	// DoubleFaults opens every session WithDoubleFaults: trajectory maps
	// gain the pair sweep families and {"faults": [...]} injections are
	// diagnosed by name. Artifacts carry a double-fault checksum, so
	// warm starts only match artifacts saved from double-fault sessions.
	DoubleFaults bool
	// MaxDoubleFaults caps the modeled pair universe per CUT (≤ 0 → no
	// cap); only meaningful with DoubleFaults.
	MaxDoubleFaults int
	// ToleranceSigma is the component tolerance (relative σ) of the
	// probabilistic diagnosis model; only meaningful with MCSamples > 0.
	ToleranceSigma float64
	// MCSamples, when > 0, builds a Monte-Carlo signature-cloud model
	// per entry (ToleranceSigma, MCSamples samples, seeded by Seed) and
	// scores every diagnosis against it — /v1/diagnose replies gain
	// confidence, likelihoods, and ambiguity_group.
	MCSamples int
	// ArtifactDir, when non-empty, is scanned once for saved artifacts;
	// a CUT whose checksum matches a saved trajectory map, test vector,
	// or dictionary grid warm-starts from it instead of re-simulating.
	ArtifactDir string
	// Scheduler configures each entry's micro-batcher.
	Scheduler SchedulerConfig
	// Logger, when set, receives structured build diagnostics (degraded
	// warm-start warnings). nil falls back to the standard log package.
	Logger *slog.Logger
}

// NewEntryBuilder returns the production BuildFunc: resolve the built-in
// benchmark CUT, open a session, obtain a test vector and trajectory map
// (from artifacts when available, else by computing them), and attach a
// micro-batcher. The artifact directory is scanned lazily once and the
// manifest reused across builds.
func NewEntryBuilder(cfg BuildConfig, m *Metrics) BuildFunc {
	if m == nil {
		m = &Metrics{}
	}
	var scanOnce sync.Once
	var manifest *artifact.Manifest
	var scanErr error
	getManifest := func() (*artifact.Manifest, error) {
		scanOnce.Do(func() {
			if cfg.ArtifactDir != "" {
				manifest, scanErr = artifact.ScanDir(cfg.ArtifactDir)
			}
		})
		return manifest, scanErr
	}

	return func(ctx context.Context, name string) (*Entry, error) {
		cut, err := repro.BenchmarkByName(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnknownCUT, err)
		}
		opts := []repro.Option{repro.WithWorkers(cfg.Workers)}
		if cfg.DoubleFaults {
			opts = append(opts, repro.WithDoubleFaults(cfg.MaxDoubleFaults))
		}
		if cfg.MCSamples > 0 {
			opts = append(opts,
				repro.WithTolerance(repro.Tolerance{Sigma: cfg.ToleranceSigma}, cfg.MCSamples),
				repro.WithToleranceSeed(cfg.Seed))
		}
		s, err := repro.NewSession(cut, opts...)
		if err != nil {
			return nil, err
		}
		man, err := getManifest()
		if err != nil {
			return nil, err
		}

		e := &Entry{Name: name, Session: s}
		if err := buildServingState(ctx, e, man, cfg); err != nil {
			return nil, err
		}
		if cfg.MCSamples > 0 {
			if err := buildClouds(ctx, e, man, cfg); err != nil {
				return nil, err
			}
		}
		if e.Origin == "artifact" {
			m.WarmStarts.Add(1)
		}
		if e.Warning != "" {
			if cfg.Logger != nil {
				cfg.Logger.Warn("degraded entry", "cut", name, "warning", e.Warning)
			} else {
				log.Printf("serve: %s: %s", name, e.Warning)
			}
		}
		e.batcher = newBatcher(ctx, e, cfg.Scheduler, m)
		return e, nil
	}
}

// buildServingState fills the entry's test vector, trajectory map and
// diagnoser, preferring persisted artifacts over recomputation:
// trajectory map (carries its own test vector) > test vector + dictionary
// grid > test vector + live build > configured frequencies > GA.
func buildServingState(ctx context.Context, e *Entry, man *artifact.Manifest, cfg BuildConfig) error {
	s := e.Session
	// A saved trajectory map is the complete serving product.
	if man != nil {
		if path, ok := man.Find(artifact.KindTrajectories, s.Checksum()); ok {
			tm, err := s.LoadTrajectories(path)
			if err != nil {
				return err
			}
			return e.finish(tm.Omegas, tm, "artifact")
		}
	}

	omegas := append([]float64(nil), cfg.Freqs...)
	origin := "configured"
	if len(omegas) == 0 {
		if man != nil {
			if path, ok := man.Find(artifact.KindTestVector, s.Checksum()); ok {
				tv, err := s.LoadTestVector(path)
				if err != nil {
					return err
				}
				omegas, origin = tv.Omegas, "artifact"
			}
		}
	}
	if len(omegas) == 0 {
		ocfg := repro.PaperOptimizeConfig(s.CUT().Omega0)
		ocfg.Seed = cfg.Seed
		if !cfg.FullGA {
			ocfg.GA.PopSize = 32
			ocfg.GA.Generations = 10
		}
		tv, err := s.Optimize(ctx, ocfg)
		if err != nil {
			return err
		}
		omegas, origin = tv.Omegas, "optimized"
	}

	// A saved dictionary grid rebuilds the map without re-simulating.
	if man != nil {
		if path, ok := man.Find(artifact.KindDictionary, s.Checksum()); ok {
			tm, ex, err := gridTrajectories(s, path, omegas)
			if err != nil {
				return err
			}
			if off := OffGridFrequencies(ex, omegas); len(off) > 0 {
				e.Warning = fmt.Sprintf("test frequencies %v are not stored in the grid artifact; trajectories are log-ω interpolated and may misrank close faults", off)
			}
			return e.finish(omegas, tm, "artifact")
		}
	}
	tm, err := s.Trajectories(ctx, omegas)
	if err != nil {
		return err
	}
	return e.finish(omegas, tm, origin)
}

// buildClouds attaches the probabilistic diagnosis model: a saved
// signature-cloud artifact warm-starts the entry when it matches the
// serving configuration (checksum via the manifest, plus test vector,
// tolerance σ, and sample count); anything else rebuilds live through
// the session's Monte-Carlo sweep.
func buildClouds(ctx context.Context, e *Entry, man *artifact.Manifest, cfg BuildConfig) error {
	s := e.Session
	if man != nil {
		if path, ok := man.Find(artifact.KindClouds, s.Checksum()); ok {
			cs, err := s.LoadClouds(path)
			if err != nil {
				return err
			}
			tol, samples := s.Tolerance()
			if cs.MatchesOmegas(e.Omegas) && cs.Sigma == tol.Sigma && cs.Samples == samples {
				e.Clouds = cs
				return nil
			}
			// The artifact was built for a different test vector or
			// tolerance setup — fall through to a live build.
		}
	}
	cs, err := s.Clouds(ctx, e.Omegas)
	if err != nil {
		return err
	}
	e.Clouds = cs
	return nil
}

// finish installs the map and builds the shared diagnoser.
func (e *Entry) finish(omegas []float64, tm *repro.TrajectoryMap, origin string) error {
	dg, err := repro.NewDiagnoser(tm)
	if err != nil {
		return err
	}
	e.Omegas = append([]float64(nil), omegas...)
	e.Diagnoser = dg
	e.Origin = origin
	return nil
}

// trajectoriesFromGrid is the registry's dictionary-artifact load path,
// shared with ftdiag -load-dictionary: read the saved grid (validating
// kind, schema version, and the session's netlist checksum) and rebuild
// the trajectory map from it, interpolating in log ω off the stored grid
// — no fault simulation.
func trajectoriesFromGrid(s *repro.Session, path string, omegas []float64) (*repro.TrajectoryMap, error) {
	tm, _, err := gridTrajectories(s, path, omegas)
	return tm, err
}

func gridTrajectories(s *repro.Session, path string, omegas []float64) (*repro.TrajectoryMap, *repro.DictionaryExport, error) {
	ex, err := s.LoadDictionary(path)
	if err != nil {
		return nil, nil, err
	}
	tm, err := repro.TrajectoriesFromExport(ex, omegas)
	if err != nil {
		return nil, nil, err
	}
	return tm, ex, nil
}

// DiagnoserFromGrid loads a saved dictionary-grid artifact and builds the
// diagnosis stage for the given test vector from it — the shared
// "diagnose against a saved grid without re-simulating" path behind both
// the registry's warm start and ftdiag -load-dictionary. The returned
// export lets callers check grid coverage (see OffGridFrequencies):
// responses at stored grid frequencies are bit-exact, anything else is
// log-ω interpolated and may blur closely spaced trajectories.
func DiagnoserFromGrid(s *repro.Session, path string, omegas []float64) (*repro.Diagnoser, *repro.TrajectoryMap, *repro.DictionaryExport, error) {
	tm, ex, err := gridTrajectories(s, path, omegas)
	if err != nil {
		return nil, nil, nil, err
	}
	dg, err := repro.NewDiagnoser(tm)
	if err != nil {
		return nil, nil, nil, err
	}
	return dg, tm, ex, nil
}

// OffGridFrequencies returns the requested test frequencies that are not
// stored exactly in the export's grid — the ones TrajectoriesFromExport
// had to interpolate.
func OffGridFrequencies(ex *repro.DictionaryExport, omegas []float64) []float64 {
	var off []float64
	for _, w := range omegas {
		found := false
		for _, g := range ex.Omegas {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			off = append(off, w)
		}
	}
	return off
}

// CatalogEntry describes one CUT in the /v1/cuts listing.
type CatalogEntry struct {
	Name        string    `json:"name"`
	Description string    `json:"description"`
	Components  []string  `json:"components"`
	Loaded      bool      `json:"loaded"`
	Omegas      []float64 `json:"omegas,omitempty"`
	Origin      string    `json:"origin,omitempty"`
	Warning     string    `json:"warning,omitempty"`
	// DoubleFaults counts the modeled double-fault universe of a loaded
	// entry (0 ⇒ single-fault serving).
	DoubleFaults int `json:"double_faults,omitempty"`
	// ToleranceSigma and MCSamples describe a loaded entry's
	// probabilistic diagnosis model (MCSamples == 0 ⇒ point-signature
	// serving only).
	ToleranceSigma float64 `json:"tolerance_sigma,omitempty"`
	MCSamples      int     `json:"mc_samples,omitempty"`
	// AmbiguityGroups counts the precomputed cloud-overlap groups of a
	// loaded probabilistic entry.
	AmbiguityGroups int `json:"ambiguity_groups,omitempty"`
	// Nodes, NNZ, and FactorPath describe a loaded entry's MNA engine:
	// system order, structural nonzeros of the golden sparse pattern
	// (0 when none compiled), and which golden factorization path batch
	// solves run on ("dense" or "sparse").
	Nodes      int    `json:"nodes,omitempty"`
	NNZ        int    `json:"nnz,omitempty"`
	FactorPath string `json:"factor_path,omitempty"`
}

// Catalog lists every built-in benchmark plus any resident
// parameterized CUT (rc-ladder-<n>, …), annotating loaded entries with
// their serving state.
func Catalog(r *Registry) []CatalogEntry {
	resident := make(map[string]*Entry)
	r.mu.Lock()
	for el := r.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		resident[e.Name] = e
	}
	r.mu.Unlock()

	annotate := func(ce *CatalogEntry, e *Entry) {
		ce.Loaded = true
		ce.Omegas = e.Omegas
		ce.Origin = e.Origin
		ce.Warning = e.Warning
		ce.Components = e.Session.CUT().Passives
		ce.DoubleFaults = len(e.Session.DoubleFaults())
		eng := e.Session.Dictionary().Engine()
		ce.Nodes = eng.Nodes()
		ce.NNZ = eng.NNZ()
		ce.FactorPath = eng.FactorPathName()
		if e.Clouds != nil {
			tol, samples := e.Session.Tolerance()
			ce.ToleranceSigma = tol.Sigma
			ce.MCSamples = samples
			ce.AmbiguityGroups = len(e.Clouds.Groups)
		}
	}

	var out []CatalogEntry
	fixed := make(map[string]bool)
	for _, cut := range repro.Benchmarks() {
		ce := CatalogEntry{
			Name:        cut.Circuit.Name(),
			Description: cut.Description,
			Components:  cut.Passives,
		}
		fixed[ce.Name] = true
		if e, ok := resident[ce.Name]; ok {
			annotate(&ce, e)
		}
		out = append(out, ce)
	}
	// Resident entries resolved through a parameterized family name are
	// part of the serving state too, even though they are not in the
	// fixed benchmark list.
	for name, e := range resident {
		if fixed[name] {
			continue
		}
		ce := CatalogEntry{Name: name, Description: e.Session.CUT().Description}
		annotate(&ce, e)
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
