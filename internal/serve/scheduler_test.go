package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/rerr"
)

var (
	entryOnce sync.Once
	entryVal  *Entry
	entryErr  error
)

// paperEntry builds one shared serving entry for the paper CUT at a
// fixed, known-good test vector. Entries are read-only for batchers, so
// tests may share it.
func paperEntry(t *testing.T) *Entry {
	t.Helper()
	entryOnce.Do(func() {
		build := NewEntryBuilder(BuildConfig{Workers: 1, Freqs: []float64{0.56, 4.55}}, nil)
		entryVal, entryErr = build(context.Background(), "nf-lowpass-7")
		if entryErr == nil {
			// Tests drive their own batchers; idle the built-in one.
			entryVal.close()
		}
	})
	if entryErr != nil {
		t.Fatal(entryErr)
	}
	return entryVal
}

// never is an after-hook whose flush timer never fires: batches close
// only on MaxBatch or shutdown.
func never(time.Duration) <-chan time.Time { return make(chan time.Time) }

// manualFlush returns an after-hook delivering a caller-controlled
// timer channel.
func manualFlush() (func(time.Duration) <-chan time.Time, chan time.Time) {
	ch := make(chan time.Time)
	return func(time.Duration) <-chan time.Time { return ch }, ch
}

func waitCollecting(t *testing.T, b *batcher, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.collecting.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("batcher never collected %d requests (at %d)", n, b.collecting.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// submitAsync runs Diagnose on its own goroutine, delivering the
// response through a channel.
func submitAsync(ctx context.Context, b *batcher, req *Request) chan Response {
	out := make(chan Response, 1)
	go func() { out <- b.Diagnose(ctx, req) }()
	return out
}

func TestBatcherCoalescesToMaxBatch(t *testing.T) {
	e := paperEntry(t)
	var m Metrics
	const n = 5
	b := newBatcher(context.Background(), e, SchedulerConfig{MaxBatch: n, after: never}, &m)
	defer b.stop()

	comps := e.Session.CUT().Passives
	var chans []chan Response
	for i := 0; i < n; i++ {
		req := &Request{Fault: repro.Fault{Component: comps[i%len(comps)], Deviation: 0.22}}
		chans = append(chans, submitAsync(context.Background(), b, req))
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if resp.BatchSize != n {
			t.Fatalf("request %d batch size = %d, want %d (one coalesced flush)", i, resp.BatchSize, n)
		}
		if resp.Result.Best().Component != comps[i%len(comps)] {
			t.Fatalf("request %d diagnosed %s, want %s", i, resp.Result.Best().Component, comps[i%len(comps)])
		}
	}
	if got := m.Batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
	if got := m.BatchedRequests.Load(); got != n {
		t.Fatalf("batched requests = %d, want %d", got, n)
	}
}

func TestBatcherFlushWindowCoalescing(t *testing.T) {
	e := paperEntry(t)
	var m Metrics
	after, flush := manualFlush()
	b := newBatcher(context.Background(), e, SchedulerConfig{MaxBatch: 100, after: after}, &m)
	defer b.stop()

	comps := e.Session.CUT().Passives
	var chans []chan Response
	for i := 0; i < 3; i++ {
		req := &Request{Fault: repro.Fault{Component: comps[i], Deviation: -0.13}}
		chans = append(chans, submitAsync(context.Background(), b, req))
	}
	// All three requests are gathered into the open window; firing the
	// flush timer releases them as one batch.
	waitCollecting(t, b, 3)
	flush <- time.Time{}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if resp.BatchSize != 3 {
			t.Fatalf("request %d batch size = %d, want 3", i, resp.BatchSize)
		}
	}
	if got := m.Batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
}

func TestBatcherMaxBatchSpillover(t *testing.T) {
	e := paperEntry(t)
	var m Metrics
	b := newBatcher(context.Background(), e, SchedulerConfig{MaxBatch: 2, FlushWindow: time.Millisecond}, &m)
	defer b.stop()

	comps := e.Session.CUT().Passives
	const n = 5
	var chans []chan Response
	for i := 0; i < n; i++ {
		req := &Request{Fault: repro.Fault{Component: comps[i%len(comps)], Deviation: 0.22}}
		chans = append(chans, submitAsync(context.Background(), b, req))
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if resp.BatchSize > 2 {
			t.Fatalf("request %d batch size = %d, want ≤ MaxBatch 2", i, resp.BatchSize)
		}
	}
	if got := m.Batches.Load(); got < 3 {
		t.Fatalf("batches = %d, want ≥ 3 for 5 requests at MaxBatch 2", got)
	}
	if got := m.BatchedRequests.Load(); got != n {
		t.Fatalf("batched requests = %d, want %d (spillover served, not dropped)", got, n)
	}
}

func TestBatcherQueuedCancellation(t *testing.T) {
	e := paperEntry(t)
	var m Metrics
	after, flush := manualFlush()
	b := newBatcher(context.Background(), e, SchedulerConfig{MaxBatch: 100, after: after}, &m)
	defer b.stop()

	comps := e.Session.CUT().Passives
	cctx, cancel := context.WithCancel(context.Background())
	canceled := submitAsync(cctx, b, &Request{Fault: repro.Fault{Component: comps[0], Deviation: 0.22}})
	live := submitAsync(context.Background(), b, &Request{Fault: repro.Fault{Component: comps[1], Deviation: 0.22}})

	waitCollecting(t, b, 2)
	cancel()
	// The canceled caller is released immediately, before any flush.
	resp := <-canceled
	if !errors.Is(resp.Err, rerr.ErrCanceled) || !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("canceled request err = %v, want ErrCanceled wrapping context.Canceled", resp.Err)
	}

	flush <- time.Time{}
	lresp := <-live
	if lresp.Err != nil {
		t.Fatalf("live request: %v", lresp.Err)
	}
	if lresp.Result.Best().Component != comps[1] {
		t.Fatalf("live request diagnosed %s, want %s", lresp.Result.Best().Component, comps[1])
	}
	if got := m.Canceled.Load(); got != 1 {
		t.Fatalf("canceled = %d, want 1 (skipped at flush, no work wasted)", got)
	}
}

// TestBatcherDeterminism pins the golden-response property: a coalesced
// batch produces bit-identical diagnoses to the same requests served one
// at a time.
func TestBatcherDeterminism(t *testing.T) {
	e := paperEntry(t)
	comps := e.Session.CUT().Passives
	var faults []repro.Fault
	for _, c := range comps {
		for _, dev := range []float64{-0.13, 0.22} {
			faults = append(faults, repro.Fault{Component: c, Deviation: dev})
		}
	}
	newReq := func(i int) *Request {
		return &Request{Fault: faults[i], RejectRatio: 0.02}
	}

	// One at a time: MaxBatch 1 forces a dedicated flush per request.
	single := newBatcher(context.Background(), e, SchedulerConfig{MaxBatch: 1}, nil)
	want := make([]Response, len(faults))
	for i := range faults {
		want[i] = single.Diagnose(context.Background(), newReq(i))
		if want[i].Err != nil {
			t.Fatalf("single %d: %v", i, want[i].Err)
		}
	}
	single.stop()

	// Coalesced: every request lands in one flush.
	batched := newBatcher(context.Background(), e, SchedulerConfig{MaxBatch: len(faults), after: never}, nil)
	chans := make([]chan Response, len(faults))
	for i := range faults {
		chans[i] = submitAsync(context.Background(), batched, newReq(i))
	}
	for i, ch := range chans {
		got := <-ch
		if got.Err != nil {
			t.Fatalf("batched %d: %v", i, got.Err)
		}
		if got.BatchSize != len(faults) {
			t.Fatalf("batched %d batch size = %d, want %d", i, got.BatchSize, len(faults))
		}
		gj, _ := json.Marshal(got.Result)
		wj, _ := json.Marshal(want[i].Result)
		if string(gj) != string(wj) {
			t.Fatalf("request %d drifted between batched and single serving:\n batched: %s\n single:  %s", i, gj, wj)
		}
		if *got.Rejected != *want[i].Rejected {
			t.Fatalf("request %d rejection drifted", i)
		}
	}
	batched.stop()
}

func TestBatcherValidation(t *testing.T) {
	e := paperEntry(t)
	// No worker needed: validation fails before the queue.
	b := &batcher{entry: e, cfg: SchedulerConfig{}.withDefaults(), metrics: &Metrics{}}

	cases := []struct {
		name string
		req  *Request
		want error
	}{
		{"unknown component", &Request{Fault: repro.Fault{Component: "R99", Deviation: 0.2}}, rerr.ErrUnknownComponent},
		{"no fault no point", &Request{}, rerr.ErrBadConfig},
		{"deviation at -100%", &Request{Fault: repro.Fault{Component: "R1", Deviation: -1}}, rerr.ErrBadConfig},
		{"point dimension", &Request{Point: []float64{1, 2, 3}}, rerr.ErrBadConfig},
	}
	for _, tc := range cases {
		if err := b.validate(tc.req); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestBatcherQueueFull(t *testing.T) {
	e := paperEntry(t)
	var m Metrics
	// Hand-built batcher with no worker: the queue never drains, so the
	// bound is observable deterministically.
	b := &batcher{
		entry:   e,
		cfg:     SchedulerConfig{QueueSize: 1}.withDefaults(),
		ctx:     context.Background(),
		queue:   make(chan *Request, 1),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		metrics: &m,
	}
	b.queue <- &Request{} // occupy the only slot
	resp := b.Diagnose(context.Background(), &Request{Fault: repro.Fault{Component: "R1", Deviation: 0.2}})
	if !errors.Is(resp.Err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", resp.Err)
	}
	if m.QueueRejects.Load() != 1 {
		t.Fatalf("queue rejects = %d", m.QueueRejects.Load())
	}
}

// TestBatcherShutdownDrain pins the drain contract: requests queued when
// shutdown begins are still served, not dropped.
func TestBatcherShutdownDrain(t *testing.T) {
	e := paperEntry(t)
	var m Metrics
	b := newBatcher(context.Background(), e, SchedulerConfig{MaxBatch: 100, after: never}, &m)

	comps := e.Session.CUT().Passives
	var chans []chan Response
	for i := 0; i < 3; i++ {
		req := &Request{Fault: repro.Fault{Component: comps[i], Deviation: 0.22}}
		chans = append(chans, submitAsync(context.Background(), b, req))
	}
	waitCollecting(t, b, 3)
	b.stop() // flush never fires: only shutdown can release the batch
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d dropped at shutdown: %v", i, resp.Err)
		}
		if resp.Result.Best().Component != comps[i] {
			t.Fatalf("request %d misdiagnosed after drain", i)
		}
	}
	if m.InFlight.Load() != 0 {
		t.Fatalf("inflight after drain = %d", m.InFlight.Load())
	}
}
