package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
)

// stubBuilder counts builds and can hold them open to widen race windows.
type stubBuilder struct {
	builds atomic.Int64
	gate   chan struct{} // when non-nil, builds block until it closes
}

func (sb *stubBuilder) build(ctx context.Context, name string) (*Entry, error) {
	sb.builds.Add(1)
	if sb.gate != nil {
		<-sb.gate
	}
	if name == "missing" {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCUT, name)
	}
	return &Entry{Name: name}, nil
}

func TestRegistrySingleFlight(t *testing.T) {
	sb := &stubBuilder{gate: make(chan struct{})}
	var m Metrics
	r := NewRegistry(context.Background(), 4, sb.build, &m)

	const callers = 16
	var wg sync.WaitGroup
	entries := make([]*Entry, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], errs[i] = r.Get(context.Background(), "nf-lowpass-7")
		}(i)
	}
	// Release the build only after every caller is in flight: either
	// waiting on the single build, or about to join it.
	close(sb.gate)
	wg.Wait()

	if got := sb.builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want exactly 1 (single-flight)", got)
	}
	for i := range entries {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if entries[i] != entries[0] {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
	if m.Builds.Load() != 1 {
		t.Fatalf("metrics builds = %d", m.Builds.Load())
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	sb := &stubBuilder{}
	var m Metrics
	r := NewRegistry(context.Background(), 2, sb.build, &m)
	ctx := context.Background()

	for _, name := range []string{"a", "b", "c"} {
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Resident(); !reflect.DeepEqual(got, []string{"c", "b"}) {
		t.Fatalf("resident = %v, want [c b] (a evicted)", got)
	}
	if m.Evictions.Load() != 1 {
		t.Fatalf("evictions = %d", m.Evictions.Load())
	}
	// Touching b makes c the eviction candidate.
	if _, err := r.Get(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if got := r.Resident(); !reflect.DeepEqual(got, []string{"d", "b"}) {
		t.Fatalf("resident = %v, want [d b]", got)
	}
	// An evicted CUT rebuilds on demand.
	if _, err := r.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if got := sb.builds.Load(); got != 5 {
		t.Fatalf("builds = %d, want 5 (a, b, c, d, a again)", got)
	}
}

func TestRegistryBuildErrorNotCached(t *testing.T) {
	sb := &stubBuilder{}
	r := NewRegistry(context.Background(), 2, sb.build, nil)
	ctx := context.Background()
	if _, err := r.Get(ctx, "missing"); !errors.Is(err, ErrUnknownCUT) {
		t.Fatalf("err = %v, want ErrUnknownCUT", err)
	}
	// Failures are not cached: the next request retries the build.
	if _, err := r.Get(ctx, "missing"); !errors.Is(err, ErrUnknownCUT) {
		t.Fatalf("err = %v", err)
	}
	if got := sb.builds.Load(); got != 2 {
		t.Fatalf("builds = %d, want 2", got)
	}
}

func TestRegistryWaiterCancellation(t *testing.T) {
	sb := &stubBuilder{gate: make(chan struct{})}
	r := NewRegistry(context.Background(), 2, sb.build, nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Get(ctx, "slow")
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The build itself was not canceled; once released its result serves
	// future requests.
	close(sb.gate)
	if _, err := r.Get(context.Background(), "slow"); err != nil {
		t.Fatal(err)
	}
	if got := sb.builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1 (canceled waiter did not kill the build)", got)
	}
}

func TestRegistryClose(t *testing.T) {
	sb := &stubBuilder{}
	r := NewRegistry(context.Background(), 2, sb.build, nil)
	if _, err := r.Get(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := r.Get(context.Background(), "a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if got := r.Resident(); len(got) != 0 {
		t.Fatalf("resident after close = %v", got)
	}
}

// TestRegistrySingleFlightRealBuild pins the acceptance criterion with
// the production builder: concurrent cold requests for one CUT trigger
// exactly one dictionary build.
func TestRegistrySingleFlightRealBuild(t *testing.T) {
	var m Metrics
	build := NewEntryBuilder(BuildConfig{Workers: 1, Freqs: []float64{0.56, 4.55}}, &m)
	r := NewRegistry(context.Background(), 2, build, &m)
	defer r.Close()

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Get(context.Background(), "nf-lowpass-7")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := m.Builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want exactly 1", got)
	}
}
