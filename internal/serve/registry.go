// Package serve is the fault-diagnosis serving layer: a dictionary
// registry that amortizes per-CUT artifact builds (dictionary grid, test
// vector, trajectory map) across requests, a micro-batching scheduler
// that coalesces concurrent diagnose requests into single engine passes,
// and the HTTP/JSON front end the ftserve binary exposes. It sits on top
// of the public repro API — the paper's operational flow (compile the
// fault dictionary once, diagnose many unknown faults against it) as a
// long-lived process.
package serve

import (
	"container/list"
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/rerr"
)

// ErrUnknownCUT marks a request for a circuit under test the registry
// cannot resolve (no such benchmark). Maps to 404.
var ErrUnknownCUT = errors.New("unknown circuit under test")

// ErrClosed marks a request arriving after shutdown began. Maps to 503.
var ErrClosed = errors.New("server shutting down")

// DefaultCapacity is the registry's default LRU bound.
const DefaultCapacity = 8

// BuildFunc constructs the serving state for one CUT. The context is the
// registry's lifetime context, not a request context: a build triggered
// by one request outlives that request's cancellation, because every
// concurrent and future request for the CUT shares its result.
type BuildFunc func(ctx context.Context, name string) (*Entry, error)

// Registry is the dictionary registry: it holds per-CUT serving entries
// behind an LRU, building them lazily on first request with single-flight
// deduplication — N concurrent cold requests for one CUT trigger exactly
// one build, and the other N−1 wait for it.
type Registry struct {
	build    BuildFunc
	capacity int
	ctx      context.Context // lifetime context handed to builds
	metrics  *Metrics
	logger   *slog.Logger // nil = silent; set by the server from its Config

	mu       sync.Mutex
	order    *list.List               // front = most recently used; values are *Entry
	resident map[string]*list.Element // name → order element
	inflight map[string]*buildCall
	closed   bool
	// retired accumulates the engine path counters of entries that left
	// residency (evicted, or released at shutdown), so EngineStats keeps
	// counting monotonically across the LRU churn.
	retired engine.PathStatsSnapshot
}

type buildCall struct {
	done  chan struct{} // closed when the build finishes
	entry *Entry
	err   error
}

// NewRegistry builds a registry. ctx bounds the lifetime of entry builds
// (pass the server's base context); capacity ≤ 0 means DefaultCapacity.
func NewRegistry(ctx context.Context, capacity int, build BuildFunc, m *Metrics) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if m == nil {
		m = &Metrics{}
	}
	return &Registry{
		build:    build,
		capacity: capacity,
		ctx:      ctx,
		metrics:  m,
		order:    list.New(),
		resident: make(map[string]*list.Element),
		inflight: make(map[string]*buildCall),
	}
}

// Get returns the serving entry for a CUT, building it on first use.
// Concurrent cold calls coalesce onto one build; ctx cancellation
// releases this caller (the build itself continues for the others, and
// its result is cached for future requests).
func (r *Registry) Get(ctx context.Context, name string) (*Entry, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if el, ok := r.resident[name]; ok {
		r.order.MoveToFront(el)
		e := el.Value.(*Entry)
		r.mu.Unlock()
		return e, nil
	}
	c, ok := r.inflight[name]
	if !ok {
		c = &buildCall{done: make(chan struct{})}
		r.inflight[name] = c
		go r.runBuild(name, c)
	}
	r.mu.Unlock()

	select {
	case <-c.done:
		return c.entry, c.err
	case <-ctx.Done():
		return nil, rerr.Canceled(ctx.Err())
	}
}

// runBuild executes one single-flight build and publishes its result.
func (r *Registry) runBuild(name string, c *buildCall) {
	r.metrics.Builds.Add(1)
	buildStart := time.Now()
	entry, err := r.build(r.ctx, name)
	buildDur := time.Since(buildStart)
	r.metrics.BuildSeconds.Observe(buildDur)
	if err != nil {
		r.metrics.BuildErrors.Add(1)
		if r.logger != nil {
			r.logger.Warn("build failed", "cut", name, "seconds", buildDur.Seconds(), "err", err)
		}
	} else if r.logger != nil {
		r.logger.Info("build", "cut", name, "origin", entry.Origin, "seconds", buildDur.Seconds())
	}

	var evicted []*Entry
	r.mu.Lock()
	delete(r.inflight, name)
	if err == nil {
		if r.closed {
			// Shutdown raced the build: don't admit the entry, release it.
			evicted = append(evicted, entry)
			entry, err = nil, ErrClosed
		} else {
			el := r.order.PushFront(entry)
			r.resident[name] = el
			r.metrics.Resident.Store(int64(len(r.resident)))
			for r.order.Len() > r.capacity {
				back := r.order.Back()
				old := back.Value.(*Entry)
				r.order.Remove(back)
				delete(r.resident, old.Name)
				r.metrics.Evictions.Add(1)
				r.metrics.Resident.Store(int64(len(r.resident)))
				evicted = append(evicted, old)
			}
		}
	}
	for _, e := range evicted {
		if s, ok := e.engineStats(); ok {
			r.retired.Add(s)
		}
	}
	c.entry, c.err = entry, err
	r.mu.Unlock()
	close(c.done)

	// Release evicted entries outside the lock: their batchers drain
	// queued requests before stopping, which must not block Get calls.
	for _, e := range evicted {
		if r.logger != nil {
			r.logger.Info("evict", "cut", e.Name)
		}
		e.close()
	}
}

// EngineStats aggregates the engine path counters — factorizations,
// SMW solves, fallbacks, memo traffic — across every resident entry
// plus everything already retired from the LRU, giving the service-wide
// view /metrics and /v1/stats export.
func (r *Registry) EngineStats() engine.PathStatsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.retired
	for el := r.order.Front(); el != nil; el = el.Next() {
		if s, ok := el.Value.(*Entry).engineStats(); ok {
			total.Add(s)
		}
	}
	return total
}

// Resident lists the loaded CUT names, most recently used first.
func (r *Registry) Resident() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry).Name)
	}
	return out
}

// Close stops the registry: future Gets fail with ErrClosed and every
// resident entry's batcher is drained and stopped. In-flight builds
// complete but their entries are released instead of admitted.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var entries []*Entry
	for el := r.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		if s, ok := e.engineStats(); ok {
			r.retired.Add(s)
		}
		entries = append(entries, e)
	}
	r.order.Init()
	r.resident = make(map[string]*list.Element)
	r.metrics.Resident.Store(0)
	r.mu.Unlock()

	for _, e := range entries {
		e.close()
	}
}
