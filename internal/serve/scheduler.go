package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/geometry"
	"repro/internal/rerr"
)

// ErrQueueFull marks a request bounced off a full batcher queue — the
// service is overloaded for this CUT. Maps to 503.
var ErrQueueFull = errors.New("diagnose queue full")

// SchedulerConfig tunes one entry's micro-batcher.
type SchedulerConfig struct {
	// FlushWindow is how long the batcher waits after the first queued
	// request for more to coalesce (default 2ms). Requests arriving
	// within the window share one engine pass.
	FlushWindow time.Duration
	// MaxBatch caps a single flush (default 64); excess requests spill
	// over into the next batch.
	MaxBatch int
	// QueueSize bounds the request queue (default 256); submissions
	// beyond it fail fast with ErrQueueFull.
	QueueSize int

	// after is the flush-timer source, injectable by tests to drive the
	// window deterministically. nil means time.After.
	after func(time.Duration) <-chan time.Time
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.FlushWindow <= 0 {
		c.FlushWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.after == nil {
		c.after = time.After
	}
	return c
}

// Request is one diagnose request flowing through a batcher: a
// parametric fault (single, or a multi-fault injection via Faults) to
// simulate-and-diagnose, or an observed signature point to diagnose
// directly.
type Request struct {
	// Fault is the single parametric fault to diagnose (used when Point
	// is nil and Faults is empty).
	Fault repro.Fault
	// Faults, when non-empty, is a simultaneous multi-fault injection:
	// every part is applied at once and the combined response diagnosed.
	// Mutually exclusive with Fault and Point.
	Faults []repro.Fault
	// Point, when non-nil, is an observed signature point in the test
	// vector space (dimension must match the entry's test vector).
	Point []float64
	// RejectRatio, when > 0, additionally reports whether the diagnosis
	// should be rejected as out-of-model at this ratio.
	RejectRatio float64

	ctx  context.Context
	resp chan Response
	// enqueued is the queue-accept instant, stamped before the queue send
	// (the worker reads it at flush time) — the base of the queue-wait
	// and end-to-end latency histograms.
	enqueued time.Time
	// set is the validated fault hypothesis (single faults boxed, multis
	// constructed), filled by validate for non-point requests.
	set repro.FaultSet
	// settled guards the InFlight decrement: a request accepted into the
	// queue is settled exactly once, by whichever side answers it first
	// (flush processing, the shutdown sweep, or the caller detecting a
	// dead worker).
	settled atomic.Bool
}

// Response answers one Request.
type Response struct {
	// Result is the ranked diagnosis (nil on error).
	Result *repro.DiagnosisResult
	// Rejected reports the out-of-model decision when the request set a
	// rejection ratio.
	Rejected *bool
	// Prob is the probabilistic diagnosis of the same observed point —
	// likelihood-ranked hypotheses, confidence, ambiguity group — filled
	// when the entry serves a cloud model (nil otherwise). Scored after
	// the shared batched solve, outside it, so the micro-batching path
	// is unchanged.
	Prob *repro.ProbabilisticResult
	// BatchSize is the number of requests in the flush that served this
	// one — observability for the coalescing behavior.
	BatchSize int
	// Err is the request's failure, if any.
	Err error
}

// batcher is one entry's micro-batching scheduler: a bounded queue
// drained by a single worker goroutine that coalesces concurrent
// requests into one batched diagnose pass per flush.
type batcher struct {
	entry   *Entry
	cfg     SchedulerConfig
	ctx     context.Context // serving lifetime: batch solves run under it
	queue   chan *Request
	closing chan struct{}
	done    chan struct{}
	metrics *Metrics

	// collecting gauges the size of the batch currently being gathered —
	// observability for tests that drive the flush window by hand.
	collecting atomic.Int64
}

func newBatcher(ctx context.Context, e *Entry, cfg SchedulerConfig, m *Metrics) *batcher {
	if m == nil {
		m = &Metrics{}
	}
	cfg = cfg.withDefaults()
	b := &batcher{
		entry:   e,
		cfg:     cfg,
		ctx:     ctx,
		queue:   make(chan *Request, cfg.QueueSize),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	b.metrics = m
	go b.run()
	return b
}

// Diagnose validates a request, queues it, and waits for its response.
// A full queue fails fast with ErrQueueFull; a context canceled while
// queued returns an error wrapping rerr.ErrCanceled (the batcher also
// skips the request at flush time, so no work is wasted on it).
func (b *batcher) Diagnose(ctx context.Context, req *Request) Response {
	if err := b.validate(req); err != nil {
		return Response{Err: err}
	}
	req.ctx = ctx
	req.resp = make(chan Response, 1) // buffered: a flush never blocks on an abandoned request
	select {
	case <-b.closing:
		return Response{Err: ErrClosed}
	default:
	}
	req.enqueued = time.Now()
	select {
	case b.queue <- req:
		b.metrics.Requests.Add(1)
		b.metrics.InFlight.Add(1)
	default:
		b.metrics.QueueRejects.Add(1)
		return Response{Err: ErrQueueFull}
	}
	// Every accepted request observes end-to-end latency exactly once,
	// whichever way it resolves — so request_seconds_count tracks
	// requests_total.
	defer func() { b.metrics.RequestSeconds.Observe(time.Since(req.enqueued)) }()
	select {
	case resp := <-req.resp:
		return resp
	case <-ctx.Done():
		return Response{Err: rerr.Canceled(ctx.Err())}
	case <-b.done:
		// The worker exited (eviction or shutdown) — the response may
		// have raced in just before, otherwise the request is refused.
		select {
		case resp := <-req.resp:
			return resp
		default:
			b.settle(req)
			return Response{Err: ErrClosed}
		}
	}
}

// settle decrements InFlight exactly once per accepted request, however
// many shutdown/eviction paths observe it.
func (b *batcher) settle(req *Request) {
	if req.settled.CompareAndSwap(false, true) {
		b.metrics.InFlight.Add(-1)
	}
}

// validate rejects malformed requests before they reach a batch, so one
// bad request cannot poison its neighbors' shared solve. Non-point
// requests leave their validated fault hypothesis in req.set.
func (b *batcher) validate(req *Request) error {
	if req.Point != nil {
		if req.Fault.Component != "" || len(req.Faults) > 0 {
			return fmt.Errorf("%w: request mixes a point with fault injections", rerr.ErrBadConfig)
		}
		if len(req.Point) != len(b.entry.Omegas) {
			return fmt.Errorf("%w: point dimension %d, test vector dimension %d",
				rerr.ErrBadConfig, len(req.Point), len(b.entry.Omegas))
		}
		for _, v := range req.Point {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite point coordinate", rerr.ErrBadConfig)
			}
		}
		return nil
	}
	if len(req.Faults) > 0 {
		if req.Fault.Component != "" {
			return fmt.Errorf("%w: request mixes fault and faults", rerr.ErrBadConfig)
		}
		for _, f := range req.Faults {
			if err := b.validateFault(f); err != nil {
				return err
			}
			// Every part of a faults injection is a genuine deviation —
			// the same rule NewMultiFault applies to k >= 2 — so a
			// one-element array cannot smuggle in a golden part the
			// multi constructor would reject.
			if f.Deviation == 0 {
				return fmt.Errorf("%w: faults part %q has zero deviation (use the golden circuit, not a zero fault)", rerr.ErrBadConfig, f.Component)
			}
		}
		if len(req.Faults) == 1 {
			req.set = req.Faults[0]
			return nil
		}
		set, err := repro.NewMultiFault(req.Faults...)
		if err != nil {
			return fmt.Errorf("%w: %v", rerr.ErrBadConfig, err)
		}
		req.set = set
		return nil
	}
	f := req.Fault
	if f.Component == "" {
		return fmt.Errorf("%w: request needs a fault or a point", rerr.ErrBadConfig)
	}
	if err := b.validateFault(f); err != nil {
		return err
	}
	req.set = f
	return nil
}

// validateFault checks one injected fault part.
func (b *batcher) validateFault(f repro.Fault) error {
	if f.Component == "" {
		return fmt.Errorf("%w: fault part without a component", rerr.ErrBadConfig)
	}
	if math.IsNaN(f.Deviation) || math.IsInf(f.Deviation, 0) || f.Deviation <= -1 {
		return fmt.Errorf("%w: fault deviation %g out of range (need finite, > -1)", rerr.ErrBadConfig, f.Deviation)
	}
	if !b.knownComponent(f.Component) {
		return fmt.Errorf("%w: %q is not a fault target of %s",
			rerr.ErrUnknownComponent, f.Component, b.entry.Name)
	}
	return nil
}

func (b *batcher) knownComponent(name string) bool {
	for _, c := range b.entry.Session.CUT().Passives {
		if c == name {
			return true
		}
	}
	return false
}

// stop drains the queue — every queued request is still answered — and
// waits for the worker to exit. Requests that race the worker's exit are
// swept with ErrClosed so no caller is left waiting.
func (b *batcher) stop() {
	select {
	case <-b.closing:
	default:
		close(b.closing)
	}
	<-b.done
	for {
		select {
		case req := <-b.queue:
			b.settle(req)
			req.resp <- Response{Err: ErrClosed}
		default:
			return
		}
	}
}

// run is the worker loop: wait for a request, collect a batch, process
// it, repeat. On shutdown it drains whatever is queued (in maxBatch-sized
// flushes, without waiting out flush windows) before exiting.
func (b *batcher) run() {
	defer close(b.done)
	for {
		select {
		case req := <-b.queue:
			b.process(b.collect(req))
		case <-b.closing:
			for {
				select {
				case req := <-b.queue:
					b.process(b.collectNoWait(req))
				default:
					return
				}
			}
		}
	}
}

// collect gathers a batch: the first request plus everything arriving
// within the flush window, capped at MaxBatch. Requests beyond the cap
// stay queued and spill over into the next batch.
func (b *batcher) collect(first *Request) []*Request {
	batch := []*Request{first}
	b.collecting.Store(1)
	defer b.collecting.Store(0)
	if b.cfg.MaxBatch == 1 {
		return batch
	}
	flush := b.cfg.after(b.cfg.FlushWindow)
	for len(batch) < b.cfg.MaxBatch {
		select {
		case req := <-b.queue:
			batch = append(batch, req)
			b.collecting.Store(int64(len(batch)))
		case <-flush:
			return batch
		case <-b.closing:
			return batch
		}
	}
	return batch
}

// collectNoWait gathers whatever is immediately queued, for shutdown
// draining.
func (b *batcher) collectNoWait(first *Request) []*Request {
	batch := []*Request{first}
	for len(batch) < b.cfg.MaxBatch {
		select {
		case req := <-b.queue:
			batch = append(batch, req)
		default:
			return batch
		}
	}
	return batch
}

// process serves one flushed batch: requests whose context already died
// are answered ErrCanceled without work; every live fault request shares
// one batched signature solve; point requests are projected directly.
func (b *batcher) process(batch []*Request) {
	flushStart := time.Now()
	b.metrics.Batches.Add(1)
	b.metrics.BatchedRequests.Add(int64(len(batch)))
	defer func() {
		for _, req := range batch {
			b.settle(req)
		}
		b.metrics.BatchFlushSeconds.Observe(time.Since(flushStart))
	}()

	live := make([]*Request, 0, len(batch))
	for _, req := range batch {
		// Queue wait is observed for every flushed member — canceled ones
		// included — so queue_wait_seconds_count tracks
		// batched_requests_total.
		b.metrics.QueueWaitSeconds.Observe(flushStart.Sub(req.enqueued))
		if err := req.ctx.Err(); err != nil {
			b.metrics.Canceled.Add(1)
			req.resp <- Response{Err: rerr.Canceled(err)}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	n := len(live)

	var sets []repro.FaultSet
	var faultReqs []*Request
	for _, req := range live {
		if req.Point == nil {
			sets = append(sets, req.set)
			faultReqs = append(faultReqs, req)
		} else {
			b.respond(req, b.diagnosePoint(req), n)
		}
	}
	if len(sets) == 0 {
		return
	}

	// One engine pass for the whole flush — the micro-batching payoff.
	// Single and multi-fault injections share it: the rank-k batch path
	// keeps rank-1 items on their fast path.
	solveStart := time.Now()
	results, err := b.entry.Session.DiagnoseFaultSets(b.ctx, b.entry.Diagnoser, sets)
	b.metrics.EngineSolveSeconds.Observe(time.Since(solveStart))
	if err == nil {
		for i, req := range faultReqs {
			b.respond(req, Response{Result: results[i]}, n)
		}
		return
	}
	if len(sets) == 1 {
		b.respond(faultReqs[0], Response{Err: err}, n)
		return
	}
	// The shared solve failed (e.g. one fault drives the system
	// singular). Retry each fault alone so one poisonous request cannot
	// fail its neighbors.
	for _, req := range faultReqs {
		retryStart := time.Now()
		res, rerr1 := b.entry.Session.DiagnoseFaultSets(b.ctx, b.entry.Diagnoser, []repro.FaultSet{req.set})
		b.metrics.EngineSolveSeconds.Observe(time.Since(retryStart))
		if rerr1 != nil {
			b.respond(req, Response{Err: rerr1}, n)
			continue
		}
		b.respond(req, Response{Result: res[0]}, n)
	}
}

// diagnosePoint projects an observed signature point — no simulation.
func (b *batcher) diagnosePoint(req *Request) Response {
	res, err := b.entry.Diagnoser.Diagnose(geometry.VecN(req.Point))
	if err != nil {
		return Response{Err: err}
	}
	return Response{Result: res}
}

// respond finalizes one response: stamps the batch size, applies the
// rejection decision, scores the cloud model when the entry serves one,
// and delivers.
func (b *batcher) respond(req *Request, resp Response, batchSize int) {
	resp.BatchSize = batchSize
	if resp.Err == nil && req.RejectRatio > 0 {
		rej := resp.Result.Rejected(b.entry.Diagnoser.Extent(), req.RejectRatio)
		resp.Rejected = &rej
	}
	if resp.Err == nil && b.entry.Clouds != nil {
		prob, err := b.entry.Diagnoser.DiagnoseProbabilistic(b.entry.Clouds, resp.Result.Point)
		if err == nil {
			resp.Prob = prob
		}
		// A scoring failure (dimension drift) degrades to the classic
		// reply rather than failing a diagnosis that already succeeded.
	}
	req.resp <- resp
}
