package serve

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics holds the service's counters and gauges. All fields are
// atomics, updated lock-free from request handlers, batcher workers, and
// registry builds; WritePrometheus renders a consistent-enough snapshot
// in the Prometheus text exposition format.
type Metrics struct {
	// Requests counts diagnose requests accepted into a queue.
	Requests atomic.Int64
	// Batches counts micro-batches flushed through the engine.
	Batches atomic.Int64
	// BatchedRequests counts requests served through flushed batches;
	// BatchedRequests/Batches is the realized coalescing factor.
	BatchedRequests atomic.Int64
	// Builds counts dictionary-registry entry builds (cold starts).
	Builds atomic.Int64
	// BuildErrors counts failed entry builds.
	BuildErrors atomic.Int64
	// WarmStarts counts entries restored from artifacts instead of
	// simulated.
	WarmStarts atomic.Int64
	// Evictions counts LRU evictions.
	Evictions atomic.Int64
	// QueueRejects counts requests bounced off a full queue.
	QueueRejects atomic.Int64
	// Canceled counts requests whose context died before their flush.
	Canceled atomic.Int64
	// Errors counts requests answered with a non-2xx status.
	Errors atomic.Int64
	// InFlight gauges requests currently inside a queue or batch.
	InFlight atomic.Int64
	// Resident gauges registry entries currently loaded.
	Resident atomic.Int64
}

// WritePrometheus renders every metric in the Prometheus text format
// under the ftserve_ namespace.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP ftserve_%s %s\n# TYPE ftserve_%s counter\nftserve_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP ftserve_%s %s\n# TYPE ftserve_%s gauge\nftserve_%s %d\n", name, help, name, name, v)
	}
	counter("requests_total", "diagnose requests accepted", m.Requests.Load())
	counter("batches_total", "micro-batches flushed", m.Batches.Load())
	counter("batched_requests_total", "requests served through batches", m.BatchedRequests.Load())
	counter("builds_total", "registry entry builds", m.Builds.Load())
	counter("build_errors_total", "failed registry entry builds", m.BuildErrors.Load())
	counter("warm_starts_total", "entries restored from artifacts", m.WarmStarts.Load())
	counter("evictions_total", "LRU evictions", m.Evictions.Load())
	counter("queue_rejects_total", "requests bounced off a full queue", m.QueueRejects.Load())
	counter("canceled_total", "requests canceled before flush", m.Canceled.Load())
	counter("errors_total", "requests answered with an error", m.Errors.Load())
	gauge("inflight", "requests inside a queue or batch", m.InFlight.Load())
	gauge("resident_entries", "registry entries loaded", m.Resident.Load())
}
