package serve

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Metrics holds the service's counters, gauges, and latency histograms.
// All fields are lock-free atomics, updated from request handlers,
// batcher workers, and registry builds; WritePrometheus renders one
// consistent snapshot in the Prometheus text exposition format.
//
// Counter/histogram pairing is deliberate and exact: every histogram
// observation happens after its paired counter increment on the same
// code path, so in a quiescent server request_seconds_count ==
// requests_total, queue_wait_seconds_count == batched_requests_total,
// batch_flush_seconds_count == batches_total, and build_seconds_count
// == builds_total — the invariants TestMetricsPrometheusInvariants
// pins. Under concurrent load a snapshot reads histograms before
// counters, so each _count is at most its _total, never ahead of it.
type Metrics struct {
	// Requests counts diagnose requests accepted into a queue.
	Requests atomic.Int64
	// Batches counts micro-batches flushed through the engine.
	Batches atomic.Int64
	// BatchedRequests counts requests served through flushed batches;
	// BatchedRequests/Batches is the realized coalescing factor.
	BatchedRequests atomic.Int64
	// Builds counts dictionary-registry entry builds (cold starts).
	Builds atomic.Int64
	// BuildErrors counts failed entry builds.
	BuildErrors atomic.Int64
	// WarmStarts counts entries restored from artifacts instead of
	// simulated.
	WarmStarts atomic.Int64
	// Evictions counts LRU evictions.
	Evictions atomic.Int64
	// QueueRejects counts requests bounced off a full queue.
	QueueRejects atomic.Int64
	// Canceled counts requests whose context died before their flush.
	Canceled atomic.Int64
	// Errors counts requests answered with a non-2xx status.
	Errors atomic.Int64
	// InFlight gauges requests currently inside a queue or batch.
	InFlight atomic.Int64
	// Resident gauges registry entries currently loaded.
	Resident atomic.Int64

	// RequestSeconds is end-to-end request latency: queue accept to
	// response delivery, observed once per accepted request on every
	// outcome (answered, canceled, swept at shutdown).
	RequestSeconds obs.Histogram
	// QueueWaitSeconds is time spent queued before a flush picked the
	// request up, observed once per batch member at flush start.
	QueueWaitSeconds obs.Histogram
	// BatchFlushSeconds is the duration of one whole batch flush
	// (filtering, shared solve, response scoring), one observation per
	// batch.
	BatchFlushSeconds obs.Histogram
	// EngineSolveSeconds times each batched DiagnoseFaultSets engine
	// pass, including per-fault retries after a poisoned shared solve.
	EngineSolveSeconds obs.Histogram
	// BuildSeconds times registry entry builds, failures included.
	BuildSeconds obs.Histogram
}

// MetricsSnapshot is a plain-value copy of every metric, JSON-ready for
// the /v1/stats endpoint. Field names mirror the Prometheus series.
type MetricsSnapshot struct {
	Requests        int64 `json:"requests_total"`
	Batches         int64 `json:"batches_total"`
	BatchedRequests int64 `json:"batched_requests_total"`
	Builds          int64 `json:"builds_total"`
	BuildErrors     int64 `json:"build_errors_total"`
	WarmStarts      int64 `json:"warm_starts_total"`
	Evictions       int64 `json:"evictions_total"`
	QueueRejects    int64 `json:"queue_rejects_total"`
	Canceled        int64 `json:"canceled_total"`
	Errors          int64 `json:"errors_total"`
	InFlight        int64 `json:"inflight"`
	Resident        int64 `json:"resident_entries"`

	RequestSeconds     obs.Snapshot `json:"request_seconds"`
	QueueWaitSeconds   obs.Snapshot `json:"queue_wait_seconds"`
	BatchFlushSeconds  obs.Snapshot `json:"batch_flush_seconds"`
	EngineSolveSeconds obs.Snapshot `json:"engine_solve_seconds"`
	BuildSeconds       obs.Snapshot `json:"build_seconds"`
}

// Snapshot captures every metric. Histograms are read before counters:
// each counter increments strictly before its paired histogram
// observation, so this order guarantees every histogram _count is at
// most its paired _total even while requests race the read.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		RequestSeconds:     m.RequestSeconds.Snapshot(),
		QueueWaitSeconds:   m.QueueWaitSeconds.Snapshot(),
		BatchFlushSeconds:  m.BatchFlushSeconds.Snapshot(),
		EngineSolveSeconds: m.EngineSolveSeconds.Snapshot(),
		BuildSeconds:       m.BuildSeconds.Snapshot(),
	}
	s.Requests = m.Requests.Load()
	s.Batches = m.Batches.Load()
	s.BatchedRequests = m.BatchedRequests.Load()
	s.Builds = m.Builds.Load()
	s.BuildErrors = m.BuildErrors.Load()
	s.WarmStarts = m.WarmStarts.Load()
	s.Evictions = m.Evictions.Load()
	s.QueueRejects = m.QueueRejects.Load()
	s.Canceled = m.Canceled.Load()
	s.Errors = m.Errors.Load()
	s.InFlight = m.InFlight.Load()
	s.Resident = m.Resident.Load()
	return s
}

// WritePrometheus renders every metric in the Prometheus text format
// under the ftserve_ namespace, from one Snapshot.
func (m *Metrics) WritePrometheus(w io.Writer) {
	s := m.Snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP ftserve_%s %s\n# TYPE ftserve_%s counter\nftserve_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP ftserve_%s %s\n# TYPE ftserve_%s gauge\nftserve_%s %d\n", name, help, name, name, v)
	}
	hist := func(name, help string, hs obs.Snapshot) {
		obs.WriteSnapshotPrometheus(w, "ftserve_"+name, help, hs)
	}
	counter("requests_total", "diagnose requests accepted", s.Requests)
	counter("batches_total", "micro-batches flushed", s.Batches)
	counter("batched_requests_total", "requests served through batches", s.BatchedRequests)
	counter("builds_total", "registry entry builds", s.Builds)
	counter("build_errors_total", "failed registry entry builds", s.BuildErrors)
	counter("warm_starts_total", "entries restored from artifacts", s.WarmStarts)
	counter("evictions_total", "LRU evictions", s.Evictions)
	counter("queue_rejects_total", "requests bounced off a full queue", s.QueueRejects)
	counter("canceled_total", "requests canceled before flush", s.Canceled)
	counter("errors_total", "requests answered with an error", s.Errors)
	gauge("inflight", "requests inside a queue or batch", s.InFlight)
	gauge("resident_entries", "registry entries loaded", s.Resident)
	hist("request_seconds", "end-to-end request latency (accept to response)", s.RequestSeconds)
	hist("queue_wait_seconds", "time queued before a flush", s.QueueWaitSeconds)
	hist("batch_flush_seconds", "duration of one batch flush", s.BatchFlushSeconds)
	hist("engine_solve_seconds", "batched engine diagnose pass duration", s.EngineSolveSeconds)
	hist("build_seconds", "registry entry build duration", s.BuildSeconds)
}

// WriteEnginePrometheus renders aggregated engine path counters (see
// Registry.EngineStats) under the ftserve_engine_ namespace — appended
// to the /metrics payload after the serving metrics.
func WriteEnginePrometheus(w io.Writer, s engine.PathStatsSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP ftserve_engine_%s %s\n# TYPE ftserve_engine_%s counter\nftserve_engine_%s %d\n", name, help, name, name, v)
	}
	counter("dense_factors_total", "dense golden/fallback factorizations", s.DenseFactors)
	counter("sparse_factors_total", "sparse golden/fallback factorizations", s.SparseFactors)
	counter("rank1_solves_total", "rank-1 Sherman-Morrison item solves", s.Rank1Solves)
	counter("rankk_solves_total", "rank-k Woodbury item solves", s.RankKSolves)
	counter("exact_fallbacks_total", "items re-solved by exact refactorization", s.ExactFallbacks)
	counter("memo_hits_total", "fault-resolution memo hits", s.MemoHits)
	counter("memo_misses_total", "fault-resolution memo misses", s.MemoMisses)
	counter("supernodal_refactors_total", "golden refactorizations on the supernodal numeric phase", s.SupernodalRefactors)
	counter("partial_refactors_total", "exact fallbacks served by partial refactorization", s.PartialRefactors)
	counter("partial_refactor_columns_total", "matrix columns re-eliminated by partial refactors", s.PartialRefactorColumns)
	counter("dense_fallback_exact_total", "dense factorizations after a singular partial refactor", s.DenseFallbackExact)
	counter("dense_fallback_singular_total", "dense golden factorizations after a singular sparse refactor", s.DenseFallbackSingular)
}
