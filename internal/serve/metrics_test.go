package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// promSeries is a parsed Prometheus text payload: plain series by name
// (labels included in the key) plus histogram buckets in rendered order.
type promSeries struct {
	values  map[string]float64
	buckets map[string][]promBucket // histogram name → buckets in order
}

type promBucket struct {
	le    string
	count float64
}

// parseProm parses the Prometheus text format, failing the test on any
// line that is neither a comment nor a `name[{labels}] value` sample.
func parseProm(t *testing.T, text string) promSeries {
	t.Helper()
	out := promSeries{values: map[string]float64{}, buckets: map[string][]promBucket{}}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valueStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		if base, rest, isBucket := strings.Cut(name, "_bucket{le="); isBucket {
			le := strings.TrimSuffix(rest, "}")
			le, err = strconv.Unquote(le)
			if err != nil {
				t.Fatalf("bad le label in %q: %v", line, err)
			}
			out.buckets[base] = append(out.buckets[base], promBucket{le: le, count: v})
			continue
		}
		out.values[name] = v
	}
	return out
}

// histogramCounterPairs maps each latency histogram to the counter its
// _count must track: the observation happens on the same code path,
// after the counter increment.
var histogramCounterPairs = map[string]string{
	"ftserve_request_seconds":     "ftserve_requests_total",
	"ftserve_queue_wait_seconds":  "ftserve_batched_requests_total",
	"ftserve_batch_flush_seconds": "ftserve_batches_total",
	"ftserve_build_seconds":       "ftserve_builds_total",
}

// checkPromInvariants verifies structural invariants of a /metrics
// payload: every histogram's buckets are cumulative (monotone
// non-decreasing) ending in le="+Inf" equal to its _count, and every
// histogram _count is at most its paired _total (equal when quiescent,
// which exact reports).
func checkPromInvariants(t *testing.T, p promSeries, exact bool) {
	t.Helper()
	for hist, bs := range p.buckets {
		prev := -1.0
		for _, b := range bs {
			if b.count < prev {
				t.Errorf("%s buckets not monotone: le=%s count %g < %g", hist, b.le, b.count, prev)
			}
			prev = b.count
		}
		if len(bs) == 0 || bs[len(bs)-1].le != "+Inf" {
			t.Errorf("%s does not end in a +Inf bucket", hist)
			continue
		}
		count, ok := p.values[hist+"_count"]
		if !ok {
			t.Errorf("%s has buckets but no _count", hist)
			continue
		}
		if bs[len(bs)-1].count != count {
			t.Errorf("%s +Inf bucket %g != _count %g", hist, bs[len(bs)-1].count, count)
		}
		if _, ok := p.values[hist+"_sum"]; !ok {
			t.Errorf("%s has no _sum", hist)
		}
	}
	for hist, total := range histogramCounterPairs {
		c, ok := p.values[hist+"_count"]
		if !ok {
			t.Errorf("missing %s_count", hist)
			continue
		}
		tv, ok := p.values[total]
		if !ok {
			t.Errorf("missing %s", total)
			continue
		}
		if exact && c != tv {
			t.Errorf("%s_count = %g, want %s = %g", hist, c, total, tv)
		}
		if c > tv {
			t.Errorf("%s_count = %g ran ahead of %s = %g", hist, c, total, tv)
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// fetchQuiescentMetrics polls /metrics until the deferred batch-flush
// observation (recorded after responses are delivered) has landed, so
// the paired-counter invariants can be asserted exactly.
func fetchQuiescentMetrics(t *testing.T, url string) promSeries {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p := parseProm(t, string(getBody(t, url+"/metrics")))
		if p.values["ftserve_batch_flush_seconds_count"] == p.values["ftserve_batches_total"] {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never quiesced: flush count %g, batches %g",
				p.values["ftserve_batch_flush_seconds_count"], p.values["ftserve_batches_total"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// statsPayload mirrors the /v1/stats reply shape for decoding.
type statsPayload struct {
	UptimeSeconds int64 `json:"uptime_seconds"`
	Metrics       struct {
		Requests        int64 `json:"requests_total"`
		Batches         int64 `json:"batches_total"`
		BatchedRequests int64 `json:"batched_requests_total"`
		Builds          int64 `json:"builds_total"`
		RequestSeconds  struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"request_seconds"`
		BuildSeconds struct {
			Count int64 `json:"count"`
		} `json:"build_seconds"`
	} `json:"metrics"`
	Engine struct {
		DenseFactors           int64 `json:"dense_factors"`
		SparseFactors          int64 `json:"sparse_factors"`
		Rank1Solves            int64 `json:"rank1_solves"`
		ExactFallbacks         int64 `json:"exact_fallbacks"`
		MemoMisses             int64 `json:"memo_misses"`
		SupernodalRefactors    int64 `json:"supernodal_refactors"`
		PartialRefactors       int64 `json:"partial_refactors"`
		PartialRefactorColumns int64 `json:"partial_refactor_columns"`
		DenseFallbackExact     int64 `json:"dense_fallback_exact"`
		DenseFallbackSingular  int64 `json:"dense_fallback_singular"`
	} `json:"engine"`
}

// TestServerMetricsAndStats is the golden observability test: after one
// diagnosis, /metrics exposes the latency histograms and engine path
// counters with all structural invariants holding exactly, and
// /v1/stats reports the same story as JSON.
func TestServerMetricsAndStats(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/diagnose", map[string]any{
		"cut":   "nf-lowpass-7",
		"fault": map[string]any{"component": "R3", "deviation": 0.25},
	})
	if status != 200 {
		t.Fatalf("diagnose status = %d: %s", status, body)
	}

	p := fetchQuiescentMetrics(t, ts.URL)
	checkPromInvariants(t, p, true)
	for _, series := range []string{
		"ftserve_requests_total",
		"ftserve_request_seconds_count",
		"ftserve_queue_wait_seconds_count",
		"ftserve_batch_flush_seconds_count",
		"ftserve_engine_solve_seconds_count",
		"ftserve_build_seconds_count",
		"ftserve_engine_dense_factors_total",
		"ftserve_engine_rank1_solves_total",
		"ftserve_engine_memo_misses_total",
		"ftserve_engine_supernodal_refactors_total",
		"ftserve_engine_partial_refactors_total",
		"ftserve_engine_partial_refactor_columns_total",
		"ftserve_engine_dense_fallback_exact_total",
		"ftserve_engine_dense_fallback_singular_total",
	} {
		if _, ok := p.values[series]; !ok {
			t.Errorf("missing series %s", series)
		}
	}
	if p.values["ftserve_requests_total"] != 1 || p.values["ftserve_request_seconds_count"] != 1 {
		t.Errorf("one request should yield requests_total 1 (got %g) and request_seconds_count 1 (got %g)",
			p.values["ftserve_requests_total"], p.values["ftserve_request_seconds_count"])
	}
	if p.values["ftserve_engine_solve_seconds_count"] < 1 {
		t.Errorf("engine_solve_seconds_count = %g, want >= 1", p.values["ftserve_engine_solve_seconds_count"])
	}
	// The entry build simulated the dictionary, so the engine counters
	// must show real work.
	if p.values["ftserve_engine_dense_factors_total"] < 1 || p.values["ftserve_engine_rank1_solves_total"] < 1 {
		t.Errorf("engine counters empty: dense %g rank1 %g",
			p.values["ftserve_engine_dense_factors_total"], p.values["ftserve_engine_rank1_solves_total"])
	}

	var st statsPayload
	if err := json.Unmarshal(getBody(t, ts.URL+"/v1/stats"), &st); err != nil {
		t.Fatalf("/v1/stats does not parse: %v", err)
	}
	if st.Metrics.Requests != 1 || st.Metrics.RequestSeconds.Count != 1 {
		t.Errorf("/v1/stats requests = %d, request_seconds.count = %d, want 1/1",
			st.Metrics.Requests, st.Metrics.RequestSeconds.Count)
	}
	if st.Metrics.Builds != 1 || st.Metrics.BuildSeconds.Count != 1 {
		t.Errorf("/v1/stats builds = %d, build_seconds.count = %d, want 1/1",
			st.Metrics.Builds, st.Metrics.BuildSeconds.Count)
	}
	if st.Engine.DenseFactors < 1 || st.Engine.Rank1Solves < 1 || st.Engine.MemoMisses < 1 {
		t.Errorf("/v1/stats engine counters empty: %+v", st.Engine)
	}
	if st.Metrics.RequestSeconds.P99 < st.Metrics.RequestSeconds.P50 {
		t.Errorf("p99 %g < p50 %g", st.Metrics.RequestSeconds.P99, st.Metrics.RequestSeconds.P50)
	}
	if got := p.values["ftserve_engine_dense_factors_total"]; got != float64(st.Engine.DenseFactors) {
		// Quiescent server: both endpoints must agree.
		t.Errorf("dense factors disagree: /metrics %g, /v1/stats %d", got, st.Engine.DenseFactors)
	}
	// Supernodal/partial-refactor counter invariants: each supernodal
	// refactor is a sparse factorization; each partial refactor serves an
	// exact fallback and re-eliminates at least one column; each dense
	// fallback is a dense factorization.
	e := st.Engine
	if e.SupernodalRefactors > e.SparseFactors {
		t.Errorf("supernodal_refactors %d > sparse_factors %d", e.SupernodalRefactors, e.SparseFactors)
	}
	if e.PartialRefactors > e.ExactFallbacks {
		t.Errorf("partial_refactors %d > exact_fallbacks %d", e.PartialRefactors, e.ExactFallbacks)
	}
	if e.PartialRefactorColumns < e.PartialRefactors {
		t.Errorf("partial_refactor_columns %d < partial_refactors %d", e.PartialRefactorColumns, e.PartialRefactors)
	}
	if e.DenseFallbackExact+e.DenseFallbackSingular > e.DenseFactors {
		t.Errorf("dense fallback split %d+%d exceeds dense_factors %d",
			e.DenseFallbackExact, e.DenseFallbackSingular, e.DenseFactors)
	}
	for name, v := range map[string]int64{
		"supernodal_refactors":     e.SupernodalRefactors,
		"partial_refactors":        e.PartialRefactors,
		"partial_refactor_columns": e.PartialRefactorColumns,
		"dense_fallback_exact":     e.DenseFallbackExact,
		"dense_fallback_singular":  e.DenseFallbackSingular,
	} {
		if v < 0 {
			t.Errorf("engine counter %s negative: %d", name, v)
		}
		if got := p.values["ftserve_engine_"+name+"_total"]; got != float64(v) {
			t.Errorf("%s disagrees: /metrics %g, /v1/stats %d", name, got, v)
		}
	}
}

// TestServerStatsMethodNotAllowed pins /v1/stats as a GET endpoint.
func TestServerStatsMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, _ := postJSON(t, ts.URL+"/v1/stats", map[string]any{})
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d, want 405", status)
	}
}

// TestServerMetricsRaceHammer drives concurrent fault and point
// diagnoses while readers render /metrics and /v1/stats, verifying the
// structural invariants hold on every concurrent snapshot. Pinned in
// the CI race job: `go test -race` must stay clean here.
func TestServerMetricsRaceHammer(t *testing.T) {
	const (
		writers   = 6
		perWriter = 4
		readers   = 2
		perReader = 10
	)
	_, ts := testServer(t, Config{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				dev := 0.1 + 0.05*float64((w+i)%5)
				status, body := postJSON(t, ts.URL+"/v1/diagnose", map[string]any{
					"cut":   "nf-lowpass-7",
					"fault": map[string]any{"component": "R3", "deviation": dev},
				})
				if status != 200 {
					t.Errorf("diagnose status = %d: %s", status, body)
				}
			}
		}(w)
	}
	errCh := make(chan string, readers*perReader)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				text := string(getBody(t, ts.URL+"/metrics"))
				p := parseProm(t, text)
				// Mid-load snapshots satisfy the weak invariants
				// (count <= total, monotone buckets); exact equality
				// only holds quiescent.
				checkPromInvariants(t, p, false)
				var st statsPayload
				if err := json.Unmarshal(getBody(t, ts.URL+"/v1/stats"), &st); err != nil {
					errCh <- fmt.Sprintf("stats parse: %v", err)
					return
				}
				if st.Metrics.RequestSeconds.Count > st.Metrics.Requests {
					errCh <- fmt.Sprintf("request_seconds.count %d > requests_total %d",
						st.Metrics.RequestSeconds.Count, st.Metrics.Requests)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}

	p := fetchQuiescentMetrics(t, ts.URL)
	checkPromInvariants(t, p, true)
	want := float64(writers * perWriter)
	if p.values["ftserve_requests_total"] != want {
		t.Errorf("requests_total = %g, want %g", p.values["ftserve_requests_total"], want)
	}
	// Coalescing bookkeeping: every accepted request was flushed through
	// some batch.
	if p.values["ftserve_batched_requests_total"] != want {
		t.Errorf("batched_requests_total = %g, want %g", p.values["ftserve_batched_requests_total"], want)
	}
}
