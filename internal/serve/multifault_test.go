package serve

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// doubleServer builds a server whose entries model double faults on a
// reduced pair universe (capped for test speed) over a fixed
// 4-frequency test vector.
func doubleServer(t *testing.T) (*Server, string) {
	t.Helper()
	s, ts := testServer(t, Config{
		Build: BuildConfig{
			Workers:         1,
			Freqs:           []float64{0.2, 0.56, 4.55, 12},
			DoubleFaults:    true,
			MaxDoubleFaults: 256,
		},
	})
	return s, ts.URL
}

// TestServerDiagnoseMultiFault: a {"faults": [...]} injection through
// /v1/diagnose is named as a double fault by a double-fault entry.
func TestServerDiagnoseMultiFault(t *testing.T) {
	_, url := doubleServer(t)
	status, body := postJSON(t, url+"/v1/diagnose", map[string]any{
		"cut": "nf-lowpass-7",
		"faults": []map[string]any{
			{"component": "R1", "deviation": 0.3},
			{"component": "C1", "deviation": -0.2},
		},
		"reject_ratio": 0.02,
	})
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	var rep diagnoseReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Result == nil {
		t.Fatalf("no result: %s", body)
	}
	best := rep.Result.Best()
	if best.Key() != "C1+R1" {
		t.Fatalf("best = %q (%+v), want the C1+R1 double", best.Key(), best)
	}
	if rep.Rejected == nil || *rep.Rejected {
		t.Fatal("modeled double fault must not be rejected")
	}
	// The same injection against a single-fault server cannot name a
	// pair: the best candidate is some single component.
	_, singleTS := testServer(t, Config{})
	status, body = postJSON(t, singleTS.URL+"/v1/diagnose", map[string]any{
		"cut": "nf-lowpass-7",
		"faults": []map[string]any{
			{"component": "R1", "deviation": 0.3},
			{"component": "C1", "deviation": -0.2},
		},
	})
	if status != 200 {
		t.Fatalf("single-fault server status = %d: %s", status, body)
	}
	var singleRep diagnoseReply
	if err := json.Unmarshal(body, &singleRep); err != nil {
		t.Fatal(err)
	}
	if singleRep.Result.Best().IsMulti() {
		t.Fatal("single-fault server named a multi candidate")
	}
}

// TestServerMultiFaultValidation: malformed multi injections fail fast
// with 4xx, before touching a batch.
func TestServerMultiFaultValidation(t *testing.T) {
	_, url := doubleServer(t)
	for name, req := range map[string]map[string]any{
		"duplicate component": {
			"cut": "nf-lowpass-7",
			"faults": []map[string]any{
				{"component": "R1", "deviation": 0.3},
				{"component": "R1", "deviation": -0.2},
			},
		},
		"unknown component": {
			"cut": "nf-lowpass-7",
			"faults": []map[string]any{
				{"component": "R1", "deviation": 0.3},
				{"component": "R99", "deviation": -0.2},
			},
		},
		"fault and faults": {
			"cut":   "nf-lowpass-7",
			"fault": map[string]any{"component": "R1", "deviation": 0.3},
			"faults": []map[string]any{
				{"component": "C1", "deviation": -0.2},
			},
		},
		"point and faults": {
			"cut":   "nf-lowpass-7",
			"point": []float64{0, 0, 0, 0},
			"faults": []map[string]any{
				{"component": "C1", "deviation": -0.2},
			},
		},
		"deviation at -100%": {
			"cut": "nf-lowpass-7",
			"faults": []map[string]any{
				{"component": "R1", "deviation": -1.0},
				{"component": "C1", "deviation": 0.2},
			},
		},
		"single-element zero deviation": {
			"cut": "nf-lowpass-7",
			"faults": []map[string]any{
				{"component": "R1", "deviation": 0},
			},
		},
	} {
		status, body := postJSON(t, url+"/v1/diagnose", req)
		if status < 400 || status >= 500 {
			t.Errorf("%s: status = %d, want 4xx: %s", name, status, body)
		}
	}
}

// TestServerMultiFaultBatchCoalesces: concurrent single and multi
// injections coalesce into shared flushes and every reply matches its
// sequential reference.
func TestServerMultiFaultBatchCoalesces(t *testing.T) {
	srv, url := doubleServer(t)
	reqs := []map[string]any{
		{"cut": "nf-lowpass-7", "fault": map[string]any{"component": "R3", "deviation": 0.25}},
		{"cut": "nf-lowpass-7", "faults": []map[string]any{
			{"component": "R1", "deviation": 0.3}, {"component": "C1", "deviation": -0.2}}},
		{"cut": "nf-lowpass-7", "faults": []map[string]any{
			{"component": "R2", "deviation": -0.3}, {"component": "C2", "deviation": 0.3}}},
	}
	// Sequential references.
	want := make([]string, len(reqs))
	for i, rq := range reqs {
		status, body := postJSON(t, url+"/v1/diagnose", rq)
		if status != 200 {
			t.Fatalf("request %d: %d %s", i, status, body)
		}
		var rep diagnoseReply
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		data, _ := json.Marshal(rep.Result)
		want[i] = string(data)
	}
	const clients = 24
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rq := reqs[c%len(reqs)]
			status, body := postJSON(t, url+"/v1/diagnose", rq)
			if status != 200 {
				t.Errorf("client %d: %d %s", c, status, body)
				return
			}
			var rep diagnoseReply
			if err := json.Unmarshal(body, &rep); err != nil {
				t.Error(err)
				return
			}
			data, _ := json.Marshal(rep.Result)
			if string(data) != want[c%len(reqs)] {
				t.Errorf("client %d: result diverged from sequential reference", c)
			}
		}(c)
	}
	wg.Wait()
	if srv.Metrics().Batches.Load() == 0 {
		t.Fatal("no batches recorded")
	}
}

// TestCatalogReportsDoubleFaults: /v1/cuts surfaces the modeled pair
// count of a loaded double-fault entry.
func TestCatalogReportsDoubleFaults(t *testing.T) {
	srv, _ := doubleServer(t)
	if err := srv.Preload(context.Background(), []string{"nf-lowpass-7"}); err != nil {
		t.Fatal(err)
	}
	for _, ce := range Catalog(srv.Registry()) {
		if ce.Name == "nf-lowpass-7" {
			if !ce.Loaded || ce.DoubleFaults != 256 {
				t.Fatalf("catalog entry: %+v", ce)
			}
			// A loaded entry also reports its MNA engine shape: system
			// order, golden-pattern nonzeros, and the factorization path
			// (dense below the sparse-auto threshold).
			if ce.Nodes <= 0 || ce.NNZ <= 0 || ce.FactorPath != "dense" {
				t.Fatalf("engine shape: nodes=%d nnz=%d factor_path=%q", ce.Nodes, ce.NNZ, ce.FactorPath)
			}
			return
		}
	}
	t.Fatal("nf-lowpass-7 missing from catalog")
}
