package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Build.Freqs == nil {
		cfg.Build = BuildConfig{Workers: 1, Freqs: []float64{0.56, 4.55}, Scheduler: cfg.Build.Scheduler}
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestServerHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Version: "test-build"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != "test-build" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestServerDiagnoseFault(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/diagnose", map[string]any{
		"cut":          "nf-lowpass-7",
		"fault":        map[string]any{"component": "R3", "deviation": 0.25},
		"reject_ratio": 0.02,
	})
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	var rep diagnoseReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Result == nil || rep.Result.Best().Component != "R3" {
		t.Fatalf("diagnosis = %s", body)
	}
	if rep.Rejected == nil || *rep.Rejected {
		t.Fatal("genuine single fault must not be rejected")
	}
	if rep.BatchSize < 1 || len(rep.Omegas) != 2 {
		t.Fatalf("reply metadata: %s", body)
	}
}

func TestServerDiagnosePoint(t *testing.T) {
	s, ts := testServer(t, Config{})
	// Simulate the observation the tester would measure for R3@+25%.
	entry, err := s.Registry().Get(context.Background(), "nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := entry.Session.Dictionary().Signature(repro.Fault{Component: "R3", Deviation: 0.25}, entry.Omegas)
	if err != nil {
		t.Fatal(err)
	}
	status, body := postJSON(t, ts.URL+"/v1/diagnose", map[string]any{
		"cut":   "nf-lowpass-7",
		"point": sig,
	})
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	var rep diagnoseReply
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Result.Best().Component != "R3" {
		t.Fatalf("point diagnosis = %s", body)
	}
}

func TestServerErrorMapping(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown CUT", map[string]any{"cut": "nope", "fault": map[string]any{"component": "R1", "deviation": 0.2}}, 404},
		{"unknown component", map[string]any{"cut": "nf-lowpass-7", "fault": map[string]any{"component": "R99", "deviation": 0.2}}, 404},
		{"bad point dimension", map[string]any{"cut": "nf-lowpass-7", "point": []float64{1, 2, 3}}, 400},
		{"empty request", map[string]any{"cut": "nf-lowpass-7"}, 400},
		{"deviation out of range", map[string]any{"cut": "nf-lowpass-7", "fault": map[string]any{"component": "R1", "deviation": -1.5}}, 400},
	}
	for _, tc := range cases {
		status, body := postJSON(t, ts.URL+"/v1/diagnose", tc.body)
		if status != tc.want {
			t.Fatalf("%s: status = %d, want %d (%s)", tc.name, status, tc.want, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body %s", tc.name, body)
		}
	}
	// Malformed JSON → 400.
	resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: status = %d", resp.StatusCode)
	}
	// Wrong method → 405.
	resp, err = http.Get(ts.URL + "/v1/diagnose")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET diagnose: status = %d", resp.StatusCode)
	}
}

func TestServerCutsAndMetrics(t *testing.T) {
	_, ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/v1/diagnose", map[string]any{
		"cut":   "nf-lowpass-7",
		"fault": map[string]any{"component": "R3", "deviation": 0.25},
	})

	resp, err := http.Get(ts.URL + "/v1/cuts")
	if err != nil {
		t.Fatal(err)
	}
	var cuts struct {
		Cuts []CatalogEntry `json:"cuts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cuts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cuts.Cuts) < 2 {
		t.Fatalf("catalog too small: %+v", cuts.Cuts)
	}
	var loaded *CatalogEntry
	for i := range cuts.Cuts {
		if cuts.Cuts[i].Name == "nf-lowpass-7" {
			loaded = &cuts.Cuts[i]
		} else if cuts.Cuts[i].Loaded {
			t.Fatalf("%s reported loaded without traffic", cuts.Cuts[i].Name)
		}
	}
	if loaded == nil || !loaded.Loaded || len(loaded.Omegas) != 2 || loaded.Origin != "configured" {
		t.Fatalf("loaded entry: %+v", loaded)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"ftserve_requests_total 1", "ftserve_builds_total 1", "ftserve_batches_total"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServerConcurrentClientsBitIdentical pins the acceptance criterion:
// 64 concurrent clients on the paper CUT are served through the
// micro-batcher with responses bit-identical to single-request
// diagnosis.
func TestServerConcurrentClientsBitIdentical(t *testing.T) {
	cfg := Config{}
	cfg.Build.Scheduler = SchedulerConfig{FlushWindow: 5 * time.Millisecond, MaxBatch: 32}
	s, ts := testServer(t, cfg)

	// Reference: one-at-a-time serving (MaxBatch 1 batcher on the same
	// entry), keyed by fault ID.
	entry, err := s.Registry().Get(context.Background(), "nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	single := newBatcher(context.Background(), entry, SchedulerConfig{MaxBatch: 1}, nil)
	defer single.stop()

	comps := entry.Session.CUT().Passives
	devs := []float64{-0.22, -0.13, 0.17, 0.31}
	want := make(map[string]string)
	for _, c := range comps {
		for _, d := range devs {
			resp := single.Diagnose(context.Background(), &Request{Fault: repro.Fault{Component: c, Deviation: d}})
			if resp.Err != nil {
				t.Fatal(resp.Err)
			}
			data, _ := json.Marshal(resp.Result)
			want[fmt.Sprintf("%s@%g", c, d)] = string(data)
		}
	}

	const clients = 64
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comp := comps[i%len(comps)]
			dev := devs[(i/len(comps))%len(devs)]
			data, _ := json.Marshal(map[string]any{
				"cut":   "nf-lowpass-7",
				"fault": map[string]any{"component": comp, "deviation": dev},
			})
			resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var rep diagnoseReply
			if err := json.Unmarshal(body, &rep); err != nil {
				errs[i] = err
				return
			}
			got, _ := json.Marshal(rep.Result)
			key := fmt.Sprintf("%s@%g", comp, dev)
			if string(got) != want[key] {
				errs[i] = fmt.Errorf("%s drifted under concurrency:\n got: %s\nwant: %s", key, got, want[key])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	m := s.Metrics()
	if got := m.BatchedRequests.Load(); got < clients {
		t.Fatalf("batched requests = %d, want ≥ %d", got, clients)
	}
}

// TestServerArtifactWarmStart pins the registry's warm-start path: with
// dictionary and test-vector artifacts on disk, a cold request loads
// them instead of re-simulating, and serves bit-identical diagnoses.
func TestServerArtifactWarmStart(t *testing.T) {
	dir := t.TempDir()
	omegas := []float64{0.56, 4.55}
	cut, err := repro.BenchmarkByName("nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := repro.NewSession(cut, repro.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sess.Trajectories(context.Background(), omegas)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SaveTrajectories(filepath.Join(dir, "map.json"), tm); err != nil {
		t.Fatal(err)
	}

	cfg := Config{}
	cfg.Build = BuildConfig{Workers: 1, ArtifactDir: dir}
	s := New(cfg)
	defer s.Close()
	entry, err := s.Registry().Get(context.Background(), "nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Origin != "artifact" {
		t.Fatalf("origin = %q, want artifact", entry.Origin)
	}
	if s.Metrics().WarmStarts.Load() != 1 {
		t.Fatalf("warm starts = %d", s.Metrics().WarmStarts.Load())
	}
	if len(entry.Omegas) != 2 || entry.Omegas[0] != 0.56 {
		t.Fatalf("warm entry omegas = %v", entry.Omegas)
	}
	// The warm-started diagnoser reproduces the live one's answer.
	res, err := entry.Session.DiagnoseFaults(context.Background(), entry.Diagnoser, []repro.Fault{{Component: "C2", Deviation: 0.31}})
	if err != nil {
		t.Fatal(err)
	}
	liveDG, err := sess.Diagnoser(context.Background(), omegas)
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := sess.DiagnoseFaults(context.Background(), liveDG, []repro.Fault{{Component: "C2", Deviation: 0.31}})
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(res[0])
	wj, _ := json.Marshal(liveRes[0])
	if string(gj) != string(wj) {
		t.Fatalf("warm-start diagnosis drifted:\n got: %s\nwant: %s", gj, wj)
	}
}

// TestServerDictionaryGridWarmStart exercises the grid + test-vector
// artifact path (no trajectory map on disk).
func TestServerDictionaryGridWarmStart(t *testing.T) {
	dir := t.TempDir()
	omegas := []float64{0.56, 4.55}
	cut, err := repro.BenchmarkByName("nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := repro.NewSession(cut, repro.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SaveDictionary(context.Background(), filepath.Join(dir, "grid.json"), omegas); err != nil {
		t.Fatal(err)
	}
	tv := &repro.TestVector{Omegas: omegas, Fitness: 1}
	if err := sess.SaveTestVector(filepath.Join(dir, "tv.json"), tv); err != nil {
		t.Fatal(err)
	}

	cfg := Config{}
	cfg.Build = BuildConfig{Workers: 1, ArtifactDir: dir}
	s := New(cfg)
	defer s.Close()
	entry, err := s.Registry().Get(context.Background(), "nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Origin != "artifact" {
		t.Fatalf("origin = %q, want artifact", entry.Origin)
	}
	res, err := entry.Session.DiagnoseFaults(context.Background(), entry.Diagnoser, []repro.Fault{{Component: "R3", Deviation: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Best().Component != "R3" {
		t.Fatalf("warm-start diagnosis = %v", res[0].Best())
	}
}

// TestServerEvictionChurnServes pins the eviction-retry fix: with an
// LRU of one, alternating CUTs evict each other constantly, yet every
// request is served — an eviction racing a handler must retry against
// the rebuilt entry, never surface a spurious 503.
func TestServerEvictionChurnServes(t *testing.T) {
	cfg := Config{Capacity: 1}
	cfg.Build = BuildConfig{Workers: 1, Freqs: []float64{0.56, 4.55}}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cuts := []string{"nf-lowpass-7", "sallen-key-lp"}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := 0, []byte(nil)
			data, _ := json.Marshal(map[string]any{
				"cut":   cuts[i%2],
				"fault": map[string]any{"component": "R1", "deviation": 0.2},
			})
			resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, _ = io.ReadAll(resp.Body)
			status = resp.StatusCode
			if status != 200 {
				errs[i] = fmt.Errorf("status %d: %s", status, body)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d under eviction churn: %v", i, err)
		}
	}
	if got := s.Metrics().Evictions.Load(); got < 1 {
		t.Fatalf("evictions = %d, want ≥ 1 (the churn this test exists for)", got)
	}
}

// TestServerShutdownDrain pins the drain contract at the HTTP layer:
// requests in flight when shutdown begins complete before Close.
func TestServerShutdownDrain(t *testing.T) {
	cfg := Config{}
	cfg.Build.Scheduler = SchedulerConfig{FlushWindow: 20 * time.Millisecond, MaxBatch: 64}
	s := New(Config{Build: BuildConfig{Workers: 1, Freqs: []float64{0.56, 4.55}, Scheduler: cfg.Build.Scheduler}})
	ts := httptest.NewServer(s.Handler())

	// Warm the entry so requests go straight to the queue.
	if err := s.Preload(context.Background(), []string{"nf-lowpass-7"}); err != nil {
		t.Fatal(err)
	}

	const n = 8
	type result struct {
		status int
		err    error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json",
				strings.NewReader(`{"cut":"nf-lowpass-7","fault":{"component":"R3","deviation":0.25}}`))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			io.ReadAll(resp.Body)
			results <- result{status: resp.StatusCode}
		}()
	}
	// Shutdown once every request has been accepted into the batcher
	// queue (many still sitting in the 20ms flush window): Close waits
	// for handlers (ts.Close), then drains the batchers (s.Close).
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Requests.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests accepted", s.Metrics().Requests.Load(), n)
		}
		time.Sleep(100 * time.Microsecond)
	}
	ts.Close()
	s.Close()
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("request failed at shutdown: %v", r.err)
		}
		if r.status != 200 {
			t.Fatalf("request status %d at shutdown, want 200", r.status)
		}
	}
}
