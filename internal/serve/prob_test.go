package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
)

// TestServerProbabilisticDiagnose runs the tolerance-aware serving
// path end to end over HTTP: fault and point diagnoses gain
// confidence, likelihoods, and ambiguity_group, and the catalog
// advertises the probabilistic model.
func TestServerProbabilisticDiagnose(t *testing.T) {
	cfg := Config{}
	cfg.Build = BuildConfig{
		Workers: 1, Freqs: []float64{0.56, 4.55},
		ToleranceSigma: 0.05, MCSamples: 16, Seed: 9,
	}
	_, ts := testServer(t, cfg)

	var rep diagnoseReply
	status, body := postJSON(t, ts.URL+"/v1/diagnose", map[string]any{
		"cut":   "nf-lowpass-7",
		"fault": map[string]any{"component": "R3", "deviation": 0.25},
	})
	if status != 200 {
		t.Fatalf("status = %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Confidence == nil || *rep.Confidence <= 0 || *rep.Confidence > 1 {
		t.Fatalf("confidence = %v", rep.Confidence)
	}
	if len(rep.Likelihoods) == 0 {
		t.Fatal("no likelihoods in probabilistic reply")
	}
	if rep.Likelihoods[0].Key != "R3" {
		t.Fatalf("likelihood best = %q, want R3", rep.Likelihoods[0].Key)
	}
	var total float64
	for i, c := range rep.Likelihoods {
		total += c.Probability
		if i > 0 && c.Probability > rep.Likelihoods[i-1].Probability {
			t.Fatal("likelihoods not sorted by probability")
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("posterior sums to %g", total)
	}

	// A point request takes the same scoring path.
	status, body = postJSON(t, ts.URL+"/v1/diagnose", map[string]any{
		"cut":   "nf-lowpass-7",
		"point": rep.Result.Point,
	})
	if status != 200 {
		t.Fatalf("point status = %d: %s", status, body)
	}
	var prep diagnoseReply
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Confidence == nil || len(prep.Likelihoods) == 0 {
		t.Fatal("point diagnosis missing probabilistic fields")
	}
	if !reflect.DeepEqual(prep.Likelihoods, rep.Likelihoods) {
		t.Fatal("point and fault scoring of the same signature differ")
	}

	// The catalog advertises the model.
	var cat struct {
		Cuts []CatalogEntry `json:"cuts"`
	}
	resp, err := httpGet(ts.URL + "/v1/cuts")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(resp, &cat); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ce := range cat.Cuts {
		if ce.Name == "nf-lowpass-7" {
			found = true
			if !ce.Loaded || ce.MCSamples != 16 || ce.ToleranceSigma != 0.05 {
				t.Fatalf("catalog entry %+v missing probabilistic annotation", ce)
			}
		}
	}
	if !found {
		t.Fatal("nf-lowpass-7 missing from catalog")
	}
}

// TestServerCloudArtifactWarmStart warm-starts the probabilistic model
// from a saved signature-cloud artifact and pins that its replies are
// bit-identical to a live build's.
func TestServerCloudArtifactWarmStart(t *testing.T) {
	dir := t.TempDir()
	omegas := []float64{0.56, 4.55}
	cut, err := repro.BenchmarkByName("nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := repro.NewSession(cut, repro.WithWorkers(1),
		repro.WithTolerance(repro.Tolerance{Sigma: 0.05}, 16),
		repro.WithToleranceSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sess.Trajectories(context.Background(), omegas)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SaveTrajectories(filepath.Join(dir, "map.json"), tm); err != nil {
		t.Fatal(err)
	}
	cs, err := sess.Clouds(context.Background(), omegas)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SaveClouds(filepath.Join(dir, "clouds.json"), cs); err != nil {
		t.Fatal(err)
	}

	cfg := Config{}
	cfg.Build = BuildConfig{
		Workers: 1, ArtifactDir: dir,
		ToleranceSigma: 0.05, MCSamples: 16, Seed: 9,
	}
	s := New(cfg)
	defer s.Close()
	entry, err := s.Registry().Get(context.Background(), "nf-lowpass-7")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Origin != "artifact" {
		t.Fatalf("origin = %q, want artifact", entry.Origin)
	}
	if entry.Clouds == nil {
		t.Fatal("warm-started entry has no cloud model")
	}
	if !reflect.DeepEqual(entry.Clouds, cs) {
		t.Fatal("warm-started cloud model differs from the saved one")
	}
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
