package netlist

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// subckt is a parsed .subckt definition: a named block of cards with
// formal port nodes.
type subckt struct {
	name  string
	ports []string
	cards []srcLine
	line  int
}

// srcLine pairs a logical card with its source line number.
type srcLine struct {
	text string
	line int
}

// maxSubcktDepth bounds recursive instantiation (and catches cycles).
const maxSubcktDepth = 16

// extractSubckts splits the logical lines into top-level cards and
// subcircuit definitions. Nested .subckt definitions are rejected for
// clarity (SPICE dialects differ here; flat libraries are the common
// case).
func extractSubckts(lines []srcLine) (top []srcLine, defs map[string]*subckt, err error) {
	defs = make(map[string]*subckt)
	var cur *subckt
	for _, sl := range lines {
		lower := strings.ToLower(sl.text)
		switch {
		case strings.HasPrefix(lower, ".subckt"):
			if cur != nil {
				return nil, nil, errAt(sl.line, sl.text, "nested .subckt inside %q", cur.name)
			}
			fields := strings.Fields(sl.text)
			if len(fields) < 3 {
				return nil, nil, errAt(sl.line, sl.text, ".subckt needs a name and at least one port")
			}
			name := strings.ToLower(fields[1])
			if _, dup := defs[name]; dup {
				return nil, nil, errAt(sl.line, sl.text, "duplicate subcircuit %q", name)
			}
			cur = &subckt{name: name, ports: fields[2:], line: sl.line}
		case strings.HasPrefix(lower, ".ends"):
			if cur == nil {
				return nil, nil, errAt(sl.line, sl.text, ".ends without .subckt")
			}
			defs[cur.name] = cur
			cur = nil
		default:
			if cur != nil {
				cur.cards = append(cur.cards, sl)
			} else {
				top = append(top, sl)
			}
		}
	}
	if cur != nil {
		return nil, nil, errAt(cur.line, ".subckt "+cur.name, "unterminated subcircuit (missing .ends)")
	}
	return top, defs, nil
}

// expandInstance elaborates an X card: it maps the subcircuit's ports to
// the instance's nodes, prefixes internal nodes and element names with
// the instance name, and recursively expands nested X cards.
func expandInstance(c *circuit.Circuit, line int, card string, defs map[string]*subckt, depth int) error {
	if depth > maxSubcktDepth {
		return errAt(line, card, "subcircuit nesting exceeds %d (cycle?)", maxSubcktDepth)
	}
	fields := strings.Fields(card)
	if len(fields) < 3 {
		return errAt(line, card, "X card needs nodes and a subcircuit name")
	}
	inst := fields[0]
	sub, ok := defs[strings.ToLower(fields[len(fields)-1])]
	if !ok {
		return errAt(line, card, "unknown subcircuit %q", fields[len(fields)-1])
	}
	actuals := fields[1 : len(fields)-1]
	if len(actuals) != len(sub.ports) {
		return errAt(line, card, "subcircuit %q has %d ports, instance gives %d", sub.name, len(sub.ports), len(actuals))
	}
	nodeMap := make(map[string]string, len(sub.ports))
	for i, formal := range sub.ports {
		nodeMap[formal] = actuals[i]
	}
	mapNode := func(n string) string {
		if isGround(n) {
			return circuit.GroundName
		}
		if mapped, ok := nodeMap[n]; ok {
			return mapped
		}
		return inst + "." + n
	}
	for _, sl := range sub.cards {
		kind := strings.ToLower(sl.text[:1])
		if kind == "x" {
			// Rewrite the nested instance's nodes, prefix its name, and
			// recurse.
			nf := strings.Fields(sl.text)
			if len(nf) < 3 {
				return errAt(sl.line, sl.text, "X card needs nodes and a subcircuit name")
			}
			rewritten := []string{inst + "." + nf[0]}
			for _, n := range nf[1 : len(nf)-1] {
				rewritten = append(rewritten, mapNode(n))
			}
			rewritten = append(rewritten, nf[len(nf)-1])
			if err := expandInstance(c, sl.line, strings.Join(rewritten, " "), defs, depth+1); err != nil {
				return err
			}
			continue
		}
		el, err := parseCard(sl.line, sl.text)
		if err != nil {
			return err
		}
		renamed, err := rewriteElement(el, inst, mapNode)
		if err != nil {
			return errAt(sl.line, sl.text, "%v", err)
		}
		if err := c.Add(renamed); err != nil {
			return errAt(sl.line, sl.text, "%v", err)
		}
	}
	return nil
}

// rewriteElement clones an element with prefixed name and mapped nodes.
func rewriteElement(e circuit.Element, inst string, mapNode func(string) string) (circuit.Element, error) {
	name := inst + "." + e.Name()
	switch el := e.(type) {
	case *circuit.Resistor:
		return circuit.NewResistor(name, mapNode(el.Nodes()[0]), mapNode(el.Nodes()[1]), el.Ohms), nil
	case *circuit.Capacitor:
		return circuit.NewCapacitor(name, mapNode(el.Nodes()[0]), mapNode(el.Nodes()[1]), el.Farads), nil
	case *circuit.Inductor:
		return circuit.NewInductor(name, mapNode(el.Nodes()[0]), mapNode(el.Nodes()[1]), el.Henries), nil
	case *circuit.VSource:
		return circuit.NewVSource(name, mapNode(el.Nodes()[0]), mapNode(el.Nodes()[1]), el.Amplitude), nil
	case *circuit.ISource:
		return circuit.NewISource(name, mapNode(el.Nodes()[0]), mapNode(el.Nodes()[1]), el.Amplitude), nil
	case *circuit.VCVS:
		return circuit.NewVCVS(name, mapNode(el.OutP), mapNode(el.OutN), mapNode(el.CtlP), mapNode(el.CtlN), el.Gain), nil
	case *circuit.VCCS:
		return circuit.NewVCCS(name, mapNode(el.OutP), mapNode(el.OutN), mapNode(el.CtlP), mapNode(el.CtlN), el.Gm), nil
	case *circuit.CCVS:
		return circuit.NewCCVS(name, mapNode(el.OutP), mapNode(el.OutN), inst+"."+el.Control, el.R), nil
	case *circuit.CCCS:
		return circuit.NewCCCS(name, mapNode(el.OutP), mapNode(el.OutN), inst+"."+el.Control, el.Gain), nil
	case *circuit.IdealOpAmp:
		return circuit.NewIdealOpAmp(name, mapNode(el.InP), mapNode(el.InN), mapNode(el.Out)), nil
	default:
		return nil, fmt.Errorf("cannot instantiate element %s of type %T inside a subcircuit", e.Name(), e)
	}
}

func isGround(n string) bool {
	return n == "0" || n == "gnd" || n == "GND"
}
