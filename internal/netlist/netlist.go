// Package netlist parses and serializes a SPICE-like netlist dialect
// covering the element set of the circuit package. It lets the CLI tools
// accept external circuits under test instead of only the built-in
// benchmarks.
//
// Supported cards (one per line, case-insensitive designator prefix):
//
//	R<name> <n+> <n-> <value>              resistor (ohms)
//	C<name> <n+> <n-> <value>              capacitor (farads)
//	L<name> <n+> <n-> <value>              inductor (henries)
//	V<name> <n+> <n-> <mag> [phase_deg]    AC voltage source
//	I<name> <n+> <n-> <mag> [phase_deg]    AC current source
//	E<name> <o+> <o-> <c+> <c-> <gain>     VCVS
//	G<name> <o+> <o-> <c+> <c-> <gm>       VCCS
//	H<name> <o+> <o-> <vname> <r>          CCVS (controlled by V element)
//	F<name> <o+> <o-> <vname> <gain>       CCCS
//	O<name> <in+> <in-> <out>              ideal opamp ("U" prefix accepted)
//	X<name> <node...> <subckt>             subcircuit instance
//	.subckt <name> <port...> / .ends       subcircuit definition
//
// Values accept engineering suffixes (f p n u m k meg g t) and scientific
// notation. '*' or ';' start comments; a leading '+' continues the
// previous line; a first line that is not a card is treated as the title
// (SPICE convention); ".end" stops parsing and other dot-cards are
// ignored.
package netlist

import (
	"fmt"
	"math"
	"math/cmplx"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// ParseError reports a netlist syntax error with its source location:
// the 1-based physical line number and the offending card text. Every
// error Parse returns is (or wraps) a ParseError, so callers can recover
// the location with errors.As.
type ParseError struct {
	// Line is the 1-based physical source line the error points at (for
	// a continuation card, the line the card started on).
	Line int
	// Card is the offending card text ("" when no card applies, e.g. an
	// empty netlist).
	Card string
	// Msg describes the problem.
	Msg string
}

func (e *ParseError) Error() string {
	if e.Card == "" {
		return fmt.Sprintf("netlist: line %d: %s", e.Line, e.Msg)
	}
	return fmt.Sprintf("netlist: line %d: %s (%q)", e.Line, e.Msg, e.Card)
}

func errAt(line int, card, format string, args ...any) error {
	return &ParseError{Line: line, Card: card, Msg: fmt.Sprintf(format, args...)}
}

// ParseValue converts a SPICE number with optional engineering suffix.
// Examples: "4.7k" → 4700, "100n" → 1e-7, "2meg" → 2e6, "1e-6" → 1e-6.
func ParseValue(s string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(t, "meg"):
		mult, t = 1e6, strings.TrimSuffix(t, "meg")
	case strings.HasSuffix(t, "f"):
		mult, t = 1e-15, strings.TrimSuffix(t, "f")
	case strings.HasSuffix(t, "p"):
		mult, t = 1e-12, strings.TrimSuffix(t, "p")
	case strings.HasSuffix(t, "n"):
		mult, t = 1e-9, strings.TrimSuffix(t, "n")
	case strings.HasSuffix(t, "u"):
		mult, t = 1e-6, strings.TrimSuffix(t, "u")
	case strings.HasSuffix(t, "m"):
		mult, t = 1e-3, strings.TrimSuffix(t, "m")
	case strings.HasSuffix(t, "k"):
		mult, t = 1e3, strings.TrimSuffix(t, "k")
	case strings.HasSuffix(t, "g"):
		mult, t = 1e9, strings.TrimSuffix(t, "g")
	case strings.HasSuffix(t, "t"):
		mult, t = 1e12, strings.TrimSuffix(t, "t")
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * mult, nil
}

// FormatValue renders a value with an engineering suffix when it is
// exactly representable, otherwise in %g form.
func FormatValue(v float64) string {
	type unit struct {
		mult   float64
		suffix string
	}
	units := []unit{
		{1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
	}
	av := math.Abs(v)
	if av == 0 {
		return "0"
	}
	for _, u := range units {
		if av >= u.mult && av < u.mult*1000 {
			scaled := v / u.mult
			return strconv.FormatFloat(scaled, 'g', -1, 64) + u.suffix
		}
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Parse reads a netlist and builds a circuit named after the title line
// (or "netlist" if the input starts directly with cards).
func Parse(input string) (*circuit.Circuit, error) {
	physical := strings.Split(strings.ReplaceAll(input, "\r\n", "\n"), "\n")

	// Join continuation lines, remembering the source line of each card.
	var logical []srcLine
	for i, raw := range physical {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "+") {
			if len(logical) == 0 {
				return nil, errAt(i+1, trimmed, "continuation with no previous card")
			}
			logical[len(logical)-1].text += " " + strings.TrimSpace(trimmed[1:])
			continue
		}
		logical = append(logical, srcLine{text: trimmed, line: i + 1})
	}
	if len(logical) == 0 {
		return nil, &ParseError{Line: 1, Msg: "empty input: no cards found"}
	}

	title := "netlist"
	start := 0
	if !isCard(logical[0].text) {
		title = logical[0].text
		start = 1
	}
	// Honour .end before anything else ('.ends' terminates subcircuits,
	// not the netlist, so match the whole token).
	body := logical[start:]
	for i, sl := range body {
		token := strings.ToLower(strings.Fields(sl.text)[0])
		if token == ".end" {
			body = body[:i]
			break
		}
	}

	top, defs, err := extractSubckts(body)
	if err != nil {
		return nil, err
	}

	c := circuit.New(title)
	for _, sl := range top {
		card := sl.text
		lower := strings.ToLower(card)
		if strings.HasPrefix(lower, "x") {
			if err := expandInstance(c, sl.line, card, defs, 0); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(lower, ".") {
			continue // analysis directives are the caller's business
		}
		el, err := parseCard(sl.line, card)
		if err != nil {
			return nil, err
		}
		if err := c.Add(el); err != nil {
			return nil, errAt(sl.line, card, "%v", err)
		}
	}
	if len(c.Elements()) == 0 {
		// Point at the first (title or directive) line: everything after
		// it was consumed without yielding an element.
		return nil, &ParseError{Line: logical[0].line, Card: logical[0].text, Msg: "netlist has no elements"}
	}
	return c, nil
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";"); i >= 0 {
		line = line[:i]
	}
	if t := strings.TrimSpace(line); strings.HasPrefix(t, "*") {
		return ""
	}
	return line
}

// isCard reports whether a line parses as an element card or dot
// directive; anything else in first position is the SPICE title line.
func isCard(line string) bool {
	if line == "" {
		return false
	}
	if strings.HasPrefix(line, ".") {
		return true
	}
	switch strings.ToLower(line[:1]) {
	case "r", "c", "l", "v", "i", "e", "g", "h", "f", "o", "u":
		_, err := parseCard(0, line)
		return err == nil
	case "x":
		// X cards reference a subcircuit resolved later; a structural
		// check suffices for title detection.
		return len(strings.Fields(line)) >= 3
	}
	return false
}

func parseCard(line int, card string) (circuit.Element, error) {
	fields := strings.Fields(card)
	name := fields[0]
	kind := strings.ToLower(name[:1])
	args := fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return errAt(line, card, "element %s needs %d fields, got %d", name, n, len(args))
		}
		return nil
	}
	val := func(s string) (float64, error) {
		v, err := ParseValue(s)
		if err != nil {
			return 0, errAt(line, card, "%v", err)
		}
		return v, nil
	}
	switch kind {
	case "r", "c", "l":
		if err := need(3); err != nil {
			return nil, err
		}
		v, err := val(args[2])
		if err != nil {
			return nil, err
		}
		switch kind {
		case "r":
			return circuit.NewResistor(name, args[0], args[1], v), nil
		case "c":
			return circuit.NewCapacitor(name, args[0], args[1], v), nil
		default:
			return circuit.NewInductor(name, args[0], args[1], v), nil
		}
	case "v", "i":
		if err := need(3); err != nil {
			return nil, err
		}
		mag, err := val(args[2])
		if err != nil {
			return nil, err
		}
		amp := complex(mag, 0)
		if len(args) >= 4 {
			deg, err := val(args[3])
			if err != nil {
				return nil, err
			}
			amp = cmplx.Rect(mag, deg*math.Pi/180)
		}
		if kind == "v" {
			return circuit.NewVSource(name, args[0], args[1], amp), nil
		}
		return circuit.NewISource(name, args[0], args[1], amp), nil
	case "e", "g":
		if err := need(5); err != nil {
			return nil, err
		}
		v, err := val(args[4])
		if err != nil {
			return nil, err
		}
		if kind == "e" {
			return circuit.NewVCVS(name, args[0], args[1], args[2], args[3], v), nil
		}
		return circuit.NewVCCS(name, args[0], args[1], args[2], args[3], v), nil
	case "h", "f":
		if err := need(4); err != nil {
			return nil, err
		}
		v, err := val(args[3])
		if err != nil {
			return nil, err
		}
		if kind == "h" {
			return circuit.NewCCVS(name, args[0], args[1], args[2], v), nil
		}
		return circuit.NewCCCS(name, args[0], args[1], args[2], v), nil
	case "o", "u":
		if err := need(3); err != nil {
			return nil, err
		}
		return circuit.NewIdealOpAmp(name, args[0], args[1], args[2]), nil
	default:
		return nil, errAt(line, card, "unknown element kind %q", name[:1])
	}
}

// Serialize renders a circuit back into netlist text. Round-tripping
// through Parse yields an equivalent circuit.
func Serialize(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Name())
	for _, e := range c.Elements() {
		switch el := e.(type) {
		case *circuit.Resistor:
			fmt.Fprintf(&b, "%s %s %s %s\n", el.Name(), el.Nodes()[0], el.Nodes()[1], FormatValue(el.Ohms))
		case *circuit.Capacitor:
			fmt.Fprintf(&b, "%s %s %s %s\n", el.Name(), el.Nodes()[0], el.Nodes()[1], FormatValue(el.Farads))
		case *circuit.Inductor:
			fmt.Fprintf(&b, "%s %s %s %s\n", el.Name(), el.Nodes()[0], el.Nodes()[1], FormatValue(el.Henries))
		case *circuit.VSource:
			mag, ph := cmplx.Polar(el.Amplitude)
			fmt.Fprintf(&b, "%s %s %s %s %g\n", el.Name(), el.Nodes()[0], el.Nodes()[1], FormatValue(mag), ph*180/math.Pi)
		case *circuit.ISource:
			mag, ph := cmplx.Polar(el.Amplitude)
			fmt.Fprintf(&b, "%s %s %s %s %g\n", el.Name(), el.Nodes()[0], el.Nodes()[1], FormatValue(mag), ph*180/math.Pi)
		case *circuit.VCVS:
			fmt.Fprintf(&b, "%s %s %s %s %s %g\n", el.Name(), el.OutP, el.OutN, el.CtlP, el.CtlN, el.Gain)
		case *circuit.VCCS:
			fmt.Fprintf(&b, "%s %s %s %s %s %g\n", el.Name(), el.OutP, el.OutN, el.CtlP, el.CtlN, el.Gm)
		case *circuit.CCVS:
			fmt.Fprintf(&b, "%s %s %s %s %g\n", el.Name(), el.OutP, el.OutN, el.Control, el.R)
		case *circuit.CCCS:
			fmt.Fprintf(&b, "%s %s %s %s %g\n", el.Name(), el.OutP, el.OutN, el.Control, el.Gain)
		case *circuit.IdealOpAmp:
			fmt.Fprintf(&b, "%s %s %s %s\n", el.Name(), el.InP, el.InN, el.Out)
		default:
			return "", fmt.Errorf("netlist: cannot serialize element %s of type %T", e.Name(), e)
		}
	}
	b.WriteString(".end\n")
	return b.String(), nil
}
