package netlist_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

// elementKey flattens an element to a comparable description: name,
// nodes, and scalar value when present.
func elementKey(t *testing.T, e circuit.Element) [3]interface{} {
	t.Helper()
	nodes := ""
	for _, n := range e.Nodes() {
		nodes += n + "|"
	}
	var value float64
	if v, ok := e.(circuit.Valued); ok {
		value = v.Value()
	}
	return [3]interface{}{e.Name(), nodes, value}
}

// TestRoundTripBuiltinCUTs serializes every built-in benchmark circuit,
// re-parses it, and checks the result is an equivalent circuit: same
// name, same elements (names, nodes, values) in the same order, and a
// fixed point under a second serialize.
func TestRoundTripBuiltinCUTs(t *testing.T) {
	for _, cut := range circuits.All() {
		orig := cut.Circuit
		text, err := netlist.Serialize(orig)
		if err != nil {
			t.Fatalf("%s: serialize: %v", orig.Name(), err)
		}
		back, err := netlist.Parse(text)
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", orig.Name(), err, text)
		}
		if back.Name() != orig.Name() {
			t.Fatalf("name round trip: %q → %q", orig.Name(), back.Name())
		}
		oe, be := orig.Elements(), back.Elements()
		if len(oe) != len(be) {
			t.Fatalf("%s: element count %d → %d", orig.Name(), len(oe), len(be))
		}
		for i := range oe {
			if ok, bk := elementKey(t, oe[i]), elementKey(t, be[i]); ok != bk {
				t.Fatalf("%s: element %d round trip: %v → %v", orig.Name(), i, ok, bk)
			}
		}
		// The re-parsed circuit must still assemble (round trip preserves
		// structural validity).
		if _, err := back.Assemble(); err != nil {
			t.Fatalf("%s: re-parsed circuit does not assemble: %v", orig.Name(), err)
		}
		// Serialization is a fixed point: a second round trip is textually
		// identical.
		text2, err := netlist.Serialize(back)
		if err != nil {
			t.Fatalf("%s: second serialize: %v", orig.Name(), err)
		}
		if text2 != text {
			t.Fatalf("%s: serialize not a fixed point:\n--- first\n%s--- second\n%s", orig.Name(), text, text2)
		}
	}
}
