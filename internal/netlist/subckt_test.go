package netlist

import (
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const subcktNetlist = `divider library
.subckt half in out
R1 in out 1k
R2 out 0 1k
.ends
V1 src 0 1
Xa src mid half
Xb mid tap half
RL tap 0 1meg
.end
`

func TestSubcktExpansion(t *testing.T) {
	c, err := Parse(subcktNetlist)
	if err != nil {
		t.Fatal(err)
	}
	// Two instances × 2 resistors + V1 + RL = 6 elements.
	if got := len(c.Elements()); got != 6 {
		t.Fatalf("elements = %d, want 6: %v", got, c.ElementNames())
	}
	for _, name := range []string{"Xa.R1", "Xa.R2", "Xb.R1", "Xb.R2"} {
		if _, ok := c.Element(name); !ok {
			t.Fatalf("missing %s in %v", name, c.ElementNames())
		}
	}
	ac, err := analysis.NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "tap", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each stage halves under light load... second stage loads the
	// first: H = (R2∥(R1+R2)) chain. Compute expected:
	// stage2 input impedance = R1+R2∥RL ≈ 2k. stage1: out node sees
	// R2 ∥ 2k = 667; H1 = 667/1667 = 0.4; H2 = (1k∥1meg)/(1k + 1k∥1meg) ≈ 0.4998.
	want := 0.4 * (999.0 / 1999.0)
	if cmplx.Abs(h-complex(want, 0)) > 1e-3 {
		t.Fatalf("H = %v, want about %v", h, want)
	}
}

func TestSubcktInternalNodesPrefixed(t *testing.T) {
	nl := `t
.subckt rcblock a b
R1 a m 1k
C1 m b 1u
.ends
V1 in 0 1
X1 in out rcblock
RL out 0 1k
`
	c, err := Parse(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasNode("X1.m") {
		t.Fatalf("internal node not prefixed: %v", c.Nodes())
	}
}

func TestSubcktGroundNotMapped(t *testing.T) {
	nl := `t
.subckt gblock a
R1 a 0 1k
.ends
V1 in 0 1
X1 in gblock
`
	c, err := Parse(nl)
	if err != nil {
		t.Fatal(err)
	}
	if c.HasNode("X1.0") {
		t.Fatal("ground was instance-prefixed")
	}
}

func TestNestedSubcktInstances(t *testing.T) {
	nl := `t
.subckt unit a b
R1 a b 1k
.ends
.subckt pair a b
X1 a m unit
X2 m b unit
.ends
V1 in 0 1
Xtop in out pair
RL out 0 1k
`
	c, err := Parse(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Xtop.X1.R1", "Xtop.X2.R1"} {
		if _, ok := c.Element(name); !ok {
			t.Fatalf("missing %s in %v", name, c.ElementNames())
		}
	}
	ac, err := analysis.NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2k series into 1k load → 1/3.
	if cmplx.Abs(h-complex(1.0/3, 0)) > 1e-9 {
		t.Fatalf("H = %v, want 1/3", h)
	}
}

func TestSubcktOpAmpLibrary(t *testing.T) {
	// A realistic use: an inverting-amplifier subcircuit around an ideal
	// opamp, instantiated twice for gain (-2)·(-3) = 6.
	nl := `t
.subckt inv2 in out
Ri in sum 1k
Rf sum out 2k
U1 0 sum out
.ends
.subckt inv3 in out
Ri in sum 1k
Rf sum out 3k
U1 0 sum out
.ends
V1 in 0 1
X1 in a inv2
X2 a out inv3
RL out 0 1k
`
	c, err := Parse(nl)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-6) > 1e-9 {
		t.Fatalf("H = %v, want 6", h)
	}
}

func TestSubcktErrors(t *testing.T) {
	cases := map[string]string{
		"nested defs": `t
.subckt a x
.subckt b y
.ends
.ends
R1 q 0 1
V1 q 0 1
`,
		"missing ends": `t
.subckt a x
R1 x 0 1
V1 q 0 1
Rq q 0 1
`,
		"dup subckt": `t
.subckt a x
R1 x 0 1
.ends
.subckt a y
R1 y 0 1
.ends
V1 q 0 1
Rq q 0 1
`,
		"unknown subckt": `t
V1 q 0 1
X1 q nothere
Rq q 0 1
`,
		"port mismatch": `t
.subckt a x y
R1 x y 1
.ends
V1 q 0 1
X1 q a
Rq q 0 1
`,
		"short subckt header": `t
.subckt a
.ends
V1 q 0 1
Rq q 0 1
`,
		"short X card": `t
.subckt a x
R1 x 0 1
.ends
V1 q 0 1
X1 a
Rq q 0 1
`,
	}
	for name, nl := range cases {
		if _, err := Parse(nl); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSubcktCycleDetected(t *testing.T) {
	nl := `t
.subckt loop a b
X1 a b loop
.ends
V1 in 0 1
X1 in out loop
RL out 0 1
`
	_, err := Parse(nl)
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("err = %v, want nesting complaint", err)
	}
}

func TestEndsVsEndDistinction(t *testing.T) {
	// ".end" terminates the netlist; ".ends" only closes a subcircuit.
	nl := `t
.subckt a x
R1 x 0 1
.ends
V1 q 0 1
X1 q a
.end
R9 zz 0 1
`
	c, err := Parse(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Element("R9"); ok {
		t.Fatal("cards after .end parsed")
	}
	if _, ok := c.Element("X1.R1"); !ok {
		t.Fatal("subckt instance missing")
	}
}
