package netlist_test

import (
	"errors"
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

func TestParseValue(t *testing.T) {
	cases := map[string]float64{
		"4.7k":  4700,
		"100n":  1e-7,
		"2meg":  2e6,
		"1e-6":  1e-6,
		"0.5":   0.5,
		"75":    75,
		"1m":    1e-3,
		"10u":   1e-5,
		"3p":    3e-12,
		"2f":    2e-15,
		"1g":    1e9,
		"2t":    2e12,
		"-3.3k": -3300,
	}
	for in, want := range cases {
		got, err := netlist.ParseValue(in)
		if err != nil {
			t.Errorf("netlist.ParseValue(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("netlist.ParseValue(%q) = %g, want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1.2.3", "k"} {
		if _, err := netlist.ParseValue(bad); err == nil {
			t.Errorf("netlist.ParseValue(%q) accepted", bad)
		}
	}
}

func TestFormatValueRoundTrip(t *testing.T) {
	for _, v := range []float64{4700, 1e-7, 2e6, 0.5, 75, 1e-3, 3e-12, 0, 1.5e15} {
		s := netlist.FormatValue(v)
		got, err := netlist.ParseValue(s)
		if err != nil {
			t.Fatalf("netlist.FormatValue(%g) = %q does not parse: %v", v, s, err)
		}
		if math.Abs(got-v) > 1e-12*math.Abs(v) {
			t.Fatalf("round trip %g -> %q -> %g", v, s, got)
		}
	}
}

const rcNetlist = `simple rc lowpass
* a comment line
V1 in 0 1
R1 in out 1k
C1 out 0 1u ; trailing comment
.ac dec 10 1 100k
.end
`

func TestParseRC(t *testing.T) {
	c, err := netlist.Parse(rcNetlist)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "simple rc lowpass" {
		t.Fatalf("title = %q", c.Name())
	}
	if len(c.Elements()) != 3 {
		t.Fatalf("elements = %d, want 3", len(c.Elements()))
	}
	ac, err := analysis.NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 + complex(0, 1000*1e-3))
	if cmplx.Abs(h-want) > 1e-9 {
		t.Fatalf("H = %v, want %v", h, want)
	}
}

func TestParseNoTitle(t *testing.T) {
	c, err := netlist.Parse("V1 in 0 1\nR1 in 0 1k\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "netlist" {
		t.Fatalf("name = %q, want default", c.Name())
	}
}

func TestParseContinuation(t *testing.T) {
	c, err := netlist.Parse("t\nE1 out 0\n+ in 0\n+ 5\nR1 out 0 1\nV1 in 0 1\nRi in 0 1meg\n")
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c.Element("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	if e.(*circuit.VCVS).Gain != 5 {
		t.Fatalf("gain = %g", e.(*circuit.VCVS).Gain)
	}
}

func TestParseContinuationFirstLine(t *testing.T) {
	_, err := netlist.Parse("+ R1 a 0 1\n")
	var pe *netlist.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want netlist.ParseError", err)
	}
	if pe.Line != 1 {
		t.Fatalf("line = %d, want 1", pe.Line)
	}
}

func TestParseVSourcePhase(t *testing.T) {
	c, err := netlist.Parse("t\nV1 in 0 2 90\nR1 in 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	v := mustV(t, c, "V1")
	if cmplx.Abs(v.Amplitude-2i) > 1e-12 {
		t.Fatalf("amplitude = %v, want 2i", v.Amplitude)
	}
}

func mustV(t *testing.T, c *circuit.Circuit, name string) *circuit.VSource {
	t.Helper()
	e, ok := c.Element(name)
	if !ok {
		t.Fatalf("%s missing", name)
	}
	return e.(*circuit.VSource)
}

func TestParseAllKinds(t *testing.T) {
	nl := `all kinds
V1 in 0 1
I1 in 0 1m
R1 in a 1k
L1 a b 10m
C1 b 0 1u
E1 c 0 a 0 2
Rc c 0 1k
G1 d 0 a 0 1m
Rd d 0 1k
H1 e 0 V1 100
Re e 0 1k
F1 f 0 V1 3
Rf f 0 1k
U1 a 0 g
Rg g a 1k
.end
`
	c, err := netlist.Parse(nl)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Elements()); got != 15 {
		t.Fatalf("elements = %d, want 15", got)
	}
	u1, ok := c.Element("U1")
	if !ok {
		t.Fatal("U1 missing")
	}
	if _, ok := u1.(*circuit.IdealOpAmp); !ok {
		t.Fatal("U1 not parsed as opamp")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"t\n* only comments\n",  // no elements
		"t\nR1 a 0\n",           // missing value
		"t\nR1 a 0 xyz\n",       // bad value
		"t\nQ1 a 0 1\n",         // unknown kind
		"t\nE1 a 0 b 0\n",       // VCVS missing gain
		"t\nR1 a 0 1\nR1 b 0 1", // duplicate
	}
	for i, in := range cases {
		if _, err := netlist.Parse(in); err == nil {
			t.Errorf("case %d: bad netlist accepted", i)
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := netlist.Parse("title\nV1 in 0 1\nR1 in 0 badvalue\n")
	var pe *netlist.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want netlist.ParseError", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Fatalf("message = %q", pe.Error())
	}
}

func TestSerializeRoundTripBenchmarks(t *testing.T) {
	// Every built-in benchmark must round-trip: serialize, reparse, and
	// produce the same transfer function.
	for _, cut := range circuits.All() {
		text, err := netlist.Serialize(cut.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		back, err := netlist.Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", cut.Circuit.Name(), err, text)
		}
		ac1, err := analysis.NewAC(cut.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		ac2, err := analysis.NewAC(back)
		if err != nil {
			t.Fatalf("%s: reparsed circuit does not assemble: %v", cut.Circuit.Name(), err)
		}
		for _, w := range []float64{cut.Omega0 / 3, cut.Omega0, cut.Omega0 * 3} {
			h1, err := ac1.Transfer(cut.Source, cut.Output, w)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := ac2.Transfer(cut.Source, cut.Output, w)
			if err != nil {
				t.Fatal(err)
			}
			if cmplx.Abs(h1-h2) > 1e-9 {
				t.Fatalf("%s ω=%g: %v vs %v", cut.Circuit.Name(), w, h1, h2)
			}
		}
	}
}

func TestDotEndStopsParsing(t *testing.T) {
	c, err := netlist.Parse("t\nR1 a 0 1\nV1 a 0 1\n.end\nR2 b 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Element("R2"); ok {
		t.Fatal("cards after .end parsed")
	}
}

func TestBadNumberErrorCarriesLineAndCard(t *testing.T) {
	_, err := netlist.Parse("title\nR1 in out 4k7\nC1 out 0 100n\n")
	var pe *netlist.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want netlist.ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Card, "R1 in out 4k7") {
		t.Fatalf("card = %q, want the offending card text", pe.Card)
	}
	if !strings.Contains(pe.Msg, "bad number") {
		t.Fatalf("msg = %q", pe.Msg)
	}
}

func TestNoElementsErrorCarriesLine(t *testing.T) {
	_, err := netlist.Parse("just a title\n* a comment\n.op\n")
	var pe *netlist.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want netlist.ParseError", err)
	}
	if pe.Line != 1 {
		t.Fatalf("line = %d, want 1 (the title line)", pe.Line)
	}
	if !strings.Contains(pe.Msg, "no elements") {
		t.Fatalf("msg = %q", pe.Msg)
	}
}

func TestEmptyInputIsParseError(t *testing.T) {
	_, err := netlist.Parse("  \n* nothing here\n")
	var pe *netlist.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want netlist.ParseError", err)
	}
	if pe.Line != 1 || !strings.Contains(pe.Msg, "empty") {
		t.Fatalf("pe = %+v", pe)
	}
}

func TestSubcktBadValueCarriesDefinitionLine(t *testing.T) {
	nl := `title
.subckt div in out
R1 in out 1k
R2 out 0 bogus
.ends
X1 a b div
V1 a 0 1
`
	_, err := netlist.Parse(nl)
	var pe *netlist.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want netlist.ParseError", err)
	}
	if pe.Line != 4 {
		t.Fatalf("line = %d, want 4 (inside the .subckt body)", pe.Line)
	}
}

func TestContinuationErrorPointsAtCardStart(t *testing.T) {
	nl := "title\nR1 in out\n+ nonsense\n"
	_, err := netlist.Parse(nl)
	var pe *netlist.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want netlist.ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2 (the card's first physical line)", pe.Line)
	}
}
