// Package transient performs time-domain simulation of the circuit
// package's networks with the trapezoidal companion-model method — the
// same machinery a production simulator uses. For this repository it
// closes the loop on realism: the noisy-bench experiments can obtain the
// CUT's output waveform by actually integrating the circuit in time,
// rather than assuming the phasor steady state.
//
// Linear elements only (matching the circuit package): R, C, L,
// independent and controlled sources, ideal opamps. Because the network
// is linear and time-invariant, the MNA companion matrix is constant for
// a fixed step, so it is factored once and each step is a single
// back-substitution.
package transient

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/numeric"
)

// Waveform drives an independent source in the time domain.
type Waveform func(t float64) float64

// Sine returns amp·sin(ωt + phase).
func Sine(amp, omega, phase float64) Waveform {
	return func(t float64) float64 { return amp * math.Sin(omega*t+phase) }
}

// Step returns 0 before t0 and level after.
func Step(level, t0 float64) Waveform {
	return func(t float64) float64 {
		if t < t0 {
			return 0
		}
		return level
	}
}

// Multitone returns the sum of cosines amp_i·cos(ω_i·t + phase_i).
func Multitone(amps, omegas, phases []float64) (Waveform, error) {
	if len(amps) != len(omegas) || len(phases) != len(omegas) {
		return nil, fmt.Errorf("transient: multitone needs equal-length amp/omega/phase, got %d/%d/%d",
			len(amps), len(omegas), len(phases))
	}
	a := append([]float64(nil), amps...)
	w := append([]float64(nil), omegas...)
	p := append([]float64(nil), phases...)
	return func(t float64) float64 {
		var v float64
		for i := range a {
			v += a[i] * math.Cos(w[i]*t+p[i])
		}
		return v
	}, nil
}

// Config drives a transient run.
type Config struct {
	// Step is the fixed time step h.
	Step float64
	// Duration is the simulated time span; the run produces
	// floor(Duration/Step)+1 points including t = 0.
	Duration float64
	// Sources maps voltage/current source names to their waveforms.
	// Sources not listed hold their AC amplitude's real part as DC.
	Sources map[string]Waveform
}

// Result is a sampled transient solution.
type Result struct {
	// Times holds the sample instants.
	Times []float64
	// nodes maps node name → column in Voltages.
	nodes map[string]int
	// Voltages[i][j] is node j's voltage at Times[i].
	Voltages [][]float64
}

// Voltage returns the waveform of one node.
func (r *Result) Voltage(node string) ([]float64, error) {
	j, ok := r.nodes[node]
	if !ok {
		return nil, fmt.Errorf("transient: no recorded node %q", node)
	}
	out := make([]float64, len(r.Voltages))
	for i := range r.Voltages {
		out[i] = r.Voltages[i][j]
	}
	return out, nil
}

// Run integrates the circuit from zero initial conditions.
//
// Method: trapezoidal rule. Each reactive element is replaced by its
// companion model; for a fixed step the companion conductances are
// constant, so the MNA matrix is assembled and factored once. Reactive
// history currents update the right-hand side every step.
func Run(c *circuit.Circuit, cfg Config) (*Result, error) {
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("transient: nonpositive step %g", cfg.Step)
	}
	if cfg.Duration < cfg.Step {
		return nil, fmt.Errorf("transient: duration %g shorter than one step %g", cfg.Duration, cfg.Step)
	}
	sys, err := c.Assemble()
	if err != nil {
		return nil, err
	}
	n := sys.Size()
	h := cfg.Step

	// Assemble the constant companion matrix. Strategy: stamp the
	// circuit at the "trapezoidal equivalent frequency" is not exact, so
	// instead each element is handled explicitly below.
	a := numeric.NewMatrix(n, n)
	type capState struct {
		i, j int     // node indices (-1 = ground)
		g    float64 // companion conductance 2C/h
		v    float64 // previous voltage across
		ic   float64 // previous current through
	}
	type indState struct {
		i, j, k int     // nodes and branch-current row
		r       float64 // companion resistance 2L/h
		v       float64 // previous voltage across
		il      float64 // previous current through
	}
	type vsrcState struct {
		k    int // branch row
		wave Waveform
	}
	type isrcState struct {
		i, j int
		wave Waveform
	}
	var caps []*capState
	var inds []*indState
	var vsrcs []*vsrcState
	var isrcs []*isrcState

	nodeIdx := func(name string) (int, error) { return sys.NodeIndex(name) }
	add := func(i, j int, v float64) {
		if i >= 0 && j >= 0 {
			a.Add(i, j, complex(v, 0))
		}
	}
	addDiagPair := func(i, j int, g float64) {
		if i >= 0 {
			a.Add(i, i, complex(g, 0))
		}
		if j >= 0 {
			a.Add(j, j, complex(g, 0))
		}
		add(i, j, -g)
		add(j, i, -g)
	}

	for _, e := range c.Elements() {
		switch el := e.(type) {
		case *circuit.Resistor:
			i, err := nodeIdx(el.Nodes()[0])
			if err != nil {
				return nil, err
			}
			j, err := nodeIdx(el.Nodes()[1])
			if err != nil {
				return nil, err
			}
			addDiagPair(i, j, 1/el.Ohms)
		case *circuit.Capacitor:
			i, err := nodeIdx(el.Nodes()[0])
			if err != nil {
				return nil, err
			}
			j, err := nodeIdx(el.Nodes()[1])
			if err != nil {
				return nil, err
			}
			g := 2 * el.Farads / h
			addDiagPair(i, j, g)
			caps = append(caps, &capState{i: i, j: j, g: g})
		case *circuit.Inductor:
			i, err := nodeIdx(el.Nodes()[0])
			if err != nil {
				return nil, err
			}
			j, err := nodeIdx(el.Nodes()[1])
			if err != nil {
				return nil, err
			}
			k, ok := sys.BranchIndex(el.Name())
			if !ok {
				return nil, fmt.Errorf("transient: inductor %s lost its branch", el.Name())
			}
			r := 2 * el.Henries / h
			// Branch: v(i)-v(j) - r·I = rhs (history); KCL couplings.
			if i >= 0 {
				a.Add(i, k, 1)
				a.Add(k, i, 1)
			}
			if j >= 0 {
				a.Add(j, k, -1)
				a.Add(k, j, -1)
			}
			a.Add(k, k, complex(-r, 0))
			inds = append(inds, &indState{i: i, j: j, k: k, r: r})
		case *circuit.VSource:
			i, err := nodeIdx(el.Nodes()[0])
			if err != nil {
				return nil, err
			}
			j, err := nodeIdx(el.Nodes()[1])
			if err != nil {
				return nil, err
			}
			k, ok := sys.BranchIndex(el.Name())
			if !ok {
				return nil, fmt.Errorf("transient: source %s lost its branch", el.Name())
			}
			if i >= 0 {
				a.Add(i, k, 1)
				a.Add(k, i, 1)
			}
			if j >= 0 {
				a.Add(j, k, -1)
				a.Add(k, j, -1)
			}
			wave := cfg.Sources[el.Name()]
			if wave == nil {
				dc := real(el.Amplitude)
				wave = func(float64) float64 { return dc }
			}
			vsrcs = append(vsrcs, &vsrcState{k: k, wave: wave})
		case *circuit.ISource:
			i, err := nodeIdx(el.Nodes()[0])
			if err != nil {
				return nil, err
			}
			j, err := nodeIdx(el.Nodes()[1])
			if err != nil {
				return nil, err
			}
			wave := cfg.Sources[el.Name()]
			if wave == nil {
				dc := real(el.Amplitude)
				wave = func(float64) float64 { return dc }
			}
			isrcs = append(isrcs, &isrcState{i: i, j: j, wave: wave})
		case *circuit.VCVS, *circuit.VCCS, *circuit.CCVS, *circuit.CCCS, *circuit.IdealOpAmp:
			// Frequency-independent elements stamp identically at s = 0;
			// reuse the AC stamp on the real companion matrix.
			st := &stampAdapter{target: a, sys: sys}
			if err := stampReal(e, st); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("transient: unsupported element %T (%s)", e, e.Name())
		}
	}

	lu, err := numeric.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("transient: companion matrix singular: %w", err)
	}

	steps := int(cfg.Duration/h) + 1
	nodeNames := c.Nodes()
	nodeCol := make(map[string]int, len(nodeNames))
	cols := make([]int, len(nodeNames))
	for idx, name := range nodeNames {
		mi, err := sys.NodeIndex(name)
		if err != nil {
			return nil, err
		}
		nodeCol[name] = idx
		cols[idx] = mi
	}
	res := &Result{nodes: nodeCol}

	rhs := make([]complex128, n)
	x := make([]complex128, n)
	vAt := func(sol []complex128, i int) float64 {
		if i < 0 {
			return 0
		}
		return real(sol[i])
	}

	for step := 0; step < steps; step++ {
		t := float64(step) * h
		for i := range rhs {
			rhs[i] = 0
		}
		for _, vs := range vsrcs {
			rhs[vs.k] += complex(vs.wave(t), 0)
		}
		for _, is := range isrcs {
			v := is.wave(t)
			if is.i >= 0 {
				rhs[is.i] -= complex(v, 0)
			}
			if is.j >= 0 {
				rhs[is.j] += complex(v, 0)
			}
		}
		if step > 0 {
			// Trapezoidal history terms.
			for _, cs := range caps {
				ieq := cs.g*cs.v + cs.ic
				if cs.i >= 0 {
					rhs[cs.i] += complex(ieq, 0)
				}
				if cs.j >= 0 {
					rhs[cs.j] -= complex(ieq, 0)
				}
			}
			for _, ls := range inds {
				veq := ls.v + ls.r*ls.il
				rhs[ls.k] += complex(-veq, 0)
			}
		}
		if err := lu.SolveInto(x, rhs); err != nil {
			return nil, err
		}
		// Record node voltages.
		row := make([]float64, len(cols))
		for idx, mi := range cols {
			row[idx] = vAt(x, mi)
		}
		res.Times = append(res.Times, t)
		res.Voltages = append(res.Voltages, row)

		// Update reactive history.
		for _, cs := range caps {
			vNew := vAt(x, cs.i) - vAt(x, cs.j)
			iNew := cs.g*(vNew-cs.v) - cs.ic
			if step == 0 {
				// Cold start from zero state: the first point is the DC
				// solve; take it as the initial condition.
				iNew = 0
			}
			cs.v, cs.ic = vNew, iNew
		}
		for _, ls := range inds {
			vNew := vAt(x, ls.i) - vAt(x, ls.j)
			iNew := real(x[ls.k])
			ls.v, ls.il = vNew, iNew
		}
	}
	return res, nil
}

// stampAdapter lets frequency-independent AC stamps write into the real
// companion matrix.
type stampAdapter struct {
	target *numeric.Matrix
	sys    *circuit.System
}

// stampReal re-stamps a frequency-independent element at s = 0 into the
// companion matrix by building a tiny Stamp around it.
func stampReal(e circuit.Element, ad *stampAdapter) error {
	st, err := ad.sys.NewStamp(ad.target, make([]complex128, ad.target.Rows()), 0)
	if err != nil {
		return err
	}
	return e.Stamp(st)
}
