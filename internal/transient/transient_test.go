package transient

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
)

func TestWaveformHelpers(t *testing.T) {
	s := Sine(2, 1, 0)
	if s(0) != 0 || math.Abs(s(math.Pi/2)-2) > 1e-12 {
		t.Fatal("Sine wrong")
	}
	st := Step(5, 1)
	if st(0.5) != 0 || st(1.5) != 5 {
		t.Fatal("Step wrong")
	}
	mt, err := Multitone([]float64{1, 0.5}, []float64{1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mt(0)-1.5) > 1e-12 {
		t.Fatalf("Multitone(0) = %g, want 1.5", mt(0))
	}
	if _, err := Multitone([]float64{1}, []float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("ragged multitone accepted")
	}
}

func rcCircuit() *circuit.Circuit {
	c := circuit.New("rc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1))
	return c
}

func TestRunValidation(t *testing.T) {
	c := rcCircuit()
	if _, err := Run(c, Config{Step: 0, Duration: 1}); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Run(c, Config{Step: 1, Duration: 0.5}); err == nil {
		t.Fatal("duration < step accepted")
	}
}

func TestRCStepResponse(t *testing.T) {
	// v_out(t) = 1 - exp(-t/RC) for a unit step at t=0 (R=C=1).
	c := rcCircuit()
	res, err := Run(c, Config{
		Step:     1e-3,
		Duration: 5,
		Sources:  map[string]Waveform{"V1": Step(1, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range res.Times {
		want := 1 - math.Exp(-tm)
		if math.Abs(v[i]-want) > 5e-3 {
			t.Fatalf("t=%g: v=%g, want %g", tm, v[i], want)
		}
	}
	if _, err := res.Voltage("ghost"); err == nil {
		t.Fatal("ghost node accepted")
	}
}

// steadyStateAmpPhase extracts amplitude and phase of the last full
// cycle of a settled sinusoidal response by least-squares fit.
func steadyStateAmpPhase(times, v []float64, omega, tail float64) (float64, float64) {
	// Fit v ≈ a·cos(ωt) + b·sin(ωt) over t >= tail.
	var saa, sab, sbb, sav, sbv float64
	for i, tm := range times {
		if tm < tail {
			continue
		}
		c := math.Cos(omega * tm)
		s := math.Sin(omega * tm)
		saa += c * c
		sab += c * s
		sbb += s * s
		sav += c * v[i]
		sbv += s * v[i]
	}
	det := saa*sbb - sab*sab
	a := (sav*sbb - sbv*sab) / det
	b := (sbv*saa - sav*sab) / det
	return math.Hypot(a, b), math.Atan2(-b, a) // v = A·cos(ωt + φ)
}

func TestRCSineMatchesACAnalysis(t *testing.T) {
	// Drive the RC at ω = 2 rad/s and compare the settled amplitude and
	// phase against the frequency-domain solution.
	c := rcCircuit()
	omega := 2.0
	res, err := Run(c, Config{
		Step:     1e-3,
		Duration: 30,
		Sources:  map[string]Waveform{"V1": Sine(1, omega, math.Pi/2)}, // cos(ωt)
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	amp, ph := steadyStateAmpPhase(res.Times, v, omega, 20)

	ac, err := analysis.NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", omega)
	if err != nil {
		t.Fatal(err)
	}
	wantAmp := math.Hypot(real(h), imag(h))
	wantPh := math.Atan2(imag(h), real(h))
	if math.Abs(amp-wantAmp) > 2e-3 {
		t.Fatalf("amplitude %g, want %g", amp, wantAmp)
	}
	if math.Abs(math.Mod(ph-wantPh+3*math.Pi, 2*math.Pi)-math.Pi) > 2e-2 {
		t.Fatalf("phase %g, want %g", ph, wantPh)
	}
}

func TestRLCRingingFrequency(t *testing.T) {
	// Series RLC (R=0.2, L=1, C=1): underdamped step response rings at
	// ω_d = sqrt(1/LC - (R/2L)²) ≈ 0.995 rad/s.
	c := circuit.New("rlc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "a", 0.2))
	c.MustAdd(circuit.NewInductor("L1", "a", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1))
	res, err := Run(c, Config{
		Step:     1e-3,
		Duration: 40,
		Sources:  map[string]Waveform{"V1": Step(1, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	// Find zero crossings of v-1 (the ring around the final value).
	var crossings []float64
	for i := 1; i < len(v); i++ {
		a, b := v[i-1]-1, v[i]-1
		if a < 0 && b >= 0 || a > 0 && b <= 0 {
			crossings = append(crossings, res.Times[i])
		}
	}
	if len(crossings) < 6 {
		t.Fatalf("only %d crossings — not ringing", len(crossings))
	}
	// Average half-period from consecutive crossings.
	first, last := crossings[0], crossings[len(crossings)-1]
	half := (last - first) / float64(len(crossings)-1)
	wd := math.Pi / half
	want := math.Sqrt(1 - 0.01)
	if math.Abs(wd-want) > 0.02 {
		t.Fatalf("ringing at %g rad/s, want %g", wd, want)
	}
	// Final value settles to 1 (cap charged, no current).
	if math.Abs(v[len(v)-1]-1) > 0.05 {
		t.Fatalf("final value %g, want 1", v[len(v)-1])
	}
}

func TestOpAmpInvertingTransient(t *testing.T) {
	// Ideal inverting amplifier: v_out = -4·v_in at every instant.
	c := circuit.New("inv")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "sum", 1000))
	c.MustAdd(circuit.NewResistor("R2", "sum", "out", 4000))
	c.MustAdd(circuit.NewIdealOpAmp("U1", "0", "sum", "out"))
	res, err := Run(c, Config{
		Step:     1e-3,
		Duration: 2,
		Sources:  map[string]Waveform{"V1": Sine(0.5, 3, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	vout, err := res.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range res.Times {
		want := -4 * 0.5 * math.Sin(3*tm)
		if math.Abs(vout[i]-want) > 1e-9 {
			t.Fatalf("t=%g: out=%g, want %g", tm, vout[i], want)
		}
	}
}

func TestCurrentSourceAndDefaults(t *testing.T) {
	// A 2 A DC current source (default waveform = real part of phasor)
	// into 5 Ω: node voltage ±10 V depending on orientation; magnitude
	// must be 10.
	c := circuit.New("isrc")
	c.MustAdd(circuit.NewISource("I1", "0", "out", 2))
	c.MustAdd(circuit.NewResistor("R1", "out", "0", 5))
	res, err := Run(c, Config{Step: 0.1, Duration: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(v[len(v)-1])-10) > 1e-9 {
		t.Fatalf("|v| = %g, want 10", math.Abs(v[len(v)-1]))
	}
}

func TestVCVSInTransient(t *testing.T) {
	c := circuit.New("vcvs")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("Ri", "in", "0", 1e6))
	c.MustAdd(circuit.NewVCVS("E1", "out", "0", "in", "0", 3))
	c.MustAdd(circuit.NewResistor("RL", "out", "0", 100))
	res, err := Run(c, Config{
		Step:     0.01,
		Duration: 1,
		Sources:  map[string]Waveform{"V1": Step(2, 0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltage("out")
	if err != nil {
		t.Fatal(err)
	}
	// Before the step: 0; after: 6.
	if math.Abs(v[10]) > 1e-9 {
		t.Fatalf("pre-step v = %g", v[10])
	}
	if math.Abs(v[len(v)-1]-6) > 1e-9 {
		t.Fatalf("post-step v = %g, want 6", v[len(v)-1])
	}
}
