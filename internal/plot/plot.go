// Package plot renders simple ASCII charts so the ftbench tool can show
// the paper's figures — response families (Fig. 1) and trajectory planes
// (Fig. 3) — directly in a terminal, with no graphics dependencies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune // 0 → auto-assigned
}

// Chart accumulates series and renders them on a character grid.
type Chart struct {
	title      string
	width      int
	height     int
	series     []Series
	logX       bool
	xLab, yLab string
}

// New returns a chart of the given interior size (columns × rows).
func New(title string, width, height int) *Chart {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	return &Chart{title: title, width: width, height: height}
}

// LogX switches the x axis to log10 scale (all x must be positive).
func (c *Chart) LogX() *Chart { c.logX = true; return c }

// Labels sets the axis labels.
func (c *Chart) Labels(x, y string) *Chart { c.xLab, c.yLab = x, y; return c }

// Add appends a series. Points with non-finite coordinates are dropped
// at render time.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("plot: series %q is empty", s.Name)
	}
	c.series = append(c.series, s)
	return nil
}

var autoMarkers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '='}

// Render draws the chart.
func (c *Chart) Render() string {
	if len(c.series) == 0 {
		return c.title + "\n(no data)\n"
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if c.logX {
			return math.Log10(x)
		}
		return x
	}
	usable := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return false
		}
		if c.logX && x <= 0 {
			return false
		}
		return true
	}
	for _, s := range c.series {
		for i := range s.X {
			if !usable(s.X[i], s.Y[i]) {
				continue
			}
			v := tx(s.X[i])
			xmin = math.Min(xmin, v)
			xmax = math.Max(xmax, v)
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if xmin > xmax || ymin > ymax {
		return c.title + "\n(no finite data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, c.height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", c.width))
	}
	// Origin axes when in range.
	if ymin < 0 && ymax > 0 {
		r := c.rowOf(0, ymin, ymax)
		for j := 0; j < c.width; j++ {
			grid[r][j] = '·'
		}
	}
	if xmin < 0 && xmax > 0 && !c.logX {
		col := c.colOf(0, xmin, xmax)
		for i := 0; i < c.height; i++ {
			if grid[i][col] == ' ' {
				grid[i][col] = '·'
			}
		}
	}

	for si, s := range c.series {
		marker := s.Marker
		if marker == 0 {
			marker = autoMarkers[si%len(autoMarkers)]
		}
		for i := range s.X {
			if !usable(s.X[i], s.Y[i]) {
				continue
			}
			col := c.colOf(tx(s.X[i]), xmin, xmax)
			row := c.rowOf(s.Y[i], ymin, ymax)
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	for i, row := range grid {
		edge := "|"
		if i == 0 || i == c.height-1 {
			edge = "+"
		}
		fmt.Fprintf(&b, "%s%s%s\n", edge, string(row), edge)
	}
	// X range footer.
	lo, hi := xmin, xmax
	unit := ""
	if c.logX {
		lo, hi = math.Pow(10, xmin), math.Pow(10, xmax)
		unit = " (log)"
	}
	fmt.Fprintf(&b, " x: %.4g .. %.4g%s %s | y: %.4g .. %.4g %s\n", lo, hi, unit, c.xLab, ymin, ymax, c.yLab)
	// Legend.
	for si, s := range c.series {
		marker := s.Marker
		if marker == 0 {
			marker = autoMarkers[si%len(autoMarkers)]
		}
		fmt.Fprintf(&b, "   %c %s\n", marker, s.Name)
	}
	return b.String()
}

func (c *Chart) colOf(x, xmin, xmax float64) int {
	col := int(math.Round((x - xmin) / (xmax - xmin) * float64(c.width-1)))
	if col < 0 {
		col = 0
	}
	if col >= c.width {
		col = c.width - 1
	}
	return col
}

func (c *Chart) rowOf(y, ymin, ymax float64) int {
	row := int(math.Round((ymax - y) / (ymax - ymin) * float64(c.height-1)))
	if row < 0 {
		row = 0
	}
	if row >= c.height {
		row = c.height - 1
	}
	return row
}
