package plot

import (
	"math"
	"strings"
	"testing"
)

func TestEmptyChart(t *testing.T) {
	c := New("t", 40, 10)
	out := c.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart rendered: %q", out)
	}
}

func TestAddValidation(t *testing.T) {
	c := New("t", 40, 10)
	if err := c.Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("ragged series accepted")
	}
	if err := c.Add(Series{Name: "empty"}); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestRenderBasics(t *testing.T) {
	c := New("line", 40, 10)
	if err := c.Add(Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}, Marker: 'A'}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "line") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "A up") {
		t.Fatal("missing legend")
	}
	if strings.Count(out, "A") < 3 {
		t.Fatalf("markers missing:\n%s", out)
	}
	// Increasing series: the first A should be below the last A.
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, l := range lines {
		if strings.ContainsRune(l, 'A') && !strings.Contains(l, "A up") {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow >= lastRow {
		t.Fatalf("no vertical spread: rows %d..%d\n%s", firstRow, lastRow, out)
	}
}

func TestLogXAndNonFiniteDropped(t *testing.T) {
	c := New("log", 40, 8).LogX().Labels("rad/s", "|H|")
	err := c.Add(Series{
		Name: "resp",
		X:    []float64{0.01, 0.1, 1, 10, 100, -5, math.NaN()},
		Y:    []float64{1, 1, 0.7, 0.1, 0.01, 3, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "(log)") || !strings.Contains(out, "rad/s") {
		t.Fatalf("log footer missing:\n%s", out)
	}
}

func TestOriginAxesDrawn(t *testing.T) {
	c := New("axes", 30, 9)
	if err := c.Add(Series{Name: "s", X: []float64{-1, 0, 1}, Y: []float64{-1, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.ContainsRune(out, '·') {
		t.Fatalf("origin axes missing:\n%s", out)
	}
}

func TestMinimumSizesEnforced(t *testing.T) {
	c := New("tiny", 1, 1)
	if err := c.Add(Series{Name: "p", X: []float64{0, 5}, Y: []float64{0, 5}}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if len(out) == 0 {
		t.Fatal("no render")
	}
}

func TestConstantSeries(t *testing.T) {
	c := New("const", 30, 6)
	if err := c.Add(Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}); err != nil {
		t.Fatal(err)
	}
	out := c.Render()
	if !strings.Contains(out, "flat") {
		t.Fatalf("flat series unrendered:\n%s", out)
	}
}

func TestAutoMarkersDiffer(t *testing.T) {
	c := New("multi", 40, 8)
	for i, name := range []string{"a", "b", "c"} {
		x := []float64{0, 1, 2}
		y := []float64{float64(i), float64(i), float64(i)}
		if err := c.Add(Series{Name: name, X: x, Y: y}); err != nil {
			t.Fatal(err)
		}
	}
	out := c.Render()
	for _, m := range []string{"* a", "o b", "+ c"} {
		if !strings.Contains(out, m) {
			t.Fatalf("legend %q missing:\n%s", m, out)
		}
	}
}
