package geometry

import (
	"math"
	"testing"
)

func TestPolylineSegmentsLength(t *testing.T) {
	pl := Polyline{{0, 0}, {3, 0}, {3, 4}}
	segs := pl.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if pl.Length() != 7 {
		t.Fatalf("length = %v, want 7", pl.Length())
	}
	if (Polyline{{1, 1}}).Segments() != nil {
		t.Fatal("single-point polyline should have no segments")
	}
}

func TestPolylineBox(t *testing.T) {
	pl := Polyline{{1, 2}, {-1, 5}, {0, 0}}
	b := pl.Box()
	if b.Min != (Point{-1, 0}) || b.Max != (Point{1, 5}) {
		t.Fatalf("box = %+v", b)
	}
}

func TestNearestSegment(t *testing.T) {
	pl := Polyline{{0, 0}, {10, 0}, {10, 10}}
	i, pr, ok := pl.NearestSegment(Point{5, 1})
	if !ok || i != 0 {
		t.Fatalf("nearest = %d ok=%v, want 0", i, ok)
	}
	if pr.Dist != 1 {
		t.Fatalf("dist = %v, want 1", pr.Dist)
	}
	i, pr, ok = pl.NearestSegment(Point{12, 5})
	if !ok || i != 1 || pr.Dist != 2 {
		t.Fatalf("nearest = %d dist=%v, want 1, 2", i, pr.Dist)
	}
	if _, _, ok := (Polyline{{0, 0}}).NearestSegment(Point{1, 1}); ok {
		t.Fatal("degenerate polyline should report not-ok")
	}
	if d := (Polyline{}).DistTo(Point{0, 0}); !math.IsInf(d, 1) {
		t.Fatalf("empty DistTo = %v, want +Inf", d)
	}
}

func TestArcParam(t *testing.T) {
	pl := Polyline{{0, 0}, {10, 0}, {10, 10}}
	if got := pl.ArcParam(0, 0); got != 0 {
		t.Fatalf("ArcParam start = %v", got)
	}
	if got := pl.ArcParam(1, 1); got != 1 {
		t.Fatalf("ArcParam end = %v", got)
	}
	if got := pl.ArcParam(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ArcParam mid = %v, want 0.5", got)
	}
	// Clamping.
	if got := pl.ArcParam(99, 2); got != 1 {
		t.Fatalf("ArcParam clamped = %v, want 1", got)
	}
}

func TestIntersectionCount(t *testing.T) {
	x := Polyline{{-1, -1}, {1, 1}}
	y := Polyline{{-1, 1}, {1, -1}}
	if got := IntersectionCount(x, y, false); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	// Parallel lines never meet.
	z := Polyline{{-1, 2}, {1, 2}}
	if got := IntersectionCount(x, z, false); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	// Zigzag crossing a straight line multiple times.
	zig := Polyline{{0, -1}, {1, 1}, {2, -1}, {3, 1}}
	line := Polyline{{-1, 0}, {4, 0}}
	if got := IntersectionCount(zig, line, false); got != 3 {
		t.Fatalf("zigzag count = %d, want 3", got)
	}
	// Touch counting toggle.
	touch := Polyline{{0, 0}, {1, 1}}
	touched := Polyline{{1, 1}, {2, 0}}
	if got := IntersectionCount(touch, touched, false); got != 0 {
		t.Fatalf("touch not counted = %d, want 0", got)
	}
	if got := IntersectionCount(touch, touched, true); got != 1 {
		t.Fatalf("touch counted = %d, want 1", got)
	}
}

func TestSharedOriginIntersections(t *testing.T) {
	// Two trajectories through the origin: an X shape. Their only meeting
	// is at the origin, which must be excluded.
	a := Polyline{{-1, -1}, {0, 0}, {1, 1}}
	b := Polyline{{-1, 1}, {0, 0}, {1, -1}}
	if got := SharedOriginIntersections(a, b, Point{0, 0}, 1e-9); got != 0 {
		t.Fatalf("origin-only crossing counted: %d", got)
	}
	// Add a genuine off-origin crossing.
	c := Polyline{{-1, 0.5}, {1, 0.5}}
	d := Polyline{{0, 0}, {0.5, 1}}
	if got := SharedOriginIntersections(c, d, Point{0, 0}, 1e-9); got != 1 {
		t.Fatalf("off-origin crossing = %d, want 1", got)
	}
}

func TestSelfIntersections(t *testing.T) {
	straight := Polyline{{0, 0}, {1, 0}, {2, 0}}
	if got := straight.SelfIntersections(); got != 0 {
		t.Fatalf("straight self-intersections = %d", got)
	}
	// A loop: four segments where the last crosses the first.
	loop := Polyline{{0, 0}, {2, 0}, {2, 1}, {1, -1}}
	if got := loop.SelfIntersections(); got != 1 {
		t.Fatalf("loop self-intersections = %d, want 1", got)
	}
}

func TestOverlapLength(t *testing.T) {
	a := Polyline{{0, 0}, {10, 0}}
	b := Polyline{{0, 0.001}, {10, 0.001}}
	got := OverlapLength(a, b, 0.01, 50)
	if math.Abs(got-10) > 0.5 {
		t.Fatalf("overlap = %v, want about 10", got)
	}
	far := Polyline{{0, 5}, {10, 5}}
	if got := OverlapLength(a, far, 0.01, 50); got != 0 {
		t.Fatalf("far overlap = %v, want 0", got)
	}
}

func TestPolylineValidate(t *testing.T) {
	if err := (Polyline{{0, 0}, {1, 1}}).Validate(); err != nil {
		t.Fatalf("valid polyline rejected: %v", err)
	}
	if err := (Polyline{{math.NaN(), 0}}).Validate(); err == nil {
		t.Fatal("NaN polyline accepted")
	}
	if err := (Polyline{{0, math.Inf(1)}}).Validate(); err == nil {
		t.Fatal("Inf polyline accepted")
	}
}
