package geometry

import (
	"fmt"
	"math"
)

// Polyline is an ordered sequence of points; consecutive points define its
// segments. A fault trajectory is one polyline per circuit component.
type Polyline []Point

// Segments returns the polyline's segments in order. A polyline with
// fewer than two points has none.
func (pl Polyline) Segments() []Segment {
	if len(pl) < 2 {
		return nil
	}
	out := make([]Segment, 0, len(pl)-1)
	for i := 0; i+1 < len(pl); i++ {
		out = append(out, Segment{pl[i], pl[i+1]})
	}
	return out
}

// Length returns the total arc length.
func (pl Polyline) Length() float64 {
	var l float64
	for _, s := range pl.Segments() {
		l += s.Length()
	}
	return l
}

// Box returns the bounding box of the polyline; the zero box for an empty
// polyline.
func (pl Polyline) Box() BoundingBox {
	if len(pl) == 0 {
		return BoundingBox{}
	}
	b := BoundingBox{Min: pl[0], Max: pl[0]}
	for _, p := range pl[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
	}
	return b
}

// NearestSegment returns the index of the segment nearest to p, the
// projection onto it, and whether the polyline had any segments.
func (pl Polyline) NearestSegment(p Point) (int, Projection, bool) {
	segs := pl.Segments()
	if len(segs) == 0 {
		return 0, Projection{}, false
	}
	best := 0
	bestProj := Project(p, segs[0])
	for i := 1; i < len(segs); i++ {
		if pr := Project(p, segs[i]); pr.Dist < bestProj.Dist {
			best, bestProj = i, pr
		}
	}
	return best, bestProj, true
}

// DistTo returns the distance from p to the polyline (infinite for an
// empty one).
func (pl Polyline) DistTo(p Point) float64 {
	_, pr, ok := pl.NearestSegment(p)
	if !ok {
		return math.Inf(1)
	}
	return pr.Dist
}

// ArcParam returns the normalized arc-length parameter in [0,1] of the
// point at segment index i, local parameter t (clamped). It lets the
// diagnosis stage turn a projection foot into a deviation estimate.
func (pl Polyline) ArcParam(i int, t float64) float64 {
	segs := pl.Segments()
	if len(segs) == 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i >= len(segs) {
		i = len(segs) - 1
	}
	t = math.Max(0, math.Min(1, t))
	total := pl.Length()
	if total == 0 {
		return 0
	}
	var acc float64
	for j := 0; j < i; j++ {
		acc += segs[j].Length()
	}
	acc += t * segs[i].Length()
	return acc / total
}

// IntersectionCount counts intersection points between two polylines.
// Endpoint touches can be counted or not via countTouches; collinear
// overlaps always count (a shared pathway is the worst case for
// distinguishability, per the paper's fitness criterion).
func IntersectionCount(a, b Polyline, countTouches bool) int {
	sa, sb := a.Segments(), b.Segments()
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	if !a.Box().Overlaps(b.Box()) {
		return 0
	}
	count := 0
	for _, s := range sa {
		bs := BoxOf(s)
		for _, t := range sb {
			if !bs.Overlaps(BoxOf(t)) {
				continue
			}
			switch k, _ := Intersect(s, t); k {
			case ProperCrossing, CollinearOverlap:
				count++
			case EndpointTouch:
				if countTouches {
					count++
				}
			}
		}
	}
	return count
}

// SharedOriginIntersections counts intersections between two polylines
// that both pass through a common point (the golden origin in the
// fault-trajectory plane), excluding meetings that happen within tol of
// that shared point — those are structural, not diagnostic ambiguity.
// It allocates nothing.
func SharedOriginIntersections(a, b Polyline, origin Point, tol float64) int {
	count := 0
	for i := 0; i+1 < len(a); i++ {
		s := Segment{a[i], a[i+1]}
		for j := 0; j+1 < len(b); j++ {
			count += offOriginCount(s, Segment{b[j], b[j+1]}, origin, tol)
		}
	}
	return count
}

// offOriginCount reports whether the segment pair contributes one
// off-origin intersection (the per-pair kernel of
// SharedOriginIntersections).
func offOriginCount(s, t Segment, origin Point, tol float64) int {
	k, p := Intersect(s, t)
	switch k {
	case ProperCrossing, EndpointTouch:
		if p.Dist(origin) > tol {
			return 1
		}
	case CollinearOverlap:
		// Overlap away from the origin is a common pathway.
		if furthestFromOrigin(s, t, origin) > tol {
			return 1
		}
	}
	return 0
}

// SegmentBoxes fills dst (resliced, reallocated only if too small) with
// the per-segment bounding boxes of pl, each expanded by Eps so the
// Eps-tolerant intersection predicates can never find a meeting outside
// the boxes. Precomputing these once per polyline lets the pairwise
// counters skip disjoint segment pairs without rebuilding boxes per pair.
func (pl Polyline) SegmentBoxes(dst []BoundingBox) []BoundingBox {
	dst = dst[:0]
	for i := 0; i+1 < len(pl); i++ {
		dst = append(dst, BoxOf(Segment{pl[i], pl[i+1]}).Expand(Eps))
	}
	return dst
}

// SharedOriginIntersectionsBoxed is SharedOriginIntersections with
// caller-precomputed per-segment boxes (from SegmentBoxes) and
// whole-polyline boxes (the union of each polyline's segment boxes).
// Segment pairs with disjoint boxes are skipped before any intersection
// predicate runs, and when the two polylines' boxes only overlap within
// tol of the origin — trajectories leaving the origin into different
// regions of the plane — every point intersection is structural by
// construction, so only collinear overlaps (counted by their farthest
// segment endpoint) are still tested. Counts are identical to
// SharedOriginIntersections; nothing is allocated.
func SharedOriginIntersectionsBoxed(a, b Polyline, aSeg, bSeg []BoundingBox, aBox, bBox BoundingBox, origin Point, tol float64) int {
	if !aBox.Overlaps(bBox) {
		return 0
	}
	// The overlap region contains every point where the polylines can
	// meet. If its farthest corner is within tol of the origin, any
	// ProperCrossing or EndpointTouch found there would be excluded as
	// structural — only CollinearOverlap can still count, because its
	// counting criterion looks at segment endpoints, which may lie
	// outside the overlap region.
	lo := Point{math.Max(aBox.Min.X, bBox.Min.X), math.Max(aBox.Min.Y, bBox.Min.Y)}
	hi := Point{math.Min(aBox.Max.X, bBox.Max.X), math.Min(aBox.Max.Y, bBox.Max.Y)}
	collinearOnly := maxCornerDist(lo, hi, origin) <= tol

	count := 0
	for i := range aSeg {
		if !aSeg[i].Overlaps(bBox) {
			continue
		}
		s := Segment{a[i], a[i+1]}
		for j := range bSeg {
			if !aSeg[i].Overlaps(bSeg[j]) {
				continue
			}
			t := Segment{b[j], b[j+1]}
			if collinearOnly {
				if k, _ := Intersect(s, t); k == CollinearOverlap && furthestFromOrigin(s, t, origin) > tol {
					count++
				}
				continue
			}
			count += offOriginCount(s, t, origin, tol)
		}
	}
	return count
}

// maxCornerDist returns the largest distance from origin to the rectangle
// [lo, hi] — attained at one of its corners.
func maxCornerDist(lo, hi, origin Point) float64 {
	d := origin.Dist(lo)
	if v := origin.Dist(hi); v > d {
		d = v
	}
	if v := origin.Dist(Point{lo.X, hi.Y}); v > d {
		d = v
	}
	if v := origin.Dist(Point{hi.X, lo.Y}); v > d {
		d = v
	}
	return d
}

func furthestFromOrigin(s, t Segment, origin Point) float64 {
	d := s.A.Dist(origin)
	if v := s.B.Dist(origin); v > d {
		d = v
	}
	if v := t.A.Dist(origin); v > d {
		d = v
	}
	if v := t.B.Dist(origin); v > d {
		d = v
	}
	return d
}

// SelfIntersections counts proper self-crossings of a polyline, ignoring
// the inevitable endpoint sharing of consecutive segments.
func (pl Polyline) SelfIntersections() int {
	segs := pl.Segments()
	count := 0
	for i := 0; i < len(segs); i++ {
		for j := i + 2; j < len(segs); j++ {
			k, _ := Intersect(segs[i], segs[j])
			if k == ProperCrossing || k == CollinearOverlap {
				count++
			}
		}
	}
	return count
}

// OverlapLength estimates the length of a's portion that lies within tol
// of b, sampled at n points per segment. This is the "common pathway"
// metric the paper's fitness criterion wants minimized alongside
// intersections.
func OverlapLength(a, b Polyline, tol float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	var overlap float64
	for _, s := range a.Segments() {
		step := s.Length() / float64(n-1)
		inside := 0
		for i := 0; i < n; i++ {
			t := float64(i) / float64(n-1)
			p := s.A.Add(s.B.Sub(s.A).Scale(t))
			if b.DistTo(p) <= tol {
				inside++
			}
		}
		overlap += step * float64(inside)
	}
	return overlap
}

// Validate reports an error for polylines with NaN/Inf coordinates, which
// would poison the geometric predicates silently.
func (pl Polyline) Validate() error {
	for i, p := range pl {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("geometry: polyline point %d is not finite: %v", i, p)
		}
	}
	return nil
}
