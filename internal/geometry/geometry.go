// Package geometry implements the 2D (and small-k N-dimensional)
// computational geometry the fault-trajectory method rests on: segment
// intersection tests for the GA fitness function (the paper's "number of
// trajectory intersections" I), and perpendicular point-to-segment
// projection for the diagnosis step (dropping perpendiculars from an
// unknown-fault point onto known trajectories).
package geometry

import (
	"fmt"
	"math"
)

// Eps is the default tolerance used by the orientation and intersection
// predicates. Trajectory coordinates are magnitude differences of filter
// responses, typically O(1) after normalization, so an absolute epsilon is
// appropriate.
const Eps = 1e-12

// Point is a point in the Cartesian trajectory plane.
type Point struct {
	X, Y float64
}

// Add returns p + q as vectors.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q as vectors.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns k·p.
func (p Point) Scale(k float64) Point { return Point{k * p.X, k * p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Segment is a closed line segment from A to B.
type Segment struct {
	A, B Point
}

// Length returns the segment's Euclidean length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Point { return s.A.Add(s.B).Scale(0.5) }

// Degenerate reports whether the segment has (near-)zero length.
func (s Segment) Degenerate() bool { return s.Length() <= Eps }

// Orientation classifies the turn a→b→c:
// +1 counter-clockwise, -1 clockwise, 0 collinear (within Eps scaled by
// the operand magnitudes).
func Orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	scale := b.Sub(a).Norm() * c.Sub(a).Norm()
	tol := Eps * math.Max(scale, 1)
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// onSegmentCollinear reports whether point p, known collinear with s, lies
// within s's bounding box.
func onSegmentCollinear(p Point, s Segment) bool {
	return p.X <= math.Max(s.A.X, s.B.X)+Eps && p.X >= math.Min(s.A.X, s.B.X)-Eps &&
		p.Y <= math.Max(s.A.Y, s.B.Y)+Eps && p.Y >= math.Min(s.A.Y, s.B.Y)-Eps
}

// IntersectKind classifies how two segments meet.
type IntersectKind int

const (
	// NoIntersection: the segments do not meet.
	NoIntersection IntersectKind = iota
	// ProperCrossing: the segments cross at a single interior point of
	// both.
	ProperCrossing
	// EndpointTouch: they meet at a point that is an endpoint of at least
	// one segment.
	EndpointTouch
	// CollinearOverlap: they are collinear and share more than one point.
	CollinearOverlap
)

func (k IntersectKind) String() string {
	switch k {
	case NoIntersection:
		return "none"
	case ProperCrossing:
		return "proper"
	case EndpointTouch:
		return "touch"
	case CollinearOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("IntersectKind(%d)", int(k))
	}
}

// Intersect classifies the intersection of segments s and t and, for
// point intersections, returns the intersection point.
func Intersect(s, t Segment) (IntersectKind, Point) {
	o1 := Orientation(s.A, s.B, t.A)
	o2 := Orientation(s.A, s.B, t.B)
	o3 := Orientation(t.A, t.B, s.A)
	o4 := Orientation(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		// Strict crossing: compute the point by parametric solve.
		d := s.B.Sub(s.A)
		e := t.B.Sub(t.A)
		den := d.Cross(e)
		u := t.A.Sub(s.A).Cross(e) / den
		return ProperCrossing, s.A.Add(d.Scale(u))
	}

	// Collinearity / touching cases.
	collinear := o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0
	if collinear {
		// Project on the dominant axis to test overlap extent.
		pts := []Point{}
		for _, p := range []Point{t.A, t.B} {
			if onSegmentCollinear(p, s) {
				pts = append(pts, p)
			}
		}
		for _, p := range []Point{s.A, s.B} {
			if onSegmentCollinear(p, t) {
				pts = append(pts, p)
			}
		}
		if len(pts) == 0 {
			return NoIntersection, Point{}
		}
		// Distinct contact points → overlap; all coincident → touch.
		first := pts[0]
		for _, p := range pts[1:] {
			if p.Dist(first) > Eps {
				return CollinearOverlap, first
			}
		}
		return EndpointTouch, first
	}

	// Non-collinear but some orientation is zero: a T-junction or
	// endpoint meeting.
	if o1 == 0 && onSegmentCollinear(t.A, s) {
		return EndpointTouch, t.A
	}
	if o2 == 0 && onSegmentCollinear(t.B, s) {
		return EndpointTouch, t.B
	}
	if o3 == 0 && onSegmentCollinear(s.A, t) {
		return EndpointTouch, s.A
	}
	if o4 == 0 && onSegmentCollinear(s.B, t) {
		return EndpointTouch, s.B
	}
	return NoIntersection, Point{}
}

// Crosses reports whether segments s and t share at least one point.
func Crosses(s, t Segment) bool {
	k, _ := Intersect(s, t)
	return k != NoIntersection
}

// Projection is the result of dropping a perpendicular from a point onto
// the line through a segment.
type Projection struct {
	// Foot is the closest point on the closed segment.
	Foot Point
	// T is the line parameter: 0 at A, 1 at B; values outside [0,1] mean
	// the perpendicular foot fell outside the segment.
	T float64
	// Dist is the distance from the query point to Foot.
	Dist float64
	// Interior reports whether the perpendicular foot lies strictly
	// within the segment (the paper's "a perpendicular exists").
	Interior bool
}

// Project drops a perpendicular from p onto segment s. For degenerate
// segments the projection collapses to the endpoint.
func Project(p Point, s Segment) Projection {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 <= Eps*Eps {
		return Projection{Foot: s.A, T: 0, Dist: p.Dist(s.A), Interior: false}
	}
	t := p.Sub(s.A).Dot(d) / l2
	tc := math.Max(0, math.Min(1, t))
	foot := s.A.Add(d.Scale(tc))
	return Projection{
		Foot:     foot,
		T:        t,
		Dist:     p.Dist(foot),
		Interior: t > 0 && t < 1,
	}
}

// DistToSegment returns the distance from p to the closed segment s.
func DistToSegment(p Point, s Segment) float64 { return Project(p, s).Dist }

// BoundingBox is an axis-aligned rectangle.
type BoundingBox struct {
	Min, Max Point
}

// BoxOf returns the bounding box of a segment.
func BoxOf(s Segment) BoundingBox {
	return BoundingBox{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// Expand grows the box by margin on every side.
func (b BoundingBox) Expand(margin float64) BoundingBox {
	return BoundingBox{
		Min: Point{b.Min.X - margin, b.Min.Y - margin},
		Max: Point{b.Max.X + margin, b.Max.Y + margin},
	}
}

// Overlaps reports whether two boxes intersect (closed).
func (b BoundingBox) Overlaps(o BoundingBox) bool {
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y
}

// Contains reports whether the box contains p (closed).
func (b BoundingBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Union returns the smallest box containing both.
func (b BoundingBox) Union(o BoundingBox) BoundingBox {
	return BoundingBox{
		Min: Point{math.Min(b.Min.X, o.Min.X), math.Min(b.Min.Y, o.Min.Y)},
		Max: Point{math.Max(b.Max.X, o.Max.X), math.Max(b.Max.Y, o.Max.Y)},
	}
}
