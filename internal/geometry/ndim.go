package geometry

import (
	"fmt"
	"math"
)

// VecN is a point (or vector) in R^k for test vectors with k > 2
// frequencies. The paper uses k = 2; the k-D generalization powers the
// frequency-count ablation (experiment E6).
type VecN []float64

// DistN returns the Euclidean distance between a and b, which must have
// equal dimension.
func DistN(a, b VecN) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geometry: DistN dims %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SubN returns a - b.
func SubN(a, b VecN) VecN {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geometry: SubN dims %d vs %d", len(a), len(b)))
	}
	out := make(VecN, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// DotN returns the dot product.
func DotN(a, b VecN) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geometry: DotN dims %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// NormN returns the Euclidean norm.
func NormN(a VecN) float64 { return math.Sqrt(DotN(a, a)) }

// ProjectionN is the k-dimensional analogue of Projection.
type ProjectionN struct {
	Foot     VecN
	T        float64
	Dist     float64
	Interior bool
}

// ProjectN drops a perpendicular from p onto the segment a→b in R^k.
func ProjectN(p, a, b VecN) ProjectionN {
	d := SubN(b, a)
	l2 := DotN(d, d)
	if l2 <= Eps*Eps {
		return ProjectionN{Foot: append(VecN(nil), a...), T: 0, Dist: DistN(p, a)}
	}
	t := DotN(SubN(p, a), d) / l2
	tc := math.Max(0, math.Min(1, t))
	foot := make(VecN, len(a))
	for i := range foot {
		foot[i] = a[i] + tc*d[i]
	}
	return ProjectionN{Foot: foot, T: t, Dist: DistN(p, foot), Interior: t > 0 && t < 1}
}

// PolylineN is an ordered point sequence in R^k.
type PolylineN []VecN

// Dim returns the dimension of the polyline's points (0 if empty).
func (pl PolylineN) Dim() int {
	if len(pl) == 0 {
		return 0
	}
	return len(pl[0])
}

// LengthN returns the total arc length.
func (pl PolylineN) LengthN() float64 {
	var l float64
	for i := 0; i+1 < len(pl); i++ {
		l += DistN(pl[i], pl[i+1])
	}
	return l
}

// NearestSegmentN finds the closest segment of pl to p.
func (pl PolylineN) NearestSegmentN(p VecN) (int, ProjectionN, bool) {
	if len(pl) < 2 {
		return 0, ProjectionN{}, false
	}
	best := 0
	bestProj := ProjectN(p, pl[0], pl[1])
	for i := 1; i+1 < len(pl); i++ {
		if pr := ProjectN(p, pl[i], pl[i+1]); pr.Dist < bestProj.Dist {
			best, bestProj = i, pr
		}
	}
	return best, bestProj, true
}

// DistToN returns the distance from p to pl.
func (pl PolylineN) DistToN(p VecN) float64 {
	_, pr, ok := pl.NearestSegmentN(p)
	if !ok {
		return math.Inf(1)
	}
	return pr.Dist
}

// Project2D returns the 2D polyline of coordinates (i, j) of each point,
// used to count intersections of k-D trajectories in coordinate-plane
// projections.
func (pl PolylineN) Project2D(i, j int) Polyline {
	out := make(Polyline, len(pl))
	for k, p := range pl {
		out[k] = Point{p[i], p[j]}
	}
	return out
}

// PairwiseProjectedIntersections sums IntersectionCount over every
// coordinate-plane projection of two k-D polylines. For k = 2 it reduces
// to the paper's planar intersection count.
func PairwiseProjectedIntersections(a, b PolylineN, countTouches bool) int {
	dim := a.Dim()
	if bd := b.Dim(); bd != dim {
		panic(fmt.Sprintf("geometry: projected intersections of dims %d vs %d", dim, bd))
	}
	if dim < 2 {
		// In R^1 trajectories are intervals; count overlap as one
		// intersection if the intervals overlap.
		if dim == 0 || len(a) == 0 || len(b) == 0 {
			return 0
		}
		amin, amax := minMax1(a)
		bmin, bmax := minMax1(b)
		if amin <= bmax && bmin <= amax {
			return 1
		}
		return 0
	}
	total := 0
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			total += IntersectionCount(a.Project2D(i, j), b.Project2D(i, j), countTouches)
		}
	}
	return total
}

func minMax1(pl PolylineN) (float64, float64) {
	mn, mx := pl[0][0], pl[0][0]
	for _, p := range pl[1:] {
		mn = math.Min(mn, p[0])
		mx = math.Max(mx, p[0])
	}
	return mn, mx
}

// MinDistN returns the smallest distance between any vertex of a and the
// polyline b — a separation proxy for k-D trajectories, cheaper than true
// segment-segment distance and adequate for densely sampled trajectories.
func MinDistN(a, b PolylineN) float64 {
	best := math.Inf(1)
	for _, p := range a {
		if d := b.DistToN(p); d < best {
			best = d
		}
	}
	for _, p := range b {
		if d := a.DistToN(p); d < best {
			best = d
		}
	}
	return best
}
