package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecNBasics(t *testing.T) {
	a := VecN{1, 2, 2}
	b := VecN{0, 0, 0}
	if got := DistN(a, b); got != 3 {
		t.Fatalf("DistN = %v, want 3", got)
	}
	if got := NormN(a); got != 3 {
		t.Fatalf("NormN = %v, want 3", got)
	}
	if got := DotN(a, VecN{1, 1, 1}); got != 5 {
		t.Fatalf("DotN = %v, want 5", got)
	}
	s := SubN(a, VecN{1, 1, 1})
	if s[0] != 0 || s[1] != 1 || s[2] != 1 {
		t.Fatalf("SubN = %v", s)
	}
}

func TestVecNDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	DistN(VecN{1}, VecN{1, 2})
}

func TestProjectN(t *testing.T) {
	a, b := VecN{0, 0, 0}, VecN{10, 0, 0}
	pr := ProjectN(VecN{3, 4, 0}, a, b)
	if !pr.Interior || pr.Dist != 4 || math.Abs(pr.T-0.3) > 1e-12 {
		t.Fatalf("ProjectN = %+v", pr)
	}
	// Degenerate.
	pr = ProjectN(VecN{1, 0, 0}, a, a)
	if pr.Interior || pr.Dist != 1 {
		t.Fatalf("degenerate ProjectN = %+v", pr)
	}
}

func TestPolylineN(t *testing.T) {
	pl := PolylineN{{0, 0, 0}, {3, 0, 0}, {3, 4, 0}}
	if pl.Dim() != 3 {
		t.Fatalf("Dim = %d", pl.Dim())
	}
	if pl.LengthN() != 7 {
		t.Fatalf("LengthN = %v, want 7", pl.LengthN())
	}
	i, pr, ok := pl.NearestSegmentN(VecN{1.5, 1, 0})
	if !ok || i != 0 || pr.Dist != 1 {
		t.Fatalf("NearestSegmentN = %d %+v", i, pr)
	}
	if d := (PolylineN{}).DistToN(VecN{}); !math.IsInf(d, 1) {
		t.Fatalf("empty DistToN = %v", d)
	}
}

func TestProject2DAndProjectedIntersections(t *testing.T) {
	// Two 3D lines crossing in the XY projection only.
	a := PolylineN{{-1, -1, 0}, {1, 1, 0}}
	b := PolylineN{{-1, 1, 5}, {1, -1, 5}}
	xy := a.Project2D(0, 1)
	if xy[0] != (Point{-1, -1}) {
		t.Fatalf("Project2D = %v", xy)
	}
	// XY plane: cross once. XZ and YZ: a is at z=0, b at z=5 — they
	// still cross in those projections since projection ignores z...
	// verify against a direct count.
	got := PairwiseProjectedIntersections(a, b, false)
	want := IntersectionCount(a.Project2D(0, 1), b.Project2D(0, 1), false) +
		IntersectionCount(a.Project2D(0, 2), b.Project2D(0, 2), false) +
		IntersectionCount(a.Project2D(1, 2), b.Project2D(1, 2), false)
	if got != want {
		t.Fatalf("PairwiseProjectedIntersections = %d, want %d", got, want)
	}
	if got < 1 {
		t.Fatalf("expected at least the XY crossing, got %d", got)
	}
}

func TestPairwiseProjected2DMatchesPlanar(t *testing.T) {
	a2 := PolylineN{{-1, -1}, {1, 1}}
	b2 := PolylineN{{-1, 1}, {1, -1}}
	got := PairwiseProjectedIntersections(a2, b2, false)
	want := IntersectionCount(Polyline{{-1, -1}, {1, 1}}, Polyline{{-1, 1}, {1, -1}}, false)
	if got != want {
		t.Fatalf("k=2 projected = %d, planar = %d", got, want)
	}
}

func TestPairwiseProjected1D(t *testing.T) {
	a := PolylineN{{0}, {2}}
	b := PolylineN{{1}, {3}}
	if got := PairwiseProjectedIntersections(a, b, false); got != 1 {
		t.Fatalf("1D overlap = %d, want 1", got)
	}
	c := PolylineN{{5}, {6}}
	if got := PairwiseProjectedIntersections(a, c, false); got != 0 {
		t.Fatalf("1D disjoint = %d, want 0", got)
	}
}

func TestMinDistN(t *testing.T) {
	a := PolylineN{{0, 0}, {1, 0}}
	b := PolylineN{{0, 2}, {1, 2}}
	if got := MinDistN(a, b); got != 2 {
		t.Fatalf("MinDistN = %v, want 2", got)
	}
}

// Property: ProjectN in R^2 agrees with the planar Project.
func TestQuickProjectNMatches2D(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Point{r.NormFloat64(), r.NormFloat64()}
		b := Point{r.NormFloat64(), r.NormFloat64()}
		p := Point{r.NormFloat64(), r.NormFloat64()}
		pr2 := Project(p, Segment{a, b})
		prN := ProjectN(VecN{p.X, p.Y}, VecN{a.X, a.Y}, VecN{b.X, b.Y})
		return math.Abs(pr2.Dist-prN.Dist) < 1e-10 && pr2.Interior == prN.Interior
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
