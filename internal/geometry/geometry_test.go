package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Fatalf("Dot = %v, want 1", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Fatalf("Cross = %v, want -7", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := p.Dist(Point{4, 6}); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestOrientation(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orientation(a, b, Point{0.5, 1}) != 1 {
		t.Fatal("left turn not CCW")
	}
	if Orientation(a, b, Point{0.5, -1}) != -1 {
		t.Fatal("right turn not CW")
	}
	if Orientation(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear not detected")
	}
}

func TestIntersectProperCrossing(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 2}}
	u := Segment{Point{0, 2}, Point{2, 0}}
	k, p := Intersect(s, u)
	if k != ProperCrossing {
		t.Fatalf("kind = %v, want proper", k)
	}
	if p.Dist(Point{1, 1}) > 1e-12 {
		t.Fatalf("point = %v, want (1,1)", p)
	}
}

func TestIntersectNone(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 0}}
	u := Segment{Point{0, 1}, Point{1, 1}}
	if k, _ := Intersect(s, u); k != NoIntersection {
		t.Fatalf("kind = %v, want none", k)
	}
	// Segments whose infinite lines cross but segments don't.
	v := Segment{Point{5, -1}, Point{5, 1}}
	if k, _ := Intersect(s, v); k != NoIntersection {
		t.Fatalf("kind = %v, want none", k)
	}
}

func TestIntersectEndpointTouch(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 1}}
	u := Segment{Point{1, 1}, Point{2, 0}}
	k, p := Intersect(s, u)
	if k != EndpointTouch {
		t.Fatalf("kind = %v, want touch", k)
	}
	if p.Dist(Point{1, 1}) > 1e-12 {
		t.Fatalf("point = %v, want (1,1)", p)
	}
	// T-junction: endpoint of u in the interior of s.
	w := Segment{Point{0.5, 0.5}, Point{0.5, 2}}
	if k, _ := Intersect(s, w); k != EndpointTouch {
		t.Fatalf("T-junction kind = %v, want touch", k)
	}
}

func TestIntersectCollinear(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 0}}
	u := Segment{Point{1, 0}, Point{3, 0}}
	if k, _ := Intersect(s, u); k != CollinearOverlap {
		t.Fatalf("kind = %v, want overlap", k)
	}
	// Collinear but disjoint.
	v := Segment{Point{3, 0}, Point{4, 0}}
	if k, _ := Intersect(s, v); k != NoIntersection {
		t.Fatalf("kind = %v, want none", k)
	}
	// Collinear touching at a single point.
	w := Segment{Point{2, 0}, Point{4, 0}}
	if k, p := Intersect(s, w); k != EndpointTouch || p.Dist(Point{2, 0}) > 1e-12 {
		t.Fatalf("kind = %v at %v, want touch at (2,0)", k, p)
	}
}

func TestIntersectKindString(t *testing.T) {
	for k, want := range map[IntersectKind]string{
		NoIntersection:   "none",
		ProperCrossing:   "proper",
		EndpointTouch:    "touch",
		CollinearOverlap: "overlap",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestProject(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	pr := Project(Point{3, 4}, s)
	if !pr.Interior {
		t.Fatal("interior foot not reported")
	}
	if math.Abs(pr.T-0.3) > 1e-12 || pr.Dist != 4 || pr.Foot.Dist(Point{3, 0}) > 1e-12 {
		t.Fatalf("projection = %+v", pr)
	}
	// Beyond the B end: clamped foot, not interior.
	pr = Project(Point{15, 0}, s)
	if pr.Interior || pr.T <= 1 || pr.Foot.Dist(Point{10, 0}) > 1e-12 || pr.Dist != 5 {
		t.Fatalf("beyond-end projection = %+v", pr)
	}
	// Degenerate segment.
	pr = Project(Point{1, 1}, Segment{Point{0, 0}, Point{0, 0}})
	if pr.Interior || math.Abs(pr.Dist-math.Sqrt2) > 1e-12 {
		t.Fatalf("degenerate projection = %+v", pr)
	}
}

func TestSegmentHelpers(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	if s.Length() != 4 {
		t.Fatalf("Length = %v", s.Length())
	}
	if s.Midpoint() != (Point{2, 0}) {
		t.Fatalf("Midpoint = %v", s.Midpoint())
	}
	if s.Degenerate() {
		t.Fatal("non-degenerate segment flagged")
	}
	if !(Segment{Point{1, 1}, Point{1, 1}}).Degenerate() {
		t.Fatal("degenerate segment not flagged")
	}
}

func TestBoundingBox(t *testing.T) {
	s := Segment{Point{2, -1}, Point{0, 3}}
	b := BoxOf(s)
	if b.Min != (Point{0, -1}) || b.Max != (Point{2, 3}) {
		t.Fatalf("box = %+v", b)
	}
	if !b.Contains(Point{1, 0}) || b.Contains(Point{5, 5}) {
		t.Fatal("Contains wrong")
	}
	o := BoundingBox{Point{3, 3}, Point{4, 4}}
	if b.Overlaps(o) {
		t.Fatal("disjoint boxes reported overlapping")
	}
	if !b.Expand(1.5).Overlaps(o) {
		t.Fatal("expanded box should overlap")
	}
	u := b.Union(o)
	if u.Min != (Point{0, -1}) || u.Max != (Point{4, 4}) {
		t.Fatalf("union = %+v", u)
	}
}

// Property: Intersect is symmetric in its arguments (same kind).
func TestQuickIntersectSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSegment(r)
		u := randSegment(r)
		k1, _ := Intersect(s, u)
		k2, _ := Intersect(u, s)
		return k1 == k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the projection foot is never farther than either endpoint.
func TestQuickProjectionOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSegment(r)
		p := Point{r.NormFloat64() * 3, r.NormFloat64() * 3}
		pr := Project(p, s)
		return pr.Dist <= p.Dist(s.A)+1e-12 && pr.Dist <= p.Dist(s.B)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: if two segments properly cross, the returned point lies on
// both (distance ~0 to each).
func TestQuickCrossingPointOnBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSegment(r)
		u := randSegment(r)
		k, p := Intersect(s, u)
		if k != ProperCrossing {
			return true
		}
		return DistToSegment(p, s) < 1e-9 && DistToSegment(p, u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func randSegment(r *rand.Rand) Segment {
	return Segment{
		Point{r.NormFloat64(), r.NormFloat64()},
		Point{r.NormFloat64(), r.NormFloat64()},
	}
}
