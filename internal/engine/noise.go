package engine

import (
	"context"
	"fmt"
	"math/cmplx"

	"repro/internal/numeric"
	"repro/internal/rerr"
)

// boltzmann is k_B in J/K (mirrors analysis.Boltzmann; the engine stays
// below the analysis layer, so the constant is restated rather than
// imported — the noise tests pin the two paths against each other).
const boltzmann = 1.380649e-23

// SourceAmplitude returns |amplitude| of the driving source — the
// normalization the engine applies to every response magnitude. Noise
// voltages must be divided by it before they are compared against
// signature-space quantities.
func (e *Engine) SourceAmplitude() float64 { return e.ampAbs }

// OutputNoisePSD evaluates the thermal (Johnson) output-noise power
// spectral density at each angular frequency directly on the compiled
// stamp template: every resistor is exactly one conductance slot whose
// sparse u-pattern is the ±1 current-injection pattern between its
// nodes, so the noise transfer from that resistor is the same
// z = A(jω)⁻¹u solve the Sherman–Morrison fast path already performs.
// With h = z[out], the contribution is 4·k_B·T·|h|²/R (V²/Hz) — the
// current-noise form i_n² = 4kT/R through the transimpedance |h|.
//
// The result matches analysis.OutputNoise's clone-based evaluation
// (silence sources, inject a unit AC current across each resistor,
// re-solve) because stamping is linear: the template matrix equals the
// silenced clone's matrix, and the injection RHS equals −u.
func (e *Engine) OutputNoisePSD(ctx context.Context, omegas []float64, tempK float64) ([]float64, error) {
	if tempK <= 0 {
		return nil, fmt.Errorf("%w: engine: temperature %g K must be positive", rerr.ErrBadConfig, tempK)
	}
	if len(omegas) == 0 {
		return nil, fmt.Errorf("%w: engine: no frequencies", rerr.ErrBadConfig)
	}
	resistors := 0
	for i := range e.tmpl.slots {
		if e.tmpl.slots[i].kind == coeffConductance {
			resistors++
		}
	}
	if resistors == 0 {
		return nil, fmt.Errorf("%w: engine: circuit has no resistors to generate thermal noise", rerr.ErrBadConfig)
	}
	n := e.tmpl.n
	m := numeric.NewMatrix(n, n)
	f := numeric.NewMatrix(n, n)
	var lu numeric.LU
	rhs := make([]complex128, n)
	z := make([]complex128, n)
	out := make([]float64, len(omegas))
	for j, omega := range omegas {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, rerr.Canceled(err)
			}
		}
		s := complex(0, omega)
		e.tmpl.stampGolden(m, s)
		if err := f.CopyFrom(m); err != nil {
			return nil, err
		}
		if err := numeric.FactorReuse(&lu, f); err != nil {
			return nil, fmt.Errorf("engine: noise factorization at ω=%g: %w", omega, err)
		}
		var total float64
		for i := range e.tmpl.slots {
			sl := &e.tmpl.slots[i]
			if sl.kind != coeffConductance {
				continue
			}
			for k := range rhs {
				rhs[k] = 0
			}
			for _, ent := range sl.u {
				rhs[ent.idx] = ent.w
			}
			if err := lu.SolveInto(z, rhs); err != nil {
				return nil, fmt.Errorf("engine: noise z-solve (%s) at ω=%g: %w", sl.elem, omega, err)
			}
			var h complex128
			if e.outIdx >= 0 {
				h = z[e.outIdx]
			}
			habs := cmplx.Abs(h)
			total += 4 * boltzmann * tempK * habs * habs / sl.value
		}
		out[j] = total
	}
	return out, nil
}
