package engine

import (
	"fmt"

	"repro/internal/numeric"
)

// This file compiles the template's sparse golden stamp program. The
// template already enumerates every structural nonzero of A(s) — the
// static entries plus each slot's u·vᵀ rank-1 pattern — and that pattern
// is frequency-independent, so the symbolic analysis (transversal +
// minimum-degree ordering + fill pattern, numeric.AnalyzeSparse) runs
// once per circuit at Compile time. Per frequency the blocked column
// solver then only writes coefficient values into flat planes indexed by
// this program and calls SparseLU.RefactorReuse: no index discovery, no
// allocation.

// sparseProgram maps the template's stamp contributions onto value-plane
// positions of the compiled sparse pattern.
type sparseProgram struct {
	sym *numeric.SparseSymbolic
	// staticIdx[k] is the plane position of static entry k.
	staticIdx []int
	// Slot si's rank-1 products occupy prodIdx/prodW[slotOff[si]:slotOff[si+1]]:
	// position and weight (u.w·v.w) of every (u_i, v_j) product.
	slotOff []int
	prodIdx []int
	prodW   []complex128
	// slotRows[si] lists the distinct permuted rows slot si's rank-1
	// products land on — the touched set a partial refactorization
	// re-eliminates from when an exact fallback patches that slot.
	slotRows [][]int
}

// compileSparse builds the sparse stamp program for a compiled template.
// It returns nil (no sparse path) for patterns the analysis rejects —
// a structurally singular pattern cannot come from a circuit whose dense
// matrix is nonsingular, but degenerate templates stay usable on the
// dense path instead of failing Compile.
func compileSparse(t *Template) *sparseProgram {
	if t.n == 0 {
		return nil
	}
	rows := make([][]int, t.n)
	for _, e := range t.static {
		rows[e.i] = append(rows[e.i], e.j)
	}
	for si := range t.slots {
		sl := &t.slots[si]
		for _, ue := range sl.u {
			for _, ve := range sl.v {
				rows[ue.idx] = append(rows[ue.idx], ve.idx)
			}
		}
	}
	sym, err := numeric.AnalyzeSparse(t.n, rows)
	if err != nil {
		return nil
	}
	sp := &sparseProgram{sym: sym, staticIdx: make([]int, len(t.static)), slotOff: make([]int, len(t.slots)+1)}
	for k, e := range t.static {
		sp.staticIdx[k] = sym.ValueIndex(e.i, e.j)
	}
	sp.slotRows = make([][]int, len(t.slots))
	seen := make([]int, t.n)
	for i := range seen {
		seen[i] = -1
	}
	for si := range t.slots {
		sl := &t.slots[si]
		for _, ue := range sl.u {
			for _, ve := range sl.v {
				sp.prodIdx = append(sp.prodIdx, sym.ValueIndex(ue.idx, ve.idx))
				sp.prodW = append(sp.prodW, ue.w*ve.w)
			}
		}
		sp.slotOff[si+1] = len(sp.prodIdx)
		for p := sp.slotOff[si]; p < sp.slotOff[si+1]; p++ {
			if r := sym.RowOfIndex(sp.prodIdx[p]); seen[r] != si {
				seen[r] = si
				sp.slotRows[si] = append(sp.slotRows[si], r)
			}
		}
	}
	return sp
}

// stampGoldenSparse is stampGolden writing the golden A(s) into sparse
// value planes (length sym.LUNNZ(), fill positions stay zero). Entry
// accumulation order matches the dense stamps, so shared entries sum in
// the same order.
func (t *Template) stampGoldenSparse(re, im []float64, s complex128) {
	for i := range re {
		re[i], im[i] = 0, 0
	}
	sp := t.sparse
	for k := range t.static {
		v := t.static[k].v
		at := sp.staticIdx[k]
		re[at] += real(v)
		im[at] += imag(v)
	}
	for si := range t.slots {
		sl := &t.slots[si]
		t.addRank1Sparse(re, im, si, sl.coeff(sl.value, s))
	}
}

// addRank1Sparse accumulates θ · u vᵀ for slot si into sparse value
// planes — the sparse counterpart of addRank1/addRank1SoA.
func (t *Template) addRank1Sparse(re, im []float64, si int, theta complex128) {
	if theta == 0 {
		return
	}
	sp := t.sparse
	tr, ti := real(theta), imag(theta)
	for p := sp.slotOff[si]; p < sp.slotOff[si+1]; p++ {
		wr, wi := real(sp.prodW[p]), imag(sp.prodW[p])
		at := sp.prodIdx[p]
		re[at] += tr*wr - ti*wi
		im[at] += tr*wi + ti*wr
	}
}

// SparsePattern exposes the compiled symbolic pattern (nil when the
// template has no sparse path).
func (t *Template) SparsePattern() *numeric.SparseSymbolic {
	if t.sparse == nil {
		return nil
	}
	return t.sparse.sym
}

// StampSparse writes the golden A(jω) values onto the compiled sparse
// pattern's planes (each of length SparsePattern().LUNNZ()) — the
// benchmark harness uses it to time the numeric phase in isolation.
func (t *Template) StampSparse(re, im []float64, omega float64) error {
	if t.sparse == nil {
		return fmt.Errorf("engine: template has no sparse pattern")
	}
	t.stampGoldenSparse(re, im, complex(0, omega))
	return nil
}
