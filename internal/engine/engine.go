package engine

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/rerr"
	"repro/internal/sliceutil"
)

// denGuard is the relative threshold below which a Sherman–Morrison
// denominator (rank 1) or a capacitance-matrix pivot (rank k) counts as
// ill-conditioned and the fault falls back to a full factorization.
const denGuard = 1e-3

// cancelGuard flags catastrophic cancellation in the rank-1 correction:
// when the corrected output is this much smaller than the golden output,
// the subtraction may have destroyed the trailing digits, so the fault is
// re-solved exactly.
const cancelGuard = 1e-6

// FactorPath selects which factorization the blocked path's per-frequency
// golden solve runs on.
type FactorPath int

const (
	// FactorAuto applies the size/fill heuristic decided at New (the
	// default): sparse for large, sparse circuits; dense otherwise.
	FactorAuto FactorPath = iota
	// FactorDense forces the dense SoA factorization.
	FactorDense
	// FactorSparse forces the sparse factorization on circuits whose
	// pattern compiled; circuits without a sparse pattern stay dense.
	FactorSparse
)

// sparseMinN / sparseMaxFill are the FactorAuto heuristic: below a few
// dozen unknowns the dense SoA kernel's tight loops win, and a pattern
// whose L+U fills in past a quarter of n² has lost the sparsity the
// ordering was meant to preserve. BENCH_sparse.json records the measured
// dense/sparse crossover these thresholds are set from.
const (
	sparseMinN    = 64
	sparseMaxFill = 0.25
)

// Engine evaluates |H(jω)| for batches of parametric faults against one
// compiled circuit template.
type Engine struct {
	tmpl      *Template
	source    string
	output    string
	outIdx    int // -1 when the output is ground (H ≡ 0)
	amp       complex128
	ampAbs    float64   // |amp|, precomputed for the blocked path's magnitudes
	invAmpAbs float64   // 1/|amp|: the per-item divide becomes a multiply
	pool      sync.Pool // *workspace, shared across BatchResponses calls

	// scalarKernels switches the per-frequency column solver from the
	// blocked SoA kernels (the default) to the scalar complex128
	// reference path. See UseScalarKernels.
	scalarKernels bool

	// scalarSparse pins the golden sparse numeric phase to the scalar
	// one-column-at-a-time walk (the pre-supernodal baseline), disabling
	// frequency-blocked group refactorization and the supernodal panel
	// path. Benchmarks use it to attribute the supernodal win; see
	// UseScalarSparse.
	scalarSparse bool

	// refactorWorkers parallelizes single-column supernodal golden
	// refactorizations over the elimination level sets when > 1. See
	// SetRefactorWorkers.
	refactorWorkers int

	// factorPath is the golden-factorization override (FactorAuto by
	// default); sparseAuto is the heuristic verdict computed once at New.
	// See SetFactorPath.
	factorPath FactorPath
	sparseAuto bool

	// memo caches the flattened resolution of the last single-fault list
	// batched through this engine. Batch callers in tight loops (the GA
	// fitness path, per-candidate trajectory builds) pass the identical
	// fault universe on every call; a hit replaces the per-fault map
	// lookups and append churn with a handful of struct compares and flat
	// copies. Guarded by its own mutex — batches may run concurrently.
	memo resolutionMemo

	// stats counts the numeric paths batch solves take (see stats.go);
	// tracer, when installed via SetTracer, records per-frequency spans
	// on the fault-set batch path.
	stats  PathStats
	tracer *obs.Tracer
}

// resolutionMemo is the engine's cached fault resolution: the key is the
// fault list itself (value compare — fault.Fault is two words), the
// payload the flattened part groups batchInto would recompute.
type resolutionMemo struct {
	mu       sync.Mutex
	valid    bool
	faults   []fault.Fault
	off      []int
	partSlot []int
	partVal  []float64
	distinct []int
	zSlot    []int
}

// lookup copies the cached resolution into out if faults matches the
// cached list element-for-element. Equal component names are usually
// pointer-equal strings (the same universe slice every call), so the
// compare is two word compares per fault — far cheaper than the map
// lookups it replaces.
func (m *resolutionMemo) lookup(faults []fault.Fault, out *Batch) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.valid || len(m.faults) != len(faults) {
		return false
	}
	for i := range faults {
		if faults[i] != m.faults[i] {
			return false
		}
	}
	out.off = sliceutil.Grow(out.off, len(m.off))
	copy(out.off, m.off)
	out.partSlot = sliceutil.Grow(out.partSlot, len(m.partSlot))
	copy(out.partSlot, m.partSlot)
	out.partVal = sliceutil.Grow(out.partVal, len(m.partVal))
	copy(out.partVal, m.partVal)
	out.distinct = sliceutil.Grow(out.distinct, len(m.distinct))
	copy(out.distinct, m.distinct)
	out.zSlot = sliceutil.Grow(out.zSlot, len(m.zSlot))
	copy(out.zSlot, m.zSlot)
	return true
}

// store records out's freshly computed resolution under the faults key.
func (m *resolutionMemo) store(faults []fault.Fault, out *Batch) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults = append(m.faults[:0], faults...)
	m.off = append(m.off[:0], out.off...)
	m.partSlot = append(m.partSlot[:0], out.partSlot...)
	m.partVal = append(m.partVal[:0], out.partVal...)
	m.distinct = append(m.distinct[:0], out.distinct...)
	m.zSlot = append(m.zSlot[:0], out.zSlot...)
	m.valid = true
}

// New compiles the circuit and binds the measurement: the named driving
// voltage source and the observed output node.
func New(c *circuit.Circuit, source, output string) (*Engine, error) {
	tmpl, err := Compile(c)
	if err != nil {
		return nil, err
	}
	e, ok := c.Element(source)
	if !ok {
		return nil, fmt.Errorf("engine: no source element %q", source)
	}
	vs, ok := e.(*circuit.VSource)
	if !ok {
		return nil, fmt.Errorf("engine: element %q is not a voltage source", source)
	}
	if vs.Amplitude == 0 {
		return nil, fmt.Errorf("engine: source %q has zero amplitude", source)
	}
	outIdx, err := tmpl.sys.NodeIndex(output)
	if err != nil {
		return nil, err
	}
	ampAbs := cmplx.Abs(vs.Amplitude)
	eng := &Engine{tmpl: tmpl, source: source, output: output, outIdx: outIdx, amp: vs.Amplitude, ampAbs: ampAbs, invAmpAbs: 1 / ampAbs}
	eng.sparseAuto = tmpl.sparse != nil && tmpl.n >= sparseMinN && tmpl.sparse.sym.FillRatio() <= sparseMaxFill
	// Workspaces are sized for the worst case (every slot distinct) so one
	// pool serves every batch shape; callers in tight loops (the GA's
	// fitness evaluations) then reuse scratch instead of reallocating
	// three n×n matrices per call.
	eng.pool.New = func() any { return newWorkspace(tmpl) }
	return eng, nil
}

// SetFactorPath overrides the FactorAuto heuristic that picks between
// the dense and sparse golden factorization — for tests and benchmarks
// that pin one path. Must not be toggled concurrently with a running
// batch.
func (e *Engine) SetFactorPath(p FactorPath) { e.factorPath = p }

// sparseColumn reports whether the blocked column solver factors this
// engine's golden systems on the sparse path.
func (e *Engine) sparseColumn() bool {
	switch e.factorPath {
	case FactorDense:
		return false
	case FactorSparse:
		return e.tmpl.sparse != nil
	}
	return e.sparseAuto
}

// FactorPathName reports which golden factorization batch solves run on:
// "sparse" or "dense". Serving and benchmark envelopes record it so
// results say which path produced them.
func (e *Engine) FactorPathName() string {
	if e.sparseColumn() && !e.scalarKernels {
		return "sparse"
	}
	return "dense"
}

// Nodes returns the MNA system order (node voltages + branch currents).
func (e *Engine) Nodes() int { return e.tmpl.n }

// NNZ returns the structural nonzero count of the MNA pattern, or 0 when
// no sparse pattern compiled.
func (e *Engine) NNZ() int {
	if e.tmpl.sparse == nil {
		return 0
	}
	return e.tmpl.sparse.sym.NNZ()
}

// UseScalarKernels selects between the blocked SoA kernel path (false,
// the default) and the scalar complex128 reference path (true) for all
// subsequent batch calls. The scalar path is the original one-RHS-at-a-
// time implementation, kept as the reference the blocked path is pinned
// against (≤ 1e-9 relative on every built-in CUT); production callers
// never need this. Must not be toggled concurrently with a running
// batch.
func (e *Engine) UseScalarKernels(on bool) { e.scalarKernels = on }

// UseScalarSparse pins the golden sparse numeric phase to the scalar
// refactorization walk instead of the supernodal/frequency-blocked
// phase. Results are identical: the supernodal walk is pinned
// bit-identical to the scalar walk, the frequency-blocked walk is
// pinned identical under == (bit-identical except the sign of exact
// zeros — see numeric.RefactorBlock); only the numeric-phase cost
// changes. Benchmarks toggle this to attribute the supernodal speedup.
// Must not be toggled concurrently with a running batch.
func (e *Engine) UseScalarSparse(on bool) { e.scalarSparse = on }

// SetRefactorWorkers sets the worker count for parallel supernodal
// refactorization of single-column golden systems (level-set schedule
// within one refactorization; results are bit-identical at every worker
// count). n ≤ 1 — the default — refactors sequentially. Frequency
// groups of FreqBlock columns always use the blocked single-thread
// walk; the setting applies to the remainder columns and to engines
// whose batches arrive one frequency at a time. Must not be changed
// concurrently with a running batch.
func (e *Engine) SetRefactorWorkers(n int) { e.refactorWorkers = n }

// Template exposes the compiled stamp program.
func (e *Engine) Template() *Template { return e.tmpl }

// Source returns the driving source name.
func (e *Engine) Source() string { return e.source }

// Output returns the observed node name.
func (e *Engine) Output() string { return e.output }

// checkOmega rejects the frequencies the per-point analysis path rejects.
func checkOmega(omega float64) error {
	if omega < 0 {
		return fmt.Errorf("engine: negative frequency %g", omega)
	}
	if math.IsNaN(omega) || math.IsInf(omega, 0) {
		return fmt.Errorf("engine: non-finite frequency %g", omega)
	}
	return nil
}

// resolve maps a fault onto its template slot and faulted value. Golden
// faults resolve to slot -1.
func (e *Engine) resolve(f fault.Fault) (int, float64, error) {
	if f.IsGolden() {
		return -1, 0, nil
	}
	if f.Scale() <= 0 {
		return 0, 0, fmt.Errorf("engine: fault %s: deviation %+.0f%% makes the value nonpositive", f.ID(), f.Deviation*100)
	}
	i, ok := e.tmpl.byName[f.Component]
	if !ok {
		return 0, 0, fmt.Errorf("engine: fault %s: %w: no parameter slot for element %q", f.ID(), rerr.ErrUnknownComponent, f.Component)
	}
	return i, e.tmpl.slots[i].value * f.Scale(), nil
}

// Response computes |H(jω)| for one fault exactly: the template is
// patched at the fault's slot and the full system factored — no
// Sherman–Morrison shortcut. This is the reference the batch path must
// agree with, and the path Dictionary.Response memoizes behind.
func (e *Engine) Response(f fault.Fault, omega float64) (float64, error) {
	return e.ResponseSet(f, omega)
}

// ResponseSet computes |H(jω)| for one fault set exactly: the template
// is patched at every part's slot and the full system factored — no
// Woodbury shortcut. This is the full-LU reference the batched rank-k
// path must agree with (≤ 1e-9 relative, pinned by tests on every
// built-in CUT), and the path Dictionary.ResponseSet memoizes behind.
func (e *Engine) ResponseSet(set fault.Set, omega float64) (float64, error) {
	if err := checkOmega(omega); err != nil {
		return 0, err
	}
	parts := set.Parts()
	if err := checkDistinct(parts); err != nil {
		return 0, fmt.Errorf("engine: fault %s: %w", set.ID(), err)
	}
	s := complex(0, omega)
	m := numeric.NewMatrix(e.tmpl.n, e.tmpl.n)
	e.tmpl.stampGolden(m, s)
	for _, p := range parts {
		si, fv, err := e.resolve(p)
		if err != nil {
			return 0, err
		}
		if si < 0 {
			continue
		}
		sl := &e.tmpl.slots[si]
		e.tmpl.addRank1(m, sl, sl.coeff(fv, s)-sl.coeff(sl.value, s))
	}
	lu, err := numeric.FactorInPlace(m)
	if err != nil {
		return 0, fmt.Errorf("engine: fault %s at ω=%g: %w", set.ID(), omega, err)
	}
	x, err := lu.Solve(e.tmpl.b)
	if err != nil {
		return 0, fmt.Errorf("engine: fault %s at ω=%g: %w", set.ID(), omega, err)
	}
	return cmplx.Abs(e.out(x) / e.amp), nil
}

// checkDistinct rejects fault sets touching one component twice: the
// deviations would silently compose multiplicatively, which no caller
// means.
func checkDistinct(parts []fault.Fault) error {
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[i].Component == parts[j].Component {
				return fmt.Errorf("component %q faulted twice", parts[i].Component)
			}
		}
	}
	return nil
}

// GoldenResponse computes the nominal |H(jω)|.
func (e *Engine) GoldenResponse(omega float64) (float64, error) {
	return e.Response(fault.Fault{}, omega)
}

func (e *Engine) out(x []complex128) complex128 {
	if e.outIdx < 0 {
		return 0
	}
	return x[e.outIdx]
}

// Batch is a dense response table: Mags[i][j] is |H(jω_j)| under
// faults[i], and Golden[j] is the nominal |H(jω_j)|.
//
// A Batch owns its storage and can be reused across BatchResponsesInto
// calls: the magnitude rows share one flat backing array (row headers are
// resliced, not reallocated), and the per-call fault-resolution scratch
// lives alongside it. The zero Batch is ready to use. Rows returned from
// one fill are overwritten by the next, so callers that keep results
// across fills must copy them out.
type Batch struct {
	// Omegas is the frequency axis the table was evaluated on.
	Omegas []float64
	// Golden holds the nominal magnitudes per frequency.
	Golden []float64
	// Mags holds one row per requested fault, aligned with the input.
	Mags [][]float64

	// magsFlat is the contiguous backing store behind the Mags rows: row i
	// is magsFlat[i*len(Omegas) : (i+1)*len(Omegas)].
	magsFlat []float64
	// Per-call fault-resolution scratch, reused across fills. A batch
	// item is a fault *set* of k ≥ 0 (slot, value) parts: item i's parts
	// are partSlot/partVal[off[i]:off[i+1]] (0 parts ⇒ golden, 1 ⇒ the
	// rank-1 fast path, k ≥ 2 ⇒ the Woodbury path).
	off      []int     // item index → first part; len(items)+1 entries
	partSlot []int     // flattened part slots
	partVal  []float64 // flattened faulted values
	distinct []int     // distinct slots present, in first-seen order
	zSlot    []int     // template slot → z-solve position (-1 absent)
}

// Signatures returns the fault-space points: Mags − Golden, row-aligned
// with the batch's faults.
func (b *Batch) Signatures() [][]float64 {
	out := make([][]float64, len(b.Mags))
	for i, row := range b.Mags {
		sig := make([]float64, len(row))
		for j, m := range row {
			sig[j] = m - b.Golden[j]
		}
		out[i] = sig
	}
	return out
}

// workspace is one worker's preallocated scratch: stamped matrix, two
// factorization targets (golden and fallback) with their reusable LU
// headers, solution vectors, one z = A⁻¹u vector per distinct fault
// slot in the batch, and the small dense scratch of the rank-k
// capacitance solves (k is bounded by the slot count, so sizing at
// nslots covers every batch shape).
type workspace struct {
	m     *numeric.Matrix // golden A(s), kept unfactored for fallbacks
	f     *numeric.Matrix // golden factorization storage
	f2    *numeric.Matrix // fallback factorization storage
	lu    numeric.LU      // golden LU header, refactored in place
	lu2   numeric.LU      // fallback LU header
	x0    []complex128    // golden solution
	xf    []complex128    // fallback solution
	rhs   []complex128    // dense u for z-solves
	z     [][]complex128  // per distinct slot
	delta []complex128    // per-part coefficient deltas of one item
	cmat  []complex128    // k×k capacitance matrix (row-major)
	wvec  []complex128    // capacitance RHS, overwritten with the solution

	// Blocked SoA kernel scratch (the default path): the golden matrix
	// and both factorization targets as split re/im planes, their LU
	// headers, and the multi-RHS block holding the golden solve plus one
	// z-solve per distinct slot — filled and swept once per frequency.
	ms   *numeric.SoAMatrix // golden A(s) planes, kept unfactored for fallbacks
	fs   *numeric.SoAMatrix // golden factorization storage
	f2s  *numeric.SoAMatrix // fallback factorization storage
	slu  numeric.SoALU      // golden SoA LU header, refactored in place
	slu2 numeric.SoALU      // fallback SoA LU header
	blk  *numeric.Block     // col 0 = x0, col 1+zi = z of distinct slot zi

	// Sparse golden path scratch (sized only when the template compiled a
	// sparse pattern): the pristine stamped golden value planes, a second
	// pair for patched fallback refactorizations, and the two sparse LU
	// headers mirroring slu/slu2. colSparse records whether the current
	// column's golden factorization is sparse; denseStamped whether ws.ms
	// holds this column's dense golden stamp (filled lazily on sparse
	// columns, only if a dense fallback needs it).
	spre, spim   []float64
	spre2, spim2 []float64
	slus         numeric.SparseLU
	slus2        numeric.SparseLU
	colSparse    bool
	denseStamped bool
	touched      []int // merged per-slot touched rows of one fallback item

	// Frequency-blocked golden refactorization: a worker claims
	// FreqBlock consecutive frequency columns, stamps their value planes
	// and refactors all of them in one interleaved supernodal-schedule
	// walk (numeric.BlockRefactorer), caching per-column factors and
	// outcomes here. sluGold points at the current column's golden
	// sparse factors — a group slot or ws.slus — so solves and partial
	// refactorizations are source-agnostic.
	bref    numeric.BlockRefactorer
	slusBlk [numeric.FreqBlock]numeric.SparseLU
	spreBlk [numeric.FreqBlock][]float64
	spimBlk [numeric.FreqBlock][]float64
	grpErr  [numeric.FreqBlock]error
	grpJ0   int // first batch column of the cached group; -1 when none
	grpLen  int // columns in the cached group
	sluGold *numeric.SparseLU

	// Per-column per-distinct-slot precomputes (indexed by z position):
	// every deviation of a component shares its slot, so the slot-only
	// factors of the Sherman–Morrison correction are hoisted out of the
	// per-item loop — computed once per frequency, reused ~|deviations|
	// times.
	vtz    []complex128 // vᵀz for the slot's own z column
	vtx0   []complex128 // vᵀx0
	zoutc  []complex128 // z[outIdx]
	gcoeff []complex128 // golden coefficient sl.coeff(sl.value, s)

	// Column-local path counters (plain ints — the per-item loops must
	// not touch shared cache lines), flushed to Engine.stats once per
	// column by solveColumn.
	cDense         int64
	cSparse        int64
	cRank1         int64
	cRankK         int64
	cFallback      int64
	cSupernodal    int64
	cPartial       int64
	cPartialCols   int64
	cDenseExact    int64
	cDenseSingular int64
}

func newWorkspace(t *Template) *workspace {
	n, nslots := t.n, len(t.slots)
	ws := &workspace{
		x0:     make([]complex128, n),
		xf:     make([]complex128, n),
		rhs:    make([]complex128, n),
		z:      make([][]complex128, nslots),
		delta:  make([]complex128, nslots),
		cmat:   make([]complex128, nslots*nslots),
		wvec:   make([]complex128, nslots),
		blk:    numeric.NewBlock(n, 1+nslots),
		vtz:    make([]complex128, nslots),
		vtx0:   make([]complex128, nslots),
		zoutc:  make([]complex128, nslots),
		gcoeff: make([]complex128, nslots),
		grpJ0:  -1,
	}
	for i := range ws.z {
		ws.z[i] = make([]complex128, n)
	}
	if t.sparse != nil {
		lnnz := t.sparse.sym.LUNNZ()
		ws.spre = make([]float64, lnnz)
		ws.spim = make([]float64, lnnz)
		ws.spre2 = make([]float64, lnnz)
		ws.spim2 = make([]float64, lnnz)
		for x := 0; x < numeric.FreqBlock; x++ {
			ws.spreBlk[x] = make([]float64, lnnz)
			ws.spimBlk[x] = make([]float64, lnnz)
		}
	} else {
		// Dense-only engines factor n×n every column; sparse-capable
		// engines allocate the six dense matrices lazily, only if a
		// column actually falls back — a thousand-node grid would
		// otherwise pin hundreds of megabytes per worker it never uses.
		ws.ensureScalarDense(n)
		ws.ensureSoADense(n)
	}
	return ws
}

// ensureScalarDense sizes the scalar-path golden/fallback dense
// matrices on first use.
func (ws *workspace) ensureScalarDense(n int) {
	if ws.m == nil {
		ws.m = numeric.NewMatrix(n, n)
		ws.f = numeric.NewMatrix(n, n)
		ws.f2 = numeric.NewMatrix(n, n)
	}
}

// ensureSoADense sizes the blocked-path dense SoA matrices on first
// use (a dense golden column or a dense exact fallback).
func (ws *workspace) ensureSoADense(n int) {
	if ws.ms == nil {
		ws.ms = numeric.NewSoAMatrix(n, n)
		ws.fs = numeric.NewSoAMatrix(n, n)
		ws.f2s = numeric.NewSoAMatrix(n, n)
	}
}

func sparseDot(v []sparseEntry, x []complex128) complex128 {
	var s complex128
	for _, e := range v {
		s += e.w * x[e.idx]
	}
	return s
}

// BatchResponses fills the dense [fault][omega] response table. Per
// frequency the golden system is factored once; every fault is then
// solved by a rank-1 Sherman–Morrison update against that factorization,
// with a full refactorization fallback for ill-conditioned updates.
// Frequencies fan out over workers goroutines (≤0 → runtime.NumCPU()),
// each with its own preallocated workspace.
//
// The context is checked before every frequency column, so a canceled
// context stops the batch within one in-flight column per worker and the
// call returns an error wrapping rerr.ErrCanceled. A nil context is
// treated as context.Background(). The worker count and cancellation
// machinery never affect computed values: each column is solved
// independently in a self-contained workspace.
func (e *Engine) BatchResponses(ctx context.Context, faults []fault.Fault, omegas []float64, workers int) (*Batch, error) {
	return e.BatchResponsesProgress(ctx, faults, omegas, workers, nil)
}

// BatchResponsesProgress is BatchResponses with a per-frequency progress
// hook: progress(done, total) is called after each solved column. With
// multiple workers the hook runs concurrently from worker goroutines and
// must be safe for that; done is a cumulative count, not a column index.
func (e *Engine) BatchResponsesProgress(ctx context.Context, faults []fault.Fault, omegas []float64, workers int, progress func(done, total int)) (*Batch, error) {
	out := &Batch{}
	if err := e.batchInto(ctx, faults, nil, omegas, workers, progress, out); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchResponsesInto is BatchResponses writing into a caller-owned Batch:
// out's storage is reused when large enough, so a Batch held across calls
// makes the steady state allocation-free. This is the GA fitness path,
// where every candidate test vector fills the same table shape thousands
// of times. Results are identical to BatchResponses.
func (e *Engine) BatchResponsesInto(ctx context.Context, faults []fault.Fault, omegas []float64, workers int, out *Batch) error {
	return e.batchInto(ctx, faults, nil, omegas, workers, nil, out)
}

// BatchResponsesSets is the rank-k generalization of BatchResponses: row
// i of the table holds |H(jω)| under every part of sets[i] applied
// simultaneously. Per frequency the golden system is still factored
// once and one z-solve performed per distinct slot; a k-part item then
// costs one k×k Sherman–Morrison–Woodbury capacitance solve against
// those shared vectors, with the same full-refactorization fallback the
// rank-1 path uses when the update is ill-conditioned. Single-part items
// take the rank-1 fast path unchanged, so mixing single and multiple
// faults in one batch costs nothing extra. Concurrency and cancellation
// semantics match BatchResponses.
func (e *Engine) BatchResponsesSets(ctx context.Context, sets []fault.Set, omegas []float64, workers int) (*Batch, error) {
	out := &Batch{}
	if err := e.batchInto(ctx, nil, sets, omegas, workers, nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchResponsesSetsInto is BatchResponsesSets writing into a
// caller-owned Batch (see BatchResponsesInto for the reuse contract).
func (e *Engine) BatchResponsesSetsInto(ctx context.Context, sets []fault.Set, omegas []float64, workers int, out *Batch) error {
	return e.batchInto(ctx, nil, sets, omegas, workers, nil, out)
}

// itemID names batch item i for error reporting; exactly one of faults
// and sets is non-nil.
func itemID(faults []fault.Fault, sets []fault.Set, i int) string {
	if sets != nil {
		return sets[i].ID()
	}
	return faults[i].ID()
}

// resolveBatch fills out's flattened fault-resolution scratch for the
// batch items: part groups (off/partSlot/partVal) and the distinct-slot
// index (distinct/zSlot). The single-fault form presizes its append
// targets so a cold Batch takes one allocation per array instead of
// doubling growth churn.
func (e *Engine) resolveBatch(faults []fault.Fault, sets []fault.Set, out *Batch) error {
	nitems := len(faults)
	if sets != nil {
		nitems = len(sets)
	}
	out.off = sliceutil.Grow(out.off, nitems+1)
	out.off[0] = 0
	if sets == nil {
		out.partSlot = sliceutil.Grow(out.partSlot, len(faults))[:0]
		out.partVal = sliceutil.Grow(out.partVal, len(faults))[:0]
		for i, f := range faults {
			si, fv, err := e.resolve(f)
			if err != nil {
				return err
			}
			if si >= 0 {
				out.partSlot = append(out.partSlot, si)
				out.partVal = append(out.partVal, fv)
			}
			out.off[i+1] = len(out.partSlot)
		}
	} else {
		out.partSlot = out.partSlot[:0]
		out.partVal = out.partVal[:0]
		for i, set := range sets {
			parts := set.Parts()
			if err := checkDistinct(parts); err != nil {
				return fmt.Errorf("engine: fault %s: %w", set.ID(), err)
			}
			for _, p := range parts {
				si, fv, err := e.resolve(p)
				if err != nil {
					return err
				}
				if si >= 0 {
					out.partSlot = append(out.partSlot, si)
					out.partVal = append(out.partVal, fv)
				}
			}
			out.off[i+1] = len(out.partSlot)
		}
	}
	// Distinct slots present in the batch get one z-solve per frequency.
	out.zSlot = sliceutil.Grow(out.zSlot, len(e.tmpl.slots))
	for i := range out.zSlot {
		out.zSlot[i] = -1
	}
	out.distinct = sliceutil.Grow(out.distinct, len(e.tmpl.slots))[:0]
	for _, si := range out.partSlot {
		if out.zSlot[si] < 0 {
			out.zSlot[si] = len(out.distinct)
			out.distinct = append(out.distinct, si)
		}
	}
	return nil
}

// batchInto fills out with the dense response table, reusing its
// storage. Exactly one of faults and sets is non-nil; the single-fault
// form resolves without touching the Set interface (no boxing), which
// keeps the GA fitness path allocation-free.
func (e *Engine) batchInto(ctx context.Context, faults []fault.Fault, sets []fault.Set, omegas []float64, workers int, progress func(done, total int), out *Batch) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(omegas) == 0 {
		return fmt.Errorf("engine: empty frequency list")
	}
	for _, w := range omegas {
		if err := checkOmega(w); err != nil {
			return err
		}
	}
	nitems := len(faults)
	if sets != nil {
		nitems = len(sets)
	}
	// Resolve every item up front into flattened (slot, value) part
	// groups: item i owns parts off[i]..off[i+1]. Single-fault lists hit
	// the engine's resolution memo when they repeat — the GA fitness loop
	// and per-candidate trajectory builds pass the identical universe on
	// every call.
	memoHit := false
	if sets == nil {
		memoHit = e.memo.lookup(faults, out)
		if memoHit {
			e.stats.MemoHits.Add(1)
		} else {
			e.stats.MemoMisses.Add(1)
		}
	}
	if !memoHit {
		if err := e.resolveBatch(faults, sets, out); err != nil {
			return err
		}
		if sets == nil {
			e.memo.store(faults, out)
		}
	}

	out.Omegas = append(out.Omegas[:0], omegas...)
	out.Golden = sliceutil.Grow(out.Golden, len(omegas))
	nw := len(omegas)
	out.magsFlat = sliceutil.Grow(out.magsFlat, nitems*nw)
	out.Mags = sliceutil.Grow(out.Mags, nitems)
	for i := range out.Mags {
		out.Mags[i] = out.magsFlat[i*nw : (i+1)*nw : (i+1)*nw]
	}

	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Workers claim whole frequency groups (FreqBlock consecutive
	// columns refactored in one blocked walk on the sparse path, single
	// columns otherwise), so the useful worker count is the group count.
	unit := 1
	if !e.scalarKernels && e.sparseColumn() && !e.scalarSparse {
		unit = numeric.FreqBlock
	}
	groups := (len(omegas) + unit - 1) / unit
	if workers > groups {
		workers = groups
	}

	// The progress closure (and the counter it captures) is only built
	// when a hook is set: the GA fitness path runs without one, and the
	// escape to the heap would cost two allocations per call.
	total := len(omegas)
	var report func()
	if progress != nil {
		var done atomic.Int64
		report = func() { progress(int(done.Add(1)), total) }
	}

	if workers == 1 {
		// Inline path: no goroutine or channel overhead for the common
		// small batches (a GA candidate is k=2 frequencies).
		ws := e.pool.Get().(*workspace)
		defer e.pool.Put(ws)
		ws.grpJ0, ws.grpLen = -1, 0
		for g := 0; g < len(omegas); g += unit {
			hi := g + unit
			if hi > len(omegas) {
				hi = len(omegas)
			}
			e.prepareGroup(ws, omegas, g, hi)
			for j := g; j < hi; j++ {
				if err := ctx.Err(); err != nil {
					return rerr.Canceled(err)
				}
				if err := e.solveColumn(ws, omegas[j], faults, sets, out, j); err != nil {
					return err
				}
				if report != nil {
					report()
				}
			}
		}
		return nil
	}
	return e.batchParallel(ctx, faults, sets, omegas, workers, unit, report, out)
}

// batchParallel is batchInto's worker-pool branch. It lives in its own
// function so its goroutine closures capture this frame's variables, not
// batchInto's: escape analysis is flow-insensitive, and keeping the
// captures here is what lets the single-worker GA path run without ctx
// or progress state escaping to the heap.
func (e *Engine) batchParallel(ctx context.Context, faults []fault.Fault, sets []fault.Set, omegas []float64, workers, unit int, report func(), out *Batch) error {
	jobs := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := e.pool.Get().(*workspace)
			defer e.pool.Put(ws)
			ws.grpJ0, ws.grpLen = -1, 0
			for g := range jobs {
				if ctx.Err() != nil {
					continue // drain without solving so the producer never blocks
				}
				hi := g + unit
				if hi > len(omegas) {
					hi = len(omegas)
				}
				e.prepareGroup(ws, omegas, g, hi)
				for j := g; j < hi; j++ {
					if err := e.solveColumn(ws, omegas[j], faults, sets, out, j); err != nil {
						select {
						case errs <- err:
						default:
						}
						// Keep draining so the producer never blocks.
						for range jobs {
						}
						return
					}
					if report != nil {
						report()
					}
				}
			}
		}()
	}
feed:
	for g := 0; g < len(omegas); g += unit {
		select {
		case jobs <- g:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	// A genuine solve error outranks cancellation: workers never push
	// cancellation into errs, so anything there is a deterministic
	// failure the caller must see (retrying on ErrCanceled would loop).
	select {
	case err := <-errs:
		return err
	default:
	}
	if err := ctx.Err(); err != nil {
		return rerr.Canceled(err)
	}
	return nil
}

// solveColumn fills column j of the batch table: one golden
// factorization, one z-solve per distinct slot, then O(k²·n_sparse + k³)
// work per k-part item (O(1) for the dominant rank-1 case). The
// item-resolution scratch (off, partSlot, partVal, distinct, zSlot) is
// read from out, where batchInto prepared it. The work runs on the
// blocked SoA kernels by default; UseScalarKernels(true) routes it
// through the original scalar complex128 reference implementation.
func (e *Engine) solveColumn(ws *workspace, omega float64, faults []fault.Fault, sets []fault.Set, out *Batch, j int) error {
	// Path counters accumulate in the workspace for the column and flush
	// to the shared atomics once at the end — including error returns, so
	// partially solved columns are still attributed. Spans are recorded
	// on the fault-set path only (see SetTracer); the single-fault GA
	// fitness path pays one nil check here and nothing else.
	if tr := e.tracer; tr != nil && sets != nil {
		defer tr.StartSpan("engine.column").End()
	}
	ws.cDense, ws.cSparse, ws.cRank1, ws.cRankK, ws.cFallback = 0, 0, 0, 0, 0
	ws.cSupernodal, ws.cPartial, ws.cPartialCols, ws.cDenseExact, ws.cDenseSingular = 0, 0, 0, 0, 0
	var err error
	if e.scalarKernels {
		err = e.solveColumnScalar(ws, omega, faults, sets, out, j)
	} else {
		err = e.solveColumnBlocked(ws, omega, faults, sets, out, j)
	}
	e.stats.flush(ws)
	return err
}

// solveColumnScalar is the scalar complex128 reference implementation
// of solveColumn: one golden factorization and k+1 sequential one-RHS
// triangular solves per frequency.
func (e *Engine) solveColumnScalar(ws *workspace, omega float64, faults []fault.Fault, sets []fault.Set, out *Batch, j int) error {
	s := complex(0, omega)
	t := e.tmpl
	ws.ensureScalarDense(t.n)
	t.stampGolden(ws.m, s)
	if err := ws.f.CopyFrom(ws.m); err != nil {
		return err
	}
	if err := numeric.FactorReuse(&ws.lu, ws.f); err != nil {
		return fmt.Errorf("engine: golden system at ω=%g: %w", omega, err)
	}
	ws.cDense++
	lu := &ws.lu
	if err := lu.SolveInto(ws.x0, t.b); err != nil {
		return err
	}
	x0out := e.out(ws.x0)
	out.Golden[j] = cmplx.Abs(x0out / e.amp)

	for zi, si := range out.distinct {
		for i := range ws.rhs {
			ws.rhs[i] = 0
		}
		for _, ue := range t.slots[si].u {
			ws.rhs[ue.idx] = ue.w
		}
		if err := lu.SolveInto(ws.z[zi], ws.rhs); err != nil {
			return err
		}
	}

	for fi := range out.Mags {
		lo, hi := out.off[fi], out.off[fi+1]
		if lo == hi {
			out.Mags[fi][j] = out.Golden[j]
			continue
		}
		if hi-lo > 1 {
			if err := e.solveItemK(ws, s, omega, faults, sets, out, fi, j, x0out); err != nil {
				return err
			}
			continue
		}
		si := out.partSlot[lo]
		sl := &t.slots[si]
		delta := sl.coeff(out.partVal[lo], s) - sl.coeff(sl.value, s)
		if delta == 0 {
			out.Mags[fi][j] = out.Golden[j]
			continue
		}
		z := ws.z[out.zSlot[si]]
		ws.cRank1++
		vtz := sparseDot(sl.v, z)
		den := 1 + delta*vtz
		var zout complex128
		if e.outIdx >= 0 {
			zout = z[e.outIdx]
		}
		xout := x0out - delta*sparseDot(sl.v, ws.x0)/den*zout
		if cmplx.Abs(den) < denGuard*(1+cmplx.Abs(delta*vtz)) ||
			cmplx.Abs(xout) < cancelGuard*cmplx.Abs(x0out) {
			// Ill-conditioned update or catastrophic cancellation: solve
			// the faulted system exactly.
			ws.cFallback++
			if err := ws.f2.CopyFrom(ws.m); err != nil {
				return err
			}
			t.addRank1(ws.f2, sl, delta)
			if err := numeric.FactorReuse(&ws.lu2, ws.f2); err != nil {
				return fmt.Errorf("engine: fault %s at ω=%g: %w", itemID(faults, sets, fi), omega, err)
			}
			ws.cDense++
			if err := ws.lu2.SolveInto(ws.xf, t.b); err != nil {
				return err
			}
			xout = e.out(ws.xf)
		}
		out.Mags[fi][j] = cmplx.Abs(xout / e.amp)
	}
	return nil
}

// solveItemK solves one k ≥ 2 part item of column j by the
// Sherman–Morrison–Woodbury identity. With the update written as
// Σ_a δ_a u_a v_aᵀ, the corrected solution is
//
//	x = x₀ − Z w,   (I_k + diag(δ) Vᵀ Z) w = diag(δ) Vᵀ x₀,
//
// where column b of Z is the already-computed z_b = A⁻¹ u_b shared with
// every other item touching slot b. Only the k×k capacitance system is
// new work. An ill-conditioned capacitance matrix (small pivot) or a
// catastrophic cancellation in the output falls back to an exact
// refactorization of the patched system — the same guards, and the same
// fallback, as the rank-1 path.
func (e *Engine) solveItemK(ws *workspace, s complex128, omega float64, faults []fault.Fault, sets []fault.Set, out *Batch, fi, j int, x0out complex128) error {
	t := e.tmpl
	lo, hi := out.off[fi], out.off[fi+1]
	k := hi - lo
	anyDelta := false
	for a := 0; a < k; a++ {
		sl := &t.slots[out.partSlot[lo+a]]
		d := sl.coeff(out.partVal[lo+a], s) - sl.coeff(sl.value, s)
		ws.delta[a] = d
		if d != 0 {
			anyDelta = true
		}
	}
	if !anyDelta {
		out.Mags[fi][j] = out.Golden[j]
		return nil
	}
	ws.cRankK++
	cm := ws.cmat[:k*k]
	w := ws.wvec[:k]
	for a := 0; a < k; a++ {
		sl := &t.slots[out.partSlot[lo+a]]
		w[a] = ws.delta[a] * sparseDot(sl.v, ws.x0)
		for b := 0; b < k; b++ {
			v := ws.delta[a] * sparseDot(sl.v, ws.z[out.zSlot[out.partSlot[lo+b]]])
			if a == b {
				v++
			}
			cm[a*k+b] = v
		}
	}
	xout := x0out
	ok := solveSmall(k, cm, w)
	if ok && e.outIdx >= 0 {
		for b := 0; b < k; b++ {
			xout -= w[b] * ws.z[out.zSlot[out.partSlot[lo+b]]][e.outIdx]
		}
	}
	if !ok || cmplx.Abs(xout) < cancelGuard*cmplx.Abs(x0out) {
		ws.cFallback++
		if err := ws.f2.CopyFrom(ws.m); err != nil {
			return err
		}
		for a := 0; a < k; a++ {
			t.addRank1(ws.f2, &t.slots[out.partSlot[lo+a]], ws.delta[a])
		}
		if err := numeric.FactorReuse(&ws.lu2, ws.f2); err != nil {
			return fmt.Errorf("engine: fault %s at ω=%g: %w", itemID(faults, sets, fi), omega, err)
		}
		ws.cDense++
		if err := ws.lu2.SolveInto(ws.xf, t.b); err != nil {
			return err
		}
		xout = e.out(ws.xf)
	}
	out.Mags[fi][j] = cmplx.Abs(xout / e.amp)
	return nil
}

// solveSmall solves the k×k dense complex system m·x = r in place
// (row-major m; r is overwritten with the solution) by Gaussian
// elimination with partial pivoting. It reports false — leaving the
// caller to fall back to an exact solve — when a pivot falls below
// denGuard relative to the matrix magnitude, the analogue of the rank-1
// denominator guard.
func solveSmall(k int, m, r []complex128) bool {
	var norm float64
	for _, v := range m {
		if a := cmplx.Abs(v); a > norm {
			norm = a
		}
	}
	if norm == 0 {
		return false
	}
	for col := 0; col < k; col++ {
		p, pa := col, cmplx.Abs(m[col*k+col])
		for row := col + 1; row < k; row++ {
			if a := cmplx.Abs(m[row*k+col]); a > pa {
				p, pa = row, a
			}
		}
		if pa < denGuard*norm {
			return false
		}
		if p != col {
			for c := col; c < k; c++ {
				m[p*k+c], m[col*k+c] = m[col*k+c], m[p*k+c]
			}
			r[p], r[col] = r[col], r[p]
		}
		inv := 1 / m[col*k+col]
		for row := col + 1; row < k; row++ {
			f := m[row*k+col] * inv
			if f == 0 {
				continue
			}
			for c := col + 1; c < k; c++ {
				m[row*k+c] -= f * m[col*k+c]
			}
			r[row] -= f * r[col]
		}
	}
	for row := k - 1; row >= 0; row-- {
		v := r[row]
		for c := row + 1; c < k; c++ {
			v -= m[row*k+c] * r[c]
		}
		r[row] = v / m[row*k+row]
	}
	return true
}
