package engine

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TestPathStatsCounting pins the path-counter bookkeeping: golden
// factorizations per column, one rank-1 solve per non-golden single
// fault per column, one rank-k solve per multi-fault item per column,
// and memo hit/miss accounting across repeated single-fault batches.
func TestPathStatsCounting(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	faults := u.Faults()
	omegas := []float64{0.5, 1, 2}

	if _, err := eng.BatchResponses(nil, faults, omegas, 1); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.MemoMisses != 1 || s.MemoHits != 0 {
		t.Fatalf("first batch: memo hits/misses = %d/%d, want 0/1", s.MemoHits, s.MemoMisses)
	}
	// Every column factors the golden system once; this small CUT stays
	// on the dense path.
	if s.DenseFactors < int64(len(omegas)) {
		t.Errorf("DenseFactors = %d, want >= %d", s.DenseFactors, len(omegas))
	}
	if s.SparseFactors != 0 {
		t.Errorf("SparseFactors = %d, want 0 on a small dense CUT", s.SparseFactors)
	}
	// One rank-1 solve per non-golden fault per column, minus any items
	// that fell back (those are counted in both).
	wantRank1 := int64(len(faults) * len(omegas))
	if s.Rank1Solves != wantRank1 {
		t.Errorf("Rank1Solves = %d, want %d", s.Rank1Solves, wantRank1)
	}
	// Fallback factorizations are dense here, so DenseFactors must equal
	// columns + fallbacks exactly.
	if s.DenseFactors != int64(len(omegas))+s.ExactFallbacks {
		t.Errorf("DenseFactors = %d, want columns %d + fallbacks %d",
			s.DenseFactors, len(omegas), s.ExactFallbacks)
	}

	// Same fault list again: the resolution memo must hit.
	if _, err := eng.BatchResponses(nil, faults, omegas, 1); err != nil {
		t.Fatal(err)
	}
	s = eng.Stats()
	if s.MemoHits != 1 || s.MemoMisses != 1 {
		t.Fatalf("second batch: memo hits/misses = %d/%d, want 1/1", s.MemoHits, s.MemoMisses)
	}

	// A multi-fault set routes through the rank-k path once per column.
	pair, err := fault.NewMulti(
		fault.Fault{Component: cut.Passives[0], Deviation: 0.3},
		fault.Fault{Component: cut.Passives[1], Deviation: -0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	if _, err := eng.BatchResponsesSets(nil, []fault.Set{pair}, omegas, 1); err != nil {
		t.Fatal(err)
	}
	s = eng.Stats()
	if got := s.RankKSolves - before.RankKSolves; got != int64(len(omegas)) {
		t.Errorf("RankKSolves delta = %d, want %d", got, len(omegas))
	}
	if s.MemoHits != before.MemoHits || s.MemoMisses != before.MemoMisses {
		t.Errorf("set batches must not touch the memo counters")
	}

	// Scalar reference path keeps the same books.
	eng2, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	eng2.UseScalarKernels(true)
	if _, err := eng2.BatchResponses(nil, faults, omegas, 1); err != nil {
		t.Fatal(err)
	}
	s2 := eng2.Stats()
	if s2.Rank1Solves != wantRank1 {
		t.Errorf("scalar Rank1Solves = %d, want %d", s2.Rank1Solves, wantRank1)
	}
	if s2.DenseFactors != int64(len(omegas))+s2.ExactFallbacks {
		t.Errorf("scalar DenseFactors = %d, want columns %d + fallbacks %d",
			s2.DenseFactors, len(omegas), s2.ExactFallbacks)
	}
}

// TestSnapshotAdd pins the aggregation arithmetic the serving layer
// relies on.
func TestSnapshotAdd(t *testing.T) {
	a := PathStatsSnapshot{DenseFactors: 1, Rank1Solves: 2, MemoHits: 3}
	a.Add(PathStatsSnapshot{DenseFactors: 10, SparseFactors: 5, RankKSolves: 7, MemoMisses: 4})
	want := PathStatsSnapshot{DenseFactors: 11, SparseFactors: 5, Rank1Solves: 2, RankKSolves: 7, MemoHits: 3, MemoMisses: 4}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

// TestEngineTracerSetPathOnly verifies the span contract: fault-set
// batches record one "engine.column" span per frequency, and the
// single-fault path (the GA fitness hot path) records none even with a
// tracer installed.
func TestEngineTracerSetPathOnly(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	eng.SetTracer(tr)

	omegas := []float64{0.5, 1, 2}
	faults := []fault.Fault{{Component: cut.Passives[0], Deviation: 0.3}}
	if _, err := eng.BatchResponses(nil, faults, omegas, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("single-fault batch recorded %d spans, want 0", got)
	}

	sets := []fault.Set{fault.Fault{Component: cut.Passives[0], Deviation: 0.3}}
	if _, err := eng.BatchResponsesSets(nil, sets, omegas, 1); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != len(omegas) {
		t.Fatalf("set batch recorded %d spans, want %d", len(spans), len(omegas))
	}
	for _, sp := range spans {
		if sp.Name != "engine.column" {
			t.Fatalf("span name %q, want engine.column", sp.Name)
		}
	}
}
