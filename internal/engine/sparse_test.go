package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/circuits"
	"repro/internal/fault"
)

// sparseWorkerCounts is the satellite contract's worker sweep.
func sparseWorkerCounts() []int {
	return []int{1, 4, runtime.NumCPU()}
}

// pinSparseAgainstDense runs one CUT's fault load through the forced
// dense path and the forced sparse path at every worker count and fails
// on any relative disagreement above 1e-9 (with the usual notch-null
// noise floor).
func pinSparseAgainstDense(t *testing.T, cut circuits.CUT, singles []fault.Fault, doubles []fault.Set, omegas []float64) {
	t.Helper()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Template().SparsePattern() == nil {
		t.Fatalf("CUT %s compiled no sparse pattern", cut.Circuit.Name())
	}

	eng.SetFactorPath(FactorDense)
	refSingles, err := eng.BatchResponses(nil, singles, omegas, 1)
	if err != nil {
		t.Fatal(err)
	}
	refDoubles, err := eng.BatchResponsesSets(nil, doubles, omegas, 1)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, g := range refSingles.Golden {
		if g > peak {
			peak = g
		}
	}
	floor := 1e-3 * peak

	eng.SetFactorPath(FactorSparse)
	for _, workers := range sparseWorkerCounts() {
		gotSingles, err := eng.BatchResponses(nil, singles, omegas, workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range omegas {
			if re := relErrFloor(gotSingles.Golden[j], refSingles.Golden[j], floor); re > 1e-9 {
				t.Fatalf("workers=%d golden ω=%g: sparse %.15g vs dense %.15g (rel %.3g)",
					workers, omegas[j], gotSingles.Golden[j], refSingles.Golden[j], re)
			}
		}
		for i := range singles {
			for j := range omegas {
				if re := relErrFloor(gotSingles.Mags[i][j], refSingles.Mags[i][j], floor); re > 1e-9 {
					t.Fatalf("workers=%d fault %s ω=%g: sparse %.15g vs dense %.15g (rel %.3g)",
						workers, singles[i].ID(), omegas[j], gotSingles.Mags[i][j], refSingles.Mags[i][j], re)
				}
			}
		}
		gotDoubles, err := eng.BatchResponsesSets(nil, doubles, omegas, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range doubles {
			for j := range omegas {
				if re := relErrFloor(gotDoubles.Mags[i][j], refDoubles.Mags[i][j], floor); re > 1e-9 {
					t.Fatalf("workers=%d set %s ω=%g: sparse %.15g vs dense %.15g (rel %.3g)",
						workers, doubles[i].ID(), omegas[j], gotDoubles.Mags[i][j], refDoubles.Mags[i][j], re)
				}
			}
		}
	}
}

// TestSparseMatchesDenseAllCUTs is the sparse acceptance pin: on every
// built-in CUT the forced-sparse golden path must agree with the
// forced-dense path to 1e-9 relative over the full single-fault paper
// universe and the complete double-fault pair universe, at worker
// counts {1, 4, NumCPU}.
func TestSparseMatchesDenseAllCUTs(t *testing.T) {
	for _, cut := range circuits.All() {
		cut := cut
		t.Run(cut.Circuit.Name(), func(t *testing.T) {
			pinSparseAgainstDense(t, cut,
				paperSingles(t, cut), doublePairs(t, cut), testOmegas(cut.Omega0))
		})
	}
}

// TestSparseMatchesDenseScalingCUTs extends the pin to the scaling tier
// — sizes past the auto crossover, where sparse actually runs by
// default — with the double universe capped to keep runtime sane.
func TestSparseMatchesDenseScalingCUTs(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling CUTs are slow under -short")
	}
	lad, err := circuits.RCLadder(96)
	if err != nil {
		t.Fatal(err)
	}
	casc, err := circuits.OpampCascade(12)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := circuits.RCGrid(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []circuits.CUT{lad, casc, grid} {
		cut := cut
		t.Run(cut.Circuit.Name(), func(t *testing.T) {
			u, err := fault.PaperUniverse(cut.Passives)
			if err != nil {
				t.Fatal(err)
			}
			singles := []fault.Fault{{}}
			for i, c := range u.Components {
				if i%3 == 0 { // every third component keeps the sweep broad but bounded
					for _, d := range u.Deviations {
						singles = append(singles, fault.Fault{Component: c, Deviation: d})
					}
				}
			}
			pairs, err := u.Pairs([]float64{-0.5, 0.5}, 40)
			if err != nil {
				t.Fatal(err)
			}
			doubles := make([]fault.Set, len(pairs))
			for i, p := range pairs {
				doubles[i] = p
			}
			omegas := []float64{cut.Omega0 / 5, cut.Omega0, cut.Omega0 * 3}
			pinSparseAgainstDense(t, cut, singles, doubles, omegas)
		})
	}
}

// randomLadderCUT builds an n-section ladder with randomized element
// values: RC sections (series R, shunt C), or LC sections (series L,
// shunt C) between resistive terminations when lc is set.
func randomLadderCUT(rng *rand.Rand, n int, lc bool) circuits.CUT {
	kind := "rc"
	if lc {
		kind = "lc"
	}
	c := circuit.New(fmt.Sprintf("quick-%s-ladder-%d", kind, n))
	c.MustAdd(circuit.NewVSource("Vin", "n0", "0", 1))
	val := func() float64 { return 0.5 + 1.5*rng.Float64() }
	passives := []string{}
	prevNode := "n0"
	if lc {
		c.MustAdd(circuit.NewResistor("Rs", "n0", "t0", 1))
		prevNode = "t0"
	}
	for i := 1; i <= n; i++ {
		cur := fmt.Sprintf("t%d", i)
		sn := fmt.Sprintf("S%d", i)
		cn := fmt.Sprintf("C%d", i)
		if lc {
			c.MustAdd(circuit.NewInductor(sn, prevNode, cur, val()))
		} else {
			c.MustAdd(circuit.NewResistor(sn, prevNode, cur, val()))
		}
		c.MustAdd(circuit.NewCapacitor(cn, cur, "0", val()))
		passives = append(passives, sn, cn)
		prevNode = cur
	}
	if lc {
		c.MustAdd(circuit.NewResistor("RL", prevNode, "0", 1))
	}
	return circuits.CUT{
		Circuit:  c,
		Source:   "Vin",
		Output:   prevNode,
		Passives: passives,
		Omega0:   1 / float64(n),
	}
}

// TestSparseMatchesDenseQuick is the testing/quick property pin: random
// RC and LC ladders of random size, random single and double faults,
// sparse == dense to 1e-9 at worker counts {1, 4, NumCPU}.
func TestSparseMatchesDenseQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(48)
		cut := randomLadderCUT(rng, n, rng.Intn(2) == 1)

		devs := []float64{-0.5, -0.2, 0.3, 0.5}
		singles := []fault.Fault{{}}
		for i := 0; i < 12; i++ {
			singles = append(singles, fault.Fault{
				Component: cut.Passives[rng.Intn(len(cut.Passives))],
				Deviation: devs[rng.Intn(len(devs))],
			})
		}
		var doubles []fault.Set
		for i := 0; i < 8; i++ {
			a := rng.Intn(len(cut.Passives))
			b := rng.Intn(len(cut.Passives))
			if a == b {
				continue
			}
			m, err := fault.NewMulti(
				fault.Fault{Component: cut.Passives[a], Deviation: devs[rng.Intn(len(devs))]},
				fault.Fault{Component: cut.Passives[b], Deviation: devs[rng.Intn(len(devs))]},
			)
			if err != nil {
				t.Fatal(err)
			}
			doubles = append(doubles, m)
		}
		w0 := cut.Omega0
		omegas := []float64{w0 / 4, w0, w0 * 2.7}

		// Not t.Fatal on mismatch — pinSparseAgainstDense does that, which
		// reports the failing seed through quick.CheckError's value dump.
		pinSparseAgainstDense(t, cut, singles, doubles, omegas)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSparseFactorPathSelection pins the auto heuristic and its
// overrides: small circuits stay dense, large sparse circuits go
// sparse, SetFactorPath forces either way, and the scalar reference
// path always reports dense.
func TestSparseFactorPathSelection(t *testing.T) {
	small := circuits.NFLowpass7()
	engSmall, err := New(small.Circuit, small.Source, small.Output)
	if err != nil {
		t.Fatal(err)
	}
	if got := engSmall.FactorPathName(); got != "dense" {
		t.Errorf("small CUT auto path = %q, want dense (n=%d)", got, engSmall.Nodes())
	}
	engSmall.SetFactorPath(FactorSparse)
	if got := engSmall.FactorPathName(); got != "sparse" {
		t.Errorf("small CUT forced sparse = %q", got)
	}

	lad, err := circuits.RCLadder(128)
	if err != nil {
		t.Fatal(err)
	}
	engLad, err := New(lad.Circuit, lad.Source, lad.Output)
	if err != nil {
		t.Fatal(err)
	}
	if engLad.Nodes() < 128 {
		t.Fatalf("rc-ladder-128 has %d unknowns, want >= 128", engLad.Nodes())
	}
	if engLad.NNZ() == 0 {
		t.Error("rc-ladder-128 reports zero pattern nonzeros")
	}
	if got := engLad.FactorPathName(); got != "sparse" {
		t.Errorf("rc-ladder-128 auto path = %q, want sparse (n=%d, nnz=%d)", got, engLad.Nodes(), engLad.NNZ())
	}
	engLad.SetFactorPath(FactorDense)
	if got := engLad.FactorPathName(); got != "dense" {
		t.Errorf("rc-ladder-128 forced dense = %q", got)
	}
	engLad.SetFactorPath(FactorAuto)
	engLad.UseScalarKernels(true)
	if got := engLad.FactorPathName(); got != "dense" {
		t.Errorf("scalar kernels report %q, want dense", got)
	}
	engLad.UseScalarKernels(false)

	// The auto sparse default must still produce dense-identical results
	// through the public batch API (no forcing at all).
	omegas := testOmegas(lad.Omega0)
	singles := paperSingles(t, lad)[:40]
	auto, err := engLad.BatchResponses(nil, singles, omegas, 2)
	if err != nil {
		t.Fatal(err)
	}
	engLad.SetFactorPath(FactorDense)
	dense, err := engLad.BatchResponses(nil, singles, omegas, 2)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, g := range dense.Golden {
		if g > peak {
			peak = g
		}
	}
	for i := range singles {
		for j := range omegas {
			if re := relErrFloor(auto.Mags[i][j], dense.Mags[i][j], 1e-3*peak); re > 1e-9 {
				t.Fatalf("auto vs dense fault %s ω=%g: %.15g vs %.15g", singles[i].ID(), omegas[j], auto.Mags[i][j], dense.Mags[i][j])
			}
		}
	}
}

// TestSparseBatchAllocationFree proves the per-frequency sparse
// refactor+solve steady state does not allocate: after one warm-up
// batch, repeated batches over fresh frequencies reuse every workspace
// buffer.
func TestSparseBatchAllocationFree(t *testing.T) {
	lad, err := circuits.RCLadder(80)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(lad.Circuit, lad.Source, lad.Output)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFactorPath(FactorSparse)
	singles := paperSingles(t, lad)[:25]
	omegas := []float64{0.005, 0.0125, 0.05}
	var out Batch
	run := func() {
		if err := eng.BatchResponsesInto(nil, singles, omegas, 1, &out); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: sizes the pooled workspace and the batch storage
	i := 0
	avg := testing.AllocsPerRun(30, func() {
		i++
		omegas[0] = 0.005 + float64(i%50)*1e-6
		run()
	})
	// < 1 rather than 0: a GC pass mid-measurement can empty the
	// engine's workspace pool, exactly like the repo-level fitness guard.
	if avg >= 1 {
		t.Fatalf("sparse batch allocates %.2f objects/run in steady state, want < 1", avg)
	}
}
