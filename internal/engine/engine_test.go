package engine

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// relErr returns |a-b| / max(|a|, |b|, floor).
func relErr(a, b float64) float64 {
	return relErrFloor(a, b, 1e-30)
}

// relErrFloor is relErr with an absolute noise floor: responses far below
// the circuit's overall response scale (e.g. at a notch null) are
// numerical noise in both paths and compare as equal.
func relErrFloor(a, b, floor float64) float64 {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), floor)
	return math.Abs(a-b) / scale
}

// TestTemplateMatchesStampAt verifies the compiled stamp program against
// the elements' own Stamp methods for every benchmark CUT across a
// frequency spread — the structural correctness of the whole engine.
func TestTemplateMatchesStampAt(t *testing.T) {
	for _, cut := range circuits.All() {
		tmpl, err := Compile(cut.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		for _, w := range []float64{0, 1e-3, 0.3, 1, 7.7, 1e3} {
			s := complex(0, w)
			want, wantB, err := tmpl.System().StampAt(s)
			if err != nil {
				t.Fatal(err)
			}
			got := numeric.NewMatrix(tmpl.Size(), tmpl.Size())
			tmpl.stampGolden(got, s)
			if !got.Equalish(want, 1e-12*(1+want.MaxAbs())) {
				t.Fatalf("%s: template A mismatch at ω=%g", cut.Circuit.Name(), w)
			}
			for i := range wantB {
				if cmplx.Abs(tmpl.RHS()[i]-wantB[i]) > 1e-12 {
					t.Fatalf("%s: template b mismatch at ω=%g", cut.Circuit.Name(), w)
				}
			}
		}
	}
}

// TestResponseMatchesAnalysis compares the engine's exact per-point path
// against the classic clone+assemble+solve path over faults and
// frequencies for every benchmark CUT.
func TestResponseMatchesAnalysis(t *testing.T) {
	for _, cut := range circuits.All() {
		eng, err := New(cut.Circuit, cut.Source, cut.Output)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		u, err := fault.PaperUniverse(cut.Passives)
		if err != nil {
			t.Fatal(err)
		}
		omegas := numeric.Logspace(cut.Omega0/50, cut.Omega0*50, 7)
		faults := append([]fault.Fault{{}}, u.Faults()...)
		for _, f := range faults {
			faulty, err := f.Apply(cut.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			ac, err := analysis.NewAC(faulty)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range omegas {
				h, err := ac.Transfer(cut.Source, cut.Output, w)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.Response(f, w)
				if err != nil {
					t.Fatal(err)
				}
				if re := relErr(got, cmplx.Abs(h)); re > 1e-9 {
					t.Fatalf("%s: fault %s ω=%g: engine %.15g vs analysis %.15g (rel %g)",
						cut.Circuit.Name(), f.ID(), w, got, cmplx.Abs(h), re)
				}
			}
		}
	}
}

// TestBatchAgreesWithResponse is the acceptance-criterion check: the
// Sherman–Morrison batch path agrees with the exact per-point path to
// within 1e-9 relative error on the full paper universe × a 32-point log
// sweep.
func TestBatchAgreesWithResponse(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	faults := u.Faults()
	omegas := numeric.Logspace(0.01, 100, 32)
	batch, err := eng.BatchResponses(nil, faults, omegas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Mags) != len(faults) || len(batch.Golden) != len(omegas) {
		t.Fatalf("batch shape %dx%d, want %dx%d", len(batch.Mags), len(batch.Golden), len(faults), len(omegas))
	}
	for j, w := range omegas {
		g, err := eng.GoldenResponse(w)
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(batch.Golden[j], g); re > 1e-9 {
			t.Fatalf("golden ω=%g: batch %.15g vs exact %.15g (rel %g)", w, batch.Golden[j], g, re)
		}
		for i, f := range faults {
			exact, err := eng.Response(f, w)
			if err != nil {
				t.Fatal(err)
			}
			if re := relErr(batch.Mags[i][j], exact); re > 1e-9 {
				t.Fatalf("fault %s ω=%g: batch %.15g vs exact %.15g (rel %g)",
					f.ID(), w, batch.Mags[i][j], exact, re)
			}
		}
	}
}

// TestBatchAllCUTs runs a smaller agreement sweep over every benchmark
// circuit, exercising inductor and notch topologies where rank-1 updates
// are most likely to go ill-conditioned.
func TestBatchAllCUTs(t *testing.T) {
	for _, cut := range circuits.All() {
		eng, err := New(cut.Circuit, cut.Source, cut.Output)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		u, err := fault.PaperUniverse(cut.Passives)
		if err != nil {
			t.Fatal(err)
		}
		faults := u.Faults()
		omegas := numeric.Logspace(cut.Omega0/100, cut.Omega0*100, 9)
		batch, err := eng.BatchResponses(nil, faults, omegas, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Noise floor: responses far below the circuit's peak golden
		// response (notch nulls) still must agree to 1e-12·peak absolute,
		// but are not held to 1e-9 relative on their noise digits.
		var peak float64
		for _, g := range batch.Golden {
			peak = math.Max(peak, g)
		}
		floor := 1e-3 * peak
		for i, f := range faults {
			for j, w := range omegas {
				exact, err := eng.Response(f, w)
				if err != nil {
					t.Fatal(err)
				}
				if re := relErrFloor(batch.Mags[i][j], exact, floor); re > 1e-9 {
					t.Fatalf("%s: fault %s ω=%g: batch %.15g vs exact %.15g (rel %g)",
						cut.Circuit.Name(), f.ID(), w, batch.Mags[i][j], exact, re)
				}
			}
		}
	}
}

// TestBatchSignatures checks the signature helper: golden rows vanish and
// fault rows equal mag − golden.
func TestBatchSignatures(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	faults := []fault.Fault{{}, {Component: "R3", Deviation: 0.4}}
	batch, err := eng.BatchResponses(nil, faults, []float64{0.5, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigs := batch.Signatures()
	for _, v := range sigs[0] {
		if v != 0 {
			t.Fatalf("golden signature %v, want zeros", sigs[0])
		}
	}
	for j := range sigs[1] {
		want := batch.Mags[1][j] - batch.Golden[j]
		if sigs[1][j] != want {
			t.Fatalf("signature[%d] = %g, want %g", j, sigs[1][j], want)
		}
	}
}

// TestEngineErrors covers the validation paths.
func TestEngineErrors(t *testing.T) {
	cut := circuits.NFLowpass7()
	if _, err := New(cut.Circuit, "nosuch", cut.Output); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := New(cut.Circuit, "R1", cut.Output); err == nil {
		t.Fatal("non-source element accepted as source")
	}
	if _, err := New(cut.Circuit, cut.Source, "nosuchnode"); err == nil {
		t.Fatal("unknown output node accepted")
	}
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Response(fault.Fault{Component: "R99", Deviation: 0.1}, 1); err == nil {
		t.Fatal("unknown component accepted")
	}
	if _, err := eng.Response(fault.Fault{Component: "U1", Deviation: 0.1}, 1); err == nil {
		t.Fatal("non-valued component accepted")
	}
	if _, err := eng.Response(fault.Fault{Component: "R1", Deviation: -1}, 1); err == nil {
		t.Fatal("-100% deviation accepted")
	}
	if _, err := eng.GoldenResponse(-1); err == nil {
		t.Fatal("negative frequency accepted")
	}
	if _, err := eng.BatchResponses(nil, []fault.Fault{{}}, nil, 1); err == nil {
		t.Fatal("empty omega list accepted")
	}
	if _, err := eng.BatchResponses(nil, []fault.Fault{{}}, []float64{1, -2}, 1); err == nil {
		t.Fatal("negative frequency in batch accepted")
	}
	if _, err := eng.BatchResponses(nil, []fault.Fault{{Component: "R99", Deviation: 0.1}}, []float64{1}, 1); err == nil {
		t.Fatal("unknown batch component accepted")
	}
	// A circuit with a zero-amplitude source is rejected at New.
	c := circuit.New("zero-amp")
	c.MustAdd(circuit.NewVSource("V1", "a", "0", 0))
	c.MustAdd(circuit.NewResistor("R1", "a", "0", 1))
	if _, err := New(c, "V1", "a"); err == nil {
		t.Fatal("zero-amplitude source accepted")
	}
}

// TestSlotAccessors covers HasSlot / SlotValue.
func TestSlotAccessors(t *testing.T) {
	cut := circuits.NFLowpass7()
	tmpl, err := Compile(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !tmpl.HasSlot("R1") || tmpl.HasSlot("U1") || tmpl.HasSlot("Vin") {
		t.Fatal("slot membership wrong")
	}
	v, ok := tmpl.SlotValue("C2")
	if !ok || v != 2 {
		t.Fatalf("SlotValue(C2) = %g, %v", v, ok)
	}
	if _, ok := tmpl.SlotValue("nosuch"); ok {
		t.Fatal("SlotValue for unknown element")
	}
}
