package engine

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/numeric"
)

// This file is the blocked SoA kernel path of the engine — the default
// per-frequency column solver. Where the scalar reference path factors
// the golden complex128 system and then performs k+1 sequential one-RHS
// triangular solves (golden x0, one z per distinct slot), the blocked
// path stamps the golden matrix into split re/im float64 planes,
// factors it with numeric.FactorSoAReuse (no complex division, no hypot
// in the pivot search), assembles x0's RHS and every distinct slot's u
// vector as columns of one numeric.Block, and runs a single multi-RHS
// SolveBlock: both triangular sweeps walk the factored matrix once per
// frequency instead of once per RHS, with the inner axpys over
// contiguous float64 plane runs. The Sherman–Morrison(-Woodbury)
// corrections then read x0 and the z vectors straight off the block
// planes (raw indexing, sqrt-based magnitudes — no hypot or complex-
// division runtime calls in the per-item loops). Fallback solves
// (ill-conditioned updates) stay on the SoA factorization too. All
// storage lives in the pooled workspace, so the path is allocation-free
// in steady state, like the scalar one.

// absC is the blocked path's magnitude: sqrt(re²+im²) without hypot's
// overflow guards — a single sqrt instruction instead of a function
// call. Response magnitudes here are moderate (no squaring overflow),
// and the ≤1-ulp difference from cmplx.Abs is far inside the 1e-9
// blocked-vs-scalar contract.
func absC(v complex128) float64 {
	r, i := real(v), imag(v)
	return math.Sqrt(r*r + i*i)
}

// dotPlanes computes vᵀ·col over a sparse pattern vector and column c
// of a block given its raw planes (row stride nc).
func dotPlanes(v []sparseEntry, re, im []float64, nc, c int) complex128 {
	var sr, si float64
	for _, e := range v {
		br, bi := re[e.idx*nc+c], im[e.idx*nc+c]
		wr, wi := real(e.w), imag(e.w)
		sr += wr*br - wi*bi
		si += wr*bi + wi*br
	}
	return complex(sr, si)
}

// recipC returns 1/v in the scaled (Smith) form — the blocked path's
// replacement for the complex-division runtime call.
func recipC(v complex128) complex128 {
	a, b := real(v), imag(v)
	if math.Abs(a) >= math.Abs(b) {
		r := b / a
		d := a + b*r
		return complex(1/d, -r/d)
	}
	r := a / b
	d := a*r + b
	return complex(r/d, -1/d)
}

// solveSmallFast is solveSmall on the blocked path's arithmetic: pivot
// selection by squared modulus (no hypot) and elimination/back-
// substitution by reciprocal multiplication (no complex-division
// runtime call). The pivot-size guard compares squared magnitudes, so
// the same denGuard threshold applies squared. Results agree with
// solveSmall to last-bits rounding — inside the 1e-9 blocked-vs-scalar
// contract.
func solveSmallFast(k int, m, r []complex128) bool {
	var norm2 float64
	for _, v := range m {
		if a := real(v)*real(v) + imag(v)*imag(v); a > norm2 {
			norm2 = a
		}
	}
	if norm2 == 0 {
		return false
	}
	guard2 := denGuard * denGuard * norm2
	for col := 0; col < k; col++ {
		p := col
		pv := m[col*k+col]
		pa := real(pv)*real(pv) + imag(pv)*imag(pv)
		for row := col + 1; row < k; row++ {
			v := m[row*k+col]
			if a := real(v)*real(v) + imag(v)*imag(v); a > pa {
				p, pa = row, a
			}
		}
		if pa < guard2 {
			return false
		}
		if p != col {
			for c := col; c < k; c++ {
				m[p*k+c], m[col*k+c] = m[col*k+c], m[p*k+c]
			}
			r[p], r[col] = r[col], r[p]
		}
		inv := recipC(m[col*k+col])
		for row := col + 1; row < k; row++ {
			f := m[row*k+col] * inv
			if f == 0 {
				continue
			}
			for c := col + 1; c < k; c++ {
				m[row*k+c] -= f * m[col*k+c]
			}
			r[row] -= f * r[col]
		}
	}
	for row := k - 1; row >= 0; row-- {
		v := r[row]
		for c := row + 1; c < k; c++ {
			v -= m[row*k+c] * r[c]
		}
		r[row] = v * recipC(m[row*k+row])
	}
	return true
}

// prepareGroup refactors the golden systems of frequency columns
// [g, hi) in one frequency-blocked supernodal-schedule walk and caches
// the per-column factors and outcomes in the workspace. It only engages
// for full FreqBlock-wide groups on the sparse blocked path; remainder
// groups, the scalar paths, and dense engines leave the cache empty and
// take solveColumnBlocked's per-column flow. Any error — including a
// singular plane — is deferred to the column's own solve, so outcomes
// are identical to per-column refactorization.
func (e *Engine) prepareGroup(ws *workspace, omegas []float64, g, hi int) {
	ws.grpJ0, ws.grpLen = -1, 0
	if e.scalarKernels || e.scalarSparse || hi-g != numeric.FreqBlock || !e.sparseColumn() {
		return
	}
	t := e.tmpl
	for x := 0; x < numeric.FreqBlock; x++ {
		t.stampGoldenSparse(ws.spreBlk[x], ws.spimBlk[x], complex(0, omegas[g+x]))
	}
	ws.grpErr = ws.bref.RefactorBlock(t.sparse.sym, &ws.slusBlk, &ws.spreBlk, &ws.spimBlk)
	ws.grpJ0, ws.grpLen = g, hi-g
}

// solveColumnBlocked fills column j of the batch table on the blocked
// SoA kernels. Semantics (guards, fallbacks, results up to ≤1e-9
// relative rounding differences) match solveColumnScalar.
func (e *Engine) solveColumnBlocked(ws *workspace, omega float64, faults []fault.Fault, sets []fault.Set, out *Batch, j int) error {
	s := complex(0, omega)
	t := e.tmpl
	// Golden factorization: the sparse path stamps coefficient values into
	// the compiled pattern's planes and refactors numerically on the
	// pattern's static elimination schedule — O(fill) instead of O(n³) —
	// through the supernodal numeric phase: frequency-blocked group walks
	// when prepareGroup cached this column, a supernodal (optionally
	// level-set-parallel) single-column refactor otherwise, and the scalar
	// walk only under UseScalarSparse. An ill-conditioned sparse pivot
	// (the sparse factorization does no numerical pivoting) falls through
	// to the dense partial-pivoting factorization below, so sparse never
	// changes what is computable.
	ws.colSparse = false
	ws.denseStamped = false
	ws.sluGold = nil
	if x := j - ws.grpJ0; ws.grpJ0 >= 0 && x >= 0 && x < ws.grpLen {
		// Golden factors were refactored by this column's group walk.
		err := ws.grpErr[x]
		if err == nil {
			ws.colSparse = true
			ws.sluGold = &ws.slusBlk[x]
			ws.spre, ws.spim = ws.spreBlk[x], ws.spimBlk[x]
			ws.cSparse++
			ws.cSupernodal++
		} else if !errors.Is(err, numeric.ErrSingular) {
			return fmt.Errorf("engine: golden system at ω=%g: %w", omega, err)
		} else {
			ws.cDenseSingular++
		}
	} else if e.sparseColumn() {
		t.stampGoldenSparse(ws.spre, ws.spim, s)
		var err error
		if e.scalarSparse {
			err = ws.slus.RefactorReuse(t.sparse.sym, ws.spre, ws.spim)
		} else {
			err = ws.slus.RefactorParallel(t.sparse.sym, ws.spre, ws.spim, e.refactorWorkers)
			if err == nil {
				ws.cSupernodal++
			}
		}
		if err == nil {
			ws.colSparse = true
			ws.sluGold = &ws.slus
			ws.cSparse++
		} else if !errors.Is(err, numeric.ErrSingular) {
			return fmt.Errorf("engine: golden system at ω=%g: %w", omega, err)
		} else {
			ws.cDenseSingular++
		}
	}
	if !ws.colSparse {
		ws.ensureSoADense(t.n)
		t.stampGoldenSoA(ws.ms, s)
		ws.denseStamped = true
		if err := ws.fs.CopyFrom(ws.ms); err != nil {
			return err
		}
		if err := numeric.FactorSoAReuse(&ws.slu, ws.fs); err != nil {
			return fmt.Errorf("engine: golden system at ω=%g: %w", omega, err)
		}
		ws.cDense++
	}

	// One multi-RHS block per frequency: column 0 carries the source
	// vector b (→ the golden solution x0), column 1+zi the sparse u
	// pattern of distinct slot zi (→ its z = A⁻¹u). A single blocked
	// solve replaces the k+1 sequential SolveInto calls of the scalar
	// path.
	nc := 1 + len(out.distinct)
	blk := ws.blk
	blk.Reset(t.n, nc)
	blk.Zero()
	bre, bim, err := blk.PlanesFor(t.n, nc)
	if err != nil {
		return err
	}
	for i, v := range t.b {
		if v != 0 {
			bre[i*nc], bim[i*nc] = real(v), imag(v)
		}
	}
	for zi, si := range out.distinct {
		for _, ue := range t.slots[si].u {
			at := ue.idx*nc + 1 + zi
			bre[at], bim[at] = real(ue.w), imag(ue.w)
		}
	}
	if ws.colSparse {
		if err := ws.sluGold.SolveBlock(blk); err != nil {
			return err
		}
	} else if err := ws.slu.SolveBlock(blk); err != nil {
		return err
	}

	var x0out complex128
	if e.outIdx >= 0 {
		x0out = complex(bre[e.outIdx*nc], bim[e.outIdx*nc])
	}
	x0outAbs := absC(x0out)
	out.Golden[j] = x0outAbs * e.invAmpAbs

	// Hoist the slot-only factors of the rank-1 correction: every
	// deviation of a component reuses its slot's vᵀz, vᵀx0, z[out], and
	// golden coefficient, so they are computed once per frequency here
	// instead of once per item below. Values are bitwise identical to the
	// per-item computation they replace.
	for zi, si := range out.distinct {
		sl := &t.slots[si]
		ws.vtz[zi] = dotPlanes(sl.v, bre, bim, nc, 1+zi)
		ws.vtx0[zi] = dotPlanes(sl.v, bre, bim, nc, 0)
		if e.outIdx >= 0 {
			ws.zoutc[zi] = complex(bre[e.outIdx*nc+1+zi], bim[e.outIdx*nc+1+zi])
		} else {
			ws.zoutc[zi] = 0
		}
		ws.gcoeff[zi] = sl.coeff(sl.value, s)
	}

	for fi := range out.Mags {
		lo, hi := out.off[fi], out.off[fi+1]
		if lo == hi {
			out.Mags[fi][j] = out.Golden[j]
			continue
		}
		if hi-lo > 1 {
			if err := e.solveItemKBlocked(ws, s, omega, faults, sets, out, fi, j, x0out, x0outAbs); err != nil {
				return err
			}
			continue
		}
		si := out.partSlot[lo]
		sl := &t.slots[si]
		zi := out.zSlot[si]
		delta := sl.coeff(out.partVal[lo], s) - ws.gcoeff[zi]
		if delta == 0 {
			out.Mags[fi][j] = out.Golden[j]
			continue
		}
		ws.cRank1++
		dv := delta * ws.vtz[zi]
		// den = 1 + dv is O(1) by the guard below, so the naive
		// single-divide reciprocal is safe (no overflow regime) and two
		// divides cheaper than the Smith form; a near-zero den produces a
		// huge xout that the guard then routes to the exact solve anyway.
		dr, di := 1+real(dv), imag(dv)
		den2 := dr*dr + di*di
		inv := 1 / den2
		xout := x0out - delta*ws.vtx0[zi]*complex(dr*inv, -di*inv)*ws.zoutc[zi]
		ax := absC(xout)
		if math.Sqrt(den2) < denGuard*(1+absC(dv)) ||
			ax < cancelGuard*x0outAbs {
			// Ill-conditioned update or catastrophic cancellation: solve
			// the faulted system exactly.
			ws.delta[0] = delta
			xf, err := e.exactFallback(ws, s, omega, faults, sets, fi, out.partSlot[lo:hi], ws.delta[:1])
			if err != nil {
				return err
			}
			ax = absC(xf)
		}
		out.Mags[fi][j] = ax * e.invAmpAbs
	}
	return nil
}

// solveItemKBlocked is solveItemK consuming the block solve results:
// the k×k Sherman–Morrison–Woodbury capacitance system is assembled
// from sparse dots against the block's x0 and z columns, with the same
// guards and the same exact-refactorization fallback (on the SoA
// planes) as the scalar path.
func (e *Engine) solveItemKBlocked(ws *workspace, s complex128, omega float64, faults []fault.Fault, sets []fault.Set, out *Batch, fi, j int, x0out complex128, x0outAbs float64) error {
	t := e.tmpl
	bre, bim := ws.blk.Planes()
	nc := ws.blk.Cols()
	lo, hi := out.off[fi], out.off[fi+1]
	k := hi - lo
	anyDelta := false
	for a := 0; a < k; a++ {
		sl := &t.slots[out.partSlot[lo+a]]
		d := sl.coeff(out.partVal[lo+a], s) - ws.gcoeff[out.zSlot[out.partSlot[lo+a]]]
		ws.delta[a] = d
		if d != 0 {
			anyDelta = true
		}
	}
	if !anyDelta {
		out.Mags[fi][j] = out.Golden[j]
		return nil
	}
	ws.cRankK++
	cm := ws.cmat[:k*k]
	w := ws.wvec[:k]
	for a := 0; a < k; a++ {
		sl := &t.slots[out.partSlot[lo+a]]
		zia := out.zSlot[out.partSlot[lo+a]]
		w[a] = ws.delta[a] * ws.vtx0[zia]
		for b := 0; b < k; b++ {
			zib := out.zSlot[out.partSlot[lo+b]]
			var v complex128
			if zib == zia {
				v = ws.delta[a] * ws.vtz[zia]
			} else {
				v = ws.delta[a] * dotPlanes(sl.v, bre, bim, nc, 1+zib)
			}
			if a == b {
				v++
			}
			cm[a*k+b] = v
		}
	}
	xout := x0out
	ok := solveSmallFast(k, cm, w)
	if ok && e.outIdx >= 0 {
		for b := 0; b < k; b++ {
			zc := 1 + out.zSlot[out.partSlot[lo+b]]
			xout -= w[b] * complex(bre[e.outIdx*nc+zc], bim[e.outIdx*nc+zc])
		}
	}
	if !ok || absC(xout) < cancelGuard*x0outAbs {
		xf, err := e.exactFallback(ws, s, omega, faults, sets, fi, out.partSlot[lo:hi], ws.delta[:k])
		if err != nil {
			return err
		}
		xout = xf
	}
	out.Mags[fi][j] = absC(xout) * e.invAmpAbs
	return nil
}

// exactFallback solves one item's patched system A(s) + Σ δ_a u_a v_aᵀ
// exactly into ws.xf and returns its output component — the escape hatch
// both blocked per-item paths take on an ill-conditioned update or
// catastrophic cancellation. On a sparse golden column the patched
// refactorization is a partial refactorization from the column's golden
// factors: the slot deltas land on already-structural positions, so the
// compiled per-slot touched rows bound exactly which columns of the
// elimination must be redone — for a localized fault that is a small
// reachable cone, not the whole matrix. An ill-conditioned sparse pivot
// then falls back to the dense partial-pivoting factorization, stamping
// the dense golden planes on demand. On a dense column this is the
// original dense fallback unchanged.
func (e *Engine) exactFallback(ws *workspace, s complex128, omega float64, faults []fault.Fault, sets []fault.Set, fi int, slots []int, deltas []complex128) (complex128, error) {
	t := e.tmpl
	ws.cFallback++
	if ws.colSparse {
		copy(ws.spre2, ws.spre)
		copy(ws.spim2, ws.spim)
		touched := ws.touched[:0]
		for a, si := range slots {
			t.addRank1Sparse(ws.spre2, ws.spim2, si, deltas[a])
			touched = append(touched, t.sparse.slotRows[si]...)
		}
		ws.touched = touched
		cnt, err := ws.slus2.PartialRefactor(ws.sluGold, ws.spre2, ws.spim2, touched)
		if err == nil {
			ws.cSparse++
			ws.cPartial++
			ws.cPartialCols += int64(cnt)
			if err := ws.slus2.SolveInto(ws.xf, t.b); err != nil {
				return 0, err
			}
			return e.out(ws.xf), nil
		}
		if !errors.Is(err, numeric.ErrSingular) {
			return 0, fmt.Errorf("engine: fault %s at ω=%g: %w", itemID(faults, sets, fi), omega, err)
		}
		ws.cDenseExact++
	}
	ws.ensureSoADense(t.n)
	if !ws.denseStamped {
		t.stampGoldenSoA(ws.ms, s)
		ws.denseStamped = true
	}
	if err := ws.f2s.CopyFrom(ws.ms); err != nil {
		return 0, err
	}
	for a, si := range slots {
		t.addRank1SoA(ws.f2s, &t.slots[si], deltas[a])
	}
	if err := numeric.FactorSoAReuse(&ws.slu2, ws.f2s); err != nil {
		return 0, fmt.Errorf("engine: fault %s at ω=%g: %w", itemID(faults, sets, fi), omega, err)
	}
	ws.cDense++
	if err := ws.slu2.SolveInto(ws.xf, t.b); err != nil {
		return 0, err
	}
	return e.out(ws.xf), nil
}
