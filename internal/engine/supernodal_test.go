package engine

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// This file pins the supernodal numeric-phase wiring: the frequency-
// blocked group refactorization and single-column supernodal refactors
// against the scalar sparse walk and the dense reference, the partial-
// refactorization exact fallback (counter-asserted — no dense work), and
// bit-identity of the group decomposition across worker counts.

// TestSupernodalThreeWayEquivalence is the tentpole acceptance pin: on
// sparse CUTs including the 2-D rc-grid family, the supernodal blocked
// path (frequency groups + supernodal single columns), the scalar sparse
// walk (UseScalarSparse), and the dense path agree to 1e-9 relative over
// single and double faults at worker counts {1, 4, NumCPU}.
func TestSupernodalThreeWayEquivalence(t *testing.T) {
	grid, err := circuits.RCGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	lad, err := circuits.RCLadder(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []circuits.CUT{grid, lad} {
		cut := cut
		t.Run(cut.Circuit.Name(), func(t *testing.T) {
			eng, err := New(cut.Circuit, cut.Source, cut.Output)
			if err != nil {
				t.Fatal(err)
			}
			singles := paperSingles(t, cut)
			pairs, err := mustUniverse(t, cut).Pairs([]float64{-0.5, 0.5}, 24)
			if err != nil {
				t.Fatal(err)
			}
			doubles := make([]fault.Set, len(pairs))
			for i, p := range pairs {
				doubles[i] = p
			}
			// 9 frequencies: two full FreqBlock groups plus a remainder, so
			// both the group walk and the single-column supernodal refactor
			// run inside one batch.
			w0 := cut.Omega0
			omegas := []float64{w0 / 8, w0 / 4, w0 / 2, w0 * 0.8, w0, w0 * 1.3, w0 * 2, w0 * 4, w0 * 8}

			eng.SetFactorPath(FactorDense)
			refS, err := eng.BatchResponses(nil, singles, omegas, 1)
			if err != nil {
				t.Fatal(err)
			}
			refD, err := eng.BatchResponsesSets(nil, doubles, omegas, 1)
			if err != nil {
				t.Fatal(err)
			}
			var peak float64
			for _, g := range refS.Golden {
				if g > peak {
					peak = g
				}
			}
			floor := 1e-3 * peak

			eng.SetFactorPath(FactorSparse)
			for _, scalarSparse := range []bool{false, true} {
				eng.UseScalarSparse(scalarSparse)
				for _, workers := range sparseWorkerCounts() {
					tag := fmt.Sprintf("scalarSparse=%v workers=%d", scalarSparse, workers)
					gotS, err := eng.BatchResponses(nil, singles, omegas, workers)
					if err != nil {
						t.Fatal(err)
					}
					for j := range omegas {
						if re := relErrFloor(gotS.Golden[j], refS.Golden[j], floor); re > 1e-9 {
							t.Fatalf("%s golden ω=%g: %.15g vs dense %.15g (rel %.3g)",
								tag, omegas[j], gotS.Golden[j], refS.Golden[j], re)
						}
					}
					for i := range singles {
						for j := range omegas {
							if re := relErrFloor(gotS.Mags[i][j], refS.Mags[i][j], floor); re > 1e-9 {
								t.Fatalf("%s fault %s ω=%g: %.15g vs dense %.15g (rel %.3g)",
									tag, singles[i].ID(), omegas[j], gotS.Mags[i][j], refS.Mags[i][j], re)
							}
						}
					}
					gotD, err := eng.BatchResponsesSets(nil, doubles, omegas, workers)
					if err != nil {
						t.Fatal(err)
					}
					for i := range doubles {
						for j := range omegas {
							if re := relErrFloor(gotD.Mags[i][j], refD.Mags[i][j], floor); re > 1e-9 {
								t.Fatalf("%s set %s ω=%g: %.15g vs dense %.15g (rel %.3g)",
									tag, doubles[i].ID(), omegas[j], gotD.Mags[i][j], refD.Mags[i][j], re)
							}
						}
					}
				}
			}
			eng.UseScalarSparse(false)

			// The supernodal paths did the golden work: every sparse golden
			// refactor above outside scalar-sparse mode is counted.
			s := eng.Stats()
			if s.SupernodalRefactors == 0 {
				t.Error("no supernodal refactors counted on a sparse CUT batch")
			}
			if s.SupernodalRefactors > s.SparseFactors {
				t.Errorf("supernodal %d > sparse %d", s.SupernodalRefactors, s.SparseFactors)
			}
		})
	}
}

func mustUniverse(t *testing.T, cut circuits.CUT) *fault.Universe {
	t.Helper()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestSparseWorkerCountBitIdentical pins the group decomposition: the
// frequency-group boundaries depend only on the omega list, never on the
// worker count, so sparse batch results must be bit-identical — not just
// 1e-9-close — at every worker count, including group/remainder splits.
func TestSparseWorkerCountBitIdentical(t *testing.T) {
	grid, err := circuits.RCGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(grid.Circuit, grid.Source, grid.Output)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFactorPath(FactorSparse)
	singles := paperSingles(t, grid)
	w0 := grid.Omega0
	// 10 frequencies: two full groups + two remainder columns.
	omegas := make([]float64, 10)
	for i := range omegas {
		omegas[i] = w0 * (0.2 + 0.35*float64(i))
	}
	ref, err := eng.BatchResponses(nil, singles, omegas, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		got, err := eng.BatchResponses(nil, singles, omegas, workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range omegas {
			if got.Golden[j] != ref.Golden[j] {
				t.Fatalf("workers=%d golden ω=%g: %.17g != %.17g", workers, omegas[j], got.Golden[j], ref.Golden[j])
			}
		}
		for i := range singles {
			for j := range omegas {
				if got.Mags[i][j] != ref.Mags[i][j] {
					t.Fatalf("workers=%d fault %s ω=%g: %.17g != %.17g",
						workers, singles[i].ID(), omegas[j], got.Mags[i][j], ref.Mags[i][j])
				}
			}
		}
	}
}

// TestPartialRefactorServesSMWFallback is the partial-refactorization
// acceptance pin: a fault engineered to break the Sherman–Morrison
// denominator guard (|1+δvᵀz| ≈ 3e-4, far under denGuard) on a sparse
// column must be re-solved by a partial refactorization from the
// column's golden factors — counter-asserted: no dense factorization of
// any kind runs — and still match the dense reference to 1e-9.
func TestPartialRefactorServesSMWFallback(t *testing.T) {
	lad, err := circuits.RCLadder(96)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(lad.Circuit, lad.Source, lad.Output)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFactorPath(FactorSparse)
	tm := eng.tmpl

	// At ω=0 the ladder is purely resistive, so vᵀz of a series-resistor
	// slot is real and the denominator den(δ) = 1 + δ·vᵀz crosses zero at
	// a real, positive-value deviation (the resistor drifting open).
	// Compute δ* = -1/vᵀz from a dense solve and back off by 3e-4: den
	// lands at 3e-4 — breaking denGuard=1e-3 — while the patched matrix
	// stays far above the sparse static-pivot guard.
	const comp = "R48"
	si, ok := tm.byName[comp]
	if !ok {
		t.Fatalf("no slot for %s", comp)
	}
	sl := &tm.slots[si]
	m := numeric.NewMatrix(tm.n, tm.n)
	tm.stampGolden(m, 0)
	lu, err := numeric.Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]complex128, tm.n)
	for _, ue := range sl.u {
		rhs[ue.idx] = ue.w
	}
	z := make([]complex128, tm.n)
	if err := lu.SolveInto(z, rhs); err != nil {
		t.Fatal(err)
	}
	var vtz complex128
	for _, ve := range sl.v {
		vtz += ve.w * z[ve.idx]
	}
	delta := (-1 / vtz) * (1 - 3e-4)
	cstar := real(sl.coeff(sl.value, 0) + delta)
	if cstar <= 0 {
		t.Fatalf("engineered conductance %g not realizable", cstar)
	}
	dev := (1/cstar)/sl.value - 1
	f := fault.Fault{Component: comp, Deviation: dev}

	before := eng.Stats()
	got, err := eng.BatchResponses(nil, []fault.Fault{f}, []float64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if d := s.ExactFallbacks - before.ExactFallbacks; d < 1 {
		t.Fatalf("engineered fault took no exact fallback (delta %d) — den guard did not trip", d)
	}
	if dp, df := s.PartialRefactors-before.PartialRefactors, s.ExactFallbacks-before.ExactFallbacks; dp != df {
		t.Errorf("partial refactors %d != exact fallbacks %d: some fallback left the sparse path", dp, df)
	}
	if d := s.DenseFactors - before.DenseFactors; d != 0 {
		t.Errorf("%d dense factorizations ran; partial refactorization must keep the fallback sparse", d)
	}
	if d := s.DenseFallbackExact - before.DenseFallbackExact; d != 0 {
		t.Errorf("dense_fallback_exact advanced by %d, want 0", d)
	}
	cols := s.PartialRefactorColumns - before.PartialRefactorColumns
	if cols < 1 || cols > int64(tm.n) {
		t.Errorf("partial refactor re-eliminated %d columns, want within [1, %d]", cols, tm.n)
	}

	// And the answer is still right.
	eng.SetFactorPath(FactorDense)
	ref, err := eng.BatchResponses(nil, []fault.Fault{f}, []float64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErrFloor(got.Mags[0][0], ref.Mags[0][0], 1e-3*ref.Golden[0]); re > 1e-9 {
		t.Errorf("partial-refactor answer %.15g vs dense %.15g (rel %.3g)", got.Mags[0][0], ref.Mags[0][0], re)
	}
}

// TestSupernodalGroupBatchAllocationFree extends the sparse steady-state
// allocation pin to the frequency-group path: with two full FreqBlock
// groups per batch, repeated batches allocate nothing.
func TestSupernodalGroupBatchAllocationFree(t *testing.T) {
	lad, err := circuits.RCLadder(80)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(lad.Circuit, lad.Source, lad.Output)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetFactorPath(FactorSparse)
	singles := paperSingles(t, lad)[:25]
	omegas := make([]float64, 2*numeric.FreqBlock)
	for i := range omegas {
		omegas[i] = 0.004 + 0.004*float64(i)
	}
	var out Batch
	run := func() {
		if err := eng.BatchResponsesInto(nil, singles, omegas, 1, &out); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up sizes the group scratch
	i := 0
	avg := testing.AllocsPerRun(30, func() {
		i++
		omegas[0] = 0.004 + float64(i%50)*1e-7
		run()
	})
	if avg >= 1 {
		t.Fatalf("group batch allocates %.2f objects/run in steady state, want < 1", avg)
	}
}
