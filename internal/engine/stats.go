package engine

import (
	"sync/atomic"

	"repro/internal/obs"
)

// PathStats counts which numeric paths the engine's batch solves took.
// All fields are lock-free atomics safe to read while batches run; the
// hot column solvers accumulate into plain workspace-local ints and
// flush here once per frequency column, so the per-item loops never
// touch shared cache lines.
type PathStats struct {
	// DenseFactors / SparseFactors count full factorizations by path:
	// golden factorizations plus exact-fallback refactorizations.
	DenseFactors  atomic.Int64
	SparseFactors atomic.Int64
	// Rank1Solves / RankKSolves count batch items solved through the
	// Sherman–Morrison rank-1 shortcut and the rank-k Woodbury
	// capacitance system (attempts — items that then fell back are
	// still counted here, plus once in ExactFallbacks).
	Rank1Solves atomic.Int64
	RankKSolves atomic.Int64
	// ExactFallbacks counts items whose SMW update was ill-conditioned
	// (or cancellation-prone) and was re-solved by an exact patched
	// refactorization.
	ExactFallbacks atomic.Int64
	// MemoHits / MemoMisses count single-fault batch calls whose fault
	// resolution was served from / recomputed into the engine memo.
	MemoHits   atomic.Int64
	MemoMisses atomic.Int64
	// SupernodalRefactors counts golden refactorizations that ran on the
	// supernodal numeric phase (frequency-blocked group columns and
	// single-column supernodal/parallel refactors), a subset of
	// SparseFactors.
	SupernodalRefactors atomic.Int64
	// PartialRefactors counts exact fallbacks served by a partial
	// refactorization from the column's golden factors instead of a
	// from-scratch sweep; PartialRefactorColumns accumulates how many
	// matrix columns those partial refactors re-eliminated.
	PartialRefactors       atomic.Int64
	PartialRefactorColumns atomic.Int64
	// DenseFallbackExact / DenseFallbackSingular split the dense
	// factorizations on sparse-capable columns by cause: an exact-solve
	// fallback whose sparse partial refactorization was singular, vs a
	// golden sparse refactorization that tripped the static-pivot guard.
	DenseFallbackExact    atomic.Int64
	DenseFallbackSingular atomic.Int64
}

// PathStatsSnapshot is a plain-value copy of PathStats, JSON-ready for
// the serving layer's /v1/stats endpoint and summable across engines.
type PathStatsSnapshot struct {
	DenseFactors   int64 `json:"dense_factors"`
	SparseFactors  int64 `json:"sparse_factors"`
	Rank1Solves    int64 `json:"rank1_solves"`
	RankKSolves    int64 `json:"rankk_solves"`
	ExactFallbacks int64 `json:"exact_fallbacks"`
	MemoHits       int64 `json:"memo_hits"`
	MemoMisses     int64 `json:"memo_misses"`

	SupernodalRefactors    int64 `json:"supernodal_refactors"`
	PartialRefactors       int64 `json:"partial_refactors"`
	PartialRefactorColumns int64 `json:"partial_refactor_columns"`
	DenseFallbackExact     int64 `json:"dense_fallback_exact"`
	DenseFallbackSingular  int64 `json:"dense_fallback_singular"`
}

// Snapshot reads the counters. Each is loaded once; concurrent batches
// may advance counters between loads, but every individual value is a
// true count at its load instant.
func (p *PathStats) Snapshot() PathStatsSnapshot {
	return PathStatsSnapshot{
		DenseFactors:   p.DenseFactors.Load(),
		SparseFactors:  p.SparseFactors.Load(),
		Rank1Solves:    p.Rank1Solves.Load(),
		RankKSolves:    p.RankKSolves.Load(),
		ExactFallbacks: p.ExactFallbacks.Load(),
		MemoHits:       p.MemoHits.Load(),
		MemoMisses:     p.MemoMisses.Load(),

		SupernodalRefactors:    p.SupernodalRefactors.Load(),
		PartialRefactors:       p.PartialRefactors.Load(),
		PartialRefactorColumns: p.PartialRefactorColumns.Load(),
		DenseFallbackExact:     p.DenseFallbackExact.Load(),
		DenseFallbackSingular:  p.DenseFallbackSingular.Load(),
	}
}

// Add accumulates another snapshot into this one — the serving layer
// sums live entries and retired (evicted) engines into one view.
func (s *PathStatsSnapshot) Add(o PathStatsSnapshot) {
	s.DenseFactors += o.DenseFactors
	s.SparseFactors += o.SparseFactors
	s.Rank1Solves += o.Rank1Solves
	s.RankKSolves += o.RankKSolves
	s.ExactFallbacks += o.ExactFallbacks
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.SupernodalRefactors += o.SupernodalRefactors
	s.PartialRefactors += o.PartialRefactors
	s.PartialRefactorColumns += o.PartialRefactorColumns
	s.DenseFallbackExact += o.DenseFallbackExact
	s.DenseFallbackSingular += o.DenseFallbackSingular
}

// flush moves the workspace-local column counters into the shared
// atomics, skipping zero adds so an all-golden column costs nothing.
func (p *PathStats) flush(ws *workspace) {
	if ws.cDense != 0 {
		p.DenseFactors.Add(ws.cDense)
	}
	if ws.cSparse != 0 {
		p.SparseFactors.Add(ws.cSparse)
	}
	if ws.cRank1 != 0 {
		p.Rank1Solves.Add(ws.cRank1)
	}
	if ws.cRankK != 0 {
		p.RankKSolves.Add(ws.cRankK)
	}
	if ws.cFallback != 0 {
		p.ExactFallbacks.Add(ws.cFallback)
	}
	if ws.cSupernodal != 0 {
		p.SupernodalRefactors.Add(ws.cSupernodal)
	}
	if ws.cPartial != 0 {
		p.PartialRefactors.Add(ws.cPartial)
	}
	if ws.cPartialCols != 0 {
		p.PartialRefactorColumns.Add(ws.cPartialCols)
	}
	if ws.cDenseExact != 0 {
		p.DenseFallbackExact.Add(ws.cDenseExact)
	}
	if ws.cDenseSingular != 0 {
		p.DenseFallbackSingular.Add(ws.cDenseSingular)
	}
}

// Stats returns a snapshot of the engine's path counters.
func (e *Engine) Stats() PathStatsSnapshot { return e.stats.Snapshot() }

// SetTracer installs (or, with nil, removes) a span tracer. When set,
// the engine records one span per frequency column of every fault-set
// batch (BatchResponsesSets and the diagnosis paths on top of it); the
// single-fault entry points — the GA fitness hot path — never record
// spans, so a tracer on a session costs the GA nothing per evaluation.
// Must not be toggled concurrently with a running batch.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }
