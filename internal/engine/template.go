// Package engine is the batched AC solver behind the fault dictionary.
//
// It compiles a circuit once into a stamp template: the MNA matrix is
// expressed as
//
//	A(s) = A_static + Σ_e coeff_e(value_e, s) · u_e v_eᵀ
//
// where the sum runs over the Valued elements (the fault targets) and
// u_e, v_e are fixed sparse pattern vectors. Every Valued element in this
// repository — R, C, L, VCVS, VCCS, CCVS, CCCS — contributes to A through
// exactly one scalar coefficient times a rank-1 pattern, so a parametric
// fault is a rank-1 perturbation of the golden matrix and a simultaneous
// k-component fault is a rank-k one. Per frequency the engine factors
// the golden system once, performs one z-solve per distinct slot in the
// batch, and then solves every single fault via the Sherman–Morrison
// identity and every k-part fault set via the Sherman–Morrison–Woodbury
// identity (a k×k capacitance system over the shared z vectors), falling
// back to a full LU when an update is ill-conditioned. Frequencies fan
// out over a worker pool with per-worker scratch workspaces, so a whole
// dictionary grid costs one O(n³) factorization per frequency instead of
// one per (fault, frequency).
package engine

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/numeric"
)

// sparseEntry is one weighted index of a pattern vector.
type sparseEntry struct {
	idx int
	w   complex128
}

// staticEntry is one constant A-matrix contribution.
type staticEntry struct {
	i, j int
	v    complex128
}

// coeffKind selects how a slot's scalar coefficient depends on the
// element value and the complex frequency s.
type coeffKind int

const (
	coeffConductance coeffKind = iota // θ = 1/value        (resistor)
	coeffCapacitance                  // θ = s·value        (capacitor)
	coeffInductance                   // θ = -s·value       (inductor branch eq)
	coeffGain                         // θ = value          (controlled sources)
)

// slot is one Valued element's parameter-dependent contribution:
// coeff(value, s) · u vᵀ added into A.
type slot struct {
	elem  string
	value float64 // nominal value at compile time
	kind  coeffKind
	u, v  []sparseEntry
}

// coeff evaluates the slot's scalar coefficient for an arbitrary value.
func (sl *slot) coeff(value float64, s complex128) complex128 {
	switch sl.kind {
	case coeffConductance:
		return complex(1/value, 0)
	case coeffCapacitance:
		return s * complex(value, 0)
	case coeffInductance:
		return -s * complex(value, 0)
	default:
		return complex(value, 0)
	}
}

// Template is a compiled MNA stamp program for one circuit: the fixed
// variable ordering, the constant part of the matrix and RHS, and one
// parameter slot per Valued element. A faulted or re-valued circuit is a
// coefficient patch on the shared template — no clone, no reassembly.
type Template struct {
	sys    *circuit.System
	n      int
	static []staticEntry
	b      []complex128
	slots  []slot
	byName map[string]int // element name → slot index

	// sparse is the compiled sparse golden stamp program (see sparse.go):
	// the one-time symbolic analysis of the frequency-independent MNA
	// pattern plus the index maps that scatter static entries and slot
	// rank-1 products into value planes. Nil when the pattern does not
	// analyze (degenerate circuits), in which case only the dense paths
	// run.
	sparse *sparseProgram
}

// Compile builds the template for a circuit. It fails on circuits that do
// not assemble, and self-checks the compiled stamp program against the
// element Stamp methods at two probe frequencies so a template can never
// silently disagree with the classic per-point path.
func Compile(c *circuit.Circuit) (*Template, error) {
	sys, err := c.Assemble()
	if err != nil {
		return nil, err
	}
	t := &Template{
		sys:    sys,
		n:      sys.Size(),
		b:      make([]complex128, sys.Size()),
		byName: make(map[string]int),
	}
	for _, e := range c.Elements() {
		if err := t.compileElement(sys, e); err != nil {
			return nil, err
		}
	}
	for _, s := range []complex128{0, complex(0, 2.7182818)} {
		if err := t.verifyAt(s); err != nil {
			return nil, err
		}
	}
	t.sparse = compileSparse(t)
	return t, nil
}

// node resolves a node name to its matrix index (-1 for ground); compile
// runs after Assemble so unknown nodes cannot occur.
func node(sys *circuit.System, name string) int {
	i, err := sys.NodeIndex(name)
	if err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	return i
}

// pair returns the ground-dropped ±1 pattern over two node indices.
func pair(i, j int) []sparseEntry {
	var out []sparseEntry
	if i >= 0 {
		out = append(out, sparseEntry{i, 1})
	}
	if j >= 0 {
		out = append(out, sparseEntry{j, -1})
	}
	return out
}

// addStatic records a constant A entry, dropping ground indices.
func (t *Template) addStatic(i, j int, v complex128) {
	if i < 0 || j < 0 {
		return
	}
	t.static = append(t.static, staticEntry{i, j, v})
}

// addB accumulates a constant RHS entry, dropping ground.
func (t *Template) addB(i int, v complex128) {
	if i < 0 {
		return
	}
	t.b[i] += v
}

// addSlot registers a Valued element's rank-1 contribution.
func (t *Template) addSlot(name string, value float64, kind coeffKind, u, v []sparseEntry) {
	t.byName[name] = len(t.slots)
	t.slots = append(t.slots, slot{elem: name, value: value, kind: kind, u: u, v: v})
}

// aux returns an element's auxiliary-variable index; compile runs after
// Assemble, which allocated one for every element that declares NumAux>0.
func aux(sys *circuit.System, name string) (int, error) {
	k, ok := sys.BranchIndex(name)
	if !ok {
		return 0, fmt.Errorf("engine: element %s: missing aux variable", name)
	}
	return k, nil
}

func (t *Template) compileElement(sys *circuit.System, e circuit.Element) error {
	switch el := e.(type) {
	case *circuit.Resistor:
		p := pair(node(sys, el.Nodes()[0]), node(sys, el.Nodes()[1]))
		t.addSlot(el.Name(), el.Ohms, coeffConductance, p, p)
	case *circuit.Capacitor:
		p := pair(node(sys, el.Nodes()[0]), node(sys, el.Nodes()[1]))
		t.addSlot(el.Name(), el.Farads, coeffCapacitance, p, p)
	case *circuit.Inductor:
		k, err := aux(sys, el.Name())
		if err != nil {
			return err
		}
		i, j := node(sys, el.Nodes()[0]), node(sys, el.Nodes()[1])
		t.addStatic(i, k, 1)
		t.addStatic(j, k, -1)
		t.addStatic(k, i, 1)
		t.addStatic(k, j, -1)
		ek := []sparseEntry{{k, 1}}
		t.addSlot(el.Name(), el.Henries, coeffInductance, ek, ek)
	case *circuit.VSource:
		k, err := aux(sys, el.Name())
		if err != nil {
			return err
		}
		i, j := node(sys, el.Nodes()[0]), node(sys, el.Nodes()[1])
		t.addStatic(i, k, 1)
		t.addStatic(j, k, -1)
		t.addStatic(k, i, 1)
		t.addStatic(k, j, -1)
		t.addB(k, el.Amplitude)
	case *circuit.ISource:
		i, j := node(sys, el.Nodes()[0]), node(sys, el.Nodes()[1])
		t.addB(i, -el.Amplitude)
		t.addB(j, el.Amplitude)
	case *circuit.VCVS:
		k, err := aux(sys, el.Name())
		if err != nil {
			return err
		}
		op, on := node(sys, el.OutP), node(sys, el.OutN)
		cp, cn := node(sys, el.CtlP), node(sys, el.CtlN)
		t.addStatic(op, k, 1)
		t.addStatic(on, k, -1)
		t.addStatic(k, op, 1)
		t.addStatic(k, on, -1)
		// A[k,cp] = -Gain, A[k,cn] = +Gain → Gain · e_k (e_cn - e_cp)ᵀ.
		t.addSlot(el.Name(), el.Gain, coeffGain, []sparseEntry{{k, 1}}, pair(cn, cp))
	case *circuit.VCCS:
		op, on := node(sys, el.OutP), node(sys, el.OutN)
		cp, cn := node(sys, el.CtlP), node(sys, el.CtlN)
		t.addSlot(el.Name(), el.Gm, coeffGain, pair(op, on), pair(cp, cn))
	case *circuit.CCVS:
		k, err := aux(sys, el.Name())
		if err != nil {
			return err
		}
		kc, err := aux(sys, el.Control)
		if err != nil {
			return fmt.Errorf("engine: %s: controlling element %q has no branch current", el.Name(), el.Control)
		}
		op, on := node(sys, el.OutP), node(sys, el.OutN)
		t.addStatic(op, k, 1)
		t.addStatic(on, k, -1)
		t.addStatic(k, op, 1)
		t.addStatic(k, on, -1)
		// A[k,kc] = -R.
		t.addSlot(el.Name(), el.R, coeffGain, []sparseEntry{{k, 1}}, []sparseEntry{{kc, -1}})
	case *circuit.CCCS:
		kc, err := aux(sys, el.Control)
		if err != nil {
			return fmt.Errorf("engine: %s: controlling element %q has no branch current", el.Name(), el.Control)
		}
		op, on := node(sys, el.OutP), node(sys, el.OutN)
		t.addSlot(el.Name(), el.Gain, coeffGain, pair(op, on), []sparseEntry{{kc, 1}})
	case *circuit.IdealOpAmp:
		k, err := aux(sys, el.Name())
		if err != nil {
			return err
		}
		out := node(sys, el.Out)
		ip, in := node(sys, el.InP), node(sys, el.InN)
		t.addStatic(out, k, 1)
		t.addStatic(k, ip, 1)
		t.addStatic(k, in, -1)
	default:
		return fmt.Errorf("engine: cannot compile element %s of type %T", e.Name(), e)
	}
	return nil
}

// Size returns the MNA system order.
func (t *Template) Size() int { return t.n }

// System returns the underlying assembled system (variable ordering).
func (t *Template) System() *circuit.System { return t.sys }

// HasSlot reports whether the named element is a compiled parameter slot
// (i.e. a legal rank-1 fault target).
func (t *Template) HasSlot(elem string) bool {
	_, ok := t.byName[elem]
	return ok
}

// SlotValue returns the nominal value of a named slot.
func (t *Template) SlotValue(elem string) (float64, bool) {
	i, ok := t.byName[elem]
	if !ok {
		return 0, false
	}
	return t.slots[i].value, true
}

// stampGolden fills dst (which must be n×n) with the golden A(s): the
// static entries plus every slot at its nominal value.
func (t *Template) stampGolden(dst *numeric.Matrix, s complex128) {
	dst.Zero()
	for _, e := range t.static {
		dst.Add(e.i, e.j, e.v)
	}
	for i := range t.slots {
		sl := &t.slots[i]
		t.addRank1(dst, sl, sl.coeff(sl.value, s))
	}
}

// addRank1 accumulates θ · u vᵀ for one slot into dst.
func (t *Template) addRank1(dst *numeric.Matrix, sl *slot, theta complex128) {
	if theta == 0 {
		return
	}
	for _, ue := range sl.u {
		w := theta * ue.w
		for _, ve := range sl.v {
			dst.Add(ue.idx, ve.idx, w*ve.w)
		}
	}
}

// stampGoldenSoA is stampGolden writing into split re/im planes — the
// blocked kernel path's matrix source. Stamp order matches stampGolden
// exactly, so the two layouts hold bitwise-identical values.
func (t *Template) stampGoldenSoA(dst *numeric.SoAMatrix, s complex128) {
	dst.Zero()
	for _, e := range t.static {
		dst.Add(e.i, e.j, e.v)
	}
	for i := range t.slots {
		sl := &t.slots[i]
		t.addRank1SoA(dst, sl, sl.coeff(sl.value, s))
	}
}

// addRank1SoA accumulates θ · u vᵀ for one slot into SoA planes.
func (t *Template) addRank1SoA(dst *numeric.SoAMatrix, sl *slot, theta complex128) {
	if theta == 0 {
		return
	}
	for _, ue := range sl.u {
		w := theta * ue.w
		for _, ve := range sl.v {
			dst.Add(ue.idx, ve.idx, w*ve.w)
		}
	}
}

// RHS returns the template's constant source vector (not a copy).
func (t *Template) RHS() []complex128 { return t.b }

// verifyAt cross-checks the compiled template against the elements' own
// Stamp methods at one complex frequency.
func (t *Template) verifyAt(s complex128) error {
	want, wantB, err := t.sys.StampAt(s)
	if err != nil {
		return err
	}
	got := numeric.NewMatrix(t.n, t.n)
	t.stampGolden(got, s)
	tol := 1e-12 * (1 + want.MaxAbs())
	if !got.Equalish(want, tol) {
		return fmt.Errorf("engine: compiled template disagrees with element stamps at s=%v", s)
	}
	for i := range wantB {
		if d := t.b[i] - wantB[i]; real(d)*real(d)+imag(d)*imag(d) > tol*tol {
			return fmt.Errorf("engine: compiled RHS disagrees with element stamps at s=%v", s)
		}
	}
	return nil
}
