package engine

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
)

// paperSingles returns the paper deviation universe of a CUT as a flat
// fault list (component-major, deviations ascending), plus the golden.
func paperSingles(t testing.TB, cut circuits.CUT) []fault.Fault {
	t.Helper()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	out := []fault.Fault{{}}
	for _, c := range u.Components {
		for _, d := range u.Deviations {
			out = append(out, fault.Fault{Component: c, Deviation: d})
		}
	}
	return out
}

// doublePairs returns every component-pair double fault of a CUT at the
// paper deviations, as fault sets.
func doublePairs(t testing.TB, cut circuits.CUT) []fault.Set {
	t.Helper()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := u.Pairs(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]fault.Set, len(pairs))
	for i, p := range pairs {
		sets[i] = p
	}
	return sets
}

// TestBlockedMatchesScalarAllCUTs is the blocked-kernel acceptance pin:
// on every built-in CUT, the default blocked SoA path must agree with
// the scalar complex128 reference path to within 1e-9 relative error
// over the full single-fault paper universe AND the complete
// double-fault pair universe, at every worker count. Responses far
// below the CUT's response scale (notch nulls) are compared against a
// noise floor, exactly like the engine-vs-reference pins.
func TestBlockedMatchesScalarAllCUTs(t *testing.T) {
	for _, cut := range circuits.All() {
		cut := cut
		t.Run(cut.Circuit.Name(), func(t *testing.T) {
			eng, err := New(cut.Circuit, cut.Source, cut.Output)
			if err != nil {
				t.Fatal(err)
			}
			omegas := testOmegas(cut.Omega0)
			singles := paperSingles(t, cut)
			doubles := doublePairs(t, cut)

			eng.UseScalarKernels(true)
			refSingles, err := eng.BatchResponses(nil, singles, omegas, 1)
			if err != nil {
				t.Fatal(err)
			}
			refDoubles, err := eng.BatchResponsesSets(nil, doubles, omegas, 1)
			if err != nil {
				t.Fatal(err)
			}
			var peak float64
			for _, g := range refSingles.Golden {
				if g > peak {
					peak = g
				}
			}
			floor := 1e-3 * peak

			eng.UseScalarKernels(false)
			for _, workers := range []int{1, 2, 3, 8} {
				gotSingles, err := eng.BatchResponses(nil, singles, omegas, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range singles {
					for j := range omegas {
						if re := relErrFloor(gotSingles.Mags[i][j], refSingles.Mags[i][j], floor); re > 1e-9 {
							t.Fatalf("workers=%d fault %s ω=%g: blocked %.15g vs scalar %.15g (rel %.3g)",
								workers, singles[i].ID(), omegas[j], gotSingles.Mags[i][j], refSingles.Mags[i][j], re)
						}
					}
				}
				for j := range omegas {
					if re := relErrFloor(gotSingles.Golden[j], refSingles.Golden[j], floor); re > 1e-9 {
						t.Fatalf("workers=%d golden ω=%g: blocked %.15g vs scalar %.15g",
							workers, omegas[j], gotSingles.Golden[j], refSingles.Golden[j])
					}
				}
				gotDoubles, err := eng.BatchResponsesSets(nil, doubles, omegas, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i := range doubles {
					for j := range omegas {
						if re := relErrFloor(gotDoubles.Mags[i][j], refDoubles.Mags[i][j], floor); re > 1e-9 {
							t.Fatalf("workers=%d set %s ω=%g: blocked %.15g vs scalar %.15g (rel %.3g)",
								workers, doubles[i].ID(), omegas[j], gotDoubles.Mags[i][j], refDoubles.Mags[i][j], re)
						}
					}
				}
			}
		})
	}
}

// TestBlockedWorkerCountInvariance pins that the blocked path is
// bit-identical across worker counts: columns are solved independently
// in self-contained workspaces, so the worker decomposition must never
// leak into results.
func TestBlockedWorkerCountInvariance(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	omegas := testOmegas(cut.Omega0)
	singles := paperSingles(t, cut)
	ref, err := eng.BatchResponses(nil, singles, omegas, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 16} {
		got, err := eng.BatchResponses(nil, singles, omegas, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range singles {
			for j := range omegas {
				if got.Mags[i][j] != ref.Mags[i][j] {
					t.Fatalf("workers=%d fault %s ω=%g: %.17g != %.17g (1 worker)",
						workers, singles[i].ID(), omegas[j], got.Mags[i][j], ref.Mags[i][j])
				}
			}
		}
	}
}

// BenchmarkColumnKernels times one full single-fault universe batch
// (paper CUT, 2 frequencies — the GA fitness shape) under each kernel
// path, so `benchstat` can show the blocked-over-scalar win directly.
func BenchmarkColumnKernels(b *testing.B) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		b.Fatal(err)
	}
	singles := paperSingles(b, cut)
	omegas := []float64{0.5, 2}
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"blocked", false}, {"scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng.UseScalarKernels(mode.scalar)
			defer eng.UseScalarKernels(false)
			var out Batch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				omegas[0] = 0.5 + float64(i%100)*1e-5
				omegas[1] = 2 + float64(i%100)*1e-5
				if err := eng.BatchResponsesInto(nil, singles, omegas, 1, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColumnKernelsMulti is BenchmarkColumnKernels over the
// double-fault pair universe (the rank-k Woodbury shape).
func BenchmarkColumnKernelsMulti(b *testing.B) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		b.Fatal(err)
	}
	doubles := doublePairs(b, cut)
	omegas := []float64{0.5, 2}
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"blocked", false}, {"scalar", true}} {
		b.Run(fmt.Sprintf("%s", mode.name), func(b *testing.B) {
			eng.UseScalarKernels(mode.scalar)
			defer eng.UseScalarKernels(false)
			var out Batch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := eng.BatchResponsesSetsInto(nil, doubles, omegas, 1, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
