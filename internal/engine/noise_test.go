package engine

import (
	"context"
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuits"
	"repro/internal/numeric"
)

// The engine-template noise evaluation (one z-solve per conductance
// slot over the golden LU) must match the clone-based reference in
// analysis.OutputNoise (silence sources, inject a unit AC current
// across each resistor, full re-solve) to 1e-9 relative on multiple
// built-in CUTs — the satellite contract wiring the seed-era noise
// model onto the batched engine path.
func TestOutputNoisePSDMatchesCloneReference(t *testing.T) {
	const tempK = 300.0
	for _, c := range []circuits.CUT{
		circuits.NFLowpass7(),
		circuits.SallenKeyLP(),
		circuits.RLCNotch(),
		circuits.KHNLowpass(),
	} {
		cut := c
		t.Run(cut.Circuit.Name(), func(t *testing.T) {
			eng, err := New(cut.Circuit, cut.Source, cut.Output)
			if err != nil {
				t.Fatal(err)
			}
			omegas := numeric.Logspace(cut.Omega0/10, cut.Omega0*10, 7)
			psd, err := eng.OutputNoisePSD(context.Background(), omegas, tempK)
			if err != nil {
				t.Fatal(err)
			}
			for j, w := range omegas {
				_, ref, err := analysis.OutputNoise(cut.Circuit, cut.Output, w, tempK)
				if err != nil {
					t.Fatalf("ω=%g: %v", w, err)
				}
				if ref <= 0 || psd[j] <= 0 {
					t.Fatalf("ω=%g: nonpositive PSD (engine %g, clone %g)", w, psd[j], ref)
				}
				if rel := math.Abs(psd[j]-ref) / ref; rel > 1e-9 {
					t.Errorf("ω=%g: engine PSD %.15g vs clone %.15g (rel %.3g)", w, psd[j], ref, rel)
				}
			}
		})
	}
}

// NoiseRMS integrates the same per-frequency PSDs; a trapezoid over the
// engine's PSD on NoiseRMS's own grid must reproduce it to 1e-9,
// pinning grid convention (log-ω points, linear-Hz integration) as well
// as the per-point values.
func TestNoiseRMSMatchesEnginePSDIntegration(t *testing.T) {
	const tempK = 300.0
	const n = 40
	cut := circuits.NFLowpass7()
	wLo, wHi := cut.Omega0/100, cut.Omega0*100
	ref, err := analysis.NoiseRMS(cut.Circuit, cut.Output, wLo, wHi, tempK, n)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	// The exact grid NoiseRMS walks: wLo·(wHi/wLo)^(i/(n−1)).
	omegas := make([]float64, n)
	for i := range omegas {
		omegas[i] = wLo * math.Pow(wHi/wLo, float64(i)/float64(n-1))
	}
	psd, err := eng.OutputNoisePSD(context.Background(), omegas, tempK)
	if err != nil {
		t.Fatal(err)
	}
	var power float64
	for i := 1; i < len(omegas); i++ {
		fPrev := omegas[i-1] / (2 * math.Pi)
		fCur := omegas[i] / (2 * math.Pi)
		power += 0.5 * (psd[i-1] + psd[i]) * (fCur - fPrev)
	}
	got := math.Sqrt(power)
	if rel := math.Abs(got-ref) / ref; rel > 1e-9 {
		t.Fatalf("NoiseRMS %.15g vs engine integration %.15g (rel %.3g)", ref, got, rel)
	}
}

func TestOutputNoisePSDValidation(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OutputNoisePSD(context.Background(), []float64{1}, 0); err == nil {
		t.Fatal("zero temperature accepted")
	}
	if _, err := eng.OutputNoisePSD(context.Background(), nil, 300); err == nil {
		t.Fatal("empty frequency list accepted")
	}
	if eng.SourceAmplitude() <= 0 {
		t.Fatalf("SourceAmplitude = %g", eng.SourceAmplitude())
	}
}
