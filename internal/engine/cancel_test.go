package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/numeric"
	"repro/internal/rerr"
)

func testEngine(t *testing.T) (*Engine, []fault.Fault) {
	t.Helper()
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	return eng, u.Faults()
}

// TestBatchCanceledBeforeStart: an already-canceled context returns
// ErrCanceled without solving any column.
func TestBatchCanceledBeforeStart(t *testing.T) {
	eng, faults := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := eng.BatchResponses(ctx, faults, numeric.Logspace(0.01, 100, 16), workers)
		if !errors.Is(err, rerr.ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled in chain", workers, err)
		}
	}
}

// TestBatchCanceledMidway: cancellation from inside a progress callback
// stops the batch within one in-flight column per worker.
func TestBatchCanceledMidway(t *testing.T) {
	eng, faults := testEngine(t)
	grid := numeric.Logspace(0.01, 100, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	solved := 0
	const workers = 2
	_, err := eng.BatchResponsesProgress(ctx, faults, grid, workers, func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		solved++
		if solved == 2 {
			cancel()
		}
	})
	if !errors.Is(err, rerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	// 2 columns triggered the cancel; each worker may finish one more.
	if solved > 2+workers {
		t.Fatalf("%d columns solved after cancellation, want <= %d", solved, 2+workers)
	}
}

// TestBatchProgressCountsEveryColumn: the hook reports each column once
// and ends at total, at any worker count.
func TestBatchProgressCountsEveryColumn(t *testing.T) {
	eng, faults := testEngine(t)
	grid := numeric.Logspace(0.1, 10, 9)
	for _, workers := range []int{1, 3} {
		var mu sync.Mutex
		var dones []int
		batch, err := eng.BatchResponsesProgress(nil, faults, grid, workers, func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(grid) {
				t.Errorf("total = %d, want %d", total, len(grid))
			}
			dones = append(dones, done)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(batch.Mags) != len(faults) {
			t.Fatalf("batch rows = %d", len(batch.Mags))
		}
		if len(dones) != len(grid) {
			t.Fatalf("workers=%d: %d progress events, want %d", workers, len(dones), len(grid))
		}
		seen := make(map[int]bool)
		for _, d := range dones {
			if d < 1 || d > len(grid) || seen[d] {
				t.Fatalf("workers=%d: bad done sequence %v", workers, dones)
			}
			seen[d] = true
		}
	}
}

// TestUnknownComponentIsStructured: resolving a fault against a missing
// element reports ErrUnknownComponent.
func TestUnknownComponentIsStructured(t *testing.T) {
	eng, _ := testEngine(t)
	_, err := eng.Response(fault.Fault{Component: "R99", Deviation: 0.2}, 1)
	if !errors.Is(err, rerr.ErrUnknownComponent) {
		t.Fatalf("err = %v, want ErrUnknownComponent", err)
	}
	_, err = eng.BatchResponses(nil, []fault.Fault{{Component: "nope", Deviation: 0.1}}, []float64{1, 2}, 1)
	if !errors.Is(err, rerr.ErrUnknownComponent) {
		t.Fatalf("batch err = %v, want ErrUnknownComponent", err)
	}
}
