package engine

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/numeric"
)

// cutEngines compiles one engine per built-in CUT.
func cutEngines(t *testing.T) []*Engine {
	t.Helper()
	var out []*Engine
	for _, cut := range circuits.All() {
		e, err := New(cut.Circuit, cut.Source, cut.Output)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		out = append(out, e)
	}
	return out
}

// testOmegas returns a frequency spread around a CUT's characteristic
// frequency.
func testOmegas(omega0 float64) []float64 {
	return []float64{omega0 / 50, omega0 / 5, omega0 / 2, omega0, omega0 * 2, omega0 * 7, omega0 * 40}
}

// TestBatchSetsMatchFullLUReference is the rank-k acceptance pin: for
// every built-in CUT, the batched Woodbury path must agree with the
// full-LU reference (ResponseSet: patch the template, factor the whole
// system) to within 1e-9 relative error over the complete double-fault
// universe at the paper deviations.
func TestBatchSetsMatchFullLUReference(t *testing.T) {
	for i, cut := range circuits.All() {
		eng := cutEngines(t)[i]
		u, err := fault.NewUniverse(cut.Passives, []float64{-0.4, -0.2, 0.3})
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		pairs, err := u.Pairs(nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		sets := make([]fault.Set, 0, len(pairs)+2)
		sets = append(sets, fault.Fault{}, fault.Fault{Component: cut.Passives[0], Deviation: 0.3})
		for _, p := range pairs {
			sets = append(sets, p)
		}
		omegas := testOmegas(cut.Omega0)
		batch, err := eng.BatchResponsesSets(nil, sets, omegas, 3)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		// Same noise-floor convention as TestBatchAllCUTs: notch nulls far
		// below the circuit's peak response compare on absolute terms.
		var peak float64
		for _, g := range batch.Golden {
			peak = math.Max(peak, g)
		}
		floor := 1e-3 * peak
		for si, set := range sets {
			for j, w := range omegas {
				want, err := eng.ResponseSet(set, w)
				if err != nil {
					t.Fatalf("%s: %s: %v", cut.Circuit.Name(), set.ID(), err)
				}
				if re := relErrFloor(batch.Mags[si][j], want, floor); re > 1e-9 {
					t.Fatalf("%s: %s at ω=%g: batch %.15g, full LU %.15g (rel %.3g)",
						cut.Circuit.Name(), set.ID(), w, batch.Mags[si][j], want, re)
				}
			}
		}
	}
}

// TestBatchSetsMatchCloneAndSolve is the property test: random k∈{2,3}
// fault sets on random built-in CUTs, batched rank-k responses compared
// against the independent clone-and-full-solve reference (apply the
// multi to a circuit clone, reassemble, factor the fresh system) within
// 1e-9.
func TestBatchSetsMatchCloneAndSolve(t *testing.T) {
	cuts := circuits.All()
	engines := cutEngines(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ci := rng.Intn(len(cuts))
		cut, eng := cuts[ci], engines[ci]
		k := 2 + rng.Intn(2)
		if k > len(cut.Passives) {
			k = len(cut.Passives)
		}
		parts := make([]fault.Fault, k)
		for i, pi := range rng.Perm(len(cut.Passives))[:k] {
			// Deviations drawn continuously in ±60%, excluding near-zero.
			d := (rng.Float64()*2 - 1) * 0.6
			if d > -0.01 && d < 0.01 {
				d = 0.05
			}
			parts[i] = fault.Fault{Component: cut.Passives[pi], Deviation: d}
		}
		m, err := fault.NewMulti(parts...)
		if err != nil {
			t.Fatal(err)
		}
		omegas := testOmegas(cut.Omega0)
		batch, err := eng.BatchResponsesSets(nil, []fault.Set{m}, omegas, 1)
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := m.Apply(cut.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := analysis.NewAC(faulty)
		if err != nil {
			t.Fatal(err)
		}
		var peak float64
		for _, g := range batch.Golden {
			peak = math.Max(peak, g)
		}
		floor := 1e-3 * peak
		for j, w := range omegas {
			h, err := ac.Transfer(cut.Source, cut.Output, w)
			if err != nil {
				t.Fatal(err)
			}
			want := cmplx.Abs(h)
			if re := relErrFloor(batch.Mags[0][j], want, floor); re > 1e-9 {
				t.Logf("%s: %s at ω=%g: batch %.15g, clone %.15g (rel %.3g)",
					cut.Circuit.Name(), m.ID(), w, batch.Mags[0][j], want, re)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSetsSharedSlots: items of a mixed batch share z-solves — a
// batch mixing golden, singles, and overlapping pairs must agree with
// each set solved alone.
func TestBatchSetsSharedSlots(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	p := cut.Passives
	m1, _ := fault.NewMulti(fault.Fault{Component: p[0], Deviation: 0.2}, fault.Fault{Component: p[1], Deviation: -0.3})
	m2, _ := fault.NewMulti(fault.Fault{Component: p[0], Deviation: -0.4}, fault.Fault{Component: p[2], Deviation: 0.1})
	sets := []fault.Set{
		fault.Fault{},
		fault.Fault{Component: p[1], Deviation: -0.3},
		m1, m2,
	}
	omegas := testOmegas(cut.Omega0)
	batch, err := eng.BatchResponsesSets(nil, sets, omegas, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		alone, err := eng.BatchResponsesSets(nil, []fault.Set{set}, omegas, 1)
		if err != nil {
			t.Fatal(err)
		}
		for j := range omegas {
			if batch.Mags[i][j] != alone.Mags[0][j] {
				t.Fatalf("%s at ω=%g: mixed batch %.17g, alone %.17g",
					set.ID(), omegas[j], batch.Mags[i][j], alone.Mags[0][j])
			}
		}
	}
}

// TestBatchSetsRejectsDuplicateComponents: a hand-built set faulting one
// component twice is rejected up front, in both the batch and the exact
// paths.
func TestBatchSetsRejectsDuplicateComponents(t *testing.T) {
	cut := circuits.NFLowpass7()
	eng, err := New(cut.Circuit, cut.Source, cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	dup := fault.Multi{
		{Component: cut.Passives[0], Deviation: 0.1},
		{Component: cut.Passives[0], Deviation: 0.2},
	}
	if _, err := eng.BatchResponsesSets(nil, []fault.Set{dup}, []float64{1}, 1); err == nil {
		t.Fatal("duplicate-component set accepted by batch path")
	}
	if _, err := eng.ResponseSet(dup, 1); err == nil {
		t.Fatal("duplicate-component set accepted by exact path")
	}
}

// TestSolveSmallAgainstLU cross-checks the k×k capacitance solver
// against the general LU on random well-conditioned systems.
func TestSolveSmallAgainstLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(3)
		m := numeric.NewMatrix(k, k)
		flat := make([]complex128, k*k)
		r := make([]complex128, k)
		for i := 0; i < k; i++ {
			r[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			for j := 0; j < k; j++ {
				v := complex(rng.NormFloat64(), rng.NormFloat64())
				if i == j {
					v += 4 // diagonally dominant: solveSmall must accept
				}
				m.Set(i, j, v)
				flat[i*k+j] = v
			}
		}
		rhs := append([]complex128(nil), r...)
		if !solveSmall(k, flat, rhs) {
			t.Fatalf("trial %d: solveSmall refused a well-conditioned system", trial)
		}
		lu, err := numeric.FactorInPlace(m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lu.Solve(r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if cmplx.Abs(rhs[i]-want[i]) > 1e-10*(1+cmplx.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, rhs[i], want[i])
			}
		}
	}
}
