package circuits

import (
	"strings"
	"testing"
)

// TestScalingValidates assembles every scaling-tier CUT and checks its
// measurement metadata, like the All() validation test does for the
// fixed set.
func TestScalingValidates(t *testing.T) {
	seen := map[string]bool{}
	for _, cut := range Scaling() {
		name := cut.Circuit.Name()
		if seen[name] {
			t.Errorf("duplicate scaling CUT %q", name)
		}
		seen[name] = true
		if err := cut.Validate(); err != nil {
			t.Errorf("CUT %s: %v", name, err)
		}
		if cut.Description == "" || cut.Omega0 <= 0 {
			t.Errorf("CUT %s: incomplete metadata", name)
		}
	}
}

// TestScalingReachesHundredsOfUnknowns pins the point of the tier: the
// largest registered members must assemble systems with hundreds of MNA
// unknowns.
func TestScalingReachesHundredsOfUnknowns(t *testing.T) {
	for _, tc := range []struct {
		name string
		min  int
	}{
		{"rc-ladder-256", 256},
		{"opamp-cascade-32", 150},
		{"rc-grid-32", 1025},
	} {
		cut, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := cut.Circuit.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		if sys.Size() < tc.min {
			t.Errorf("%s: %d unknowns, want >= %d", tc.name, sys.Size(), tc.min)
		}
	}
}

// TestByNameParameterized covers the family-name resolution paths.
func TestByNameParameterized(t *testing.T) {
	cut, err := ByName("rc-ladder-128")
	if err != nil {
		t.Fatal(err)
	}
	if got := cut.Circuit.Name(); got != "rc-ladder-128" {
		t.Errorf("name = %q", got)
	}
	if len(cut.Passives) != 256 {
		t.Errorf("rc-ladder-128 has %d passives, want 256", len(cut.Passives))
	}

	cut, err = ByName("opamp-cascade-8")
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Passives) != 40 {
		t.Errorf("opamp-cascade-8 has %d passives, want 40", len(cut.Passives))
	}
	// Stage elements carry the instance prefix from the subckt expansion.
	if _, ok := cut.Circuit.Element("X3.C1"); !ok {
		t.Error("opamp-cascade-8 missing expanded element X3.C1")
	}

	// Fixed names keep working through the same entry point.
	if _, err := ByName("rc-ladder-3"); err != nil {
		t.Errorf("fixed rc-ladder-3: %v", err)
	}

	// A family prefix with a bad size reports the constructor's error;
	// non-family junk reports the not-found error listing the families.
	if _, err := ByName("rc-ladder-0"); err == nil || !strings.Contains(err.Error(), "n >= 1") {
		t.Errorf("rc-ladder-0: %v", err)
	}
	if _, err := ByName("no-such-cut"); err == nil || !strings.Contains(err.Error(), "rc-ladder-<n>") {
		t.Errorf("unknown name should list families, got: %v", err)
	}
	if _, err := ByName("rc-ladder-xyz"); err == nil {
		t.Error("non-numeric suffix must not resolve")
	}
}

// TestOpampCascadeBehavesLowpass sanity-checks the cascade's response
// shape indirectly through its metadata: the golden circuit must
// assemble and every stage's five filter passives must be Valued fault
// targets.
func TestOpampCascadeBehavesLowpass(t *testing.T) {
	cut, err := OpampCascade(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cut.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cut.Passives) != 20 {
		t.Fatalf("4-stage cascade has %d fault targets, want 20", len(cut.Passives))
	}
	if _, err := OpampCascade(0); err == nil {
		t.Error("OpampCascade(0) must fail")
	}
}

// TestRCGridStructure pins the mesh family's contract: k²+1 unknowns, a
// fault universe bounded at 24 targets regardless of grid size, and
// every target an element on the source→output diagonal staircase.
func TestRCGridStructure(t *testing.T) {
	for _, tc := range []struct {
		k, unknowns, targets int
	}{
		{4, 17, 9},
		{16, 257, 24},
		{45, 2026, 24},
	} {
		cut, err := RCGrid(tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if err := cut.Validate(); err != nil {
			t.Fatalf("rc-grid-%d: %v", tc.k, err)
		}
		sys, err := cut.Circuit.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		if sys.Size() != tc.unknowns {
			t.Errorf("rc-grid-%d: %d unknowns, want %d", tc.k, sys.Size(), tc.unknowns)
		}
		if len(cut.Passives) != tc.targets {
			t.Errorf("rc-grid-%d: %d fault targets, want %d", tc.k, len(cut.Passives), tc.targets)
		}
		for _, p := range cut.Passives {
			if _, ok := cut.Circuit.Element(p); !ok {
				t.Errorf("rc-grid-%d: fault target %s not in circuit", tc.k, p)
			}
		}
	}
	if _, err := RCGrid(1); err == nil {
		t.Error("RCGrid(1) must fail")
	}
	if _, err := ByName("rc-grid-8"); err != nil {
		t.Errorf("ByName rc-grid-8: %v", err)
	}
}
