package circuits

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/netlist"
)

// This file is the parameterized scaling tier of the benchmark library:
// CUT families whose size is a constructor argument, reaching hundreds
// of MNA unknowns — the workload the sparse golden engine exists for.
// Two families are registered:
//
//   - rc-ladder-<n>     — RCLadder(n), the pure-passive stress ladder
//     (~n+2 unknowns);
//   - opamp-cascade-<n> — OpampCascade(n), an active n-stage MFB
//     low-pass chain built through the netlist .subckt expansion with a
//     single-pole opamp macromodel per stage (~6n unknowns);
//   - rc-grid-<k>       — RCGrid(k), a k×k two-dimensional RC mesh
//     (~k²+1 unknowns) whose 2-D connectivity produces the fill and
//     supernode structure a 1-D ladder cannot — the thousand-node tier
//     the supernodal numeric phase targets.
//
// All are reachable by name from every binary through ByName, which
// recognizes the parameterized suffix.

// OpampCascade returns an n-stage active filter cascade: n MFB low-pass
// subcircuit instances X1..Xn in series, each expanded into passives
// plus a VCVS-based opamp macromodel by the netlist .subckt machinery.
//
// Each stage is a normalized multiple-feedback (MFB) low-pass (ω0 = 1
// rad/s, Q ≈ 0.67; R1 = R2 = R3 = 1, C1 = 2, C2 = 0.5 — the NFLowpass7
// core values) around an inline single-pole opamp macromodel with the
// opamp.Expand topology (Rin, VCVS gain stage, Rp–Cp dominant pole,
// Rout): A0 = 1e5, pole ω_p = 1e3 rad/s (Rp = 1 kΩ → Cp = 1 µF).
// Stage i's fault targets are its five filter passives X<i>.R1, X<i>.R2,
// X<i>.R3, X<i>.C1, X<i>.C2 (the macromodel primitives stay golden).
// With ~6 unknowns per stage the cascade reaches hundreds of MNA
// unknowns by n ≈ 40.
func OpampCascade(n int) (CUT, error) {
	if n < 1 {
		return CUT{}, fmt.Errorf("circuits: OpampCascade needs n >= 1, got %d", n)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "opamp-cascade-%d\n", n)
	b.WriteString(`.subckt mfblp in out
R1 in x 1
R2 x out 1
R3 x vg 1
C1 x 0 2
C2 vg out 0.5
RIN 0 vg 1meg
E1 g 0 0 vg 100k
RP g p 1k
CP p 0 1u
RO p out 75
.ends
`)
	b.WriteString("Vin n0 0 1\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "X%d n%d n%d mfblp\n", i, i-1, i)
	}
	fmt.Fprintf(&b, "RL n%d 0 1\n", n)
	c, err := netlist.Parse(b.String())
	if err != nil {
		return CUT{}, fmt.Errorf("circuits: OpampCascade(%d): %w", n, err)
	}
	passives := make([]string, 0, 5*n)
	for i := 1; i <= n; i++ {
		for _, p := range []string{"R1", "R2", "R3", "C1", "C2"} {
			passives = append(passives, fmt.Sprintf("X%d.%s", i, p))
		}
	}
	return CUT{
		Circuit:  c,
		Source:   "Vin",
		Output:   fmt.Sprintf("n%d", n),
		Passives: passives,
		// Each stage is a unity-DC-gain low-pass at ω0 = 1; the cascade's
		// usable band shrinks with n, so center searches well inside it.
		Omega0:      0.5,
		Description: fmt.Sprintf("active %d-stage MFB low-pass cascade with opamp macromodels (%d fault targets)", n, 5*n),
	}, nil
}

// RCGrid returns a k×k two-dimensional RC mesh: node g<i>x<j> at grid
// position (i, j) with unit resistors to its right and down neighbors
// and a unit capacitor to ground, driven at the (0,0) corner and
// observed at the opposite (k-1,k-1) corner. Unlike the 1-D ladder —
// whose tridiagonal-like MNA pattern factors with almost no fill — the
// mesh is a genuine 2-D elimination problem (nested-dissection-grade
// fill, wide supernodes, a deep elimination tree), the structure the
// supernodal numeric phase and frequency-blocked refactorization are
// built for. k = 32 crosses a thousand unknowns (k²+1 = 1025); k = 64
// reaches 4097.
//
// The fault universe stays bounded as the grid scales: the 2k-1
// passives on the source→output main diagonal staircase, capped at 24
// targets, so the dictionary and rank-1 slot machinery stay small while
// the golden factorization carries the full k² system.
func RCGrid(k int) (CUT, error) {
	if k < 2 {
		return CUT{}, fmt.Errorf("circuits: RCGrid needs k >= 2, got %d", k)
	}
	c := circuit.New(fmt.Sprintf("rc-grid-%d", k))
	node := func(i, j int) string { return fmt.Sprintf("g%dx%d", i, j) }
	c.MustAdd(circuit.NewVSource("Vin", node(0, 0), "0", 1))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			cur := node(i, j)
			if j+1 < k {
				c.MustAdd(circuit.NewResistor(fmt.Sprintf("Rh%dx%d", i, j), cur, node(i, j+1), 1))
			}
			if i+1 < k {
				c.MustAdd(circuit.NewResistor(fmt.Sprintf("Rv%dx%d", i, j), cur, node(i+1, j), 1))
			}
			c.MustAdd(circuit.NewCapacitor(fmt.Sprintf("C%dx%d", i, j), cur, "0", 1))
		}
	}
	// Diagonal staircase (0,0)→(k-1,k-1): alternate a right step and a
	// down step so every target lies on the source→output signal path.
	passives := make([]string, 0, 24)
	i, j := 0, 0
	for len(passives) < 24 && (i < k-1 || j < k-1) {
		if j < k-1 {
			passives = append(passives, fmt.Sprintf("Rh%dx%d", i, j))
			j++
		}
		if len(passives) < 24 && i < k-1 {
			passives = append(passives, fmt.Sprintf("Rv%dx%d", i, j))
			i++
		}
		if len(passives) < 24 {
			passives = append(passives, fmt.Sprintf("C%dx%d", i, j))
		}
	}
	return CUT{
		Circuit:  c,
		Source:   "Vin",
		Output:   node(k-1, k-1),
		Passives: passives,
		// The corner-to-corner transfer rolls off like a 2(k-1)-section
		// RC line; center searches inside the passband.
		Omega0:      1.0 / float64(2*(k-1)),
		Description: fmt.Sprintf("passive %d×%d RC mesh, %d unknowns (%d diagonal fault targets)", k, k, k*k+1, len(passives)),
	}, nil
}

// Scaling returns the parameterized scaling families at representative
// sizes, alongside All(): the CUT tier that exercises the sparse golden
// engine (see BENCH_sparse.json for the dense/sparse crossover these
// sizes straddle). Every entry is also reachable via ByName.
func Scaling() []CUT {
	out := make([]CUT, 0, 10)
	for _, n := range []int{16, 64, 128, 256} {
		cut, err := RCLadder(n)
		if err != nil {
			panic(err) // fixed n >= 1; cannot fail
		}
		out = append(out, cut)
	}
	for _, n := range []int{4, 16, 32} {
		cut, err := OpampCascade(n)
		if err != nil {
			panic(err) // fixed n >= 1; cannot fail
		}
		out = append(out, cut)
	}
	for _, k := range []int{8, 16, 32} {
		cut, err := RCGrid(k)
		if err != nil {
			panic(err) // fixed k >= 2; cannot fail
		}
		out = append(out, cut)
	}
	return out
}

// Families lists the parameterized CUT name patterns ByName recognizes,
// for CLI help and listings.
func Families() []string {
	return []string{"rc-ladder-<n>", "opamp-cascade-<n>", "rc-grid-<k>"}
}

// parameterized resolves a parameterized family name like "rc-ladder-128"
// or "opamp-cascade-16". The second return is false when the name does
// not belong to a family (the caller falls through to its own error);
// a family name with a bad size returns the constructor's error.
func parameterized(name string) (CUT, bool, error) {
	for _, fam := range []struct {
		prefix string
		make   func(int) (CUT, error)
	}{
		{"rc-ladder-", RCLadder},
		{"opamp-cascade-", OpampCascade},
		{"rc-grid-", RCGrid},
	} {
		if !strings.HasPrefix(name, fam.prefix) {
			continue
		}
		n, err := strconv.Atoi(name[len(fam.prefix):])
		if err != nil {
			return CUT{}, false, nil
		}
		cut, err := fam.make(n)
		if err != nil {
			return CUT{}, true, err
		}
		return cut, true, nil
	}
	return CUT{}, false, nil
}
