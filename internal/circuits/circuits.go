// Package circuits is the benchmark library of analog circuits under test
// (CUTs). Each constructor returns a fully wired circuit plus the
// metadata the diagnosis pipeline needs: the driving source, the output
// node, the list of passive components eligible for parametric faults,
// and the nominal characteristic frequency for choosing search bands.
//
// NFLowpass7 is the stand-in for the paper's CUT (see DESIGN.md for the
// substitution rationale); the others feed the generality experiment E9.
package circuits

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/opamp"
)

// CUT bundles a circuit under test with its measurement metadata.
type CUT struct {
	// Circuit is the golden (nominal) network.
	Circuit *circuit.Circuit
	// Source is the name of the driving voltage source.
	Source string
	// Output is the observed node.
	Output string
	// Passives lists the parametric-fault targets in schematic order.
	Passives []string
	// Omega0 is the nominal characteristic angular frequency in rad/s,
	// used to center frequency searches.
	Omega0 float64
	// Description is a one-line summary for reports.
	Description string
}

// Validate assembles the circuit once to catch wiring mistakes early and
// confirms every declared passive exists and is Valued.
func (c CUT) Validate() error {
	if _, err := c.Circuit.Assemble(); err != nil {
		return err
	}
	for _, p := range c.Passives {
		if _, err := c.Circuit.Value(p); err != nil {
			return fmt.Errorf("circuits: CUT %s: passive %q: %w", c.Circuit.Name(), p, err)
		}
	}
	if _, ok := c.Circuit.Element(c.Source); !ok {
		return fmt.Errorf("circuits: CUT %s: missing source %q", c.Circuit.Name(), c.Source)
	}
	if !c.Circuit.HasNode(c.Output) {
		return fmt.Errorf("circuits: CUT %s: missing output node %q", c.Circuit.Name(), c.Output)
	}
	return nil
}

// NFLowpass7 is the reproduction stand-in for the paper's CUT: a
// normalized negative-feedback low-pass filter with exactly seven passive
// components.
//
// Topology: an RC input section (R1, C1) drives the canonical
// multiple-negative-feedback (MFB) low-pass stage (R2, C2, R3, R4, C3)
// around a single ideal opamp:
//
//	in —R1— m —R2— a —R3— vg —(U1−)
//	          C1→gnd  C2→gnd  C3: vg—out
//	                  R4: a—out          U1 out = out
//
// Normalized values (all resistors 1 Ω) put the passband edge near
// ω ≈ 1 rad/s with a mildly peaked third-order roll-off. Every one of
// the seven passives enters H(s) through an independent dependence, so
// all seven single-fault trajectories are separable.
func NFLowpass7() CUT {
	c := circuit.New("nf-lowpass-7")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "m", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "m", "0", 1))
	c.MustAdd(circuit.NewResistor("R2", "m", "a", 1))
	c.MustAdd(circuit.NewCapacitor("C2", "a", "0", 2))
	c.MustAdd(circuit.NewResistor("R3", "a", "vg", 1))
	c.MustAdd(circuit.NewResistor("R4", "a", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C3", "vg", "out", 0.5))
	c.MustAdd(circuit.NewIdealOpAmp("U1", "0", "vg", "out"))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "out",
		Passives:    []string{"R1", "C1", "R2", "C2", "R3", "R4", "C3"},
		Omega0:      1,
		Description: "normalized 7-passive negative-feedback (MFB) low-pass, the paper-CUT stand-in",
	}
}

// NFLowpass7Macro is NFLowpass7 with the ideal opamp replaced by the
// FFM-style macromodel, enabling active-device (macromodel parameter)
// faults per the paper's fault model. Because the normalized filter works
// near ω = 1 rad/s, near-ideal parameters are used so the golden response
// matches NFLowpass7 closely.
func NFLowpass7Macro(p opamp.Params) (CUT, error) {
	c := circuit.New("nf-lowpass-7-macro")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "m", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "m", "0", 1))
	c.MustAdd(circuit.NewResistor("R2", "m", "a", 1))
	c.MustAdd(circuit.NewCapacitor("C2", "a", "0", 2))
	c.MustAdd(circuit.NewResistor("R3", "a", "vg", 1))
	c.MustAdd(circuit.NewResistor("R4", "a", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C3", "vg", "out", 0.5))
	if err := opamp.Expand(c, "U1", "0", "vg", "out", p); err != nil {
		return CUT{}, err
	}
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "out",
		Passives:    []string{"R1", "C1", "R2", "C2", "R3", "R4", "C3"},
		Omega0:      1,
		Description: "7-passive NF low-pass with FFM opamp macromodel",
	}, nil
}

// SallenKeyLP is a unity-gain Sallen–Key second-order low-pass,
// normalized to ω0 = 1 rad/s, Q ≈ 0.707 (Butterworth):
// R1 = R2 = 1 Ω, C1 = 1.414 F (to + input), C2 = 0.7071 F (to ground).
func SallenKeyLP() CUT {
	c := circuit.New("sallen-key-lp")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "x", 1))
	c.MustAdd(circuit.NewResistor("R2", "x", "p", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "x", "out", 1.4142))
	c.MustAdd(circuit.NewCapacitor("C2", "p", "0", 0.70711))
	// Unity-gain buffer: output fed back to the inverting input.
	c.MustAdd(circuit.NewIdealOpAmp("U1", "p", "out", "out"))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "out",
		Passives:    []string{"R1", "R2", "C1", "C2"},
		Omega0:      1,
		Description: "unity-gain Sallen–Key Butterworth low-pass (4 passives)",
	}
}

// MFBBandpass is a multiple-feedback bandpass, normalized to center
// ω0 ≈ 1 rad/s with Q ≈ 2: R1 = 1, R2 = 4 (feedback), R3 = 0.2,
// C1 = C2 = 1.
func MFBBandpass() CUT {
	c := circuit.New("mfb-bandpass")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "x", 1))
	c.MustAdd(circuit.NewResistor("R3", "x", "0", 0.2))
	c.MustAdd(circuit.NewCapacitor("C1", "x", "vg", 1))
	c.MustAdd(circuit.NewCapacitor("C2", "x", "out", 1))
	c.MustAdd(circuit.NewResistor("R2", "vg", "out", 4))
	c.MustAdd(circuit.NewIdealOpAmp("U1", "0", "vg", "out"))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "out",
		Passives:    []string{"R1", "R2", "R3", "C1", "C2"},
		Omega0:      1,
		Description: "multiple-feedback bandpass, Q ≈ 2 (5 passives)",
	}
}

// KHNLowpass is a Kerwin–Huelsman–Newcomb state-variable filter's
// low-pass output, normalized to ω0 = 1 rad/s, with 8 passives and 3
// opamps.
func KHNLowpass() CUT {
	c := circuit.New("khn-lowpass")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	// Summing amplifier U1: inverting input vg1 takes Vin via R1 and the
	// lowpass feedback via R2; non-inverting input pp takes the bandpass
	// feedback via R5 against R6 to ground (sets Q).
	c.MustAdd(circuit.NewResistor("R1", "in", "vg1", 1))
	c.MustAdd(circuit.NewResistor("R2", "lp", "vg1", 1))
	c.MustAdd(circuit.NewResistor("R3", "hp", "vg1", 1)) // feedback around U1
	c.MustAdd(circuit.NewResistor("R5", "bp", "pp", 1))
	c.MustAdd(circuit.NewResistor("R6", "pp", "0", 1))
	c.MustAdd(circuit.NewIdealOpAmp("U1", "pp", "vg1", "hp"))
	// Integrator U2: hp → bp.
	c.MustAdd(circuit.NewResistor("R4", "hp", "vg2", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "bp", "vg2", 1))
	c.MustAdd(circuit.NewIdealOpAmp("U2", "0", "vg2", "bp"))
	// Integrator U3: bp → lp.
	c.MustAdd(circuit.NewResistor("R7", "bp", "vg3", 1))
	c.MustAdd(circuit.NewCapacitor("C2", "lp", "vg3", 1))
	c.MustAdd(circuit.NewIdealOpAmp("U3", "0", "vg3", "lp"))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "lp",
		Passives:    []string{"R1", "R2", "R3", "R4", "R5", "R6", "R7", "C1", "C2"},
		Omega0:      1,
		Description: "KHN state-variable low-pass output (9 passives)",
	}
}

// TowThomasLP is the classic three-opamp two-integrator-loop biquad,
// normalized to ω0 = 1 rad/s, Q = 1, unity DC gain. Note the gain-ratio
// pair (R5, R6) of the inverter is mutually ambiguous by construction —
// included deliberately as a known-hard diagnosis case.
func TowThomasLP() CUT {
	c := circuit.New("tow-thomas-lp")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	// U1: lossy summing integrator (bandpass output).
	c.MustAdd(circuit.NewResistor("R1", "in", "vg1", 1))  // input
	c.MustAdd(circuit.NewResistor("RQ", "bp", "vg1", 1))  // damping (Q)
	c.MustAdd(circuit.NewCapacitor("C1", "bp", "vg1", 1)) // integrator
	c.MustAdd(circuit.NewResistor("R2", "inv", "vg1", 1)) // loop feedback
	c.MustAdd(circuit.NewIdealOpAmp("U1", "0", "vg1", "bp"))
	// U2: pure inverting integrator (lowpass output, inverted).
	c.MustAdd(circuit.NewResistor("R3", "bp", "vg2", 1))
	c.MustAdd(circuit.NewCapacitor("C2", "lp", "vg2", 1))
	c.MustAdd(circuit.NewIdealOpAmp("U2", "0", "vg2", "lp"))
	// U3: unity inverter closing the loop.
	c.MustAdd(circuit.NewResistor("R5", "lp", "vg3", 1))
	c.MustAdd(circuit.NewResistor("R6", "inv", "vg3", 1))
	c.MustAdd(circuit.NewIdealOpAmp("U3", "0", "vg3", "inv"))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "lp",
		Passives:    []string{"R1", "RQ", "C1", "R2", "R3", "C2", "R5", "R6"},
		Omega0:      1,
		Description: "Tow-Thomas two-integrator-loop biquad (8 passives, one ambiguous pair)",
	}
}

// TwinTNotch is a passive twin-T notch at ω0 = 1 rad/s buffered by an
// ideal opamp follower, with a source resistor.
func TwinTNotch() CUT {
	c := circuit.New("twin-t-notch")
	c.MustAdd(circuit.NewVSource("Vin", "src", "0", 1))
	c.MustAdd(circuit.NewResistor("Rs", "src", "in", 0.05))
	// High-pass T: C1 — C2 with R3 to ground at the junction.
	c.MustAdd(circuit.NewCapacitor("C1", "in", "tc", 1))
	c.MustAdd(circuit.NewCapacitor("C2", "tc", "out", 1))
	c.MustAdd(circuit.NewResistor("R3", "tc", "0", 0.5))
	// Low-pass T: R1 — R2 with C3 to ground at the junction.
	c.MustAdd(circuit.NewResistor("R1", "in", "tr", 1))
	c.MustAdd(circuit.NewResistor("R2", "tr", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C3", "tr", "0", 2))
	// Buffer to observe the notch without loading.
	c.MustAdd(circuit.NewIdealOpAmp("U1", "out", "buf", "buf"))
	c.MustAdd(circuit.NewResistor("RL", "buf", "0", 1))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "buf",
		Passives:    []string{"Rs", "C1", "C2", "R3", "R1", "R2", "C3", "RL"},
		Omega0:      1,
		Description: "buffered twin-T notch at ω0 = 1 rad/s (8 passives)",
	}
}

// RCLadder returns an n-section passive RC low-pass ladder
// (R = 1 Ω, C = 1 F per section), a pure-passive CUT with strongly
// overlapping component influences — a stress test for diagnosis.
func RCLadder(n int) (CUT, error) {
	if n < 1 {
		return CUT{}, fmt.Errorf("circuits: RCLadder needs n >= 1, got %d", n)
	}
	c := circuit.New(fmt.Sprintf("rc-ladder-%d", n))
	c.MustAdd(circuit.NewVSource("Vin", "n0", "0", 1))
	passives := make([]string, 0, 2*n)
	for i := 1; i <= n; i++ {
		rn := fmt.Sprintf("R%d", i)
		cn := fmt.Sprintf("C%d", i)
		prev := fmt.Sprintf("n%d", i-1)
		cur := fmt.Sprintf("n%d", i)
		c.MustAdd(circuit.NewResistor(rn, prev, cur, 1))
		c.MustAdd(circuit.NewCapacitor(cn, cur, "0", 1))
		passives = append(passives, rn, cn)
	}
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      fmt.Sprintf("n%d", n),
		Passives:    passives,
		Omega0:      1.0 / float64(n), // sections compound; band shrinks with n
		Description: fmt.Sprintf("passive %d-section RC ladder (%d passives)", n, 2*n),
	}, nil
}

// LCLadderLP is a doubly terminated third-order Butterworth LC ladder
// (Rs = RL = 1 Ω, L1 = L3 via the dual: C1 = 1 F, L2 = 2 H, C3 = 1 F),
// normalized to ω0 = 1 rad/s. A pure-passive CUT that exercises the
// inductor stamps; its insertion loss gives |H| → 0.5 in band.
func LCLadderLP() CUT {
	c := circuit.New("lc-ladder-lp")
	c.MustAdd(circuit.NewVSource("Vin", "src", "0", 1))
	c.MustAdd(circuit.NewResistor("Rs", "src", "a", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "a", "0", 1))
	c.MustAdd(circuit.NewInductor("L2", "a", "b", 2))
	c.MustAdd(circuit.NewCapacitor("C3", "b", "0", 1))
	c.MustAdd(circuit.NewResistor("RL", "b", "0", 1))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "b",
		Passives:    []string{"Rs", "C1", "L2", "C3", "RL"},
		Omega0:      1,
		Description: "doubly terminated 3rd-order Butterworth LC ladder (5 passives)",
	}
}

// RLCNotch is a passive series-resonator band-stop: the L1–C1 branch
// shorts the output node at ω0 = 1/sqrt(L1·C1) = 1 rad/s, giving an
// ideally infinite null. A small branch resistor Rq sets the notch depth
// and Q realistically.
func RLCNotch() CUT {
	c := circuit.New("rlc-notch")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("Rs", "in", "out", 1))
	c.MustAdd(circuit.NewInductor("L1", "out", "m", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "m", "q", 1))
	c.MustAdd(circuit.NewResistor("Rq", "q", "0", 0.05))
	c.MustAdd(circuit.NewResistor("RL", "out", "0", 10))
	return CUT{
		Circuit:     c,
		Source:      "Vin",
		Output:      "out",
		Passives:    []string{"Rs", "L1", "C1", "Rq", "RL"},
		Omega0:      1,
		Description: "passive series-resonator band-stop at ω0 = 1 rad/s (5 passives)",
	}
}

// All returns every fixed benchmark CUT (the parameterized RCLadder is
// instantiated at 3 sections).
func All() []CUT {
	ladder, err := RCLadder(3)
	if err != nil {
		panic(err) // n=3 is a compile-time constant; cannot fail
	}
	return []CUT{
		NFLowpass7(),
		SallenKeyLP(),
		MFBBandpass(),
		KHNLowpass(),
		TowThomasLP(),
		TwinTNotch(),
		LCLadderLP(),
		RLCNotch(),
		ladder,
	}
}

// ByName returns the CUT with the given circuit name. Beyond the fixed
// All() set it resolves the parameterized scaling families by suffix —
// e.g. "rc-ladder-128" or "opamp-cascade-16" (see Families).
func ByName(name string) (CUT, error) {
	for _, c := range All() {
		if c.Circuit.Name() == name {
			return c, nil
		}
	}
	if cut, ok, err := parameterized(name); ok {
		if err != nil {
			return CUT{}, err
		}
		return cut, nil
	}
	return CUT{}, fmt.Errorf("circuits: no benchmark named %q (fixed: %s; families: %s)",
		name, strings.Join(Names(), ", "), strings.Join(Families(), ", "))
}

// Names lists the available benchmark names.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Circuit.Name()
	}
	return out
}
