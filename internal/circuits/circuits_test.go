package circuits

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/analysis"
	"repro/internal/opamp"
)

func TestAllCUTsValidate(t *testing.T) {
	for _, cut := range All() {
		if err := cut.Validate(); err != nil {
			t.Errorf("%s: %v", cut.Circuit.Name(), err)
		}
	}
}

func TestAllCUTsSolvable(t *testing.T) {
	for _, cut := range All() {
		ac, err := analysis.NewAC(cut.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", cut.Circuit.Name(), err)
		}
		for _, w := range []float64{cut.Omega0 / 10, cut.Omega0, cut.Omega0 * 10} {
			if _, err := ac.Transfer(cut.Source, cut.Output, w); err != nil {
				t.Errorf("%s at ω=%g: %v", cut.Circuit.Name(), w, err)
			}
		}
	}
}

func TestNFLowpass7Shape(t *testing.T) {
	cut := NFLowpass7()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// DC gain: derived closed form -R4/(R1+R2) = -0.5 for unit values.
	h, err := ac.Transfer(cut.Source, cut.Output, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h+0.5) > 1e-3 {
		t.Fatalf("DC gain = %v, want -0.5", h)
	}
	// Low-pass: strongly attenuating two decades up.
	hHigh, err := ac.Transfer(cut.Source, cut.Output, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(hHigh) > 0.01*cmplx.Abs(h) {
		t.Fatalf("not low-pass: |H(100)| = %g vs DC %g", cmplx.Abs(hHigh), cmplx.Abs(h))
	}
	// Third-order: beyond the band the roll-off approaches
	// -60 dB/decade.
	h10, _ := ac.Transfer(cut.Source, cut.Output, 10)
	h100, _ := ac.Transfer(cut.Source, cut.Output, 100)
	decade := 20 * math.Log10(cmplx.Abs(h10)/cmplx.Abs(h100))
	if decade < 50 || decade > 70 {
		t.Fatalf("roll-off = %g dB/decade, want about 60", decade)
	}
	if len(cut.Passives) != 7 {
		t.Fatalf("paper CUT must have 7 passives, has %d", len(cut.Passives))
	}
}

func TestNFLowpass7EveryPassiveObservable(t *testing.T) {
	// A +40% deviation on any passive must move |H| at some in-band
	// frequency by more than 0.1% — otherwise that component would be
	// untestable and the CUT would not reproduce the paper's premise.
	cut := NFLowpass7()
	freqs := []float64{0.3, 1, 3}
	base := responses(t, cut, freqs)
	for _, p := range cut.Passives {
		faulty := cut
		faulty.Circuit = cut.Circuit.Clone()
		if err := faulty.Circuit.ScaleValue(p, 1.4); err != nil {
			t.Fatal(err)
		}
		got := responses(t, faulty, freqs)
		moved := 0.0
		for i := range base {
			moved = math.Max(moved, math.Abs(got[i]-base[i])/base[i])
		}
		if moved < 1e-3 {
			t.Errorf("passive %s at +40%% moved |H| by only %g", p, moved)
		}
	}
}

func responses(t *testing.T, cut CUT, freqs []float64) []float64 {
	t.Helper()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(freqs))
	for i, w := range freqs {
		h, err := ac.Transfer(cut.Source, cut.Output, w)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = cmplx.Abs(h)
	}
	return out
}

func TestNFLowpass7MacroMatchesIdeal(t *testing.T) {
	macro, err := NFLowpass7Macro(opamp.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	if err := macro.Validate(); err != nil {
		t.Fatal(err)
	}
	ideal := NFLowpass7()
	fi := []float64{0.1, 1, 5}
	ri := responses(t, ideal, fi)
	rm := responses(t, macro, fi)
	for i := range fi {
		if math.Abs(ri[i]-rm[i]) > 1e-3 {
			t.Errorf("ω=%g: ideal %g vs macro %g", fi[i], ri[i], rm[i])
		}
	}
}

func TestSallenKeyButterworth(t *testing.T) {
	cut := SallenKeyLP()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	dc, _ := ac.Transfer(cut.Source, cut.Output, 1e-4)
	if cmplx.Abs(dc-1) > 1e-3 {
		t.Fatalf("DC gain = %v, want 1", dc)
	}
	// Butterworth: -3 dB at ω0 = 1.
	h0, _ := ac.Transfer(cut.Source, cut.Output, 1)
	db := 20 * math.Log10(cmplx.Abs(h0))
	if math.Abs(db+3.01) > 0.1 {
		t.Fatalf("gain at ω0 = %g dB, want -3.01", db)
	}
	// No peaking anywhere (Q = 0.707).
	resp, err := ac.LogSweep(cut.Source, cut.Output, 0.01, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	peak, _ := resp.PeakMag()
	if peak > 1.001 {
		t.Fatalf("Butterworth response peaks at %g", peak)
	}
}

func TestMFBBandpassShape(t *testing.T) {
	cut := MFBBandpass()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ac.LogSweep(cut.Source, cut.Output, 0.01, 100, 201)
	if err != nil {
		t.Fatal(err)
	}
	peak, at := resp.PeakMag()
	if at < 0.5 || at > 2 {
		t.Fatalf("bandpass peak at ω=%g, want near 1", at)
	}
	lo, _ := ac.Transfer(cut.Source, cut.Output, 0.01)
	hi, _ := ac.Transfer(cut.Source, cut.Output, 100)
	if cmplx.Abs(lo) > peak/10 || cmplx.Abs(hi) > peak/10 {
		t.Fatalf("bandpass skirts too high: lo=%g hi=%g peak=%g", cmplx.Abs(lo), cmplx.Abs(hi), peak)
	}
}

func TestKHNLowpassClosedForm(t *testing.T) {
	// Derivation for equal unit components: H_lp(s) = -1/(s² + 1.5s + 1).
	cut := KHNLowpass()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.01, 0.5, 1, 2, 20} {
		h, err := ac.Transfer(cut.Source, cut.Output, w)
		if err != nil {
			t.Fatal(err)
		}
		s := complex(0, w)
		want := -1 / (s*s + 1.5*s + 1)
		if cmplx.Abs(h-want) > 1e-6 {
			t.Fatalf("ω=%g: H = %v, want %v", w, h, want)
		}
	}
}

func TestTowThomasClosedForm(t *testing.T) {
	// For unit components: H_lp(s) = 1/(s² + s + 1).
	cut := TowThomasLP()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.01, 1, 3, 30} {
		h, err := ac.Transfer(cut.Source, cut.Output, w)
		if err != nil {
			t.Fatal(err)
		}
		s := complex(0, w)
		want := 1 / (s*s + s + 1)
		if cmplx.Abs(h-want) > 1e-6 {
			t.Fatalf("ω=%g: H = %v, want %v", w, h, want)
		}
	}
}

func TestTwinTNotchDepth(t *testing.T) {
	cut := TwinTNotch()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	pass, _ := ac.Transfer(cut.Source, cut.Output, 0.01)
	notch, _ := ac.Transfer(cut.Source, cut.Output, 1)
	if cmplx.Abs(notch) > 0.05*cmplx.Abs(pass) {
		t.Fatalf("notch depth only %g vs passband %g", cmplx.Abs(notch), cmplx.Abs(pass))
	}
	// Recovery above the notch.
	hi, _ := ac.Transfer(cut.Source, cut.Output, 100)
	if cmplx.Abs(hi) < 0.5*cmplx.Abs(pass) {
		t.Fatalf("no recovery above notch: %g", cmplx.Abs(hi))
	}
}

func TestRCLadder(t *testing.T) {
	cut, err := RCLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Passives) != 8 {
		t.Fatalf("passives = %d, want 8", len(cut.Passives))
	}
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone decreasing magnitude.
	resp, err := ac.LogSweep(cut.Source, cut.Output, 0.001, 100, 60)
	if err != nil {
		t.Fatal(err)
	}
	mags := resp.Mags()
	for i := 1; i < len(mags); i++ {
		if mags[i] > mags[i-1]+1e-12 {
			t.Fatalf("RC ladder response not monotone at index %d", i)
		}
	}
	if _, err := RCLadder(0); err == nil {
		t.Fatal("RCLadder(0) accepted")
	}
}

func TestLCLadderButterworth(t *testing.T) {
	cut := LCLadderLP()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// Doubly terminated: in-band |H| = 0.5 (6 dB insertion split).
	dc, _ := ac.Transfer(cut.Source, cut.Output, 1e-4)
	if math.Abs(cmplx.Abs(dc)-0.5) > 1e-3 {
		t.Fatalf("in-band |H| = %g, want 0.5", cmplx.Abs(dc))
	}
	// Butterworth: |H(j1)| = 0.5/sqrt(2).
	h1, _ := ac.Transfer(cut.Source, cut.Output, 1)
	if math.Abs(cmplx.Abs(h1)-0.5/math.Sqrt2) > 1e-3 {
		t.Fatalf("|H(j1)| = %g, want %g", cmplx.Abs(h1), 0.5/math.Sqrt2)
	}
	// Third-order roll-off: ~ -60 dB/decade asymptotically.
	h10, _ := ac.Transfer(cut.Source, cut.Output, 10)
	h100, _ := ac.Transfer(cut.Source, cut.Output, 100)
	decade := 20 * math.Log10(cmplx.Abs(h10)/cmplx.Abs(h100))
	if decade < 55 || decade > 65 {
		t.Fatalf("roll-off %g dB/decade, want ~60", decade)
	}
}

func TestRLCNotchHasNull(t *testing.T) {
	cut := RLCNotch()
	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ac.LogSweep(cut.Source, cut.Output, 0.01, 100, 301)
	if err != nil {
		t.Fatal(err)
	}
	mags := resp.Mags()
	minMag, minW := mags[0], resp.Points[0].Omega
	maxMag := 0.0
	for i, m := range mags {
		if m < minMag {
			minMag, minW = m, resp.Points[i].Omega
		}
		if m > maxMag {
			maxMag = m
		}
	}
	if minMag > 0.2*maxMag {
		t.Fatalf("no pronounced null: min %g vs max %g", minMag, maxMag)
	}
	if minW < 0.8 || minW > 1.25 {
		t.Fatalf("null at ω=%g, want ~1", minW)
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no benchmarks")
	}
	for _, n := range names {
		cut, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if cut.Circuit.Name() != n {
			t.Fatalf("ByName(%q) returned %q", n, cut.Circuit.Name())
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

func TestCUTValidateCatchesErrors(t *testing.T) {
	cut := NFLowpass7()
	cut.Source = "nope"
	if err := cut.Validate(); err == nil {
		t.Fatal("bad source accepted")
	}
	cut = NFLowpass7()
	cut.Output = "ghost"
	if err := cut.Validate(); err == nil {
		t.Fatal("bad output accepted")
	}
	cut = NFLowpass7()
	cut.Passives = append(cut.Passives, "R99")
	if err := cut.Validate(); err == nil {
		t.Fatal("bad passive accepted")
	}
}
