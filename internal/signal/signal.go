// Package signal simulates the bench-measurement path the paper's method
// would use in production: synthesize the multitone test stimulus, apply
// the circuit's (simulated) response, digitize with additive noise and
// quantization, and recover per-tone amplitudes with the Goertzel
// algorithm. This closes the gap between the analytic fault dictionary
// (exact |H|) and what a tester would really observe, and powers the
// noise-robustness experiment E8.
package signal

import (
	"fmt"
	"math"
	"math/rand"
)

// Tone is one sinusoidal component of a test stimulus.
type Tone struct {
	// Omega is the angular frequency in rad/s.
	Omega float64
	// Amplitude is the peak amplitude.
	Amplitude float64
	// Phase is the initial phase in radians.
	Phase float64
}

// Multitone synthesizes the sum of tones sampled at rate fs (samples per
// second) for n samples.
func Multitone(tones []Tone, fs float64, n int) ([]float64, error) {
	if fs <= 0 {
		return nil, fmt.Errorf("signal: nonpositive sample rate %g", fs)
	}
	if n <= 0 {
		return nil, fmt.Errorf("signal: nonpositive sample count %d", n)
	}
	for _, t := range tones {
		if t.Omega <= 0 {
			return nil, fmt.Errorf("signal: nonpositive tone frequency %g", t.Omega)
		}
		if t.Omega >= math.Pi*fs {
			return nil, fmt.Errorf("signal: tone ω=%g aliases at fs=%g (Nyquist %g rad/s)", t.Omega, fs, math.Pi*fs)
		}
	}
	out := make([]float64, n)
	dt := 1 / fs
	for i := range out {
		t := float64(i) * dt
		var v float64
		for _, tone := range tones {
			v += tone.Amplitude * math.Cos(tone.Omega*t+tone.Phase)
		}
		out[i] = v
	}
	return out, nil
}

// Goertzel measures the amplitude and phase of the component at angular
// frequency omega in x sampled at fs. It evaluates one DFT bin at the
// exact (possibly non-integer-bin) frequency, which suits single-tone
// amplitude extraction better than a full FFT.
func Goertzel(x []float64, fs, omega float64) (amplitude, phase float64, err error) {
	if len(x) == 0 {
		return 0, 0, fmt.Errorf("signal: empty input")
	}
	if fs <= 0 || omega <= 0 {
		return 0, 0, fmt.Errorf("signal: bad fs=%g or ω=%g", fs, omega)
	}
	// Normalized angular step per sample.
	w := omega / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Complex bin value.
	re := s1 - s2*math.Cos(w)
	im := s2 * math.Sin(w)
	n := float64(len(x))
	amplitude = 2 * math.Hypot(re, im) / n
	phase = math.Atan2(im, re)
	return amplitude, phase, nil
}

// AddNoise returns x plus white Gaussian noise at the given SNR in dB,
// measured against x's own RMS power. The rng makes runs reproducible.
func AddNoise(x []float64, snrDb float64, rng *rand.Rand) ([]float64, error) {
	if rng == nil {
		return nil, fmt.Errorf("signal: nil rng")
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("signal: empty input")
	}
	var power float64
	for _, v := range x {
		power += v * v
	}
	power /= float64(len(x))
	sigma := math.Sqrt(power / math.Pow(10, snrDb/10))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + sigma*rng.NormFloat64()
	}
	return out, nil
}

// Quantize models an ADC: clip to ±fullScale and round to 2^bits levels.
func Quantize(x []float64, bits int, fullScale float64) ([]float64, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("signal: bits %d outside [1,32]", bits)
	}
	if fullScale <= 0 {
		return nil, fmt.Errorf("signal: nonpositive full scale %g", fullScale)
	}
	levels := math.Exp2(float64(bits)) - 1
	step := 2 * fullScale / levels
	out := make([]float64, len(x))
	for i, v := range x {
		c := math.Max(-fullScale, math.Min(fullScale, v))
		out[i] = math.Round((c+fullScale)/step)*step - fullScale
	}
	return out, nil
}

// CoherentOmega snaps an angular frequency to the nearest nonzero
// coherent-sampling bin for a capture of n samples at rate fs: the
// returned ω completes an integer number of cycles in the window, so the
// rectangular-window Goertzel bins become orthogonal and multitone
// leakage vanishes. This mirrors standard mixed-signal test practice.
func CoherentOmega(omega, fs float64, n int) (float64, error) {
	if omega <= 0 || fs <= 0 || n <= 0 {
		return 0, fmt.Errorf("signal: bad coherent snap ω=%g fs=%g n=%d", omega, fs, n)
	}
	window := float64(n) / fs
	k := math.Round(omega * window / (2 * math.Pi))
	if k < 1 {
		k = 1
	}
	snapped := 2 * math.Pi * k / window
	if snapped >= math.Pi*fs {
		return 0, fmt.Errorf("signal: ω=%g snaps beyond Nyquist at fs=%g", omega, fs)
	}
	return snapped, nil
}

// CoherentOmegas snaps a whole test vector, erroring if two frequencies
// collapse onto the same bin.
func CoherentOmegas(omegas []float64, fs float64, n int) ([]float64, error) {
	out := make([]float64, len(omegas))
	seen := make(map[float64]bool)
	for i, w := range omegas {
		s, err := CoherentOmega(w, fs, n)
		if err != nil {
			return nil, err
		}
		if seen[s] {
			return nil, fmt.Errorf("signal: frequencies %v collapse onto bin ω=%g", omegas, s)
		}
		seen[s] = true
		out[i] = s
	}
	return out, nil
}

// RMS returns the root-mean-square of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var p float64
	for _, v := range x {
		p += v * v
	}
	return math.Sqrt(p / float64(len(x)))
}

// MeasureConfig configures a simulated two-port measurement.
type MeasureConfig struct {
	// SampleRate in samples/s; must exceed every tone's Nyquist need.
	SampleRate float64
	// Samples per capture.
	Samples int
	// SNRdB of additive noise; +Inf (or NoNoise) disables it.
	SNRdB float64
	// ADCBits of quantization; 0 disables quantization.
	ADCBits int
	// FullScale of the ADC in volts.
	FullScale float64
}

// NoNoise disables additive noise in MeasureConfig.SNRdB.
var NoNoise = math.Inf(1)

// DefaultMeasureConfig gives a clean, fast capture for ω around 1 rad/s:
// 64 samples/s for 4096 samples (64 s of signal — long enough for good
// Goertzel resolution at the lowest paper-band tones).
func DefaultMeasureConfig() MeasureConfig {
	return MeasureConfig{SampleRate: 64, Samples: 4096, SNRdB: NoNoise, ADCBits: 0, FullScale: 4}
}

// MeasureTones simulates exciting a system with a multitone of unit
// amplitude per tone and measuring the per-tone output amplitudes, given
// the system's complex gain at each tone (from the AC analysis). It
// returns the measured amplitude at each tone frequency, including
// noise, quantization, and spectral-leakage effects.
func MeasureTones(gains []complex128, omegas []float64, cfg MeasureConfig, rng *rand.Rand) ([]float64, error) {
	if len(gains) != len(omegas) {
		return nil, fmt.Errorf("signal: %d gains for %d tones", len(gains), len(omegas))
	}
	tones := make([]Tone, len(omegas))
	for i, w := range omegas {
		mag := math.Hypot(real(gains[i]), imag(gains[i]))
		ph := math.Atan2(imag(gains[i]), real(gains[i]))
		tones[i] = Tone{Omega: w, Amplitude: mag, Phase: ph}
	}
	y, err := Multitone(tones, cfg.SampleRate, cfg.Samples)
	if err != nil {
		return nil, err
	}
	if !math.IsInf(cfg.SNRdB, 1) {
		y, err = AddNoise(y, cfg.SNRdB, rng)
		if err != nil {
			return nil, err
		}
	}
	if cfg.ADCBits > 0 {
		y, err = Quantize(y, cfg.ADCBits, cfg.FullScale)
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(omegas))
	for i, w := range omegas {
		amp, _, err := Goertzel(y, cfg.SampleRate, w)
		if err != nil {
			return nil, err
		}
		out[i] = amp
	}
	return out, nil
}
