package signal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMultitoneValidation(t *testing.T) {
	if _, err := Multitone(nil, 0, 10); err == nil {
		t.Fatal("zero fs accepted")
	}
	if _, err := Multitone(nil, 10, 0); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Multitone([]Tone{{Omega: -1, Amplitude: 1}}, 10, 10); err == nil {
		t.Fatal("negative tone accepted")
	}
	// Aliasing: ω beyond π·fs.
	if _, err := Multitone([]Tone{{Omega: 100, Amplitude: 1}}, 10, 10); err == nil {
		t.Fatal("aliasing tone accepted")
	}
}

func TestMultitoneValues(t *testing.T) {
	// Single cosine at ω=π/2·fs/... choose fs=4, ω=π/2 rad/s → period 4 s
	// → samples at t=0,0.25s... Use a simple directly computable case.
	x, err := Multitone([]Tone{{Omega: math.Pi, Amplitude: 2, Phase: 0}}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// x[i] = 2·cos(π·i/4).
	for i, v := range x {
		want := 2 * math.Cos(math.Pi*float64(i)/4)
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, v, want)
		}
	}
}

func TestGoertzelRecoverySingleTone(t *testing.T) {
	fs := 64.0
	n := 4096
	for _, tone := range []Tone{
		{Omega: 1, Amplitude: 0.5, Phase: 0.3},
		{Omega: 2.5, Amplitude: 2, Phase: -1},
		{Omega: 10, Amplitude: 0.01, Phase: 2},
	} {
		x, err := Multitone([]Tone{tone}, fs, n)
		if err != nil {
			t.Fatal(err)
		}
		amp, _, err := Goertzel(x, fs, tone.Omega)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(amp-tone.Amplitude) > 0.02*tone.Amplitude+1e-6 {
			t.Fatalf("ω=%g: amp = %g, want %g", tone.Omega, amp, tone.Amplitude)
		}
	}
}

func TestGoertzelSeparatesTones(t *testing.T) {
	fs := 64.0
	n := 8192
	tones := []Tone{
		{Omega: 0.5, Amplitude: 1},
		{Omega: 2, Amplitude: 0.3},
		{Omega: 8, Amplitude: 0.05},
	}
	x, err := Multitone(tones, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, tone := range tones {
		amp, _, err := Goertzel(x, fs, tone.Omega)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(amp-tone.Amplitude) > 0.05*tone.Amplitude+5e-3 {
			t.Fatalf("ω=%g: amp = %g, want %g", tone.Omega, amp, tone.Amplitude)
		}
	}
}

func TestGoertzelValidation(t *testing.T) {
	if _, _, err := Goertzel(nil, 10, 1); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := Goertzel([]float64{1}, 0, 1); err == nil {
		t.Fatal("zero fs accepted")
	}
	if _, _, err := Goertzel([]float64{1}, 10, -1); err == nil {
		t.Fatal("negative ω accepted")
	}
}

func TestAddNoiseSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := Multitone([]Tone{{Omega: 1, Amplitude: 1}}, 64, 16384)
	y, err := AddNoise(x, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Noise power should be ~1% of signal power (20 dB down).
	var np float64
	for i := range x {
		d := y[i] - x[i]
		np += d * d
	}
	np /= float64(len(x))
	sp := RMS(x) * RMS(x)
	gotSNR := 10 * math.Log10(sp/np)
	if math.Abs(gotSNR-20) > 1 {
		t.Fatalf("achieved SNR = %g dB, want 20", gotSNR)
	}
	if _, err := AddNoise(x, 20, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := AddNoise(nil, 20, rng); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestQuantize(t *testing.T) {
	x := []float64{-2, -0.5, 0, 0.5, 2}
	q, err := Quantize(x, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Clipping.
	if q[0] != -1 || q[4] != 1 {
		t.Fatalf("clipping failed: %v", q)
	}
	// Quantization error bounded by half a step.
	step := 2.0 / (math.Exp2(8) - 1)
	for i := 1; i < 4; i++ {
		if math.Abs(q[i]-x[i]) > step/2+1e-12 {
			t.Fatalf("q[%d] = %g vs %g exceeds half step", i, q[i], x[i])
		}
	}
	if _, err := Quantize(x, 0, 1); err == nil {
		t.Fatal("0 bits accepted")
	}
	if _, err := Quantize(x, 8, 0); err == nil {
		t.Fatal("0 full scale accepted")
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Fatal("empty RMS")
	}
	if got := RMS([]float64{3, -3, 3, -3}); got != 3 {
		t.Fatalf("RMS = %g, want 3", got)
	}
}

func TestMeasureTonesCleanMatchesGains(t *testing.T) {
	cfg := DefaultMeasureConfig()
	gains := []complex128{complex(0.5, 0), complex(0, -0.25)}
	omegas := []float64{1, 3}
	got, err := MeasureTones(gains, omegas, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.25}
	for i := range want {
		// 5% budget: non-bin-centered tones leak into each other's
		// Goertzel bins under the rectangular window.
		if math.Abs(got[i]-want[i]) > 0.05*want[i]+1e-4 {
			t.Fatalf("tone %d: measured %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := MeasureTones(gains, omegas[:1], cfg, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestMeasureTonesNoiseDegradesGracefully(t *testing.T) {
	cfg := DefaultMeasureConfig()
	gains := []complex128{complex(0.5, 0)}
	omegas := []float64{1}
	clean, err := MeasureTones(gains, omegas, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SNRdB = 40
	noisy, err := MeasureTones(gains, omegas, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// 40 dB SNR: the Goertzel bin integrates noise down; error stays
	// small but nonzero.
	if math.Abs(noisy[0]-clean[0]) > 0.05 {
		t.Fatalf("noisy measurement %g vs clean %g", noisy[0], clean[0])
	}
	cfg.SNRdB = NoNoise
	cfg.ADCBits = 12
	quant, err := MeasureTones(gains, omegas, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(quant[0]-clean[0]) > 0.01 {
		t.Fatalf("quantized measurement %g vs clean %g", quant[0], clean[0])
	}
}

func TestCoherentOmega(t *testing.T) {
	fs, n := 64.0, 4096
	window := float64(n) / fs // 64 s → bin spacing 2π/64
	snapped, err := CoherentOmega(1.0, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	// Integer cycles in the window.
	cycles := snapped * window / (2 * math.Pi)
	if math.Abs(cycles-math.Round(cycles)) > 1e-9 {
		t.Fatalf("snapped ω=%g gives %g cycles", snapped, cycles)
	}
	if math.Abs(snapped-1.0) > 2*math.Pi/window {
		t.Fatalf("snap moved too far: %g", snapped)
	}
	// Tiny frequencies round up to the first bin, never zero.
	lo, err := CoherentOmega(1e-9, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= 0 {
		t.Fatalf("snapped to %g", lo)
	}
	if _, err := CoherentOmega(-1, fs, n); err == nil {
		t.Fatal("negative ω accepted")
	}
	if _, err := CoherentOmega(fs*4, fs, n); err == nil {
		t.Fatal("beyond-Nyquist snap accepted")
	}
}

func TestCoherentOmegasCollision(t *testing.T) {
	fs, n := 64.0, 4096
	// Two frequencies inside the same bin collide.
	if _, err := CoherentOmegas([]float64{1.0, 1.0000001}, fs, n); err == nil {
		t.Fatal("bin collision accepted")
	}
	out, err := CoherentOmegas([]float64{0.5, 5}, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] == out[1] {
		t.Fatalf("snapped = %v", out)
	}
}

func TestCoherentEliminatesLeakage(t *testing.T) {
	// With coherent tones, Goertzel recovers amplitudes essentially
	// exactly despite a second tone being present.
	fs, n := 64.0, 4096
	ws, err := CoherentOmegas([]float64{0.6, 4.5}, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Multitone([]Tone{
		{Omega: ws[0], Amplitude: 1},
		{Omega: ws[1], Amplitude: 0.01},
	}, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	amp, _, err := Goertzel(x, fs, ws[1])
	if err != nil {
		t.Fatal(err)
	}
	// The strong tone is 100× larger; without coherence its leakage
	// would bury the weak tone's 0.01 amplitude.
	if math.Abs(amp-0.01) > 1e-4 {
		t.Fatalf("coherent weak-tone amplitude = %g, want 0.01", amp)
	}
}

// Property: Goertzel amplitude is scale-linear.
func TestQuickGoertzelLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		amp := 0.1 + rng.Float64()*3
		omega := 0.5 + rng.Float64()*8
		x, err := Multitone([]Tone{{Omega: omega, Amplitude: amp}}, 64, 2048)
		if err != nil {
			return false
		}
		a1, _, err := Goertzel(x, 64, omega)
		if err != nil {
			return false
		}
		scaled := make([]float64, len(x))
		for i, v := range x {
			scaled[i] = 2 * v
		}
		a2, _, err := Goertzel(scaled, 64, omega)
		if err != nil {
			return false
		}
		return math.Abs(a2-2*a1) < 0.01*a1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
