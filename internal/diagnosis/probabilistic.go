package diagnosis

import (
	"fmt"

	"repro/internal/geometry"
	"repro/internal/rerr"
)

// ProbCandidate is one ranked hypothesis from a probabilistic
// (signature-cloud) diagnosis: a component set with the fault set that
// maximizes the likelihood within it, its log-likelihood, and its
// posterior probability under equal priors.
type ProbCandidate struct {
	// Key identifies the component set ("R3", "C1+R3", "golden").
	Key string `json:"key"`
	// Components are the faulted component names (nil for golden).
	Components []string `json:"components,omitempty"`
	// ID is the most likely fault set of the component set, e.g.
	// "R3@+25%" or "C1@-20%+R3@+30%".
	ID string `json:"id"`
	// Deviations are ID's per-component deviations, aligned with
	// Components.
	Deviations []float64 `json:"deviations,omitempty"`
	// LogLikelihood is ID's Gaussian log-likelihood of the observed
	// point (cloud variance + measurement noise).
	LogLikelihood float64 `json:"log_likelihood"`
	// Probability is the posterior probability of the component set:
	// the softmax of the log-likelihoods over every cloud, summed over
	// the set's deviations. Probabilities over all candidates sum to 1.
	Probability float64 `json:"probability"`
}

// ProbResult is a full probabilistic diagnosis: every component set
// ranked by posterior probability, the confidence in the winner, and
// the precomputed ambiguity group the winning fault set belongs to.
type ProbResult struct {
	// Candidates are ranked by descending posterior probability
	// (log-likelihood breaks ties).
	Candidates []ProbCandidate `json:"candidates"`
	// Confidence is the winner's posterior probability — 1/len(clouds)
	// means "no idea", near 1 means the clouds separate cleanly at this
	// point.
	Confidence float64 `json:"confidence"`
	// AmbiguityGroup lists the fault-set IDs whose signature clouds
	// overlap the winner's beyond the build-time threshold (including
	// the winner itself); empty when the winner's cloud is isolated.
	AmbiguityGroup []string `json:"ambiguity_group,omitempty"`
	// Point is the observed fault-space point that was scored.
	Point geometry.VecN `json:"point"`
}

// Best returns the top-ranked candidate (the zero value if the result
// is empty).
func (r *ProbResult) Best() ProbCandidate {
	if len(r.Candidates) == 0 {
		return ProbCandidate{}
	}
	return r.Candidates[0]
}

// CloudModel scores observed fault-space points against a set of
// per-fault signature distributions. The concrete implementation lives
// in internal/probdiag (built from Monte-Carlo tolerance sampling);
// diagnosis only needs the scoring contract, which keeps the dependency
// arrow pointing from probdiag to diagnosis.
type CloudModel interface {
	// Dim returns the signature dimensionality (frequency count).
	Dim() int
	// Score ranks every cloud against the point and assembles the
	// probabilistic result.
	Score(point []float64) (*ProbResult, error)
}

// DiagnoseProbabilistic scores an observed point against a tolerance
// cloud model instead of the nearest-signature trajectories. The model
// must share the diagnoser's frequency grid (dimensionalities are
// checked); the point-signature Diagnose path is untouched.
func (d *Diagnoser) DiagnoseProbabilistic(model CloudModel, point geometry.VecN) (*ProbResult, error) {
	if model == nil {
		return nil, fmt.Errorf("%w: diagnosis: nil cloud model", rerr.ErrBadConfig)
	}
	if len(point) != len(d.m.Omegas) {
		return nil, fmt.Errorf("%w: diagnosis: point has %d dims, map has %d frequencies",
			rerr.ErrBadConfig, len(point), len(d.m.Omegas))
	}
	if model.Dim() != len(d.m.Omegas) {
		return nil, fmt.Errorf("%w: diagnosis: cloud model has %d dims, map has %d frequencies",
			rerr.ErrBadConfig, model.Dim(), len(d.m.Omegas))
	}
	return model.Score(point)
}
