package diagnosis

import (
	"fmt"

	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
)

// CatastrophicPoint is the signature of one hard (open/short) fault in
// the test-vector space. Unlike parametric faults, a catastrophic fault
// is a single point, not a trajectory: there is no deviation to sweep.
type CatastrophicPoint struct {
	// ID is the fault identifier, e.g. "R3#open".
	ID string
	// Point is the signature (response difference from golden).
	Point geometry.VecN
}

// CatastrophicPoints computes the signature of every given hard fault at
// the test vector. Faults whose circuits cannot be solved (an open that
// floats a node beyond numerical reach) are skipped with their IDs
// returned in the second value — the caller decides whether that is
// acceptable.
func CatastrophicPoints(d *dictionary.Dictionary, targets []fault.Catastrophic, omegas []float64) ([]CatastrophicPoint, []string, error) {
	if len(omegas) == 0 {
		return nil, nil, fmt.Errorf("diagnosis: empty test vector")
	}
	var out []CatastrophicPoint
	var skipped []string
	for _, cat := range targets {
		circ, err := cat.Apply(d.Golden())
		if err != nil {
			return nil, nil, err
		}
		sig, err := d.CircuitSignature(circ, omegas)
		if err != nil {
			skipped = append(skipped, cat.ID())
			continue
		}
		out = append(out, CatastrophicPoint{ID: cat.ID(), Point: geometry.VecN(sig)})
	}
	return out, skipped, nil
}

// AllCatastrophic enumerates open and short faults for every component
// of the universe.
func AllCatastrophic(u *fault.Universe) []fault.Catastrophic {
	out := make([]fault.Catastrophic, 0, 2*len(u.Components))
	for _, c := range u.Components {
		out = append(out, fault.Catastrophic{Component: c, Open: true})
		out = append(out, fault.Catastrophic{Component: c, Open: false})
	}
	return out
}

// DiagnoseWithCatastrophic ranks parametric trajectories and
// catastrophic points together: hard-fault candidates appear with their
// ID as the Component and a ±1 deviation marker (+1 open, −1 short).
// This extends the paper's dictionary from a parametric-only universe to
// the full catalogue a production test program carries.
func (d *Diagnoser) DiagnoseWithCatastrophic(point geometry.VecN, cats []CatastrophicPoint) (*Result, error) {
	res, err := d.Diagnose(point)
	if err != nil {
		return nil, err
	}
	for _, cat := range cats {
		if len(cat.Point) != len(point) {
			return nil, fmt.Errorf("diagnosis: catastrophic point %s has dimension %d, want %d", cat.ID, len(cat.Point), len(point))
		}
		dev := 1.0
		if len(cat.ID) > 6 && cat.ID[len(cat.ID)-5:] == "short" {
			dev = -1
		}
		res.Candidates = append(res.Candidates, Candidate{
			Component: cat.ID,
			Distance:  geometry.DistN(point, cat.Point),
			Deviation: dev,
		})
	}
	// Re-sort with the extended candidate set (plain distance; hard
	// faults have no perpendicular evidence).
	sortCandidates(res.Candidates)
	return res, nil
}

func sortCandidates(cands []Candidate) {
	// Insertion sort: candidate lists are small and mostly sorted.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].Distance < cands[j-1].Distance; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}
