package diagnosis

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/geometry"
)

func TestRejectedEmptyResult(t *testing.T) {
	empty := &Result{}
	if !empty.Rejected(1, 0.05) {
		t.Fatal("empty result not rejected")
	}
}

func TestRejectedDegenerateParams(t *testing.T) {
	r := &Result{Candidates: []Candidate{{Component: "R1", Distance: 10}}}
	if r.Rejected(0, 0.05) || r.Rejected(1, 0) {
		t.Fatal("degenerate extent/ratio should not reject")
	}
}

func TestSingleFaultsNotRejected(t *testing.T) {
	// Genuine single faults (even off-grid) must survive a reasonable
	// rejection threshold.
	d, dg := setup(t, []float64{0.5, 2})
	ext := dg.Extent()
	if ext <= 0 {
		t.Fatalf("extent = %g", ext)
	}
	trials := HoldOutTrials(d.Universe(), DefaultHoldOutDeviations())
	rejected := 0
	for _, f := range trials {
		res, err := dg.DiagnoseFault(d, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected(ext, 0.05) {
			rejected++
		}
	}
	if frac := float64(rejected) / float64(len(trials)); frac > 0.1 {
		t.Fatalf("%.0f%% of genuine single faults rejected", frac*100)
	}
}

func TestDoubleFaultsMostlyRejected(t *testing.T) {
	// Points produced by two simultaneous large faults generally do not
	// lie on any single-fault trajectory; the rejection test should fire
	// for a solid majority of them.
	d, dg := setup(t, []float64{0.5, 2})
	ext := dg.Extent()
	rng := rand.New(rand.NewSource(9))
	rejected, total := 0, 0
	for trial := 0; trial < 40; trial++ {
		m, err := fault.RandomMulti(d.Universe(), 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Only large double faults are reliably off-manifold; small ones
		// are legitimately close to single-fault behaviour.
		big := true
		for _, f := range m {
			if f.Deviation < 0.3 && f.Deviation > -0.3 {
				big = false
			}
		}
		if !big {
			continue
		}
		faulty, err := m.Apply(d.Golden())
		if err != nil {
			t.Fatal(err)
		}
		sig, err := d.CircuitSignature(faulty, dg.Map().Omegas)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dg.Diagnose(geometry.VecN(sig))
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Rejected(ext, 0.05) {
			rejected++
		}
	}
	if total < 5 {
		t.Fatalf("only %d large double faults sampled", total)
	}
	if frac := float64(rejected) / float64(total); frac < 0.5 {
		t.Fatalf("only %.0f%% of large double faults rejected", frac*100)
	}
}

func TestCircuitSignatureMatchesFaultSignature(t *testing.T) {
	// For a single fault, CircuitSignature(faulty circuit) must equal
	// Signature(fault).
	d, dg := setup(t, []float64{0.5, 2})
	f := fault.Fault{Component: "R2", Deviation: 0.25}
	direct, err := d.Signature(f, dg.Map().Omegas)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := f.Apply(d.Golden())
	if err != nil {
		t.Fatal(err)
	}
	viaCircuit, err := d.CircuitSignature(faulty, dg.Map().Omegas)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if diff := direct[i] - viaCircuit[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("signatures differ at %d: %g vs %g", i, direct[i], viaCircuit[i])
		}
	}
	if _, err := d.CircuitSignature(faulty, nil); err == nil {
		t.Fatal("empty test vector accepted")
	}
}

func TestToleranceBackgroundDiagnosis(t *testing.T) {
	// With every component inside a 1% manufacturing tolerance AND one
	// true +30% fault, diagnosis should still usually name the fault.
	d, dg := setup(t, []float64{0.5, 2})
	rng := rand.New(rand.NewSource(12))
	tol := fault.Tolerance{Sigma: 0.01}
	correct, total := 0, 0
	for _, comp := range d.Universe().Components {
		for trial := 0; trial < 3; trial++ {
			board, err := tol.Perturb(d.Golden(), rng, comp)
			if err != nil {
				t.Fatal(err)
			}
			if err := board.ScaleValue(comp, 1.3); err != nil {
				t.Fatal(err)
			}
			sig, err := d.CircuitSignature(board, dg.Map().Omegas)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dg.Diagnose(geometry.VecN(sig))
			if err != nil {
				t.Fatal(err)
			}
			total++
			if res.Best().Component == comp {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Fatalf("tolerance-background accuracy = %.2f", acc)
	}
}
