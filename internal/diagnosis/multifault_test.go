package diagnosis

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/trajectory"
)

// doubleFixture builds the paper CUT's double-fault diagnosis stage over
// a 4-frequency test vector (pair families separate far better in R⁴
// than in the paper's R²).
func doubleFixture(t *testing.T) (*dictionary.Dictionary, *fault.Universe, []fault.Multi, *Diagnoser, *Diagnoser) {
	t.Helper()
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := u.Pairs(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	omegas := []float64{0.2, 0.56, 4.55, 12}
	pm, err := trajectory.BuildPairs(nil, d, omegas, pairs)
	if err != nil {
		t.Fatal(err)
	}
	pairDg, err := New(pm)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := trajectory.Build(nil, d, omegas)
	if err != nil {
		t.Fatal(err)
	}
	singleDg, err := New(sm)
	if err != nil {
		t.Fatal(err)
	}
	return d, u, pairs, pairDg, singleDg
}

// TestDoubleFaultTopOneAccuracy is the acceptance pin: a double-fault
// trajectory map diagnoses injected double faults by name, with top-1
// accuracy reported by EvaluateSets.
func TestDoubleFaultTopOneAccuracy(t *testing.T) {
	d, _, pairs, pairDg, _ := doubleFixture(t)
	var trials []fault.Set
	for i := 0; i < len(pairs); i += 7 {
		trials = append(trials, pairs[i])
	}
	ev, err := pairDg.EvaluateSets(nil, d, trials)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() < 0.9 {
		t.Fatalf("on-grid double-fault top-1 accuracy %.3f, want >= 0.9 (n=%d)", ev.Accuracy(), ev.Total)
	}
	// Correct trials recover the injected deviations (on-grid: exactly).
	if ev.MeanDevError > 0.02 {
		t.Fatalf("mean deviation error %.3f on on-grid trials", ev.MeanDevError)
	}
}

// TestDoubleFaultCandidateNaming: a named double-fault candidate carries
// the component set, per-part deviation estimates, and a stable Key.
func TestDoubleFaultCandidateNaming(t *testing.T) {
	d, _, _, pairDg, _ := doubleFixture(t)
	inj, err := fault.NewMulti(
		fault.Fault{Component: "R1", Deviation: 0.3},
		fault.Fault{Component: "C2", Deviation: -0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pairDg.DiagnoseSet(d, inj)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if !best.IsMulti() {
		t.Fatalf("best candidate %q is not multi", best.Component)
	}
	if best.Key() != SetKey(inj) {
		t.Fatalf("best key %q, want %q (full ranking:\n%s)", best.Key(), SetKey(inj), res)
	}
	if len(best.Components) != 2 || len(best.Deviations) != 2 {
		t.Fatalf("candidate parts: components %v deviations %v", best.Components, best.Deviations)
	}
	for i, comp := range best.Components {
		var want float64
		for _, p := range inj {
			if p.Component == comp {
				want = p.Deviation
			}
		}
		if got := best.Deviations[i]; got < want-0.05 || got > want+0.05 {
			t.Fatalf("part %s estimated %+.2f, injected %+.2f", comp, got, want)
		}
	}
	// Ranked candidates are deduplicated per component-set key.
	seen := make(map[string]bool)
	for _, c := range res.Candidates {
		if seen[c.Key()] {
			t.Fatalf("duplicate key %q in ranking", c.Key())
		}
		seen[c.Key()] = true
	}
}

// TestDoubleFaultRejectionSemantics: against a single-fault map, double
// faults land far from every trajectory and many are rejected; against
// the pair map the same faults are named, not rejected — "rejected" now
// means "not in the modeled universe".
func TestDoubleFaultRejectionSemantics(t *testing.T) {
	d, _, pairs, pairDg, singleDg := doubleFixture(t)
	var trials []fault.Set
	for i := 0; i < len(pairs); i += 7 {
		trials = append(trials, pairs[i])
	}
	const ratio = 0.02
	rejSingle, rejPair := 0, 0
	for _, s := range trials {
		r1, err := singleDg.DiagnoseSet(d, s)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Rejected(singleDg.Extent(), ratio) {
			rejSingle++
		}
		r2, err := pairDg.DiagnoseSet(d, s)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Rejected(pairDg.Extent(), ratio) {
			rejPair++
		}
	}
	if rejPair != 0 {
		t.Fatalf("pair map rejected %d/%d modeled double faults", rejPair, len(trials))
	}
	if rejSingle < len(trials)/4 {
		t.Fatalf("single map rejected only %d/%d double faults; rejection lost its meaning", rejSingle, len(trials))
	}
}

// TestSinglesStillResolveOnPairMap: the pair families do not break
// single-fault naming — hold-out singles stay accurate on the extended
// map, and EvaluateSets agrees with the single-fault keys.
func TestSinglesStillResolveOnPairMap(t *testing.T) {
	d, u, _, pairDg, singleDg := doubleFixture(t)
	var singles []fault.Set
	for _, c := range u.Components {
		for _, dv := range []float64{-0.25, 0.25} {
			singles = append(singles, fault.Fault{Component: c, Deviation: dv})
		}
	}
	evPair, err := pairDg.EvaluateSets(nil, d, singles)
	if err != nil {
		t.Fatal(err)
	}
	if evPair.TopTwoAccuracy() < 0.9 {
		t.Fatalf("singles on pair map: top-2 %.3f, want >= 0.9", evPair.TopTwoAccuracy())
	}
	evSingle, err := singleDg.EvaluateSets(nil, d, singles)
	if err != nil {
		t.Fatal(err)
	}
	if evSingle.Accuracy() != 1 {
		t.Fatalf("singles on single map: top-1 %.3f, want 1", evSingle.Accuracy())
	}
}

// TestEvaluateSetsMatchesEvaluateOnSingles: over single-fault trials on
// a single-fault map the two evaluators agree on every aggregate.
func TestEvaluateSetsMatchesEvaluateOnSingles(t *testing.T) {
	d, u, _, _, singleDg := doubleFixture(t)
	faults := HoldOutTrials(u, []float64{-0.15, 0.25})
	sets := make([]fault.Set, len(faults))
	for i, f := range faults {
		sets[i] = f
	}
	evA, err := singleDg.Evaluate(nil, d, faults)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := singleDg.EvaluateSets(nil, d, sets)
	if err != nil {
		t.Fatal(err)
	}
	if evA.Total != evB.Total || evA.Correct != evB.Correct || evA.TopTwo != evB.TopTwo || evA.MeanDevError != evB.MeanDevError {
		t.Fatalf("Evaluate %+v vs EvaluateSets %+v", evA, evB)
	}
}
