package diagnosis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
	"repro/internal/trajectory"
)

func setup(t *testing.T, omegas []float64) (*dictionary.Dictionary, *Diagnoser) {
	t.Helper()
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trajectory.Build(nil, d, omegas)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return d, dg
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil map accepted")
	}
	if _, err := New(&trajectory.Map{}); err == nil {
		t.Fatal("empty map accepted")
	}
}

func TestDiagnoseDimensionMismatch(t *testing.T) {
	_, dg := setup(t, []float64{0.5, 2})
	if _, err := dg.Diagnose(geometry.VecN{1}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
}

func TestDiagnoseGridFaultExact(t *testing.T) {
	// A fault that IS a dictionary point must be diagnosed with its
	// component at (near) zero distance and the right deviation.
	d, dg := setup(t, []float64{0.5, 2})
	f := fault.Fault{Component: "R2", Deviation: 0.3}
	res, err := dg.DiagnoseFault(d, f)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best.Component != "R2" {
		t.Fatalf("diagnosed %s, want R2\n%s", best.Component, res)
	}
	if best.Distance > 1e-9 {
		t.Fatalf("grid fault distance = %g, want ~0", best.Distance)
	}
	if math.Abs(best.Deviation-0.3) > 0.05 {
		t.Fatalf("estimated deviation %+.2f, want +0.30", best.Deviation)
	}
}

func TestDiagnoseOffGridFault(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	f := fault.Fault{Component: "C1", Deviation: 0.25}
	res, err := dg.DiagnoseFault(d, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Component != "C1" {
		t.Fatalf("diagnosed %s, want C1\n%s", res.Best().Component, res)
	}
	if math.Abs(res.Best().Deviation-0.25) > 0.1 {
		t.Fatalf("estimated deviation %+.2f, want about +0.25", res.Best().Deviation)
	}
}

func TestCandidatesSortedAndComplete(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	res, err := dg.DiagnoseFault(d, fault.Fault{Component: "R1", Deviation: -0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 7 {
		t.Fatalf("candidates = %d, want 7", len(res.Candidates))
	}
	for i := 1; i < len(res.Candidates); i++ {
		a, b := res.Candidates[i-1], res.Candidates[i]
		if a.Distance > b.Distance*1.02 && !a.Perpendicular {
			t.Fatalf("ranking not sorted sensibly at %d:\n%s", i, res)
		}
	}
}

func TestAmbiguitySet(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	res, err := dg.DiagnoseFault(d, fault.Fault{Component: "R3", Deviation: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	all := res.AmbiguitySet(math.Inf(1))
	if len(all) != len(res.Candidates) {
		t.Fatalf("infinite ratio returned %d of %d", len(all), len(res.Candidates))
	}
	tight := res.AmbiguitySet(1.0)
	if len(tight) < 1 {
		t.Fatal("ratio 1 must include the best candidate")
	}
	// Degenerate zero-distance case: grid fault.
	resGrid, _ := dg.DiagnoseFault(d, fault.Fault{Component: "R3", Deviation: 0.3})
	if z := resGrid.AmbiguitySet(2); len(z) < 1 {
		t.Fatal("zero-distance ambiguity set empty")
	}
	empty := &Result{}
	if empty.AmbiguitySet(2) != nil {
		t.Fatal("empty result ambiguity set should be nil")
	}
	if empty.Best().Component != "" {
		t.Fatal("empty result Best should be zero")
	}
}

func TestEvaluateAllComponentsHoldOut(t *testing.T) {
	// The headline reproduction: with a good 2-frequency test vector,
	// hold-out faults on all 7 components should mostly diagnose
	// correctly.
	d, dg := setup(t, []float64{0.5, 2})
	trials := HoldOutTrials(d.Universe(), DefaultHoldOutDeviations())
	if len(trials) != 7*6 {
		t.Fatalf("trials = %d, want 42", len(trials))
	}
	ev, err := dg.Evaluate(nil, d, trials)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total != 42 {
		t.Fatalf("total = %d", ev.Total)
	}
	if ev.Accuracy() < 0.7 {
		t.Fatalf("hold-out accuracy = %.2f, want >= 0.7\n%s", ev.Accuracy(), ev.ConfusionTable())
	}
	if ev.TopTwoAccuracy() < ev.Accuracy() {
		t.Fatal("top-two accuracy below top-one")
	}
	if ev.MeanDevError > 0.15 {
		t.Fatalf("mean deviation error = %.3f", ev.MeanDevError)
	}
	for comp, cs := range ev.PerComponent {
		if cs.Total != 6 {
			t.Fatalf("%s: %d trials", comp, cs.Total)
		}
	}
}

func TestEvaluateEmptyTrials(t *testing.T) {
	_, dg := setup(t, []float64{0.5, 2})
	d, _ := setup(t, []float64{0.5, 2})
	_ = d
	dict, _ := setup(t, []float64{0.5, 2})
	_ = dict
	if _, err := dg.Evaluate(nil, nil, nil); err == nil {
		t.Fatal("empty trials accepted")
	}
}

func TestConfusionTableRenders(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	ev, err := dg.Evaluate(nil, d, HoldOutTrials(d.Universe(), []float64{0.25, -0.25}))
	if err != nil {
		t.Fatal(err)
	}
	table := ev.ConfusionTable()
	for _, comp := range []string{"R1", "C3"} {
		if !strings.Contains(table, comp) {
			t.Errorf("confusion table missing %s:\n%s", comp, table)
		}
	}
}

func TestResultString(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	res, err := dg.DiagnoseFault(d, fault.Fault{Component: "C2", Deviation: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "C2") || !strings.Contains(s, "1.") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
}

func TestHoldOutTrialsSkipsZero(t *testing.T) {
	u, _ := fault.PaperUniverse([]string{"R1"})
	trials := HoldOutTrials(u, []float64{0, 0.15})
	if len(trials) != 1 {
		t.Fatalf("trials = %d, want 1 (zero skipped)", len(trials))
	}
}

func TestMapAccessor(t *testing.T) {
	_, dg := setup(t, []float64{0.5, 2})
	if dg.Map() == nil || dg.Map().Dim() != 2 {
		t.Fatal("Map accessor broken")
	}
}

func TestDiagnose3D(t *testing.T) {
	d, dg := setup(t, []float64{0.4, 1, 2.5})
	res, err := dg.DiagnoseFault(d, fault.Fault{Component: "R4", Deviation: -0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Component != "R4" {
		t.Fatalf("3D diagnosis = %s, want R4\n%s", res.Best().Component, res)
	}
}
