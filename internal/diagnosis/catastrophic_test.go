package diagnosis

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/geometry"
)

func TestAllCatastrophic(t *testing.T) {
	u, err := fault.PaperUniverse([]string{"R1", "C1"})
	if err != nil {
		t.Fatal(err)
	}
	cats := AllCatastrophic(u)
	if len(cats) != 4 {
		t.Fatalf("cats = %d, want 4", len(cats))
	}
	ids := make(map[string]bool)
	for _, c := range cats {
		ids[c.ID()] = true
	}
	for _, want := range []string{"R1#open", "R1#short", "C1#open", "C1#short"} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestCatastrophicPointsAndDiagnosis(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	cats, skipped, err := CatastrophicPoints(d, AllCatastrophic(d.Universe()), dg.Map().Omegas)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats)+len(skipped) != 14 {
		t.Fatalf("points %d + skipped %d != 14", len(cats), len(skipped))
	}
	if len(cats) < 10 {
		t.Fatalf("too many unsolvable catastrophic circuits: skipped %v", skipped)
	}

	// An actual open R2 must be identified as R2#open, not as some
	// parametric fault.
	hard := fault.Catastrophic{Component: "R2", Open: true}
	circ, err := hard.Apply(d.Golden())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := d.CircuitSignature(circ, dg.Map().Omegas)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dg.DiagnoseWithCatastrophic(geometry.VecN(sig), cats)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Component != "R2#open" {
		t.Fatalf("diagnosed %s, want R2#open\n%s", res.Best().Component, res)
	}
	if res.Best().Deviation != 1 {
		t.Fatalf("open marker = %g, want +1", res.Best().Deviation)
	}

	// A parametric fault must still win over the catastrophic points.
	pres, err := dg.DiagnoseFault(d, fault.Fault{Component: "C1", Deviation: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	psig, err := d.Signature(fault.Fault{Component: "C1", Deviation: 0.25}, dg.Map().Omegas)
	if err != nil {
		t.Fatal(err)
	}
	extended, err := dg.DiagnoseWithCatastrophic(geometry.VecN(psig), cats)
	if err != nil {
		t.Fatal(err)
	}
	if extended.Best().Component != pres.Best().Component {
		t.Fatalf("extended ranking flipped a parametric diagnosis: %s vs %s",
			extended.Best().Component, pres.Best().Component)
	}
	// Candidate list grew by the catastrophic entries.
	if len(extended.Candidates) != len(pres.Candidates)+len(cats) {
		t.Fatalf("candidates = %d, want %d", len(extended.Candidates), len(pres.Candidates)+len(cats))
	}
	// Ranking is sorted.
	for i := 1; i < len(extended.Candidates); i++ {
		if extended.Candidates[i].Distance < extended.Candidates[i-1].Distance-1e-12 {
			t.Fatal("extended candidates not sorted")
		}
	}
}

func TestCatastrophicShortMarker(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	hard := fault.Catastrophic{Component: "C2", Open: false}
	cats, _, err := CatastrophicPoints(d, []fault.Catastrophic{hard}, dg.Map().Omegas)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 1 {
		t.Fatalf("cats = %d", len(cats))
	}
	circ, err := hard.Apply(d.Golden())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := d.CircuitSignature(circ, dg.Map().Omegas)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dg.DiagnoseWithCatastrophic(geometry.VecN(sig), cats)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.Best().Component, "#short") || res.Best().Deviation != -1 {
		t.Fatalf("short not marked: %+v", res.Best())
	}
}

func TestCatastrophicValidation(t *testing.T) {
	d, dg := setup(t, []float64{0.5, 2})
	if _, _, err := CatastrophicPoints(d, nil, nil); err == nil {
		t.Fatal("empty test vector accepted")
	}
	bad := []CatastrophicPoint{{ID: "X#open", Point: geometry.VecN{1}}}
	if _, err := dg.DiagnoseWithCatastrophic(geometry.VecN{0, 0}, bad); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
