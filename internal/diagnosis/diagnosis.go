// Package diagnosis implements the paper's classification step: given an
// observed response point in the test-vector plane, drop perpendiculars
// from every known fault-trajectory segment and name the component whose
// trajectory is closest — preferring segments for which the
// perpendicular foot actually exists, exactly as the paper's Figure 3
// procedure prescribes. Interpolating the foot's position along the
// trajectory also estimates the deviation magnitude.
package diagnosis

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
	"repro/internal/trajectory"
)

// Candidate is one fault hypothesis' claim on an observed fault point:
// a single component, or — when the map models multi-fault families — a
// named set of simultaneously faulted components. The JSON tags define
// the machine-readable report schema (ftdiag -json); the multi-fault
// fields are omitted empty, so single-fault reports are unchanged.
type Candidate struct {
	// Component is the candidate faulty component; for a multi-fault
	// candidate it is the family label (e.g. "C1@-20%+R3").
	Component string `json:"component"`
	// Components lists every faulted part of a multi-fault candidate in
	// canonical order (nil ⇒ a single fault on Component).
	Components []string `json:"components,omitempty"`
	// Distance is the point's distance to the trajectory (to the
	// perpendicular foot when one exists, else to the nearest endpoint).
	Distance float64 `json:"distance"`
	// Deviation is the estimated fractional deviation at the projection
	// foot (the swept part's, for a multi-fault candidate).
	Deviation float64 `json:"deviation"`
	// Deviations holds the per-part deviation estimates of a multi-fault
	// candidate, aligned with Components. Frozen parts carry their
	// family's modeled deviation (grid resolution); the swept part is
	// interpolated like a single-fault estimate.
	Deviations []float64 `json:"deviations,omitempty"`
	// Perpendicular reports whether a perpendicular foot exists inside
	// some segment of the trajectory (the paper's preferred evidence).
	Perpendicular bool `json:"perpendicular"`
}

// IsMulti reports whether the candidate names a multiple fault.
func (c Candidate) IsMulti() bool { return len(c.Components) > 0 }

// Key is the candidate's component-set identity: the faulted components
// joined with "+" ("R3", "C1+R3"), independent of deviation estimates.
// Candidates from different sweep families of one pair share a Key, and
// Diagnose keeps only the best per Key, so comparing Key against
// SetKey of an injected fault decides correctness.
func (c Candidate) Key() string {
	if !c.IsMulti() {
		return c.Component
	}
	return strings.Join(c.Components, "+")
}

// SetKey is the component-set identity of a fault set, matching
// Candidate.Key ("golden" for the empty set). Multi parts are already
// canonically sorted; single faults are their component.
func SetKey(set fault.Set) string {
	parts := set.Parts()
	if len(parts) == 0 {
		return "golden"
	}
	comps := make([]string, len(parts))
	for i, p := range parts {
		comps[i] = p.Component
	}
	sort.Strings(comps)
	return strings.Join(comps, "+")
}

// Result is a ranked diagnosis.
type Result struct {
	// Candidates is sorted best-first.
	Candidates []Candidate `json:"candidates"`
	// Point is the observed signature the diagnosis explains.
	Point geometry.VecN `json:"point"`
}

// Best returns the top candidate.
func (r *Result) Best() Candidate {
	if len(r.Candidates) == 0 {
		return Candidate{}
	}
	return r.Candidates[0]
}

// AmbiguitySet returns every candidate whose distance is within ratio of
// the best candidate's distance (ratio >= 1). With a degenerate zero
// best distance, only exact ties are included.
func (r *Result) AmbiguitySet(ratio float64) []Candidate {
	if len(r.Candidates) == 0 {
		return nil
	}
	best := r.Candidates[0].Distance
	var out []Candidate
	for _, c := range r.Candidates {
		if best == 0 {
			if c.Distance == 0 {
				out = append(out, c)
			}
			continue
		}
		if c.Distance <= best*ratio {
			out = append(out, c)
		}
	}
	return out
}

// String renders the ranking.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diagnosis of point %v:\n", []float64(r.Point))
	for i, c := range r.Candidates {
		perp := " "
		if c.Perpendicular {
			perp = "⊥"
		}
		fmt.Fprintf(&b, "  %d. %-8s dist=%.5g dev=%+.1f%% %s\n", i+1, c.Component, c.Distance, c.Deviation*100, perp)
	}
	return b.String()
}

// Rejected reports whether the diagnosis should be distrusted: the
// observed point is farther from every modeled fault trajectory than
// ratio × the map's extent. What lands here depends on what the map
// models: against a single-fault map, multiple simultaneous faults are
// rejected; against a map with double-fault families (trajectory
// BuildPairs, Session WithDoubleFaults), doubles are named like any
// other fault and rejection means "not in the modeled universe" —
// triples, gross measurement errors, fault classes outside the
// dictionary. Either way it is the honest alternative to confidently
// naming the wrong fault. A ratio around 0.02–0.05 works well in
// practice (see experiment E10).
func (r *Result) Rejected(extent, ratio float64) bool {
	if len(r.Candidates) == 0 {
		return true
	}
	if extent <= 0 || ratio <= 0 {
		return false
	}
	return r.Candidates[0].Distance > ratio*extent
}

// Diagnoser classifies observed signature points against a trajectory
// map.
type Diagnoser struct {
	m *trajectory.Map
}

// Extent returns the trajectory map's scale (max point distance from the
// origin), the natural normalizer for rejection thresholds.
func (d *Diagnoser) Extent() float64 { return d.m.Extent() }

// New builds a diagnoser over a trajectory map.
func New(m *trajectory.Map) (*Diagnoser, error) {
	if m == nil || len(m.Trajectories) == 0 {
		return nil, fmt.Errorf("diagnosis: empty trajectory map")
	}
	return &Diagnoser{m: m}, nil
}

// Map returns the underlying trajectory map.
func (d *Diagnoser) Map() *trajectory.Map { return d.m }

// Diagnose ranks components for an observed signature point. The point's
// dimension must match the map's test vector.
func (d *Diagnoser) Diagnose(point geometry.VecN) (*Result, error) {
	if len(point) != d.m.Dim() {
		return nil, fmt.Errorf("diagnosis: point dimension %d, map dimension %d", len(point), d.m.Dim())
	}
	res := &Result{Point: append(geometry.VecN(nil), point...)}
	for _, tr := range d.m.Trajectories {
		seg, proj, ok := tr.Points.NearestSegmentN(point)
		if !ok {
			continue
		}
		// The paper prefers projections whose perpendicular exists; scan
		// all segments for the best interior projection too.
		bestInterior, hasInterior := bestInteriorProjection(tr, point)
		cand := Candidate{Component: tr.Component}
		if hasInterior {
			cand.Distance = bestInterior.dist
			cand.Deviation = tr.DeviationAt(bestInterior.seg, bestInterior.t)
			cand.Perpendicular = true
		} else {
			cand.Distance = proj.Dist
			cand.Deviation = tr.DeviationAt(seg, proj.T)
		}
		if tr.IsMulti() {
			cand.Components = append([]string(nil), tr.Components...)
			cand.Deviations = append(append([]float64(nil), tr.FixedDeviations...), cand.Deviation)
		}
		res.Candidates = append(res.Candidates, cand)
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		// Perpendicular evidence wins when distances are comparable
		// (within 1%); otherwise plain distance decides.
		if a.Perpendicular != b.Perpendicular && math.Abs(a.Distance-b.Distance) <= 0.01*math.Max(a.Distance, b.Distance) {
			return a.Perpendicular
		}
		return a.Distance < b.Distance
	})
	// A pair's sweep families all claim the same component set; keep only
	// the best-ranked claim per Key so the ranking reads as distinct
	// hypotheses. Single-fault maps have unique keys, so this is a no-op
	// there.
	seen := make(map[string]bool, len(res.Candidates))
	kept := res.Candidates[:0]
	for _, c := range res.Candidates {
		if k := c.Key(); !seen[k] {
			seen[k] = true
			kept = append(kept, c)
		}
	}
	res.Candidates = kept
	return res, nil
}

type interiorProj struct {
	seg  int
	t    float64
	dist float64
}

func bestInteriorProjection(tr *trajectory.Trajectory, p geometry.VecN) (interiorProj, bool) {
	best := interiorProj{dist: math.Inf(1)}
	found := false
	for i := 0; i+1 < len(tr.Points); i++ {
		pr := geometry.ProjectN(p, tr.Points[i], tr.Points[i+1])
		if pr.Interior && pr.Dist < best.dist {
			best = interiorProj{seg: i, t: pr.T, dist: pr.Dist}
			found = true
		}
	}
	return best, found
}

// DiagnoseFault is a convenience that computes the fault's signature from
// the dictionary at the map's test vector and diagnoses it — the
// closed-loop "simulate an unknown fault, then find it" experiment.
func (d *Diagnoser) DiagnoseFault(dict *dictionary.Dictionary, f fault.Fault) (*Result, error) {
	sig, err := dict.Signature(f, d.m.Omegas)
	if err != nil {
		return nil, err
	}
	return d.Diagnose(geometry.VecN(sig))
}

// DiagnoseFaults computes the signatures of every given fault in one
// batched solve at the map's test vector and diagnoses each, returning
// results aligned with the input. It is the bulk shared-read entry point
// a serving layer coalesces concurrent requests onto: the signature solve
// bypasses the dictionary's memo into call-local scratch and the
// projection pass only reads the map, so any number of goroutines may
// call it on one Diagnoser/Dictionary pair concurrently. Per-fault
// results are computed independently, so a batched call is bit-identical
// to the same faults diagnosed one at a time.
func (d *Diagnoser) DiagnoseFaults(ctx context.Context, dict *dictionary.Dictionary, faults []fault.Fault) ([]*Result, error) {
	if len(faults) == 0 {
		return nil, fmt.Errorf("diagnosis: no faults")
	}
	sigs, err := dict.Signatures(ctx, faults, d.m.Omegas)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(faults))
	for i := range faults {
		res, err := d.Diagnose(geometry.VecN(sigs[i]))
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// DiagnoseSet computes the fault set's signature from the dictionary at
// the map's test vector and diagnoses it — DiagnoseFault generalized to
// golden, single, or multiple faults.
func (d *Diagnoser) DiagnoseSet(dict *dictionary.Dictionary, set fault.Set) (*Result, error) {
	sig, err := dict.SignatureSet(set, d.m.Omegas)
	if err != nil {
		return nil, err
	}
	return d.Diagnose(geometry.VecN(sig))
}

// DiagnoseSets computes the signatures of every given fault set in one
// batched rank-k solve at the map's test vector and diagnoses each,
// returning results aligned with the input — DiagnoseFaults generalized
// to mixed single and multiple faults, with the same shared-read
// concurrency contract and batched-equals-one-at-a-time guarantee.
func (d *Diagnoser) DiagnoseSets(ctx context.Context, dict *dictionary.Dictionary, sets []fault.Set) ([]*Result, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("diagnosis: no faults")
	}
	sigs, err := dict.SignaturesSets(ctx, sets, d.m.Omegas)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(sets))
	for i := range sets {
		res, err := d.Diagnose(geometry.VecN(sigs[i]))
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// Evaluation aggregates diagnosis quality over a set of trial faults.
type Evaluation struct {
	// Total is the number of trials.
	Total int `json:"total"`
	// Correct counts trials whose top candidate named the right
	// component.
	Correct int `json:"correct"`
	// TopTwo counts trials where the right component ranked first or
	// second.
	TopTwo int `json:"top_two"`
	// MeanDevError is the average |estimated − true| deviation among the
	// correctly named trials.
	MeanDevError float64 `json:"mean_dev_error"`
	// Confusion[actual][predicted] counts outcomes.
	Confusion map[string]map[string]int `json:"confusion"`
	// PerComponent maps component → correct/total for that component.
	PerComponent map[string]*ComponentScore `json:"per_component"`
}

// ComponentScore is a per-component tally.
type ComponentScore struct {
	Total   int `json:"total"`
	Correct int `json:"correct"`
}

// Accuracy returns Correct/Total (0 for an empty evaluation).
func (e *Evaluation) Accuracy() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.Total)
}

// TopTwoAccuracy returns TopTwo/Total.
func (e *Evaluation) TopTwoAccuracy() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.TopTwo) / float64(e.Total)
}

// Evaluate runs the diagnoser over every trial fault, computing all
// trial signatures from the dictionary in one batched solve. Trial
// faults may sit off the dictionary's deviation grid (the realistic
// case). A canceled context stops the batched solve within one
// frequency; the error wraps rerr.ErrCanceled.
func (d *Diagnoser) Evaluate(ctx context.Context, dict *dictionary.Dictionary, trials []fault.Fault) (*Evaluation, error) {
	if len(trials) == 0 {
		return nil, fmt.Errorf("diagnosis: no trial faults")
	}
	sigs, err := dict.Signatures(ctx, trials, d.m.Omegas)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Confusion:    make(map[string]map[string]int),
		PerComponent: make(map[string]*ComponentScore),
	}
	var devErrSum float64
	for ti, f := range trials {
		res, err := d.Diagnose(geometry.VecN(sigs[ti]))
		if err != nil {
			return nil, err
		}
		best := res.Best()
		ev.Total++
		if ev.Confusion[f.Component] == nil {
			ev.Confusion[f.Component] = make(map[string]int)
		}
		ev.Confusion[f.Component][best.Component]++
		cs := ev.PerComponent[f.Component]
		if cs == nil {
			cs = &ComponentScore{}
			ev.PerComponent[f.Component] = cs
		}
		cs.Total++
		if best.Component == f.Component {
			ev.Correct++
			cs.Correct++
			devErrSum += math.Abs(best.Deviation - f.Deviation)
		}
		for i, c := range res.Candidates {
			if i > 1 {
				break
			}
			if c.Component == f.Component {
				ev.TopTwo++
				break
			}
		}
	}
	if ev.Correct > 0 {
		ev.MeanDevError = devErrSum / float64(ev.Correct)
	}
	return ev, nil
}

// EvaluateSets is Evaluate over arbitrary fault-set trials — the way a
// double-fault trajectory map's top-1 accuracy is measured. A trial
// counts as correct when the top candidate's Key names exactly the
// trial's faulted component set (SetKey); Confusion and PerComponent are
// keyed by those set keys ("C1+R3"). MeanDevError averages the per-part
// |estimated − true| deviation over the correctly named trials. Trial
// signatures are computed in one batched rank-k solve; cancellation
// semantics match Evaluate.
func (d *Diagnoser) EvaluateSets(ctx context.Context, dict *dictionary.Dictionary, trials []fault.Set) (*Evaluation, error) {
	if len(trials) == 0 {
		return nil, fmt.Errorf("diagnosis: no trial faults")
	}
	sigs, err := dict.SignaturesSets(ctx, trials, d.m.Omegas)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{
		Confusion:    make(map[string]map[string]int),
		PerComponent: make(map[string]*ComponentScore),
	}
	var devErrSum float64
	for ti, set := range trials {
		res, err := d.Diagnose(geometry.VecN(sigs[ti]))
		if err != nil {
			return nil, err
		}
		best := res.Best()
		want := SetKey(set)
		ev.Total++
		if ev.Confusion[want] == nil {
			ev.Confusion[want] = make(map[string]int)
		}
		ev.Confusion[want][best.Key()]++
		cs := ev.PerComponent[want]
		if cs == nil {
			cs = &ComponentScore{}
			ev.PerComponent[want] = cs
		}
		cs.Total++
		if best.Key() == want {
			ev.Correct++
			cs.Correct++
			devErrSum += setDevError(set, best)
		}
		for i, c := range res.Candidates {
			if i > 1 {
				break
			}
			if c.Key() == want {
				ev.TopTwo++
				break
			}
		}
	}
	if ev.Correct > 0 {
		ev.MeanDevError = devErrSum / float64(ev.Correct)
	}
	return ev, nil
}

// setDevError averages |estimated − true| deviation across the parts of
// a correctly named trial. The candidate's Key matched the trial's, so
// both sides name the same components; estimates are matched to true
// parts by component.
func setDevError(set fault.Set, c Candidate) float64 {
	parts := set.Parts()
	if len(parts) == 0 {
		return 0
	}
	est := func(comp string) float64 {
		for i, cc := range c.Components {
			if cc == comp {
				return c.Deviations[i]
			}
		}
		return c.Deviation // single-fault candidate
	}
	var sum float64
	for _, p := range parts {
		sum += math.Abs(est(p.Component) - p.Deviation)
	}
	return sum / float64(len(parts))
}

// ConfusionTable renders the confusion matrix with components sorted.
func (e *Evaluation) ConfusionTable() string {
	comps := make([]string, 0, len(e.Confusion))
	for c := range e.Confusion {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	// Collect predicted labels too (may include components never the
	// actual fault).
	predSet := make(map[string]bool)
	for _, row := range e.Confusion {
		for p := range row {
			predSet[p] = true
		}
	}
	preds := make([]string, 0, len(predSet))
	for p := range predSet {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "actual\\pred")
	for _, p := range preds {
		fmt.Fprintf(&b, "%8s", p)
	}
	b.WriteByte('\n')
	for _, c := range comps {
		fmt.Fprintf(&b, "%-10s", c)
		for _, p := range preds {
			fmt.Fprintf(&b, "%8d", e.Confusion[c][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HoldOutTrials builds the standard trial set: every component of the
// universe at deviations that fall between the dictionary's grid points
// (e.g. ±15%, ±25%, ±35% for the paper grid), exercising interpolation
// rather than memorization.
func HoldOutTrials(u *fault.Universe, deviations []float64) []fault.Fault {
	var out []fault.Fault
	for _, c := range u.Components {
		for _, d := range deviations {
			if d == 0 {
				continue
			}
			out = append(out, fault.Fault{Component: c, Deviation: d})
		}
	}
	return out
}

// DefaultHoldOutDeviations returns off-grid deviations between the
// paper's ±10..40% grid points.
func DefaultHoldOutDeviations() []float64 {
	return []float64{-0.35, -0.25, -0.15, 0.15, 0.25, 0.35}
}

// HoldOutPairTrials builds the double-fault analogue of HoldOutTrials:
// every component pair of the universe swept over the given deviations
// (nil → DefaultHoldOutDeviations, exercising interpolation off the
// modeled pair grid), capped at max sets (≤ 0 → no cap).
func HoldOutPairTrials(u *fault.Universe, deviations []float64, max int) ([]fault.Set, error) {
	if deviations == nil {
		deviations = DefaultHoldOutDeviations()
	}
	pairs, err := u.Pairs(deviations, max)
	if err != nil {
		return nil, err
	}
	out := make([]fault.Set, len(pairs))
	for i, p := range pairs {
		out[i] = p
	}
	return out, nil
}
