package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/ga"
)

func paperATPG(t *testing.T) *ATPG {
	t.Helper()
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// smallGA returns a reduced GA config that keeps unit tests fast while
// preserving the paper's operator choices.
func smallGA() ga.Config {
	cfg := ga.PaperConfig()
	cfg.PopSize = 24
	cfg.Generations = 6
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := PaperOptimizeConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.NumFrequencies = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad = good
	bad.BandLo = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative band accepted")
	}
	bad = good
	bad.BandHi = bad.BandLo
	if err := bad.Validate(); err == nil {
		t.Fatal("empty band accepted")
	}
	bad = good
	bad.GA.PopSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad GA config accepted")
	}
}

func TestPaperOptimizeConfig(t *testing.T) {
	cfg := PaperOptimizeConfig(10)
	if cfg.NumFrequencies != 2 || cfg.BandLo != 0.1 || cfg.BandHi != 1000 {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.GA.PopSize != 128 || cfg.GA.Generations != 15 {
		t.Fatal("GA config not the paper's")
	}
}

func TestFitnessModeString(t *testing.T) {
	if PaperFitness.String() != "paper" || SeparationFitness.String() != "separation" {
		t.Fatal("mode strings wrong")
	}
	if FitnessMode(7).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

func TestFitnessExplicitVector(t *testing.T) {
	a := paperATPG(t)
	fit, err := a.Fitness(nil, []float64{0.5, 2}, PaperFitness)
	if err != nil {
		t.Fatal(err)
	}
	if fit <= 0 || fit > 1 {
		t.Fatalf("paper fitness = %g outside (0,1]", fit)
	}
	sep, err := a.Fitness(nil, []float64{0.5, 2}, SeparationFitness)
	if err != nil {
		t.Fatal(err)
	}
	if sep < fit {
		t.Fatalf("separation fitness %g below paper %g", sep, fit)
	}
	if _, err := a.Fitness(nil, nil, PaperFitness); err == nil {
		t.Fatal("empty vector accepted")
	}
}

func TestOptimizeFindsGoodVector(t *testing.T) {
	a := paperATPG(t)
	cfg := PaperOptimizeConfig(1)
	cfg.GA = smallGA()
	tv, err := a.Optimize(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Omegas) != 2 {
		t.Fatalf("omegas = %v", tv.Omegas)
	}
	if tv.Omegas[0] > tv.Omegas[1] {
		t.Fatalf("omegas not sorted: %v", tv.Omegas)
	}
	for _, w := range tv.Omegas {
		if w < cfg.BandLo || w > cfg.BandHi {
			t.Fatalf("ω=%g outside band", w)
		}
	}
	// The GA should find a low-intersection vector on this CUT.
	if tv.Fitness < 0.25 {
		t.Fatalf("fitness = %g (I = %d)", tv.Fitness, tv.Intersections)
	}
	if len(tv.History) != cfg.GA.Generations {
		t.Fatalf("history = %d", len(tv.History))
	}
	if tv.Evaluations <= 0 {
		t.Fatal("no evaluations recorded")
	}
	// Fitness agrees with a direct recomputation.
	direct, err := a.Fitness(nil, tv.Omegas, PaperFitness)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-1/(1+float64(tv.Intersections))) > 1e-12 {
		t.Fatalf("fitness %g inconsistent with I=%d", direct, tv.Intersections)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	a := paperATPG(t)
	cfg := PaperOptimizeConfig(1)
	cfg.GA = smallGA()
	tv1, err := a.Optimize(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tv2, err := a.Optimize(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tv1.Omegas {
		if tv1.Omegas[i] != tv2.Omegas[i] {
			t.Fatalf("same seed, different vectors: %v vs %v", tv1.Omegas, tv2.Omegas)
		}
	}
}

func TestOptimizeRejectsBadConfig(t *testing.T) {
	a := paperATPG(t)
	cfg := PaperOptimizeConfig(1)
	cfg.NumFrequencies = 0
	if _, err := a.Optimize(nil, cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestBuildDiagnoserAndEvaluate(t *testing.T) {
	a := paperATPG(t)
	dg, err := a.BuildDiagnoser(nil, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Map().Dim() != 2 {
		t.Fatal("wrong dimension")
	}
	ev, err := a.EvaluateVector(nil, []float64{0.5, 2}, []float64{-0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total != 14 {
		t.Fatalf("trials = %d, want 14", ev.Total)
	}
	if ev.Accuracy() <= 0.3 {
		t.Fatalf("accuracy = %g", ev.Accuracy())
	}
}

func TestRandomVectorBaseline(t *testing.T) {
	a := paperATPG(t)
	rng := rand.New(rand.NewSource(5))
	tv, err := a.RandomVector(nil, 2, 0.01, 100, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Omegas) != 2 || tv.Evaluations != 30 {
		t.Fatalf("baseline = %+v", tv)
	}
	if tv.Fitness <= 0 {
		t.Fatalf("fitness = %g", tv.Fitness)
	}
	// Input validation.
	if _, err := a.RandomVector(nil, 0, 0.01, 100, 5, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := a.RandomVector(nil, 2, -1, 100, 5, rng); err == nil {
		t.Fatal("bad band accepted")
	}
	if _, err := a.RandomVector(nil, 2, 0.01, 100, 5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestGridVectorBaseline(t *testing.T) {
	a := paperATPG(t)
	tv, err := a.GridVector(nil, 2, 0.01, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Omegas) != 2 {
		t.Fatalf("omegas = %v", tv.Omegas)
	}
	// C(8,2) = 28 solvable combos at most.
	if tv.Evaluations < 1 || tv.Evaluations > 28 {
		t.Fatalf("evaluations = %d", tv.Evaluations)
	}
	if _, err := a.GridVector(nil, 3, 0.01, 100, 2); err == nil {
		t.Fatal("grid smaller than k accepted")
	}
	if _, err := a.GridVector(nil, 2, 5, 1, 8); err == nil {
		t.Fatal("inverted band accepted")
	}
}

func TestSensitivityVectorBaseline(t *testing.T) {
	a := paperATPG(t)
	tv, err := a.SensitivityVector(nil, 2, 0.01, 100, 12, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Omegas) != 2 {
		t.Fatalf("omegas = %v", tv.Omegas)
	}
	if math.Abs(math.Log10(tv.Omegas[1])-math.Log10(tv.Omegas[0])) < 0.3 {
		t.Fatalf("picks too close: %v", tv.Omegas)
	}
	if _, err := a.SensitivityVector(nil, 0, 0.01, 100, 12, 0.3); err == nil {
		t.Fatal("k=0 accepted")
	}
	// Impossible separation demand.
	if _, err := a.SensitivityVector(nil, 5, 1, 2, 6, 2.0); err == nil {
		t.Fatal("unsatisfiable separation accepted")
	}
}

func TestGAVectorBeatsOrMatchesRandomOnFitness(t *testing.T) {
	a := paperATPG(t)
	cfg := PaperOptimizeConfig(1)
	cfg.GA = smallGA()
	tv, err := a.Optimize(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	rnd, err := a.RandomVector(nil, 2, cfg.BandLo, cfg.BandHi, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tv.Fitness < rnd.Fitness-1e-9 {
		t.Fatalf("GA fitness %g below a 10-draw random baseline %g", tv.Fitness, rnd.Fitness)
	}
}
