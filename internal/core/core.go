// Package core assembles the paper's contribution: the fault-trajectory
// ATPG for analog fault diagnosis. It wires the fault-simulation
// dictionary, the trajectory transformation, the GA test-vector
// optimizer (fitness = 1/(1+I)), and the perpendicular-projection
// diagnoser into one pipeline, plus the baseline frequency-selection
// strategies the evaluation compares against.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/ga"
	"repro/internal/rerr"
	"repro/internal/trajectory"
)

// FitnessMode selects the GA's objective.
type FitnessMode int

const (
	// PaperFitness is the paper's 1/(1+I), I = trajectory intersections.
	PaperFitness FitnessMode = iota
	// SeparationFitness augments the paper fitness with a small
	// min-separation bonus, breaking ties among zero-intersection test
	// vectors (an ablation; see EXPERIMENTS.md E7).
	SeparationFitness
)

func (m FitnessMode) String() string {
	switch m {
	case PaperFitness:
		return "paper"
	case SeparationFitness:
		return "separation"
	default:
		return fmt.Sprintf("FitnessMode(%d)", int(m))
	}
}

// Config drives test-vector optimization.
type Config struct {
	// NumFrequencies is k, the test-vector size (paper: 2).
	NumFrequencies int
	// BandLo/BandHi bound the frequency search band in rad/s; genes live
	// in log10 space inside this band.
	BandLo, BandHi float64
	// GA holds the genetic-algorithm hyperparameters.
	GA ga.Config
	// Fitness selects the objective (default: PaperFitness).
	Fitness FitnessMode
	// Seed makes the run reproducible.
	Seed int64
}

// PaperOptimizeConfig returns the paper's setup for a CUT whose
// characteristic frequency is omega0: two test frequencies searched two
// decades around ω0 with the §2.4 GA parameters.
func PaperOptimizeConfig(omega0 float64) Config {
	return Config{
		NumFrequencies: 2,
		BandLo:         omega0 / 100,
		BandHi:         omega0 * 100,
		GA:             ga.PaperConfig(),
		Fitness:        PaperFitness,
		Seed:           1,
	}
}

// Validate reports configuration errors; they wrap rerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.NumFrequencies < 1 {
		return fmt.Errorf("core: %w: need at least 1 test frequency, got %d", rerr.ErrBadConfig, c.NumFrequencies)
	}
	if !(c.BandLo > 0 && c.BandHi > c.BandLo) {
		return fmt.Errorf("core: %w: bad frequency band [%g, %g]", rerr.ErrBadConfig, c.BandLo, c.BandHi)
	}
	return c.GA.Validate()
}

// TestVector is an optimized set of test frequencies with its quality
// metrics. The JSON tags define the persisted artifact schema (see the
// artifact envelope).
type TestVector struct {
	// Omegas are the test frequencies in rad/s, ascending.
	Omegas []float64 `json:"omegas"`
	// Fitness is the GA objective value of this vector.
	Fitness float64 `json:"fitness"`
	// Intersections is the paper's I for this vector.
	Intersections int `json:"intersections"`
	// History holds the GA's per-generation statistics.
	History []ga.GenStats `json:"history,omitempty"`
	// Evaluations counts fitness calls spent.
	Evaluations int `json:"evaluations"`
}

// ATPG is the fault-trajectory test generator for one circuit under
// test.
type ATPG struct {
	dict *dictionary.Dictionary
}

// New builds the ATPG: it runs the fault-simulation setup (dictionary)
// for the golden circuit over the fault universe.
func New(golden *circuit.Circuit, source, output string, u *fault.Universe) (*ATPG, error) {
	d, err := dictionary.New(golden, source, output, u)
	if err != nil {
		return nil, err
	}
	return &ATPG{dict: d}, nil
}

// Dictionary exposes the underlying fault dictionary.
func (a *ATPG) Dictionary() *dictionary.Dictionary { return a.dict }

// Fitness evaluates the configured objective for an explicit test vector
// — the same function the GA maximizes.
func (a *ATPG) Fitness(ctx context.Context, omegas []float64, mode FitnessMode) (float64, error) {
	m, err := trajectory.Build(ctx, a.dict, omegas)
	if err != nil {
		return 0, err
	}
	return fitnessOf(m, mode), nil
}

func fitnessOf(m *trajectory.Map, mode FitnessMode) float64 {
	base := 1 / (1 + float64(m.Intersections()))
	if mode != SeparationFitness {
		return base
	}
	ext := m.Extent()
	if ext == 0 {
		return base
	}
	// Bonus in [0, 0.5): normalized min-separation cannot dominate the
	// discrete intersection term.
	sep := m.MinSeparation() / ext
	if math.IsInf(sep, 0) || math.IsNaN(sep) {
		sep = 0
	}
	return base + 0.5*math.Min(1, sep)
}

// Optimize searches for the best test vector with the GA. The context
// is enforced at every GA generation boundary and inside every fitness
// evaluation (per test frequency); a canceled context returns an error
// wrapping rerr.ErrCanceled within one generation.
//
// Fitness evaluation is generation-batched: each GA generation is scored
// in one ga.Problem.BatchFitness call that fans the candidates out over
// cfg.GA.Workers goroutines (0 → one per CPU), each owning a reusable
// trajectory.Builder, so the steady-state fitness path allocates
// nothing. With one worker the candidates are evaluated inline, without
// goroutines. The worker count never affects results: each candidate's
// fitness is a pure function of its genes.
func (a *ATPG) Optimize(ctx context.Context, cfg Config) (*TestVector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bounds := make([]ga.Interval, cfg.NumFrequencies)
	lo, hi := math.Log10(cfg.BandLo), math.Log10(cfg.BandHi)
	for i := range bounds {
		bounds[i] = ga.Interval{Lo: lo, Hi: hi}
	}
	workers := cfg.GA.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	problem := ga.Problem{
		Bounds:       bounds,
		BatchFitness: a.batchFitness(ctx, cfg.Fitness, workers),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res, err := ga.Run(ctx, problem, cfg.GA, rng)
	if err != nil {
		return nil, err
	}
	omegas := genesToOmegas(res.Best)
	sort.Float64s(omegas)
	m, err := trajectory.Build(ctx, a.dict, omegas)
	if err != nil {
		return nil, err
	}
	return &TestVector{
		Omegas:        omegas,
		Fitness:       res.BestFitness,
		Intersections: m.Intersections(),
		History:       res.History,
		Evaluations:   res.Evaluations,
	}, nil
}

// fitnessWorker is one evaluation worker's reusable state: a trajectory
// Builder (batch scratch, map, intersection cache) and the gene→ω
// conversion buffer. Reusing it across a whole GA run is what makes the
// steady-state fitness path allocation-free.
type fitnessWorker struct {
	b      *trajectory.Builder
	omegas []float64
}

// eval scores one candidate: genes (log10 ω) → test vector → trajectory
// map → configured fitness. Unsolvable candidates score zero mass.
func (w *fitnessWorker) eval(ctx context.Context, genes []float64, mode FitnessMode) float64 {
	w.omegas = w.omegas[:0]
	for _, g := range genes {
		w.omegas = append(w.omegas, math.Pow(10, g))
	}
	m, err := w.b.Build(ctx, w.omegas)
	if err != nil {
		return 0 // unsolvable candidate: zero mass
	}
	return fitnessOf(m, mode)
}

// batchFitness returns the generation-batched fitness evaluator: one
// persistent fitnessWorker per worker slot, candidates split into
// contiguous chunks. Chunking is pure partitioning — every candidate is
// scored by the same pure function, so results are identical at any
// worker count and to the per-individual path.
func (a *ATPG) batchFitness(ctx context.Context, mode FitnessMode, workers int) func([][]float64, []float64) {
	ws := make([]*fitnessWorker, workers)
	for i := range ws {
		ws[i] = &fitnessWorker{b: trajectory.NewBuilder(a.dict)}
	}
	return func(genomes [][]float64, out []float64) {
		n := len(genomes)
		w := workers
		if w > n {
			w = n
		}
		if w <= 1 {
			// Inline path: no goroutine or scheduling overhead when the
			// caller asked for sequential evaluation.
			for i := range genomes {
				out[i] = ws[0].eval(ctx, genomes[i], mode)
			}
			return
		}
		per := (n + w - 1) / w
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			lo, hi := k*per, (k+1)*per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(st *fitnessWorker, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					out[i] = st.eval(ctx, genomes[i], mode)
				}
			}(ws[k], lo, hi)
		}
		wg.Wait()
	}
}

func genesToOmegas(genes []float64) []float64 {
	out := make([]float64, len(genes))
	for i, g := range genes {
		out[i] = math.Pow(10, g)
	}
	return out
}

// BuildDiagnoser constructs the diagnosis stage for a chosen test
// vector.
func (a *ATPG) BuildDiagnoser(ctx context.Context, omegas []float64) (*diagnosis.Diagnoser, error) {
	m, err := trajectory.Build(ctx, a.dict, omegas)
	if err != nil {
		return nil, err
	}
	return diagnosis.New(m)
}

// EvaluateVector runs the standard hold-out evaluation for a test
// vector: off-grid deviations on every universe component. A canceled
// context returns an error wrapping rerr.ErrCanceled within one
// frequency batch.
func (a *ATPG) EvaluateVector(ctx context.Context, omegas []float64, holdOut []float64) (*diagnosis.Evaluation, error) {
	dg, err := a.BuildDiagnoser(ctx, omegas)
	if err != nil {
		return nil, err
	}
	trials := diagnosis.HoldOutTrials(a.dict.Universe(), holdOut)
	return dg.Evaluate(ctx, a.dict, trials)
}

// --- Baseline frequency-selection strategies -------------------------

// RandomVector draws n random k-frequency vectors in the band and keeps
// the one with the best paper fitness — the "no optimization, same
// budget" baseline.
func (a *ATPG) RandomVector(ctx context.Context, k int, bandLo, bandHi float64, n int, rng *rand.Rand) (*TestVector, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 || n < 1 {
		return nil, fmt.Errorf("core: %w: bad random baseline k=%d n=%d", rerr.ErrBadConfig, k, n)
	}
	if !(bandLo > 0 && bandHi > bandLo) {
		return nil, fmt.Errorf("core: %w: bad band [%g, %g]", rerr.ErrBadConfig, bandLo, bandHi)
	}
	if rng == nil {
		return nil, fmt.Errorf("core: %w: nil rng", rerr.ErrBadConfig)
	}
	lo, hi := math.Log10(bandLo), math.Log10(bandHi)
	best := &TestVector{Fitness: -1}
	for trial := 0; trial < n; trial++ {
		if err := ctx.Err(); err != nil {
			return nil, rerr.Canceled(err)
		}
		omegas := make([]float64, k)
		for i := range omegas {
			omegas[i] = math.Pow(10, lo+rng.Float64()*(hi-lo))
		}
		m, err := trajectory.Build(ctx, a.dict, omegas)
		if err != nil {
			continue
		}
		fit := fitnessOf(m, PaperFitness)
		if fit > best.Fitness {
			sort.Float64s(omegas)
			best = &TestVector{Omegas: omegas, Fitness: fit, Intersections: m.Intersections(), Evaluations: trial + 1}
		}
	}
	if best.Omegas == nil {
		return nil, fmt.Errorf("core: no solvable random vector found")
	}
	best.Evaluations = n
	return best, nil
}

// GridVector exhaustively evaluates all k-combinations of a gridSize
// log-spaced frequency grid and returns the best — the deterministic
// baseline. Cost grows as C(gridSize, k); keep gridSize modest.
func (a *ATPG) GridVector(ctx context.Context, k int, bandLo, bandHi float64, gridSize int) (*TestVector, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 || gridSize < k {
		return nil, fmt.Errorf("core: %w: bad grid baseline k=%d grid=%d", rerr.ErrBadConfig, k, gridSize)
	}
	if !(bandLo > 0 && bandHi > bandLo) {
		return nil, fmt.Errorf("core: %w: bad band [%g, %g]", rerr.ErrBadConfig, bandLo, bandHi)
	}
	grid := logspace(bandLo, bandHi, gridSize)
	best := &TestVector{Fitness: -1}
	evals := 0
	var rec func(start int, chosen []float64) error
	rec = func(start int, chosen []float64) error {
		if len(chosen) == k {
			if err := ctx.Err(); err != nil {
				return rerr.Canceled(err)
			}
			omegas := append([]float64(nil), chosen...)
			m, err := trajectory.Build(ctx, a.dict, omegas)
			if err != nil {
				return nil // skip unsolvable combos
			}
			evals++
			if fit := fitnessOf(m, PaperFitness); fit > best.Fitness {
				best = &TestVector{Omegas: omegas, Fitness: fit, Intersections: m.Intersections()}
			}
			return nil
		}
		for i := start; i < len(grid); i++ {
			if err := rec(i+1, append(chosen, grid[i])); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil); err != nil {
		return nil, err
	}
	if best.Omegas == nil {
		return nil, fmt.Errorf("core: grid search found no solvable vector")
	}
	best.Evaluations = evals
	return best, nil
}

// SensitivityVector picks k frequencies greedily from a log grid,
// maximizing the summed magnitude of per-component relative
// sensitivities while keeping picks at least minDecades apart — the
// classical heuristic a test engineer would use without the trajectory
// machinery.
func (a *ATPG) SensitivityVector(ctx context.Context, k int, bandLo, bandHi float64, gridSize int, minDecades float64) (*TestVector, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 || gridSize < k {
		return nil, fmt.Errorf("core: %w: bad sensitivity baseline k=%d grid=%d", rerr.ErrBadConfig, k, gridSize)
	}
	golden := a.dict.Golden()
	u := a.dict.Universe()
	grid := logspace(bandLo, bandHi, gridSize)
	score := make([]float64, len(grid))
	for i, w := range grid {
		if err := ctx.Err(); err != nil {
			return nil, rerr.Canceled(err)
		}
		var total float64
		for _, comp := range u.Components {
			s, err := analysis.RelativeSensitivity(golden, comp, a.dict.Source(), a.dict.Output(), w, 1e-4)
			if err != nil {
				total = -1 // unsolvable frequency: never pick it
				break
			}
			total += math.Abs(s)
		}
		score[i] = total
	}
	var picked []float64
	used := make([]bool, len(grid))
	for len(picked) < k {
		bestIdx, bestScore := -1, math.Inf(-1)
		for i := range grid {
			if used[i] || score[i] < 0 {
				continue
			}
			ok := true
			for _, p := range picked {
				if math.Abs(math.Log10(grid[i])-math.Log10(p)) < minDecades {
					ok = false
					break
				}
			}
			if ok && score[i] > bestScore {
				bestIdx, bestScore = i, score[i]
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("core: sensitivity baseline could not pick %d separated frequencies", k)
		}
		used[bestIdx] = true
		picked = append(picked, grid[bestIdx])
	}
	sort.Float64s(picked)
	m, err := trajectory.Build(ctx, a.dict, picked)
	if err != nil {
		return nil, err
	}
	return &TestVector{
		Omegas:        picked,
		Fitness:       fitnessOf(m, PaperFitness),
		Intersections: m.Intersections(),
		Evaluations:   len(grid),
	}, nil
}

func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, llo+float64(i)*(lhi-llo)/float64(n-1))
	}
	return out
}
