package trajectory

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
)

func paperDict(t *testing.T) *dictionary.Dictionary {
	t.Helper()
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildBasicShape(t *testing.T) {
	d := paperDict(t)
	m, err := Build(nil, d, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 2 {
		t.Fatalf("dim = %d", m.Dim())
	}
	if len(m.Trajectories) != 7 {
		t.Fatalf("trajectories = %d, want 7", len(m.Trajectories))
	}
	for _, tr := range m.Trajectories {
		// 8 deviations + golden origin = 9 points.
		if len(tr.Points) != 9 || len(tr.Deviations) != 9 {
			t.Fatalf("%s: %d points", tr.Component, len(tr.Points))
		}
		// Deviations ascend and include 0 in the middle.
		for i := 1; i < len(tr.Deviations); i++ {
			if tr.Deviations[i] <= tr.Deviations[i-1] {
				t.Fatalf("%s: deviations not ascending: %v", tr.Component, tr.Deviations)
			}
		}
		if tr.Deviations[4] != 0 {
			t.Fatalf("%s: middle deviation = %g, want 0", tr.Component, tr.Deviations[4])
		}
		// The golden point is the origin.
		if geometry.NormN(tr.Points[4]) != 0 {
			t.Fatalf("%s: origin point = %v", tr.Component, tr.Points[4])
		}
	}
}

func TestBuildValidation(t *testing.T) {
	d := paperDict(t)
	if _, err := Build(nil, d, nil); err == nil {
		t.Fatal("empty test vector accepted")
	}
	if _, err := Build(nil, d, []float64{-1, 2}); err == nil {
		t.Fatal("negative frequency accepted")
	}
	if _, err := Build(nil, d, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestByComponent(t *testing.T) {
	d := paperDict(t)
	m, err := Build(nil, d, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.ByComponent("C2")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Component != "C2" {
		t.Fatalf("component = %s", tr.Component)
	}
	if _, err := m.ByComponent("R99"); err == nil {
		t.Fatal("missing component accepted")
	}
}

func TestTrajectoriesAreSmooth(t *testing.T) {
	// The paper argues responses are smooth and monotonic in the
	// deviation, so consecutive points should not jump wildly: each
	// segment should be shorter than the whole trajectory.
	d := paperDict(t)
	m, err := Build(nil, d, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range m.Trajectories {
		total := tr.Points.LengthN()
		if total == 0 {
			t.Fatalf("%s: zero-length trajectory — component unobservable", tr.Component)
		}
		for i := 0; i+1 < len(tr.Points); i++ {
			if seg := geometry.DistN(tr.Points[i], tr.Points[i+1]); seg > 0.8*total {
				t.Errorf("%s: segment %d dominates the trajectory (%.3g of %.3g)", tr.Component, i, seg, total)
			}
		}
	}
}

func TestPlanar(t *testing.T) {
	d := paperDict(t)
	m, _ := Build(nil, d, []float64{0.5, 2})
	tr, _ := m.ByComponent("R1")
	pl, err := tr.Planar()
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 9 {
		t.Fatalf("planar points = %d", len(pl))
	}
	m3, _ := Build(nil, d, []float64{0.5, 1, 2})
	tr3, _ := m3.ByComponent("R1")
	if _, err := tr3.Planar(); err == nil {
		t.Fatal("3D trajectory planarized")
	}
}

func TestDeviationAt(t *testing.T) {
	tr := &Trajectory{
		Component:  "X",
		Deviations: []float64{-0.2, 0, 0.2},
		Points:     geometry.PolylineN{{0, 0}, {1, 0}, {2, 0}},
	}
	if got := tr.DeviationAt(0, 0); got != -0.2 {
		t.Fatalf("DeviationAt(0,0) = %g", got)
	}
	if got := tr.DeviationAt(0, 1); got != 0 {
		t.Fatalf("DeviationAt(0,1) = %g", got)
	}
	if got := tr.DeviationAt(1, 0.5); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("DeviationAt(1,0.5) = %g, want 0.1", got)
	}
	// Clamped.
	if got := tr.DeviationAt(99, 2); got != 0.2 {
		t.Fatalf("clamped = %g", got)
	}
	if got := tr.DeviationAt(-5, -1); got != -0.2 {
		t.Fatalf("clamped low = %g", got)
	}
	// Degenerate trajectories.
	if got := (&Trajectory{Deviations: []float64{0.3}}).DeviationAt(0, 0); got != 0.3 {
		t.Fatalf("single-point = %g", got)
	}
	if got := (&Trajectory{}).DeviationAt(0, 0); got != 0 {
		t.Fatalf("empty = %g", got)
	}
}

func TestIntersectionsExcludeOrigin(t *testing.T) {
	// All trajectories pass through the origin; with a reasonable test
	// vector the intersection count must not explode from that
	// structural meeting alone. Compare against a 1-frequency map where
	// everything overlaps on a line.
	d := paperDict(t)
	m2, err := Build(nil, d, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	i2 := m2.Intersections()
	// 7 trajectories → 21 pairs; if origin crossings were counted every
	// pair would contribute at least 1.
	if i2 >= 21 {
		t.Fatalf("I = %d suggests origin crossings are counted", i2)
	}
	m1, err := Build(nil, d, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if i1 := m1.Intersections(); i1 <= i2 {
		t.Fatalf("1-frequency map I=%d should exceed 2-frequency I=%d", i1, i2)
	}
}

func TestPairIntersections(t *testing.T) {
	d := paperDict(t)
	m, _ := Build(nil, d, []float64{0.5, 2})
	n, err := m.PairIntersections("R1", "C1")
	if err != nil {
		t.Fatal(err)
	}
	if n < 0 {
		t.Fatalf("negative count %d", n)
	}
	if _, err := m.PairIntersections("R1", "zz"); err == nil {
		t.Fatal("missing component accepted")
	}
	if _, err := m.PairIntersections("zz", "R1"); err == nil {
		t.Fatal("missing component accepted")
	}
}

func TestMinSeparationAndExtent(t *testing.T) {
	d := paperDict(t)
	m, _ := Build(nil, d, []float64{0.5, 2})
	sep := m.MinSeparation()
	if sep < 0 || math.IsInf(sep, 1) {
		t.Fatalf("separation = %g", sep)
	}
	ext := m.Extent()
	if ext <= 0 {
		t.Fatalf("extent = %g", ext)
	}
	if sep > ext {
		t.Fatalf("separation %g exceeds extent %g", sep, ext)
	}
}

func TestOverlapScore(t *testing.T) {
	d := paperDict(t)
	m, _ := Build(nil, d, []float64{0.5, 2})
	s, err := m.OverlapScore(1e-4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 {
		t.Fatalf("overlap = %g", s)
	}
	m3, _ := Build(nil, d, []float64{0.5, 1, 2})
	if _, err := m3.OverlapScore(1e-4, 10); err == nil {
		t.Fatal("3D overlap accepted")
	}
}

func TestKDimensionalIntersections(t *testing.T) {
	d := paperDict(t)
	m3, err := Build(nil, d, []float64{0.4, 1, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Dim() != 3 {
		t.Fatalf("dim = %d", m3.Dim())
	}
	if i := m3.Intersections(); i < 0 {
		t.Fatalf("I = %d", i)
	}
}

func TestDescribe(t *testing.T) {
	d := paperDict(t)
	m, _ := Build(nil, d, []float64{0.5, 2})
	s := m.Describe()
	for _, frag := range []string{"R1", "C3", "[+40%]", "I ="} {
		if !strings.Contains(s, frag) {
			t.Errorf("describe missing %q", frag)
		}
	}
}
