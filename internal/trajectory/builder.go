package trajectory

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dictionary"
	"repro/internal/geometry"
	"repro/internal/sliceutil"
)

// Builder constructs trajectory maps into storage it owns and reuses:
// the batched-solve scratch, the Map with its trajectories, the point
// coordinates (one flat backing array), and the intersection cache the
// fitness function reads. After a warm-up build, rebuilding a map of the
// same shape (same universe, same test-vector size) allocates nothing —
// the property the GA fitness loop depends on, where the same ~60-fault
// universe is rebuilt for thousands of candidate test vectors.
//
// The Map returned by Build is owned by the Builder and valid until the
// next Build call; callers that keep a map (or hand it to a concurrent
// consumer) use the package-level Build, which dedicates a fresh Builder
// per call. A Builder is not safe for concurrent use — hold one per
// goroutine.
type Builder struct {
	d       *dictionary.Dictionary
	scratch dictionary.SignatureScratch
	m       Map
	trajs   []Trajectory    // backing structs behind m.Trajectories
	devs    []float64       // flat backing for all Deviations
	pts     []geometry.VecN // flat backing for all Points headers
	coords  []float64       // flat backing for all point coordinates
	origin  geometry.VecN   // the shared golden origin (all zeros)
	cache   intersectCache
}

// NewBuilder returns a Builder over the dictionary's fault universe.
func NewBuilder(d *dictionary.Dictionary) *Builder {
	return &Builder{d: d}
}

// Build constructs the trajectory map for the given test vector, reusing
// the Builder's storage. Semantics (validation, cancellation, resulting
// map contents) are identical to the package-level Build; see its
// documentation. The returned map carries a prebuilt intersection cache,
// so the following Intersections call — the GA fitness read — allocates
// nothing. The map and everything it references are invalidated by the
// next Build call on this Builder.
func (b *Builder) Build(ctx context.Context, omegas []float64) (*Map, error) {
	m, err := b.build(ctx, omegas)
	if err != nil {
		return nil, err
	}
	b.cache.build(m)
	m.cache = &b.cache
	return m, nil
}

// build fills the Builder's map without touching the intersection cache
// — the shared core of Builder.Build and the package-level Build, which
// returns cache-less maps so persisted artifacts stay deep-equal across
// a save/load round-trip.
func (b *Builder) build(ctx context.Context, omegas []float64) (*Map, error) {
	if len(omegas) == 0 {
		return nil, fmt.Errorf("trajectory: empty test vector")
	}
	for _, w := range omegas {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("trajectory: invalid test frequency %g", w)
		}
	}
	// Signatures are row-aligned with the universe faults:
	// component-major, each component's block sorted ascending by
	// deviation. The *Into path bypasses the dictionary memo.
	sigs, err := b.d.UniverseSignaturesInto(ctx, omegas, &b.scratch)
	if err != nil {
		return nil, err
	}
	u := b.d.Universe()
	ncomp := len(u.Components)
	perComp := len(u.Deviations)
	npp := perComp + 1 // every trajectory gains the golden origin
	k := len(omegas)

	b.m.Omegas = append(b.m.Omegas[:0], omegas...)
	b.origin = sliceutil.Grow(b.origin, k)
	for i := range b.origin {
		b.origin[i] = 0
	}
	b.devs = sliceutil.Grow(b.devs, ncomp*npp)
	b.coords = sliceutil.Grow(b.coords, ncomp*perComp*k)
	b.pts = sliceutil.Grow(b.pts, ncomp*npp)
	b.trajs = sliceutil.Grow(b.trajs, ncomp)
	b.m.Trajectories = sliceutil.Grow(b.m.Trajectories, ncomp)

	for ci, comp := range u.Components {
		tr := &b.trajs[ci]
		tr.Component = comp
		tr.Deviations = b.devs[ci*npp : ci*npp : (ci+1)*npp]
		tr.Points = geometry.PolylineN(b.pts[ci*npp : ci*npp : (ci+1)*npp])
		// Deviations are sorted ascending; insert the golden origin
		// between the last negative and first positive.
		inserted := false
		for di, dev := range u.Deviations {
			if !inserted && dev > 0 {
				tr.Deviations = append(tr.Deviations, 0)
				tr.Points = append(tr.Points, b.origin)
				inserted = true
			}
			at := (ci*perComp + di) * k
			pt := geometry.VecN(b.coords[at : at : at+k])
			pt = append(pt, sigs[ci*perComp+di]...)
			tr.Deviations = append(tr.Deviations, dev)
			tr.Points = append(tr.Points, pt)
		}
		if !inserted {
			tr.Deviations = append(tr.Deviations, 0)
			tr.Points = append(tr.Points, b.origin)
		}
		b.m.Trajectories[ci] = tr
	}
	b.m.cache = nil
	return &b.m, nil
}

// intersectCache holds everything Intersections needs that depends only
// on the map's geometry, not on the pair being counted: the origin
// tolerance, the coordinate-plane projections of every trajectory, their
// per-segment bounding boxes, and each projection's overall box. The old
// code recomputed the tolerance per call and both projections per
// trajectory pair — ncomp−1 times per trajectory per call.
type intersectCache struct {
	tol     float64
	pairs   [][2]int            // coordinate planes (i, j); empty for dim < 2
	proj    []geometry.Polyline // [traj*len(pairs)+plane]
	seg     [][]geometry.BoundingBox
	box     []geometry.BoundingBox
	pts     []geometry.Point       // backing for proj
	segFlat []geometry.BoundingBox // backing for seg
}

// build fills the cache for m, reusing prior storage.
func (c *intersectCache) build(m *Map) {
	c.tol = m.originTolerance()
	dim := m.Dim()
	c.pairs = c.pairs[:0]
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			c.pairs = append(c.pairs, [2]int{i, j})
		}
	}
	nt := len(m.Trajectories)
	np := len(c.pairs)
	totPts, totSeg := 0, 0
	for _, t := range m.Trajectories {
		n := len(t.Points)
		totPts += n * np
		if n > 1 {
			totSeg += (n - 1) * np
		}
	}
	c.pts = sliceutil.Grow(c.pts, totPts)
	c.segFlat = sliceutil.Grow(c.segFlat, totSeg)
	c.proj = sliceutil.Grow(c.proj, nt*np)
	c.seg = sliceutil.Grow(c.seg, nt*np)
	c.box = sliceutil.Grow(c.box, nt*np)

	po, so := 0, 0
	for ti, t := range m.Trajectories {
		n := len(t.Points)
		ns := 0
		if n > 1 {
			ns = n - 1
		}
		for pi, pr := range c.pairs {
			pl := geometry.Polyline(c.pts[po : po : po+n])
			for _, p := range t.Points {
				pl = append(pl, geometry.Point{X: p[pr[0]], Y: p[pr[1]]})
			}
			po += n
			idx := ti*np + pi
			c.proj[idx] = pl
			sb := pl.SegmentBoxes(c.segFlat[so : so : so+ns])
			so += ns
			c.seg[idx] = sb
			var bb geometry.BoundingBox
			if len(sb) > 0 {
				bb = sb[0]
				for _, b := range sb[1:] {
					bb = bb.Union(b)
				}
			}
			c.box[idx] = bb
		}
	}
}

// count runs the paper's intersection count off the cache. The counts
// are identical to the uncached path: the same projections feed the same
// predicates, the boxes only skip pairs that cannot contribute.
func (c *intersectCache) count(m *Map) int {
	nt := len(m.Trajectories)
	np := len(c.pairs)
	dim := m.Dim()
	total := 0
	for i := 0; i < nt; i++ {
		for j := i + 1; j < nt; j++ {
			for p := 0; p < np; p++ {
				total += geometry.SharedOriginIntersectionsBoxed(
					c.proj[i*np+p], c.proj[j*np+p],
					c.seg[i*np+p], c.seg[j*np+p],
					c.box[i*np+p], c.box[j*np+p],
					geometry.Point{}, c.tol)
			}
			if dim == 1 {
				// Intervals on a line: overlap beyond tol counts as one.
				if overlap1(project1(m.Trajectories[i]), project1(m.Trajectories[j])) > c.tol {
					total++
				}
			}
		}
	}
	return total
}
