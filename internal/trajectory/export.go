package trajectory

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
)

// BuildFromExport reconstructs a trajectory map from a serialized
// dictionary snapshot alone — no circuit, no simulator. This is the
// deployment scenario: the test program ships the JSON grid and the
// tester interpolates it at the chosen test frequencies.
//
// Responses are interpolated linearly in log ω between grid points; the
// requested frequencies must lie inside the grid's range.
func BuildFromExport(ex *dictionary.Export, omegas []float64) (*Map, error) {
	if ex == nil || len(ex.Entries) == 0 {
		return nil, fmt.Errorf("trajectory: empty export")
	}
	if len(omegas) == 0 {
		return nil, fmt.Errorf("trajectory: empty test vector")
	}
	if len(ex.Omegas) < 2 {
		return nil, fmt.Errorf("trajectory: export grid needs at least 2 frequencies")
	}
	for i := 1; i < len(ex.Omegas); i++ {
		if ex.Omegas[i] <= ex.Omegas[i-1] {
			return nil, fmt.Errorf("trajectory: export grid not strictly ascending at %d", i)
		}
	}
	lo, hi := ex.Omegas[0], ex.Omegas[len(ex.Omegas)-1]
	for _, w := range omegas {
		if w < lo || w > hi {
			return nil, fmt.Errorf("trajectory: test frequency %g outside export grid [%g, %g]", w, lo, hi)
		}
	}

	// Index entries: golden, per-component single-fault rows, and pair
	// rows destined for the shared family grouping (buildPairFamilies),
	// so a SnapshotSets export with a double-fault universe round-trips
	// into a map equivalent to the live BuildPairs one.
	var goldenMags []float64
	type row struct {
		dev  float64
		mags []float64
	}
	byComp := make(map[string][]row)
	var compOrder []string
	type pairMags struct {
		frozen fault.Fault
		swept  string
		dev    float64
		mags   []float64
	}
	var pairEntries []pairMags
	for _, ent := range ex.Entries {
		if ent.ID == "golden" {
			goldenMags = ent.Mags
			continue
		}
		set, err := fault.ParseSetID(ent.ID)
		if err != nil {
			return nil, fmt.Errorf("trajectory: export entry %q: %w", ent.ID, err)
		}
		parts := set.Parts()
		switch len(parts) {
		case 1:
			f := parts[0]
			if _, seen := byComp[f.Component]; !seen {
				compOrder = append(compOrder, f.Component)
			}
			byComp[f.Component] = append(byComp[f.Component], row{dev: f.Deviation, mags: ent.Mags})
		case 2:
			pairEntries = append(pairEntries, pairMags{
				frozen: parts[0], swept: parts[1].Component, dev: parts[1].Deviation, mags: ent.Mags,
			})
		default:
			return nil, fmt.Errorf("trajectory: export entry %q has %d parts; only single and double faults reconstruct", ent.ID, len(parts))
		}
	}
	if goldenMags == nil {
		return nil, fmt.Errorf("trajectory: export has no golden entry")
	}

	m := &Map{Omegas: append([]float64(nil), omegas...)}
	for _, comp := range compOrder {
		rows := byComp[comp]
		sort.Slice(rows, func(i, j int) bool { return rows[i].dev < rows[j].dev })
		tr := &Trajectory{Component: comp}
		origin := make(geometry.VecN, len(omegas))
		inserted := false
		appendPoint := func(dev float64, pt geometry.VecN) {
			tr.Deviations = append(tr.Deviations, dev)
			tr.Points = append(tr.Points, pt)
		}
		for _, r := range rows {
			if !inserted && r.dev > 0 {
				appendPoint(0, origin)
				inserted = true
			}
			pt := make(geometry.VecN, len(omegas))
			for k, w := range omegas {
				pt[k] = interpAt(ex.Omegas, r.mags, w) - interpAt(ex.Omegas, goldenMags, w)
			}
			appendPoint(r.dev, pt)
		}
		if !inserted {
			appendPoint(0, origin)
		}
		m.Trajectories = append(m.Trajectories, tr)
	}
	pairRows := make([]pairRow, len(pairEntries))
	for i, pe := range pairEntries {
		pt := make(geometry.VecN, len(omegas))
		for ki, w := range omegas {
			pt[ki] = interpAt(ex.Omegas, pe.mags, w) - interpAt(ex.Omegas, goldenMags, w)
		}
		pairRows[i] = pairRow{frozen: pe.frozen, swept: pe.swept, dev: pe.dev, pt: pt}
	}
	m.Trajectories = append(m.Trajectories, buildPairFamilies(pairRows)...)
	return m, nil
}

// GoldenFromExport interpolates the golden magnitude at the given
// frequencies from a snapshot — what a tester subtracts from raw
// measurements to form the observed point.
func GoldenFromExport(ex *dictionary.Export, omegas []float64) ([]float64, error) {
	if ex == nil || len(ex.Entries) == 0 {
		return nil, fmt.Errorf("trajectory: empty export")
	}
	var golden []float64
	for _, ent := range ex.Entries {
		if ent.ID == "golden" {
			golden = ent.Mags
			break
		}
	}
	if golden == nil {
		return nil, fmt.Errorf("trajectory: export has no golden entry")
	}
	if len(ex.Omegas) < 2 {
		return nil, fmt.Errorf("trajectory: export grid needs at least 2 frequencies")
	}
	lo, hi := ex.Omegas[0], ex.Omegas[len(ex.Omegas)-1]
	out := make([]float64, len(omegas))
	for k, w := range omegas {
		if w < lo || w > hi {
			return nil, fmt.Errorf("trajectory: frequency %g outside export grid [%g, %g]", w, lo, hi)
		}
		out[k] = interpAt(ex.Omegas, golden, w)
	}
	return out, nil
}

// interpAt interpolates mags over the ascending grid linearly in log ω.
// The caller guarantees w lies inside [grid[0], grid[len-1]].
func interpAt(grid, mags []float64, w float64) float64 {
	i := sort.SearchFloat64s(grid, w)
	if i == 0 {
		return mags[0]
	}
	if i >= len(grid) {
		return mags[len(mags)-1]
	}
	if grid[i] == w {
		// Exact grid hit: return the stored value bit-for-bit instead of
		// reconstructing it through a+(b-a), which can be off by an ulp —
		// loaded artifacts must reproduce in-process results exactly at
		// grid frequencies.
		return mags[i]
	}
	w0, w1 := grid[i-1], grid[i]
	t := (math.Log(w) - math.Log(w0)) / (math.Log(w1) - math.Log(w0))
	return mags[i-1] + t*(mags[i]-mags[i-1])
}
