// Package trajectory implements the paper's central construct: the
// component parametric fault trajectory. Sampling every faulty circuit's
// magnitude response at the k test frequencies maps each fault to a point
// in R^k (golden response at the origin); connecting one component's
// points in deviation order yields that component's trajectory. The
// number of pairwise trajectory intersections I is the GA's fitness
// input (fitness = 1/(1+I)), and the trajectories themselves are the
// reference map the diagnosis stage projects unknown faults onto.
package trajectory

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dictionary"
	"repro/internal/geometry"
	"repro/internal/rerr"
)

// Trajectory is one fault family's trajectory in R^k. For the paper's
// single faults it is the polyline of signature points ordered from the
// most negative deviation, through the golden origin, to the most
// positive deviation. For a multi-fault family (Components non-nil) it
// is one sweep line of the family's sampled manifold: every part but the
// last is frozen at its FixedDeviations value and the last part swept
// over Deviations — these lines do not pass through the origin, since
// the frozen parts stay faulted along the whole sweep. The JSON tags
// define the persisted artifact schema (see the artifact envelope);
// the multi-fault fields are omitted empty, so single-fault artifacts
// are unchanged.
type Trajectory struct {
	// Component is the circuit element this trajectory belongs to; for a
	// multi-fault family it is the family label, e.g. "C1@-20%+R3" (the
	// frozen part IDs plus the swept component).
	Component string `json:"component"`
	// Components lists every faulted part of a multi-fault family in
	// canonical (sorted) order, the swept component last. Nil for the
	// classic single-fault trajectory.
	Components []string `json:"components,omitempty"`
	// FixedDeviations holds the frozen deviations of Components[:len-1],
	// aligned with them. Nil for single-fault trajectories.
	FixedDeviations []float64 `json:"fixed_deviations,omitempty"`
	// Deviations holds the fractional deviation of each point (the swept
	// part's, for multi-fault families), aligned with Points; the golden
	// origin appears as deviation 0 on single-fault trajectories.
	Deviations []float64 `json:"deviations"`
	// Points holds the signature points, aligned with Deviations.
	Points geometry.PolylineN `json:"points"`
}

// IsMulti reports whether the trajectory belongs to a multi-fault
// family.
func (t *Trajectory) IsMulti() bool { return len(t.Components) > 0 }

// Dim returns the test-vector dimension k.
func (t *Trajectory) Dim() int { return t.Points.Dim() }

// Planar returns the 2D polyline for k = 2 trajectories.
func (t *Trajectory) Planar() (geometry.Polyline, error) {
	if t.Dim() != 2 {
		return nil, fmt.Errorf("trajectory: %s has dimension %d, not 2", t.Component, t.Dim())
	}
	return t.Points.Project2D(0, 1), nil
}

// DeviationAt linearly interpolates the deviation corresponding to the
// point at segment index i, local parameter tloc (clamped to [0,1]) —
// how the diagnosis stage turns a projection foot into a deviation
// estimate.
func (t *Trajectory) DeviationAt(i int, tloc float64) float64 {
	if len(t.Deviations) < 2 {
		if len(t.Deviations) == 1 {
			return t.Deviations[0]
		}
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i > len(t.Deviations)-2 {
		i = len(t.Deviations) - 2
	}
	tloc = math.Max(0, math.Min(1, tloc))
	return t.Deviations[i] + tloc*(t.Deviations[i+1]-t.Deviations[i])
}

// Map is the full set of component trajectories for one test vector.
type Map struct {
	// Omegas is the test vector (angular frequencies) the map was built
	// with.
	Omegas []float64 `json:"omegas"`
	// Trajectories holds one entry per component, in universe order.
	Trajectories []*Trajectory `json:"trajectories"`

	// cache holds the precomputed intersection state (origin tolerance,
	// planar projections, segment boxes) for Builder-produced maps; nil
	// for hand-assembled or unmarshaled maps, which compute it per
	// Intersections call.
	cache *intersectCache
}

// Build constructs the trajectory map for the given test vector from a
// fault dictionary. Each component's trajectory runs from its most
// negative deviation through the origin (golden) to its most positive.
//
// The whole universe is evaluated in one batched engine call — per test
// frequency the golden system is factored once and every fault solved by
// a rank-1 update — so building a map costs O(k) factorizations instead
// of O(k · universe size). This is the GA's per-candidate cost.
//
// The context is threaded into the batched solve; a canceled context
// returns an error wrapping rerr.ErrCanceled within one frequency. A nil
// context is treated as context.Background().
//
// Build dedicates a fresh Builder per call, so the returned map is
// independent; hot loops that rebuild maps repeatedly (the GA fitness
// path) hold a Builder instead and reuse its storage. Unlike
// Builder.Build it does not attach a precomputed intersection cache:
// one-shot maps usually count intersections at most once, and cache-less
// maps stay reflect.DeepEqual across an artifact save/load round-trip.
func Build(ctx context.Context, d *dictionary.Dictionary, omegas []float64) (*Map, error) {
	return NewBuilder(d).build(ctx, omegas)
}

// ByComponent returns the trajectory of a named component; a miss wraps
// rerr.ErrUnknownComponent.
func (m *Map) ByComponent(comp string) (*Trajectory, error) {
	for _, t := range m.Trajectories {
		if t.Component == comp {
			return t, nil
		}
	}
	return nil, fmt.Errorf("trajectory: %w: no trajectory for component %q", rerr.ErrUnknownComponent, comp)
}

// Dim returns the test-vector dimension.
func (m *Map) Dim() int { return len(m.Omegas) }

// originTolerance derives the tolerance for excluding origin-touching
// intersections: a small fraction of the largest trajectory extent, so
// it scales with the map.
func (m *Map) originTolerance() float64 {
	var maxNorm float64
	for _, t := range m.Trajectories {
		for _, p := range t.Points {
			if n := geometry.NormN(p); n > maxNorm {
				maxNorm = n
			}
		}
	}
	if maxNorm == 0 {
		return geometry.Eps
	}
	return 1e-6 * maxNorm
}

// Intersections counts the paper's I: the number of intersection points
// between distinct component trajectories, excluding the structural
// meeting at the shared golden origin. For k = 2 this is the planar
// count; for other k the count is taken over every coordinate-plane
// projection.
//
// Builder-produced maps count off a precomputed cache (tolerance,
// projections, segment bounding boxes) and allocate nothing; other maps
// compute the same cache on the fly. Counts are identical either way.
func (m *Map) Intersections() int {
	if m.cache != nil {
		return m.cache.count(m)
	}
	var c intersectCache
	c.build(m)
	return c.count(m)
}

// PairIntersections counts off-origin intersections between the named
// pair of components.
func (m *Map) PairIntersections(a, b string) (int, error) {
	ta, err := m.ByComponent(a)
	if err != nil {
		return 0, err
	}
	tb, err := m.ByComponent(b)
	if err != nil {
		return 0, err
	}
	return pairIntersections(ta, tb, m.Dim(), m.originTolerance()), nil
}

func pairIntersections(a, b *Trajectory, dim int, tol float64) int {
	if dim == 2 {
		pa := a.Points.Project2D(0, 1)
		pb := b.Points.Project2D(0, 1)
		return geometry.SharedOriginIntersections(pa, pb, geometry.Point{}, tol)
	}
	// k != 2: sum the planar counts over coordinate-plane projections,
	// excluding each plane's origin.
	total := 0
	for i := 0; i < dim; i++ {
		for j := i + 1; j < dim; j++ {
			pa := a.Points.Project2D(i, j)
			pb := b.Points.Project2D(i, j)
			total += geometry.SharedOriginIntersections(pa, pb, geometry.Point{}, tol)
		}
	}
	if dim == 1 {
		// Intervals on a line: overlap length beyond tol counts as one.
		pa := project1(a)
		pb := project1(b)
		if overlap1(pa, pb) > tol {
			total++
		}
	}
	return total
}

func project1(t *Trajectory) [2]float64 {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, p := range t.Points {
		mn = math.Min(mn, p[0])
		mx = math.Max(mx, p[0])
	}
	return [2]float64{mn, mx}
}

func overlap1(a, b [2]float64) float64 {
	lo := math.Max(a[0], b[0])
	hi := math.Min(a[1], b[1])
	return hi - lo
}

// MinSeparation returns the smallest distance between any two distinct
// trajectories measured away from the origin: for each vertex of one
// trajectory at least minDevNorm from the origin, the distance to the
// other trajectory. It quantifies how confusable the best-separated map
// still is (larger is better).
func (m *Map) MinSeparation() float64 {
	best := math.Inf(1)
	tol := m.originTolerance()
	for i := 0; i < len(m.Trajectories); i++ {
		for j := 0; j < len(m.Trajectories); j++ {
			if i == j {
				continue
			}
			a, b := m.Trajectories[i], m.Trajectories[j]
			for _, p := range a.Points {
				if geometry.NormN(p) <= tol {
					continue // the shared origin is structurally close
				}
				if d := b.Points.DistToN(p); d < best {
					best = d
				}
			}
		}
	}
	return best
}

// OverlapScore sums, over all trajectory pairs, the approximate length of
// shared pathway (portions within tol of each other) — the "common
// pathways" the paper's fitness criterion also penalizes. 2D only.
func (m *Map) OverlapScore(tol float64, samplesPerSegment int) (float64, error) {
	if m.Dim() != 2 {
		return 0, fmt.Errorf("trajectory: overlap score requires k=2, have k=%d", m.Dim())
	}
	var total float64
	for i := 0; i < len(m.Trajectories); i++ {
		for j := i + 1; j < len(m.Trajectories); j++ {
			pa := m.Trajectories[i].Points.Project2D(0, 1)
			pb := m.Trajectories[j].Points.Project2D(0, 1)
			total += geometry.OverlapLength(pa, pb, tol, samplesPerSegment)
		}
	}
	return total, nil
}

// Extent returns the maximum distance of any trajectory point from the
// origin — the overall scale of the map, used to normalize distances.
func (m *Map) Extent() float64 {
	var mx float64
	for _, t := range m.Trajectories {
		for _, p := range t.Points {
			if n := geometry.NormN(p); n > mx {
				mx = n
			}
		}
	}
	return mx
}

// Describe renders a table of trajectory points for reporting (Figure 3
// style): component, deviation, coordinates.
func (m *Map) Describe() string {
	out := fmt.Sprintf("trajectory map at ω = %v (I = %d)\n", m.Omegas, m.Intersections())
	comps := make([]string, 0, len(m.Trajectories))
	for _, t := range m.Trajectories {
		comps = append(comps, t.Component)
	}
	sort.Strings(comps)
	for _, c := range comps {
		t, _ := m.ByComponent(c)
		out += fmt.Sprintf("  %s:", c)
		for i, p := range t.Points {
			out += fmt.Sprintf(" [%+.0f%%](", t.Deviations[i]*100)
			for k, v := range p {
				if k > 0 {
					out += ","
				}
				out += fmt.Sprintf("%.4g", v)
			}
			out += ")"
		}
		out += "\n"
	}
	return out
}
