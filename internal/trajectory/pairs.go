package trajectory

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
)

// BuildPairs constructs the trajectory map for the given test vector
// extended with a double-fault universe: the single-fault trajectories
// of the dictionary's universe (exactly as Build produces them) plus one
// sweep line per (pair, frozen first deviation) family — for the pair
// (A, B) and each modeled deviation dA, the polyline of
// {A@dA, B@dB} signatures over the modeled dB values. A diagnoser built
// over such a map names double faults instead of rejecting them.
//
// All pair signatures are computed in one batched rank-k engine call, so
// the map costs O(len(omegas)) golden factorizations regardless of how
// many pairs are modeled. Pairs are grouped in first-seen order; within
// a family points are sorted by the swept deviation. Families with a
// single sampled point cannot form a segment and are skipped (model at
// least two deviations per component to avoid this).
//
// Cancellation semantics match Build. The returned map carries no
// intersection cache, like Build's.
func BuildPairs(ctx context.Context, d *dictionary.Dictionary, omegas []float64, pairs []fault.Multi) (*Map, error) {
	m, err := Build(ctx, d, omegas)
	if err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return m, nil
	}
	sets := make([]fault.Set, len(pairs))
	for i, p := range pairs {
		if len(p) != 2 {
			return nil, fmt.Errorf("trajectory: fault set %s has %d parts, want 2", p.ID(), len(p))
		}
		sets[i] = p
	}
	sigs, err := d.SignaturesSets(ctx, sets, omegas)
	if err != nil {
		return nil, err
	}
	rows := make([]pairRow, len(pairs))
	for i, p := range pairs {
		rows[i] = pairRow{
			frozen: p[0], swept: p[1].Component, dev: p[1].Deviation,
			pt: append(geometry.VecN(nil), sigs[i]...),
		}
	}
	m.Trajectories = append(m.Trajectories, buildPairFamilies(rows)...)
	return m, nil
}

// pairRow is one sampled double-fault point headed into family
// grouping: the frozen first part, the swept second component at dev,
// and the signature point. Parts come pre-split in canonical Multi
// order (frozen component < swept component).
type pairRow struct {
	frozen fault.Fault
	swept  string
	dev    float64
	pt     geometry.VecN
}

// buildPairFamilies groups pair rows into sweep-line trajectories — one
// per (frozen part, swept component) family, in first-seen order,
// points sorted by the swept deviation. This single grouping is shared
// by the live BuildPairs path and the export-reconstruction path
// (BuildFromExport), so the two always agree on family labels, order,
// and the <2-point skip. Families with a single sampled point cannot
// form a projection segment and are dropped.
func buildPairFamilies(rows []pairRow) []*Trajectory {
	type famKey struct {
		a, b string
		da   float64
	}
	fams := make(map[famKey][]pairRow)
	var order []famKey
	for _, r := range rows {
		k := famKey{a: r.frozen.Component, b: r.swept, da: r.frozen.Deviation}
		if _, seen := fams[k]; !seen {
			order = append(order, k)
		}
		fams[k] = append(fams[k], r)
	}
	var out []*Trajectory
	for _, k := range order {
		pts := fams[k]
		if len(pts) < 2 {
			continue // a single point cannot form a projection segment
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].dev < pts[j].dev })
		tr := &Trajectory{
			Component:       fmt.Sprintf("%s+%s", fault.Fault{Component: k.a, Deviation: k.da}.ID(), k.b),
			Components:      []string{k.a, k.b},
			FixedDeviations: []float64{k.da},
		}
		for _, fp := range pts {
			tr.Deviations = append(tr.Deviations, fp.dev)
			tr.Points = append(tr.Points, fp.pt)
		}
		out = append(out, tr)
	}
	return out
}

// FaultSetAt reconstructs the fault set a point on a multi-fault
// trajectory corresponds to: the frozen parts at their fixed deviations
// plus the swept component at the interpolated deviation for segment i,
// local parameter tloc. Single-fault trajectories yield a single Fault.
func (t *Trajectory) FaultSetAt(i int, tloc float64) (fault.Set, error) {
	dev := t.DeviationAt(i, tloc)
	if !t.IsMulti() {
		return fault.Fault{Component: t.Component, Deviation: dev}, nil
	}
	parts := make([]fault.Fault, 0, len(t.Components))
	for pi, comp := range t.Components[:len(t.Components)-1] {
		parts = append(parts, fault.Fault{Component: comp, Deviation: t.FixedDeviations[pi]})
	}
	parts = append(parts, fault.Fault{Component: t.Components[len(t.Components)-1], Deviation: dev})
	m, err := fault.NewMulti(parts...)
	if err != nil {
		return nil, fmt.Errorf("trajectory: %s: %w", t.Component, err)
	}
	return m, nil
}
