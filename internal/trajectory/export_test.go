package trajectory

import (
	"math"
	"testing"

	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
	"repro/internal/numeric"
)

func TestBuildFromExportMatchesLive(t *testing.T) {
	// A map rebuilt from a dense exported grid must closely match the
	// live (simulator-backed) map at grid-interior frequencies.
	d := paperDict(t)
	grid := numeric.Logspace(0.01, 100, 81)
	snap, err := d.Snapshot(grid)
	if err != nil {
		t.Fatal(err)
	}
	omegas := []float64{0.5, 2}
	live, err := Build(nil, d, omegas)
	if err != nil {
		t.Fatal(err)
	}
	fromExport, err := BuildFromExport(snap, omegas)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromExport.Trajectories) != len(live.Trajectories) {
		t.Fatalf("trajectories: %d vs %d", len(fromExport.Trajectories), len(live.Trajectories))
	}
	scale := live.Extent()
	for _, lt := range live.Trajectories {
		et, err := fromExport.ByComponent(lt.Component)
		if err != nil {
			t.Fatal(err)
		}
		if len(et.Points) != len(lt.Points) {
			t.Fatalf("%s: %d vs %d points", lt.Component, len(et.Points), len(lt.Points))
		}
		for i := range lt.Points {
			if d := geometry.DistN(lt.Points[i], et.Points[i]); d > 0.02*scale {
				t.Fatalf("%s point %d differs by %g (scale %g)", lt.Component, i, d, scale)
			}
		}
	}
}

func TestBuildFromExportDiagnosisStillWorks(t *testing.T) {
	// End-to-end deployment flow: snapshot → rebuild map → diagnose a
	// signature computed live. Interpolation error must not flip the
	// verdict.
	d := paperDict(t)
	grid := numeric.Logspace(0.01, 100, 81)
	snap, err := d.Snapshot(grid)
	if err != nil {
		t.Fatal(err)
	}
	omegas := []float64{0.5, 2}
	m, err := BuildFromExport(snap, omegas)
	if err != nil {
		t.Fatal(err)
	}
	// Nearest-trajectory search inline (avoiding an import cycle with
	// the diagnosis package).
	sig, err := d.Signature(fault.Fault{Component: "R3", Deviation: 0.25}, omegas)
	if err != nil {
		t.Fatal(err)
	}
	best, bestDist := "", math.Inf(1)
	for _, tr := range m.Trajectories {
		if dist := tr.Points.DistToN(geometry.VecN(sig)); dist < bestDist {
			best, bestDist = tr.Component, dist
		}
	}
	if best != "R3" {
		t.Fatalf("export-based diagnosis = %s, want R3", best)
	}
}

func TestBuildFromExportValidation(t *testing.T) {
	d := paperDict(t)
	grid := numeric.Logspace(0.1, 10, 9)
	snap, err := d.Snapshot(grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFromExport(nil, []float64{1}); err == nil {
		t.Fatal("nil export accepted")
	}
	if _, err := BuildFromExport(snap, nil); err == nil {
		t.Fatal("empty test vector accepted")
	}
	if _, err := BuildFromExport(snap, []float64{0.001}); err == nil {
		t.Fatal("out-of-grid frequency accepted")
	}
	if _, err := BuildFromExport(snap, []float64{500}); err == nil {
		t.Fatal("out-of-grid frequency accepted")
	}
	// Corrupted grids.
	bad := *snap
	bad.Omegas = []float64{1}
	if _, err := BuildFromExport(&bad, []float64{1}); err == nil {
		t.Fatal("single-point grid accepted")
	}
	bad2 := *snap
	bad2.Omegas = append([]float64(nil), snap.Omegas...)
	bad2.Omegas[1] = bad2.Omegas[0]
	if _, err := BuildFromExport(&bad2, []float64{1}); err == nil {
		t.Fatal("non-ascending grid accepted")
	}
	// Missing golden entry.
	noGolden := *snap
	noGolden.Entries = snap.Entries[1:]
	if _, err := BuildFromExport(&noGolden, []float64{1}); err == nil {
		t.Fatal("export without golden accepted")
	}
	// Malformed fault ID.
	badID := *snap
	badID.Entries = append([]dictionary.Entry(nil), snap.Entries...)
	badID.Entries[1].ID = "garbage"
	if _, err := BuildFromExport(&badID, []float64{1}); err == nil {
		t.Fatal("malformed fault id accepted")
	}
}

func TestGoldenFromExport(t *testing.T) {
	d := paperDict(t)
	grid := numeric.Logspace(0.01, 100, 81)
	snap, err := d.Snapshot(grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GoldenFromExport(snap, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{0.5, 2} {
		want, err := d.GoldenResponse(w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[i]-want) > 0.01*want {
			t.Fatalf("ω=%g: interpolated %g vs live %g", w, got[i], want)
		}
	}
	if _, err := GoldenFromExport(snap, []float64{1e6}); err == nil {
		t.Fatal("out-of-grid accepted")
	}
	if _, err := GoldenFromExport(nil, []float64{1}); err == nil {
		t.Fatal("nil export accepted")
	}
}

// TestExportGridPointExact: at exact grid frequencies the interpolation
// must reproduce the stored values bit-for-bit.
func TestExportGridPointExact(t *testing.T) {
	d := paperDict(t)
	grid := numeric.Logspace(0.1, 10, 9)
	snap, err := d.Snapshot(grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GoldenFromExport(snap, []float64{grid[3]})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != snap.Entries[0].Mags[3] {
		t.Fatalf("grid-point value %g vs stored %g", got[0], snap.Entries[0].Mags[3])
	}
}
