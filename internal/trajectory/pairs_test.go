package trajectory

import (
	"math"
	"testing"

	"repro/internal/circuits"
	"repro/internal/dictionary"
	"repro/internal/fault"
)

func pairFixture(t *testing.T) (*dictionary.Dictionary, *fault.Universe, []fault.Multi, []float64) {
	t.Helper()
	cut := circuits.NFLowpass7()
	u, err := fault.NewUniverse(cut.Passives[:3], []float64{-0.3, -0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := u.Pairs(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d, u, pairs, []float64{0.56, 4.55}
}

func TestBuildPairsStructure(t *testing.T) {
	d, u, pairs, omegas := pairFixture(t)
	m, err := BuildPairs(nil, d, omegas, pairs)
	if err != nil {
		t.Fatal(err)
	}
	// Single trajectories first (universe order), then one family per
	// (pair, frozen deviation): 3 singles + 3 pairs × 3 deviations.
	nc, nd := len(u.Components), len(u.Deviations)
	wantFams := nc * (nc - 1) / 2 * nd
	if got := len(m.Trajectories); got != nc+wantFams {
		t.Fatalf("trajectories = %d, want %d singles + %d families", got, nc, wantFams)
	}
	for i, tr := range m.Trajectories {
		if i < nc {
			if tr.IsMulti() {
				t.Fatalf("trajectory %d (%s) unexpectedly multi", i, tr.Component)
			}
			continue
		}
		if !tr.IsMulti() {
			t.Fatalf("trajectory %d (%s) not multi", i, tr.Component)
		}
		if len(tr.Components) != 2 || len(tr.FixedDeviations) != 1 {
			t.Fatalf("%s: components %v fixed %v", tr.Component, tr.Components, tr.FixedDeviations)
		}
		if tr.Components[0] >= tr.Components[1] {
			t.Fatalf("%s: components not in canonical order", tr.Component)
		}
		// Sweep is sorted, excludes zero, and has one point per modeled
		// deviation.
		if len(tr.Deviations) != nd || len(tr.Points) != nd {
			t.Fatalf("%s: %d sweep points, want %d", tr.Component, len(tr.Deviations), nd)
		}
		for j, dev := range tr.Deviations {
			if dev == 0 {
				t.Fatalf("%s: golden point in a pair sweep", tr.Component)
			}
			if j > 0 && dev <= tr.Deviations[j-1] {
				t.Fatalf("%s: sweep not sorted", tr.Component)
			}
		}
		// Points match the dictionary's own signature of the set.
		set, err := tr.FaultSetAt(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(set.Parts()) != 2 {
			t.Fatalf("%s: FaultSetAt parts = %d", tr.Component, len(set.Parts()))
		}
		sig, err := d.SignatureSet(set, omegas)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sig {
			if re := math.Abs(sig[k] - tr.Points[0][k]); re > 1e-9*(1+math.Abs(sig[k])) {
				t.Fatalf("%s: point 0 coord %d = %g, dictionary says %g", tr.Component, k, tr.Points[0][k], sig[k])
			}
		}
	}
}

// TestBuildPairsExportRoundTrip: a SnapshotSets export with pair rows
// reconstructs (BuildFromExport) into a map equivalent to the live
// BuildPairs one at grid frequencies.
func TestBuildPairsExportRoundTrip(t *testing.T) {
	d, _, pairs, omegas := pairFixture(t)
	live, err := BuildPairs(nil, d, omegas, pairs)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]fault.Set, len(pairs))
	for i, p := range pairs {
		sets[i] = p
	}
	// The export grid needs ≥ 2 ascending frequencies; use the test
	// vector itself so loads hit stored values exactly.
	ex, err := d.SnapshotSets(omegas, sets)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ex.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := dictionary.ParseExport(data)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := BuildFromExport(parsed, omegas)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Trajectories) != len(live.Trajectories) {
		t.Fatalf("loaded %d trajectories, live %d", len(loaded.Trajectories), len(live.Trajectories))
	}
	for i, lt := range live.Trajectories {
		rt := loaded.Trajectories[i]
		if rt.Component != lt.Component || rt.IsMulti() != lt.IsMulti() {
			t.Fatalf("trajectory %d: loaded %q multi=%v, live %q multi=%v",
				i, rt.Component, rt.IsMulti(), lt.Component, lt.IsMulti())
		}
		if len(rt.Points) != len(lt.Points) {
			t.Fatalf("%s: loaded %d points, live %d", lt.Component, len(rt.Points), len(lt.Points))
		}
		for j := range lt.Points {
			for k := range lt.Points[j] {
				a, b := rt.Points[j][k], lt.Points[j][k]
				if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
					t.Fatalf("%s point %d coord %d: loaded %g, live %g", lt.Component, j, k, a, b)
				}
			}
		}
	}
}

func TestBuildPairsValidation(t *testing.T) {
	d, _, _, omegas := pairFixture(t)
	triple := fault.Multi{
		{Component: "R1", Deviation: 0.1},
		{Component: "R2", Deviation: 0.1},
		{Component: "R3", Deviation: 0.1},
	}
	if _, err := BuildPairs(nil, d, omegas, []fault.Multi{triple}); err == nil {
		t.Fatal("triple fault accepted as a pair")
	}
	// No pairs degrades to the plain single-fault map.
	m, err := BuildPairs(nil, d, omegas, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range m.Trajectories {
		if tr.IsMulti() {
			t.Fatal("multi trajectory in a pair-less map")
		}
	}
}
