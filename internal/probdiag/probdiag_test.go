package probdiag

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/circuits"
	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/trajectory"
)

func buildDict(t *testing.T, cut circuits.CUT) *dictionary.Dictionary {
	t.Helper()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The acceptance pin: a fixed seed must produce bit-identical clouds
// at Workers ∈ {1, 4, NumCPU}.
func TestBuildWorkerCountDeterminism(t *testing.T) {
	cut := circuits.NFLowpass7()
	d := buildDict(t, cut)
	omegas := []float64{0.5, 2}
	var ref *CloudSet
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		cs, err := Build(context.Background(), d, omegas, nil, Config{
			Sigma: 0.05, Samples: 40, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = cs
			continue
		}
		if !reflect.DeepEqual(ref, cs) {
			t.Fatalf("workers=%d: cloud set differs from workers=1 build", workers)
		}
	}
}

// σ = 0 degenerates each cloud to the dictionary's point signature
// with zero variance — the bridge between the probabilistic and the
// classic path.
func TestZeroSigmaCloudsMatchPointSignatures(t *testing.T) {
	cut := circuits.SallenKeyLP()
	d := buildDict(t, cut)
	omegas := []float64{0.5, 1, 2}
	cs, err := Build(context.Background(), d, omegas, nil, Config{Sigma: 0, Samples: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs.Clouds {
		f, err := fault.ParseSetID(c.ID)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := d.SignatureSet(f, omegas)
		if err != nil {
			t.Fatal(err)
		}
		for j := range omegas {
			if math.Abs(c.Mean[j]-sig[j]) > 1e-12 {
				t.Fatalf("%s ω[%d]: cloud mean %.15g vs signature %.15g", c.ID, j, c.Mean[j], sig[j])
			}
			// (Σx)/n reintroduces one ulp of rounding, so the sample
			// variance of identical draws is ~1e-33, not exactly 0.
			if c.Var[j] > 1e-30 {
				t.Fatalf("%s: nonzero variance %g under σ=0", c.ID, c.Var[j])
			}
		}
	}
	// Scoring an exact signature must put its component on top with
	// high confidence.
	target := cs.Clouds[3]
	res, err := cs.Score(target.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Key != target.Key {
		t.Fatalf("σ=0 self-score: best %q, want %q", res.Best().Key, target.Key)
	}
	if res.Confidence <= 0 || res.Confidence > 1 {
		t.Fatalf("confidence = %g", res.Confidence)
	}
	var total float64
	for _, c := range res.Candidates {
		total += c.Probability
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("posterior sums to %g", total)
	}
}

// Likelihood ranking must beat (or match) the nearest-signature
// baseline on a noisy hold-out — the tentpole's reason to exist.
func TestLikelihoodBeatsNearestUnderTolerance(t *testing.T) {
	cut := circuits.NFLowpass7()
	d := buildDict(t, cut)
	omegas := []float64{0.5, 2}
	const sigma = 0.05
	cs, err := Build(context.Background(), d, omegas, nil, Config{Sigma: sigma, Samples: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m, err := trajectory.Build(nil, d, omegas)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := diagnosis.New(m)
	if err != nil {
		t.Fatal(err)
	}
	var nearestHits, likelihoodHits, trials int
	rng := rand.New(rand.NewSource(99))
	for _, comp := range d.Universe().Components {
		for _, dev := range []float64{-0.35, -0.2, 0.2, 0.35} {
			board, err := fault.Tolerance{Sigma: sigma}.Perturb(d.Golden(), rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := board.ScaleValue(comp, 1+dev); err != nil {
				t.Fatal(err)
			}
			sig, err := d.CircuitSignature(board, omegas)
			if err != nil {
				t.Fatal(err)
			}
			trials++
			res, err := dg.Diagnose(sig)
			if err != nil {
				t.Fatal(err)
			}
			if res.Best().Component == comp {
				nearestHits++
			}
			pres, err := cs.Score(sig)
			if err != nil {
				t.Fatal(err)
			}
			if pres.Best().Key == comp {
				likelihoodHits++
			}
		}
	}
	t.Logf("trials=%d nearest=%d likelihood=%d", trials, nearestHits, likelihoodHits)
	if likelihoodHits < nearestHits {
		t.Fatalf("likelihood top-1 %d/%d below nearest baseline %d/%d",
			likelihoodHits, trials, nearestHits, trials)
	}
}

// Heavy tolerance makes small deviations of one component
// indistinguishable: ambiguity groups must materialize, carry valid
// members, and ride along with every diagnosis of a member.
func TestAmbiguityGroups(t *testing.T) {
	cut := circuits.NFLowpass7()
	d := buildDict(t, cut)
	omegas := []float64{0.5, 2}
	cs, err := Build(context.Background(), d, omegas, nil, Config{Sigma: 0.2, Samples: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Groups) == 0 {
		t.Fatal("σ=0.2 produced no ambiguity groups")
	}
	seen := map[string]int{}
	for gi, g := range cs.Groups {
		if len(g) < 2 {
			t.Fatalf("group %d has %d members", gi, len(g))
		}
		for _, id := range g {
			if prev, dup := seen[id]; dup {
				t.Fatalf("%s appears in groups %d and %d", id, prev, gi)
			}
			seen[id] = gi
		}
	}
	for _, c := range cs.Clouds {
		if gi, ok := seen[c.ID]; ok {
			if c.Group != gi {
				t.Fatalf("%s: Group = %d, membership says %d", c.ID, c.Group, gi)
			}
		} else if c.Group != -1 {
			t.Fatalf("%s: Group = %d but in no group", c.ID, c.Group)
		}
	}
	// A grouped cloud's own mean must report its group.
	var grouped *Cloud
	for i := range cs.Clouds {
		if cs.Clouds[i].Group >= 0 {
			grouped = &cs.Clouds[i]
			break
		}
	}
	res, err := cs.Score(grouped.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AmbiguityGroup) < 2 {
		t.Fatalf("diagnosis of grouped cloud %s reported ambiguity group %v", grouped.ID, res.AmbiguityGroup)
	}
	found := false
	for _, id := range res.AmbiguityGroup {
		if id == grouped.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %s missing from its own ambiguity group %v", grouped.ID, res.AmbiguityGroup)
	}
}

// The JSON shape is the artifact payload: a round-trip must validate
// and score identically.
func TestCloudSetJSONRoundTrip(t *testing.T) {
	cut := circuits.SallenKeyLP()
	d := buildDict(t, cut)
	omegas := []float64{0.5, 2}
	cs, err := Build(context.Background(), d, omegas, nil, Config{
		Sigma: 0.05, Samples: 24, Seed: 5, NoiseSigma: []float64{1e-4, 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	var back CloudSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if !back.MatchesOmegas(omegas) || back.MatchesOmegas([]float64{0.5}) {
		t.Fatal("MatchesOmegas misbehaves after round-trip")
	}
	point := cs.Clouds[1].Mean
	a, err := cs.Score(point)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Score(point)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("round-tripped cloud set scores differently")
	}
}

func TestBuildValidation(t *testing.T) {
	cut := circuits.NFLowpass7()
	d := buildDict(t, cut)
	omegas := []float64{0.5, 2}
	cases := []Config{
		{Sigma: 0.05, Samples: 0, Seed: 1},                           // no samples
		{Sigma: 0.5, Samples: 4, Seed: 1},                            // sigma out of range
		{Sigma: -0.1, Samples: 4, Seed: 1},                           // negative sigma
		{Sigma: 0.05, Samples: 4, Seed: 1, NoiseSigma: []float64{1}}, // noise dim mismatch
		{Sigma: 0.05, Samples: 4, Seed: 1, OverlapThreshold: 2},      // bad threshold
	}
	for i, cfg := range cases {
		if _, err := Build(context.Background(), d, omegas, nil, cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := Build(context.Background(), nil, omegas, nil, Config{Sigma: 0.05, Samples: 1}); err == nil {
		t.Fatal("nil dictionary accepted")
	}
	if _, err := Build(context.Background(), d, nil, nil, Config{Sigma: 0.05, Samples: 1}); err == nil {
		t.Fatal("empty frequency grid accepted")
	}
	cs, err := Build(context.Background(), d, omegas, nil, Config{Sigma: 0.05, Samples: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Score([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted by Score")
	}
}

// Double-fault sets ride along as extra clouds with composite keys.
func TestBuildWithExtraSets(t *testing.T) {
	cut := circuits.NFLowpass7()
	d := buildDict(t, cut)
	omegas := []float64{0.5, 2}
	pairs, err := d.Universe().Pairs([]float64{-0.2, 0.3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	extra := make([]fault.Set, len(pairs))
	for i, p := range pairs {
		extra[i] = p
	}
	cs, err := Build(context.Background(), d, omegas, extra, Config{Sigma: 0.02, Samples: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := d.Universe().Size() + len(extra)
	if len(cs.Clouds) != want {
		t.Fatalf("clouds = %d, want %d", len(cs.Clouds), want)
	}
	multi := cs.Clouds[len(cs.Clouds)-1]
	if len(multi.Components) != 2 {
		t.Fatalf("extra cloud %s has %d components", multi.ID, len(multi.Components))
	}
	res, err := cs.Score(multi.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Key == "" {
		t.Fatal("empty best key")
	}
}
