// Package probdiag implements tolerance-aware probabilistic fault
// diagnosis on top of the batched rank-k engine: every fault set in
// the dictionary universe gets a Monte-Carlo *signature cloud* — the
// distribution of its fault-space signature when all components carry
// manufacturing tolerance — summarized as per-frequency mean and
// variance. Diagnosis then ranks fault hypotheses by Gaussian
// log-likelihood (cloud variance plus an explicit measurement-noise
// term) instead of nearest point, yielding posterior probabilities, a
// confidence figure, and precomputed ambiguity groups (fault sets
// whose clouds overlap beyond a threshold).
//
// One MC sample is one rank-k batched engine pass: the sample's
// tolerance draw plus each hypothesis's fault compose into a k-part
// fault set per hypothesis, all solved against the shared golden LU.
// Sampling fans out over montecarlo.ForEach with per-sample RNGs
// (seed + sample index), and the reduction folds samples in index
// order — the resulting clouds are bit-identical at every worker
// count.
package probdiag

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/montecarlo"
	"repro/internal/rerr"
)

// DefaultOverlapThreshold is the Bhattacharyya-coefficient overlap
// above which two clouds join one ambiguity group: 0.5 corresponds to
// a Bhattacharyya bound of ≥ 25% Bayes error between the pair.
const DefaultOverlapThreshold = 0.5

// varFloorRel scales the cloud extent into the variance floor that
// keeps zero-variance clouds (σ = 0 builds, or flat responses)
// scorable: floor = (varFloorRel · extent)².
const varFloorRel = 1e-6

// Config parameterizes a cloud build.
type Config struct {
	// Sigma is the component tolerance σ (relative, mirrors
	// fault.Tolerance.Sigma's [0, 0.3] range).
	Sigma float64
	// Samples is the Monte-Carlo sample count per cloud (≥ 1).
	Samples int
	// Seed is the base RNG seed; sample i draws from seed+i.
	Seed int64
	// Workers bounds the parallel sample workers (≤ 0 means NumCPU).
	Workers int
	// NoiseSigma is the optional per-frequency measurement-noise σ in
	// signature units (normalized |H|); it enters every likelihood and
	// overlap computation as an additive variance.
	NoiseSigma []float64
	// OverlapThreshold is the ambiguity-group cut on the pairwise
	// Bhattacharyya coefficient; 0 means DefaultOverlapThreshold.
	OverlapThreshold float64
}

// Cloud is one fault set's signature distribution.
type Cloud struct {
	// ID is the fault-set identifier ("R3@+25%", "C1@-20%+R3@+30%").
	ID string `json:"id"`
	// Key is the component-set key ("R3", "C1+R3") candidates
	// aggregate under.
	Key string `json:"key"`
	// Components and Deviations mirror the set's parts.
	Components []string  `json:"components"`
	Deviations []float64 `json:"deviations"`
	// Mean and Var are the per-frequency sample mean and unbiased
	// sample variance of the signature (|H(jω)| − golden).
	Mean []float64 `json:"mean"`
	Var  []float64 `json:"var"`
	// Group indexes CloudSet.Groups, or −1 when the cloud overlaps no
	// other cloud beyond the threshold.
	Group int `json:"group"`
}

// CloudSet is the complete probabilistic model for one circuit and
// frequency grid: every cloud, the measurement-noise variances, and
// the precomputed ambiguity groups. It is a pure-data value (the JSON
// shape is the artifact payload) and is safe for concurrent Score
// calls once built.
type CloudSet struct {
	// Omegas is the frequency grid the clouds live on.
	Omegas []float64 `json:"omegas"`
	// Sigma, Samples, Seed record the build configuration.
	Sigma   float64 `json:"sigma"`
	Samples int     `json:"samples"`
	Seed    int64   `json:"seed"`
	// FailedSamples counts MC samples dropped by solver failures
	// (singular perturbed systems); the statistics use the survivors.
	FailedSamples int `json:"failed_samples,omitempty"`
	// NoiseVar is the per-frequency measurement-noise variance added
	// to every cloud variance during scoring (NoiseSigma²).
	NoiseVar []float64 `json:"noise_var,omitempty"`
	// OverlapThreshold is the ambiguity grouping cut that was applied.
	OverlapThreshold float64 `json:"overlap_threshold"`
	// VarFloor is the additive variance floor derived from the cloud
	// extent at build time.
	VarFloor float64 `json:"var_floor"`
	// Clouds holds one entry per fault set, in universe order.
	Clouds []Cloud `json:"clouds"`
	// Groups lists the ambiguity groups (fault-set IDs, build order);
	// only groups with ≥ 2 members are materialized.
	Groups [][]string `json:"groups,omitempty"`
}

// Dim implements diagnosis.CloudModel.
func (cs *CloudSet) Dim() int { return len(cs.Omegas) }

// MatchesOmegas reports whether the clouds were built on exactly this
// frequency grid.
func (cs *CloudSet) MatchesOmegas(omegas []float64) bool {
	if len(omegas) != len(cs.Omegas) {
		return false
	}
	for i, w := range omegas {
		if cs.Omegas[i] != w {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants a freshly unmarshaled
// CloudSet must satisfy before it may score points.
func (cs *CloudSet) Validate() error {
	nf := len(cs.Omegas)
	if nf == 0 {
		return fmt.Errorf("%w: probdiag: cloud set has no frequencies", rerr.ErrArtifact)
	}
	if len(cs.Clouds) == 0 {
		return fmt.Errorf("%w: probdiag: cloud set has no clouds", rerr.ErrArtifact)
	}
	if len(cs.NoiseVar) != 0 && len(cs.NoiseVar) != nf {
		return fmt.Errorf("%w: probdiag: noise_var has %d entries, want %d", rerr.ErrArtifact, len(cs.NoiseVar), nf)
	}
	if !(cs.VarFloor > 0) {
		return fmt.Errorf("%w: probdiag: nonpositive variance floor %g", rerr.ErrArtifact, cs.VarFloor)
	}
	for i := range cs.Clouds {
		c := &cs.Clouds[i]
		if len(c.Mean) != nf || len(c.Var) != nf {
			return fmt.Errorf("%w: probdiag: cloud %s has %d/%d stats entries, want %d",
				rerr.ErrArtifact, c.ID, len(c.Mean), len(c.Var), nf)
		}
		if c.Group >= len(cs.Groups) {
			return fmt.Errorf("%w: probdiag: cloud %s references group %d of %d",
				rerr.ErrArtifact, c.ID, c.Group, len(cs.Groups))
		}
		for j, v := range c.Var {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: probdiag: cloud %s has invalid variance %g at ω index %d",
					rerr.ErrArtifact, c.ID, v, j)
			}
		}
	}
	return nil
}

// pset is the per-sample composed fault set: every perturbable
// component's tolerance draw multiplied with the hypothesis's fault.
// It deliberately bypasses fault.NewMulti (which rejects zero
// deviations) — components whose composed deviation is exactly zero
// are simply dropped from the parts.
type pset struct {
	id    string
	parts []fault.Fault
}

func (p pset) ID() string           { return p.id }
func (p pset) Parts() []fault.Fault { return p.parts }

// buildScratch is one worker's reusable state for Build.
type buildScratch struct {
	batch   engine.Batch
	psets   []fault.Set
	storage []pset
	factors []float64
}

// Build samples the tolerance distribution and assembles the cloud
// set for every fault set in the dictionary's universe plus any extra
// sets (double faults). Deterministic for a fixed cfg.Seed at every
// worker count.
func Build(ctx context.Context, d *dictionary.Dictionary, omegas []float64, extra []fault.Set, cfg Config) (*CloudSet, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: probdiag: nil dictionary", rerr.ErrBadConfig)
	}
	if len(omegas) == 0 {
		return nil, fmt.Errorf("%w: probdiag: no frequencies", rerr.ErrBadConfig)
	}
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("%w: probdiag: %d MC samples < 1", rerr.ErrBadConfig, cfg.Samples)
	}
	if cfg.Sigma < 0 || cfg.Sigma > 0.3 {
		return nil, fmt.Errorf("%w: probdiag: tolerance sigma %g outside [0, 0.3]", rerr.ErrBadConfig, cfg.Sigma)
	}
	if len(cfg.NoiseSigma) != 0 && len(cfg.NoiseSigma) != len(omegas) {
		return nil, fmt.Errorf("%w: probdiag: %d noise sigmas for %d frequencies",
			rerr.ErrBadConfig, len(cfg.NoiseSigma), len(omegas))
	}
	threshold := cfg.OverlapThreshold
	if threshold == 0 {
		threshold = DefaultOverlapThreshold
	}
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("%w: probdiag: overlap threshold %g outside (0, 1]", rerr.ErrBadConfig, threshold)
	}

	eng := d.Engine()
	// Perturbable components: every valued element with a template
	// slot, in the golden circuit's schematic order — the same order
	// fault.Tolerance.Perturb walks, so draws line up with it.
	tmpl := eng.Template()
	var perturb []string
	for _, name := range d.Golden().ValuedNames() {
		if tmpl.HasSlot(name) {
			perturb = append(perturb, name)
		}
	}
	if len(perturb) == 0 {
		return nil, fmt.Errorf("%w: probdiag: circuit has no perturbable components", rerr.ErrBadConfig)
	}

	var sets []fault.Set
	for _, f := range d.Universe().Faults() {
		sets = append(sets, f)
	}
	sets = append(sets, extra...)
	if len(sets) == 0 {
		return nil, fmt.Errorf("%w: probdiag: empty fault universe", rerr.ErrBadConfig)
	}

	nsets, nfreq, samples := len(sets), len(omegas), cfg.Samples
	flat := make([]float64, samples*nsets*nfreq)
	sampleErrs := make([]error, samples)

	var pool sync.Pool
	pool.New = func() any {
		sc := &buildScratch{
			psets:   make([]fault.Set, nsets),
			storage: make([]pset, nsets),
			factors: make([]float64, len(perturb)),
		}
		return sc
	}

	runSample := func(i int) error {
		sc := pool.Get().(*buildScratch)
		defer pool.Put(sc)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		for ci := range perturb {
			g := rng.NormFloat64()
			if g > 3 {
				g = 3
			}
			if g < -3 {
				g = -3
			}
			sc.factors[ci] = 1 + cfg.Sigma*g
		}
		for si, set := range sets {
			ps := &sc.storage[si]
			ps.id = set.ID()
			ps.parts = ps.parts[:0]
			parts := set.Parts()
			for ci, name := range perturb {
				scale := sc.factors[ci]
				for _, p := range parts {
					if p.Component == name {
						scale *= p.Scale()
						break
					}
				}
				if dev := scale - 1; dev != 0 {
					ps.parts = append(ps.parts, fault.Fault{Component: name, Deviation: dev})
				}
			}
			sc.psets[si] = *ps
		}
		err := eng.BatchResponsesSetsInto(ctx, sc.psets, omegas, 1, &sc.batch)
		if err != nil {
			if errors.Is(err, rerr.ErrCanceled) {
				return err
			}
			sampleErrs[i] = err // singular draw: drop the sample, keep building
			return nil
		}
		base := i * nsets * nfreq
		for si, row := range sc.batch.Mags {
			off := base + si*nfreq
			for j, m := range row {
				flat[off+j] = m - sc.batch.Golden[j]
			}
		}
		return nil
	}
	if err := montecarlo.ForEach(ctx, samples, cfg.Workers, runSample); err != nil {
		return nil, err
	}

	failed := 0
	var firstErr error
	for _, e := range sampleErrs {
		if e != nil {
			failed++
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	if failed == samples {
		return nil, fmt.Errorf("probdiag: all %d MC samples failed: %w", samples, firstErr)
	}

	cs := &CloudSet{
		Omegas:           append([]float64(nil), omegas...),
		Sigma:            cfg.Sigma,
		Samples:          samples,
		Seed:             cfg.Seed,
		FailedSamples:    failed,
		OverlapThreshold: threshold,
		Clouds:           make([]Cloud, nsets),
	}
	if len(cfg.NoiseSigma) != 0 {
		cs.NoiseVar = make([]float64, nfreq)
		for j, s := range cfg.NoiseSigma {
			cs.NoiseVar[j] = s * s
		}
	}

	// Sequential reduce in (set, sample) order: bit-identical for any
	// worker count. Two-pass mean/variance over the surviving samples.
	var extent float64
	for si, set := range sets {
		parts := set.Parts()
		c := &cs.Clouds[si]
		c.ID = set.ID()
		c.Key = diagnosis.SetKey(set)
		c.Components = make([]string, len(parts))
		c.Deviations = make([]float64, len(parts))
		for k, p := range parts {
			c.Components[k] = p.Component
			c.Deviations[k] = p.Deviation
		}
		c.Mean = make([]float64, nfreq)
		c.Var = make([]float64, nfreq)
		c.Group = -1
		for j := 0; j < nfreq; j++ {
			var sum float64
			n := 0
			for i := 0; i < samples; i++ {
				if sampleErrs[i] != nil {
					continue
				}
				sum += flat[i*nsets*nfreq+si*nfreq+j]
				n++
			}
			mean := sum / float64(n)
			c.Mean[j] = mean
			if n >= 2 {
				var acc float64
				for i := 0; i < samples; i++ {
					if sampleErrs[i] != nil {
						continue
					}
					dv := flat[i*nsets*nfreq+si*nfreq+j] - mean
					acc += dv * dv
				}
				c.Var[j] = acc / float64(n-1)
			}
			if a := math.Abs(mean); a > extent {
				extent = a
			}
		}
	}
	if extent == 0 {
		extent = 1
	}
	cs.VarFloor = (varFloorRel * extent) * (varFloorRel * extent)

	cs.buildGroups()
	return cs, nil
}

// totalVar is the scoring variance of cloud c at frequency j: cloud
// spread + measurement noise + floor.
func (cs *CloudSet) totalVar(c *Cloud, j int) float64 {
	v := c.Var[j] + cs.VarFloor
	if len(cs.NoiseVar) != 0 {
		v += cs.NoiseVar[j]
	}
	return v
}

// buildGroups partitions the clouds into ambiguity groups: union-find
// over pairs whose Bhattacharyya coefficient exp(−D_B) meets the
// threshold, with measurement noise and the variance floor inside the
// per-frequency variances (the same σ² the likelihood uses).
func (cs *CloudSet) buildGroups() {
	n := len(cs.Clouds)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	logThresh := math.Log(cs.OverlapThreshold) // overlap ≥ τ  ⇔  D_B ≤ −ln τ
	for a := 0; a < n; a++ {
		ca := &cs.Clouds[a]
		for b := a + 1; b < n; b++ {
			cb := &cs.Clouds[b]
			var db float64
			for j := range cs.Omegas {
				va, vb := cs.totalVar(ca, j), cs.totalVar(cb, j)
				avg := 0.5 * (va + vb)
				dm := ca.Mean[j] - cb.Mean[j]
				db += dm * dm / (8 * avg)
				db += 0.5 * math.Log(avg/math.Sqrt(va*vb))
				if db > -logThresh {
					break // already past the cut; no need to finish the sum
				}
			}
			if db <= -logThresh {
				ra, rb := find(a), find(b)
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
	}
	members := make(map[int][]int)
	for i := range cs.Clouds {
		r := find(i)
		members[r] = append(members[r], i)
	}
	roots := make([]int, 0, len(members))
	for r, m := range members {
		if len(m) >= 2 {
			roots = append(roots, r)
		}
	}
	sort.Ints(roots) // deterministic group order: first member index
	cs.Groups = nil
	for gi, r := range roots {
		ids := make([]string, 0, len(members[r]))
		for _, i := range members[r] {
			cs.Clouds[i].Group = gi
			ids = append(ids, cs.Clouds[i].ID)
		}
		cs.Groups = append(cs.Groups, ids)
	}
}

// Score implements diagnosis.CloudModel: Gaussian log-likelihood of
// the point under every cloud, softmax posterior under equal priors,
// aggregation per component-set key, and the winner's ambiguity
// group.
func (cs *CloudSet) Score(point []float64) (*diagnosis.ProbResult, error) {
	nf := len(cs.Omegas)
	if len(point) != nf {
		return nil, fmt.Errorf("%w: probdiag: point has %d dims, clouds have %d", rerr.ErrBadConfig, len(point), nf)
	}
	n := len(cs.Clouds)
	if n == 0 {
		return nil, fmt.Errorf("%w: probdiag: empty cloud set", rerr.ErrBadConfig)
	}
	ll := make([]float64, n)
	best := 0
	for i := range cs.Clouds {
		c := &cs.Clouds[i]
		var acc float64
		for j := 0; j < nf; j++ {
			v := cs.totalVar(c, j)
			d := point[j] - c.Mean[j]
			acc += d*d/v + math.Log(2*math.Pi*v)
		}
		ll[i] = -0.5 * acc
		if ll[i] > ll[best] {
			best = i
		}
	}
	// Softmax over all clouds (equal priors), shifted by the max for
	// stability; then aggregate per component-set key in cloud order.
	var norm float64
	post := make([]float64, n)
	for i := range ll {
		post[i] = math.Exp(ll[i] - ll[best])
		norm += post[i]
	}
	type agg struct {
		prob    float64
		bestIdx int
	}
	order := make([]string, 0, n)
	byKey := make(map[string]*agg, n)
	for i := range cs.Clouds {
		post[i] /= norm
		k := cs.Clouds[i].Key
		a, ok := byKey[k]
		if !ok {
			a = &agg{bestIdx: i}
			byKey[k] = a
			order = append(order, k)
		}
		a.prob += post[i]
		if ll[i] > ll[a.bestIdx] {
			a.bestIdx = i
		}
	}
	res := &diagnosis.ProbResult{
		Candidates: make([]diagnosis.ProbCandidate, 0, len(order)),
		Point:      append([]float64(nil), point...),
	}
	for _, k := range order {
		a := byKey[k]
		c := &cs.Clouds[a.bestIdx]
		res.Candidates = append(res.Candidates, diagnosis.ProbCandidate{
			Key:           k,
			Components:    c.Components,
			ID:            c.ID,
			Deviations:    c.Deviations,
			LogLikelihood: ll[a.bestIdx],
			Probability:   a.prob,
		})
	}
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := &res.Candidates[i], &res.Candidates[j]
		if a.Probability != b.Probability {
			return a.Probability > b.Probability
		}
		if a.LogLikelihood != b.LogLikelihood {
			return a.LogLikelihood > b.LogLikelihood
		}
		return a.Key < b.Key
	})
	res.Confidence = res.Candidates[0].Probability
	if g := cs.Clouds[best].Group; g >= 0 {
		res.AmbiguityGroup = append([]string(nil), cs.Groups[g]...)
	}
	return res, nil
}
