// Package sliceutil holds the one slice idiom the reuse APIs
// (engine.BatchResponsesInto, dictionary.SignaturesInto,
// trajectory.Builder) all rely on: reslicing caller-owned backing
// storage instead of reallocating it.
package sliceutil

// Grow reslices s to length n, reallocating only when the capacity is
// insufficient. Contents are unspecified: callers overwrite every
// element (or build the slice back up from s[:0] within the returned
// capacity). This is what keeps steady-state reuse paths
// allocation-free — after the first call at a given size, every
// subsequent Grow is a pure reslice.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
