// Package circuit models lumped linear analog networks as named elements
// connected at named nodes, with Modified Nodal Analysis (MNA) stamping
// for AC analysis. It is the substrate the paper's fault simulation runs
// on: faults are injected by cloning a circuit and scaling one element's
// value.
package circuit

import (
	"fmt"

	"repro/internal/numeric"
)

// GroundName is the canonical name of the reference node. "gnd" and "GND"
// are accepted as aliases when adding elements.
const GroundName = "0"

// Stamp carries the in-progress MNA system an element contributes to.
//
// Row/column convention: indices 0..n-1 are the non-ground node voltages;
// indices n.. are auxiliary branch currents (voltage sources, inductors,
// controlled voltage sources, opamp outputs). Ground maps to index -1 and
// all its stamps are dropped.
type Stamp struct {
	// A is the (n+aux)×(n+aux) complex MNA matrix.
	A *numeric.Matrix
	// B is the right-hand side (source) vector.
	B []complex128
	// S is the complex frequency, jω for AC analysis.
	S complex128

	nodeOf map[string]int
	auxOf  map[string]int
}

// NodeIndex returns the matrix index of a node, -1 for ground.
func (st *Stamp) NodeIndex(name string) int {
	if isGround(name) {
		return -1
	}
	i, ok := st.nodeOf[name]
	if !ok {
		panic(fmt.Sprintf("circuit: stamping unknown node %q", name))
	}
	return i
}

// AuxIndex returns the auxiliary-variable row of a named element.
func (st *Stamp) AuxIndex(elem string) (int, bool) {
	i, ok := st.auxOf[elem]
	return i, ok
}

// AddA accumulates v into A[i][j], silently dropping ground (-1) indices.
func (st *Stamp) AddA(i, j int, v complex128) {
	if i < 0 || j < 0 {
		return
	}
	st.A.Add(i, j, v)
}

// AddB accumulates v into B[i], dropping ground.
func (st *Stamp) AddB(i int, v complex128) {
	if i < 0 {
		return
	}
	st.B[i] += v
}

// Element is any circuit component that can be stamped into an MNA system.
type Element interface {
	// Name returns the unique designator, e.g. "R3".
	Name() string
	// Nodes returns every node the element touches, in element-specific
	// order.
	Nodes() []string
	// NumAux returns how many auxiliary current variables the element
	// needs (0 for admittance-stamped parts).
	NumAux() int
	// Stamp adds the element's contribution at frequency st.S.
	Stamp(st *Stamp) error
	// Clone returns a deep copy (used for fault injection).
	Clone() Element
}

// Valued is implemented by elements with a single scalar parameter that a
// parametric fault can deviate (resistance, capacitance, inductance, or a
// controlled-source gain).
type Valued interface {
	Element
	Value() float64
	SetValue(v float64) error
}

func isGround(name string) bool {
	return name == "0" || name == "gnd" || name == "GND"
}

// twoTerminal covers the shared boilerplate of R, C, L, V, I.
type twoTerminal struct {
	name string
	a, b string // positive, negative node
}

func (t *twoTerminal) Name() string    { return t.name }
func (t *twoTerminal) Nodes() []string { return []string{t.a, t.b} }

// Resistor is an ideal linear resistor.
type Resistor struct {
	twoTerminal
	Ohms float64
}

// NewResistor returns a resistor of value ohms between nodes a and b.
func NewResistor(name, a, b string, ohms float64) *Resistor {
	return &Resistor{twoTerminal{name, a, b}, ohms}
}

// NumAux implements Element.
func (r *Resistor) NumAux() int { return 0 }

// Value implements Valued.
func (r *Resistor) Value() float64 { return r.Ohms }

// SetValue implements Valued.
func (r *Resistor) SetValue(v float64) error {
	if v <= 0 {
		return fmt.Errorf("circuit: %s: resistance must be positive, got %g", r.name, v)
	}
	r.Ohms = v
	return nil
}

// Clone implements Element.
func (r *Resistor) Clone() Element { c := *r; return &c }

// Stamp implements Element: admittance 1/R between the terminals.
func (r *Resistor) Stamp(st *Stamp) error {
	if r.Ohms <= 0 {
		return fmt.Errorf("circuit: %s: nonpositive resistance %g", r.name, r.Ohms)
	}
	g := complex(1/r.Ohms, 0)
	i, j := st.NodeIndex(r.a), st.NodeIndex(r.b)
	st.AddA(i, i, g)
	st.AddA(j, j, g)
	st.AddA(i, j, -g)
	st.AddA(j, i, -g)
	return nil
}

// Capacitor is an ideal linear capacitor.
type Capacitor struct {
	twoTerminal
	Farads float64
}

// NewCapacitor returns a capacitor of value farads between a and b.
func NewCapacitor(name, a, b string, farads float64) *Capacitor {
	return &Capacitor{twoTerminal{name, a, b}, farads}
}

// NumAux implements Element.
func (c *Capacitor) NumAux() int { return 0 }

// Value implements Valued.
func (c *Capacitor) Value() float64 { return c.Farads }

// SetValue implements Valued.
func (c *Capacitor) SetValue(v float64) error {
	if v <= 0 {
		return fmt.Errorf("circuit: %s: capacitance must be positive, got %g", c.name, v)
	}
	c.Farads = v
	return nil
}

// Clone implements Element.
func (c *Capacitor) Clone() Element { cp := *c; return &cp }

// Stamp implements Element: admittance sC.
func (c *Capacitor) Stamp(st *Stamp) error {
	if c.Farads <= 0 {
		return fmt.Errorf("circuit: %s: nonpositive capacitance %g", c.name, c.Farads)
	}
	y := st.S * complex(c.Farads, 0)
	i, j := st.NodeIndex(c.a), st.NodeIndex(c.b)
	st.AddA(i, i, y)
	st.AddA(j, j, y)
	st.AddA(i, j, -y)
	st.AddA(j, i, -y)
	return nil
}

// Inductor is an ideal linear inductor. It is stamped with an auxiliary
// branch current so that DC (s = 0) remains solvable as a short.
type Inductor struct {
	twoTerminal
	Henries float64
}

// NewInductor returns an inductor of value henries between a and b.
func NewInductor(name, a, b string, henries float64) *Inductor {
	return &Inductor{twoTerminal{name, a, b}, henries}
}

// NumAux implements Element.
func (l *Inductor) NumAux() int { return 1 }

// Value implements Valued.
func (l *Inductor) Value() float64 { return l.Henries }

// SetValue implements Valued.
func (l *Inductor) SetValue(v float64) error {
	if v <= 0 {
		return fmt.Errorf("circuit: %s: inductance must be positive, got %g", l.name, v)
	}
	l.Henries = v
	return nil
}

// Clone implements Element.
func (l *Inductor) Clone() Element { c := *l; return &c }

// Stamp implements Element: V(a) - V(b) - sL·I = 0 with branch current I.
func (l *Inductor) Stamp(st *Stamp) error {
	if l.Henries <= 0 {
		return fmt.Errorf("circuit: %s: nonpositive inductance %g", l.name, l.Henries)
	}
	k, ok := st.AuxIndex(l.name)
	if !ok {
		return fmt.Errorf("circuit: %s: missing aux variable", l.name)
	}
	i, j := st.NodeIndex(l.a), st.NodeIndex(l.b)
	// KCL contributions of the branch current.
	st.AddA(i, k, 1)
	st.AddA(j, k, -1)
	// Branch equation.
	st.AddA(k, i, 1)
	st.AddA(k, j, -1)
	st.AddA(k, k, -st.S*complex(l.Henries, 0))
	return nil
}

// VSource is an independent AC voltage source with complex amplitude
// (magnitude and phase of the phasor).
type VSource struct {
	twoTerminal
	Amplitude complex128
}

// NewVSource returns a voltage source of the given phasor amplitude with
// positive terminal a.
func NewVSource(name, a, b string, amplitude complex128) *VSource {
	return &VSource{twoTerminal{name, a, b}, amplitude}
}

// NumAux implements Element.
func (v *VSource) NumAux() int { return 1 }

// Clone implements Element.
func (v *VSource) Clone() Element { c := *v; return &c }

// Stamp implements Element: V(a) - V(b) = amplitude with branch current.
func (v *VSource) Stamp(st *Stamp) error {
	k, ok := st.AuxIndex(v.name)
	if !ok {
		return fmt.Errorf("circuit: %s: missing aux variable", v.name)
	}
	i, j := st.NodeIndex(v.a), st.NodeIndex(v.b)
	st.AddA(i, k, 1)
	st.AddA(j, k, -1)
	st.AddA(k, i, 1)
	st.AddA(k, j, -1)
	st.AddB(k, v.Amplitude)
	return nil
}

// ISource is an independent AC current source; current flows from node a
// through the source to node b (i.e. it injects into b).
type ISource struct {
	twoTerminal
	Amplitude complex128
}

// NewISource returns a current source of the given phasor amplitude.
func NewISource(name, a, b string, amplitude complex128) *ISource {
	return &ISource{twoTerminal{name, a, b}, amplitude}
}

// NumAux implements Element.
func (s *ISource) NumAux() int { return 0 }

// Clone implements Element.
func (s *ISource) Clone() Element { c := *s; return &c }

// Stamp implements Element.
func (s *ISource) Stamp(st *Stamp) error {
	i, j := st.NodeIndex(s.a), st.NodeIndex(s.b)
	st.AddB(i, -s.Amplitude)
	st.AddB(j, s.Amplitude)
	return nil
}
