package circuit

import "fmt"

// VCVS is a voltage-controlled voltage source (SPICE "E" element):
// V(outP) - V(outN) = Gain · (V(ctlP) - V(ctlN)).
type VCVS struct {
	name                   string
	OutP, OutN, CtlP, CtlN string
	Gain                   float64
}

// NewVCVS returns a voltage-controlled voltage source.
func NewVCVS(name, outP, outN, ctlP, ctlN string, gain float64) *VCVS {
	return &VCVS{name: name, OutP: outP, OutN: outN, CtlP: ctlP, CtlN: ctlN, Gain: gain}
}

// Name implements Element.
func (e *VCVS) Name() string { return e.name }

// Nodes implements Element.
func (e *VCVS) Nodes() []string { return []string{e.OutP, e.OutN, e.CtlP, e.CtlN} }

// NumAux implements Element.
func (e *VCVS) NumAux() int { return 1 }

// Value implements Valued.
func (e *VCVS) Value() float64 { return e.Gain }

// SetValue implements Valued. Gains may be any nonzero value (sign flips
// model inverting stages); zero would silence the controlled source and is
// rejected to keep fault deviations meaningful.
func (e *VCVS) SetValue(v float64) error {
	if v == 0 {
		return fmt.Errorf("circuit: %s: zero VCVS gain", e.name)
	}
	e.Gain = v
	return nil
}

// Clone implements Element.
func (e *VCVS) Clone() Element { c := *e; return &c }

// Stamp implements Element.
func (e *VCVS) Stamp(st *Stamp) error {
	k, ok := st.AuxIndex(e.name)
	if !ok {
		return fmt.Errorf("circuit: %s: missing aux variable", e.name)
	}
	op, on := st.NodeIndex(e.OutP), st.NodeIndex(e.OutN)
	cp, cn := st.NodeIndex(e.CtlP), st.NodeIndex(e.CtlN)
	st.AddA(op, k, 1)
	st.AddA(on, k, -1)
	st.AddA(k, op, 1)
	st.AddA(k, on, -1)
	st.AddA(k, cp, complex(-e.Gain, 0))
	st.AddA(k, cn, complex(e.Gain, 0))
	return nil
}

// VCCS is a voltage-controlled current source (SPICE "G"):
// I(outP→outN) = Gm · (V(ctlP) - V(ctlN)).
type VCCS struct {
	name                   string
	OutP, OutN, CtlP, CtlN string
	Gm                     float64
}

// NewVCCS returns a voltage-controlled current source with
// transconductance gm.
func NewVCCS(name, outP, outN, ctlP, ctlN string, gm float64) *VCCS {
	return &VCCS{name: name, OutP: outP, OutN: outN, CtlP: ctlP, CtlN: ctlN, Gm: gm}
}

// Name implements Element.
func (g *VCCS) Name() string { return g.name }

// Nodes implements Element.
func (g *VCCS) Nodes() []string { return []string{g.OutP, g.OutN, g.CtlP, g.CtlN} }

// NumAux implements Element.
func (g *VCCS) NumAux() int { return 0 }

// Value implements Valued.
func (g *VCCS) Value() float64 { return g.Gm }

// SetValue implements Valued.
func (g *VCCS) SetValue(v float64) error {
	if v == 0 {
		return fmt.Errorf("circuit: %s: zero transconductance", g.name)
	}
	g.Gm = v
	return nil
}

// Clone implements Element.
func (g *VCCS) Clone() Element { c := *g; return &c }

// Stamp implements Element.
func (g *VCCS) Stamp(st *Stamp) error {
	op, on := st.NodeIndex(g.OutP), st.NodeIndex(g.OutN)
	cp, cn := st.NodeIndex(g.CtlP), st.NodeIndex(g.CtlN)
	gm := complex(g.Gm, 0)
	st.AddA(op, cp, gm)
	st.AddA(op, cn, -gm)
	st.AddA(on, cp, -gm)
	st.AddA(on, cn, gm)
	return nil
}

// CCVS is a current-controlled voltage source (SPICE "H"); the controlling
// current is the branch current of a named element that has an auxiliary
// variable (a VSource, VCVS, Inductor, or IdealOpAmp output):
// V(outP) - V(outN) = R · I(control).
type CCVS struct {
	name       string
	OutP, OutN string
	Control    string // name of the element whose branch current controls
	R          float64
}

// NewCCVS returns a current-controlled voltage source with transresistance
// r, controlled by the branch current of element control.
func NewCCVS(name, outP, outN, control string, r float64) *CCVS {
	return &CCVS{name: name, OutP: outP, OutN: outN, Control: control, R: r}
}

// Name implements Element.
func (h *CCVS) Name() string { return h.name }

// Nodes implements Element.
func (h *CCVS) Nodes() []string { return []string{h.OutP, h.OutN} }

// NumAux implements Element.
func (h *CCVS) NumAux() int { return 1 }

// Value implements Valued.
func (h *CCVS) Value() float64 { return h.R }

// SetValue implements Valued.
func (h *CCVS) SetValue(v float64) error {
	if v == 0 {
		return fmt.Errorf("circuit: %s: zero transresistance", h.name)
	}
	h.R = v
	return nil
}

// Clone implements Element.
func (h *CCVS) Clone() Element { c := *h; return &c }

// Stamp implements Element.
func (h *CCVS) Stamp(st *Stamp) error {
	k, ok := st.AuxIndex(h.name)
	if !ok {
		return fmt.Errorf("circuit: %s: missing aux variable", h.name)
	}
	kc, ok := st.AuxIndex(h.Control)
	if !ok {
		return fmt.Errorf("circuit: %s: controlling element %q has no branch current", h.name, h.Control)
	}
	op, on := st.NodeIndex(h.OutP), st.NodeIndex(h.OutN)
	st.AddA(op, k, 1)
	st.AddA(on, k, -1)
	st.AddA(k, op, 1)
	st.AddA(k, on, -1)
	st.AddA(k, kc, complex(-h.R, 0))
	return nil
}

// CCCS is a current-controlled current source (SPICE "F"):
// I(outP→outN) = Gain · I(control).
type CCCS struct {
	name       string
	OutP, OutN string
	Control    string
	Gain       float64
}

// NewCCCS returns a current-controlled current source.
func NewCCCS(name, outP, outN, control string, gain float64) *CCCS {
	return &CCCS{name: name, OutP: outP, OutN: outN, Control: control, Gain: gain}
}

// Name implements Element.
func (f *CCCS) Name() string { return f.name }

// Nodes implements Element.
func (f *CCCS) Nodes() []string { return []string{f.OutP, f.OutN} }

// NumAux implements Element.
func (f *CCCS) NumAux() int { return 0 }

// Value implements Valued.
func (f *CCCS) Value() float64 { return f.Gain }

// SetValue implements Valued.
func (f *CCCS) SetValue(v float64) error {
	if v == 0 {
		return fmt.Errorf("circuit: %s: zero current gain", f.name)
	}
	f.Gain = v
	return nil
}

// Clone implements Element.
func (f *CCCS) Clone() Element { c := *f; return &c }

// Stamp implements Element.
func (f *CCCS) Stamp(st *Stamp) error {
	kc, ok := st.AuxIndex(f.Control)
	if !ok {
		return fmt.Errorf("circuit: %s: controlling element %q has no branch current", f.name, f.Control)
	}
	op, on := st.NodeIndex(f.OutP), st.NodeIndex(f.OutN)
	st.AddA(op, kc, complex(f.Gain, 0))
	st.AddA(on, kc, complex(-f.Gain, 0))
	return nil
}

// IdealOpAmp is a nullor-modeled operational amplifier: infinite gain,
// infinite input impedance, zero output impedance. The MNA constraint is
// V(inP) = V(inN) with an unconstrained output branch current.
type IdealOpAmp struct {
	name          string
	InP, InN, Out string
}

// NewIdealOpAmp returns an ideal opamp. Out is driven so that
// V(InP) = V(InN) in any stable feedback configuration.
func NewIdealOpAmp(name, inP, inN, out string) *IdealOpAmp {
	return &IdealOpAmp{name: name, InP: inP, InN: inN, Out: out}
}

// Name implements Element.
func (o *IdealOpAmp) Name() string { return o.name }

// Nodes implements Element.
func (o *IdealOpAmp) Nodes() []string { return []string{o.InP, o.InN, o.Out} }

// NumAux implements Element.
func (o *IdealOpAmp) NumAux() int { return 1 }

// Clone implements Element.
func (o *IdealOpAmp) Clone() Element { c := *o; return &c }

// Stamp implements Element: output current is the aux variable; the aux
// row enforces the virtual short V(InP) - V(InN) = 0.
func (o *IdealOpAmp) Stamp(st *Stamp) error {
	k, ok := st.AuxIndex(o.name)
	if !ok {
		return fmt.Errorf("circuit: %s: missing aux variable", o.name)
	}
	out := st.NodeIndex(o.Out)
	ip, in := st.NodeIndex(o.InP), st.NodeIndex(o.InN)
	st.AddA(out, k, 1)
	st.AddA(k, ip, 1)
	st.AddA(k, in, -1)
	return nil
}
