package circuit

import (
	"fmt"
	"sort"

	"repro/internal/numeric"
)

// Circuit is a named collection of elements connected at named nodes.
// Node names are created implicitly the first time an element touches
// them; "0", "gnd" and "GND" all denote the reference node.
type Circuit struct {
	name     string
	elements []Element
	byName   map[string]Element
	nodeSet  map[string]bool // non-ground node names
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{
		name:    name,
		byName:  make(map[string]Element),
		nodeSet: make(map[string]bool),
	}
}

// Name returns the circuit's name.
func (c *Circuit) Name() string { return c.name }

// Add inserts an element. Element names must be unique within the circuit.
func (c *Circuit) Add(e Element) error {
	if e.Name() == "" {
		return fmt.Errorf("circuit %s: element with empty name", c.name)
	}
	if _, dup := c.byName[e.Name()]; dup {
		return fmt.Errorf("circuit %s: duplicate element name %q", c.name, e.Name())
	}
	for _, n := range e.Nodes() {
		if n == "" {
			return fmt.Errorf("circuit %s: element %s has an empty node name", c.name, e.Name())
		}
		if !isGround(n) {
			c.nodeSet[n] = true
		}
	}
	c.elements = append(c.elements, e)
	c.byName[e.Name()] = e
	return nil
}

// MustAdd is Add that panics on error, for programmatic circuit builders
// whose inputs are compile-time constants.
func (c *Circuit) MustAdd(e Element) {
	if err := c.Add(e); err != nil {
		panic(err)
	}
}

// Element returns the element with the given name.
func (c *Circuit) Element(name string) (Element, bool) {
	e, ok := c.byName[name]
	return e, ok
}

// Elements returns the elements in insertion order. The caller must not
// mutate the returned slice.
func (c *Circuit) Elements() []Element { return c.elements }

// ElementNames returns all element names in insertion order.
func (c *Circuit) ElementNames() []string {
	out := make([]string, len(c.elements))
	for i, e := range c.elements {
		out[i] = e.Name()
	}
	return out
}

// ValuedNames returns the names of elements that accept parametric faults
// (those implementing Valued), in insertion order.
func (c *Circuit) ValuedNames() []string {
	var out []string
	for _, e := range c.elements {
		if _, ok := e.(Valued); ok {
			out = append(out, e.Name())
		}
	}
	return out
}

// Nodes returns the sorted non-ground node names.
func (c *Circuit) Nodes() []string {
	out := make([]string, 0, len(c.nodeSet))
	for n := range c.nodeSet {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the count of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeSet) }

// HasNode reports whether the circuit references the node (ground counts
// as present whenever any element exists).
func (c *Circuit) HasNode(name string) bool {
	if isGround(name) {
		return len(c.elements) > 0
	}
	return c.nodeSet[name]
}

// Clone returns a deep copy of the circuit. Fault injection clones the
// golden circuit and perturbs one element, leaving the original pristine.
func (c *Circuit) Clone() *Circuit {
	out := New(c.name)
	for _, e := range c.elements {
		// Elements were validated on first Add; re-adding clones cannot
		// fail.
		out.MustAdd(e.Clone())
	}
	return out
}

// SetValue sets the scalar parameter of a Valued element by name.
func (c *Circuit) SetValue(name string, v float64) error {
	e, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("circuit %s: no element %q", c.name, name)
	}
	val, ok := e.(Valued)
	if !ok {
		return fmt.Errorf("circuit %s: element %q has no scalar value", c.name, name)
	}
	return val.SetValue(v)
}

// Value returns the scalar parameter of a Valued element by name.
func (c *Circuit) Value(name string) (float64, error) {
	e, ok := c.byName[name]
	if !ok {
		return 0, fmt.Errorf("circuit %s: no element %q", c.name, name)
	}
	val, ok := e.(Valued)
	if !ok {
		return 0, fmt.Errorf("circuit %s: element %q has no scalar value", c.name, name)
	}
	return val.Value(), nil
}

// ScaleValue multiplies the scalar parameter of a Valued element by k —
// the primitive behind parametric fault injection.
func (c *Circuit) ScaleValue(name string, k float64) error {
	v, err := c.Value(name)
	if err != nil {
		return err
	}
	return c.SetValue(name, v*k)
}

// System describes an assembled MNA system: the unknown ordering and a
// builder that fills a matrix for a given complex frequency.
type System struct {
	circ      *Circuit
	nodeOf    map[string]int
	auxOf     map[string]int
	nodeNames []string // index → name
	size      int
}

// Assemble validates the circuit and fixes the MNA variable ordering.
// The same System can then build stamped matrices at many frequencies.
func (c *Circuit) Assemble() (*System, error) {
	if len(c.elements) == 0 {
		return nil, fmt.Errorf("circuit %s: empty circuit", c.name)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	names := c.Nodes()
	nodeOf := make(map[string]int, len(names))
	for i, n := range names {
		nodeOf[n] = i
	}
	auxOf := make(map[string]int)
	next := len(names)
	for _, e := range c.elements {
		if e.NumAux() > 0 {
			auxOf[e.Name()] = next
			next += e.NumAux()
		}
	}
	return &System{circ: c, nodeOf: nodeOf, auxOf: auxOf, nodeNames: names, size: next}, nil
}

// Size returns the MNA system order (nodes + auxiliary currents).
func (s *System) Size() int { return s.size }

// NodeIndex returns the matrix index of a node, -1 for ground, and an
// error for unknown nodes.
func (s *System) NodeIndex(name string) (int, error) {
	if isGround(name) {
		return -1, nil
	}
	i, ok := s.nodeOf[name]
	if !ok {
		return 0, fmt.Errorf("circuit %s: unknown node %q", s.circ.name, name)
	}
	return i, nil
}

// BranchIndex returns the auxiliary-variable index of a named element.
func (s *System) BranchIndex(elem string) (int, bool) {
	i, ok := s.auxOf[elem]
	return i, ok
}

// NewStamp returns a Stamp that writes into caller-provided storage at
// complex frequency sFreq, using this system's variable ordering. It
// lets other analyses (e.g. transient companion models) reuse the
// elements' stamp logic.
func (s *System) NewStamp(a *numeric.Matrix, b []complex128, sFreq complex128) (*Stamp, error) {
	if a.Rows() != s.size || a.Cols() != s.size || len(b) != s.size {
		return nil, fmt.Errorf("circuit %s: stamp storage %dx%d/%d does not match system size %d",
			s.circ.name, a.Rows(), a.Cols(), len(b), s.size)
	}
	return &Stamp{A: a, B: b, S: sFreq, nodeOf: s.nodeOf, auxOf: s.auxOf}, nil
}

// StampAt builds the MNA matrix and RHS at complex frequency sFreq.
func (s *System) StampAt(sFreq complex128) (*numeric.Matrix, []complex128, error) {
	st, err := s.NewStamp(numeric.NewMatrix(s.size, s.size), make([]complex128, s.size), sFreq)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range s.circ.elements {
		if err := e.Stamp(st); err != nil {
			return nil, nil, err
		}
	}
	return st.A, st.B, nil
}

// Validate checks structural sanity: every non-ground node must be
// touched by at least two element terminals (no dangling nodes), and the
// circuit must reference ground somewhere (otherwise the MNA matrix is
// singular by construction).
func (c *Circuit) Validate() error {
	touch := make(map[string]int)
	groundSeen := false
	for _, e := range c.elements {
		for _, n := range e.Nodes() {
			if isGround(n) {
				groundSeen = true
				continue
			}
			touch[n]++
		}
	}
	if !groundSeen {
		return fmt.Errorf("circuit %s: no element connects to ground", c.name)
	}
	var dangling []string
	for n, cnt := range touch {
		if cnt < 2 {
			dangling = append(dangling, n)
		}
	}
	if len(dangling) > 0 {
		sort.Strings(dangling)
		return fmt.Errorf("circuit %s: dangling nodes (single connection): %v", c.name, dangling)
	}
	// Connectivity: every node must be reachable from ground through
	// element adjacency, or its subnetwork floats and the matrix is
	// singular.
	adj := make(map[string][]string)
	addEdge := func(a, b string) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, e := range c.elements {
		nodes := e.Nodes()
		for i := 0; i+1 < len(nodes); i++ {
			addEdge(canon(nodes[i]), canon(nodes[i+1]))
		}
		// Close the loop so that all terminals of one element are in the
		// same component.
		if len(nodes) > 2 {
			addEdge(canon(nodes[0]), canon(nodes[len(nodes)-1]))
		}
	}
	seen := map[string]bool{GroundName: true}
	stack := []string{GroundName}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	var floating []string
	for n := range c.nodeSet {
		if !seen[n] {
			floating = append(floating, n)
		}
	}
	if len(floating) > 0 {
		sort.Strings(floating)
		return fmt.Errorf("circuit %s: nodes not connected to ground: %v", c.name, floating)
	}
	return nil
}

func canon(n string) string {
	if isGround(n) {
		return GroundName
	}
	return n
}

// Summary returns a human-readable one-line-per-element description.
func (c *Circuit) Summary() string {
	out := fmt.Sprintf("circuit %s: %d elements, %d nodes\n", c.name, len(c.elements), c.NumNodes())
	for _, e := range c.elements {
		if v, ok := e.(Valued); ok {
			out += fmt.Sprintf("  %-8s %v value=%g\n", e.Name(), e.Nodes(), v.Value())
		} else {
			out += fmt.Sprintf("  %-8s %v\n", e.Name(), e.Nodes())
		}
	}
	return out
}
