package circuit

import (
	"strings"
	"testing"

	"repro/internal/numeric"
)

func TestMustAddPanicsOnDuplicate(t *testing.T) {
	c := New("t")
	c.MustAdd(NewResistor("R1", "a", "0", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd did not panic on duplicate")
		}
	}()
	c.MustAdd(NewResistor("R1", "b", "0", 1))
}

func TestNewStampSizeMismatch(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "a", "0", 1))
	c.MustAdd(NewResistor("R1", "a", "0", 1))
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewStamp(numeric.NewMatrix(1, 1), make([]complex128, 1), 0); err == nil {
		t.Fatal("undersized stamp storage accepted")
	}
	if _, err := sys.NewStamp(numeric.NewMatrix(sys.Size(), sys.Size()), make([]complex128, 0), 0); err == nil {
		t.Fatal("undersized rhs accepted")
	}
}

func TestStampUnknownNodePanics(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "a", "0", 1))
	c.MustAdd(NewResistor("R1", "a", "0", 1))
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.NewStamp(numeric.NewMatrix(sys.Size(), sys.Size()), make([]complex128, sys.Size()), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node did not panic")
		}
	}()
	st.NodeIndex("ghost")
}

// missingAuxStamp builds a Stamp whose aux map is empty so every element
// needing a branch current reports its error path.
func missingAuxStamp(t *testing.T, c *Circuit) *Stamp {
	t.Helper()
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	n := sys.Size()
	// A Stamp built from a *different* circuit's system lacks this one's
	// aux entries; emulate by using a fresh minimal circuit.
	other := New("other")
	other.MustAdd(NewVSource("Vx", "a", "0", 1))
	other.MustAdd(NewResistor("Rx", "a", "0", 1))
	// Map the same node names so NodeIndex works but AuxIndex misses.
	_ = n
	osys, err := other.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	st, err := osys.NewStamp(numeric.NewMatrix(osys.Size(), osys.Size()), make([]complex128, osys.Size()), 1i)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStampMissingAuxErrors(t *testing.T) {
	// Elements that require branch currents must error (not panic) when
	// the stamp lacks their aux entry.
	c := New("t")
	c.MustAdd(NewVSource("V9", "a", "0", 1))
	c.MustAdd(NewInductor("L9", "a", "0", 1))
	c.MustAdd(NewVCVS("E9", "a", "0", "a", "0", 2))
	c.MustAdd(NewIdealOpAmp("U9", "a", "0", "a"))
	st := missingAuxStamp(t, c)
	for _, e := range c.Elements() {
		if e.NumAux() == 0 {
			continue
		}
		if err := e.Stamp(st); err == nil {
			t.Errorf("%s: missing aux accepted", e.Name())
		}
	}
}

func TestCCVSAndCCCSMissingControl(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "a", "0", 1))
	c.MustAdd(NewResistor("R1", "a", "0", 1))
	c.MustAdd(NewCCVS("H1", "a", "0", "Vmissing", 10))
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.StampAt(1i); err == nil || !strings.Contains(err.Error(), "Vmissing") {
		t.Fatalf("err = %v, want missing-control complaint", err)
	}

	c2 := New("t2")
	c2.MustAdd(NewVSource("V1", "a", "0", 1))
	c2.MustAdd(NewResistor("R1", "a", "0", 1))
	c2.MustAdd(NewCCCS("F1", "a", "0", "R1", 2)) // R1 has no branch current
	sys2, err := c2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys2.StampAt(1i); err == nil {
		t.Fatal("CCCS controlled by branchless element accepted")
	}
}

func TestAddAAndAddBDropGround(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "a", "0", 1))
	c.MustAdd(NewResistor("R1", "a", "0", 1))
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	a := numeric.NewMatrix(sys.Size(), sys.Size())
	b := make([]complex128, sys.Size())
	st, err := sys.NewStamp(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.AddA(-1, 0, 5)
	st.AddA(0, -1, 5)
	st.AddB(-1, 5)
	if a.MaxAbs() != 0 || b[0] != 0 {
		t.Fatal("ground stamps leaked into the system")
	}
}

func TestElementNamesOrder(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "a", "0", 1))
	c.MustAdd(NewResistor("R1", "a", "b", 1))
	c.MustAdd(NewCapacitor("C1", "b", "0", 1))
	names := c.ElementNames()
	if len(names) != 3 || names[0] != "V1" || names[2] != "C1" {
		t.Fatalf("names = %v", names)
	}
}

func TestHasNodeEmptyCircuit(t *testing.T) {
	c := New("t")
	if c.HasNode("0") {
		t.Fatal("ground present in empty circuit")
	}
}

func TestISourceMetadataAndClone(t *testing.T) {
	s := NewISource("I1", "a", "b", 2+1i)
	if s.NumAux() != 0 || len(s.Nodes()) != 2 {
		t.Fatal("ISource metadata wrong")
	}
	cl := s.Clone().(*ISource)
	cl.Amplitude = 9
	if s.Amplitude != 2+1i {
		t.Fatal("ISource clone aliases")
	}
	v := NewVSource("V1", "a", "b", 1)
	vc := v.Clone().(*VSource)
	vc.Amplitude = 5
	if v.Amplitude != 1 {
		t.Fatal("VSource clone aliases")
	}
	l := NewInductor("L1", "a", "b", 3)
	lc := l.Clone().(*Inductor)
	lc.Henries = 9
	if l.Value() != 3 {
		t.Fatal("Inductor clone aliases")
	}
	o := NewIdealOpAmp("U1", "p", "n", "o")
	oc := o.Clone().(*IdealOpAmp)
	oc.Out = "x"
	if o.Out != "o" {
		t.Fatal("opamp clone aliases")
	}
	for _, e := range []Element{
		NewVCCS("G1", "a", "0", "b", "0", 1).Clone(),
		NewCCVS("H1", "a", "0", "V1", 1).Clone(),
		NewCCCS("F1", "a", "0", "V1", 1).Clone(),
	} {
		if e.Name() == "" {
			t.Fatal("clone lost name")
		}
	}
}

// TestControlledSourceStampsSolve stamps every controlled-source type
// and the ideal opamp through a real assembly and verifies the solved
// voltages directly at the matrix level (the analysis package has the
// behavioural versions; this pins the stamps themselves).
func TestControlledSourceStampsSolve(t *testing.T) {
	c := New("all-controlled")
	c.MustAdd(NewVSource("V1", "in", "0", 1))
	c.MustAdd(NewResistor("R0", "in", "0", 1000)) // control current: 1 mA
	// VCVS ×2 from in.
	c.MustAdd(NewVCVS("E1", "e", "0", "in", "0", 2))
	c.MustAdd(NewResistor("Re", "e", "0", 50))
	// VCCS 3 mS from in into 1 kΩ.
	c.MustAdd(NewVCCS("G1", "g", "0", "in", "0", 3e-3))
	c.MustAdd(NewResistor("Rg", "g", "0", 1000))
	// CCVS 2 kΩ on V1's current.
	c.MustAdd(NewCCVS("H1", "h", "0", "V1", 2000))
	c.MustAdd(NewResistor("Rh", "h", "0", 50))
	// CCCS gain 4 of V1's current into 500 Ω.
	c.MustAdd(NewCCCS("F1", "f", "0", "V1", 4))
	c.MustAdd(NewResistor("Rf", "f", "0", 500))
	// Ideal opamp as a unity follower on node in.
	c.MustAdd(NewIdealOpAmp("U1", "in", "u", "u"))
	c.MustAdd(NewResistor("Ru", "u", "0", 50))

	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := sys.StampAt(0)
	if err != nil {
		t.Fatal(err)
	}
	x, err := numeric.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	get := func(node string) float64 {
		i, err := sys.NodeIndex(node)
		if err != nil {
			t.Fatal(err)
		}
		return real(x[i])
	}
	// V1 supplies R0 (1 mA) only — controlled sources and the follower
	// draw no input current.
	if got := get("e"); got != 2 {
		t.Errorf("VCVS out = %g, want 2", got)
	}
	if got := get("g"); got != -3 {
		t.Errorf("VCCS out = %g, want -3", got)
	}
	// I(V1) = -1 mA by the MNA convention; CCVS gives -2 V, CCCS -2 V
	// into 500 Ω... F pushes 4·I from f to 0: V(f) = 4·(-1mA)·(-500)...
	// assert magnitudes, signs follow the stamp convention.
	if got := get("h"); got != -2 {
		t.Errorf("CCVS out = %g, want -2", got)
	}
	if got := get("f"); got != 2 {
		t.Errorf("CCCS out = %g, want 2", got)
	}
	if got := get("u"); got != 1 {
		t.Errorf("follower out = %g, want 1", got)
	}
}

func TestInductorACBehaviour(t *testing.T) {
	// Direct stamp-level check of the inductor at a frequency: a
	// voltage divider R-L gives |V_L| = ωL/sqrt(R²+(ωL)²).
	c := New("rl")
	c.MustAdd(NewVSource("V1", "in", "0", 1))
	c.MustAdd(NewResistor("R1", "in", "out", 1))
	c.MustAdd(NewInductor("L1", "out", "0", 1))
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	a, b, err := sys.StampAt(complex(0, 2)) // ω = 2
	if err != nil {
		t.Fatal(err)
	}
	x, err := numeric.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	i, err := sys.NodeIndex("out")
	if err != nil {
		t.Fatal(err)
	}
	// |H| = 2/sqrt(5).
	got := x[i]
	mag := real(got)*real(got) + imag(got)*imag(got)
	want := 4.0 / 5.0
	if mag < want-1e-9 || mag > want+1e-9 {
		t.Fatalf("|V_L|² = %g, want %g", mag, want)
	}
}
