package circuit

import (
	"strings"
	"testing"
)

func TestAddAndLookup(t *testing.T) {
	c := New("t")
	if err := c.Add(NewResistor("R1", "in", "out", 1000)); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Element("R1")
	if !ok || e.Name() != "R1" {
		t.Fatal("lookup failed")
	}
	if _, ok := c.Element("R2"); ok {
		t.Fatal("phantom element")
	}
}

func TestAddDuplicateName(t *testing.T) {
	c := New("t")
	if err := c.Add(NewResistor("R1", "a", "0", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(NewResistor("R1", "b", "0", 1)); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAddEmptyNames(t *testing.T) {
	c := New("t")
	if err := c.Add(NewResistor("", "a", "0", 1)); err == nil {
		t.Fatal("empty element name accepted")
	}
	if err := c.Add(NewResistor("R1", "", "0", 1)); err == nil {
		t.Fatal("empty node name accepted")
	}
}

func TestNodesAndGroundAliases(t *testing.T) {
	c := New("t")
	c.MustAdd(NewResistor("R1", "in", "gnd", 1))
	c.MustAdd(NewResistor("R2", "in", "GND", 1))
	c.MustAdd(NewResistor("R3", "in", "0", 1))
	nodes := c.Nodes()
	if len(nodes) != 1 || nodes[0] != "in" {
		t.Fatalf("nodes = %v, want [in]", nodes)
	}
	if !c.HasNode("0") || !c.HasNode("in") || c.HasNode("zz") {
		t.Fatal("HasNode wrong")
	}
}

func TestValueSetScale(t *testing.T) {
	c := New("t")
	c.MustAdd(NewResistor("R1", "a", "0", 100))
	c.MustAdd(NewVSource("V1", "a", "0", 1))
	v, err := c.Value("R1")
	if err != nil || v != 100 {
		t.Fatalf("Value = %v, %v", v, err)
	}
	if err := c.SetValue("R1", 200); err != nil {
		t.Fatal(err)
	}
	if err := c.ScaleValue("R1", 0.5); err != nil {
		t.Fatal(err)
	}
	v, _ = c.Value("R1")
	if v != 100 {
		t.Fatalf("after scale, value = %v, want 100", v)
	}
	if _, err := c.Value("V1"); err == nil {
		t.Fatal("VSource should not be Valued")
	}
	if _, err := c.Value("nope"); err == nil {
		t.Fatal("missing element accepted")
	}
	if err := c.SetValue("R1", -5); err == nil {
		t.Fatal("negative resistance accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New("t")
	c.MustAdd(NewResistor("R1", "a", "0", 100))
	cl := c.Clone()
	if err := cl.SetValue("R1", 999); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Value("R1")
	if v != 100 {
		t.Fatal("clone shares element state")
	}
}

func TestValuedNames(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "in", "0", 1))
	c.MustAdd(NewResistor("R1", "in", "out", 1))
	c.MustAdd(NewCapacitor("C1", "out", "0", 1))
	c.MustAdd(NewIdealOpAmp("U1", "out", "0", "x"))
	c.MustAdd(NewResistor("R2", "x", "out", 1))
	got := c.ValuedNames()
	want := []string{"R1", "C1", "R2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("ValuedNames = %v, want %v", got, want)
	}
}

func TestValidateNoGround(t *testing.T) {
	c := New("t")
	c.MustAdd(NewResistor("R1", "a", "b", 1))
	c.MustAdd(NewResistor("R2", "b", "a", 1))
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "ground") {
		t.Fatalf("err = %v, want ground complaint", err)
	}
}

func TestValidateDangling(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "in", "0", 1))
	c.MustAdd(NewResistor("R1", "in", "dangle", 1))
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "dangle") {
		t.Fatalf("err = %v, want dangling complaint", err)
	}
}

func TestValidateFloating(t *testing.T) {
	c := New("t")
	c.MustAdd(NewVSource("V1", "in", "0", 1))
	c.MustAdd(NewResistor("R1", "in", "0", 1))
	// Floating island: x—y pair not touching ground.
	c.MustAdd(NewResistor("R2", "x", "y", 1))
	c.MustAdd(NewResistor("R3", "y", "x", 1))
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "not connected to ground") {
		t.Fatalf("err = %v, want floating complaint", err)
	}
}

func TestAssembleEmptyAndOrdering(t *testing.T) {
	c := New("t")
	if _, err := c.Assemble(); err == nil {
		t.Fatal("empty circuit assembled")
	}
	c.MustAdd(NewVSource("V1", "in", "0", 1))
	c.MustAdd(NewResistor("R1", "in", "out", 1))
	c.MustAdd(NewCapacitor("C1", "out", "0", 1))
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// 2 nodes + 1 aux (V1).
	if sys.Size() != 3 {
		t.Fatalf("Size = %d, want 3", sys.Size())
	}
	if i, err := sys.NodeIndex("0"); err != nil || i != -1 {
		t.Fatalf("ground index = %d, %v", i, err)
	}
	if _, err := sys.NodeIndex("zz"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, ok := sys.BranchIndex("V1"); !ok {
		t.Fatal("V1 has no branch index")
	}
	if _, ok := sys.BranchIndex("R1"); ok {
		t.Fatal("R1 should have no branch index")
	}
}

func TestStampRejectsBadValues(t *testing.T) {
	for _, e := range []Element{
		NewResistor("R1", "a", "0", 0),
		NewCapacitor("C1", "a", "0", -1),
		NewInductor("L1", "a", "0", 0),
	} {
		c := New("t")
		c.MustAdd(NewVSource("V1", "a", "0", 1))
		c.MustAdd(e)
		sys, err := c.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sys.StampAt(1i); err == nil {
			t.Errorf("%s: bad value stamped without error", e.Name())
		}
	}
}

func TestSetValueRejections(t *testing.T) {
	if err := NewCapacitor("C1", "a", "0", 1).SetValue(0); err == nil {
		t.Fatal("zero capacitance accepted")
	}
	if err := NewInductor("L1", "a", "0", 1).SetValue(-1); err == nil {
		t.Fatal("negative inductance accepted")
	}
	if err := NewVCVS("E1", "a", "0", "b", "0", 2).SetValue(0); err == nil {
		t.Fatal("zero gain accepted")
	}
	if err := NewVCVS("E1", "a", "0", "b", "0", 2).SetValue(-3); err != nil {
		t.Fatal("negative gain rejected")
	}
	if err := NewVCCS("G1", "a", "0", "b", "0", 1).SetValue(0); err == nil {
		t.Fatal("zero gm accepted")
	}
	if err := NewCCVS("H1", "a", "0", "V1", 1).SetValue(0); err == nil {
		t.Fatal("zero transresistance accepted")
	}
	if err := NewCCCS("F1", "a", "0", "V1", 1).SetValue(0); err == nil {
		t.Fatal("zero current gain accepted")
	}
}

func TestSummaryContainsElements(t *testing.T) {
	c := New("demo")
	c.MustAdd(NewVSource("V1", "in", "0", 1))
	c.MustAdd(NewResistor("R1", "in", "0", 50))
	s := c.Summary()
	for _, frag := range []string{"demo", "V1", "R1", "value=50"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestControlledSourceMetadata(t *testing.T) {
	e := NewVCVS("E1", "o", "0", "c", "0", 5)
	if e.Value() != 5 || len(e.Nodes()) != 4 || e.NumAux() != 1 {
		t.Fatal("VCVS metadata wrong")
	}
	g := NewVCCS("G1", "o", "0", "c", "0", 0.1)
	if g.NumAux() != 0 || g.Value() != 0.1 {
		t.Fatal("VCCS metadata wrong")
	}
	h := NewCCVS("H1", "o", "0", "V1", 10)
	if h.NumAux() != 1 || h.Value() != 10 || len(h.Nodes()) != 2 {
		t.Fatal("CCVS metadata wrong")
	}
	f := NewCCCS("F1", "o", "0", "V1", 2)
	if f.NumAux() != 0 || f.Value() != 2 {
		t.Fatal("CCCS metadata wrong")
	}
	o := NewIdealOpAmp("U1", "p", "n", "out")
	if o.NumAux() != 1 || len(o.Nodes()) != 3 {
		t.Fatal("opamp metadata wrong")
	}
}

func TestElementCloneIndependence(t *testing.T) {
	r := NewResistor("R1", "a", "b", 10)
	rc := r.Clone().(*Resistor)
	rc.Ohms = 99
	if r.Ohms != 10 {
		t.Fatal("resistor clone aliases")
	}
	e := NewVCVS("E1", "o", "0", "c", "0", 5)
	ec := e.Clone().(*VCVS)
	ec.Gain = 1
	if e.Gain != 5 {
		t.Fatal("VCVS clone aliases")
	}
}
