package numeric

import (
	"fmt"
	"sort"
)

// This file is the sparse counterpart of the SoA kernel layer: a complex
// sparse LU factorization with split re/im float64 planes, built for the
// circuit-simulation workload where one matrix *pattern* is factored
// numerically many times (once per frequency) with unchanging structure.
// Following the classic circuit solvers (Markowitz-style minimum-fill
// ordering; Davis & Palamadai Natarajan's KLU, designed for exactly this
// refactor-many-times regime), the work splits into
//
//   - AnalyzeSparse — one-time symbolic analysis per pattern: a maximum
//     transversal permutes rows so the diagonal is structurally nonzero,
//     a minimum-degree ordering of the symmetrized pattern keeps fill-in
//     low, and a symbolic elimination computes the static L+U fill
//     pattern and row schedule shared by every numeric factorization;
//
//   - SparseLU.RefactorReuse — numeric-only refactorization into
//     caller-owned storage on the compiled pattern: no pivot search, no
//     index discovery, no allocation in steady state; and
//
//   - SolveBlock / SolveBlockInto / SolveInto — allocation-free
//     triangular sweeps, over a whole multi-RHS Block panel or a single
//     vector, mirroring the SoALU solve surface.
//
// The factorization pivots on the statically chosen diagonal (no
// numerical pivoting), so a refactorization guards every pivot against
// the matrix magnitude and reports ErrSingular when one collapses —
// callers (the engine) fall back to the dense partial-pivot path, which
// keeps behavior compatible with the dense-only engine.

// pivotGuard is the relative threshold below which a statically chosen
// sparse pivot counts as unreliable: |U[i][i]| < pivotGuard·max|A| fails
// the refactorization so the caller can fall back to a dense
// partial-pivot factorization instead of dividing by a value that
// elimination may have reduced to noise.
const pivotGuard = 1e-8

// SparseSymbolic is the compiled symbolic analysis of one sparsity
// pattern: the row/column permutations, the static L+U fill pattern in
// row-major CSR form (permuted indexing, columns sorted per row), and
// the diagonal positions. It is immutable after AnalyzeSparse and safe
// to share across any number of SparseLU factorizations concurrently.
type SparseSymbolic struct {
	n       int
	rowperm []int // permuted row i holds original row rowperm[i]
	colperm []int // permuted col j holds original col colperm[j]
	invRow  []int // original row → permuted row
	invCol  []int // original col → permuted col

	rowStart []int // CSR offsets over the L+U pattern; len n+1
	cols     []int // sorted permuted column indices per row
	diagPos  []int // index into cols of the diagonal entry of each row

	annz int // structural nonzeros of A before fill-in

	// Supernodal schedule (see supernodal.go): maximal runs of permuted
	// rows with nested U patterns and dense in-block L, their dependency
	// DAG, and a level-set order for parallel refactorization. Computed
	// once by AnalyzeSparse, immutable afterwards.
	snStart  []int32 // supernode s covers permuted rows [snStart[s], snStart[s+1]); len S+1
	snOf     []int32 // permuted row → its supernode
	depOff   []int32 // CSR offsets over depSn; len S+1
	depSn    []int32 // ascending dependency supernodes per supernode
	lvlOff   []int32 // CSR offsets over lvlSn; len L+1
	lvlSn    []int32 // supernodes grouped by DAG level, ascending within each
	maxPanel int     // widest supernode (≤ maxPanelWidth)
}

// AnalyzeSparse runs the one-time symbolic analysis for an n×n pattern.
// rows[i] lists the structurally nonzero column indices of row i (any
// order, duplicates allowed, all in [0,n)). It returns an error when the
// pattern is structurally singular (no zero-free diagonal exists), which
// for a circuit matrix means the system itself is singular.
func AnalyzeSparse(n int, rows [][]int) (*SparseSymbolic, error) {
	if n <= 0 {
		return nil, fmt.Errorf("numeric: analyze %dx%d pattern: %w", n, n, ErrDimension)
	}
	if len(rows) != n {
		return nil, fmt.Errorf("numeric: analyze n=%d with %d pattern rows: %w", n, len(rows), ErrDimension)
	}
	// Deduplicated, sorted adjacency; validates indices.
	adj := make([][]int, n)
	annz := 0
	for i, r := range rows {
		seen := make([]bool, n)
		var out []int
		for _, j := range r {
			if j < 0 || j >= n {
				return nil, fmt.Errorf("numeric: pattern entry (%d,%d) out of range n=%d: %w", i, j, n, ErrDimension)
			}
			if !seen[j] {
				seen[j] = true
				out = append(out, j)
			}
		}
		sort.Ints(out)
		adj[i] = out
		annz += len(out)
	}

	match, err := maxTransversal(n, adj)
	if err != nil {
		return nil, err
	}
	// C = Pm·A: permuted row j is original row match[j], so C[j][j] is
	// structurally nonzero. Minimum degree runs on C's symmetrized
	// pattern and yields the symmetric permutation q.
	crows := make([][]int, n)
	for j := 0; j < n; j++ {
		crows[j] = adj[match[j]]
	}
	q := minDegreeOrder(n, crows)

	sym := &SparseSymbolic{
		n:       n,
		rowperm: make([]int, n),
		colperm: make([]int, n),
		invRow:  make([]int, n),
		invCol:  make([]int, n),
		annz:    annz,
	}
	for i := 0; i < n; i++ {
		sym.rowperm[i] = match[q[i]]
		sym.colperm[i] = q[i]
	}
	for i := 0; i < n; i++ {
		sym.invRow[sym.rowperm[i]] = i
		sym.invCol[sym.colperm[i]] = i
	}
	sym.symbolicFill(adj)
	sym.postorderReorder(adj)
	sym.buildSupernodes()
	return sym, nil
}

// postorderReorder relabels the elimination order by a postorder of the
// elimination tree (parent(i) = first off-diagonal column of U(i)) and
// recomputes the symbolic fill. For the (near-)symmetric patterns MNA
// produces this is the classic fill-preserving relabeling that makes
// the members of each fundamental supernode consecutive — without it,
// minimum degree interleaves structurally identical rows and the
// supernodal phase degenerates to singletons. Any relabeling is correct
// (the fill is recomputed); this one only changes which equivalent
// order we factor in.
func (s *SparseSymbolic) postorderReorder(adj [][]int) {
	n := s.n
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		parent[i] = -1
		if s.diagPos[i]+1 < s.rowStart[i+1] {
			parent[i] = s.cols[s.diagPos[i]+1]
		}
	}
	// Children lists, ascending per parent (linked via next[] to avoid
	// per-node slices); roots are visited in ascending order too, so the
	// postorder is deterministic.
	firstKid := make([]int, n)
	next := make([]int, n)
	for i := range firstKid {
		firstKid[i] = -1
		next[i] = -1
	}
	for i := n - 1; i >= 0; i-- { // reverse scan keeps child lists ascending
		if p := parent[i]; p >= 0 {
			next[i] = firstKid[p]
			firstKid[p] = i
		}
	}
	post := make([]int, 0, n)
	stack := make([]int, 0, n)
	iter := make([]int, n) // next unvisited child while i is on the stack
	for r := 0; r < n; r++ {
		if parent[r] >= 0 {
			continue
		}
		stack = append(stack, r)
		iter[r] = firstKid[r]
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if c := iter[v]; c >= 0 {
				iter[v] = next[c]
				stack = append(stack, c)
				iter[c] = firstKid[c]
				continue
			}
			post = append(post, v)
			stack = stack[:len(stack)-1]
		}
	}
	// Compose: new position p factors what was at old position post[p].
	nr := make([]int, n)
	nc := make([]int, n)
	for p, old := range post {
		nr[p] = s.rowperm[old]
		nc[p] = s.colperm[old]
	}
	s.rowperm, s.colperm = nr, nc
	for i := 0; i < n; i++ {
		s.invRow[s.rowperm[i]] = i
		s.invCol[s.colperm[i]] = i
	}
	s.cols = nil
	s.symbolicFill(adj)
}

// maxTransversal finds a perfect matching column→row over the pattern
// (Duff's algorithm: one augmenting-path search per column). match[j] is
// the original row placed at permuted-row position j.
func maxTransversal(n int, adj [][]int) ([]int, error) {
	// rowsOfCol: columns → rows whose pattern contains them.
	rowsOfCol := make([][]int, n)
	for i, r := range adj {
		for _, j := range r {
			rowsOfCol[j] = append(rowsOfCol[j], i)
		}
	}
	matchRow := make([]int, n) // row i → column it is matched to (-1 free)
	match := make([]int, n)    // column j → matched row (-1 free)
	for i := range matchRow {
		matchRow[i] = -1
		match[i] = -1
	}
	visited := make([]int, n) // stamp per augmenting search
	stamp := 0
	var augment func(j int) bool
	augment = func(j int) bool {
		for _, i := range rowsOfCol[j] {
			if visited[i] == stamp {
				continue
			}
			visited[i] = stamp
			if matchRow[i] < 0 || augment(matchRow[i]) {
				matchRow[i] = j
				match[j] = i
				return true
			}
		}
		return false
	}
	// Seed with the structural diagonal: MNA diagonals are the dominant
	// conductance anchors, and an arbitrary transversal that displaces
	// them leaves near-zero off-diagonal static pivots (2-D grid CUTs
	// exposed exactly that — every refactorization tripped the pivot
	// guard). Augmenting paths then complete the matching for the
	// zero-diagonal rows (voltage-source branch equations).
	for j := 0; j < n; j++ {
		row := adj[j]
		t := sort.SearchInts(row, j)
		if t < len(row) && row[t] == j {
			matchRow[j] = j
			match[j] = j
		}
	}
	for j := 0; j < n; j++ {
		if match[j] >= 0 {
			continue
		}
		stamp++
		if !augment(j) {
			return nil, fmt.Errorf("numeric: pattern is structurally singular (no zero-free diagonal through column %d): %w", j, ErrSingular)
		}
	}
	return match, nil
}

// minDegreeOrder computes a fill-reducing elimination order of the
// symmetrized pattern of crows (Markowitz/minimum-degree on an explicit
// elimination graph, smallest-index tie-break for determinism). Returned
// q maps permuted position → node, i.e. node q[k] is eliminated k-th.
func minDegreeOrder(n int, crows [][]int) []int {
	// Symmetrized adjacency as boolean-set slices.
	nbr := make([]map[int]struct{}, n)
	for i := range nbr {
		nbr[i] = make(map[int]struct{})
	}
	for i, r := range crows {
		for _, j := range r {
			if i != j {
				nbr[i][j] = struct{}{}
				nbr[j][i] = struct{}{}
			}
		}
	}
	q := make([]int, 0, n)
	eliminated := make([]bool, n)
	for len(q) < n {
		// Pick the live node with minimum degree; ties go to the
		// smallest index so the ordering is deterministic.
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			if d := len(nbr[v]); d < bestDeg {
				best, bestDeg = v, d
			}
		}
		v := best
		eliminated[v] = true
		q = append(q, v)
		// Eliminate v: its live neighbors become a clique.
		var live []int
		for u := range nbr[v] {
			if !eliminated[u] {
				live = append(live, u)
				delete(nbr[u], v)
			}
		}
		sort.Ints(live)
		for ai, a := range live {
			for _, b := range live[ai+1:] {
				nbr[a][b] = struct{}{}
				nbr[b][a] = struct{}{}
			}
		}
	}
	return q
}

// symbolicFill computes the static L+U pattern of the permuted matrix by
// row-merge symbolic elimination: row i's final pattern is its A'
// pattern merged with the U patterns of every row k < i it eliminates
// against, discovered in ascending order through a small binary heap.
func (s *SparseSymbolic) symbolicFill(adj [][]int) {
	n := s.n
	s.rowStart = make([]int, n+1)
	s.diagPos = make([]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	var heap intHeap
	var rowcols []int
	for i := 0; i < n; i++ {
		rowcols = rowcols[:0]
		heap = heap[:0]
		for _, origCol := range adj[s.rowperm[i]] {
			j := s.invCol[origCol]
			if mark[j] != i {
				mark[j] = i
				rowcols = append(rowcols, j)
				if j < i {
					heap.push(j)
				}
			}
		}
		for len(heap) > 0 {
			k := heap.pop()
			// Merge U(k): columns right of k's diagonal.
			for t := s.diagPos[k] + 1; t < s.rowStart[k+1]; t++ {
				j := s.cols[t]
				if mark[j] != i {
					mark[j] = i
					rowcols = append(rowcols, j)
					if j < i {
						heap.push(j)
					}
				}
			}
		}
		sort.Ints(rowcols)
		s.rowStart[i] = len(s.cols)
		base := len(s.cols)
		s.cols = append(s.cols, rowcols...)
		diag := -1
		for t, j := range rowcols {
			if j == i {
				diag = base + t
				break
			}
		}
		// The transversal guarantees a structural diagonal in every row.
		if diag < 0 {
			panic(fmt.Sprintf("numeric: symbolic fill lost diagonal of row %d", i))
		}
		s.diagPos[i] = diag
		s.rowStart[i+1] = len(s.cols)
	}
}

// intHeap is a tiny binary min-heap over ints (no container/heap
// interface boxing; the symbolic phase runs once per circuit).
type intHeap []int

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	a = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(a) && a[l] < a[m] {
			m = l
		}
		if r < len(a) && a[r] < a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// N returns the order of the analyzed system.
func (s *SparseSymbolic) N() int { return s.n }

// NNZ returns the structural nonzero count of A (before fill-in).
func (s *SparseSymbolic) NNZ() int { return s.annz }

// LUNNZ returns the nonzero count of the factored L+U pattern,
// including fill-in.
func (s *SparseSymbolic) LUNNZ() int { return len(s.cols) }

// FillRatio returns LUNNZ / n² — the density of the factored pattern,
// the quantity the engine's dense-vs-sparse heuristic thresholds on.
func (s *SparseSymbolic) FillRatio() float64 {
	return float64(len(s.cols)) / (float64(s.n) * float64(s.n))
}

// ValueIndex returns the position, within value planes laid out along
// the compiled pattern, of original-coordinates entry (i, j), or -1 when
// the entry is not part of the pattern. Intended for compile-time stamp
// program construction (binary search per call).
func (s *SparseSymbolic) ValueIndex(i, j int) int {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		return -1
	}
	pi, pj := s.invRow[i], s.invCol[j]
	lo, hi := s.rowStart[pi], s.rowStart[pi+1]
	row := s.cols[lo:hi]
	t := sort.SearchInts(row, pj)
	if t < len(row) && row[t] == pj {
		return lo + t
	}
	return -1
}

// SparseLU is a numeric factorization over a compiled SparseSymbolic
// pattern: caller-owned value planes aligned with the pattern, the
// inverse diagonal, and the scratch the refactor/solve sweeps reuse. A
// worker that refactors into the same SparseLU every frequency allocates
// nothing in steady state. The zero SparseLU is ready for RefactorReuse.
type SparseLU struct {
	sym      *SparseSymbolic
	vre, vim []float64 // factored values along sym.cols
	ire, iim []float64 // inverse diagonal per row
	wre, wim []float64 // dense scatter row for elimination
	pre, pim []float64 // permuted RHS panel scratch for solves

	guard2 float64 // squared pivot guard of the last refactorization

	panels  []panelScratch // per-worker supernodal panel scratch
	lvlCur  []int64        // per-level claim cursors for RefactorParallel
	markRow []int          // partial-refactor affected-row stamps
	markGen int            // current stamp generation for markRow
}

// Sym returns the symbolic pattern of the last refactorization (nil
// before the first).
func (f *SparseLU) Sym() *SparseSymbolic { return f.sym }

// RefactorReuse numerically refactors the matrix whose values are given
// along sym's compiled pattern: are/aim[t] is the value of the permuted
// entry (row r, column sym.cols[t]) for t in [rowStart[r], rowStart[r+1]),
// with fill-in positions zero. (Engine callers build these planes once
// per frequency with a compiled stamp program; see ValueIndex.) The
// input planes are not modified. It returns ErrSingular (wrapped) when a
// statically chosen pivot is exactly zero or falls below pivotGuard
// relative to the largest input magnitude — the caller's cue to fall
// back to a dense partial-pivot factorization.
func (f *SparseLU) RefactorReuse(sym *SparseSymbolic, are, aim []float64) error {
	if err := f.prepRefactor(sym, are, aim); err != nil {
		return err
	}
	for i := 0; i < sym.n; i++ {
		if err := f.factorRowScalar(i, are, aim); err != nil {
			return err
		}
	}
	return nil
}

// prepRefactor validates shapes, sizes the factor storage and scratch,
// and derives the squared pivot guard from the input magnitude. It is
// the shared head of every refactorization flavor (scalar, supernodal,
// parallel). The value planes are NOT copied: the elimination scatters
// each row from the input planes and gathers the factored row into
// f.vre/f.vim, so untouched garbage in f.vre is never read.
func (f *SparseLU) prepRefactor(sym *SparseSymbolic, are, aim []float64) error {
	nnz := len(sym.cols)
	if len(are) != nnz || len(aim) != nnz {
		return fmt.Errorf("numeric: refactor with planes %d/%d, pattern has %d entries: %w", len(are), len(aim), nnz, ErrDimension)
	}
	n := sym.n
	if cap(f.vre) < nnz {
		f.vre = make([]float64, nnz)
		f.vim = make([]float64, nnz)
	}
	f.vre, f.vim = f.vre[:nnz], f.vim[:nnz]
	if cap(f.ire) < n {
		f.ire = make([]float64, n)
		f.iim = make([]float64, n)
		f.wre = make([]float64, n)
		f.wim = make([]float64, n)
	}
	f.ire, f.iim = f.ire[:n], f.iim[:n]
	f.wre, f.wim = f.wre[:n], f.wim[:n]
	f.sym = sym

	var amax2 float64
	for t := range are {
		if m := are[t]*are[t] + aim[t]*aim[t]; m > amax2 {
			amax2 = m
		}
	}
	if amax2 == 0 {
		return fmt.Errorf("numeric: refactor of all-zero matrix: %w", ErrSingular)
	}
	f.guard2 = pivotGuard * pivotGuard * amax2
	return nil
}

// factorRowScalar eliminates one permuted row through the classic
// up-looking scalar sweep: scatter the row's input values into the dense
// work row, eliminate against every factored row in its L pattern
// ascending, gather the finished row into the factor planes, and invert
// the pivot. The supernodal path performs the same per-position
// arithmetic in the same order, so both produce bit-identical factors.
func (f *SparseLU) factorRowScalar(i int, are, aim []float64) error {
	return f.factorRowInto(i, are, aim, f.wre, f.wim)
}

// factorRowInto is factorRowScalar on a caller-chosen work row — the
// parallel supernodal path hands each worker its own panel scratch so
// singleton supernodes can take this exact scalar walk race-free.
func (f *SparseLU) factorRowInto(i int, are, aim []float64, wre, wim []float64) error {
	sym := f.sym
	vre, vim := f.vre, f.vim
	cols, rs, dp := sym.cols, sym.rowStart, sym.diagPos
	lo, hi := rs[i], rs[i+1]
	// Scatter row i into the dense work row; all positions touched
	// by elimination lie in the row's static pattern, so the gather
	// below restores the work row to zero.
	for t := lo; t < hi; t++ {
		wre[cols[t]] = are[t]
		wim[cols[t]] = aim[t]
	}
	// Eliminate against every row k < i in the row's L pattern,
	// ascending (the pattern is sorted, so this is a linear walk).
	for t := lo; t < dp[i]; t++ {
		k := cols[t]
		ar, ai := wre[k], wim[k]
		if ar == 0 && ai == 0 {
			continue
		}
		// L[i][k] = w[k] / U[k][k], by reciprocal multiplication.
		mr := ar*f.ire[k] - ai*f.iim[k]
		mi := ar*f.iim[k] + ai*f.ire[k]
		wre[k], wim[k] = mr, mi
		for u := dp[k] + 1; u < rs[k+1]; u++ {
			j := cols[u]
			r, m := vre[u], vim[u]
			wre[j] -= mr*r - mi*m
			wim[j] -= mr*m + mi*r
		}
	}
	// Gather the finished row back and clear the work row.
	for t := lo; t < hi; t++ {
		vre[t] = wre[cols[t]]
		vim[t] = wim[cols[t]]
		wre[cols[t]] = 0
		wim[cols[t]] = 0
	}
	dr, di := vre[dp[i]], vim[dp[i]]
	d2 := dr*dr + di*di
	if d2 == 0 {
		return fmt.Errorf("numeric: zero pivot at row %d: %w", i, ErrSingular)
	}
	if d2 < f.guard2 {
		return fmt.Errorf("numeric: pivot at row %d below static-pivot guard: %w", i, ErrSingular)
	}
	f.ire[i], f.iim[i] = recip(dr, di)
	return nil
}

// N returns the order of the factored system (0 before the first
// refactorization).
func (f *SparseLU) N() int {
	if f.sym == nil {
		return 0
	}
	return f.sym.n
}

// growPanel sizes the permuted-panel scratch for nc right-hand sides.
func (f *SparseLU) growPanel(nc int) {
	need := f.sym.n * nc
	if cap(f.pre) < need {
		f.pre = make([]float64, need)
		f.pim = make([]float64, need)
	}
	f.pre, f.pim = f.pre[:need], f.pim[:need]
}

// SolveBlock solves A·X = B for every column of the block in place,
// mirroring SoALU.SolveBlock: rows of the block are system variables in
// the caller's (original) indexing; the permutations are applied
// internally. One forward and one back sweep over the static pattern
// covers all right-hand sides.
func (f *SparseLU) SolveBlock(blk *Block) error {
	if f.sym == nil {
		return fmt.Errorf("numeric: solve-block before refactorization: %w", ErrDimension)
	}
	n := f.sym.n
	if blk.rows != n {
		return fmt.Errorf("numeric: solve-block with %d rows, want %d: %w", blk.rows, n, ErrDimension)
	}
	nc := blk.cols
	if nc == 0 {
		return nil
	}
	f.growPanel(nc)
	bre, bim := blk.re, blk.im
	pre, pim := f.pre, f.pim
	sym := f.sym
	// Permute in: panel row i ← block row rowperm[i].
	for i := 0; i < n; i++ {
		src := sym.rowperm[i] * nc
		copy(pre[i*nc:i*nc+nc], bre[src:src+nc])
		copy(pim[i*nc:i*nc+nc], bim[src:src+nc])
	}
	f.sweepPanel(pre, pim, nc)
	// Permute out: block row colperm[j] ← panel row j.
	for j := 0; j < n; j++ {
		dst := sym.colperm[j] * nc
		copy(bre[dst:dst+nc], pre[j*nc:j*nc+nc])
		copy(bim[dst:dst+nc], pim[j*nc:j*nc+nc])
	}
	return nil
}

// SolveBlockInto is SolveBlock writing the solutions into dst, leaving
// rhs untouched. The shapes are validated before dst is modified.
func (f *SparseLU) SolveBlockInto(dst, rhs *Block) error {
	if dst == rhs {
		return f.SolveBlock(dst)
	}
	if f.sym == nil {
		return fmt.Errorf("numeric: solve-block before refactorization: %w", ErrDimension)
	}
	if rhs.rows != f.sym.n {
		return fmt.Errorf("numeric: solve-block with %d rows, want %d: %w", rhs.rows, f.sym.n, ErrDimension)
	}
	dst.CopyFrom(rhs)
	return f.SolveBlock(dst)
}

// sweepPanel runs the two triangular sweeps over the permuted panel
// (row-major, stride nc): L·Y = Pb forward with unit diagonal, then
// U·X = Y backward scaling each row by the inverse diagonal. The axpys
// touch contiguous float64 runs per plane, like SoALU.SolveBlock, but
// walk only the static sparse pattern.
func (f *SparseLU) sweepPanel(pre, pim []float64, nc int) {
	sym := f.sym
	n := sym.n
	vre, vim := f.vre, f.vim
	cols, rs, dp := sym.cols, sym.rowStart, sym.diagPos
	for i := 1; i < n; i++ {
		xr := pre[i*nc : i*nc+nc]
		xi := pim[i*nc : i*nc+nc]
		for t := rs[i]; t < dp[i]; t++ {
			k := cols[t]
			mr, mi := vre[t], vim[t]
			if mr == 0 && mi == 0 {
				continue
			}
			yr := pre[k*nc : k*nc+nc]
			yi := pim[k*nc : k*nc+nc]
			for c := range xr {
				r, m := yr[c], yi[c]
				xr[c] -= mr*r - mi*m
				xi[c] -= mr*m + mi*r
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		xr := pre[i*nc : i*nc+nc]
		xi := pim[i*nc : i*nc+nc]
		for t := dp[i] + 1; t < rs[i+1]; t++ {
			j := cols[t]
			mr, mi := vre[t], vim[t]
			if mr == 0 && mi == 0 {
				continue
			}
			yr := pre[j*nc : j*nc+nc]
			yi := pim[j*nc : j*nc+nc]
			for c := range xr {
				r, m := yr[c], yi[c]
				xr[c] -= mr*r - mi*m
				xi[c] -= mr*m + mi*r
			}
		}
		dr, di := f.ire[i], f.iim[i]
		for c := range xr {
			r, m := xr[c], xi[c]
			xr[c] = dr*r - di*m
			xi[c] = dr*m + di*r
		}
	}
}

// SolveInto solves A·x = b for a single complex right-hand side into the
// caller-provided dst of length N. dst and b may alias.
func (f *SparseLU) SolveInto(dst, b []complex128) error {
	if f.sym == nil {
		return fmt.Errorf("numeric: solve before refactorization: %w", ErrDimension)
	}
	n := f.sym.n
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("numeric: solve-into rhs len %d, dst len %d, want %d: %w", len(b), len(dst), n, ErrDimension)
	}
	f.growPanel(1)
	pre, pim := f.pre, f.pim
	sym := f.sym
	for i := 0; i < n; i++ {
		v := b[sym.rowperm[i]]
		pre[i], pim[i] = real(v), imag(v)
	}
	f.sweepPanel(pre, pim, 1)
	for j := 0; j < n; j++ {
		dst[sym.colperm[j]] = complex(pre[j], pim[j])
	}
	return nil
}
