package numeric

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// blockPlanes derives FreqBlock distinct value-plane sets from one base
// plane pair, the way an engine sweep does: same pattern, per-frequency
// values (the imaginary part scales like jωC).
func blockPlanes(re, im []float64) (ares, aims [FreqBlock][]float64) {
	for f := 0; f < FreqBlock; f++ {
		ares[f] = make([]float64, len(re))
		aims[f] = make([]float64, len(im))
		s := 1 + 0.35*float64(f)
		for t := range re {
			ares[f][t] = re[t]
			aims[f][t] = im[t] * s
		}
	}
	return ares, aims
}

// TestRefactorBlockMatchesScalar pins the frequency-blocked contract:
// every plane of a RefactorBlock equals a scalar RefactorReuse of that
// plane — factor for factor, reciprocal for reciprocal — on random
// unsymmetric systems and grid meshes.
func TestRefactorBlockMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	type caseSys struct {
		name string
		sym  *SparseSymbolic
		re   []float64
		im   []float64
	}
	var cases []caseSys
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(40)
		m, rows := randSparseSystem(rng, n)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		re, im := planesFor(t, sym, m)
		cases = append(cases, caseSys{fmt.Sprintf("rand-%d", n), sym, re, im})
	}
	for _, k := range []int{3, 8, 16, 23} {
		n, rows, planes := gridSystem(rng, k)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			t.Fatalf("grid analyze: %v", err)
		}
		re, im := planes(sym)
		cases = append(cases, caseSys{fmt.Sprintf("grid-%d", k), sym, re, im})
	}
	var br BlockRefactorer
	for _, cs := range cases {
		ares, aims := blockPlanes(cs.re, cs.im)
		var lus [FreqBlock]SparseLU
		errs := br.RefactorBlock(cs.sym, &lus, &ares, &aims)
		for f := 0; f < FreqBlock; f++ {
			if errs[f] != nil {
				t.Fatalf("%s: blocked plane %d: %v", cs.name, f, errs[f])
			}
			var ref SparseLU
			if err := ref.RefactorReuse(cs.sym, ares[f], aims[f]); err != nil {
				t.Fatalf("%s: scalar plane %d: %v", cs.name, f, err)
			}
			compareFactors(t, fmt.Sprintf("%s plane %d", cs.name, f), &ref, &lus[f])
		}
	}
}

// TestRefactorBlockIndependentFailure pins that planes fail alone: a
// dead plane (all-zero) and a singular plane (zeroed row) report their
// own errors while the remaining planes still match the scalar sweep.
func TestRefactorBlockIndependentFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n, rows, planes := gridSystem(rng, 9)
	sym, err := AnalyzeSparse(n, rows)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	re, im := planes(sym)
	ares, aims := blockPlanes(re, im)
	// Plane 1: all-zero matrix. Plane 3: zero out one structural row.
	for t1 := range ares[1] {
		ares[1][t1], aims[1][t1] = 0, 0
	}
	deadRow := n / 2
	for t1 := sym.rowStart[deadRow]; t1 < sym.rowStart[deadRow+1]; t1++ {
		ares[3][t1], aims[3][t1] = 0, 0
	}
	var br BlockRefactorer
	var lus [FreqBlock]SparseLU
	errs := br.RefactorBlock(sym, &lus, &ares, &aims)
	if !errors.Is(errs[1], ErrSingular) {
		t.Fatalf("all-zero plane: got %v, want ErrSingular", errs[1])
	}
	if !errors.Is(errs[3], ErrSingular) {
		t.Fatalf("zeroed-row plane: got %v, want ErrSingular", errs[3])
	}
	for _, f := range []int{0, 2} {
		if errs[f] != nil {
			t.Fatalf("healthy plane %d: %v", f, errs[f])
		}
		var ref SparseLU
		if err := ref.RefactorReuse(sym, ares[f], aims[f]); err != nil {
			t.Fatalf("scalar plane %d: %v", f, err)
		}
		compareFactors(t, fmt.Sprintf("surviving plane %d", f), &ref, &lus[f])
	}
	// The failing plane's error row must match the scalar walk's.
	var ref3 SparseLU
	err3 := ref3.RefactorReuse(sym, ares[3], aims[3])
	if err3 == nil || errs[3] == nil || err3.Error() != errs[3].Error() {
		t.Fatalf("failure parity: scalar %v vs blocked %v", err3, errs[3])
	}
	// A fresh refactorization through the same scratch still matches —
	// the failed walk must leave the interleaved work row clean.
	ares2, aims2 := blockPlanes(re, im)
	var lus2 [FreqBlock]SparseLU
	errs2 := br.RefactorBlock(sym, &lus2, &ares2, &aims2)
	for f := 0; f < FreqBlock; f++ {
		if errs2[f] != nil {
			t.Fatalf("post-failure plane %d: %v", f, errs2[f])
		}
		var ref SparseLU
		if err := ref.RefactorReuse(sym, ares2[f], aims2[f]); err != nil {
			t.Fatalf("post-failure scalar plane %d: %v", f, err)
		}
		compareFactors(t, fmt.Sprintf("post-failure plane %d", f), &ref, &lus2[f])
	}
}

// TestRefactorBlockAllocationFree pins the steady-state contract: after
// a warm-up call, RefactorBlock with the same receiver and LUs does not
// allocate.
func TestRefactorBlockAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	_, rows, planes := gridSystem(rng, 16)
	sym, err := AnalyzeSparse(len(rows), rows)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	re, im := planes(sym)
	ares, aims := blockPlanes(re, im)
	var br BlockRefactorer
	var lus [FreqBlock]SparseLU
	if errs := br.RefactorBlock(sym, &lus, &ares, &aims); errs[0] != nil {
		t.Fatalf("warm-up: %v", errs[0])
	}
	avg := testing.AllocsPerRun(20, func() {
		if errs := br.RefactorBlock(sym, &lus, &ares, &aims); errs[0] != nil {
			t.Fatalf("refactor: %v", errs[0])
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state RefactorBlock allocates %.1f/run, want 0", avg)
	}
}

// BenchmarkRefactorBlock reports the per-frequency numeric-phase cost of
// the blocked walk next to the scalar walk on grid meshes (one blocked
// op factors FreqBlock planes; divide by FreqBlock to compare).
func BenchmarkRefactorBlock(b *testing.B) {
	for _, k := range []int{16, 32, 45, 64} {
		rng := rand.New(rand.NewSource(int64(k)))
		_, rows, planes := gridSystem(rng, k)
		sym, err := AnalyzeSparse(len(rows), rows)
		if err != nil {
			b.Fatalf("analyze: %v", err)
		}
		re, im := planes(sym)
		ares, aims := blockPlanes(re, im)
		b.Run(fmt.Sprintf("scalar/n=%d", len(rows)), func(b *testing.B) {
			var f SparseLU
			for i := 0; i < b.N; i++ {
				if err := f.RefactorReuse(sym, ares[i%FreqBlock], aims[i%FreqBlock]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("block4/n=%d", len(rows)), func(b *testing.B) {
			var br BlockRefactorer
			var lus [FreqBlock]SparseLU
			for i := 0; i < b.N; i++ {
				if errs := br.RefactorBlock(sym, &lus, &ares, &aims); errs[0] != nil {
					b.Fatal(errs[0])
				}
			}
		})
	}
}
