//go:build amd64

package numeric

//go:noescape
func fbEliminateRowAVX(bw, bv, bd *float64, cols, dp, rs *int, lo, dpi int)

func fbCPUID1() uint32

func fbXGETBV() uint32

// fbAVX gates the assembly kernel: the CPU must report AVX and OSXSAVE,
// and the OS must have enabled XMM+YMM state (XCR0 bits 1 and 2). The
// pure-Go loop is the fallback everywhere else and is bit-identical.
var fbAVX = func() bool {
	const osxsave, avx = 1 << 27, 1 << 28
	cx := fbCPUID1()
	if cx&osxsave == 0 || cx&avx == 0 {
		return false
	}
	return fbXGETBV()&6 == 6
}()
