package numeric

import (
	"errors"
	"fmt"
	"math/cmplx"
)

// LU is an LU factorization with partial (row) pivoting: P*A = L*U.
//
// L is unit lower triangular and U upper triangular, packed into a single
// matrix. The factorization is the workhorse behind every AC analysis in
// this repository: each frequency point of a Modified Nodal Analysis run
// factors one complex system and back-substitutes.
type LU struct {
	lu    *Matrix
	piv   []int // row i of the factored matrix came from row piv[i] of A
	swp   []int // swap sequence: step k exchanged rows k and swp[k]
	sign  int   // parity of the permutation, ±1
	n     int
	normA float64 // infinity norm of A, kept for condition estimation
}

// Factor computes the LU factorization of the square matrix a.
// It returns ErrSingular if a pivot is exactly zero; near-singular systems
// succeed but report a large ConditionEstimate.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	f := &LU{}
	if err := f.factorStorage(a.Clone()); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInPlace factors a using a's own storage as the packed LU — the
// low-allocation path for batched solvers that rebuild the matrix each
// round anyway (only the LU header and pivot vector are allocated; see
// FactorReuse for the fully allocation-free variant). The caller must
// not use a afterwards; its contents are destroyed.
func FactorInPlace(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	f := &LU{}
	if err := f.factorStorage(a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorReuse is FactorInPlace recycling a caller-owned LU: the pivot
// vector is resliced instead of reallocated, so a worker that refactors
// into the same LU every round allocates nothing in steady state. On
// error f is unusable until the next successful refactorization, exactly
// like the matrix.
func FactorReuse(f *LU, a *Matrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	return f.factorStorage(a)
}

func (f *LU) factorStorage(a *Matrix) error {
	n := a.rows
	if cap(f.piv) < n {
		f.piv = make([]int, n)
		f.swp = make([]int, n)
	}
	*f = LU{lu: a, piv: f.piv[:n], swp: f.swp[:n], sign: 1, n: n, normA: a.NormInf()}
	for i := range f.piv {
		f.piv[i] = i
	}
	d := f.lu.data
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest modulus in column k at or
		// below the diagonal.
		p := k
		mx := cmplx.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(d[i*n+k]); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return fmt.Errorf("numeric: zero pivot at column %d: %w", k, ErrSingular)
		}
		f.swp[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivot
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= m * d[k*n+j]
			}
		}
	}
	return nil
}

// N returns the order of the factored system.
func (f *LU) N() int { return f.n }

// Solve solves A*x = b for a single right-hand side. b is not modified.
func (f *LU) Solve(b []complex128) ([]complex128, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("numeric: solve with len-%d rhs, want %d: %w", len(b), f.n, ErrDimension)
	}
	x := make([]complex128, f.n)
	// Apply the permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	f.solveInPlace(x)
	return x, nil
}

// SolveInto is Solve reusing a caller-provided destination of length N.
// dst and b may not alias.
func (f *LU) SolveInto(dst, b []complex128) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("numeric: solve-into rhs len %d, dst len %d, want %d: %w", len(b), len(dst), f.n, ErrDimension)
	}
	for i, p := range f.piv {
		dst[i] = b[p]
	}
	f.solveInPlace(dst)
	return nil
}

// solveInPlace performs forward and back substitution on a permuted rhs.
func (f *LU) solveInPlace(x []complex128) {
	n, d := f.n, f.lu.data
	// Ly = Pb (L unit lower triangular).
	for i := 1; i < n; i++ {
		var s complex128
		for j := 0; j < i; j++ {
			s += d[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Ux = y.
	for i := n - 1; i >= 0; i-- {
		var s complex128
		for j := i + 1; j < n; j++ {
			s += d[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / d[i*n+i]
	}
}

// SolveBlock solves A·X = B for every column of the SoA block in place:
// the block's columns are overwritten with the corresponding solutions.
// The permutation and both triangular sweeps run once across all
// right-hand sides — the factored matrix is walked once per block, not
// once per column — with the per-row axpys touching contiguous float64
// plane runs. Allocation-free.
func (f *LU) SolveBlock(blk *Block) error {
	if blk.rows != f.n {
		return fmt.Errorf("numeric: solve-block with %d rows, want %d: %w", blk.rows, f.n, ErrDimension)
	}
	n, nc := f.n, blk.cols
	if nc == 0 {
		return nil
	}
	for k := 0; k < n; k++ {
		if p := f.swp[k]; p != k {
			blk.swapRows(k, p)
		}
	}
	d := f.lu.data
	bre, bim := blk.re, blk.im
	// L·Y = P·B (L unit lower triangular).
	for i := 1; i < n; i++ {
		xr := bre[i*nc : i*nc+nc]
		xi := bim[i*nc : i*nc+nc]
		for j := 0; j < i; j++ {
			m := d[i*n+j]
			if m == 0 {
				continue
			}
			mr, mi := real(m), imag(m)
			yr := bre[j*nc : j*nc+nc]
			yi := bim[j*nc : j*nc+nc]
			for c := range xr {
				r, im := yr[c], yi[c]
				xr[c] -= mr*r - mi*im
				xi[c] -= mr*im + mi*r
			}
		}
	}
	// U·X = Y.
	for i := n - 1; i >= 0; i-- {
		xr := bre[i*nc : i*nc+nc]
		xi := bim[i*nc : i*nc+nc]
		for j := i + 1; j < n; j++ {
			m := d[i*n+j]
			if m == 0 {
				continue
			}
			mr, mi := real(m), imag(m)
			yr := bre[j*nc : j*nc+nc]
			yi := bim[j*nc : j*nc+nc]
			for c := range xr {
				r, im := yr[c], yi[c]
				xr[c] -= mr*r - mi*im
				xi[c] -= mr*im + mi*r
			}
		}
		dr, di := recip(real(d[i*n+i]), imag(d[i*n+i]))
		for c := range xr {
			r, im := xr[c], xi[c]
			xr[c] = dr*r - di*im
			xi[c] = dr*im + di*r
		}
	}
	return nil
}

// SolveBlockInto is SolveBlock writing the solutions into dst, leaving
// rhs untouched. dst is reshaped to rhs's shape, reusing its planes, so
// a dst held across calls makes the steady state allocation-free. The
// shape check runs before dst is touched, so a mismatched rhs reports
// ErrDimension with dst intact.
func (f *LU) SolveBlockInto(dst, rhs *Block) error {
	if rhs.rows != f.n {
		return fmt.Errorf("numeric: solve-block-into with %d rows, want %d: %w", rhs.rows, f.n, ErrDimension)
	}
	if dst == rhs {
		return f.SolveBlock(dst)
	}
	dst.CopyFrom(rhs)
	return f.SolveBlock(dst)
}

// SolveMatrix solves A*X = B via one blocked multi-RHS solve.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	out := NewMatrix(f.n, b.cols)
	if err := f.SolveMatrixInto(out, b, &Block{}); err != nil {
		return nil, err
	}
	return out, nil
}

// SolveMatrixInto is SolveMatrix writing into the caller-owned dst
// (shape n×B.cols) using the caller-owned scratch block for the solve —
// allocation-free in steady state once scratch has warmed to the
// largest shape it has seen.
func (f *LU) SolveMatrixInto(dst, b *Matrix, scratch *Block) error {
	if b.rows != f.n {
		return fmt.Errorf("numeric: solve-matrix with %d rows, want %d: %w", b.rows, f.n, ErrDimension)
	}
	if dst.rows != f.n || dst.cols != b.cols {
		return fmt.Errorf("numeric: solve-matrix into %dx%d, want %dx%d: %w", dst.rows, dst.cols, f.n, b.cols, ErrDimension)
	}
	scratch.CopyFromMatrix(b)
	if err := f.SolveBlock(scratch); err != nil {
		return err
	}
	return scratch.ToMatrix(dst)
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	det := complex(float64(f.sign), 0)
	for i := 0; i < f.n; i++ {
		det *= f.lu.data[i*f.n+i]
	}
	return det
}

// Inverse returns A^-1 via one blocked solve against the identity.
func (f *LU) Inverse() (*Matrix, error) {
	out := NewMatrix(f.n, f.n)
	if err := f.InverseInto(out, &Block{}); err != nil {
		return nil, err
	}
	return out, nil
}

// InverseInto writes A^-1 into the caller-owned n×n dst using the
// caller-owned scratch block — allocation-free in steady state.
func (f *LU) InverseInto(dst *Matrix, scratch *Block) error {
	if dst.rows != f.n || dst.cols != f.n {
		return fmt.Errorf("numeric: inverse into %dx%d, want %dx%d: %w", dst.rows, dst.cols, f.n, f.n, ErrDimension)
	}
	scratch.Reset(f.n, f.n)
	scratch.Zero()
	for i := 0; i < f.n; i++ {
		scratch.re[i*f.n+i] = 1
	}
	if err := f.SolveBlock(scratch); err != nil {
		return err
	}
	return scratch.ToMatrix(dst)
}

// ConditionEstimate returns a cheap lower-bound estimate of the infinity-
// norm condition number κ∞(A) ≈ ‖A‖∞ · ‖A⁻¹‖∞, where ‖A⁻¹‖∞ is estimated
// by one round of Hager-style power iteration on |A⁻¹|. A value above
// ~1/machine-epsilon means solutions carry no trustworthy digits.
func (f *LU) ConditionEstimate() float64 {
	n := f.n
	if n == 0 {
		return 0
	}
	// Start from the all-ones direction and take the largest row response.
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(1.0/float64(n), 0)
	}
	dst := make([]complex128, n)
	var invNorm float64
	for iter := 0; iter < 2; iter++ {
		if err := f.SolveInto(dst, x); err != nil {
			return 0
		}
		// Infinity norm of the solve response and the maximizing index.
		var mx float64
		var at int
		for i, v := range dst {
			if a := cmplx.Abs(v); a > mx {
				mx, at = a, i
			}
		}
		invNorm = mx * float64(n) // undo the 1/n scaling direction-wise
		for i := range x {
			x[i] = 0
		}
		x[at] = 1
	}
	return f.normA * invNorm
}

// Solve is a convenience that factors a and solves a single system.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det computes the determinant of a square matrix, returning 0 for a
// singular input.
func Det(a *Matrix) (complex128, error) {
	f, err := Factor(a)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return 0, nil
		}
		return 0, err
	}
	return f.Det(), nil
}
