package numeric

import (
	"errors"
	"fmt"
	"math/cmplx"
)

// LU is an LU factorization with partial (row) pivoting: P*A = L*U.
//
// L is unit lower triangular and U upper triangular, packed into a single
// matrix. The factorization is the workhorse behind every AC analysis in
// this repository: each frequency point of a Modified Nodal Analysis run
// factors one complex system and back-substitutes.
type LU struct {
	lu    *Matrix
	piv   []int // row i of the factored matrix came from row piv[i] of A
	sign  int   // parity of the permutation, ±1
	n     int
	normA float64 // infinity norm of A, kept for condition estimation
}

// Factor computes the LU factorization of the square matrix a.
// It returns ErrSingular if a pivot is exactly zero; near-singular systems
// succeed but report a large ConditionEstimate.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	f := &LU{}
	if err := f.factorStorage(a.Clone()); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInPlace factors a using a's own storage as the packed LU — the
// low-allocation path for batched solvers that rebuild the matrix each
// round anyway (only the LU header and pivot vector are allocated; see
// FactorReuse for the fully allocation-free variant). The caller must
// not use a afterwards; its contents are destroyed.
func FactorInPlace(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	f := &LU{}
	if err := f.factorStorage(a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorReuse is FactorInPlace recycling a caller-owned LU: the pivot
// vector is resliced instead of reallocated, so a worker that refactors
// into the same LU every round allocates nothing in steady state. On
// error f is unusable until the next successful refactorization, exactly
// like the matrix.
func FactorReuse(f *LU, a *Matrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	return f.factorStorage(a)
}

func (f *LU) factorStorage(a *Matrix) error {
	n := a.rows
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	}
	*f = LU{lu: a, piv: f.piv[:n], sign: 1, n: n, normA: a.NormInf()}
	for i := range f.piv {
		f.piv[i] = i
	}
	d := f.lu.data
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest modulus in column k at or
		// below the diagonal.
		p := k
		mx := cmplx.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(d[i*n+k]); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return fmt.Errorf("numeric: zero pivot at column %d: %w", k, ErrSingular)
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivot
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= m * d[k*n+j]
			}
		}
	}
	return nil
}

// N returns the order of the factored system.
func (f *LU) N() int { return f.n }

// Solve solves A*x = b for a single right-hand side. b is not modified.
func (f *LU) Solve(b []complex128) ([]complex128, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("numeric: solve with len-%d rhs, want %d: %w", len(b), f.n, ErrDimension)
	}
	x := make([]complex128, f.n)
	// Apply the permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	f.solveInPlace(x)
	return x, nil
}

// SolveInto is Solve reusing a caller-provided destination of length N.
// dst and b may not alias.
func (f *LU) SolveInto(dst, b []complex128) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("numeric: solve-into rhs len %d, dst len %d, want %d: %w", len(b), len(dst), f.n, ErrDimension)
	}
	for i, p := range f.piv {
		dst[i] = b[p]
	}
	f.solveInPlace(dst)
	return nil
}

// solveInPlace performs forward and back substitution on a permuted rhs.
func (f *LU) solveInPlace(x []complex128) {
	n, d := f.n, f.lu.data
	// Ly = Pb (L unit lower triangular).
	for i := 1; i < n; i++ {
		var s complex128
		for j := 0; j < i; j++ {
			s += d[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Ux = y.
	for i := n - 1; i >= 0; i-- {
		var s complex128
		for j := i + 1; j < n; j++ {
			s += d[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / d[i*n+i]
	}
}

// SolveMatrix solves A*X = B column by column.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.rows != f.n {
		return nil, fmt.Errorf("numeric: solve-matrix with %d rows, want %d: %w", b.rows, f.n, ErrDimension)
	}
	out := NewMatrix(f.n, b.cols)
	col := make([]complex128, f.n)
	dst := make([]complex128, f.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < f.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		if err := f.SolveInto(dst, col); err != nil {
			return nil, err
		}
		for i := 0; i < f.n; i++ {
			out.data[i*out.cols+j] = dst[i]
		}
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	det := complex(float64(f.sign), 0)
	for i := 0; i < f.n; i++ {
		det *= f.lu.data[i*f.n+i]
	}
	return det
}

// Inverse returns A^-1 via n solves against the identity.
func (f *LU) Inverse() (*Matrix, error) {
	return f.SolveMatrix(Identity(f.n))
}

// ConditionEstimate returns a cheap lower-bound estimate of the infinity-
// norm condition number κ∞(A) ≈ ‖A‖∞ · ‖A⁻¹‖∞, where ‖A⁻¹‖∞ is estimated
// by one round of Hager-style power iteration on |A⁻¹|. A value above
// ~1/machine-epsilon means solutions carry no trustworthy digits.
func (f *LU) ConditionEstimate() float64 {
	n := f.n
	if n == 0 {
		return 0
	}
	// Start from the all-ones direction and take the largest row response.
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(1.0/float64(n), 0)
	}
	dst := make([]complex128, n)
	var invNorm float64
	for iter := 0; iter < 2; iter++ {
		if err := f.SolveInto(dst, x); err != nil {
			return 0
		}
		// Infinity norm of the solve response and the maximizing index.
		var mx float64
		var at int
		for i, v := range dst {
			if a := cmplx.Abs(v); a > mx {
				mx, at = a, i
			}
		}
		invNorm = mx * float64(n) // undo the 1/n scaling direction-wise
		for i := range x {
			x[i] = 0
		}
		x[at] = 1
	}
	return f.normA * invNorm
}

// Solve is a convenience that factors a and solves a single system.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det computes the determinant of a square matrix, returning 0 for a
// singular input.
func Det(a *Matrix) (complex128, error) {
	f, err := Factor(a)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return 0, nil
		}
		return 0, err
	}
	return f.Det(), nil
}
