package numeric

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// randWellConditioned fills an n×n system that is diagonally dominant —
// well away from singular, so solve comparisons are not dominated by
// conditioning noise.
func randWellConditioned(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			a.Set(i, j, v)
			rowSum += cmplx.Abs(v)
		}
		// Diagonal dominance with a random phase keeps pivoting exercised.
		phase := 2 * math.Pi * rng.Float64()
		a.Set(i, i, complex((rowSum+1)*math.Cos(phase), (rowSum+1)*math.Sin(phase)))
	}
	return a
}

func randBlock(rng *rand.Rand, n, nrhs int) *Block {
	b := NewBlock(n, nrhs)
	for i := 0; i < n; i++ {
		for j := 0; j < nrhs; j++ {
			b.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	return b
}

// TestSolveBlockMatchesColumnSolves is the property pin of the tentpole:
// one multi-RHS SolveBlockInto must agree with column-by-column SolveInto
// on the same factorization, for random well-conditioned systems of
// random shapes, on both the SoA and the complex128 LU.
func TestSolveBlockMatchesColumnSolves(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		nrhs := 1 + r.Intn(8)
		a := randWellConditioned(r, n)
		rhs := randBlock(r, n, nrhs)

		// Scalar complex128 LU reference: column-by-column SolveInto.
		lu, err := Factor(a)
		if err != nil {
			t.Logf("factor: %v", err)
			return false
		}
		col := make([]complex128, n)
		x := make([]complex128, n)
		want := NewMatrix(n, nrhs)
		for j := 0; j < nrhs; j++ {
			if err := rhs.ColumnInto(col, j); err != nil {
				t.Logf("column %d: %v", j, err)
				return false
			}
			if err := lu.SolveInto(x, col); err != nil {
				t.Logf("solve column %d: %v", j, err)
				return false
			}
			for i := 0; i < n; i++ {
				want.Set(i, j, x[i])
			}
		}

		check := func(name string, dst *Block) bool {
			for i := 0; i < n; i++ {
				for j := 0; j < nrhs; j++ {
					g, w := dst.At(i, j), want.At(i, j)
					scale := math.Max(cmplx.Abs(w), 1)
					if cmplx.Abs(g-w)/scale > 1e-9 {
						t.Logf("%s: n=%d nrhs=%d (%d,%d): got %v want %v", name, n, nrhs, i, j, g, w)
						return false
					}
				}
			}
			return true
		}

		// Blocked solve on the complex128 LU.
		dst := NewBlock(n, nrhs)
		if err := lu.SolveBlockInto(dst, rhs); err != nil {
			t.Logf("lu solve-block: %v", err)
			return false
		}
		if !check("LU.SolveBlockInto", dst) {
			return false
		}

		// Blocked solve on the SoA factorization of the same matrix.
		slu, err := FactorSoA(SoAFromMatrix(a))
		if err != nil {
			t.Logf("soa factor: %v", err)
			return false
		}
		dst2 := NewBlock(n, nrhs)
		if err := slu.SolveBlockInto(dst2, rhs); err != nil {
			t.Logf("soa solve-block: %v", err)
			return false
		}
		return check("SoALU.SolveBlockInto", dst2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSoAFactorMatchesScalarFactor pins the SoA factorization against the
// complex128 one through their solves: same matrix, same RHS, answers
// within 1e-9.
func TestSoAFactorMatchesScalarFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		a := randWellConditioned(rng, n)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		lu, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		slu, err := FactorSoA(SoAFromMatrix(a))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n)
		if err := slu.SolveInto(got, b); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			scale := math.Max(cmplx.Abs(want[i]), 1)
			if cmplx.Abs(got[i]-want[i])/scale > 1e-9 {
				t.Fatalf("trial %d n=%d x[%d]: soa %v scalar %v", trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestFactorSoAReuseSingular(t *testing.T) {
	a := NewSoAMatrix(2, 2) // all zeros
	var f SoALU
	if err := FactorSoAReuse(&f, a); err == nil {
		t.Fatal("factoring the zero matrix succeeded")
	}
}

func TestBlockRoundTripAndReset(t *testing.T) {
	m := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			m.Set(i, j, complex(float64(i), float64(j)))
		}
	}
	var b Block
	b.CopyFromMatrix(m)
	out := NewMatrix(3, 2)
	if err := b.ToMatrix(out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if out.At(i, j) != m.At(i, j) {
				t.Fatalf("(%d,%d): %v != %v", i, j, out.At(i, j), m.At(i, j))
			}
		}
	}
	// Reset to a smaller shape reuses the planes (no allocation) and the
	// block reports the new shape.
	b.Reset(2, 1)
	if b.Rows() != 2 || b.Cols() != 1 {
		t.Fatalf("after Reset: %d×%d, want 2×1", b.Rows(), b.Cols())
	}
}

// TestSolveScratchPathsAllocationFree pins the zero-allocation contract
// of the reuse APIs: with warm scratch, factoring and solving (single
// RHS, block, matrix, inverse) allocate nothing per call.
func TestSolveScratchPathsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, nrhs := 8, 5
	a := randWellConditioned(rng, n)
	rhs := randBlock(rng, n, nrhs)
	rhsM := NewMatrix(n, nrhs)
	if err := rhs.ToMatrix(rhsM); err != nil {
		t.Fatal(err)
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	// Warm complex128 LU storage and scratch.
	fstore := a.Clone()
	var lu LU
	if err := FactorReuse(&lu, fstore); err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	blk := NewBlock(n, nrhs)
	outM := NewMatrix(n, nrhs)
	inv := NewMatrix(n, n)
	var scratch Block

	// Warm SoA storage.
	sa := SoAFromMatrix(a)
	sf := NewSoAMatrix(n, n)
	if err := sf.CopyFrom(sa); err != nil {
		t.Fatal(err)
	}
	var slu SoALU
	if err := FactorSoAReuse(&slu, sf); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func()
	}{
		{"FactorReuse", func() {
			if err := fstore.CopyFrom(a); err != nil {
				t.Fatal(err)
			}
			if err := FactorReuse(&lu, fstore); err != nil {
				t.Fatal(err)
			}
		}},
		{"LU.SolveInto", func() {
			if err := lu.SolveInto(x, b); err != nil {
				t.Fatal(err)
			}
		}},
		{"LU.SolveBlockInto", func() {
			if err := lu.SolveBlockInto(blk, rhs); err != nil {
				t.Fatal(err)
			}
		}},
		{"LU.SolveMatrixInto", func() {
			if err := lu.SolveMatrixInto(outM, rhsM, &scratch); err != nil {
				t.Fatal(err)
			}
		}},
		{"LU.InverseInto", func() {
			if err := lu.InverseInto(inv, &scratch); err != nil {
				t.Fatal(err)
			}
		}},
		{"FactorSoAReuse", func() {
			if err := sf.CopyFrom(sa); err != nil {
				t.Fatal(err)
			}
			if err := FactorSoAReuse(&slu, sf); err != nil {
				t.Fatal(err)
			}
		}},
		{"SoALU.SolveInto", func() {
			if err := slu.SolveInto(x, b); err != nil {
				t.Fatal(err)
			}
		}},
		{"SoALU.SolveBlockInto", func() {
			if err := slu.SolveBlockInto(blk, rhs); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		tc.run() // one warm-up pass so lazily sized scratch settles
		if avg := testing.AllocsPerRun(20, tc.run); avg > 0 {
			t.Errorf("%s: %v allocs per call, want 0", tc.name, avg)
		}
	}
}

// TestSolveMatrixIntoMatchesSolveMatrix pins the scratch-based multi-RHS
// API against the allocating one.
func TestSolveMatrixIntoMatchesSolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randWellConditioned(rng, 6)
	rhs := randBlock(rng, 6, 4)
	bm := NewMatrix(6, 4)
	if err := rhs.ToMatrix(bm); err != nil {
		t.Fatal(err)
	}
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.SolveMatrix(bm)
	if err != nil {
		t.Fatal(err)
	}
	got := NewMatrix(6, 4)
	var scratch Block
	if err := lu.SolveMatrixInto(got, bm, &scratch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("(%d,%d): %v != %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestInverseIntoMatchesInverse pins the scratch-based inverse against
// the allocating one and the defining property A·A⁻¹ = I.
func TestInverseIntoMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randWellConditioned(rng, 5)
	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	got := NewMatrix(5, 5)
	var scratch Block
	if err := lu.InverseInto(got, &scratch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("(%d,%d): %v != %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
	prod, err := a.Mul(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("A·A⁻¹ (%d,%d) = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func ExampleSoALU_SolveBlock() {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 4)
	lu, _ := FactorSoA(SoAFromMatrix(a))
	blk := NewBlock(2, 2)
	blk.Set(0, 0, 2)
	blk.Set(1, 0, 4)
	blk.Set(0, 1, 6)
	blk.Set(1, 1, 8)
	_ = lu.SolveBlock(blk)
	fmt.Println(real(blk.At(0, 0)), real(blk.At(1, 0)), real(blk.At(0, 1)), real(blk.At(1, 1)))
	// Output: 1 1 3 2
}
