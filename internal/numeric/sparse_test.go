package numeric

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randSparseSystem builds a random structurally nonsingular n×n sparse
// complex matrix: a diagonally dominant band plus random off-band
// entries, then a random row permutation (so the transversal phase has
// real work to do). Returns the dense matrix and its pattern rows.
func randSparseSystem(rng *rand.Rand, n int) (*Matrix, [][]int) {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, complex(4+rng.Float64(), rng.Float64()))
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				a.Set(i, j, complex(rng.Float64()-0.5, rng.Float64()-0.5))
			}
		}
	}
	perm := rng.Perm(n)
	p := NewMatrix(n, n)
	rows := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := a.At(perm[i], j)
			if v != 0 {
				p.Set(i, j, v)
				rows[i] = append(rows[i], j)
			}
		}
	}
	return p, rows
}

// planesFor scatters the dense matrix m into value planes aligned with
// the symbolic pattern (the way an engine stamp program would).
func planesFor(t *testing.T, sym *SparseSymbolic, m *Matrix) (re, im []float64) {
	t.Helper()
	re = make([]float64, sym.LUNNZ())
	im = make([]float64, sym.LUNNZ())
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.At(i, j)
			if v == 0 {
				continue
			}
			t2 := sym.ValueIndex(i, j)
			if t2 < 0 {
				t.Fatalf("pattern entry (%d,%d) missing from symbolic pattern", i, j)
			}
			re[t2] += real(v)
			im[t2] += imag(v)
		}
	}
	return re, im
}

func TestSparseSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(24)
		m, rows := randSparseSystem(rng, n)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			t.Fatalf("n=%d: analyze: %v", n, err)
		}
		re, im := planesFor(t, sym, m)
		var f SparseLU
		if err := f.RefactorReuse(sym, re, im); err != nil {
			t.Fatalf("n=%d: refactor: %v", n, err)
		}
		dense, err := Factor(m)
		if err != nil {
			t.Fatalf("n=%d: dense factor: %v", n, err)
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		want, err := dense.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: dense solve: %v", n, err)
		}
		got := make([]complex128, n)
		if err := f.SolveInto(got, b); err != nil {
			t.Fatalf("n=%d: sparse solve: %v", n, err)
		}
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-9*(1+cmplx.Abs(want[i])) {
				t.Fatalf("trial %d n=%d x[%d]: sparse %v vs dense %v (|Δ|=%g)", trial, n, i, got[i], want[i], d)
			}
		}
	}
}

func TestSparseSolveBlockMatchesColumnSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(16)
		nc := 1 + rng.Intn(6)
		m, rows := randSparseSystem(rng, n)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		re, im := planesFor(t, sym, m)
		var f SparseLU
		if err := f.RefactorReuse(sym, re, im); err != nil {
			t.Fatalf("refactor: %v", err)
		}
		blk := NewBlock(n, nc)
		cols := make([][]complex128, nc)
		for c := 0; c < nc; c++ {
			cols[c] = make([]complex128, n)
			for i := 0; i < n; i++ {
				v := complex(rng.Float64()-0.5, rng.Float64()-0.5)
				cols[c][i] = v
				blk.Set(i, c, v)
			}
		}
		dst := &Block{}
		if err := f.SolveBlockInto(dst, blk); err != nil {
			t.Fatalf("solve block: %v", err)
		}
		x := make([]complex128, n)
		for c := 0; c < nc; c++ {
			if err := f.SolveInto(x, cols[c]); err != nil {
				t.Fatalf("column solve: %v", err)
			}
			for i := 0; i < n; i++ {
				if d := cmplx.Abs(dst.At(i, c) - x[i]); d > 1e-12*(1+cmplx.Abs(x[i])) {
					t.Fatalf("trial %d (%d,%d): block %v vs column %v", trial, i, c, dst.At(i, c), x[i])
				}
			}
		}
		// In-place form agrees and leaves the panel with the solution.
		if err := f.SolveBlock(blk); err != nil {
			t.Fatalf("in-place solve block: %v", err)
		}
		for c := 0; c < nc; c++ {
			for i := 0; i < n; i++ {
				if blk.At(i, c) != dst.At(i, c) {
					t.Fatalf("in-place differs at (%d,%d)", i, c)
				}
			}
		}
	}
}

func TestAnalyzeSparseErrors(t *testing.T) {
	if _, err := AnalyzeSparse(0, nil); !errors.Is(err, ErrDimension) {
		t.Fatalf("n=0: got %v, want ErrDimension", err)
	}
	if _, err := AnalyzeSparse(2, [][]int{{0}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short rows: got %v, want ErrDimension", err)
	}
	if _, err := AnalyzeSparse(2, [][]int{{0, 2}, {1}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("out-of-range column: got %v, want ErrDimension", err)
	}
	// Column 1 is structurally empty: no transversal exists.
	if _, err := AnalyzeSparse(2, [][]int{{0}, {0}}); !errors.Is(err, ErrSingular) {
		t.Fatalf("structurally singular: got %v, want ErrSingular", err)
	}
}

func TestSparseRefactorGuards(t *testing.T) {
	sym, err := AnalyzeSparse(2, [][]int{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var f SparseLU
	if err := f.RefactorReuse(sym, []float64{1}, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short planes: got %v, want ErrDimension", err)
	}
	zero := make([]float64, sym.LUNNZ())
	if err := f.RefactorReuse(sym, zero, zero); !errors.Is(err, ErrSingular) {
		t.Fatalf("all-zero matrix: got %v, want ErrSingular", err)
	}
	// Numerically singular on the static pivot: [[1,1],[1,1]].
	re := make([]float64, sym.LUNNZ())
	im := make([]float64, sym.LUNNZ())
	for i := range re {
		re[i] = 1
	}
	if err := f.RefactorReuse(sym, re, im); !errors.Is(err, ErrSingular) {
		t.Fatalf("rank-deficient matrix: got %v, want ErrSingular", err)
	}

	// Solve APIs reject use before a successful refactorization and
	// shape mismatches, without clobbering dst.
	var cold SparseLU
	if err := cold.SolveBlock(NewBlock(2, 1)); !errors.Is(err, ErrDimension) {
		t.Fatalf("cold solve-block: got %v, want ErrDimension", err)
	}
	if err := cold.SolveInto(make([]complex128, 2), make([]complex128, 2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("cold solve-into: got %v, want ErrDimension", err)
	}
	good, _ := AnalyzeSparse(2, [][]int{{0, 1}, {0, 1}})
	re2 := []float64{4, 1, 1, 4}
	im2 := []float64{0, 0, 0, 0}
	if err := f.RefactorReuse(good, re2, im2); err != nil {
		t.Fatalf("refactor: %v", err)
	}
	wrong := NewBlock(3, 2)
	if err := f.SolveBlock(wrong); !errors.Is(err, ErrDimension) {
		t.Fatalf("wrong rows: got %v, want ErrDimension", err)
	}
	dst := NewBlock(1, 1)
	dst.Set(0, 0, 42)
	if err := f.SolveBlockInto(dst, wrong); !errors.Is(err, ErrDimension) {
		t.Fatalf("solve-block-into wrong rows: got %v, want ErrDimension", err)
	}
	if dst.Rows() != 1 || dst.At(0, 0) != 42 {
		t.Fatalf("dst clobbered by failed SolveBlockInto: %dx%d", dst.Rows(), dst.Cols())
	}
	if err := f.SolveInto(make([]complex128, 3), make([]complex128, 2)); !errors.Is(err, ErrDimension) {
		t.Fatalf("solve-into wrong dst len: got %v, want ErrDimension", err)
	}
}

func TestSparseValueIndex(t *testing.T) {
	sym, err := AnalyzeSparse(3, [][]int{{0, 2}, {1}, {0, 2}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for i, row := range [][]int{{0, 2}, {1}, {0, 2}} {
		for _, j := range row {
			if sym.ValueIndex(i, j) < 0 {
				t.Fatalf("ValueIndex(%d,%d) = -1 for a structural entry", i, j)
			}
		}
	}
	if got := sym.ValueIndex(1, 0); got != -1 {
		// (1,0) is not structural and cannot be fill below the diagonal
		// band here; fill entries are allowed to return valid indices,
		// but this particular pattern has none in row 1.
		t.Fatalf("ValueIndex(1,0) = %d, want -1", got)
	}
	if sym.ValueIndex(-1, 0) != -1 || sym.ValueIndex(0, 3) != -1 {
		t.Fatal("out-of-range ValueIndex must be -1")
	}
	if sym.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", sym.NNZ())
	}
	if sym.LUNNZ() < sym.NNZ() {
		t.Fatalf("LUNNZ %d < NNZ %d", sym.LUNNZ(), sym.NNZ())
	}
	if fr := sym.FillRatio(); fr <= 0 || fr > 1 {
		t.Fatalf("FillRatio = %g out of (0,1]", fr)
	}
}

// TestSparseRefactorSolveAllocationFree pins the steady-state contract:
// after one warm-up, a refactor + block solve on the compiled pattern
// performs no heap allocation.
func TestSparseRefactorSolveAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	m, rows := randSparseSystem(rng, n)
	sym, err := AnalyzeSparse(n, rows)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	re, im := planesFor(t, sym, m)
	var f SparseLU
	blk := NewBlock(n, 4)
	rhs := NewBlock(n, 4)
	for c := 0; c < 4; c++ {
		for i := 0; i < n; i++ {
			rhs.Set(i, c, complex(rng.Float64(), rng.Float64()))
		}
	}
	run := func() {
		if err := f.RefactorReuse(sym, re, im); err != nil {
			t.Fatalf("refactor: %v", err)
		}
		blk.CopyFrom(rhs)
		if err := f.SolveBlock(blk); err != nil {
			t.Fatalf("solve: %v", err)
		}
	}
	run() // warm-up sizes every scratch buffer
	if avg := testing.AllocsPerRun(20, run); avg > 0 {
		t.Fatalf("sparse refactor+solve allocates %.1f times per run after warm-up", avg)
	}
}
