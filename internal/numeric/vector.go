package numeric

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n == 1 returns just lo.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // exact endpoint despite rounding
	return out
}

// Logspace returns n logarithmically spaced values from lo to hi inclusive.
// Both endpoints must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("numeric: Logspace endpoints must be positive, got %g, %g", lo, hi))
	}
	exps := Linspace(math.Log10(lo), math.Log10(hi), n)
	out := make([]float64, n)
	for i, e := range exps {
		out[i] = math.Pow(10, e)
	}
	if n > 1 {
		out[0], out[n-1] = lo, hi
	}
	return out
}

// Dot returns the (non-conjugated) dot product of two complex vectors.
func Dot(a, b []complex128) (complex128, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("numeric: dot len %d with %d: %w", len(a), len(b), ErrDimension)
	}
	var s complex128
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of a complex vector.
func Norm2(a []complex128) float64 {
	var s float64
	for _, v := range a {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// NormInfVec returns the max modulus of a complex vector.
func NormInfVec(a []complex128) float64 {
	var mx float64
	for _, v := range a {
		if m := cmplx.Abs(v); m > mx {
			mx = m
		}
	}
	return mx
}

// RealNorm2 returns the Euclidean norm of a real vector.
func RealNorm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Residual returns the infinity norm of A*x - b, a direct check of a
// linear-solve result.
func Residual(a *Matrix, x, b []complex128) (float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(ax) {
		return 0, fmt.Errorf("numeric: residual rhs len %d, want %d: %w", len(b), len(ax), ErrDimension)
	}
	var mx float64
	for i := range ax {
		if m := cmplx.Abs(ax[i] - b[i]); m > mx {
			mx = m
		}
	}
	return mx, nil
}

// Db converts a linear magnitude to decibels (20·log10). Zero maps to -Inf.
func Db(mag float64) float64 {
	return 20 * math.Log10(mag)
}

// FromDb converts decibels back to linear magnitude.
func FromDb(db float64) float64 {
	return math.Pow(10, db/20)
}

// CloseRel reports whether a and b agree to relative tolerance rel
// (with an absolute floor abs for values near zero).
func CloseRel(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*scale
}
