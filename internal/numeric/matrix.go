// Package numeric provides the dense complex linear algebra, polynomial,
// and vector utilities that the rest of the repository builds on.
//
// The analog fault-diagnosis pipeline only ever needs moderately sized
// systems (a Modified Nodal Analysis matrix for a filter has tens of
// unknowns), so the package favours a simple, allocation-conscious dense
// representation over sparse machinery. All routines are deterministic and
// free of global state.
package numeric

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("numeric: dimension mismatch")

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("numeric: matrix is singular to working precision")

// Matrix is a dense, row-major complex matrix.
//
// The zero value is an empty (0x0) matrix; use NewMatrix to allocate a
// sized one. Methods never alias their receiver with their result unless
// documented otherwise.
type Matrix struct {
	rows, cols int
	data       []complex128 // len == rows*cols, row-major
}

// NewMatrix allocates an r-by-c zero matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("numeric: negative matrix dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]complex128, r*c)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows(rows [][]complex128) (*Matrix, error) {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("numeric: ragged row %d: got %d columns, want %d: %w", i, len(row), c, ErrDimension)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add accumulates v into the element at row i, column j. MNA stamping is
// built on this primitive.
func (m *Matrix) Add(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("numeric: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Zero resets every element to 0 without reallocating.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with src without reallocating. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("numeric: copy %dx%d into %dx%d: %w", src.rows, src.cols, m.rows, m.cols, ErrDimension)
	}
	copy(m.data, src.data)
	return nil
}

// Equalish reports whether m and n have the same shape and all elements
// within tol of each other (element-wise modulus of the difference).
func (m *Matrix) Equalish(n *Matrix, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.data {
		if cmplx.Abs(m.data[i]-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// AddMatrix returns m + n.
func (m *Matrix) AddMatrix(n *Matrix) (*Matrix, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("numeric: add %dx%d with %dx%d: %w", m.rows, m.cols, n.rows, n.cols, ErrDimension)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + n.data[i]
	}
	return out, nil
}

// SubMatrix returns m - n.
func (m *Matrix) SubMatrix(n *Matrix) (*Matrix, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("numeric: sub %dx%d with %dx%d: %w", m.rows, m.cols, n.rows, n.cols, ErrDimension)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - n.data[i]
	}
	return out, nil
}

// Scale returns s*m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = s * m.data[i]
	}
	return out
}

// Mul returns the matrix product m*n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("numeric: mul %dx%d by %dx%d: %w", m.rows, m.cols, n.rows, n.cols, ErrDimension)
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				out.data[i*n.cols+j] += a * n.data[k*n.cols+j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []complex128) ([]complex128, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("numeric: mulvec %dx%d by len-%d vector: %w", m.rows, m.cols, len(x), ErrDimension)
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		var s complex128
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns the (non-conjugated) transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// ConjTranspose returns the Hermitian transpose of m.
func (m *Matrix) ConjTranspose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = cmplx.Conj(m.data[i*m.cols+j])
		}
	}
	return out
}

// MaxAbs returns the largest element modulus (the max norm).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// NormInf returns the infinity norm (max absolute row sum).
func (m *Matrix) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			s += cmplx.Abs(m.data[i*m.cols+j])
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormOne returns the 1-norm (max absolute column sum).
func (m *Matrix) NormOne() float64 {
	var mx float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += cmplx.Abs(m.data[i*m.cols+j])
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormFrobenius returns the Frobenius norm.
func (m *Matrix) NormFrobenius() float64 {
	var s float64
	for _, v := range m.data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []complex128 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("numeric: row %d out of range %dx%d", i, m.rows, m.cols))
	}
	out := make([]complex128, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []complex128 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("numeric: col %d out of range %dx%d", j, m.rows, m.cols))
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			v := m.data[i*m.cols+j]
			fmt.Fprintf(&b, " (%10.4g%+10.4gi)", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
