package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPolyDegreeAndTrim(t *testing.T) {
	cases := []struct {
		p    Poly
		want int
	}{
		{Poly{}, -1},
		{Poly{0}, -1},
		{Poly{1}, 0},
		{Poly{0, 1}, 1},
		{Poly{1, 2, 0, 0}, 1},
	}
	for _, c := range cases {
		if got := c.p.Degree(); got != c.want {
			t.Errorf("Degree(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	tr := Poly{1, 2, 0, 0}.Trim()
	if len(tr) != 2 {
		t.Fatalf("Trim len = %d, want 2", len(tr))
	}
}

func TestPolyEvalHorner(t *testing.T) {
	p := Poly{1, -2, 3} // 1 - 2s + 3s²
	got := p.Eval(2)
	if got != complex(1-4+12, 0) {
		t.Fatalf("Eval(2) = %v, want 9", got)
	}
	// At jω: 1 - 2jω - 3ω².
	om := 1.5
	want := complex(1-3*om*om, -2*om)
	if d := cmplx.Abs(p.Eval(complex(0, om)) - want); d > 1e-14 {
		t.Fatalf("Eval(j1.5) off by %g", d)
	}
}

func TestPolyArithmetic(t *testing.T) {
	p := Poly{1, 1}  // 1 + s
	q := Poly{-1, 1} // -1 + s
	sum := p.Add(q)
	if sum.Degree() != 1 || sum[1] != 2 {
		t.Fatalf("sum = %v, want 0 + 2s", sum)
	}
	prod := p.MulPoly(q) // s² - 1
	if prod.Degree() != 2 || prod[0] != -1 || prod[1] != 0 || prod[2] != 1 {
		t.Fatalf("prod = %v, want -1 + s²", prod)
	}
	sc := p.ScalePoly(3)
	if sc[0] != 3 || sc[1] != 3 {
		t.Fatalf("scale = %v", sc)
	}
	if got := (Poly{}).MulPoly(p); got.Degree() != -1 {
		t.Fatalf("0 * p = %v, want zero polynomial", got)
	}
}

func TestPolyDerivative(t *testing.T) {
	p := Poly{5, 3, 2, 1} // 5 + 3s + 2s² + s³
	d := p.Derivative()   // 3 + 4s + 3s²
	want := Poly{3, 4, 3}
	if len(d) != len(want) {
		t.Fatalf("derivative = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("derivative = %v, want %v", d, want)
		}
	}
	if got := (Poly{7}).Derivative(); got.Degree() != -1 {
		t.Fatalf("d/ds const = %v, want zero", got)
	}
}

func TestRootsQuadratic(t *testing.T) {
	// (s-1)(s-2) = s² - 3s + 2.
	p := Poly{2, -3, 1}
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	re := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(re)
	if math.Abs(re[0]-1) > 1e-9 || math.Abs(re[1]-2) > 1e-9 {
		t.Fatalf("roots = %v, want 1 and 2", roots)
	}
}

func TestRootsComplexPair(t *testing.T) {
	// s² + s + 1: roots at -0.5 ± j·sqrt(3)/2.
	p := Poly{1, 1, 1}
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		if math.Abs(real(r)+0.5) > 1e-9 || math.Abs(math.Abs(imag(r))-math.Sqrt(3)/2) > 1e-9 {
			t.Fatalf("unexpected root %v", r)
		}
	}
}

func TestRootsConstantAndEmpty(t *testing.T) {
	if r, err := (Poly{5}).Roots(); err != nil || r != nil {
		t.Fatalf("constant roots = %v, %v", r, err)
	}
	if r, err := (Poly{}).Roots(); err != nil || r != nil {
		t.Fatalf("empty roots = %v, %v", r, err)
	}
}

// Property: evaluating the polynomial at each reported root gives ~0.
func TestQuickRootsAreRoots(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		deg := 1 + r.Intn(5)
		p := make(Poly, deg+1)
		for i := range p {
			p[i] = r.NormFloat64()
		}
		p[deg] = 1 + math.Abs(r.NormFloat64()) // keep it genuinely degree deg
		roots, err := p.Roots()
		if err != nil {
			return true // convergence failure is reported, not wrong
		}
		scale := 0.0
		for _, c := range p {
			scale += math.Abs(c)
		}
		for _, z := range roots {
			// Scale tolerance by |z|^deg to keep large roots fair.
			m := math.Max(1, math.Pow(cmplx.Abs(z), float64(deg)))
			if cmplx.Abs(p.Eval(z)) > 1e-6*scale*m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRationalSecondOrderLowpass(t *testing.T) {
	h := SecondOrderLowpass(1, 1, math.Sqrt(0.5)) // Butterworth
	// DC gain 1.
	if m := h.Mag(1e-6); math.Abs(m-1) > 1e-3 {
		t.Fatalf("DC mag = %g, want 1", m)
	}
	// -3 dB at ω0 for Butterworth.
	if db := h.MagDb(1); math.Abs(db+3.0103) > 0.01 {
		t.Fatalf("mag at ω0 = %g dB, want -3.01", db)
	}
	// -40 dB/decade asymptote: at ω = 100, about -80 dB.
	if db := h.MagDb(100); math.Abs(db+80) > 0.1 {
		t.Fatalf("mag at 100ω0 = %g dB, want about -80", db)
	}
	// Phase goes from 0 to -π.
	if ph := h.Phase(1e-6); math.Abs(ph) > 1e-3 {
		t.Fatalf("DC phase = %g, want 0", ph)
	}
	if ph := h.Phase(1e6); math.Abs(ph+math.Pi) > 1e-2 && math.Abs(ph-math.Pi) > 1e-2 {
		t.Fatalf("HF phase = %g, want ±π", ph)
	}
}

func TestRationalBandpassPeak(t *testing.T) {
	h := SecondOrderBandpass(1, 2, 5)
	// Peak gain K at ω0.
	if m := h.Mag(2); math.Abs(m-1) > 1e-9 {
		t.Fatalf("peak mag = %g, want 1", m)
	}
	if h.Mag(0.02) > 0.1 || h.Mag(200) > 0.1 {
		t.Fatal("bandpass skirts are not attenuating")
	}
}

func TestRationalHighpass(t *testing.T) {
	h := SecondOrderHighpass(2, 1, 1)
	if m := h.Mag(1e-4); m > 1e-6 {
		t.Fatalf("DC mag = %g, want about 0", m)
	}
	if m := h.Mag(1e4); math.Abs(m-2) > 1e-3 {
		t.Fatalf("HF mag = %g, want 2", m)
	}
}

func TestRationalPolesZeros(t *testing.T) {
	h := SecondOrderLowpass(1, 3, 0.5)
	poles, err := h.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 2 {
		t.Fatalf("got %d poles, want 2", len(poles))
	}
	// Product of poles = ω0² (monic denominator's constant term).
	prod := poles[0] * poles[1]
	if cmplx.Abs(prod-9) > 1e-6 {
		t.Fatalf("pole product = %v, want 9", prod)
	}
	zeros, err := h.Zeros()
	if err != nil {
		t.Fatal(err)
	}
	if len(zeros) != 0 {
		t.Fatalf("lowpass zeros = %v, want none", zeros)
	}
}

func TestPolyString(t *testing.T) {
	if s := (Poly{1, 0, 2}).String(); s != "1 + 2s^2" {
		t.Fatalf("String = %q", s)
	}
	if s := (Poly{}).String(); s != "0" {
		t.Fatalf("String = %q", s)
	}
}
