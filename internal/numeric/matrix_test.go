package numeric

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestMatrixSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 3+4i)
	if got := m.At(0, 1); got != 3+4i {
		t.Fatalf("At = %v, want 3+4i", got)
	}
	m.Add(0, 1, 1-1i)
	if got := m.At(0, 1); got != 4+3i {
		t.Fatalf("after Add, At = %v, want 4+3i", got)
	}
}

func TestMatrixIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]complex128{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := MatrixFromRows([][]complex128{{1, 2}, {3}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("ragged rows error = %v, want ErrDimension", err)
	}
}

func TestIdentityMul(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(1)), 5, 5)
	id := Identity(5)
	prod, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equalish(a, 1e-14) {
		t.Fatal("A*I != A")
	}
	prod, err = id.Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equalish(a, 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulDimensionError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]complex128{{5, 6}, {7, 8}})
	sum, err := a.AddMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 12 {
		t.Fatalf("sum(1,1) = %v, want 12", sum.At(1, 1))
	}
	diff, err := b.SubMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(0, 0) != 4 {
		t.Fatalf("diff(0,0) = %v, want 4", diff.At(0, 0))
	}
	sc := a.Scale(2i)
	if sc.At(0, 1) != 4i {
		t.Fatalf("scale(0,1) = %v, want 4i", sc.At(0, 1))
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 4, 6)
	tt := a.Transpose().Transpose()
	if !tt.Equalish(a, 0) {
		t.Fatal("transpose is not an involution")
	}
	h := a.ConjTranspose()
	if h.Rows() != 6 || h.Cols() != 4 {
		t.Fatalf("conj transpose shape %dx%d, want 6x4", h.Rows(), h.Cols())
	}
	if h.At(2, 1) != cmplx.Conj(a.At(1, 2)) {
		t.Fatal("conj transpose element mismatch")
	}
}

func TestNorms(t *testing.T) {
	m, _ := MatrixFromRows([][]complex128{{3 + 4i, 0}, {0, 1}})
	if got := m.MaxAbs(); got != 5 {
		t.Fatalf("MaxAbs = %v, want 5", got)
	}
	if got := m.NormInf(); got != 5 {
		t.Fatalf("NormInf = %v, want 5", got)
	}
	if got := m.NormOne(); got != 5 {
		t.Fatalf("NormOne = %v, want 5", got)
	}
	want := math.Sqrt(25 + 1)
	if got := m.NormFrobenius(); math.Abs(got-want) > 1e-14 {
		t.Fatalf("NormFrobenius = %v, want %v", got, want)
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m, _ := MatrixFromRows([][]complex128{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned a view, want a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col returned a view, want a copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrix(2, 2)
	b := a.Clone()
	b.Set(0, 0, 1)
	if a.At(0, 0) != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

// Property: matrix multiplication is associative for random shapes.
func TestQuickMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2, n3, n4 := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randomMatrix(r, n1, n2)
		b := randomMatrix(r, n2, n3)
		c := randomMatrix(r, n3, n4)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equalish(abc2, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (A+B)x = Ax + Bx.
func TestQuickAddDistributes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := randomMatrix(r, n, n)
		b := randomMatrix(r, n, n)
		x := randomVector(r, n)
		ab, _ := a.AddMatrix(b)
		lhs, _ := ab.MulVec(x)
		ax, _ := a.MulVec(x)
		bx, _ := b.MulVec(x)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(ax[i]+bx[i])) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, complex(r.NormFloat64(), r.NormFloat64()))
		}
	}
	return m
}

func randomVector(r *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}
