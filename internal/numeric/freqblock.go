package numeric

import (
	"errors"
	"fmt"
)

// Frequency-blocked sparse refactorization.
//
// A dictionary build refactors the same symbolic pattern once per
// frequency: the values change (G + jωC), the elimination schedule does
// not. The scalar walk therefore pays its per-entry overhead — the
// cols[] index load, loop control, bounds checks, and the cache miss on
// the scattered work-row position — once per frequency. RefactorBlock
// eliminates FreqBlock frequency planes in a single symbolic walk over
// an interleaved layout, so that per-entry overhead is paid once per
// FreqBlock frequencies:
//
//   - work row:      bw[c*2F + f] (re), bw[c*2F + F + f] (im) — one
//     64-byte line holds all planes of a column, so the scattered
//     update touches one line where the scalar walk touches one per
//     frequency;
//   - factor values: bv[t*2F ...] in the same per-position layout,
//     streamed contiguously by the update loop;
//   - inverse diag:  bd[k*2F ...] likewise.
//
// Per-plane arithmetic is the exact scalar recurrence in the exact
// scalar order, so each plane's factors match RefactorReuse up to the
// sign of exact zeros: where the scalar walk skips a pivot whose
// work-row value is zero, the blocked walk (which only skips when every
// plane is zero there) multiplies through by that zero, which can flip
// a result of exactly 0 to -0 but cannot change any other value. The
// factors are de-interleaved into FreqBlock ordinary SparseLUs at
// gather time, so solves, guards, and fallbacks are untouched.
//
// Planes fail independently: a singular pivot on one frequency is
// recorded (first failing row, same row the scalar walk would report)
// and that plane's lanes carry on harmlessly — non-finite values cannot
// cross lanes because no arithmetic mixes planes — while the other
// frequencies factor to completion.

// FreqBlock is the number of frequency planes RefactorBlock eliminates
// per symbolic walk. 4 planes × re/im = 8 float64 = one cache line per
// matrix position.
const FreqBlock = 4

// fbStride is the float64 stride per matrix position in the interleaved
// planes: FreqBlock reals then FreqBlock imaginaries.
const fbStride = 2 * FreqBlock

// BlockRefactorer owns the interleaved scratch for frequency-blocked
// refactorization. The zero value is ready; a worker that calls
// RefactorBlock with the same receiver every group allocates nothing in
// steady state.
type BlockRefactorer struct {
	bv []float64 // interleaved factor values along sym.cols
	bd []float64 // interleaved inverse diagonal per row
	bw []float64 // interleaved dense work row (all-zero between calls)
}

// RefactorBlock refactors FreqBlock value-plane sets over one shared
// symbolic pattern in a single interleaved elimination walk. ares[f] and
// aims[f] are plane f's values along sym's compiled pattern, exactly as
// RefactorReuse takes them; lus[f] receives plane f's factorization and
// is afterwards indistinguishable from one produced by RefactorReuse on
// that plane (same factors under ==, same guard, ready for SolveBlock).
// errs[f] is plane f's outcome under the RefactorReuse error contract —
// planes succeed and fail independently.
func (b *BlockRefactorer) RefactorBlock(sym *SparseSymbolic, lus *[FreqBlock]SparseLU, ares, aims *[FreqBlock][]float64) (errs [FreqBlock]error) {
	var guard2 [FreqBlock]float64
	bad := false
	for f := 0; f < FreqBlock; f++ {
		errs[f] = lus[f].prepRefactor(sym, ares[f], aims[f])
		if errs[f] != nil {
			bad = true
		} else {
			guard2[f] = lus[f].guard2
		}
	}
	if bad {
		// Dimension errors abort the walk outright; an all-zero plane
		// (ErrSingular from prep) merely rides along dead — its lanes
		// stay zero and its error stands.
		for f := 0; f < FreqBlock; f++ {
			if errs[f] != nil && !errors.Is(errs[f], ErrSingular) {
				return errs
			}
		}
	}

	n := sym.n
	nnz := len(sym.cols)
	if cap(b.bv) < nnz*fbStride {
		b.bv = make([]float64, nnz*fbStride)
	}
	b.bv = b.bv[:nnz*fbStride]
	if cap(b.bd) < n*fbStride {
		b.bd = make([]float64, n*fbStride)
		b.bw = make([]float64, n*fbStride)
	}
	b.bd = b.bd[:n*fbStride]
	b.bw = b.bw[:n*fbStride]

	a0re, a1re, a2re, a3re := ares[0], ares[1], ares[2], ares[3]
	a0im, a1im, a2im, a3im := aims[0], aims[1], aims[2], aims[3]
	v0re, v1re, v2re, v3re := lus[0].vre, lus[1].vre, lus[2].vre, lus[3].vre
	v0im, v1im, v2im, v3im := lus[0].vim, lus[1].vim, lus[2].vim, lus[3].vim
	cols, rs, dp := sym.cols, sym.rowStart, sym.diagPos
	bv, bd, bw := b.bv, b.bd, b.bw

	for i := 0; i < n; i++ {
		lo, hi := rs[i], rs[i+1]
		// Scatter row i of every plane into the interleaved work row.
		for t := lo; t < hi; t++ {
			cb := cols[t] * fbStride
			wc := bw[cb : cb+fbStride : cb+fbStride]
			wc[0], wc[1], wc[2], wc[3] = a0re[t], a1re[t], a2re[t], a3re[t]
			wc[4], wc[5], wc[6], wc[7] = a0im[t], a1im[t], a2im[t], a3im[t]
		}
		// Eliminate ascending over the row's L pattern; one index walk
		// serves every plane. On amd64 with AVX the whole walk runs in
		// the assembly kernel — four planes per 256-bit lane, the same
		// IEEE operations in the same order as the loop below.
		if fbAVX {
			if dpi := dp[i]; dpi > lo {
				fbEliminateRowAVX(&bw[0], &bv[0], &bd[0], &cols[0], &dp[0], &rs[0], lo, dpi)
			}
			goto gather
		}
		for t := lo; t < dp[i]; t++ {
			k := cols[t]
			kb := k * fbStride
			wk := bw[kb : kb+fbStride : kb+fbStride]
			ar0, ar1, ar2, ar3 := wk[0], wk[1], wk[2], wk[3]
			ai0, ai1, ai2, ai3 := wk[4], wk[5], wk[6], wk[7]
			if ar0 == 0 && ai0 == 0 && ar1 == 0 && ai1 == 0 &&
				ar2 == 0 && ai2 == 0 && ar3 == 0 && ai3 == 0 {
				continue
			}
			rk := bd[kb : kb+fbStride : kb+fbStride]
			m0r := ar0*rk[0] - ai0*rk[4]
			m0i := ar0*rk[4] + ai0*rk[0]
			m1r := ar1*rk[1] - ai1*rk[5]
			m1i := ar1*rk[5] + ai1*rk[1]
			m2r := ar2*rk[2] - ai2*rk[6]
			m2i := ar2*rk[6] + ai2*rk[2]
			m3r := ar3*rk[3] - ai3*rk[7]
			m3i := ar3*rk[7] + ai3*rk[3]
			wk[0], wk[4] = m0r, m0i
			wk[1], wk[5] = m1r, m1i
			wk[2], wk[6] = m2r, m2i
			wk[3], wk[7] = m3r, m3i
			for u := dp[k] + 1; u < rs[k+1]; u++ {
				cb := cols[u] * fbStride
				ub := u * fbStride
				uc := bv[ub : ub+fbStride : ub+fbStride]
				wc := bw[cb : cb+fbStride : cb+fbStride]
				ur, ui := uc[0], uc[4]
				wc[0] -= m0r*ur - m0i*ui
				wc[4] -= m0r*ui + m0i*ur
				ur, ui = uc[1], uc[5]
				wc[1] -= m1r*ur - m1i*ui
				wc[5] -= m1r*ui + m1i*ur
				ur, ui = uc[2], uc[6]
				wc[2] -= m2r*ur - m2i*ui
				wc[6] -= m2r*ui + m2i*ur
				ur, ui = uc[3], uc[7]
				wc[3] -= m3r*ur - m3i*ui
				wc[7] -= m3r*ui + m3i*ur
			}
		}
		// Gather the finished row: into the interleaved planes (read by
		// later update loops) and de-interleaved into each plane's
		// SparseLU, clearing the work row behind.
	gather:
		for t := lo; t < hi; t++ {
			cb := cols[t] * fbStride
			tb := t * fbStride
			wc := bw[cb : cb+fbStride : cb+fbStride]
			uc := bv[tb : tb+fbStride : tb+fbStride]
			r0, r1, r2, r3 := wc[0], wc[1], wc[2], wc[3]
			i0, i1, i2, i3 := wc[4], wc[5], wc[6], wc[7]
			uc[0], uc[1], uc[2], uc[3] = r0, r1, r2, r3
			uc[4], uc[5], uc[6], uc[7] = i0, i1, i2, i3
			v0re[t], v0im[t] = r0, i0
			v1re[t], v1im[t] = r1, i1
			v2re[t], v2im[t] = r2, i2
			v3re[t], v3im[t] = r3, i3
			wc[0], wc[1], wc[2], wc[3] = 0, 0, 0, 0
			wc[4], wc[5], wc[6], wc[7] = 0, 0, 0, 0
		}
		// Per-plane pivot check and reciprocal. A failing plane records
		// the same row the scalar walk would abort on and keeps riding —
		// a non-finite reciprocal stays inside its own lanes.
		db := dp[i] * fbStride
		ib := i * fbStride
		for f := 0; f < FreqBlock; f++ {
			dr, di := bv[db+f], bv[db+FreqBlock+f]
			d2 := dr*dr + di*di
			if d2 == 0 || d2 < guard2[f] {
				if errs[f] == nil {
					if d2 == 0 {
						errs[f] = fmt.Errorf("numeric: zero pivot at row %d: %w", i, ErrSingular)
					} else {
						errs[f] = fmt.Errorf("numeric: pivot at row %d below static-pivot guard: %w", i, ErrSingular)
					}
				}
			}
			rr, ri := recip(dr, di)
			bd[ib+f], bd[ib+FreqBlock+f] = rr, ri
			lus[f].ire[i], lus[f].iim[i] = rr, ri
		}
	}
	return errs
}
