package numeric

import (
	"errors"
	"math"
	"testing"
)

func TestLinspace(t *testing.T) {
	v := Linspace(0, 10, 11)
	if len(v) != 11 || v[0] != 0 || v[10] != 10 || v[5] != 5 {
		t.Fatalf("Linspace = %v", v)
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Linspace n=1 = %v", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Fatalf("Linspace n=0 = %v, want nil", got)
	}
	// Decreasing ranges work too.
	d := Linspace(5, 1, 5)
	if d[0] != 5 || d[4] != 1 {
		t.Fatalf("decreasing Linspace = %v", d)
	}
}

func TestLogspace(t *testing.T) {
	v := Logspace(0.01, 100, 5)
	want := []float64{0.01, 0.1, 1, 10, 100}
	if len(v) != 5 {
		t.Fatalf("len = %d", len(v))
	}
	for i := range want {
		if !CloseRel(v[i], want[i], 1e-12, 0) {
			t.Fatalf("Logspace = %v, want %v", v, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Logspace with nonpositive endpoint did not panic")
			}
		}()
		Logspace(0, 1, 3)
	}()
}

func TestDotAndNorms(t *testing.T) {
	a := []complex128{1, 2i}
	b := []complex128{3, 4}
	d, err := Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3+8i {
		t.Fatalf("Dot = %v, want 3+8i", d)
	}
	if _, err := Dot(a, b[:1]); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
	if n := Norm2([]complex128{3, 4i}); math.Abs(n-5) > 1e-14 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
	if n := NormInfVec([]complex128{1, -3, 2i}); n != 3 {
		t.Fatalf("NormInfVec = %v, want 3", n)
	}
	if n := RealNorm2([]float64{3, 4}); n != 5 {
		t.Fatalf("RealNorm2 = %v, want 5", n)
	}
}

func TestResidual(t *testing.T) {
	a := Identity(2)
	res, err := Residual(a, []complex128{1, 2}, []complex128{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res != 0 {
		t.Fatalf("Residual = %v, want 0", res)
	}
	res, err = Residual(a, []complex128{1, 2}, []complex128{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res != 3 {
		t.Fatalf("Residual = %v, want 3", res)
	}
}

func TestDbRoundTrip(t *testing.T) {
	for _, m := range []float64{0.001, 0.5, 1, 2, 1000} {
		if got := FromDb(Db(m)); !CloseRel(got, m, 1e-12, 0) {
			t.Fatalf("round trip %v -> %v", m, got)
		}
	}
	if Db(1) != 0 {
		t.Fatalf("Db(1) = %v, want 0", Db(1))
	}
	if math.Abs(Db(10)-20) > 1e-12 {
		t.Fatalf("Db(10) = %v, want 20", Db(10))
	}
	if !math.IsInf(Db(0), -1) {
		t.Fatalf("Db(0) = %v, want -Inf", Db(0))
	}
}

func TestCloseRel(t *testing.T) {
	if !CloseRel(100, 100.0000001, 1e-6, 0) {
		t.Fatal("CloseRel rejected nearly equal values")
	}
	if CloseRel(100, 101, 1e-6, 0) {
		t.Fatal("CloseRel accepted distant values")
	}
	if !CloseRel(0, 1e-15, 1e-12, 1e-12) {
		t.Fatal("CloseRel abs floor not applied")
	}
}
