package numeric

import (
	"fmt"
	"math"
)

// This file holds the structure-of-arrays (SoA) complex kernel layer:
// complex data split into flat re/im float64 planes so the hot loops —
// LU elimination sweeps and multi-RHS triangular solves — run over
// contiguous float64 slices instead of scalar complex128 values. The
// layout avoids complex division (runtime call) and cmplx.Abs (hypot
// call) in inner loops and lets one pass over the factored matrix
// amortize across a whole block of right-hand sides, which is where
// the frequency-sweep hot path of the engine spends its time.
//
// Layout contract: both SoAMatrix and Block are row-major with the row
// index contiguous over columns, i.e. element (i, j) lives at
// re[i*cols+j] / im[i*cols+j]. For a Block whose rows are system
// variables and whose columns are right-hand sides, row i's values
// across all RHS columns are therefore contiguous — the axpy of one
// triangular-sweep step touches two contiguous float64 runs per plane.

// SoAMatrix is a dense complex matrix stored as split re/im float64
// planes (row-major, same indexing as Matrix). The zero value is an
// empty matrix; use NewSoAMatrix to allocate a sized one.
type SoAMatrix struct {
	rows, cols int
	re, im     []float64
}

// NewSoAMatrix allocates an r-by-c zero SoA matrix.
func NewSoAMatrix(r, c int) *SoAMatrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("numeric: negative matrix dimension %dx%d", r, c))
	}
	return &SoAMatrix{rows: r, cols: c, re: make([]float64, r*c), im: make([]float64, r*c)}
}

// Rows returns the number of rows.
func (m *SoAMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *SoAMatrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *SoAMatrix) At(i, j int) complex128 {
	m.check(i, j)
	return complex(m.re[i*m.cols+j], m.im[i*m.cols+j])
}

// Set assigns the element at row i, column j.
func (m *SoAMatrix) Set(i, j int, v complex128) {
	m.check(i, j)
	m.re[i*m.cols+j] = real(v)
	m.im[i*m.cols+j] = imag(v)
}

// Add accumulates v into the element at row i, column j — the stamping
// primitive, mirroring Matrix.Add.
func (m *SoAMatrix) Add(i, j int, v complex128) {
	m.check(i, j)
	m.re[i*m.cols+j] += real(v)
	m.im[i*m.cols+j] += imag(v)
}

func (m *SoAMatrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("numeric: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Zero resets every element to 0 without reallocating.
func (m *SoAMatrix) Zero() {
	for i := range m.re {
		m.re[i] = 0
	}
	for i := range m.im {
		m.im[i] = 0
	}
}

// CopyFrom overwrites m with src without reallocating. Shapes must match.
func (m *SoAMatrix) CopyFrom(src *SoAMatrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("numeric: copy %dx%d into %dx%d: %w", src.rows, src.cols, m.rows, m.cols, ErrDimension)
	}
	copy(m.re, src.re)
	copy(m.im, src.im)
	return nil
}

// CopyFromMatrix splits the complex128 matrix src into m's planes
// without reallocating. Shapes must match.
func (m *SoAMatrix) CopyFromMatrix(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("numeric: copy %dx%d into %dx%d: %w", src.rows, src.cols, m.rows, m.cols, ErrDimension)
	}
	for i, v := range src.data {
		m.re[i] = real(v)
		m.im[i] = imag(v)
	}
	return nil
}

// SoAFromMatrix allocates a new SoAMatrix holding the planes of src.
func SoAFromMatrix(src *Matrix) *SoAMatrix {
	out := NewSoAMatrix(src.rows, src.cols)
	_ = out.CopyFromMatrix(src)
	return out
}

// ToMatrix interleaves m's planes into the complex128 matrix dst
// without reallocating. Shapes must match.
func (m *SoAMatrix) ToMatrix(dst *Matrix) error {
	if m.rows != dst.rows || m.cols != dst.cols {
		return fmt.Errorf("numeric: copy %dx%d into %dx%d: %w", m.rows, m.cols, dst.rows, dst.cols, ErrDimension)
	}
	for i := range dst.data {
		dst.data[i] = complex(m.re[i], m.im[i])
	}
	return nil
}

// Block is a multi-right-hand-side block in SoA layout: rows are system
// variables, columns are right-hand sides, and row i's values across
// all columns are contiguous in each plane (re[i*cols : (i+1)*cols]).
// A Block owns its planes and is reusable: Reset reshapes it within the
// existing capacity, so a Block held across solves makes the steady
// state allocation-free. The zero Block is empty and ready for Reset.
type Block struct {
	rows, cols int
	re, im     []float64
}

// NewBlock allocates an r-by-c zero block.
func NewBlock(r, c int) *Block {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("numeric: negative block dimension %dx%d", r, c))
	}
	return &Block{rows: r, cols: c, re: make([]float64, r*c), im: make([]float64, r*c)}
}

// Reset reshapes the block to r-by-c, reusing the existing planes when
// they are large enough (contents become unspecified; callers overwrite
// or Zero). After one Reset at a given size, subsequent Resets at or
// below it never allocate.
func (b *Block) Reset(r, c int) {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("numeric: negative block dimension %dx%d", r, c))
	}
	n := r * c
	if cap(b.re) < n {
		b.re = make([]float64, n)
		b.im = make([]float64, n)
	}
	b.re = b.re[:n]
	b.im = b.im[:n]
	b.rows, b.cols = r, c
}

// Rows returns the number of rows (system variables).
func (b *Block) Rows() int { return b.rows }

// Cols returns the number of columns (right-hand sides).
func (b *Block) Cols() int { return b.cols }

// Planes exposes the raw re/im planes under the documented layout
// contract — element (i, j) at index i*Cols()+j — for callers whose
// inner loops cannot afford per-element bounds checks (the engine's
// correction sweeps). The planes alias the block: writes are visible
// and Reset invalidates them.
func (b *Block) Planes() (re, im []float64) { return b.re, b.im }

// PlanesFor is Planes with the caller's assumed shape verified first:
// a raw-plane consumer states the (rows, cols) its index arithmetic was
// written for, and a disagreement with the block's actual shape comes
// back as an ErrDimension error at the boundary instead of silently
// misindexed rows deep inside a sweep. The stride of the returned
// planes is cols, exactly as assumed.
func (b *Block) PlanesFor(rows, cols int) (re, im []float64, err error) {
	if rows != b.rows || cols != b.cols {
		return nil, nil, fmt.Errorf("numeric: planes assumed %dx%d, block is %dx%d: %w", rows, cols, b.rows, b.cols, ErrDimension)
	}
	if len(b.re) != rows*cols || len(b.im) != rows*cols {
		return nil, nil, fmt.Errorf("numeric: block planes hold %d/%d values, want %d: %w", len(b.re), len(b.im), rows*cols, ErrDimension)
	}
	return b.re, b.im, nil
}

// At returns the element at row i, column j.
func (b *Block) At(i, j int) complex128 {
	b.check(i, j)
	return complex(b.re[i*b.cols+j], b.im[i*b.cols+j])
}

// Set assigns the element at row i, column j.
func (b *Block) Set(i, j int, v complex128) {
	b.check(i, j)
	b.re[i*b.cols+j] = real(v)
	b.im[i*b.cols+j] = imag(v)
}

func (b *Block) check(i, j int) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("numeric: index (%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
}

// Zero resets every element to 0 without reallocating.
func (b *Block) Zero() {
	for i := range b.re {
		b.re[i] = 0
	}
	for i := range b.im {
		b.im[i] = 0
	}
}

// CopyFrom reshapes b to src's shape (reusing planes when possible) and
// copies src's contents.
func (b *Block) CopyFrom(src *Block) {
	b.Reset(src.rows, src.cols)
	copy(b.re, src.re)
	copy(b.im, src.im)
}

// SetColumn writes the complex vector v (length rows) into column j.
func (b *Block) SetColumn(j int, v []complex128) error {
	if len(v) != b.rows {
		return fmt.Errorf("numeric: set len-%d column into %d-row block: %w", len(v), b.rows, ErrDimension)
	}
	if j < 0 || j >= b.cols {
		return fmt.Errorf("numeric: column %d out of range %dx%d: %w", j, b.rows, b.cols, ErrDimension)
	}
	for i, x := range v {
		b.re[i*b.cols+j] = real(x)
		b.im[i*b.cols+j] = imag(x)
	}
	return nil
}

// ColumnInto reads column j into the complex vector dst (length rows).
func (b *Block) ColumnInto(dst []complex128, j int) error {
	if len(dst) != b.rows {
		return fmt.Errorf("numeric: read %d-row block column into len-%d dst: %w", b.rows, len(dst), ErrDimension)
	}
	if j < 0 || j >= b.cols {
		return fmt.Errorf("numeric: column %d out of range %dx%d: %w", j, b.rows, b.cols, ErrDimension)
	}
	for i := range dst {
		dst[i] = complex(b.re[i*b.cols+j], b.im[i*b.cols+j])
	}
	return nil
}

// CopyFromMatrix reshapes b to src's shape and splits src into planes.
func (b *Block) CopyFromMatrix(src *Matrix) {
	b.Reset(src.rows, src.cols)
	for i, v := range src.data {
		b.re[i] = real(v)
		b.im[i] = imag(v)
	}
}

// ToMatrix interleaves b's planes into the complex128 matrix dst
// without reallocating. Shapes must match.
func (b *Block) ToMatrix(dst *Matrix) error {
	if b.rows != dst.rows || b.cols != dst.cols {
		return fmt.Errorf("numeric: copy %dx%d into %dx%d: %w", b.rows, b.cols, dst.rows, dst.cols, ErrDimension)
	}
	for i := range dst.data {
		dst.data[i] = complex(b.re[i], b.im[i])
	}
	return nil
}

// swapRows exchanges rows i and p of both planes.
func (b *Block) swapRows(i, p int) {
	nc := b.cols
	ri, rp := b.re[i*nc:(i+1)*nc], b.re[p*nc:(p+1)*nc]
	for c := range ri {
		ri[c], rp[c] = rp[c], ri[c]
	}
	ii, ip := b.im[i*nc:(i+1)*nc], b.im[p*nc:(p+1)*nc]
	for c := range ii {
		ii[c], ip[c] = ip[c], ii[c]
	}
}

// recip returns the complex reciprocal 1/(a+bi) as (re, im), using the
// scaled (Smith) form so moderate magnitude spreads stay accurate.
func recip(a, b float64) (float64, float64) {
	if math.Abs(a) >= math.Abs(b) {
		r := b / a
		d := a + b*r
		return 1 / d, -r / d
	}
	r := a / b
	d := a*r + b
	return r / d, -1 / d
}

// SoALU is an LU factorization with partial pivoting over SoA planes:
// the float64-plane counterpart of LU, built for the blocked hot path.
// Factor with FactorSoAReuse (allocation-free in steady state), then
// solve whole multi-RHS blocks with SolveBlock/SolveBlockInto.
//
// The factorization matches LU up to floating-point rounding: the pivot
// row chosen at each elimination step is the same (magnitudes are
// compared as re²+im², which orders identically to cmplx.Abs up to ties
// within one ulp), but elimination multipliers are formed by reciprocal
// multiplication instead of complex division, so factored entries can
// differ from LU's in the last bits. Solutions agree with the scalar
// path to well within 1e-9 relative on well-conditioned systems — the
// contract the engine's blocked-vs-scalar tests pin.
type SoALU struct {
	lu   *SoAMatrix
	piv  []int // row i of the factored matrix came from row piv[i] of A
	swp  []int // swap sequence: step k exchanged rows k and swp[k]
	sign int
	n    int
}

// FactorSoA factors a copy of a, leaving a untouched — the convenience
// entry point for one-shot callers and tests.
func FactorSoA(a *SoAMatrix) (*SoALU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	work := NewSoAMatrix(a.rows, a.cols)
	_ = work.CopyFrom(a)
	f := &SoALU{}
	if err := FactorSoAReuse(f, work); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorSoAReuse factors a in place into the caller-owned f, reusing
// f's pivot storage: a worker that refactors into the same SoALU every
// round allocates nothing in steady state. a's contents are destroyed
// (they become the packed L/U factors); on error f is unusable until
// the next successful refactorization.
func FactorSoAReuse(f *SoALU, a *SoAMatrix) error {
	if a.rows != a.cols {
		return fmt.Errorf("numeric: factor %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	n := a.rows
	if cap(f.piv) < n {
		f.piv = make([]int, n)
		f.swp = make([]int, n)
	}
	*f = SoALU{lu: a, piv: f.piv[:n], swp: f.swp[:n], sign: 1, n: n}
	for i := range f.piv {
		f.piv[i] = i
	}
	re, im := a.re, a.im
	for k := 0; k < n; k++ {
		// Partial pivoting: largest squared modulus in column k at or
		// below the diagonal (same argmax as cmplx.Abs, no hypot call).
		p := k
		mx := re[k*n+k]*re[k*n+k] + im[k*n+k]*im[k*n+k]
		for i := k + 1; i < n; i++ {
			if m := re[i*n+k]*re[i*n+k] + im[i*n+k]*im[i*n+k]; m > mx {
				mx, p = m, i
			}
		}
		if mx == 0 {
			return fmt.Errorf("numeric: zero pivot at column %d: %w", k, ErrSingular)
		}
		f.swp[k] = p
		if p != k {
			rk, rp := re[k*n:k*n+n], re[p*n:p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			ik, ip := im[k*n:k*n+n], im[p*n:p*n+n]
			for j := range ik {
				ik[j], ip[j] = ip[j], ik[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		ir, ii := recip(re[k*n+k], im[k*n+k])
		kr := re[k*n+k+1 : k*n+n]
		ki := im[k*n+k+1 : k*n+n]
		for i := k + 1; i < n; i++ {
			ar, ai := re[i*n+k], im[i*n+k]
			if ar == 0 && ai == 0 {
				continue
			}
			mr := ar*ir - ai*ii
			mi := ar*ii + ai*ir
			re[i*n+k], im[i*n+k] = mr, mi
			xr := re[i*n+k+1 : i*n+n]
			xi := im[i*n+k+1 : i*n+n]
			for j := range xr {
				r, m := kr[j], ki[j]
				xr[j] -= mr*r - mi*m
				xi[j] -= mr*m + mi*r
			}
		}
	}
	return nil
}

// N returns the order of the factored system.
func (f *SoALU) N() int { return f.n }

// SolveBlock solves A·X = B for every column of the block in place: B's
// columns are overwritten with the corresponding solutions. One forward
// and one back triangular sweep covers all right-hand sides, so the
// factored matrix is walked once per block instead of once per RHS.
func (f *SoALU) SolveBlock(blk *Block) error {
	if blk.rows != f.n {
		return fmt.Errorf("numeric: solve-block with %d rows, want %d: %w", blk.rows, f.n, ErrDimension)
	}
	n, nc := f.n, blk.cols
	if nc == 0 {
		return nil
	}
	// Apply the recorded row exchanges (in factorization order, so the
	// net effect is the pivot permutation).
	for k := 0; k < n; k++ {
		if p := f.swp[k]; p != k {
			blk.swapRows(k, p)
		}
	}
	lre, lim := f.lu.re, f.lu.im
	bre, bim := blk.re, blk.im
	// L·Y = P·B (L unit lower triangular): subtract m · row j from row i
	// across all columns, contiguous in both planes.
	for i := 1; i < n; i++ {
		xr := bre[i*nc : i*nc+nc]
		xi := bim[i*nc : i*nc+nc]
		for j := 0; j < i; j++ {
			mr, mi := lre[i*n+j], lim[i*n+j]
			if mr == 0 && mi == 0 {
				continue
			}
			yr := bre[j*nc : j*nc+nc]
			yi := bim[j*nc : j*nc+nc]
			for c := range xr {
				r, m := yr[c], yi[c]
				xr[c] -= mr*r - mi*m
				xi[c] -= mr*m + mi*r
			}
		}
	}
	// U·X = Y: same sweep upwards, then scale the row by 1/U[i][i].
	for i := n - 1; i >= 0; i-- {
		xr := bre[i*nc : i*nc+nc]
		xi := bim[i*nc : i*nc+nc]
		for j := i + 1; j < n; j++ {
			mr, mi := lre[i*n+j], lim[i*n+j]
			if mr == 0 && mi == 0 {
				continue
			}
			yr := bre[j*nc : j*nc+nc]
			yi := bim[j*nc : j*nc+nc]
			for c := range xr {
				r, m := yr[c], yi[c]
				xr[c] -= mr*r - mi*m
				xi[c] -= mr*m + mi*r
			}
		}
		dr, di := recip(lre[i*n+i], lim[i*n+i])
		for c := range xr {
			r, m := xr[c], xi[c]
			xr[c] = dr*r - di*m
			xi[c] = dr*m + di*r
		}
	}
	return nil
}

// SolveBlockInto is SolveBlock writing the solutions into dst, leaving
// rhs untouched. dst is reshaped to rhs's shape, reusing its planes.
// The shape check runs before dst is touched, so a mismatched rhs
// reports ErrDimension with dst intact.
func (f *SoALU) SolveBlockInto(dst, rhs *Block) error {
	if rhs.rows != f.n {
		return fmt.Errorf("numeric: solve-block-into with %d rows, want %d: %w", rhs.rows, f.n, ErrDimension)
	}
	if dst == rhs {
		return f.SolveBlock(dst)
	}
	dst.CopyFrom(rhs)
	return f.SolveBlock(dst)
}

// SolveInto solves A·x = b for a single complex right-hand side into the
// caller-provided dst of length N. dst and b may not alias.
func (f *SoALU) SolveInto(dst, b []complex128) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("numeric: solve-into rhs len %d, dst len %d, want %d: %w", len(b), len(dst), f.n, ErrDimension)
	}
	n := f.n
	for i, p := range f.piv {
		dst[i] = b[p]
	}
	lre, lim := f.lu.re, f.lu.im
	for i := 1; i < n; i++ {
		var sr, si float64
		for j := 0; j < i; j++ {
			mr, mi := lre[i*n+j], lim[i*n+j]
			r, m := real(dst[j]), imag(dst[j])
			sr += mr*r - mi*m
			si += mr*m + mi*r
		}
		dst[i] = complex(real(dst[i])-sr, imag(dst[i])-si)
	}
	for i := n - 1; i >= 0; i-- {
		var sr, si float64
		for j := i + 1; j < n; j++ {
			mr, mi := lre[i*n+j], lim[i*n+j]
			r, m := real(dst[j]), imag(dst[j])
			sr += mr*r - mi*m
			si += mr*m + mi*r
		}
		vr, vi := real(dst[i])-sr, imag(dst[i])-si
		dr, di := recip(lre[i*n+i], lim[i*n+i])
		dst[i] = complex(dr*vr-di*vi, dr*vi+di*vr)
	}
	return nil
}
