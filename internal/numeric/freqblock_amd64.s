// AVX inner kernel for the frequency-blocked refactorization walk.
//
// One 256-bit lane-set holds the four frequency planes of a matrix
// position (re quad, then im quad — fbStride floats). VMULPD/VADDPD/
// VSUBPD round each lane exactly like the scalar MULSD/ADDSD/SUBSD
// sequence in the pure-Go loop, so the kernel is bit-identical to it.
// No FMA: fused rounding would diverge from the scalar walk.

#include "textflag.h"

// func fbEliminateRowAVX(bw, bv, bd *float64, cols, dp, rs *int, lo, dpi int)
//
// The full ascending elimination of one row over its L pattern — the
// per-pivot multiplier computation plus the update sweep of fbUpdateAVX,
// without a Go call per pivot:
//
//   for t in [lo, dpi):
//     k = cols[t]
//     a = bw[k*8 ..]                   (work-row quads at pivot k)
//     if every plane of a is ±0: continue   (the scalar walk's skip)
//     r = bd[k*8 ..]                   (pivot reciprocal quads)
//     m.re = a.re*r.re - a.im*r.im; m.im = a.re*r.im + a.im*r.re
//     bw[k*8 ..] = m
//     for u in [dp[k]+1, rs[k+1]): update bw[cols[u]*8 ..] by bv[u*8 ..]
TEXT ·fbEliminateRowAVX(SB), NOSPLIT, $0-64
	MOVQ bw+0(FP), DI
	MOVQ bv+8(FP), SI
	MOVQ bd+16(FP), R8
	MOVQ cols+24(FP), DX
	MOVQ dp+32(FP), R9
	MOVQ rs+40(FP), R10
	MOVQ lo+48(FP), R11
	MOVQ dpi+56(FP), R12
	// Y7 = sign-bit mask complement for the ±0 test.
	MOVQ $0x7FFFFFFFFFFFFFFF, AX
	VMOVQ AX, X7
	VMOVDDUP X7, X7
	VINSERTF128 $1, X7, Y7, Y7
	CMPQ R11, R12
	JGE rowdone
rowpivot:
	MOVQ (DX)(R11*8), BX  // k = cols[t]
	MOVQ BX, R13
	SHLQ $6, R13          // byte offset of position k
	VMOVUPD (DI)(R13*1), Y0   // a.re
	VMOVUPD 32(DI)(R13*1), Y1 // a.im
	VORPD Y1, Y0, Y2
	VANDPD Y7, Y2, Y2     // drop sign bits: ±0 counts as zero
	VPTEST Y2, Y2
	JNE rowactive
	ADDQ $1, R11
	CMPQ R11, R12
	JLT rowpivot
	JMP rowdone
rowactive:
	VMOVUPD (R8)(R13*1), Y4   // r.re
	VMOVUPD 32(R8)(R13*1), Y5 // r.im
	VMULPD Y4, Y0, Y2     // a.re*r.re
	VMULPD Y5, Y1, Y3     // a.im*r.im
	VSUBPD Y3, Y2, Y2     // m.re
	VMULPD Y5, Y0, Y6     // a.re*r.im
	VMULPD Y4, Y1, Y3     // a.im*r.re
	VADDPD Y3, Y6, Y3     // m.im
	VMOVUPD Y2, (DI)(R13*1)
	VMOVUPD Y3, 32(DI)(R13*1)
	VMOVAPD Y2, Y4        // m.re
	VMOVAPD Y3, Y5        // m.im
	// Update sweep over U entries [dp[k]+1, rs[k+1]).
	MOVQ (R9)(BX*8), CX   // dp[k]
	ADDQ $1, CX
	MOVQ 8(R10)(BX*8), R14 // rs[k+1]
	CMPQ CX, R14
	JGE rownext
	MOVQ CX, R15
	SHLQ $6, R15
	LEAQ (SI)(R15*1), R15 // &bv[u*8]
rowupd:
	MOVQ (DX)(CX*8), BX   // c = cols[u]
	SHLQ $6, BX
	VMOVUPD (R15), Y0     // u.re
	VMOVUPD 32(R15), Y1   // u.im
	VMULPD Y0, Y4, Y2
	VMULPD Y1, Y5, Y3
	VSUBPD Y3, Y2, Y2
	VMOVUPD (DI)(BX*1), Y6
	VSUBPD Y2, Y6, Y6
	VMOVUPD Y6, (DI)(BX*1)
	VMULPD Y1, Y4, Y2
	VMULPD Y0, Y5, Y3
	VADDPD Y3, Y2, Y2
	VMOVUPD 32(DI)(BX*1), Y6
	VSUBPD Y2, Y6, Y6
	VMOVUPD Y6, 32(DI)(BX*1)
	ADDQ $64, R15
	ADDQ $1, CX
	CMPQ CX, R14
	JLT rowupd
rownext:
	ADDQ $1, R11
	CMPQ R11, R12
	JLT rowpivot
rowdone:
	VZEROUPPER
	RET

// func fbCPUID1() uint32 — ECX of CPUID leaf 1 (feature flags).
TEXT ·fbCPUID1(SB), NOSPLIT, $0-4
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, ret+0(FP)
	RET

// func fbXGETBV() uint32 — low word of XCR0 (OS-enabled state).
TEXT ·fbXGETBV(SB), NOSPLIT, $0-4
	XORL CX, CX
	XGETBV
	MOVL AX, ret+0(FP)
	RET
